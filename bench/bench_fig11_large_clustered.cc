// Reproduces Figure 11: large *clustered* datasets, growing B, epsilon = 5.
// The paper's key observation here: space-oriented S3 degrades badly on
// clustered data (it falls behind even the indexed nested loop), while
// TOUCH's data-oriented partitioning barely does more comparisons than on
// uniform data thanks to filtering.

#include "bench_large_figure.h"

int main(int argc, char** argv) {
  touch::bench::RegisterLargeFigure("fig11_clustered",
                                    touch::Distribution::kClustered);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
