// Extension: the related-work joins the paper describes but does not plot —
// seeded tree (2.2.2), octree double-index traversal (2.2.1) and NBPS
// (2.2.3) — run on the Figure 9 workload (large uniform, growing B, eps=5)
// next to the paper's own lineup, so their standing relative to TOUCH and
// PBSM is measurable under identical conditions.

#include <string>
#include <vector>

#include "bench_common.h"

namespace touch::bench {
namespace {

void RegisterAll() {
  const size_t size_a = Scaled(80'000);
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 1'600'000);
  constexpr float kEpsilon = 5.0f;

  const std::vector<std::string> algorithms = {
      "touch", "pbsm-100", "seeded", "octree", "nbps", "rplus", "rtree"};
  for (const size_t multiplier : {1, 2, 4}) {
    const size_t size_b = multiplier * size_a;
    for (const std::string& algorithm : algorithms) {
      const std::string bench_name = "extension_baselines/uniform/B:" +
                                     std::to_string(multiplier) + "x/" +
                                     algorithm;
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [=](benchmark::State& state) {
            const Dataset& a =
                CachedDataset(Distribution::kUniform, size_a, 51, opt);
            const Dataset& b =
                CachedDataset(Distribution::kUniform, size_b, 52, opt);
            RunDistanceJoin(state, algorithm, a, b, kEpsilon);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
