// Reproduces Figure 16: the full neuroscience use case (placing synapses by
// joining axon cylinders against dendrite cylinders) for eps = 5 and 10 —
// (a) execution time, (b) comparisons, (c) memory. Expected shape: TOUCH
// best on time and space; PBSM-fine second-fastest but with by far the
// largest footprint; filtering removes ~20-27% of dataset B (the tissue is
// dense in the centre and sparse at the borders), with less filtered at
// eps = 10 because the enlarged objects reach further.

#include <string>
#include <vector>

#include "bench_common.h"

namespace touch::bench {
namespace {

void RegisterAll() {
  const int neurons = static_cast<int>(Scaled(300));
  const std::vector<std::pair<std::string, std::string>> algorithms = {
      {"touch", "TOUCH"},         {"pbsm-200", "PBSM-500eq"},
      {"pbsm-40", "PBSM-100eq"},  {"s3", "S3"},
      {"rtree", "RTree"},         {"inl", "IndexedNL"},
  };
  for (const float epsilon : {5.0f, 10.0f}) {
    for (const auto& [name, label] : algorithms) {
      const std::string bench_name =
          "fig16_neuro/" + label +
          "/eps=" + std::to_string(static_cast<int>(epsilon));
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [=](benchmark::State& state) {
            const NeuroDatasets& data = CachedNeuroDatasets(neurons, 31);
            // Dataset A = axons, dataset B = dendrites; the paper builds on
            // the smaller axon set, which is what kAuto picks too.
            RunDistanceJoin(state, name, data.axons, data.dendrites, epsilon);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
