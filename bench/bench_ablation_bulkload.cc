// Ablation: STR vs Hilbert bulk loading (paper section 2.2.1 states the two
// "perform similarly and outperform TGS as well as the PR-Tree" on
// real-world data). Runs the synchronous R-tree traversal join with both
// loaders on the three synthetic distributions plus the neuroscience MBRs,
// and reports comparisons / time / memory so the claim can be checked here.

#include <string>

#include "bench_common.h"

namespace touch::bench {
namespace {

void RegisterAll() {
  const size_t size_a = Scaled(40'000);
  const size_t size_b = 3 * size_a;
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 1'600'000);
  constexpr float kEpsilon = 5.0f;

  const Distribution distributions[] = {Distribution::kUniform,
                                        Distribution::kGaussian,
                                        Distribution::kClustered};
  for (const Distribution distribution : distributions) {
    for (const std::string algorithm : {"rtree", "rtree-hilbert", "rtree-tgs", "rtree-guttman", "rtree-rstar"}) {
      const std::string bench_name = std::string("ablation_bulkload/") +
                                     DistributionName(distribution) + "/" +
                                     algorithm;
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [=](benchmark::State& state) {
            const Dataset& a = CachedDataset(distribution, size_a, 11, opt);
            const Dataset& b = CachedDataset(distribution, size_b, 12, opt);
            RunDistanceJoin(state, algorithm, a, b, kEpsilon);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }

  for (const std::string algorithm : {"rtree", "rtree-hilbert", "rtree-tgs", "rtree-guttman", "rtree-rstar"}) {
    const std::string bench_name = "ablation_bulkload/neuro/" + algorithm;
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [=](benchmark::State& state) {
          const NeuroDatasets& data =
              CachedNeuroDatasets(static_cast<int>(Scaled(60)), 21);
          RunDistanceJoin(state, algorithm, data.axons, data.dendrites,
                          kEpsilon);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
