// Ablation: the number of STR partitions (leaf buckets) of dataset A (paper
// section 5.2.1, DESIGN.md section 3). The paper fixes 1024 partitions; this
// bench sweeps 64..16384 to expose the trade-off: few partitions -> big
// leaves -> the local join degenerates towards a block nested loop; very
// many partitions -> taller tree and more assignment descent per B object.

#include <string>

#include "bench_common.h"

namespace touch::bench {
namespace {

void RegisterAll() {
  const size_t size_a = Scaled(40'000);
  const size_t size_b = 3 * size_a;
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 1'600'000);
  constexpr float kEpsilon = 5.0f;
  for (size_t partitions = 64; partitions <= 16384; partitions *= 4) {
    const std::string bench_name =
        "ablation_partitions/uniform/p=" + std::to_string(partitions);
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [=](benchmark::State& state) {
          const Dataset& a =
              CachedDataset(Distribution::kUniform, size_a, 15, opt);
          const Dataset& b =
              CachedDataset(Distribution::kUniform, size_b, 16, opt);
          AlgorithmConfig config;
          config.touch.partitions = partitions;
          RunDistanceJoin(state, "touch", a, b, kEpsilon, config);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
