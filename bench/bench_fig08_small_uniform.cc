// Reproduces Figure 8: *small* uniform datasets with all eight algorithms,
// including the quadratic nested loop and the plane sweep, epsilon = 10.
// Expected shape (log axes in the paper): NL slowest by orders of magnitude,
// PS next; TOUCH and PBSM-fine drastically ahead; execution time tracks the
// comparison count across the board.
//
// Paper workload: A = 10K, B = 160K..640K. Default here: A = 2.5K,
// B = 40K..160K (quarter scale), density-matched space.

#include <string>
#include <vector>

#include "bench_common.h"

namespace touch::bench {
namespace {

void RegisterAll() {
  const size_t size_a = Scaled(2'500);
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 10'000);
  const int pbsm_fine = std::max(1, static_cast<int>(opt.space / 2.0f));
  const int pbsm_coarse = std::max(1, static_cast<int>(opt.space / 10.0f));
  const std::vector<std::pair<std::string, std::string>> algorithms = {
      {"nl", "NL"},
      {"ps", "PS"},
      {"pbsm-" + std::to_string(pbsm_fine), "PBSM-500eq"},
      {"pbsm-" + std::to_string(pbsm_coarse), "PBSM-100eq"},
      {"s3", "S3"},
      {"inl", "IndexedNL"},
      {"rtree", "RTree"},
      {"touch", "TOUCH"},
  };
  constexpr float kEpsilon = 10.0f;
  const size_t base_b = Scaled(40'000);
  for (int step = 1; step <= 4; ++step) {
    const size_t size_b = base_b * static_cast<size_t>(step);
    for (const auto& [name, label] : algorithms) {
      const std::string bench_name = "fig08_small_uniform/" + label +
                                     "/B=" + std::to_string(size_b / 1000) +
                                     "K";
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [=](benchmark::State& state) {
            const Dataset& a =
                CachedDataset(Distribution::kUniform, size_a, 81, opt);
            const Dataset& b =
                CachedDataset(Distribution::kUniform, size_b, 82, opt);
            RunDistanceJoin(state, name, a, b, kEpsilon);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
