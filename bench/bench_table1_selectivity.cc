// Reproduces Table 1: join selectivity (|result| / (|A|*|B|), reported x1e6)
// of the four dataset families for epsilon = 5 and 10. Expected ordering:
// Gaussian > clustered > uniform among the synthetic sets, neuroscience
// higher still, and selectivity grows with epsilon.
//
// Paper workload: 160K x 1.6M synthetic, 644K x 1.285M neuroscience.
// Default here: 20K x 200K synthetic (density-matched), ~300-neuron tissue.

#include <string>

#include "bench_common.h"

namespace touch::bench {
namespace {

void RegisterSynthetic(Distribution distribution) {
  const size_t size_a = Scaled(20'000);
  const size_t size_b = 10 * size_a;
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 160'000);
  for (const float epsilon : {5.0f, 10.0f}) {
    const std::string name = std::string("table1/") +
                             DistributionName(distribution) + "/eps=" +
                             std::to_string(static_cast<int>(epsilon));
    benchmark::RegisterBenchmark(
        name.c_str(),
        [=](benchmark::State& state) {
          const Dataset& a = CachedDataset(distribution, size_a, 71, opt);
          const Dataset& b = CachedDataset(distribution, size_b, 72, opt);
          RunDistanceJoin(state, "touch", a, b, epsilon);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

void RegisterNeuro() {
  const int neurons = static_cast<int>(Scaled(300));
  for (const float epsilon : {5.0f, 10.0f}) {
    const std::string name =
        "table1/neuroscience/eps=" + std::to_string(static_cast<int>(epsilon));
    benchmark::RegisterBenchmark(
        name.c_str(),
        [=](benchmark::State& state) {
          const NeuroDatasets& data = CachedNeuroDatasets(neurons, 73);
          RunDistanceJoin(state, "touch", data.axons, data.dendrites, epsilon);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  using namespace touch::bench;
  RegisterSynthetic(touch::Distribution::kUniform);
  RegisterSynthetic(touch::Distribution::kGaussian);
  RegisterSynthetic(touch::Distribution::kClustered);
  RegisterNeuro();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
