// Ablation: TOUCH join-phase thread scaling. The paper runs single-threaded
// (one BlueGene core per subset); this extension parallelizes the
// independent per-inner-node local joins and measures how far that carries
// on a multicore host. Speedup saturates when phase 1+2 (single-threaded
// tree build and assignment, Amdahl) dominate.

#include <string>

#include "bench_common.h"

namespace touch::bench {
namespace {

void RegisterAll() {
  const size_t size_a = Scaled(100'000);
  const size_t size_b = 4 * size_a;
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 1'600'000);
  constexpr float kEpsilon = 10.0f;

  for (const int threads : {1, 2, 4, 8}) {
    const std::string bench_name =
        "ablation_threads/gaussian/threads:" + std::to_string(threads);
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [=](benchmark::State& state) {
          const Dataset& a =
              CachedDataset(Distribution::kGaussian, size_a, 41, opt);
          const Dataset& b =
              CachedDataset(Distribution::kGaussian, size_b, 42, opt);
          AlgorithmConfig config;
          config.touch.threads = threads;
          RunDistanceJoin(state, "touch", a, b, kEpsilon, config);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1)
        ->UseRealTime();
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
