#ifndef TOUCH_BENCH_BENCH_COMMON_H_
#define TOUCH_BENCH_BENCH_COMMON_H_

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "core/factory.h"
#include "datagen/distributions.h"
#include "datagen/neuro.h"
#include "join/algorithm.h"

namespace touch::bench {

/// Global size multiplier for all benchmark workloads, from the environment
/// variable TOUCH_BENCH_SCALE (default 1.0). The default workloads are scaled
/// down from the paper's BlueGene-era sizes so every binary finishes on one
/// laptop core in seconds; set TOUCH_BENCH_SCALE=4 (etc.) to approach the
/// paper's cardinalities.
inline double BenchScale() {
  static const double scale = [] {
    const char* env = std::getenv("TOUCH_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double parsed = std::atof(env);
    return parsed > 0 ? parsed : 1.0;
  }();
  return scale;
}

inline size_t Scaled(size_t base) {
  return static_cast<size_t>(std::llround(static_cast<double>(base) *
                                          BenchScale()));
}

/// The paper runs its large experiments with 1.6M-9.6M objects in a 1000^3
/// space. When we shrink cardinalities we shrink the space by the cube root
/// of the same factor, so that object density — which determines selectivity
/// and therefore the relative behaviour of the algorithms — matches the
/// paper's setting point for point.
inline SyntheticOptions DensityMatchedOptions(size_t actual_a,
                                              size_t paper_a) {
  SyntheticOptions opt;
  const double ratio =
      static_cast<double>(actual_a) / static_cast<double>(paper_a);
  const double shrink = std::cbrt(ratio);
  opt.space = static_cast<float>(1000.0 * shrink);
  opt.gaussian_mean = opt.space / 2;
  opt.gaussian_sigma = opt.space / 4;
  opt.cluster_sigma = static_cast<float>(220.0 * shrink);
  return opt;
}

/// Dataset cache: benchmark registration re-runs workloads with the same
/// inputs many times; generating multi-100K-object datasets once per distinct
/// key keeps the harness fast.
inline const Dataset& CachedDataset(Distribution distribution, size_t count,
                                    uint64_t seed,
                                    const SyntheticOptions& opt) {
  using Key = std::tuple<int, size_t, uint64_t, float, int, float>;
  static std::map<Key, Dataset>* cache = new std::map<Key, Dataset>();
  const Key key{static_cast<int>(distribution), count,        seed,
                opt.space,                      opt.clusters, opt.cluster_sigma};
  auto it = cache->find(key);
  if (it == cache->end()) {
    it = cache->emplace(key, GenerateSynthetic(distribution, count, seed, opt))
             .first;
  }
  return it->second;
}

/// Runs one distance join and reports the paper's metrics as benchmark
/// counters: object comparisons, result count, selectivity, filtered probe
/// objects and the memory footprint in MB.
inline void RunDistanceJoin(benchmark::State& state,
                            const std::string& algorithm_name,
                            const Dataset& a, const Dataset& b, float epsilon,
                            const AlgorithmConfig& config = {}) {
  const std::unique_ptr<SpatialJoinAlgorithm> algorithm =
      MakeAlgorithm(algorithm_name, config);
  if (algorithm == nullptr) {
    state.SkipWithError("unknown algorithm");
    return;
  }
  JoinStats last;
  for (auto _ : state) {
    CountingCollector out;
    last = DistanceJoin(*algorithm, a, b, epsilon, out);
  }
  state.counters["comparisons"] = static_cast<double>(last.comparisons);
  state.counters["results"] = static_cast<double>(last.results);
  state.counters["selectivity_e6"] =
      last.Selectivity(a.size(), b.size()) * 1e6;
  state.counters["filtered"] = static_cast<double>(last.filtered);
  state.counters["memMB"] =
      static_cast<double>(last.memory_bytes) / (1024.0 * 1024.0);
}

/// Neuroscience model cache (axon/dendrite MBR datasets), sized so the
/// default run has the paper's ~1:2 axon:dendrite ratio.
struct NeuroDatasets {
  Dataset axons;
  Dataset dendrites;
};

inline const NeuroDatasets& CachedNeuroDatasets(int neurons, uint64_t seed) {
  static std::map<std::pair<int, uint64_t>, NeuroDatasets>* cache =
      new std::map<std::pair<int, uint64_t>, NeuroDatasets>();
  const std::pair<int, uint64_t> key{neurons, seed};
  auto it = cache->find(key);
  if (it == cache->end()) {
    NeuroOptions opt;
    opt.neurons = neurons;
    const NeuroModel model = GenerateNeuroscience(opt, seed);
    NeuroDatasets data;
    data.axons = CylinderMbrs(model.axons);
    data.dendrites = CylinderMbrs(model.dendrites);
    it = cache->emplace(key, std::move(data)).first;
  }
  return it->second;
}

}  // namespace touch::bench

#endif  // TOUCH_BENCH_BENCH_COMMON_H_
