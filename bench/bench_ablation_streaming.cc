// Ablation: blocking vs non-blocking result delivery (paper section 2.2.3,
// NBPS). NBPS and PBSM use the same grid partitioning; NBPS interleaves the
// inputs as streams and emits matches on arrival while PBSM partitions
// everything before joining. This bench reports time-to-first-result next to
// total time: NBPS pays more total time for drastically earlier first
// output.

#include <string>

#include "bench_common.h"
#include "join/nbps.h"
#include "join/pbsm.h"

namespace touch::bench {
namespace {

void RunStreaming(benchmark::State& state, const std::string& algorithm_name,
                  const Dataset& a, const Dataset& b, float epsilon,
                  int resolution) {
  AlgorithmConfig config;
  config.nbps.resolution = resolution;
  config.pbsm.resolution = resolution;
  const std::unique_ptr<SpatialJoinAlgorithm> algorithm =
      MakeAlgorithm(algorithm_name, config);
  JoinStats last;
  for (auto _ : state) {
    CountingCollector out;
    last = DistanceJoin(*algorithm, a, b, epsilon, out);
  }
  state.counters["results"] = static_cast<double>(last.results);
  state.counters["total_ms"] = last.total_seconds * 1e3;
  // PBSM delivers nothing until its partition phase ends; its first result
  // is effectively at join start = build+assign end. NBPS records its first
  // emit directly.
  state.counters["first_result_ms"] =
      (algorithm_name == "nbps" ? last.first_result_seconds
                                : last.build_seconds + last.assign_seconds) *
      1e3;
  state.counters["memMB"] =
      static_cast<double>(last.memory_bytes) / (1024.0 * 1024.0);
}

void RegisterAll() {
  const size_t size_a = Scaled(80'000);
  const size_t size_b = 2 * size_a;
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 1'600'000);
  constexpr float kEpsilon = 5.0f;
  constexpr int kResolution = 100;

  const Distribution distributions[] = {Distribution::kUniform,
                                        Distribution::kClustered};
  for (const Distribution distribution : distributions) {
    for (const std::string algorithm : {"nbps", "pbsm"}) {
      const std::string bench_name = std::string("ablation_streaming/") +
                                     DistributionName(distribution) + "/" +
                                     algorithm;
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [=](benchmark::State& state) {
            const Dataset& a = CachedDataset(distribution, size_a, 31, opt);
            const Dataset& b = CachedDataset(distribution, size_b, 32, opt);
            RunStreaming(state, algorithm, a, b, kEpsilon, kResolution);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
