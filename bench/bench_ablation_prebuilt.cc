// Ablation: the section-4.3 build-skip — how much of TOUCH's total time the
// tree-building phase costs, and what reusing a prebuilt (converted) index
// saves when the same dataset A is joined repeatedly against fresh B
// batches. Reported per join-against-one-batch; `build_ms` is the phase the
// prebuilt path eliminates.

#include <string>

#include "bench_common.h"
#include "core/touch.h"
#include "index/rtree.h"
#include "util/timer.h"

namespace touch::bench {
namespace {

void RegisterAll() {
  const size_t size_a = Scaled(100'000);
  const size_t size_b = 2 * size_a;
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 1'600'000);
  constexpr float kEpsilon = 5.0f;
  constexpr int kBatches = 4;

  benchmark::RegisterBenchmark(
      "ablation_prebuilt/build_every_join",
      [=](benchmark::State& state) {
        const Dataset& a =
            CachedDataset(Distribution::kGaussian, size_a, 61, opt);
        Dataset enlarged = a;
        for (Box& box : enlarged) box = box.Enlarged(kEpsilon);
        TouchOptions touch_opt;
        touch_opt.join_order = TouchOptions::JoinOrder::kBuildOnA;
        TouchJoin join(touch_opt);
        JoinStats last;
        double build_seconds = 0;
        for (auto _ : state) {
          for (int batch = 0; batch < kBatches; ++batch) {
            const Dataset& b = CachedDataset(Distribution::kGaussian, size_b,
                                             62 + batch, opt);
            CountingCollector out;
            last = join.Join(enlarged, b, out);
            build_seconds += last.build_seconds;
          }
        }
        state.counters["build_ms"] = build_seconds * 1e3 / kBatches;
        state.counters["results"] = static_cast<double>(last.results);
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);

  benchmark::RegisterBenchmark(
      "ablation_prebuilt/convert_once_join_many",
      [=](benchmark::State& state) {
        const Dataset& a =
            CachedDataset(Distribution::kGaussian, size_a, 61, opt);
        Dataset enlarged = a;
        for (Box& box : enlarged) box = box.Enlarged(kEpsilon);
        TouchJoin join;
        JoinStats last;
        double convert_seconds = 0;
        for (auto _ : state) {
          Timer convert;
          // The pre-existing index (already paid for by the wider system);
          // converting it replaces all four per-batch builds.
          const RTree index(enlarged, 128, 2);
          const TouchTree tree = TouchTree::FromRTree(index);
          convert_seconds += convert.Seconds();
          for (int batch = 0; batch < kBatches; ++batch) {
            const Dataset& b = CachedDataset(Distribution::kGaussian, size_b,
                                             62 + batch, opt);
            CountingCollector out;
            last = join.JoinWithPrebuiltTree(tree, enlarged, b, out);
          }
        }
        state.counters["convert_ms"] = convert_seconds * 1e3;
        state.counters["results"] = static_cast<double>(last.results);
      })
      ->Unit(benchmark::kMillisecond)
      ->Iterations(1);
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
