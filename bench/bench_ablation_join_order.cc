// Ablation: join order (paper section 5.2.3, DESIGN.md section 3, point 6).
// TOUCH can build its tree on either input; the paper argues for the smaller
// dataset (sparser index, cheaper build, better filtering). This bench joins
// asymmetric inputs (|B| = 5|A|) with the tree forced onto each side and
// with the automatic policy, which should match the better of the two.

#include <string>
#include <vector>

#include "bench_common.h"

namespace touch::bench {
namespace {

void RegisterAll() {
  const size_t size_a = Scaled(20'000);
  const size_t size_b = 5 * size_a;
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 1'600'000);
  const std::vector<std::pair<TouchOptions::JoinOrder, std::string>> orders = {
      {TouchOptions::JoinOrder::kAuto, "auto_smaller_first"},
      {TouchOptions::JoinOrder::kBuildOnA, "build_on_small_A"},
      {TouchOptions::JoinOrder::kBuildOnB, "build_on_large_B"},
  };
  const Distribution distributions[] = {Distribution::kUniform,
                                        Distribution::kClustered};
  constexpr float kEpsilon = 5.0f;
  for (const Distribution distribution : distributions) {
    for (const auto& [order, label] : orders) {
      const std::string bench_name = std::string("ablation_join_order/") +
                                     DistributionName(distribution) + "/" +
                                     label;
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [=](benchmark::State& state) {
            const Dataset& a = CachedDataset(distribution, size_a, 13, opt);
            const Dataset& b = CachedDataset(distribution, size_b, 14, opt);
            AlgorithmConfig config;
            config.touch.join_order = order;
            RunDistanceJoin(state, "touch", a, b, kEpsilon, config);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
