// Reproduces Figure 13: TOUCH's filtering capability — how many objects of
// dataset B are discarded outright during the assignment phase, per
// distribution, as B grows. Expected shape: (nearly) zero filtering on
// uniform data, a little on Gaussian, the most on clustered data; the count
// grows linearly with |B|.
//
// Paper workload: A = 1.6M, B = 1.6M..9.6M, eps = 5. Default: A = 50K.
//
// Filtering is extremely sensitive to how much of the space dataset A's
// clusters cover: with the paper's literal clustered parameters ("up to 100
// locations", sigma 220 over a 1000-unit space) the hotspots blanket the
// space and nothing can be filtered. The paper's 4.07% clustered filtering
// implies a sparser draw, so next to the literal configuration this bench
// also runs a sparse-clustered series (20 hotspots, sigma 30, ~17% of B
// filtered at laptop scale) that demonstrates the mechanism Figure 13 is
// about. EXPERIMENTS.md discusses the sensitivity.

#include <string>

#include "bench_common.h"

namespace touch::bench {
namespace {

void RegisterAll() {
  const size_t size_a = Scaled(50'000);
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 1'600'000);
  const Distribution distributions[] = {Distribution::kUniform,
                                        Distribution::kGaussian,
                                        Distribution::kClustered};
  constexpr float kEpsilon = 5.0f;
  for (const Distribution distribution : distributions) {
    for (int multiple = 1; multiple <= 6; ++multiple) {
      const size_t size_b = size_a * static_cast<size_t>(multiple);
      const std::string bench_name =
          std::string("fig13_filtering/") + DistributionName(distribution) +
          "/B=" + std::to_string(multiple) + "xA";
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [=](benchmark::State& state) {
            const Dataset& a = CachedDataset(distribution, size_a, 51, opt);
            const Dataset& b = CachedDataset(distribution, size_b, 52, opt);
            // Build on A (the paper fixes A as the indexed side here) so the
            // `filtered` counter refers to objects of B.
            AlgorithmConfig config;
            config.touch.join_order = TouchOptions::JoinOrder::kBuildOnA;
            RunDistanceJoin(state, "touch", a, b, kEpsilon, config);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }

  // Sparse-clustered series: hotspots cover a fraction of the space, so B
  // objects landing in the gaps are filtered (the effect Figure 13 shows).
  SyntheticOptions sparse = opt;
  sparse.clusters = 20;
  sparse.cluster_sigma = 30.0f * (opt.space / 1000.0f);
  for (int multiple = 1; multiple <= 6; ++multiple) {
    const size_t size_b = size_a * static_cast<size_t>(multiple);
    const std::string bench_name =
        "fig13_filtering/clustered_sparse/B=" + std::to_string(multiple) +
        "xA";
    benchmark::RegisterBenchmark(
        bench_name.c_str(),
        [=](benchmark::State& state) {
          const Dataset& a =
              CachedDataset(Distribution::kClustered, size_a, 51, sparse);
          const Dataset& b =
              CachedDataset(Distribution::kClustered, size_b, 52, sparse);
          AlgorithmConfig config;
          config.touch.join_order = TouchOptions::JoinOrder::kBuildOnA;
          RunDistanceJoin(state, "touch", a, b, kEpsilon, config);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
