// Ablation: TOUCH's local-join strategy (DESIGN.md section 3, point 4).
// Algorithm 4 of the paper joins each inner node against its descendant
// leaves through a space-oriented grid; this bench swaps that grid for a
// plane sweep and a nested loop to quantify what the grid actually buys, on
// a uniform and a clustered workload.

#include <string>
#include <vector>

#include "bench_common.h"

namespace touch::bench {
namespace {

void RegisterAll() {
  const size_t size_a = Scaled(40'000);
  const size_t size_b = 3 * size_a;
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 1'600'000);
  const std::vector<std::pair<LocalJoinStrategy, std::string>> strategies = {
      {LocalJoinStrategy::kGrid, "grid"},
      {LocalJoinStrategy::kPlaneSweep, "plane_sweep"},
      {LocalJoinStrategy::kNestedLoop, "nested_loop"},
  };
  const Distribution distributions[] = {Distribution::kUniform,
                                        Distribution::kClustered};
  constexpr float kEpsilon = 5.0f;
  for (const Distribution distribution : distributions) {
    for (const auto& [strategy, label] : strategies) {
      const std::string bench_name = std::string("ablation_local_join/") +
                                     DistributionName(distribution) + "/" +
                                     label;
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [=](benchmark::State& state) {
            const Dataset& a = CachedDataset(distribution, size_a, 11, opt);
            const Dataset& b = CachedDataset(distribution, size_b, 12, opt);
            AlgorithmConfig config;
            config.touch.local_join = strategy;
            RunDistanceJoin(state, "touch", a, b, kEpsilon, config);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
