// Reproduces Figure 9: large *uniform* datasets, growing B, epsilon = 5 —
// (a) comparisons, (b) execution time, (c) memory. Expected shape: TOUCH
// fastest / fewest comparisons; PBSM-fine next but with a memory footprint
// orders of magnitude above everyone; S3 at its best (uniform data suits
// space-oriented partitioning); RTree faster than INL at similar comparisons.

#include "bench_large_figure.h"

int main(int argc, char** argv) {
  touch::bench::RegisterLargeFigure("fig09_uniform",
                                    touch::Distribution::kUniform);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
