// Reproduces Figure 12: the impact of doubling the distance threshold
// epsilon (5 -> 10) on execution time, for every algorithm on every
// synthetic distribution with |A| = |B|. Expected shape: most algorithms
// roughly double their time; both PBSM configurations grow super-linearly
// because a larger epsilon replicates more objects into more cells.
//
// Paper workload: 1.6M x 1.6M. Default here: 50K x 50K, density-matched.

#include <string>
#include <vector>

#include "bench_common.h"

namespace touch::bench {
namespace {

void RegisterAll() {
  const size_t size = Scaled(50'000);
  const SyntheticOptions opt = DensityMatchedOptions(size, 1'600'000);
  const int pbsm_fine = std::max(1, static_cast<int>(opt.space / 2.0f));
  const int pbsm_coarse = std::max(1, static_cast<int>(opt.space / 10.0f));
  const std::vector<std::pair<std::string, std::string>> algorithms = {
      {"touch", "TOUCH"},
      {"pbsm-" + std::to_string(pbsm_fine), "PBSM-500eq"},
      {"pbsm-" + std::to_string(pbsm_coarse), "PBSM-100eq"},
      {"s3", "S3"},
      {"rtree", "RTree"},
      {"inl", "IndexedNL"},
  };
  const Distribution distributions[] = {Distribution::kUniform,
                                        Distribution::kGaussian,
                                        Distribution::kClustered};
  for (const Distribution distribution : distributions) {
    for (const auto& [name, label] : algorithms) {
      for (const float epsilon : {5.0f, 10.0f}) {
        const std::string bench_name =
            std::string("fig12_epsilon/") + DistributionName(distribution) +
            "/" + label + "/eps=" + std::to_string(static_cast<int>(epsilon));
        benchmark::RegisterBenchmark(
            bench_name.c_str(),
            [=](benchmark::State& state) {
              const Dataset& a = CachedDataset(distribution, size, 61, opt);
              const Dataset& b = CachedDataset(distribution, size, 62, opt);
              RunDistanceJoin(state, name, a, b, epsilon);
            })
            ->Unit(benchmark::kMillisecond)
            ->Iterations(1);
      }
    }
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
