// Reproduces Figure 10: large *Gaussian* datasets, growing B, epsilon = 5.
// Gaussian data has the highest selectivity of the three synthetic
// distributions (Table 1), so every algorithm does more comparisons and takes
// longer than in Figure 9; the ranking stays TOUCH < PBSM-fine < the rest.

#include "bench_large_figure.h"

int main(int argc, char** argv) {
  touch::bench::RegisterLargeFigure("fig10_gaussian",
                                    touch::Distribution::kGaussian);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
