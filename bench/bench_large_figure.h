#ifndef TOUCH_BENCH_BENCH_LARGE_FIGURE_H_
#define TOUCH_BENCH_BENCH_LARGE_FIGURE_H_

#include <string>
#include <vector>

#include "bench_common.h"

namespace touch::bench {

/// Shared driver for the paper's large-dataset figures 9 (uniform), 10
/// (Gaussian) and 11 (clustered): dataset A fixed, dataset B grown to 6x A,
/// epsilon = 5, reporting comparisons, execution time and memory for the six
/// scalable algorithms (NL and PS are excluded, as in the paper).
///
/// Default scale: A = 50K (paper: 1.6M), B = 1x..6x A, density-matched space.
/// The paper's PBSM-500 / PBSM-100 configurations are grids with cell edges
/// of 2 and 10 space units; we translate them to equivalent resolutions for
/// the shrunken space so replication behaviour matches.
inline void RegisterLargeFigure(const std::string& figure,
                                Distribution distribution) {
  const size_t size_a = Scaled(50'000);
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 1'600'000);
  const int pbsm_fine = std::max(1, static_cast<int>(opt.space / 2.0f));
  const int pbsm_coarse = std::max(1, static_cast<int>(opt.space / 10.0f));
  const std::vector<std::pair<std::string, std::string>> algorithms = {
      {"pbsm-" + std::to_string(pbsm_fine), "PBSM-500eq"},
      {"pbsm-" + std::to_string(pbsm_coarse), "PBSM-100eq"},
      {"s3", "S3"},
      {"inl", "IndexedNL"},
      {"rtree", "RTree"},
      {"touch", "TOUCH"},
  };
  constexpr float kEpsilon = 5.0f;
  for (int multiple = 1; multiple <= 6; ++multiple) {
    const size_t size_b = size_a * static_cast<size_t>(multiple);
    for (const auto& [name, label] : algorithms) {
      const std::string bench_name =
          figure + "/" + label + "/B=" + std::to_string(multiple) + "xA";
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [=](benchmark::State& state) {
            const Dataset& a = CachedDataset(distribution, size_a, 91, opt);
            const Dataset& b = CachedDataset(distribution, size_b, 92, opt);
            RunDistanceJoin(state, name, a, b, kEpsilon);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace touch::bench

#endif  // TOUCH_BENCH_BENCH_LARGE_FIGURE_H_
