// Planner benchmark: what does cost-based auto-planning buy (or cost) versus
// committing to one fixed algorithm for every workload?
//
// Three workload shapes with different best algorithms. For each, "auto_cold"
// pays planning plus a cold index build, "auto_warm" shows the steady state
// of a serving engine (index cache populated), and the fixed algorithms
// bracket them between the best and worst static choice. The benchmark label
// of the auto runs records which algorithm the planner picked.

#include <algorithm>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/overlap_kernel.h"
#include "engine/engine.h"
#include "engine/sharded_engine.h"

namespace touch::bench {
namespace {

// TOUCH_BENCH_TRACE=1 runs every engine benchmark with tracing + metrics
// attached (one process-wide tracer, never exported): the CI overhead gate
// compares this run against a default run of the same binary to bound the
// cost of leaving observability on in production. The auto_* benchmarks are
// the interesting rows — they exercise the span-per-phase engine path.
EngineOptions TracedOptions() {
  EngineOptions options;
  if (std::getenv("TOUCH_BENCH_TRACE") != nullptr) {
    static const auto tracer = std::make_shared<Tracer>();
    static const auto metrics = std::make_shared<MetricsRegistry>();
    options.tracer = tracer;
    options.metrics = metrics;
  }
  return options;
}

struct Workload {
  std::string name;
  Distribution dist_a;
  size_t size_a;
  Distribution dist_b;
  size_t size_b;
  float epsilon;
};

void RegisterWorkload(const Workload& workload) {
  const SyntheticOptions opt = DensityMatchedOptions(
      std::max(workload.size_a, workload.size_b), 1'600'000);
  const Dataset& a =
      CachedDataset(workload.dist_a, workload.size_a, 71, opt);
  const Dataset& b =
      CachedDataset(workload.dist_b, workload.size_b, 72, opt);
  const std::string prefix = "engine_planner/" + workload.name + "/";

  benchmark::RegisterBenchmark(
      (prefix + "auto_cold").c_str(),
      [=](benchmark::State& state) {
        QueryEngine engine(TracedOptions());
        const DatasetHandle ha = engine.RegisterDataset("A", a);
        const DatasetHandle hb = engine.RegisterDataset("B", b);
        const JoinRequest request{ha, hb, workload.epsilon};
        JoinResult last;
        for (auto _ : state) {
          engine.ClearIndexCache();
          CountingCollector out;
          last = engine.Execute(request, out);
        }
        state.SetLabel(last.plan.algorithm);
        state.counters["results"] = static_cast<double>(last.stats.results);
      })
      ->Unit(benchmark::kMillisecond)->Iterations(1);

  benchmark::RegisterBenchmark(
      (prefix + "auto_warm").c_str(),
      [=](benchmark::State& state) {
        QueryEngine engine(TracedOptions());
        const DatasetHandle ha = engine.RegisterDataset("A", a);
        const DatasetHandle hb = engine.RegisterDataset("B", b);
        const JoinRequest request{ha, hb, workload.epsilon};
        {
          CountingCollector warmup;
          engine.Execute(request, warmup);
        }
        JoinResult last;
        for (auto _ : state) {
          CountingCollector out;
          last = engine.Execute(request, out);
        }
        state.SetLabel(last.plan.algorithm +
                       (last.index_cache_hit ? " cached" : ""));
        state.counters["results"] = static_cast<double>(last.stats.results);
      })
      ->Unit(benchmark::kMillisecond)->Iterations(1);

  benchmark::RegisterBenchmark(
      (prefix + "auto_tight_memory").c_str(),
      [=](benchmark::State& state) {
        EngineOptions options = TracedOptions();
        options.planner.memory_budget_bytes = 2 << 20;
        QueryEngine engine(options);
        const DatasetHandle ha = engine.RegisterDataset("A", a);
        const DatasetHandle hb = engine.RegisterDataset("B", b);
        const JoinRequest request{ha, hb, workload.epsilon};
        JoinResult last;
        for (auto _ : state) {
          engine.ClearIndexCache();
          CountingCollector out;
          last = engine.Execute(request, out);
        }
        state.SetLabel(last.plan.algorithm);
        state.counters["results"] = static_cast<double>(last.stats.results);
        state.counters["memMB"] =
            static_cast<double>(last.stats.memory_bytes) / (1024.0 * 1024.0);
      })
      ->Unit(benchmark::kMillisecond)->Iterations(1);

  // Sharded scatter-gather: the same request fanned out over 4 spatial
  // shards per dataset (up to 16 shard-pair plans, pruned by the
  // epsilon-inflated MBR test) on a warm index cache — the steady state of
  // the distribution-ready engine versus auto_warm's single-catalog run.
  // The label records the fan-out that actually executed.
  benchmark::RegisterBenchmark(
      (prefix + "auto_sharded").c_str(),
      [=](benchmark::State& state) {
        EngineOptions options = TracedOptions();
        options.shards = 4;
        ShardedQueryEngine engine(options);
        const DatasetHandle ha = engine.RegisterDataset("A", a);
        const DatasetHandle hb = engine.RegisterDataset("B", b);
        const JoinRequest request{ha, hb, workload.epsilon};
        {
          CountingCollector warmup;
          engine.Execute(request, warmup);
        }
        ShardedJoinResult last;
        for (auto _ : state) {
          CountingCollector out;
          last = engine.Execute(request, out);
        }
        state.SetLabel("pairs=" + std::to_string(last.pairs.size()) + "/" +
                       std::to_string(last.shard_pairs_total) +
                       (last.merged.index_cache_hit ? " cached" : ""));
        state.counters["results"] =
            static_cast<double>(last.merged.stats.results);
      })
      ->Unit(benchmark::kMillisecond)->Iterations(1);

  // Self-calibrating planning: the engine first *measures* every candidate
  // family cold (ExecuteFixed runs are recorded as feedback, cache cleared
  // between runs so each one pays its build), then plans the same request
  // with the fitted cost models. The label shows whether the measured
  // evidence overrode the static rule — the paper's "no single algorithm
  // wins everywhere" claim, closed into a feedback loop. Compare against
  // auto_cold (static rules, same cold execution).
  benchmark::RegisterBenchmark(
      (prefix + "auto_calibrated").c_str(),
      [=](benchmark::State& state) {
        // Calibration enabled by default.
        QueryEngine engine(TracedOptions());
        const DatasetHandle ha = engine.RegisterDataset("A", a);
        const DatasetHandle hb = engine.RegisterDataset("B", b);
        const JoinRequest request{ha, hb, workload.epsilon};
        const size_t seeds = engine.options().calibration.min_samples;
        for (const std::string fixed : {"touch", "pbsm-100", "inl", "ps"}) {
          for (size_t i = 0; i < seeds; ++i) {
            engine.ClearIndexCache();
            CountingCollector out;
            engine.ExecuteFixed(fixed, request, out);
          }
        }
        JoinResult last;
        for (auto _ : state) {
          engine.ClearIndexCache();
          CountingCollector out;
          last = engine.Execute(request, out);
        }
        std::string label =
            (last.plan.calibrated ? "calibrated:" : "static:") +
            last.plan.algorithm;
        if (last.plan.calibrated &&
            last.plan.static_algorithm != last.plan.algorithm) {
          label += " (static rule: " + last.plan.static_algorithm + ")";
        }
        state.SetLabel(label);
        state.counters["results"] = static_cast<double>(last.stats.results);
        state.counters["predicted_ms"] = last.plan.predicted_seconds * 1e3;
      })
      ->Unit(benchmark::kMillisecond)->Iterations(1);

  // Async submission throughput: a warm engine answering a burst of
  // repeated requests through per-request futures (the serving steady
  // state) versus the same burst through the blocking wrapper one by one.
  benchmark::RegisterBenchmark(
      (prefix + "submit_burst").c_str(),
      [=](benchmark::State& state) {
        QueryEngine engine(TracedOptions());
        const DatasetHandle ha = engine.RegisterDataset("A", a);
        const DatasetHandle hb = engine.RegisterDataset("B", b);
        const std::vector<JoinRequest> burst(16,
                                             JoinRequest{ha, hb,
                                                         workload.epsilon});
        {
          CountingCollector warmup;
          engine.Execute(burst[0], warmup);
        }
        uint64_t results = 0;
        for (auto _ : state) {
          BatchHandle handles = engine.SubmitBatch(burst);
          for (RequestHandle& handle : handles.requests()) {
            results = handle.Get().stats.results;
          }
        }
        state.counters["results"] = static_cast<double>(results);
        state.counters["requests"] = static_cast<double>(burst.size());
      })
      ->Unit(benchmark::kMillisecond)->Iterations(1);

  for (const std::string fixed : {"touch", "pbsm-100", "inl", "ps"}) {
    benchmark::RegisterBenchmark(
        (prefix + "fixed_" + fixed).c_str(),
        [=](benchmark::State& state) {
          RunDistanceJoin(state, fixed, a, b, workload.epsilon);
        })
        ->Unit(benchmark::kMillisecond)->Iterations(1);
  }
}

// --- per-kernel microbenches -------------------------------------------------
//
// The epsilon-overlap kernels of core/overlap_kernel.h, each measured in the
// shape its consumer uses it — with one row per runtime-available dispatch
// level (scalar, sse2, avx2 / neon), all produced in ONE run of this binary
// by forcing each level around the timing loop. The <level>/scalar ratio is
// the direct speedup of that instruction set; the differential tests hold
// every level to bit-identical results, so the ratios compare equal work.

/// Runs `body` (the timing loop) with the dispatch level forced to `level`,
/// restoring the entry level after so later benches see auto dispatch.
template <typename Body>
void WithForcedLevel(benchmark::State& state, simd::Level level, Body&& body) {
  const simd::Level entry = ActiveSimdLevel();
  std::string error;
  if (!ForceSimdLevel(level, &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  body();
  state.SetLabel(SimdLevelName());
  ForceSimdLevel(entry);
}

void RegisterKernelBenches() {
  const size_t slab_size = Scaled(60'000);
  const SyntheticOptions opt = DensityMatchedOptions(slab_size, 1'600'000);
  const Dataset* data =
      &CachedDataset(Distribution::kClustered, slab_size, 91, opt);
  const Dataset* queries =
      &CachedDataset(Distribution::kClustered, Scaled(4'000), 92, opt);
  const float epsilon = 5.0f;

  // Full-range scans: the INL leaf visit / nested-loop inner loop shape.
  const auto register_collect = [=](const std::string& name,
                                    simd::Level level) {
    benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& state) {
      BoxSlab slab;
      slab.Assign(*data, epsilon);
      std::vector<uint32_t> hits;
      uint64_t found = 0;
      WithForcedLevel(state, level, [&] {
        for (auto _ : state) {
          found = 0;
          for (const Box& query : *queries) {
            hits.clear();
            CollectOverlaps(slab, 0, slab.size(), query, hits);
            found += hits.size();
          }
        }
      });
      state.counters["hits"] = static_cast<double>(found);
    })->Unit(benchmark::kMillisecond)->Iterations(1);
  };

  // Early-exit scans from a sorted slab: the plane-sweep inner loop. Every
  // box sweeps the candidates after it until lo_x passes its hi_x.
  const auto register_sweep = [=](const std::string& name, simd::Level level) {
    benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& state) {
      Dataset sorted = *data;
      std::sort(sorted.begin(), sorted.end(),
                [](const Box& a, const Box& b) { return a.lo.x < b.lo.x; });
      BoxSlab slab;
      slab.Assign(sorted, epsilon);
      std::vector<uint32_t> hits;
      uint64_t found = 0;
      WithForcedLevel(state, level, [&] {
        for (auto _ : state) {
          found = 0;
          for (size_t i = 0; i < sorted.size(); ++i) {
            hits.clear();
            CollectOverlapsUntilBeyondX(slab, i + 1, slab.size(),
                                        sorted[i].Enlarged(epsilon), hits);
            found += hits.size();
          }
        }
      });
      state.counters["hits"] = static_cast<double>(found);
    })->Unit(benchmark::kMillisecond)->Iterations(1);
  };

  // Fanout-sized windows with a stop-at-second-hit: the TOUCH assignment
  // descent (Algorithm 3) classifying a box against a node's children.
  const auto register_classify = [=](const std::string& name,
                                     simd::Level level) {
    benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& state) {
      constexpr size_t kFanout = 64;
      BoxSlab slab;
      slab.Assign(*data, epsilon);
      const size_t query_count = std::min<size_t>(queries->size(), 256);
      uint64_t examined = 0;
      uint64_t classified = 0;
      WithForcedLevel(state, level, [&] {
        for (auto _ : state) {
          examined = 0;
          classified = 0;
          for (size_t q = 0; q < query_count; ++q) {
            for (size_t base = 0; base + kFanout <= slab.size();
                 base += kFanout) {
              size_t first = 0;
              classified += static_cast<uint64_t>(
                  ClassifyOverlaps(slab, base, base + kFanout, (*queries)[q],
                                   &first, &examined));
            }
          }
        }
      });
      state.counters["classified"] = static_cast<double>(classified);
    })->Unit(benchmark::kMillisecond)->Iterations(1);
  };

  // Position-list gathers: the TOUCH grid local join testing a probe box
  // against a cell's occupant list (shuffled, non-contiguous positions).
  const auto register_gather = [=](const std::string& name,
                                   simd::Level level) {
    benchmark::RegisterBenchmark(name.c_str(), [=](benchmark::State& state) {
      BoxSlab slab;
      slab.Assign(*data, epsilon);
      std::vector<uint32_t> positions(slab.size());
      for (uint32_t i = 0; i < positions.size(); ++i) positions[i] = i;
      // Deterministic shuffle: cell occupants arrive in scatter order, not
      // slab order, so the gather pays non-contiguous loads here too.
      for (size_t i = positions.size(); i > 1; --i) {
        std::swap(positions[i - 1], positions[(i * 2654435761u) % i]);
      }
      std::vector<uint32_t> hits;
      uint64_t found = 0;
      WithForcedLevel(state, level, [&] {
        for (auto _ : state) {
          found = 0;
          for (const Box& query : *queries) {
            hits.clear();
            CollectOverlapsGather(slab, positions, query, hits);
            found += hits.size();
          }
        }
      });
      state.counters["hits"] = static_cast<double>(found);
    })->Unit(benchmark::kMillisecond)->Iterations(1);
  };

  for (const simd::Level level : simd::RuntimeAvailableLevels()) {
    const std::string suffix = simd::LevelName(level);
    register_collect("overlap_kernel/collect/" + suffix, level);
    register_sweep("overlap_kernel/sweep/" + suffix, level);
    register_classify("overlap_kernel/classify/" + suffix, level);
    register_gather("overlap_kernel/gather/" + suffix, level);
  }
}

void RegisterAll() {
  const std::vector<Workload> workloads = {
      // Near-uniform mid-size pair: PBSM territory.
      {"uniform", Distribution::kUniform, Scaled(30'000),
       Distribution::kUniform, Scaled(40'000), 5.0f},
      // Skewed data: TOUCH territory.
      {"clustered", Distribution::kClustered, Scaled(50'000),
       Distribution::kClustered, Scaled(100'000), 5.0f},
      // Skewed extreme cardinality asymmetry: INL territory (uniform
      // asymmetric pairs go to PBSM instead).
      {"asymmetric", Distribution::kClustered, Scaled(2'000),
       Distribution::kClustered, Scaled(200'000), 2.0f},
  };
  for (const Workload& workload : workloads) RegisterWorkload(workload);
  RegisterKernelBenches();
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
