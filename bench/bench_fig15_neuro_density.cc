// Reproduces Figure 15: execution time on increasingly dense neuroscience
// data, emulated (as in the paper) by joining random subsets of 20%..100% of
// the axon and dendrite cylinder sets, eps = 5. Expected shape (log axis in
// the paper): TOUCH ahead of PBSM-fine by ~an order of magnitude at full
// density and ahead of S3/RTree/INL by far more; the gap *widens* with
// density — the paper's scalability claim.

#include <algorithm>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "util/rng.h"

namespace touch::bench {
namespace {

// Deterministic random subset: shuffle ids once, take a prefix.
Dataset RandomSubset(const Dataset& data, double fraction, uint64_t seed) {
  std::vector<uint32_t> ids(data.size());
  std::iota(ids.begin(), ids.end(), 0);
  Rng rng(seed);
  for (size_t i = ids.size(); i > 1; --i) {
    std::swap(ids[i - 1], ids[rng.UniformInt(i)]);
  }
  const size_t keep =
      static_cast<size_t>(fraction * static_cast<double>(data.size()));
  Dataset subset;
  subset.reserve(keep);
  for (size_t i = 0; i < keep; ++i) subset.push_back(data[ids[i]]);
  return subset;
}

void RegisterAll() {
  const int neurons = static_cast<int>(Scaled(300));
  // PBSM grids sized for the ~300-unit tissue volume: cell edges ~1.5 and
  // ~7.5 units (the tissue objects are ~3-unit cylinders).
  const std::vector<std::pair<std::string, std::string>> algorithms = {
      {"pbsm-200", "PBSM-500eq"}, {"pbsm-40", "PBSM-100eq"}, {"s3", "S3"},
      {"inl", "IndexedNL"},       {"rtree", "RTree"},        {"touch", "TOUCH"},
  };
  constexpr float kEpsilon = 5.0f;
  for (int percent = 20; percent <= 100; percent += 20) {
    for (const auto& [name, label] : algorithms) {
      const std::string bench_name = "fig15_neuro_density/" + label +
                                     "/density=" + std::to_string(percent) +
                                     "%";
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [=](benchmark::State& state) {
            const NeuroDatasets& full = CachedNeuroDatasets(neurons, 31);
            const double fraction = percent / 100.0;
            const Dataset a = RandomSubset(full.axons, fraction, 131);
            const Dataset b = RandomSubset(full.dendrites, fraction, 132);
            RunDistanceJoin(state, name, a, b, kEpsilon);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
