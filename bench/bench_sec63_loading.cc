// Reproduces section 6.3 ("Loading the Data"): loading both datasets into
// memory is dwarfed by the spatial join itself, so speeding up the in-memory
// join attacks the real bottleneck. The paper measures <= 2s of loading
// against 334..1512s of PBSM-500 join time.
//
// We materialize the datasets in a binary on-disk format once, then measure
// (a) reading them back into memory and (b) the fastest grid join on them.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"

namespace touch::bench {
namespace {

std::string TempPath(const std::string& name) {
  return "/tmp/touch_bench_" + name + ".bin";
}

void WriteDataset(const Dataset& data, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return;
  const uint64_t n = data.size();
  std::fwrite(&n, sizeof(n), 1, f);
  std::fwrite(data.data(), sizeof(Box), data.size(), f);
  std::fclose(f);
}

Dataset ReadDataset(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return {};
  uint64_t n = 0;
  if (std::fread(&n, sizeof(n), 1, f) != 1) {
    std::fclose(f);
    return {};
  }
  Dataset data(n);
  const size_t read = std::fread(data.data(), sizeof(Box), n, f);
  std::fclose(f);
  data.resize(read);
  return data;
}

void RegisterAll() {
  const size_t size_a = Scaled(50'000);
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 1'600'000);
  const int pbsm_fine = std::max(1, static_cast<int>(opt.space / 2.0f));
  for (int multiple = 1; multiple <= 6; ++multiple) {
    const size_t size_b = size_a * static_cast<size_t>(multiple);
    const std::string suffix = "/B=" + std::to_string(multiple) + "xA";

    benchmark::RegisterBenchmark(
        ("sec63_loading/load" + suffix).c_str(),
        [=](benchmark::State& state) {
          const Dataset& a =
              CachedDataset(Distribution::kUniform, size_a, 21, opt);
          const Dataset& b =
              CachedDataset(Distribution::kUniform, size_b, 22, opt);
          const std::string path_a = TempPath("a");
          const std::string path_b = TempPath("b" + std::to_string(multiple));
          WriteDataset(a, path_a);
          WriteDataset(b, path_b);
          size_t loaded = 0;
          for (auto _ : state) {
            const Dataset ra = ReadDataset(path_a);
            const Dataset rb = ReadDataset(path_b);
            loaded = ra.size() + rb.size();
            benchmark::DoNotOptimize(loaded);
          }
          state.counters["objects"] = static_cast<double>(loaded);
          std::remove(path_a.c_str());
          std::remove(path_b.c_str());
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);

    benchmark::RegisterBenchmark(
        ("sec63_loading/pbsm_join" + suffix).c_str(),
        [=](benchmark::State& state) {
          const Dataset& a =
              CachedDataset(Distribution::kUniform, size_a, 21, opt);
          const Dataset& b =
              CachedDataset(Distribution::kUniform, size_b, 22, opt);
          RunDistanceJoin(state, "pbsm-" + std::to_string(pbsm_fine), a, b,
                          5.0f);
        })
        ->Unit(benchmark::kMillisecond)
        ->Iterations(1);
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
