// Reproduces Figure 14: the impact of TOUCH's fanout parameter on (a) the
// number of objects filtered and (b) the number of comparisons, per
// distribution. Expected shape: filtering shrinks slowly as fanout grows
// (none on uniform data); comparisons grow markedly — the paper measures
// ~1.5x more comparisons at fanout 20 than at fanout 2, because a flatter
// tree concentrates B objects on fewer levels.
//
// Paper workload: A = 1.6M, B = 9.6M, eps = 5, fanout 2..20.
// Default here: A = 30K, B = 90K, density-matched.

#include <string>

#include "bench_common.h"

namespace touch::bench {
namespace {

void RegisterAll() {
  const size_t size_a = Scaled(30'000);
  const size_t size_b = 3 * size_a;
  const SyntheticOptions opt = DensityMatchedOptions(size_a, 1'600'000);
  const Distribution distributions[] = {Distribution::kUniform,
                                        Distribution::kGaussian,
                                        Distribution::kClustered};
  constexpr float kEpsilon = 5.0f;
  for (const Distribution distribution : distributions) {
    for (int fanout = 2; fanout <= 20; fanout += 2) {
      const std::string bench_name =
          std::string("fig14_fanout/") + DistributionName(distribution) +
          "/fanout=" + std::to_string(fanout);
      benchmark::RegisterBenchmark(
          bench_name.c_str(),
          [=](benchmark::State& state) {
            const Dataset& a = CachedDataset(distribution, size_a, 41, opt);
            const Dataset& b = CachedDataset(distribution, size_b, 42, opt);
            AlgorithmConfig config;
            config.touch.fanout = static_cast<size_t>(fanout);
            config.touch.join_order = TouchOptions::JoinOrder::kBuildOnA;
            RunDistanceJoin(state, "touch", a, b, kEpsilon, config);
          })
          ->Unit(benchmark::kMillisecond)
          ->Iterations(1);
    }
  }
}

}  // namespace
}  // namespace touch::bench

int main(int argc, char** argv) {
  touch::bench::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
