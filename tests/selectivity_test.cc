#include "estimate/selectivity.h"

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "join/nested_loop.h"
#include "test_util.h"

namespace touch {
namespace {

/// Measured result count of the epsilon-distance join (ground truth).
uint64_t MeasuredResults(const Dataset& a, const Dataset& b, float epsilon) {
  Dataset enlarged = a;
  for (Box& box : enlarged) box = box.Enlarged(epsilon);
  NestedLoopJoin join;
  CountingCollector out;
  join.Join(enlarged, b, out);
  return out.count();
}

class SelectivityAccuracyTest
    : public ::testing::TestWithParam<std::tuple<Distribution, float>> {};

TEST_P(SelectivityAccuracyTest, EstimateWithinFactorThreeOfMeasured) {
  const auto [distribution, epsilon] = GetParam();
  const Dataset a = GenerateSynthetic(distribution, 4000, 121);
  const Dataset b = GenerateSynthetic(distribution, 8000, 122);

  const uint64_t measured = MeasuredResults(a, b, epsilon);
  ASSERT_GT(measured, 0u);

  const SelectivityEstimator estimator(a, b);
  const SelectivityEstimate estimate = estimator.Estimate(epsilon);
  EXPECT_GT(estimate.expected_results, static_cast<double>(measured) / 3.0)
      << "measured " << measured;
  EXPECT_LT(estimate.expected_results, static_cast<double>(measured) * 3.0)
      << "measured " << measured;
}

INSTANTIATE_TEST_SUITE_P(
    DistributionsAndEpsilons, SelectivityAccuracyTest,
    ::testing::Combine(::testing::Values(Distribution::kUniform,
                                         Distribution::kGaussian,
                                         Distribution::kClustered),
                       ::testing::Values(5.0f, 10.0f)),
    [](const auto& info) {
      return std::string(DistributionName(std::get<0>(info.param))) + "_eps" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

TEST(SelectivityEstimatorTest, MonotonicInEpsilon) {
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 3000, 123);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 3000, 124);
  const SelectivityEstimator estimator(a, b);
  double previous = -1;
  for (const float epsilon : {0.0f, 2.0f, 5.0f, 10.0f, 20.0f}) {
    const double expected = estimator.Estimate(epsilon).expected_results;
    EXPECT_GT(expected, previous) << "epsilon=" << epsilon;
    previous = expected;
  }
}

TEST(SelectivityEstimatorTest, SkewRaisesSelectivity) {
  // Table 1's ordering: Gaussian > clustered > uniform at equal sizes. The
  // estimator must reproduce at least Gaussian > uniform.
  const size_t n = 5000;
  const SelectivityEstimator uniform(
      GenerateSynthetic(Distribution::kUniform, n, 125),
      GenerateSynthetic(Distribution::kUniform, n, 126));
  const SelectivityEstimator gaussian(
      GenerateSynthetic(Distribution::kGaussian, n, 125),
      GenerateSynthetic(Distribution::kGaussian, n, 126));
  EXPECT_GT(gaussian.Estimate(5.0f).selectivity,
            uniform.Estimate(5.0f).selectivity);
}

TEST(SelectivityEstimatorTest, DisjointDatasetsEstimateNearZero) {
  Dataset a;
  Dataset b;
  for (int i = 0; i < 500; ++i) {
    const float f = static_cast<float>(i % 50);
    a.push_back(CenteredBox(f, f, 0.0f));
    b.push_back(CenteredBox(900 + f, 900 + f, 900.0f));
  }
  const SelectivityEstimator estimator(a, b);
  const uint64_t measured = MeasuredResults(a, b, 5.0f);
  EXPECT_EQ(measured, 0u);
  // The histogram can't prove zero, but the estimate must be tiny relative
  // to |A|*|B| = 250k.
  EXPECT_LT(estimator.Estimate(5.0f).expected_results, 500.0);
}

TEST(SelectivityEstimatorTest, EmptyInputsAreSafe) {
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 100, 127);
  const SelectivityEstimator empty_a({}, b);
  EXPECT_EQ(empty_a.Estimate(5.0f).expected_results, 0.0);
  const SelectivityEstimator both_empty({}, {});
  EXPECT_EQ(both_empty.Estimate(5.0f).selectivity, 0.0);
}

TEST(SelectivityEstimatorTest, SelectivityMatchesDefinition) {
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 1000, 128);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 2000, 129);
  const SelectivityEstimator estimator(a, b);
  const SelectivityEstimate estimate = estimator.Estimate(5.0f);
  EXPECT_NEAR(estimate.selectivity,
              estimate.expected_results / (1000.0 * 2000.0), 1e-12);
}

TEST(SelectivityEstimatorTest, ShouldBuildOnSmallerDataset) {
  const Dataset small = GenerateSynthetic(Distribution::kUniform, 100, 130);
  const Dataset large = GenerateSynthetic(Distribution::kUniform, 1000, 131);
  EXPECT_TRUE(SelectivityEstimator::ShouldBuildOnA(small, large));
  EXPECT_FALSE(SelectivityEstimator::ShouldBuildOnA(large, small));
}

}  // namespace
}  // namespace touch
