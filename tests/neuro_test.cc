#include "datagen/neuro.h"

#include <gtest/gtest.h>

#include <cmath>

namespace touch {
namespace {

NeuroOptions SmallModel() {
  NeuroOptions opt;
  opt.neurons = 20;
  opt.segments_per_branch = 30;
  return opt;
}

TEST(NeuroTest, CylinderCountsMatchConfiguration) {
  const NeuroOptions opt = SmallModel();
  const NeuroModel model = GenerateNeuroscience(opt, 1);
  EXPECT_EQ(model.axons.size(),
            static_cast<size_t>(opt.neurons * opt.axon_branches *
                                opt.segments_per_branch));
  EXPECT_EQ(model.dendrites.size(),
            static_cast<size_t>(opt.neurons * opt.dendrite_branches *
                                opt.segments_per_branch));
}

TEST(NeuroTest, AxonDendriteRatioMatchesPaper) {
  // The paper's model has ~1:2 axon:dendrite cylinders.
  const NeuroModel model = GenerateNeuroscience(SmallModel(), 2);
  EXPECT_EQ(model.dendrites.size(), 2 * model.axons.size());
}

TEST(NeuroTest, DeterministicInSeed) {
  const NeuroModel a = GenerateNeuroscience(SmallModel(), 42);
  const NeuroModel b = GenerateNeuroscience(SmallModel(), 42);
  ASSERT_EQ(a.axons.size(), b.axons.size());
  for (size_t i = 0; i < a.axons.size(); ++i) {
    EXPECT_EQ(a.axons[i].start, b.axons[i].start);
    EXPECT_EQ(a.axons[i].end, b.axons[i].end);
  }
}

TEST(NeuroTest, CylindersStayInsideVolume) {
  const NeuroOptions opt = SmallModel();
  const NeuroModel model = GenerateNeuroscience(opt, 3);
  for (const Cylinder& c : model.dendrites) {
    for (const Vec3& p : {c.start, c.end}) {
      EXPECT_GE(p.x, 0.0f);
      EXPECT_LE(p.x, opt.volume);
      EXPECT_GE(p.y, 0.0f);
      EXPECT_LE(p.y, opt.volume);
      EXPECT_GE(p.z, 0.0f);
      EXPECT_LE(p.z, opt.volume);
    }
  }
}

TEST(NeuroTest, DenseCoreSparsePeriphery) {
  // The generator must reproduce the paper's key property: dense center,
  // sparse elsewhere (it drives TOUCH's filtering). Compare cylinder counts
  // in the central half-cube vs one corner octant of equal volume.
  NeuroOptions opt = SmallModel();
  opt.neurons = 100;
  const NeuroModel model = GenerateNeuroscience(opt, 4);
  const float v = opt.volume;
  size_t central = 0;
  size_t corner = 0;
  for (const Cylinder& c : model.dendrites) {
    const Vec3 m = (c.start + c.end) * 0.5f;
    if (std::abs(m.x - v / 2) < v / 4 && std::abs(m.y - v / 2) < v / 4 &&
        std::abs(m.z - v / 2) < v / 4) {
      ++central;
    }
    if (m.x < v / 2 && m.y < v / 2 && m.z < v / 2 &&
        (m.x < v / 4 || m.y < v / 4 || m.z < v / 4)) {
      ++corner;
    }
  }
  EXPECT_GT(central, 4 * corner);
}

TEST(NeuroTest, SegmentsFormConnectedBranches) {
  // Within one branch consecutive cylinders share endpoints.
  NeuroOptions opt = SmallModel();
  opt.neurons = 1;
  opt.axon_branches = 1;
  opt.dendrite_branches = 0;
  const NeuroModel model = GenerateNeuroscience(opt, 5);
  ASSERT_EQ(model.axons.size(),
            static_cast<size_t>(opt.segments_per_branch));
  for (size_t i = 1; i < model.axons.size(); ++i) {
    EXPECT_EQ(model.axons[i].start, model.axons[i - 1].end);
  }
}

TEST(NeuroTest, BranchesTaperTowardsTips) {
  NeuroOptions opt = SmallModel();
  opt.neurons = 1;
  opt.axon_branches = 1;
  opt.dendrite_branches = 0;
  const NeuroModel model = GenerateNeuroscience(opt, 6);
  EXPECT_GT(model.axons.front().radius, model.axons.back().radius);
}

TEST(NeuroTest, CylinderMbrsPreserveOrderAndCount) {
  const NeuroModel model = GenerateNeuroscience(SmallModel(), 7);
  const Dataset boxes = CylinderMbrs(model.axons);
  ASSERT_EQ(boxes.size(), model.axons.size());
  for (size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_EQ(boxes[i], model.axons[i].Mbr());
  }
}

TEST(NeuroTest, ZeroNeuronsYieldEmptyModel) {
  NeuroOptions opt;
  opt.neurons = 0;
  const NeuroModel model = GenerateNeuroscience(opt, 8);
  EXPECT_TRUE(model.axons.empty());
  EXPECT_TRUE(model.dendrites.empty());
}

}  // namespace
}  // namespace touch
