// Adversarial-geometry suite: every algorithm x every nasty input shape must
// still match the nested-loop oracle exactly. These scenarios target the
// assumptions spatial partitioning schemes like to make (non-degenerate
// extents, bounded overlap, positive coordinates, balanced aspect ratios).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/factory.h"
#include "test_util.h"
#include "util/rng.h"

namespace touch {
namespace {

using ScenarioFn = void (*)(Dataset* a, Dataset* b);

void AllIdentical(Dataset* a, Dataset* b) {
  *a = Dataset(80, MakeBox(5, 5, 5, 6, 6, 6));
  *b = Dataset(80, MakeBox(5.5f, 5.5f, 5.5f, 6.5f, 6.5f, 6.5f));
}

void ZeroExtentPoints(Dataset* a, Dataset* b) {
  Rng rng(1);
  for (int i = 0; i < 150; ++i) {
    const float x = static_cast<float>(rng.UniformInt(10));
    const float y = static_cast<float>(rng.UniformInt(10));
    const float z = static_cast<float>(rng.UniformInt(10));
    a->push_back(MakeBox(x, y, z, x, y, z));  // points on a lattice: many
    const float u = static_cast<float>(rng.UniformInt(10));
    b->push_back(MakeBox(u, y, z, u, y, z));  // exact coordinate collisions
  }
}

void CollinearOnOneAxis(Dataset* a, Dataset* b) {
  // Everything on the x-axis: the plane sweep's worst case and a degenerate
  // (flat) domain for every grid.
  for (int i = 0; i < 120; ++i) {
    a->push_back(MakeBox(static_cast<float>(i), 0, 0,
                         static_cast<float>(i) + 1.5f, 0, 0));
    b->push_back(MakeBox(static_cast<float>(i) + 0.7f, 0, 0,
                         static_cast<float>(i) + 2.0f, 0, 0));
  }
}

void DisjointExtents(Dataset* a, Dataset* b) {
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    a->push_back(CenteredBox(static_cast<float>(rng.Uniform(0, 100)),
                             static_cast<float>(rng.Uniform(0, 100)),
                             static_cast<float>(rng.Uniform(0, 100)), 2));
    b->push_back(CenteredBox(static_cast<float>(rng.Uniform(5000, 5100)),
                             static_cast<float>(rng.Uniform(0, 100)),
                             static_cast<float>(rng.Uniform(0, 100)), 2));
  }
}

void NestedContainmentChain(Dataset* a, Dataset* b) {
  // Concentric boxes: heavy overlap at every level of any hierarchy.
  for (int i = 0; i < 60; ++i) {
    const float h = 1.0f + static_cast<float>(i);
    a->push_back(CenteredBox(0, 0, 0, h));
    b->push_back(CenteredBox(0.5f, 0.5f, 0.5f, h));
  }
}

void OneGiantManyTiny(Dataset* a, Dataset* b) {
  Rng rng(3);
  a->push_back(MakeBox(-1000, -1000, -1000, 1000, 1000, 1000));
  for (int i = 0; i < 100; ++i) {
    a->push_back(CenteredBox(static_cast<float>(rng.Uniform(-50, 50)),
                             static_cast<float>(rng.Uniform(-50, 50)),
                             static_cast<float>(rng.Uniform(-50, 50)), 0.5f));
    b->push_back(CenteredBox(static_cast<float>(rng.Uniform(-900, 900)),
                             static_cast<float>(rng.Uniform(-900, 900)),
                             static_cast<float>(rng.Uniform(-900, 900)), 0.5f));
  }
}

void NegativeCoordinates(Dataset* a, Dataset* b) {
  Rng rng(4);
  for (int i = 0; i < 150; ++i) {
    a->push_back(CenteredBox(static_cast<float>(rng.Uniform(-200, -100)),
                             static_cast<float>(rng.Uniform(-200, -100)),
                             static_cast<float>(rng.Uniform(-200, -100)), 3));
    b->push_back(CenteredBox(static_cast<float>(rng.Uniform(-210, -90)),
                             static_cast<float>(rng.Uniform(-210, -90)),
                             static_cast<float>(rng.Uniform(-210, -90)), 3));
  }
}

void ExtremeAspectRatio(Dataset* a, Dataset* b) {
  // Needle boxes (GIS road segments): 1000x1x1 against compact boxes.
  Rng rng(5);
  for (int i = 0; i < 80; ++i) {
    const float y = static_cast<float>(rng.Uniform(0, 500));
    const float z = static_cast<float>(rng.Uniform(0, 500));
    a->push_back(MakeBox(0, y, z, 1000, y + 1, z + 1));
  }
  for (int i = 0; i < 200; ++i) {
    b->push_back(CenteredBox(static_cast<float>(rng.Uniform(0, 1000)),
                             static_cast<float>(rng.Uniform(0, 500)),
                             static_cast<float>(rng.Uniform(0, 500)), 2));
  }
}

void FlatPlane(Dataset* a, Dataset* b) {
  // All boxes in the z = 7 plane: a zero-extent axis for the whole domain.
  Rng rng(6);
  for (int i = 0; i < 150; ++i) {
    Box box = CenteredBox(static_cast<float>(rng.Uniform(0, 100)),
                          static_cast<float>(rng.Uniform(0, 100)), 7, 2);
    box.lo.z = box.hi.z = 7;
    a->push_back(box);
    Box other = CenteredBox(static_cast<float>(rng.Uniform(0, 100)),
                            static_cast<float>(rng.Uniform(0, 100)), 7, 2);
    other.lo.z = other.hi.z = 7;
    b->push_back(other);
  }
}

void SingleObjectEach(Dataset* a, Dataset* b) {
  a->push_back(MakeBox(0, 0, 0, 10, 10, 10));
  b->push_back(MakeBox(5, 5, 5, 15, 15, 15));
}

struct AdversarialCase {
  std::string algorithm;
  std::string scenario;
  ScenarioFn make;
};

std::string CaseName(const ::testing::TestParamInfo<AdversarialCase>& info) {
  std::string name = info.param.algorithm + "_" + info.param.scenario;
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

class AdversarialTest : public ::testing::TestWithParam<AdversarialCase> {};

TEST_P(AdversarialTest, MatchesNestedLoopOracle) {
  Dataset a;
  Dataset b;
  GetParam().make(&a, &b);
  const auto algorithm = MakeAlgorithm(GetParam().algorithm);
  ASSERT_NE(algorithm, nullptr);
  JoinStats stats;
  const auto pairs = RunJoinSorted(*algorithm, a, b, &stats);
  EXPECT_EQ(pairs, OracleJoin(a, b));
  EXPECT_TRUE(HasNoDuplicates(pairs));
}

std::vector<AdversarialCase> AllCases() {
  const std::vector<std::pair<std::string, ScenarioFn>> scenarios = {
      {"all_identical", AllIdentical},
      {"zero_extent_points", ZeroExtentPoints},
      {"collinear_one_axis", CollinearOnOneAxis},
      {"disjoint_extents", DisjointExtents},
      {"nested_containment", NestedContainmentChain},
      {"one_giant_many_tiny", OneGiantManyTiny},
      {"negative_coordinates", NegativeCoordinates},
      {"extreme_aspect_ratio", ExtremeAspectRatio},
      {"flat_plane", FlatPlane},
      {"single_object_each", SingleObjectEach},
  };
  const std::vector<std::string> algorithms = {
      "ps",     "pbsm-20",       "s3",        "sssj",   "inl",
      "rtree",  "rtree-hilbert", "rtree-tgs", "rtree-guttman",
      "rtree-rstar", "rplus", "seeded", "octree", "nbps-8", "touch"};
  std::vector<AdversarialCase> cases;
  for (const auto& algorithm : algorithms) {
    for (const auto& [name, fn] : scenarios) {
      cases.push_back(AdversarialCase{algorithm, name, fn});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, AdversarialTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

}  // namespace
}  // namespace touch
