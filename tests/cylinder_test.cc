#include "geom/cylinder.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace touch {
namespace {

TEST(SegmentDistanceTest, ParallelSegments) {
  EXPECT_NEAR(SegmentDistance(Vec3(0, 0, 0), Vec3(10, 0, 0), Vec3(0, 3, 0),
                              Vec3(10, 3, 0)),
              3.0, 1e-9);
}

TEST(SegmentDistanceTest, CrossingSegmentsTouch) {
  // Perpendicular segments crossing at the origin plane.
  EXPECT_NEAR(SegmentDistance(Vec3(-1, 0, 0), Vec3(1, 0, 0), Vec3(0, -1, 0),
                              Vec3(0, 1, 0)),
              0.0, 1e-9);
}

TEST(SegmentDistanceTest, SkewSegments) {
  // Perpendicular skew lines separated by 2 on z.
  EXPECT_NEAR(SegmentDistance(Vec3(-1, 0, 0), Vec3(1, 0, 0), Vec3(0, -1, 2),
                              Vec3(0, 1, 2)),
              2.0, 1e-9);
}

TEST(SegmentDistanceTest, EndpointToEndpoint) {
  // Closest approach at segment endpoints.
  EXPECT_NEAR(SegmentDistance(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(4, 4, 0),
                              Vec3(8, 8, 0)),
              5.0, 1e-6);
}

TEST(SegmentDistanceTest, DegeneratePointSegments) {
  // Both segments are points.
  EXPECT_NEAR(SegmentDistance(Vec3(0, 0, 0), Vec3(0, 0, 0), Vec3(3, 4, 0),
                              Vec3(3, 4, 0)),
              5.0, 1e-9);
  // One point, one segment: point projects onto the middle.
  EXPECT_NEAR(SegmentDistance(Vec3(5, 7, 0), Vec3(5, 7, 0), Vec3(0, 0, 0),
                              Vec3(10, 0, 0)),
              7.0, 1e-9);
}

TEST(SegmentDistanceTest, CollinearOverlappingSegments) {
  EXPECT_NEAR(SegmentDistance(Vec3(0, 0, 0), Vec3(5, 0, 0), Vec3(3, 0, 0),
                              Vec3(9, 0, 0)),
              0.0, 1e-9);
}

TEST(SegmentDistanceTest, CollinearDisjointSegments) {
  EXPECT_NEAR(SegmentDistance(Vec3(0, 0, 0), Vec3(1, 0, 0), Vec3(4, 0, 0),
                              Vec3(6, 0, 0)),
              3.0, 1e-9);
}

TEST(SegmentDistanceTest, IsSymmetric) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p0(rng.NextFloat() * 10, rng.NextFloat() * 10,
                  rng.NextFloat() * 10);
    const Vec3 p1(rng.NextFloat() * 10, rng.NextFloat() * 10,
                  rng.NextFloat() * 10);
    const Vec3 q0(rng.NextFloat() * 10, rng.NextFloat() * 10,
                  rng.NextFloat() * 10);
    const Vec3 q1(rng.NextFloat() * 10, rng.NextFloat() * 10,
                  rng.NextFloat() * 10);
    EXPECT_NEAR(SegmentDistance(p0, p1, q0, q1),
                SegmentDistance(q0, q1, p0, p1), 1e-9);
  }
}

TEST(SegmentDistanceTest, NeverExceedsEndpointDistances) {
  // The segment distance is a lower bound of any endpoint pair distance.
  Rng rng(6);
  for (int i = 0; i < 200; ++i) {
    const Vec3 p0(rng.NextFloat(), rng.NextFloat(), rng.NextFloat());
    const Vec3 p1(rng.NextFloat(), rng.NextFloat(), rng.NextFloat());
    const Vec3 q0(rng.NextFloat(), rng.NextFloat(), rng.NextFloat());
    const Vec3 q1(rng.NextFloat(), rng.NextFloat(), rng.NextFloat());
    const double d = SegmentDistance(p0, p1, q0, q1);
    EXPECT_LE(d, (p0 - q0).Length() + 1e-6);
    EXPECT_LE(d, (p0 - q1).Length() + 1e-6);
    EXPECT_LE(d, (p1 - q0).Length() + 1e-6);
    EXPECT_LE(d, (p1 - q1).Length() + 1e-6);
  }
}

TEST(CylinderTest, MbrEnclosesBothEndpointsPlusRadius) {
  const Cylinder c(Vec3(1, 1, 1), Vec3(4, 5, 6), 0.5f);
  const Box mbr = c.Mbr();
  EXPECT_EQ(mbr.lo, Vec3(0.5f, 0.5f, 0.5f));
  EXPECT_EQ(mbr.hi, Vec3(4.5f, 5.5f, 6.5f));
}

TEST(CylinderTest, LengthIsSegmentLength) {
  EXPECT_FLOAT_EQ(Cylinder(Vec3(0, 0, 0), Vec3(3, 4, 0), 1).Length(), 5.0f);
}

TEST(CylinderTest, DistanceSubtractsRadii) {
  const Cylinder a(Vec3(0, 0, 0), Vec3(10, 0, 0), 1.0f);
  const Cylinder b(Vec3(0, 5, 0), Vec3(10, 5, 0), 1.5f);
  EXPECT_NEAR(CylinderDistance(a, b), 2.5, 1e-6);
}

TEST(CylinderTest, InterpenetratingCylindersHaveZeroDistance) {
  const Cylinder a(Vec3(0, 0, 0), Vec3(10, 0, 0), 2.0f);
  const Cylinder b(Vec3(0, 1, 0), Vec3(10, 1, 0), 2.0f);
  EXPECT_DOUBLE_EQ(CylinderDistance(a, b), 0.0);
}

TEST(CylinderTest, WithinDistancePredicate) {
  const Cylinder a(Vec3(0, 0, 0), Vec3(10, 0, 0), 0.5f);
  const Cylinder b(Vec3(0, 3, 0), Vec3(10, 3, 0), 0.5f);
  // Surface distance = 3 - 1 = 2.
  EXPECT_TRUE(CylindersWithinDistance(a, b, 2.0));
  EXPECT_TRUE(CylindersWithinDistance(a, b, 2.5));
  EXPECT_FALSE(CylindersWithinDistance(a, b, 1.9));
}

TEST(CylinderTest, MbrDistanceLowerBoundsExactDistance) {
  // Filter-refine soundness: if the MBRs (enlarged by eps) do not intersect,
  // the exact cylinder distance must exceed eps.
  Rng rng(9);
  for (int i = 0; i < 500; ++i) {
    const Cylinder a(
        Vec3(rng.NextFloat() * 20, rng.NextFloat() * 20, rng.NextFloat() * 20),
        Vec3(rng.NextFloat() * 20, rng.NextFloat() * 20, rng.NextFloat() * 20),
        0.2f + rng.NextFloat());
    const Cylinder b(
        Vec3(rng.NextFloat() * 20, rng.NextFloat() * 20, rng.NextFloat() * 20),
        Vec3(rng.NextFloat() * 20, rng.NextFloat() * 20, rng.NextFloat() * 20),
        0.2f + rng.NextFloat());
    const float eps = rng.NextFloat() * 3;
    if (!Intersects(a.Mbr().Enlarged(eps), b.Mbr())) {
      EXPECT_GT(CylinderDistance(a, b), static_cast<double>(eps) - 1e-4);
    }
  }
}

}  // namespace
}  // namespace touch
