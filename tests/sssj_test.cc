#include "join/sssj.h"

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "test_util.h"

namespace touch {
namespace {

Dataset TestA() {
  Dataset a = GenerateSynthetic(Distribution::kGaussian, 400, 50);
  for (Box& box : a) box = box.Enlarged(10.0f);
  return a;
}
Dataset TestB() { return GenerateSynthetic(Distribution::kGaussian, 700, 51); }

TEST(SssjTest, MatchesOracle) {
  SssjJoin join;
  const Dataset a = TestA();
  const Dataset b = TestB();
  EXPECT_EQ(RunJoinSorted(join, a, b), OracleJoin(a, b));
}

TEST(SssjTest, MatchesOracleAcrossStripCounts) {
  const Dataset a = TestA();
  const Dataset b = TestB();
  const auto oracle = OracleJoin(a, b);
  for (const int strips : {1, 2, 7, 64, 1000}) {
    SssjOptions opt;
    opt.strips = strips;
    SssjJoin join(opt);
    EXPECT_EQ(RunJoinSorted(join, a, b), oracle) << "strips=" << strips;
  }
}

TEST(SssjTest, NoDuplicatesWithStripSpanningObjects) {
  // Objects spanning many strips are the dedup-critical case: a pair must be
  // reported only in the first strip where both are present.
  Dataset a;
  Dataset b;
  for (int i = 0; i < 50; ++i) {
    // Tall boxes spanning most of z.
    a.push_back(MakeBox(static_cast<float>(i), 0, 0,
                        static_cast<float>(i) + 2, 1, 900));
    b.push_back(MakeBox(static_cast<float>(i) + 1, 0, 50,
                        static_cast<float>(i) + 3, 1, 1000));
  }
  SssjJoin join;
  VectorCollector out;
  join.Join(a, b, out);
  EXPECT_TRUE(HasNoDuplicates(out.pairs()));
  EXPECT_EQ(RunJoinSorted(join, a, b), OracleJoin(a, b));
}

TEST(SssjTest, SingleStripDegeneratesToOnePlaneSweep) {
  SssjOptions opt;
  opt.strips = 1;
  SssjJoin sssj(opt);
  const Dataset a = TestA();
  const Dataset b = TestB();
  JoinStats stats;
  RunJoinSorted(sssj, a, b, &stats);
  // With one strip everything is active at once; the sweep still avoids the
  // full cross product.
  EXPECT_LT(stats.comparisons, a.size() * b.size());
}

TEST(SssjTest, ObjectsNeverReplicated) {
  // Memory footprint must stay linear in the input, unlike PBSM: strip
  // bookkeeping holds each object id exactly twice (start + end bucket).
  const Dataset a = TestA();
  const Dataset b = TestB();
  SssjJoin join;
  JoinStats stats;
  RunJoinSorted(join, a, b, &stats);
  // Two id entries + two active-list slots per object, plus vector overhead.
  const size_t linear_bound = 64 * (a.size() + b.size()) + (1 << 16);
  EXPECT_LT(stats.memory_bytes, linear_bound);
}

TEST(SssjTest, EmptyInputs) {
  SssjJoin join;
  const Dataset a = TestA();
  EXPECT_TRUE(RunJoinSorted(join, {}, a).empty());
  EXPECT_TRUE(RunJoinSorted(join, a, {}).empty());
}

TEST(SssjTest, FlatDomainOnStripAxis) {
  // All boxes at the same z: every object lands in strip 0.
  Dataset a;
  Dataset b;
  for (int i = 0; i < 100; ++i) {
    Box box = CenteredBox(static_cast<float>(i % 10) * 3,
                          static_cast<float>(i / 10) * 3, 0, 2);
    box.lo.z = box.hi.z = 5;
    a.push_back(box);
    b.push_back(box);
  }
  SssjJoin join;
  EXPECT_EQ(RunJoinSorted(join, a, b), OracleJoin(a, b));
}

}  // namespace
}  // namespace touch
