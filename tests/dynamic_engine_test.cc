// Differential oracle for the dynamic-dataset subsystem: every assertion
// here compares an *incremental* path against a recompute-from-scratch
// reference after randomized mutation batches.
//
//   - DatasetStats maintained across mutations must equal ComputeDatasetStats
//     over the current geometry bit-for-bit (extent min/max is a multiset
//     reduction, extent sums go through ExactSum, histogram counts are
//     integers — nothing is allowed to drift).
//   - A continuous join's folded delta stream (kAdded inserts, kRemoved
//     erases) must equal a full brute-force re-join of the current snapshots.
//   - A sharded engine fed the same mutation stream as an unsharded one must
//     produce the same result pair set in global id space.
//   - Versioned index-cache keys must prevent any post-mutation query from
//     being served by a stale artifact.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <utility>
#include <vector>

#include "datagen/distributions.h"
#include "datagen/neuro.h"
#include "engine/engine.h"
#include "engine/sharded_engine.h"
#include "test_util.h"
#include "util/exact_sum.h"
#include "util/rng.h"

namespace touch {
namespace {

// --- shared generators ------------------------------------------------------

Box RandomBox(Rng& rng, float space, float max_side) {
  // Centers may land slightly outside [0, space] so mutations also exercise
  // the out-of-domain routing/clamping paths.
  const Vec3 center(static_cast<float>(rng.Uniform(-0.05, 1.05)) * space,
                    static_cast<float>(rng.Uniform(-0.05, 1.05)) * space,
                    static_cast<float>(rng.Uniform(-0.05, 1.05)) * space);
  const Vec3 half(rng.NextFloat() * max_side * 0.5f,
                  rng.NextFloat() * max_side * 0.5f,
                  rng.NextFloat() * max_side * 0.5f);
  return Box(center - half, center + half);
}

/// Client-side mirror of a mutating dataset: generates deterministic
/// insert/delete/update batches and tracks which ids are live. Inserts use
/// kInvalidObjectId and rely on the catalog's deterministic id assignment
/// (registration count, then +1 per applied insert in stream order).
class MutationFuzzer {
 public:
  MutationFuzzer(uint64_t seed, size_t initial_count, float space)
      : rng_(seed), space_(space) {
    live_.resize(initial_count);
    for (uint32_t i = 0; i < initial_count; ++i) live_[i] = i;
    next_id_ = static_cast<uint32_t>(initial_count);
  }

  std::vector<Mutation> NextBatch(int ops) {
    std::vector<Mutation> batch;
    batch.reserve(ops);
    for (int k = 0; k < ops; ++k) {
      const uint64_t dice = rng_.UniformInt(10);
      if (live_.empty() || dice < 4) {
        batch.push_back(Mutation{MutationKind::kInsert, kInvalidObjectId,
                                 RandomBox(rng_, space_, 6.0f)});
        live_.push_back(next_id_++);
      } else if (dice < 7) {
        const size_t pick = rng_.UniformInt(live_.size());
        batch.push_back(Mutation{MutationKind::kDelete, live_[pick], Box()});
        live_[pick] = live_.back();
        live_.pop_back();
      } else {
        const size_t pick = rng_.UniformInt(live_.size());
        batch.push_back(Mutation{MutationKind::kUpdate, live_[pick],
                                 RandomBox(rng_, space_, 6.0f)});
      }
    }
    return batch;
  }

 private:
  Rng rng_;
  float space_;
  std::vector<uint32_t> live_;
  uint32_t next_id_ = 0;
};

/// Brute-force epsilon join of two snapshots, in stable id space.
std::set<IdPair> BruteForcePairs(const DatasetSnapshot& a,
                                 const DatasetSnapshot& b, float epsilon) {
  std::set<IdPair> pairs;
  for (size_t i = 0; i < a.boxes.size(); ++i) {
    const Box probe = a.boxes[i].Enlarged(epsilon);
    for (size_t j = 0; j < b.boxes.size(); ++j) {
      if (Intersects(probe, b.boxes[j])) {
        pairs.emplace(a.id_of(i), b.id_of(j));
      }
    }
  }
  return pairs;
}

/// Bit-for-bit comparison of incremental vs recomputed stats. Floating
/// fields are compared with ==, not a tolerance: the incremental path is
/// designed to be exactly order-independent (ExactSum for sums, min/max for
/// extents, integer histogram), so any ULP of drift is a bug.
void ExpectStatsBitEqual(const DatasetStats& incremental,
                         const DatasetStats& recomputed,
                         const std::string& context) {
  EXPECT_EQ(incremental.count, recomputed.count) << context;
  EXPECT_EQ(incremental.extent.lo, recomputed.extent.lo) << context;
  EXPECT_EQ(incremental.extent.hi, recomputed.extent.hi) << context;
  EXPECT_EQ(incremental.avg_object_extent, recomputed.avg_object_extent)
      << context;
  EXPECT_EQ(incremental.density, recomputed.density) << context;
  EXPECT_EQ(incremental.histogram_resolution, recomputed.histogram_resolution)
      << context;
  EXPECT_EQ(incremental.histogram, recomputed.histogram) << context;
}

// --- ExactSum sanity --------------------------------------------------------

TEST(ExactSumTest, SubtractExactlyInvertsAddInAnyOrder) {
  Rng rng(7);
  std::vector<float> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back((rng.NextFloat() - 0.5f) * 1e6f);
  }
  ExactSum forward;
  for (float v : values) forward.Add(v);
  // Remove every value in a different order; the sum must return to an
  // exact zero, not an epsilon-ball around it.
  ExactSum drained = forward;
  std::reverse(values.begin(), values.end());
  for (float v : values) drained.Subtract(v);
  EXPECT_TRUE(drained.IsZero());
  EXPECT_EQ(drained.ToDouble(), 0.0);
  EXPECT_EQ(drained, ExactSum());
}

// --- incremental stats vs recompute-from-scratch ----------------------------

struct StatsCase {
  const char* name;
  Dataset (*make)(uint64_t seed);
};

Dataset MakeUniform(uint64_t seed) {
  return GenerateSynthetic(Distribution::kUniform, 1500, seed);
}
Dataset MakeClustered(uint64_t seed) {
  return GenerateSynthetic(Distribution::kClustered, 1500, seed);
}
Dataset MakeNeuro(uint64_t seed) {
  NeuroOptions options;
  options.neurons = 12;
  const NeuroModel model = GenerateNeuroscience(options, seed);
  return CylinderMbrs(model.axons);
}

class DynamicStatsTest : public ::testing::TestWithParam<StatsCase> {};

TEST_P(DynamicStatsTest, IncrementalStatsMatchRecomputeBitForBit) {
  const StatsCase& test_case = GetParam();
  DatasetCatalog catalog;
  const Dataset initial = test_case.make(11);
  const DatasetHandle handle = catalog.Register(test_case.name, initial);

  MutationFuzzer fuzzer(/*seed=*/101, initial.size(), /*space=*/1000.0f);
  for (int batch = 0; batch < 30; ++batch) {
    const std::vector<Mutation> muts = fuzzer.NextBatch(50);
    catalog.ApplyMutations(handle, muts);
    const DatasetSnapshotPtr snap = catalog.snapshot(handle);
    ASSERT_EQ(snap->version, static_cast<uint64_t>(batch + 1));
    const DatasetStats recomputed = ComputeDatasetStats(
        snap->boxes, std::max(1, snap->stats.histogram_resolution));
    ExpectStatsBitEqual(snap->stats, recomputed,
                        std::string(test_case.name) + " batch " +
                            std::to_string(batch));
  }
}

INSTANTIATE_TEST_SUITE_P(Generators, DynamicStatsTest,
                         ::testing::Values(StatsCase{"uniform", MakeUniform},
                                           StatsCase{"clustered",
                                                     MakeClustered},
                                           StatsCase{"neuro", MakeNeuro}),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

// --- continuous joins: folded deltas == full re-join ------------------------

/// Folded view of a delta stream. Kept behind a shared_ptr *outside* the
/// sink: the engine owns (and frees) the sink itself when the request
/// delivers, so the test must not read through the sink after Cancel.
struct FoldState {
  std::set<IdPair> pairs;
  uint64_t deltas = 0;
  std::vector<RequestStatus> completions;
};

class FoldingSink : public ResultSink {
 public:
  explicit FoldingSink(std::shared_ptr<FoldState> state)
      : state_(std::move(state)) {}
  void Emit(uint32_t, uint32_t) override {}
  void EmitDelta(DeltaKind kind, uint32_t a_id, uint32_t b_id) override {
    ++state_->deltas;
    if (kind == DeltaKind::kAdded) {
      const bool inserted = state_->pairs.emplace(a_id, b_id).second;
      EXPECT_TRUE(inserted) << "duplicate kAdded for (" << a_id << ", "
                            << b_id << ")";
    } else {
      const bool erased = state_->pairs.erase(IdPair(a_id, b_id)) > 0;
      EXPECT_TRUE(erased) << "kRemoved for absent (" << a_id << ", " << b_id
                          << ")";
    }
  }
  void OnComplete(const JoinResult& result) override {
    state_->completions.push_back(result.status);
  }

 private:
  std::shared_ptr<FoldState> state_;
};

TEST(ContinuousJoinTest, FoldedDeltaStreamEqualsFullRejoin) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset(
      "A", GenerateSynthetic(Distribution::kUniform, 400, 21));
  const DatasetHandle b = engine.RegisterDataset(
      "B", GenerateSynthetic(Distribution::kClustered, 400, 22));
  const float epsilon = 25.0f;

  auto fold = std::make_shared<FoldState>();
  JoinRequest request{a, b, epsilon};
  request.continuous = true;
  RequestHandle handle =
      engine.Submit(request, std::make_unique<FoldingSink>(fold));
  ASSERT_TRUE(handle.valid());

  // The baseline burst must already equal the static join.
  EXPECT_EQ(fold->pairs,
            BruteForcePairs(*engine.catalog().snapshot(a),
                            *engine.catalog().snapshot(b), epsilon));

  MutationFuzzer fuzz_a(/*seed=*/31, 400, /*space=*/1000.0f);
  MutationFuzzer fuzz_b(/*seed=*/32, 400, /*space=*/1000.0f);
  for (int batch = 0; batch < 12; ++batch) {
    // Alternate which side mutates: subscriptions must probe correctly
    // whether the mutated dataset is the request's A or its B.
    if (batch % 2 == 0) {
      engine.ApplyMutations(a, fuzz_a.NextBatch(40));
    } else {
      engine.ApplyMutations(b, fuzz_b.NextBatch(40));
    }
    EXPECT_EQ(fold->pairs,
              BruteForcePairs(*engine.catalog().snapshot(a),
                              *engine.catalog().snapshot(b), epsilon))
        << "batch " << batch;
  }
  EXPECT_GT(fold->deltas, 0u);

  // Cancel unsubscribes: exactly one (cancelled) completion, and further
  // mutations must not reach the sink.
  EXPECT_TRUE(handle.Cancel());
  const JoinResult final_result = handle.Get();
  EXPECT_EQ(final_result.status, RequestStatus::kCancelled);
  ASSERT_EQ(fold->completions.size(), 1u);
  EXPECT_EQ(fold->completions[0], RequestStatus::kCancelled);
  const uint64_t deltas_at_cancel = fold->deltas;
  engine.ApplyMutations(a, fuzz_a.NextBatch(40));
  EXPECT_EQ(fold->deltas, deltas_at_cancel);
}

TEST(ContinuousJoinTest, RejectsMissingSinkAndSelfJoin) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset(
      "A", GenerateSynthetic(Distribution::kUniform, 50, 5));
  JoinRequest request{a, a, 1.0f};
  request.continuous = true;
  JoinResult no_sink = engine.Submit(request).Get();
  EXPECT_EQ(no_sink.status, RequestStatus::kError);
  JoinResult self_join =
      engine
          .Submit(request, std::make_unique<FoldingSink>(
                               std::make_shared<FoldState>()))
          .Get();
  EXPECT_EQ(self_join.status, RequestStatus::kError);
}

// --- sharded vs unsharded under mutation ------------------------------------

std::set<IdPair> CollectPairs(const std::vector<IdPair>& pairs) {
  return std::set<IdPair>(pairs.begin(), pairs.end());
}

TEST(ShardedMutationTest, ShardedEqualsUnshardedUnderMutation) {
  const Dataset initial_a = GenerateSynthetic(Distribution::kClustered, 800, 41);
  const Dataset initial_b = GenerateSynthetic(Distribution::kUniform, 800, 42);
  const float epsilon = 15.0f;

  QueryEngine flat;
  const DatasetHandle flat_a = flat.RegisterDataset("A", initial_a);
  const DatasetHandle flat_b = flat.RegisterDataset("B", initial_b);

  EngineOptions sharded_options;
  sharded_options.shards = 4;
  // A tight drift threshold so the randomized stream actually exercises
  // RepartitionLocked, not just the routing fast path.
  sharded_options.shard_repartition_drift = 1.3;
  ShardedQueryEngine sharded(sharded_options);
  const DatasetHandle shard_a = sharded.RegisterDataset("A", initial_a);
  const DatasetHandle shard_b = sharded.RegisterDataset("B", initial_b);

  // Two identical fuzzers: both engines see the exact same stream, so ids
  // assigned to inserts must line up between them.
  MutationFuzzer flat_fuzz(/*seed=*/77, initial_a.size(), 1000.0f);
  MutationFuzzer shard_fuzz(/*seed=*/77, initial_a.size(), 1000.0f);
  for (int batch = 0; batch < 10; ++batch) {
    const std::vector<Mutation> flat_muts = flat_fuzz.NextBatch(80);
    const std::vector<Mutation> shard_muts = shard_fuzz.NextBatch(80);
    const uint64_t flat_version = flat.ApplyMutations(flat_a, flat_muts);
    const uint64_t shard_version =
        sharded.ApplyMutations(shard_a, shard_muts);
    EXPECT_EQ(flat_version, shard_version) << "batch " << batch;

    const JoinRequest request{flat_a, flat_b, epsilon};
    VectorCollector flat_out;
    const JoinResult flat_result = flat.Execute(request, flat_out);
    ASSERT_EQ(flat_result.status, RequestStatus::kOk) << flat_result.error;

    const JoinRequest shard_request{shard_a, shard_b, epsilon};
    VectorCollector shard_out;
    const ShardedJoinResult shard_result =
        sharded.Execute(shard_request, shard_out);
    ASSERT_EQ(shard_result.merged.status, RequestStatus::kOk)
        << shard_result.merged.error;

    EXPECT_EQ(CollectPairs(flat_out.pairs()), CollectPairs(shard_out.pairs()))
        << "batch " << batch;
    // Both must also agree with the brute-force oracle over the unsharded
    // snapshots.
    EXPECT_EQ(CollectPairs(flat_out.pairs()),
              BruteForcePairs(*flat.catalog().snapshot(flat_a),
                              *flat.catalog().snapshot(flat_b), epsilon))
        << "batch " << batch;
  }
}

// --- versioned index-cache keys (latent-bug regression) ---------------------

TEST(VersionedCacheTest, MutationInvalidatesStaleArtifactsOnFirstQuery) {
  EngineOptions options;
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset(
      "A", GenerateSynthetic(Distribution::kUniform, 600, 51));
  const DatasetHandle b = engine.RegisterDataset(
      "B", GenerateSynthetic(Distribution::kUniform, 600, 52));
  const JoinRequest request{a, b, 20.0f};

  // Warm the cache: second identical run must be a full artifact hit.
  VectorCollector cold;
  ASSERT_EQ(engine.ExecuteFixed("touch", request, cold).status,
            RequestStatus::kOk);
  VectorCollector warm;
  const JoinResult warm_result = engine.ExecuteFixed("touch", request, warm);
  EXPECT_TRUE(warm_result.index_cache_hit);

  // Mutate A; the versioned key must make the next query miss (and the
  // stale artifact's eviction must be counted in cache telemetry).
  const IndexCache::Stats before = engine.cache_stats();
  std::vector<Mutation> muts;
  muts.push_back(Mutation{MutationKind::kDelete, 0, Box()});
  muts.push_back(Mutation{MutationKind::kInsert, kInvalidObjectId,
                          Box(Vec3(0, 0, 0), Vec3(3, 3, 3))});
  engine.ApplyMutations(a, muts);
  const IndexCache::Stats after_invalidate = engine.cache_stats();
  EXPECT_GT(after_invalidate.evictions, before.evictions)
      << "stale artifact was not evicted on mutation";

  VectorCollector post;
  const JoinResult post_result = engine.ExecuteFixed("touch", request, post);
  ASSERT_EQ(post_result.status, RequestStatus::kOk) << post_result.error;
  EXPECT_FALSE(post_result.index_cache_hit)
      << "post-mutation query was served by a stale artifact";
  EXPECT_EQ(CollectPairs(post.pairs()),
            BruteForcePairs(*engine.catalog().snapshot(a),
                            *engine.catalog().snapshot(b), request.epsilon));
}

// --- 10k-mutation randomized acceptance run ---------------------------------

TEST(DynamicAcceptanceTest, TenThousandMutationsStayConsistent) {
  QueryEngine engine;
  const Dataset initial_a = GenerateSynthetic(Distribution::kClustered, 1200, 61);
  const Dataset initial_b = GenerateSynthetic(Distribution::kUniform, 1200, 62);
  const DatasetHandle a = engine.RegisterDataset("A", initial_a);
  const DatasetHandle b = engine.RegisterDataset("B", initial_b);
  const float epsilon = 10.0f;

  MutationFuzzer fuzz_a(/*seed=*/91, initial_a.size(), 1000.0f);
  MutationFuzzer fuzz_b(/*seed=*/92, initial_b.size(), 1000.0f);
  constexpr int kBatches = 100;
  constexpr int kOpsPerBatch = 100;  // 10k mutations total, split over A and B
  for (int batch = 0; batch < kBatches; ++batch) {
    if (batch % 2 == 0) {
      engine.ApplyMutations(a, fuzz_a.NextBatch(kOpsPerBatch));
    } else {
      engine.ApplyMutations(b, fuzz_b.NextBatch(kOpsPerBatch));
    }
    // Stats oracle on the mutated side, every batch.
    const DatasetHandle mutated = batch % 2 == 0 ? a : b;
    const DatasetSnapshotPtr snap = engine.catalog().snapshot(mutated);
    const DatasetStats recomputed = ComputeDatasetStats(
        snap->boxes, std::max(1, snap->stats.histogram_resolution));
    ExpectStatsBitEqual(snap->stats, recomputed,
                        "batch " + std::to_string(batch));
    if (::testing::Test::HasFailure()) break;
    // Join oracle sampled every 10th batch (the planner is free to pick any
    // algorithm; whatever it picks must match brute force in id space).
    if (batch % 10 == 9) {
      VectorCollector out;
      const JoinResult result =
          engine.Execute(JoinRequest{a, b, epsilon}, out);
      ASSERT_EQ(result.status, RequestStatus::kOk) << result.error;
      EXPECT_EQ(CollectPairs(out.pairs()),
                BruteForcePairs(*engine.catalog().snapshot(a),
                                *engine.catalog().snapshot(b), epsilon))
          << "batch " << batch;
    }
  }
}

}  // namespace
}  // namespace touch
