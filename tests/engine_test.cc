#include "engine/engine.h"

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "join/nested_loop.h"
#include "test_util.h"

namespace touch {
namespace {

/// Ground truth for the engine's distance join: enlarge A, nested loop.
std::vector<IdPair> DistanceOracle(const Dataset& a, const Dataset& b,
                                   float epsilon) {
  Dataset enlarged = a;
  for (Box& box : enlarged) box = box.Enlarged(epsilon);
  return OracleJoin(enlarged, b);
}

std::vector<IdPair> SortedPairs(VectorCollector& collector) {
  std::vector<IdPair> pairs = collector.pairs();
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

class QueryEngineTest : public ::testing::Test {
 protected:
  // Clustered and big enough that the planner reaches the TOUCH branch.
  Dataset small_ = GenerateSynthetic(Distribution::kClustered, 4000, 51);
  Dataset large_ = GenerateSynthetic(Distribution::kClustered, 8000, 52);
};

TEST_F(QueryEngineTest, ColdAndCachedRunsProduceIdenticalPairs) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);
  const JoinRequest request{a, b, 2.0f};
  ASSERT_EQ(engine.Plan(request).algorithm, "touch");

  VectorCollector cold;
  const JoinResult cold_result = engine.Execute(request, cold);
  ASSERT_TRUE(cold_result.error.empty());
  EXPECT_FALSE(cold_result.index_cache_hit);
  IndexCache::Stats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes, 0u);

  VectorCollector cached;
  const JoinResult cached_result = engine.Execute(request, cached);
  ASSERT_TRUE(cached_result.error.empty());
  EXPECT_TRUE(cached_result.index_cache_hit);
  EXPECT_EQ(cached_result.stats.build_seconds, 0.0);
  stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.entries, 1u);

  const std::vector<IdPair> oracle = DistanceOracle(small_, large_, 2.0f);
  ASSERT_FALSE(oracle.empty());
  EXPECT_EQ(SortedPairs(cold), oracle);
  EXPECT_EQ(SortedPairs(cached), oracle);
}

// When A is the larger dataset the plan builds the tree on B and the engine
// must still emit pairs in (a, b) order.
TEST_F(QueryEngineTest, BuildOnBKeepsPairOrder) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("large", large_);
  const DatasetHandle b = engine.RegisterDataset("small", small_);
  const JoinRequest request{a, b, 2.0f};
  const JoinPlan plan = engine.Plan(request);
  ASSERT_EQ(plan.algorithm, "touch");
  ASSERT_FALSE(plan.build_on_a);

  VectorCollector out;
  ASSERT_TRUE(engine.Execute(request, out).error.empty());
  EXPECT_EQ(SortedPairs(out), DistanceOracle(large_, small_, 2.0f));

  // The cached tree (built over raw B) is epsilon-independent: a second
  // query with a different epsilon reuses it.
  VectorCollector other;
  const JoinResult second = engine.Execute({a, b, 4.0f}, other);
  EXPECT_TRUE(second.index_cache_hit);
  EXPECT_EQ(SortedPairs(other), DistanceOracle(large_, small_, 4.0f));
}

// Regression for the TOUCH cached path: a build-on-B distance join used to
// materialize an O(|A|) enlarged probe copy on every query, cache hit or
// not. The probe side is now enlarged on the fly (like the cached INL
// path), so warm hits run allocation-free: TouchJoin's analytic footprint —
// which counts any probe copy it owns — must be byte-identical between the
// cold run and the hit, and the pairs must still match the oracle at every
// epsilon sharing the raw cached tree.
TEST_F(QueryEngineTest, CachedBuildOnBDistanceJoinIsAllocationFree) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("large", large_);
  const DatasetHandle b = engine.RegisterDataset("small", small_);
  const JoinRequest request{a, b, 2.0f};
  const JoinPlan plan = engine.Plan(request);
  ASSERT_EQ(plan.algorithm, "touch");
  ASSERT_FALSE(plan.build_on_a);

  VectorCollector cold;
  const JoinResult cold_result = engine.Execute(request, cold);
  ASSERT_TRUE(cold_result.error.empty());
  ASSERT_FALSE(cold_result.index_cache_hit);
  VectorCollector warm;
  const JoinResult warm_result = engine.Execute(request, warm);
  ASSERT_TRUE(warm_result.error.empty());
  ASSERT_TRUE(warm_result.index_cache_hit);

  EXPECT_EQ(SortedPairs(warm), SortedPairs(cold));
  EXPECT_EQ(SortedPairs(warm), DistanceOracle(large_, small_, 2.0f));
  EXPECT_EQ(warm_result.stats.memory_bytes, cold_result.stats.memory_bytes);

  // A different epsilon still hits the same raw tree and still needs no
  // probe copy.
  VectorCollector wider;
  const JoinResult wider_result = engine.Execute({a, b, 5.0f}, wider);
  EXPECT_TRUE(wider_result.index_cache_hit);
  EXPECT_EQ(SortedPairs(wider), DistanceOracle(large_, small_, 5.0f));
}

TEST_F(QueryEngineTest, BuildOnACacheDistinguishesEpsilon) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);

  CountingCollector out;
  EXPECT_FALSE(engine.Execute({a, b, 2.0f}, out).index_cache_hit);
  // The enlargement is baked into the tree over A, so a new epsilon is a
  // new index...
  EXPECT_FALSE(engine.Execute({a, b, 4.0f}, out).index_cache_hit);
  // ...while repeating either epsilon hits its entry.
  EXPECT_TRUE(engine.Execute({a, b, 2.0f}, out).index_cache_hit);
  EXPECT_EQ(engine.cache_stats().entries, 2u);
}

TEST_F(QueryEngineTest, DisabledCacheStillProducesIdenticalResults) {
  EngineOptions options;
  options.cache_indexes = false;
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);

  VectorCollector out;
  const JoinResult result = engine.Execute({a, b, 2.0f}, out);
  ASSERT_TRUE(result.error.empty());
  EXPECT_FALSE(result.index_cache_hit);
  EXPECT_EQ(engine.cache_stats().misses, 0u);
  EXPECT_EQ(SortedPairs(out), DistanceOracle(small_, large_, 2.0f));
}

TEST_F(QueryEngineTest, BatchMatchesIndividualExecution) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);
  const std::vector<JoinRequest> requests = {
      {a, b, 2.0f}, {b, a, 1.0f}, {a, a, 0.5f}, {a, b, 2.0f}};

  QueryEngine reference;
  const DatasetHandle ra = reference.RegisterDataset("small", small_);
  const DatasetHandle rb = reference.RegisterDataset("large", large_);
  const std::vector<JoinRequest> reference_requests = {
      {ra, rb, 2.0f}, {rb, ra, 1.0f}, {ra, ra, 0.5f}, {ra, rb, 2.0f}};

  const std::vector<JoinResult> batch = engine.ExecuteBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(batch[i].error.empty()) << i;
    CountingCollector expected;
    reference.Execute(reference_requests[i], expected);
    EXPECT_EQ(batch[i].stats.results, expected.count()) << i;
  }
  // The duplicated request shares one index with its twin.
  EXPECT_GE(engine.cache_stats().hits, 1u);
}

TEST_F(QueryEngineTest, ExecuteFixedRunsTheNamedAlgorithm) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);

  VectorCollector out;
  const JoinResult result = engine.ExecuteFixed("ps", {a, b, 2.0f}, out);
  ASSERT_TRUE(result.error.empty());
  EXPECT_EQ(result.plan.algorithm, "ps");
  EXPECT_EQ(SortedPairs(out), DistanceOracle(small_, large_, 2.0f));
}

TEST_F(QueryEngineTest, ExecuteFixedReportsUnknownNames) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);

  VectorCollector out;
  const JoinResult result = engine.ExecuteFixed("bogus", {a, b, 1.0f}, out);
  EXPECT_NE(result.error.find("unknown algorithm 'bogus'"), std::string::npos);
  EXPECT_NE(result.error.find("accepted:"), std::string::npos);
  EXPECT_TRUE(out.pairs().empty());
}

// The INL R-tree is a cacheable artifact: build-on-A bakes the enlargement
// into the cached tree (per-epsilon entries), build-on-B keeps the tree raw
// and epsilon-independent.
TEST_F(QueryEngineTest, InlIndexIsCachedAndMatchesOracle) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("large", large_);
  const DatasetHandle b = engine.RegisterDataset("small", small_);

  // |A| > |B| -> tree on B, built raw: different epsilons share the entry.
  VectorCollector first;
  const JoinResult cold = engine.ExecuteFixed("inl", {a, b, 2.0f}, first);
  ASSERT_TRUE(cold.error.empty());
  EXPECT_FALSE(cold.index_cache_hit);
  ASSERT_FALSE(cold.plan.build_on_a);
  EXPECT_EQ(SortedPairs(first), DistanceOracle(large_, small_, 2.0f));

  VectorCollector second;
  const JoinResult warm = engine.ExecuteFixed("inl", {a, b, 4.0f}, second);
  EXPECT_TRUE(warm.index_cache_hit);
  EXPECT_EQ(warm.stats.build_seconds, 0.0);
  EXPECT_EQ(SortedPairs(second), DistanceOracle(large_, small_, 4.0f));
  EXPECT_EQ(engine.cache_stats().entries, 1u);

  // Reversed handles -> tree on A with the enlargement baked in: a new
  // epsilon is a new entry.
  VectorCollector reversed;
  const JoinResult on_a = engine.ExecuteFixed("inl", {b, a, 2.0f}, reversed);
  ASSERT_TRUE(on_a.plan.build_on_a);
  EXPECT_FALSE(on_a.index_cache_hit);
  EXPECT_EQ(SortedPairs(reversed), DistanceOracle(small_, large_, 2.0f));
  EXPECT_FALSE(
      engine.ExecuteFixed("inl", {b, a, 4.0f}, reversed).index_cache_hit);
  EXPECT_TRUE(
      engine.ExecuteFixed("inl", {b, a, 2.0f}, reversed).index_cache_hit);
}

// PBSM caches one cell directory per dataset; a repeat query reuses both.
TEST_F(QueryEngineTest, PbsmDirectoriesAreCachedPerDataset) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);

  VectorCollector cold;
  const JoinResult cold_result =
      engine.ExecuteFixed("pbsm-100", {a, b, 2.0f}, cold);
  ASSERT_TRUE(cold_result.error.empty());
  EXPECT_FALSE(cold_result.index_cache_hit);
  EXPECT_EQ(engine.cache_stats().entries, 2u);  // one directory per side
  EXPECT_EQ(SortedPairs(cold), DistanceOracle(small_, large_, 2.0f));

  VectorCollector warm;
  const JoinResult warm_result =
      engine.ExecuteFixed("pbsm-100", {a, b, 2.0f}, warm);
  EXPECT_TRUE(warm_result.index_cache_hit);
  EXPECT_EQ(warm_result.stats.build_seconds, 0.0);
  EXPECT_EQ(engine.cache_stats().entries, 2u);
  EXPECT_EQ(SortedPairs(warm), SortedPairs(cold));

  // A new epsilon moves the joint grid domain, so both directories rebuild
  // (the domain signature in the key keeps stale grids from aliasing).
  VectorCollector other;
  const JoinResult other_eps =
      engine.ExecuteFixed("pbsm-100", {a, b, 4.0f}, other);
  EXPECT_FALSE(other_eps.index_cache_hit);
  EXPECT_EQ(SortedPairs(other), DistanceOracle(small_, large_, 4.0f));
}

// TOUCH trees, INL R-trees and PBSM directories for the *same* dataset and
// epsilon live side by side: kinds never collide.
TEST_F(QueryEngineTest, MixedArtifactKindsNeverCollide) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);
  const JoinRequest request{a, b, 2.0f};

  VectorCollector touch_out;
  VectorCollector inl_out;
  VectorCollector pbsm_out;
  ASSERT_TRUE(engine.ExecuteFixed("touch", request, touch_out).error.empty());
  ASSERT_TRUE(engine.ExecuteFixed("inl", request, inl_out).error.empty());
  ASSERT_TRUE(engine.ExecuteFixed("pbsm-100", request, pbsm_out).error.empty());
  // 1 TOUCH tree + 1 INL tree + 2 PBSM directories.
  EXPECT_EQ(engine.cache_stats().entries, 4u);
  EXPECT_EQ(engine.cache_stats().hits, 0u);

  // Re-running each hits its own artifact and returns identical pairs.
  VectorCollector again;
  EXPECT_TRUE(engine.ExecuteFixed("touch", request, again).index_cache_hit);
  EXPECT_TRUE(engine.ExecuteFixed("inl", request, again).index_cache_hit);
  EXPECT_TRUE(engine.ExecuteFixed("pbsm-100", request, again).index_cache_hit);
  const std::vector<IdPair> oracle = DistanceOracle(small_, large_, 2.0f);
  EXPECT_EQ(SortedPairs(touch_out), oracle);
  EXPECT_EQ(SortedPairs(inl_out), oracle);
  EXPECT_EQ(SortedPairs(pbsm_out), oracle);
}

// max_cache_bytes caps the engine's cache: artifacts too big to retain are
// evicted LRU-style, queries still answer correctly, telemetry records it.
TEST_F(QueryEngineTest, MaxCacheBytesEvictsButNeverBreaksQueries) {
  EngineOptions options;
  options.max_cache_bytes = 1;  // nothing fits: every build evicts itself
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);
  const JoinRequest request{a, b, 2.0f};

  VectorCollector first;
  VectorCollector second;
  ASSERT_TRUE(engine.Execute(request, first).error.empty());
  const JoinResult repeat = engine.Execute(request, second);
  ASSERT_TRUE(repeat.error.empty());
  EXPECT_FALSE(repeat.index_cache_hit);  // nothing was retained

  const IndexCache::Stats stats = engine.cache_stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_LE(stats.bytes, options.max_cache_bytes);
  EXPECT_EQ(stats.capacity_bytes, 1u);
  EXPECT_EQ(SortedPairs(first), SortedPairs(second));
}

TEST_F(QueryEngineTest, InvalidHandlesAreRejected) {
  QueryEngine engine;
  CountingCollector out;
  const JoinResult result = engine.Execute({0, 1, 1.0f}, out);
  EXPECT_FALSE(result.error.empty());
  EXPECT_EQ(out.count(), 0u);
}

}  // namespace
}  // namespace touch
