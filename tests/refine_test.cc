#include "refine/refine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/touch.h"
#include "datagen/neuro.h"
#include "test_util.h"
#include "util/rng.h"

namespace touch {
namespace {

constexpr double kTolerance = 1e-5;

// --- Sphere geometry ---------------------------------------------------------

TEST(SphereGeometryTest, MbrIsTight) {
  const Sphere s(Vec3(10, 20, 30), 2.5f);
  EXPECT_EQ(s.Mbr(), Box(Vec3(7.5f, 17.5f, 27.5f), Vec3(12.5f, 22.5f, 32.5f)));
}

TEST(SphereGeometryTest, DistanceBetweenSeparatedSpheres) {
  const Sphere a(Vec3(0, 0, 0), 1.0f);
  const Sphere b(Vec3(10, 0, 0), 2.0f);
  EXPECT_NEAR(SphereDistance(a, b), 7.0, kTolerance);
}

TEST(SphereGeometryTest, InterpenetratingSpheresHaveZeroDistance) {
  const Sphere a(Vec3(0, 0, 0), 3.0f);
  const Sphere b(Vec3(1, 1, 1), 3.0f);
  EXPECT_EQ(SphereDistance(a, b), 0.0);
}

TEST(SphereGeometryTest, DistanceIsSymmetric) {
  Rng rng(31);
  for (int i = 0; i < 200; ++i) {
    const Sphere a(Vec3(rng.NextFloat() * 100, rng.NextFloat() * 100,
                        rng.NextFloat() * 100),
                   rng.NextFloat() * 5);
    const Sphere b(Vec3(rng.NextFloat() * 100, rng.NextFloat() * 100,
                        rng.NextFloat() * 100),
                   rng.NextFloat() * 5);
    EXPECT_NEAR(SphereDistance(a, b), SphereDistance(b, a), kTolerance);
  }
}

TEST(SphereGeometryTest, PointSegmentDistanceCases) {
  const Vec3 s0(0, 0, 0);
  const Vec3 s1(10, 0, 0);
  // Projection inside the segment.
  EXPECT_NEAR(PointSegmentDistance(Vec3(5, 3, 0), s0, s1), 3.0, kTolerance);
  // Beyond the ends: distance to the endpoint.
  EXPECT_NEAR(PointSegmentDistance(Vec3(-4, 0, 3), s0, s1), 5.0, kTolerance);
  EXPECT_NEAR(PointSegmentDistance(Vec3(13, 4, 0), s0, s1), 5.0, kTolerance);
  // Degenerate segment.
  EXPECT_NEAR(PointSegmentDistance(Vec3(1, 2, 2), s0, s0), 3.0, kTolerance);
}

TEST(SphereGeometryTest, SphereCylinderDistance) {
  const Cylinder cyl(Vec3(0, 0, 0), Vec3(10, 0, 0), 1.0f);
  const Sphere sphere(Vec3(5, 6, 0), 2.0f);
  // Axis distance 6, minus radii 1 + 2.
  EXPECT_NEAR(SphereCylinderDistance(sphere, cyl), 3.0, kTolerance);
  // Touching / interpenetrating.
  const Sphere close_sphere(Vec3(5, 2, 0), 2.0f);
  EXPECT_EQ(SphereCylinderDistance(close_sphere, cyl), 0.0);
}

TEST(SphereGeometryTest, MbrDistanceLowerBoundsExactDistance) {
  // The property the filter phase relies on: MBR distance never exceeds the
  // exact surface distance, so no pair within epsilon is filtered away.
  Rng rng(37);
  for (int i = 0; i < 500; ++i) {
    const Sphere a(Vec3(rng.NextFloat() * 50, rng.NextFloat() * 50,
                        rng.NextFloat() * 50),
                   0.5f + rng.NextFloat() * 3);
    const Sphere b(Vec3(rng.NextFloat() * 50, rng.NextFloat() * 50,
                        rng.NextFloat() * 50),
                   0.5f + rng.NextFloat() * 3);
    EXPECT_LE(MinDistance(a.Mbr(), b.Mbr()),
              SphereDistance(a, b) + kTolerance);
  }
}

// --- RefiningCollector --------------------------------------------------------

TEST(RefiningCollectorTest, ForwardsOnlyConfirmedPairsAndCountsBoth) {
  VectorCollector sink;
  RefiningCollector refine(
      [](uint32_t a_id, uint32_t) { return a_id % 2 == 0; }, sink);
  for (uint32_t i = 0; i < 10; ++i) refine.Emit(i, 100 + i);
  EXPECT_EQ(refine.stats().candidates, 10u);
  EXPECT_EQ(refine.stats().confirmed, 5u);
  EXPECT_EQ(sink.pairs().size(), 5u);
  EXPECT_NEAR(refine.stats().Precision(), 0.5, 1e-12);
}

TEST(RefiningCollectorTest, EmptyStreamHasPerfectPrecision) {
  CountingCollector sink;
  RefiningCollector refine([](uint32_t, uint32_t) { return true; }, sink);
  EXPECT_EQ(refine.stats().Precision(), 1.0);
}

// --- End-to-end pipelines -----------------------------------------------------

using PairSet = std::set<IdPair>;

TEST(SpherePipelineTest, MatchesBruteForceExactJoin) {
  Rng rng(53);
  std::vector<Sphere> a;
  std::vector<Sphere> b;
  for (int i = 0; i < 300; ++i) {
    a.emplace_back(Vec3(rng.NextFloat() * 200, rng.NextFloat() * 200,
                        rng.NextFloat() * 200),
                   0.5f + rng.NextFloat() * 2);
    b.emplace_back(Vec3(rng.NextFloat() * 200, rng.NextFloat() * 200,
                        rng.NextFloat() * 200),
                   0.5f + rng.NextFloat() * 2);
  }
  constexpr double kEpsilon = 12.0;

  PairSet expected;
  for (uint32_t i = 0; i < a.size(); ++i) {
    for (uint32_t j = 0; j < b.size(); ++j) {
      if (SpheresWithinDistance(a[i], b[j], kEpsilon)) expected.insert({i, j});
    }
  }
  ASSERT_FALSE(expected.empty());

  TouchJoin algorithm;
  VectorCollector out;
  JoinStats filter_stats;
  const RefineStats stats =
      SphereDistanceJoin(algorithm, a, b, kEpsilon, out, &filter_stats);
  const PairSet got(out.pairs().begin(), out.pairs().end());
  EXPECT_EQ(got, expected);
  EXPECT_EQ(stats.confirmed, expected.size());
  EXPECT_GE(stats.candidates, stats.confirmed);
  EXPECT_EQ(filter_stats.results, stats.candidates);
}

TEST(CylinderPipelineTest, MatchesBruteForceExactJoinOnNeuroData) {
  NeuroOptions opt;
  opt.neurons = 6;
  opt.segments_per_branch = 15;
  const NeuroModel model = GenerateNeuroscience(opt, 61);
  constexpr double kEpsilon = 5.0;

  PairSet expected;
  for (uint32_t i = 0; i < model.axons.size(); ++i) {
    for (uint32_t j = 0; j < model.dendrites.size(); ++j) {
      if (CylindersWithinDistance(model.axons[i], model.dendrites[j],
                                  kEpsilon)) {
        expected.insert({i, j});
      }
    }
  }
  ASSERT_FALSE(expected.empty());

  TouchJoin algorithm;
  VectorCollector out;
  const RefineStats stats = CylinderDistanceJoin(
      algorithm, model.axons, model.dendrites, kEpsilon, out);
  const PairSet got(out.pairs().begin(), out.pairs().end());
  EXPECT_EQ(got, expected);
  EXPECT_GT(stats.Precision(), 0.0);
  EXPECT_LE(stats.Precision(), 1.0);
}

TEST(CylinderPipelineTest, EveryFilterAlgorithmYieldsTheSameConfirmedSet) {
  NeuroOptions opt;
  opt.neurons = 4;
  opt.segments_per_branch = 10;
  const NeuroModel model = GenerateNeuroscience(opt, 67);
  constexpr double kEpsilon = 8.0;

  TouchJoin touch_join;
  VectorCollector touch_out;
  CylinderDistanceJoin(touch_join, model.axons, model.dendrites, kEpsilon,
                       touch_out);
  PairSet reference(touch_out.pairs().begin(), touch_out.pairs().end());

  NestedLoopJoin nl;
  VectorCollector nl_out;
  CylinderDistanceJoin(nl, model.axons, model.dendrites, kEpsilon, nl_out);
  EXPECT_EQ(PairSet(nl_out.pairs().begin(), nl_out.pairs().end()), reference);
}

}  // namespace
}  // namespace touch
