#include "engine/planner.h"

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "estimate/selectivity.h"
#include "test_util.h"

namespace touch {
namespace {

/// Catalog with one dataset per cardinality/distribution the tests need.
class PlannerTest : public ::testing::Test {
 protected:
  DatasetHandle Add(Distribution distribution, size_t count, uint64_t seed) {
    return catalog_.Register("d" + std::to_string(seed),
                             GenerateSynthetic(distribution, count, seed));
  }

  DatasetCatalog catalog_;
  Planner planner_;
};

TEST_F(PlannerTest, TinyInputsPlanNestedLoop) {
  const DatasetHandle a = Add(Distribution::kUniform, 40, 1);
  const DatasetHandle b = Add(Distribution::kUniform, 60, 2);
  const JoinPlan plan = planner_.Plan(catalog_, {a, b, 1.0f});
  EXPECT_EQ(plan.algorithm, "nl");
}

TEST_F(PlannerTest, SmallInputsPlanPlaneSweep) {
  const DatasetHandle a = Add(Distribution::kUniform, 1200, 3);
  const DatasetHandle b = Add(Distribution::kUniform, 1800, 4);
  const JoinPlan plan = planner_.Plan(catalog_, {a, b, 1.0f});
  EXPECT_EQ(plan.algorithm, "ps");
}

TEST_F(PlannerTest, EmptyInputPlansNestedLoop) {
  const DatasetHandle a = catalog_.Register("empty", Dataset{});
  const DatasetHandle b = Add(Distribution::kUniform, 5000, 5);
  const JoinPlan plan = planner_.Plan(catalog_, {a, b, 0.0f});
  EXPECT_EQ(plan.algorithm, "nl");
}

// INL is the memory-budget fallback for extreme cardinality asymmetry: its
// footprint is just the small tree. Without a budget the same pair plans
// TOUCH (skewed data), since partitioning is measured faster when memory is
// free.
TEST_F(PlannerTest, TightBudgetAndAsymmetryPlanIndexedNestedLoop) {
  const DatasetHandle small = Add(Distribution::kClustered, 1200, 6);
  const DatasetHandle large = Add(Distribution::kClustered, 120000, 7);
  EXPECT_EQ(planner_.Plan(catalog_, {small, large, 1.0f}).algorithm, "touch");

  PlannerOptions options;
  options.memory_budget_bytes = 2 << 20;
  const Planner constrained(options);
  const JoinPlan forward = constrained.Plan(catalog_, {small, large, 1.0f});
  EXPECT_EQ(forward.algorithm, "inl");
  EXPECT_TRUE(forward.build_on_a);  // the tree goes on the smaller side

  const JoinPlan reversed = constrained.Plan(catalog_, {large, small, 1.0f});
  EXPECT_EQ(reversed.algorithm, "inl");
  EXPECT_FALSE(reversed.build_on_a);
}

TEST_F(PlannerTest, TightBudgetWithoutAsymmetryPlansPlaneSweep) {
  const DatasetHandle a = Add(Distribution::kClustered, 30000, 18);
  const DatasetHandle b = Add(Distribution::kClustered, 60000, 19);
  PlannerOptions options;
  options.memory_budget_bytes = 1 << 20;
  const Planner constrained(options);
  const JoinPlan plan = constrained.Plan(catalog_, {a, b, 1.0f});
  EXPECT_EQ(plan.algorithm, "ps");
  EXPECT_NE(plan.rationale.find("memory budget"), std::string::npos);
}

TEST_F(PlannerTest, UniformMidSizeInputsPlanPbsm) {
  const DatasetHandle a = Add(Distribution::kUniform, 30000, 8);
  const DatasetHandle b = Add(Distribution::kUniform, 40000, 9);
  const JoinPlan plan = planner_.Plan(catalog_, {a, b, 1.0f});
  EXPECT_EQ(plan.algorithm.rfind("pbsm-", 0), 0u) << plan.algorithm;
}

// Two individually-uniform datasets whose extents barely overlap form a
// joint hotspot; PBSM's uniformity assumption does not hold there.
TEST_F(PlannerTest, MismatchedExtentsAvoidPbsm) {
  SyntheticOptions tiny;
  tiny.space = 40.0f;
  const DatasetHandle small_extent = catalog_.Register(
      "small_extent",
      GenerateSynthetic(Distribution::kUniform, 30000, 20, tiny));
  const DatasetHandle large_extent = Add(Distribution::kUniform, 40000, 21);
  const JoinPlan plan =
      planner_.Plan(catalog_, {small_extent, large_extent, 1.0f});
  EXPECT_EQ(plan.algorithm, "touch") << plan.rationale;
}

TEST_F(PlannerTest, ClusteredInputsPlanTouch) {
  const DatasetHandle a = Add(Distribution::kClustered, 30000, 10);
  const DatasetHandle b = Add(Distribution::kClustered, 60000, 11);
  const JoinPlan plan = planner_.Plan(catalog_, {a, b, 1.0f});
  EXPECT_EQ(plan.algorithm, "touch");
  EXPECT_GT(plan.touch.partitions, 0u);
  EXPECT_GT(plan.expected_results, 0);
}

TEST_F(PlannerTest, TouchBuildSideAgreesWithShouldBuildOnA) {
  const DatasetHandle small = Add(Distribution::kClustered, 30000, 12);
  const DatasetHandle large = Add(Distribution::kClustered, 60000, 13);

  const JoinPlan forward = planner_.Plan(catalog_, {small, large, 1.0f});
  ASSERT_EQ(forward.algorithm, "touch");
  EXPECT_EQ(forward.build_on_a,
            SelectivityEstimator::ShouldBuildOnA(catalog_.boxes(small),
                                                 catalog_.boxes(large)));
  EXPECT_TRUE(forward.build_on_a);
  EXPECT_EQ(forward.touch.join_order, TouchOptions::JoinOrder::kBuildOnA);

  const JoinPlan reversed = planner_.Plan(catalog_, {large, small, 1.0f});
  ASSERT_EQ(reversed.algorithm, "touch");
  EXPECT_EQ(reversed.build_on_a,
            SelectivityEstimator::ShouldBuildOnA(catalog_.boxes(large),
                                                 catalog_.boxes(small)));
  EXPECT_FALSE(reversed.build_on_a);
  EXPECT_EQ(reversed.touch.join_order, TouchOptions::JoinOrder::kBuildOnB);
}

TEST_F(PlannerTest, EveryPlanExplainsItself) {
  const DatasetHandle a = Add(Distribution::kClustered, 30000, 14);
  const DatasetHandle b = Add(Distribution::kUniform, 50, 15);
  for (const JoinRequest& request :
       {JoinRequest{a, b, 1.0f}, JoinRequest{b, a, 1.0f},
        JoinRequest{a, a, 0.0f}, JoinRequest{b, b, 0.0f}}) {
    const JoinPlan plan = planner_.Plan(catalog_, request);
    EXPECT_FALSE(plan.rationale.empty());
    const std::string text = plan.ToString();
    EXPECT_NE(text.find("algorithm="), std::string::npos);
    EXPECT_NE(text.find("reason:"), std::string::npos);
    EXPECT_NE(text.find(plan.algorithm), std::string::npos);
  }
}

// Planning consumes only registration-time stats: the stats-only overload —
// which cannot reach any geometry by construction — must produce the very
// same plans as planning through the catalog.
TEST_F(PlannerTest, StatsOnlyOverloadMatchesCatalogPlanning) {
  const DatasetHandle clustered = Add(Distribution::kClustered, 30000, 22);
  const DatasetHandle uniform = Add(Distribution::kUniform, 40000, 23);
  const DatasetHandle tiny = Add(Distribution::kUniform, 50, 24);
  for (const JoinRequest& request :
       {JoinRequest{clustered, uniform, 1.0f},
        JoinRequest{uniform, uniform, 2.0f}, JoinRequest{tiny, clustered, 0.5f},
        JoinRequest{clustered, clustered, 0.0f}}) {
    const JoinPlan via_catalog = planner_.Plan(catalog_, request);
    const JoinPlan via_stats =
        planner_.Plan(catalog_.stats(request.a), catalog_.stats(request.b),
                      request.epsilon);
    EXPECT_EQ(via_catalog.algorithm, via_stats.algorithm);
    EXPECT_EQ(via_catalog.build_on_a, via_stats.build_on_a);
    EXPECT_EQ(via_catalog.touch.partitions, via_stats.touch.partitions);
    EXPECT_EQ(via_catalog.rationale, via_stats.rationale);
    EXPECT_DOUBLE_EQ(via_catalog.expected_results, via_stats.expected_results);
  }
}

TEST_F(PlannerTest, LargerEpsilonRaisesTheEstimate) {
  const DatasetHandle a = Add(Distribution::kClustered, 30000, 16);
  const DatasetHandle b = Add(Distribution::kClustered, 60000, 17);
  const JoinPlan narrow = planner_.Plan(catalog_, {a, b, 0.5f});
  const JoinPlan wide = planner_.Plan(catalog_, {a, b, 5.0f});
  EXPECT_GT(wide.expected_results, narrow.expected_results);
}

}  // namespace
}  // namespace touch
