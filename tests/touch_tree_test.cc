#include "core/touch_tree.h"

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "test_util.h"

namespace touch {
namespace {

TEST(TouchTreeTest, EmptyTree) {
  const TouchTree tree({}, 8, 2);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0);
}

TEST(TouchTreeTest, SingleLeafTree) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 5, 1);
  const TouchTree tree(boxes, 8, 2);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.num_leaves(), 1u);
  const TouchTree::Node& root = tree.nodes()[tree.root()];
  EXPECT_TRUE(root.IsLeaf());
  EXPECT_EQ(root.ItemCount(), 5u);
}

TEST(TouchTreeTest, ItemsAreAPermutationOfInput) {
  const Dataset boxes = GenerateSynthetic(Distribution::kClustered, 1000, 2);
  const TouchTree tree(boxes, 16, 2);
  std::vector<uint32_t> all(tree.item_ids().begin(), tree.item_ids().end());
  std::sort(all.begin(), all.end());
  ASSERT_EQ(all.size(), boxes.size());
  for (uint32_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(TouchTreeTest, RootCoversAllItems) {
  const Dataset boxes = GenerateSynthetic(Distribution::kGaussian, 500, 3);
  const TouchTree tree(boxes, 16, 2);
  const TouchTree::Node& root = tree.nodes()[tree.root()];
  EXPECT_EQ(root.item_begin, 0u);
  EXPECT_EQ(root.item_end, boxes.size());
  for (const Box& box : boxes) EXPECT_TRUE(Contains(root.mbr, box));
}

TEST(TouchTreeTest, NodeMbrsEncloseDescendantItems) {
  const Dataset boxes = GenerateSynthetic(Distribution::kClustered, 800, 4);
  const TouchTree tree(boxes, 16, 4);
  for (const TouchTree::Node& node : tree.nodes()) {
    for (uint32_t i = node.item_begin; i < node.item_end; ++i) {
      EXPECT_TRUE(Contains(node.mbr, boxes[tree.item_ids()[i]]));
    }
  }
}

TEST(TouchTreeTest, ChildItemRangesTileTheParentRange) {
  // The DFS renumbering invariant: children's item ranges are contiguous and
  // exactly cover the parent's range.
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 1000, 5);
  const TouchTree tree(boxes, 8, 3);
  for (const TouchTree::Node& node : tree.nodes()) {
    if (node.IsLeaf()) continue;
    uint32_t covered = 0;
    uint32_t min_begin = UINT32_MAX;
    uint32_t max_end = 0;
    for (uint32_t i = 0; i < node.children_count; ++i) {
      const TouchTree::Node& child =
          tree.nodes()[tree.child_ids()[node.children_begin + i]];
      covered += child.ItemCount();
      min_begin = std::min(min_begin, child.item_begin);
      max_end = std::max(max_end, child.item_end);
    }
    EXPECT_EQ(covered, node.ItemCount());
    EXPECT_EQ(min_begin, node.item_begin);
    EXPECT_EQ(max_end, node.item_end);
  }
}

TEST(TouchTreeTest, ParentMbrsEncloseChildMbrs) {
  const Dataset boxes = GenerateSynthetic(Distribution::kGaussian, 600, 6);
  const TouchTree tree(boxes, 8, 2);
  for (const TouchTree::Node& node : tree.nodes()) {
    for (uint32_t i = 0; i < node.children_count; ++i) {
      const TouchTree::Node& child =
          tree.nodes()[tree.child_ids()[node.children_begin + i]];
      EXPECT_TRUE(Contains(node.mbr, child.mbr));
      EXPECT_EQ(child.level + 1, node.level);
    }
  }
}

TEST(TouchTreeTest, FanoutBoundsChildrenCount) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 1000, 7);
  for (const size_t fanout : {2u, 4u, 7u}) {
    const TouchTree tree(boxes, 8, fanout);
    for (const TouchTree::Node& node : tree.nodes()) {
      if (!node.IsLeaf()) {
        EXPECT_LE(node.children_count, fanout);
        EXPECT_GE(node.children_count, 1u);
      }
    }
  }
}

TEST(TouchTreeTest, SmallerFanoutYieldsTallerTree) {
  // Paper section 5.2.1: smaller fanout -> higher tree.
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 4000, 8);
  const TouchTree tall(boxes, 8, 2);
  const TouchTree flat(boxes, 8, 16);
  EXPECT_GT(tall.height(), flat.height());
}

TEST(TouchTreeTest, LeafCapacityControlsLeafCount) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 1024, 9);
  const TouchTree fine(boxes, 4, 2);
  const TouchTree coarse(boxes, 128, 2);
  EXPECT_GT(fine.num_leaves(), coarse.num_leaves());
  EXPECT_GE(fine.num_leaves(), 256u);
  EXPECT_LE(coarse.num_leaves(), 16u);
}

TEST(TouchTreeTest, HeightMatchesRootLevel) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 2000, 10);
  const TouchTree tree(boxes, 8, 2);
  EXPECT_EQ(tree.nodes()[tree.root()].level + 1, tree.height());
}

TEST(TouchTreeTest, IdenticalBoxesBuildValidTree) {
  const Dataset boxes(300, MakeBox(1, 1, 1, 2, 2, 2));
  const TouchTree tree(boxes, 8, 2);
  EXPECT_EQ(tree.size(), 300u);
  const TouchTree::Node& root = tree.nodes()[tree.root()];
  EXPECT_EQ(root.mbr, MakeBox(1, 1, 1, 2, 2, 2));
}

TEST(TouchTreeTest, MemoryUsageIsPositiveAndGrows) {
  const Dataset small = GenerateSynthetic(Distribution::kUniform, 100, 11);
  const Dataset large = GenerateSynthetic(Distribution::kUniform, 10000, 11);
  const TouchTree t1(small, 8, 2);
  const TouchTree t2(large, 8, 2);
  EXPECT_GT(t1.MemoryUsageBytes(), 0u);
  EXPECT_LT(t1.MemoryUsageBytes(), t2.MemoryUsageBytes());
}

}  // namespace
}  // namespace touch
