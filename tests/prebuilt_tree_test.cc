// Tests of the paper's section-4.3 shortcut: an existing data-oriented
// index on dataset A is converted into the TOUCH tree, and the join skips
// the tree-building phase without changing the result.

#include <gtest/gtest.h>

#include <functional>

#include "core/touch.h"
#include "datagen/distributions.h"
#include "index/rtree.h"
#include "test_util.h"

namespace touch {
namespace {

class PrebuiltTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = GenerateSynthetic(Distribution::kClustered, 1500, 151);
    for (Box& box : a_) box = box.Enlarged(7.0f);
    b_ = GenerateSynthetic(Distribution::kClustered, 2500, 152);
  }
  Dataset a_;
  Dataset b_;
};

TEST_F(PrebuiltTreeTest, ConvertedTreePreservesStructureInvariants) {
  const RTree index(a_, 32, 4);
  const TouchTree tree = TouchTree::FromRTree(index);
  EXPECT_EQ(tree.size(), a_.size());
  EXPECT_EQ(tree.height(), index.height());
  EXPECT_EQ(tree.nodes().size(), index.nodes().size());

  // Every node: MBR contains children / items, item range is the union of
  // the children's ranges (DFS contiguity).
  std::function<void(uint32_t)> walk = [&](uint32_t id) {
    const TouchTree::Node& node = tree.nodes()[id];
    if (node.IsLeaf()) {
      for (uint32_t i = node.item_begin; i < node.item_end; ++i) {
        EXPECT_TRUE(Contains(node.mbr, a_[tree.item_ids()[i]]));
      }
      return;
    }
    uint32_t expected_begin = node.item_begin;
    for (uint32_t i = 0; i < node.children_count; ++i) {
      const uint32_t child = tree.child_ids()[node.children_begin + i];
      const TouchTree::Node& child_node = tree.nodes()[child];
      EXPECT_TRUE(Contains(node.mbr, child_node.mbr));
      EXPECT_EQ(child_node.item_begin, expected_begin)
          << "descendant items must be contiguous";
      expected_begin = child_node.item_end;
      walk(child);
    }
    EXPECT_EQ(expected_begin, node.item_end);
  };
  walk(tree.root());

  // Every object appears exactly once.
  std::vector<uint32_t> items(tree.item_ids().begin(), tree.item_ids().end());
  std::sort(items.begin(), items.end());
  for (uint32_t i = 0; i < items.size(); ++i) EXPECT_EQ(items[i], i);
}

TEST_F(PrebuiltTreeTest, JoinWithConvertedTreeMatchesOracle) {
  const RTree index(a_, 32, 4);
  const TouchTree tree = TouchTree::FromRTree(index);
  TouchJoin join;
  VectorCollector out;
  const JoinStats stats = join.JoinWithPrebuiltTree(tree, a_, b_, out);
  auto pairs = out.pairs();
  std::sort(pairs.begin(), pairs.end());
  EXPECT_EQ(pairs, OracleJoin(a_, b_));
  EXPECT_EQ(stats.build_seconds, 0.0);
  EXPECT_GT(stats.comparisons, 0u);
}

TEST_F(PrebuiltTreeTest, WorksWithEveryBulkLoader) {
  const auto oracle = OracleJoin(a_, b_);
  for (const BulkLoadMethod method :
       {BulkLoadMethod::kStr, BulkLoadMethod::kHilbert,
        BulkLoadMethod::kTgs}) {
    const RTree index(a_, 16, 2, method);
    const TouchTree tree = TouchTree::FromRTree(index);
    TouchJoin join;
    VectorCollector out;
    join.JoinWithPrebuiltTree(tree, a_, b_, out);
    auto pairs = out.pairs();
    std::sort(pairs.begin(), pairs.end());
    EXPECT_EQ(pairs, oracle);
  }
}

TEST_F(PrebuiltTreeTest, MatchesSelfBuiltTreeWhenShapesAgree) {
  // A fanout-2, 32-capacity STR R-tree converted to a TOUCH tree and the
  // TOUCH tree built directly with the same parameters run the same join
  // (identical STR packing), so comparisons must agree too.
  const RTree index(a_, 32, 2);
  const TouchTree converted = TouchTree::FromRTree(index);

  TouchOptions opt;
  opt.leaf_capacity = 32;
  opt.fanout = 2;
  opt.join_order = TouchOptions::JoinOrder::kBuildOnA;
  TouchJoin join(opt);

  VectorCollector out_converted;
  const JoinStats stats_converted =
      join.JoinWithPrebuiltTree(converted, a_, b_, out_converted);
  VectorCollector out_direct;
  const JoinStats stats_direct = join.Join(a_, b_, out_direct);
  EXPECT_EQ(out_converted.pairs().size(), out_direct.pairs().size());
  EXPECT_EQ(stats_converted.comparisons, stats_direct.comparisons);
}

TEST_F(PrebuiltTreeTest, EmptyIndexIsSafe) {
  const RTree index(Dataset{}, 32, 4);
  const TouchTree tree = TouchTree::FromRTree(index);
  EXPECT_TRUE(tree.empty());
  TouchJoin join;
  VectorCollector out;
  const JoinStats stats = join.JoinWithPrebuiltTree(tree, {}, b_, out);
  EXPECT_EQ(stats.results, 0u);
}

}  // namespace
}  // namespace touch
