// Tests of the paper's section-4.3 shortcut: an existing data-oriented
// index on dataset A is converted into the TOUCH tree, and the join skips
// the tree-building phase without changing the result.

#include <gtest/gtest.h>

#include <functional>

#include "core/touch.h"
#include "datagen/distributions.h"
#include "index/rtree.h"
#include "test_util.h"

namespace touch {
namespace {

class PrebuiltTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = GenerateSynthetic(Distribution::kClustered, 1500, 151);
    for (Box& box : a_) box = box.Enlarged(7.0f);
    b_ = GenerateSynthetic(Distribution::kClustered, 2500, 152);
  }
  Dataset a_;
  Dataset b_;
};

TEST_F(PrebuiltTreeTest, ConvertedTreePreservesStructureInvariants) {
  const RTree index(a_, 32, 4);
  const TouchTree tree = TouchTree::FromRTree(index);
  EXPECT_EQ(tree.size(), a_.size());
  EXPECT_EQ(tree.height(), index.height());
  EXPECT_EQ(tree.nodes().size(), index.nodes().size());

  // Every node: MBR contains children / items, item range is the union of
  // the children's ranges (DFS contiguity).
  std::function<void(uint32_t)> walk = [&](uint32_t id) {
    const TouchTree::Node& node = tree.nodes()[id];
    if (node.IsLeaf()) {
      for (uint32_t i = node.item_begin; i < node.item_end; ++i) {
        EXPECT_TRUE(Contains(node.mbr, a_[tree.item_ids()[i]]));
      }
      return;
    }
    uint32_t expected_begin = node.item_begin;
    for (uint32_t i = 0; i < node.children_count; ++i) {
      const uint32_t child = tree.child_ids()[node.children_begin + i];
      const TouchTree::Node& child_node = tree.nodes()[child];
      EXPECT_TRUE(Contains(node.mbr, child_node.mbr));
      EXPECT_EQ(child_node.item_begin, expected_begin)
          << "descendant items must be contiguous";
      expected_begin = child_node.item_end;
      walk(child);
    }
    EXPECT_EQ(expected_begin, node.item_end);
  };
  walk(tree.root());

  // Every object appears exactly once.
  std::vector<uint32_t> items(tree.item_ids().begin(), tree.item_ids().end());
  std::sort(items.begin(), items.end());
  for (uint32_t i = 0; i < items.size(); ++i) EXPECT_EQ(items[i], i);
}

TEST_F(PrebuiltTreeTest, JoinWithConvertedTreeMatchesOracle) {
  const RTree index(a_, 32, 4);
  const TouchTree tree = TouchTree::FromRTree(index);
  TouchJoin join;
  VectorCollector out;
  const JoinStats stats = join.JoinWithPrebuiltTree(tree, a_, b_, out);
  auto pairs = out.pairs();
  std::sort(pairs.begin(), pairs.end());
  EXPECT_EQ(pairs, OracleJoin(a_, b_));
  EXPECT_EQ(stats.build_seconds, 0.0);
  EXPECT_GT(stats.comparisons, 0u);
}

TEST_F(PrebuiltTreeTest, WorksWithEveryBulkLoader) {
  const auto oracle = OracleJoin(a_, b_);
  for (const BulkLoadMethod method :
       {BulkLoadMethod::kStr, BulkLoadMethod::kHilbert,
        BulkLoadMethod::kTgs}) {
    const RTree index(a_, 16, 2, method);
    const TouchTree tree = TouchTree::FromRTree(index);
    TouchJoin join;
    VectorCollector out;
    join.JoinWithPrebuiltTree(tree, a_, b_, out);
    auto pairs = out.pairs();
    std::sort(pairs.begin(), pairs.end());
    EXPECT_EQ(pairs, oracle);
  }
}

TEST_F(PrebuiltTreeTest, MatchesSelfBuiltTreeWhenShapesAgree) {
  // A fanout-2, 32-capacity STR R-tree converted to a TOUCH tree and the
  // TOUCH tree built directly with the same parameters run the same join
  // (identical STR packing), so comparisons must agree too.
  const RTree index(a_, 32, 2);
  const TouchTree converted = TouchTree::FromRTree(index);

  TouchOptions opt;
  opt.leaf_capacity = 32;
  opt.fanout = 2;
  opt.join_order = TouchOptions::JoinOrder::kBuildOnA;
  TouchJoin join(opt);

  VectorCollector out_converted;
  const JoinStats stats_converted =
      join.JoinWithPrebuiltTree(converted, a_, b_, out_converted);
  VectorCollector out_direct;
  const JoinStats stats_direct = join.Join(a_, b_, out_direct);
  EXPECT_EQ(out_converted.pairs().size(), out_direct.pairs().size());
  EXPECT_EQ(stats_converted.comparisons, stats_direct.comparisons);
}

// The engine's cached build-on-B distance joins hinge on this: probing a
// prebuilt tree with raw boxes plus probe_epsilon must equal probing with a
// pre-enlarged copy — and with the default grid local join it must do so
// without materializing that copy. TouchJoin's analytic memory accounting
// includes any probe copy it owns (the non-grid ablations materialize one),
// so byte-identical memory_bytes between the two runs is the regression
// signal that the grid path stayed allocation-free.
TEST_F(PrebuiltTreeTest, ProbeEpsilonMatchesEnlargedCopyWithoutAllocating) {
  // The build side gets clearly smaller objects so that it dictates the
  // local-join cell size in both runs (the raw-vs-enlarged probe average
  // must not flip the min), keeping the two runs' grids — and therefore
  // their comparison counts and analytic footprints — bit-identical.
  SyntheticOptions small_objects;
  small_objects.max_side = 0.5f;
  SyntheticOptions large_objects;
  large_objects.max_side = 2.0f;
  const Dataset build =
      GenerateSynthetic(Distribution::kClustered, 1500, 153, small_objects);
  const Dataset probe =
      GenerateSynthetic(Distribution::kClustered, 2500, 154, large_objects);
  const float epsilon = 6.0f;
  Dataset enlarged = probe;
  for (Box& box : enlarged) box = box.Enlarged(epsilon);

  const TouchTree tree(build, 32, 2);
  TouchOptions options;
  options.leaf_capacity = 32;
  options.fanout = 2;
  TouchJoin join(options);

  VectorCollector copied;
  const JoinStats copied_stats =
      join.JoinWithPrebuiltTree(tree, build, enlarged, copied);
  VectorCollector on_the_fly;
  const JoinStats fly_stats =
      join.JoinWithPrebuiltTree(tree, build, probe, on_the_fly, epsilon);

  auto sorted = [](VectorCollector& collector) {
    auto pairs = collector.pairs();
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  };
  ASSERT_FALSE(on_the_fly.pairs().empty());
  EXPECT_EQ(sorted(on_the_fly), sorted(copied));
  EXPECT_EQ(fly_stats.results, copied_stats.results);
  EXPECT_EQ(fly_stats.comparisons, copied_stats.comparisons);
  EXPECT_EQ(fly_stats.memory_bytes, copied_stats.memory_bytes)
      << "the grid path must not own a probe copy";
}

// The materializing ablations (nested loop / plane sweep local joins) stay
// correct with probe_epsilon; their one-off copy is visible in the analytic
// footprint.
TEST_F(PrebuiltTreeTest, ProbeEpsilonWorksWithEveryLocalJoinStrategy) {
  const Dataset build = GenerateSynthetic(Distribution::kClustered, 1500, 155);
  const Dataset probe = GenerateSynthetic(Distribution::kClustered, 2500, 156);
  const float epsilon = 6.0f;
  Dataset enlarged = probe;
  for (Box& box : enlarged) box = box.Enlarged(epsilon);
  const auto oracle = OracleJoin(build, enlarged);
  ASSERT_FALSE(oracle.empty());

  const TouchTree tree(build, 32, 2);
  for (const LocalJoinStrategy strategy :
       {LocalJoinStrategy::kGrid, LocalJoinStrategy::kNestedLoop,
        LocalJoinStrategy::kPlaneSweep}) {
    TouchOptions options;
    options.leaf_capacity = 32;
    options.fanout = 2;
    options.local_join = strategy;
    TouchJoin join(options);
    VectorCollector out;
    join.JoinWithPrebuiltTree(tree, build, probe, out, epsilon);
    auto pairs = out.pairs();
    std::sort(pairs.begin(), pairs.end());
    EXPECT_EQ(pairs, oracle) << static_cast<int>(strategy);
  }
}

TEST_F(PrebuiltTreeTest, EmptyIndexIsSafe) {
  const RTree index(Dataset{}, 32, 4);
  const TouchTree tree = TouchTree::FromRTree(index);
  EXPECT_TRUE(tree.empty());
  TouchJoin join;
  VectorCollector out;
  const JoinStats stats = join.JoinWithPrebuiltTree(tree, {}, b_, out);
  EXPECT_EQ(stats.results, 0u);
}

}  // namespace
}  // namespace touch
