// Per-algorithm behavioural tests of the six baseline joins. Exhaustive
// cross-algorithm result equality is covered by algorithms_property_test.cc;
// these tests pin down algorithm-specific behaviours (stats, dedup, pruning,
// configuration effects).

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "join/indexed_nested_loop.h"
#include "join/nested_loop.h"
#include "join/pbsm.h"
#include "join/plane_sweep.h"
#include "join/rtree_join.h"
#include "join/s3.h"
#include "test_util.h"

namespace touch {
namespace {

Dataset SmallA() {
  Dataset a = GenerateSynthetic(Distribution::kUniform, 400, 10);
  for (Box& box : a) box = box.Enlarged(8.0f);
  return a;
}
Dataset SmallB() { return GenerateSynthetic(Distribution::kUniform, 600, 11); }

TEST(NestedLoopTest, ExactComparisonCount) {
  NestedLoopJoin join;
  const Dataset a = SmallA();
  const Dataset b = SmallB();
  JoinStats stats;
  RunJoinSorted(join, a, b, &stats);
  EXPECT_EQ(stats.comparisons, a.size() * b.size());
  EXPECT_EQ(stats.memory_bytes, 0u);
}

TEST(NestedLoopTest, KnownTinyCase) {
  NestedLoopJoin join;
  const Dataset a = {MakeBox(0, 0, 0, 2, 2, 2), MakeBox(10, 10, 10, 11, 11, 11)};
  const Dataset b = {MakeBox(1, 1, 1, 3, 3, 3), MakeBox(50, 50, 50, 51, 51, 51)};
  const std::vector<IdPair> expected = {{0, 0}};
  EXPECT_EQ(RunJoinSorted(join, a, b), expected);
}

TEST(NestedLoopTest, EmptyInputs) {
  NestedLoopJoin join;
  EXPECT_TRUE(RunJoinSorted(join, {}, SmallB()).empty());
  EXPECT_TRUE(RunJoinSorted(join, SmallA(), {}).empty());
}

TEST(PlaneSweepTest, MatchesOracle) {
  PlaneSweepJoin join;
  const Dataset a = SmallA();
  const Dataset b = SmallB();
  EXPECT_EQ(RunJoinSorted(join, a, b), OracleJoin(a, b));
}

TEST(PlaneSweepTest, FewerComparisonsThanNestedLoop) {
  PlaneSweepJoin join;
  const Dataset a = SmallA();
  const Dataset b = SmallB();
  JoinStats stats;
  RunJoinSorted(join, a, b, &stats);
  EXPECT_LT(stats.comparisons, a.size() * b.size());
  EXPECT_GT(stats.comparisons, 0u);
}

TEST(PlaneSweepTest, ResultsCounterMatchesEmittedPairs) {
  PlaneSweepJoin join;
  const Dataset a = SmallA();
  const Dataset b = SmallB();
  JoinStats stats;
  const auto pairs = RunJoinSorted(join, a, b, &stats);
  EXPECT_EQ(stats.results, pairs.size());
}

TEST(PbsmTest, MatchesOracleAcrossResolutions) {
  const Dataset a = SmallA();
  const Dataset b = SmallB();
  const auto oracle = OracleJoin(a, b);
  for (const int resolution : {1, 2, 5, 20, 100}) {
    PbsmOptions opt;
    opt.resolution = resolution;
    PbsmJoin join(opt);
    EXPECT_EQ(RunJoinSorted(join, a, b), oracle) << "res=" << resolution;
  }
}

TEST(PbsmTest, NoDuplicatesDespiteReplication) {
  PbsmOptions opt;
  opt.resolution = 50;
  PbsmJoin join(opt);
  // Large objects overlapping many cells are the duplicate-prone case.
  Dataset a = GenerateSynthetic(Distribution::kUniform, 100, 12);
  for (Box& box : a) box = box.Enlarged(100.0f);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 200, 13);
  VectorCollector out;
  join.Join(a, b, out);
  EXPECT_TRUE(HasNoDuplicates(out.pairs()));
  EXPECT_EQ(RunJoinSorted(join, a, b), OracleJoin(a, b));
}

TEST(PbsmTest, FinerGridUsesMoreMemory) {
  const Dataset a = SmallA();
  const Dataset b = SmallB();
  PbsmOptions coarse_opt;
  coarse_opt.resolution = 10;
  PbsmOptions fine_opt;
  fine_opt.resolution = 100;
  JoinStats coarse;
  JoinStats fine;
  PbsmJoin coarse_join(coarse_opt);
  PbsmJoin fine_join(fine_opt);
  RunJoinSorted(coarse_join, a, b, &coarse);
  RunJoinSorted(fine_join, a, b, &fine);
  EXPECT_GT(fine.memory_bytes, coarse.memory_bytes);
}

TEST(PbsmTest, NestedLoopLocalJoinGivesSameResults) {
  PbsmOptions opt;
  opt.resolution = 20;
  opt.local_join = LocalJoinStrategy::kNestedLoop;
  PbsmJoin join(opt);
  const Dataset a = SmallA();
  const Dataset b = SmallB();
  EXPECT_EQ(RunJoinSorted(join, a, b), OracleJoin(a, b));
}

TEST(S3Test, MatchesOracleAcrossConfigurations) {
  const Dataset a = SmallA();
  const Dataset b = SmallB();
  const auto oracle = OracleJoin(a, b);
  for (const int levels : {1, 2, 5, 7}) {
    for (const int fanout : {2, 3}) {
      S3Options opt;
      opt.levels = levels;
      opt.fanout = fanout;
      S3Join join(opt);
      EXPECT_EQ(RunJoinSorted(join, a, b), oracle)
          << "levels=" << levels << " fanout=" << fanout;
    }
  }
}

TEST(S3Test, SingleLevelDegeneratesToOneCell) {
  S3Options opt;
  opt.levels = 1;
  S3Join join(opt);
  const Dataset a = SmallA();
  const Dataset b = SmallB();
  JoinStats stats;
  RunJoinSorted(join, a, b, &stats);
  // One cell: the local plane sweep sees everything; comparisons are at most
  // the full cross product but usually fewer.
  EXPECT_LE(stats.comparisons, a.size() * b.size());
}

TEST(S3Test, LargeObjectsLandOnCoarseLevels) {
  // Objects spanning the space cannot fit a single fine cell, so they are
  // compared against everything — but the join must stay correct.
  Dataset a = SmallA();
  a.push_back(MakeBox(-10, -10, -10, 1010, 1010, 1010));  // covers all
  const Dataset b = SmallB();
  S3Join join;
  EXPECT_EQ(RunJoinSorted(join, a, b), OracleJoin(a, b));
}

TEST(S3Test, NoDuplicates) {
  S3Join join;
  Dataset a = SmallA();
  for (Box& box : a) box = box.Enlarged(30.0f);
  const Dataset b = SmallB();
  VectorCollector out;
  join.Join(a, b, out);
  EXPECT_TRUE(HasNoDuplicates(out.pairs()));
}

TEST(RTreeSyncJoinTest, MatchesOracleAcrossFanouts) {
  const Dataset a = SmallA();
  const Dataset b = SmallB();
  const auto oracle = OracleJoin(a, b);
  for (const size_t fanout : {2u, 4u, 8u}) {
    for (const size_t leaf : {4u, 64u}) {
      RTreeJoinOptions opt;
      opt.fanout = fanout;
      opt.leaf_capacity = leaf;
      RTreeSyncJoin join(opt);
      EXPECT_EQ(RunJoinSorted(join, a, b), oracle)
          << "fanout=" << fanout << " leaf=" << leaf;
    }
  }
}

TEST(RTreeSyncJoinTest, DisjointDatasetsPruneAtRoot) {
  RTreeSyncJoin join;
  Dataset a = GenerateSynthetic(Distribution::kUniform, 500, 14);
  Dataset b = GenerateSynthetic(Distribution::kUniform, 500, 15);
  for (Box& box : b) {
    box.lo.x += 5000;
    box.hi.x += 5000;
  }
  JoinStats stats;
  RunJoinSorted(join, a, b, &stats);
  EXPECT_EQ(stats.results, 0u);
  EXPECT_EQ(stats.comparisons, 0u);
  EXPECT_EQ(stats.node_comparisons, 1u);  // only the root pair test
}

TEST(RTreeSyncJoinTest, CountsBothTreesInMemory) {
  const Dataset a = SmallA();
  const Dataset b = SmallB();
  RTreeSyncJoin sync_join;
  IndexedNestedLoopJoin inl_join;
  JoinStats sync_stats;
  JoinStats inl_stats;
  RunJoinSorted(sync_join, a, b, &sync_stats);
  RunJoinSorted(inl_join, a, b, &inl_stats);
  // RTree keeps one tree per dataset, INL only one (paper section 6.4).
  EXPECT_GT(sync_stats.memory_bytes, inl_stats.memory_bytes);
}

TEST(IndexedNestedLoopTest, MatchesOracle) {
  IndexedNestedLoopJoin join;
  const Dataset a = SmallA();
  const Dataset b = SmallB();
  EXPECT_EQ(RunJoinSorted(join, a, b), OracleJoin(a, b));
}

TEST(IndexedNestedLoopTest, RepeatedDescentCostsMoreNodeComparisons) {
  // Same object comparisons ballpark, but INL re-descends per probe: node
  // comparisons must exceed the synchronous traversal's (paper section 6.4).
  const Dataset a = SmallA();
  const Dataset b = SmallB();
  RTreeSyncJoin sync_join;
  IndexedNestedLoopJoin inl_join;
  JoinStats sync_stats;
  JoinStats inl_stats;
  RunJoinSorted(sync_join, a, b, &sync_stats);
  RunJoinSorted(inl_join, a, b, &inl_stats);
  EXPECT_GT(inl_stats.node_comparisons, sync_stats.node_comparisons);
}

TEST(AllBaselinesTest, EmptyInputsAreSafe) {
  const Dataset a = SmallA();
  NestedLoopJoin nl;
  PlaneSweepJoin ps;
  PbsmJoin pbsm;
  S3Join s3;
  RTreeSyncJoin rtree;
  IndexedNestedLoopJoin inl;
  for (SpatialJoinAlgorithm* join :
       std::initializer_list<SpatialJoinAlgorithm*>{&nl, &ps, &pbsm, &s3,
                                                    &rtree, &inl}) {
    EXPECT_TRUE(RunJoinSorted(*join, {}, a).empty()) << join->name();
    EXPECT_TRUE(RunJoinSorted(*join, a, {}).empty()) << join->name();
    EXPECT_TRUE(RunJoinSorted(*join, {}, {}).empty()) << join->name();
  }
}

}  // namespace
}  // namespace touch
