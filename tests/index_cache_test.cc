#include "engine/index_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "datagen/distributions.h"
#include "engine/engine.h"

namespace touch {
namespace {

/// Minimal artifact for cache-policy tests: a fixed byte size, a payload
/// identifying which build produced it, and an optional build cost driving
/// the cost-aware eviction weight.
struct TestArtifact : CachedArtifact {
  size_t bytes;
  int payload;

  TestArtifact(size_t bytes_in, int payload_in, double build_seconds_in = 0) {
    bytes = bytes_in;
    payload = payload_in;
    build_seconds = build_seconds_in;
  }
  size_t MemoryUsageBytes() const override { return bytes; }
};

IndexCacheKey Key(DatasetHandle dataset, float epsilon = 0.0f,
                  size_t shape_a = 1, size_t shape_b = 2,
                  ArtifactKind kind = ArtifactKind::kTouchTree,
                  uint64_t version = 0) {
  return IndexCacheKey{dataset, version, epsilon, shape_a, shape_b, kind};
}

IndexCache::Builder Build(size_t bytes, int payload, int* builds = nullptr,
                          double build_seconds = 0) {
  return [=]() -> IndexCache::ArtifactPtr {
    if (builds != nullptr) ++*builds;
    return std::make_shared<TestArtifact>(bytes, payload, build_seconds);
  };
}

int Payload(const IndexCache::ArtifactPtr& artifact) {
  return static_cast<const TestArtifact*>(artifact.get())->payload;
}

/// A build-cost prediction provider returning a fixed value.
IndexCache::BuildCostFn Expect(double seconds) {
  return [seconds] { return seconds; };
}

TEST(IndexCacheTest, HitReturnsSameArtifactAndCountsBytes) {
  IndexCache cache;
  const auto first = cache.GetOrBuild(Key(0), Build(100, 7));
  const auto second = cache.GetOrBuild(Key(0), Build(100, 8));
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(Payload(second), 7);  // the second builder never ran

  const IndexCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 100u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(IndexCacheTest, MixedKindsWithIdenticalFieldsNeverCollide) {
  IndexCache cache;
  // Same dataset, epsilon and shape — only the kind differs. Each kind must
  // get its own entry (a TOUCH tree is not an R-tree is not a directory).
  for (const ArtifactKind kind :
       {ArtifactKind::kTouchTree, ArtifactKind::kInlRTree,
        ArtifactKind::kPbsmDirectory}) {
    const auto artifact = cache.GetOrBuild(
        Key(3, 1.5f, 64, 2, kind), Build(10, static_cast<int>(kind)));
    EXPECT_EQ(Payload(artifact), static_cast<int>(kind));
  }
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().misses, 3u);

  // Re-requesting each kind hits its own entry with the right payload.
  for (const ArtifactKind kind :
       {ArtifactKind::kTouchTree, ArtifactKind::kInlRTree,
        ArtifactKind::kPbsmDirectory}) {
    const auto artifact =
        cache.GetOrBuild(Key(3, 1.5f, 64, 2, kind), Build(10, -1));
    EXPECT_EQ(Payload(artifact), static_cast<int>(kind));
  }
  EXPECT_EQ(cache.stats().hits, 3u);
}

TEST(IndexCacheTest, EvictsLeastRecentlyUsedFirst) {
  IndexCache cache(/*max_bytes=*/250);
  cache.GetOrBuild(Key(0), Build(100, 0));
  cache.GetOrBuild(Key(1), Build(100, 1));
  // Touch key 0 so key 1 becomes the LRU entry.
  cache.GetOrBuild(Key(0), Build(100, 99));

  // Inserting key 2 (total 300 > 250) must evict exactly key 1.
  cache.GetOrBuild(Key(2), Build(100, 2));
  IndexCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 200u);

  int builds_0 = 0;
  int builds_1 = 0;
  EXPECT_EQ(Payload(cache.GetOrBuild(Key(0), Build(100, -1, &builds_0))), 0);
  EXPECT_EQ(builds_0, 0);  // key 0 survived
  // Key 1 was evicted: this lookup is a miss and rebuilds (evicting key 2,
  // now the LRU entry, to stay under the cap).
  EXPECT_EQ(Payload(cache.GetOrBuild(Key(1), Build(100, 11, &builds_1))), 11);
  EXPECT_EQ(builds_1, 1);
  stats = cache.stats();
  EXPECT_EQ(stats.evictions, 2u);
  EXPECT_LE(stats.bytes, 250u);
}

TEST(IndexCacheTest, OversizedArtifactServesItsQueryButIsNotRetained) {
  IndexCache cache(/*max_bytes=*/100);
  const auto artifact = cache.GetOrBuild(Key(0), Build(500, 42));
  EXPECT_EQ(Payload(artifact), 42);  // the requesting query still runs
  const IndexCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.evictions, 1u);
}

TEST(IndexCacheTest, UnboundedCacheNeverEvicts) {
  IndexCache cache;  // max_bytes = 0
  for (uint32_t i = 0; i < 32; ++i) {
    cache.GetOrBuild(Key(i), Build(1 << 20, static_cast<int>(i)));
  }
  const IndexCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 32u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.capacity_bytes, 0u);
}

TEST(IndexCacheTest, FailedBuildUnpoisonsTheKey) {
  IndexCache cache;
  EXPECT_THROW(cache.GetOrBuild(Key(0),
                                []() -> IndexCache::ArtifactPtr {
                                  throw std::runtime_error("boom");
                                }),
               std::runtime_error);
  EXPECT_EQ(cache.stats().entries, 0u);
  // The key is retryable and byte accounting was untouched.
  EXPECT_EQ(Payload(cache.GetOrBuild(Key(0), Build(50, 5))), 5);
  EXPECT_EQ(cache.stats().bytes, 50u);
}

TEST(IndexCacheTest, ConcurrentGetOrBuildKeepsByteAccountingExact) {
  constexpr size_t kMaxBytes = 4 * 64;  // room for 4 of 8 distinct keys
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  IndexCache cache(kMaxBytes);
  std::atomic<int> total_builds{0};

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, &total_builds, t] {
      for (int i = 0; i < kIterations; ++i) {
        const uint32_t dataset = static_cast<uint32_t>((i * 7 + t) % 8);
        const auto artifact = cache.GetOrBuild(
            Key(dataset), [&total_builds, dataset]() -> IndexCache::ArtifactPtr {
              total_builds.fetch_add(1, std::memory_order_relaxed);
              return std::make_shared<TestArtifact>(
                  64, static_cast<int>(dataset));
            });
        ASSERT_EQ(Payload(artifact), static_cast<int>(dataset));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const IndexCache::Stats stats = cache.stats();
  // Bytes must equal exactly 64 per resident entry — no drift from the
  // concurrent insert/evict traffic — and never exceed the cap.
  EXPECT_EQ(stats.bytes, stats.entries * 64u);
  EXPECT_LE(stats.bytes, kMaxBytes);
  // Every miss built exactly once; hits + misses = every lookup.
  EXPECT_EQ(stats.misses, static_cast<uint64_t>(total_builds.load()));
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads) * kIterations);
  // Evictions happened (8 keys cannot fit in 4 slots) and are counted.
  EXPECT_GT(stats.evictions, 0u);
}

TEST(IndexCacheTest, CostAwareEvictionKeepsExpensiveBuildsOverRecentCheapOnes) {
  // Same bytes, different build cost. Pure LRU would evict the *expensive*
  // artifact (it is the least recently used); the cost-aware weight
  // (build_seconds / bytes) evicts the cheap one instead — it can be
  // rebuilt for free, the expensive one cannot.
  IndexCache cache(/*max_bytes=*/250);
  cache.GetOrBuild(Key(0), Build(100, 0, nullptr, /*build_seconds=*/1.0));
  cache.GetOrBuild(Key(1), Build(100, 1, nullptr, /*build_seconds=*/0.0));
  cache.GetOrBuild(Key(1), Build(100, -1));  // touch: key 0 is now LRU

  cache.GetOrBuild(Key(2), Build(100, 2, nullptr, /*build_seconds=*/0.5));
  EXPECT_EQ(cache.stats().evictions, 1u);

  int builds_0 = 0;
  int builds_1 = 0;
  // The expensive key 0 survived despite being least recently used...
  EXPECT_EQ(Payload(cache.GetOrBuild(Key(0), Build(100, -1, &builds_0))), 0);
  EXPECT_EQ(builds_0, 0);
  // ...and the zero-cost key 1 was the victim.
  EXPECT_EQ(Payload(cache.GetOrBuild(Key(1), Build(100, 11, &builds_1))), 11);
  EXPECT_EQ(builds_1, 1);
}

TEST(IndexCacheTest, HitsAccumulateCostSavedTelemetry) {
  IndexCache cache;
  cache.GetOrBuild(Key(0), Build(100, 0, nullptr, /*build_seconds=*/2.0));
  EXPECT_DOUBLE_EQ(cache.stats().cost_saved_seconds, 0.0);
  cache.GetOrBuild(Key(0), Build(100, -1));
  cache.GetOrBuild(Key(0), Build(100, -1));
  EXPECT_DOUBLE_EQ(cache.stats().cost_saved_seconds, 4.0);
}

TEST(IndexCacheTest, AdmissionRejectsFirstBuildAndAdmitsSecond) {
  IndexCache cache(IndexCacheOptions{0, /*admission=*/true, 16});
  int builds = 0;

  // First request: served, counted as a rejected admission, not retained.
  EXPECT_EQ(Payload(cache.GetOrBuild(Key(0), Build(50, 1, &builds))), 1);
  EXPECT_EQ(builds, 1);
  IndexCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.admission_rejects, 1u);

  // Second request: the ghost list remembers the key — build again, retain.
  EXPECT_EQ(Payload(cache.GetOrBuild(Key(0), Build(50, 2, &builds))), 2);
  EXPECT_EQ(builds, 2);
  stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.bytes, 50u);
  EXPECT_EQ(stats.admission_rejects, 1u);

  // Third request: a plain hit.
  EXPECT_EQ(Payload(cache.GetOrBuild(Key(0), Build(50, 3, &builds))), 2);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(IndexCacheTest, GhostListForgetsKeysBeyondItsCapacity) {
  IndexCache cache(IndexCacheOptions{0, /*admission=*/true,
                                     /*ghost_capacity=*/2});
  int builds = 0;
  cache.GetOrBuild(Key(0), Build(10, 0, &builds));  // ghost: [0]
  cache.GetOrBuild(Key(1), Build(10, 1, &builds));  // ghost: [1, 0]
  cache.GetOrBuild(Key(2), Build(10, 2, &builds));  // ghost: [2, 1] — 0 evicted
  EXPECT_EQ(cache.stats().entries, 0u);

  // Key 0 fell off the ghost list: its next request is a "first" again,
  // re-remembered at the expense of the oldest ghost (key 1).
  cache.GetOrBuild(Key(0), Build(10, 0, &builds));
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().admission_rejects, 4u);
  // Key 2 is still remembered and gets admitted.
  cache.GetOrBuild(Key(2), Build(10, 22, &builds));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(builds, 5);
}

TEST(IndexCacheTest, ClearResetsGhostListMemory) {
  IndexCache cache(IndexCacheOptions{0, /*admission=*/true, 16});
  int builds = 0;
  cache.GetOrBuild(Key(0), Build(10, 0, &builds));  // rejected, remembered
  cache.Clear();
  // The ghost memory is gone: this is a first sighting again.
  cache.GetOrBuild(Key(0), Build(10, 0, &builds));
  EXPECT_EQ(cache.stats().entries, 0u);
  // And the cycle restarts cleanly.
  cache.GetOrBuild(Key(0), Build(10, 0, &builds));
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(builds, 3);
}

TEST(IndexCacheTest, PreadmissionSkipsGhostProbationForExpensiveBuilds) {
  IndexCacheOptions options{0, /*admission=*/true, 16};
  options.preadmit_build_seconds = 0.1;
  IndexCache cache(options);
  int builds = 0;

  // Predicted cheap: the normal one-miss probation applies.
  cache.GetOrBuild(Key(0), Build(10, 1, &builds), Expect(0.01));
  IndexCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.admission_rejects, 1u);
  EXPECT_EQ(stats.admission_preadmits, 0u);

  // Predicted expensive: retained on first sight, counted as a pre-admit.
  EXPECT_EQ(Payload(cache.GetOrBuild(Key(1), Build(10, 2, &builds),
                                     Expect(0.5))),
            2);
  stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.admission_rejects, 1u);
  EXPECT_EQ(stats.admission_preadmits, 1u);

  // The pre-admitted key now hits without a second build.
  EXPECT_EQ(Payload(cache.GetOrBuild(Key(1), Build(10, 3, &builds))), 2);
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(IndexCacheTest, PreadmissionClearsGhostMemoryOfTheKey) {
  IndexCacheOptions options{0, /*admission=*/true, 16};
  options.preadmit_build_seconds = 0.1;
  IndexCache cache(options);
  int builds = 0;
  // First sighting with no prediction: rejected and remembered.
  cache.GetOrBuild(Key(0), Build(10, 1, &builds));
  // Now the cost model learned it is expensive: pre-admitted (not a
  // ghost-list admission), and the ghost entry is consumed.
  cache.GetOrBuild(Key(0), Build(10, 2, &builds), Expect(1.0));
  const IndexCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.admission_preadmits, 1u);
  EXPECT_EQ(builds, 2);
}

TEST(IndexCacheTest, PreadmissionDisabledByZeroThreshold) {
  IndexCacheOptions options{0, /*admission=*/true, 16};
  options.preadmit_build_seconds = 0;
  IndexCache cache(options);
  int builds = 0;
  cache.GetOrBuild(Key(0), Build(10, 1, &builds), Expect(100.0));
  const IndexCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.admission_rejects, 1u);
  EXPECT_EQ(stats.admission_preadmits, 0u);
}

TEST(IndexCacheTest, EnginePreadmitsArtifactsWithExpensiveFittedBuilds) {
  // Engine-level integration: with admission on and calibration evidence
  // that TOUCH builds are catastrophic to rebuild, the first build of a
  // touch tree is retained immediately (no one-miss probation).
  EngineOptions options;
  options.cache_admission = true;
  options.cache_preadmit_build_seconds = 0.25;
  // Force TOUCH plans regardless of workload shape.
  options.planner.nested_loop_max = 0;
  options.planner.plane_sweep_max = 0;
  options.planner.pbsm_skew_max = -1.0;
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset(
      "A", GenerateSynthetic(Distribution::kUniform, 3000, 71));
  const DatasetHandle b = engine.RegisterDataset(
      "B", GenerateSynthetic(Distribution::kUniform, 4000, 72));

  // Teach the calibrator that touch builds cost ~1s at this size: rate =
  // build/objects ≈ 1.4e-4 s/object, so 7000 objects predict ~1s >> 0.25.
  for (int i = 0; i < 3; ++i) {
    PlanOutcome outcome;
    outcome.family = "touch";
    outcome.objects = 7000;
    outcome.estimated_results = 1000;
    outcome.build_seconds = 1.0;
    outcome.total_seconds = 1.5;
    engine.feedback().Record(outcome);
  }

  CountingCollector out;
  const JoinResult result = engine.Execute({a, b, 2.0f}, out);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_EQ(result.plan.algorithm, "touch");
  const IndexCache::Stats stats = engine.cache_stats();
  EXPECT_EQ(stats.admission_preadmits, 1u);
  EXPECT_EQ(stats.admission_rejects, 0u);
  EXPECT_EQ(stats.entries, 1u);

  // And the next identical request is a plain hit — no probation rebuild.
  CountingCollector out2;
  const JoinResult warm = engine.Execute({a, b, 2.0f}, out2);
  EXPECT_TRUE(warm.index_cache_hit);
}

TEST(IndexCacheTest, ClearDropsEverythingWithoutCountingEvictions) {
  IndexCache cache(/*max_bytes=*/1000);
  cache.GetOrBuild(Key(0), Build(100, 0));
  cache.GetOrBuild(Key(1), Build(100, 1));
  cache.Clear();
  const IndexCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  EXPECT_EQ(stats.evictions, 0u);
  // Lookups after Clear rebuild cleanly.
  EXPECT_EQ(Payload(cache.GetOrBuild(Key(0), Build(100, 9))), 9);
}

}  // namespace
}  // namespace touch
