#include "index/hilbert.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <numeric>
#include <set>

#include "datagen/distributions.h"
#include "index/rtree.h"
#include "test_util.h"
#include "util/rng.h"

namespace touch {
namespace {

// --- Curve properties -------------------------------------------------------

// The order-k 3D Hilbert curve visits each of the 8^k lattice cells exactly
// once (bijectivity) and consecutive indices are face-adjacent cells (unit
// steps). These two properties are the definition of the curve; exhaustively
// checked for small orders.
class HilbertCurveOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(HilbertCurveOrderTest, VisitsEveryCellExactlyOnce) {
  const int order = GetParam();
  const uint64_t cells = uint64_t{1} << (3 * order);
  std::set<std::array<uint32_t, 3>> seen;
  for (uint64_t d = 0; d < cells; ++d) {
    const auto p = HilbertPoint(d, order);
    EXPECT_LT(p[0], uint32_t{1} << order);
    EXPECT_LT(p[1], uint32_t{1} << order);
    EXPECT_LT(p[2], uint32_t{1} << order);
    EXPECT_TRUE(seen.insert(p).second) << "cell visited twice at d=" << d;
  }
  EXPECT_EQ(seen.size(), cells);
}

TEST_P(HilbertCurveOrderTest, ConsecutiveIndicesAreFaceAdjacent) {
  const int order = GetParam();
  const uint64_t cells = uint64_t{1} << (3 * order);
  auto prev = HilbertPoint(0, order);
  for (uint64_t d = 1; d < cells; ++d) {
    const auto p = HilbertPoint(d, order);
    int manhattan = 0;
    for (int i = 0; i < 3; ++i) {
      manhattan += std::abs(static_cast<int>(p[i]) - static_cast<int>(prev[i]));
    }
    ASSERT_EQ(manhattan, 1) << "non-unit step at d=" << d;
    prev = p;
  }
}

TEST_P(HilbertCurveOrderTest, IndexAndPointAreInverses) {
  const int order = GetParam();
  const uint64_t cells = uint64_t{1} << (3 * order);
  for (uint64_t d = 0; d < cells; ++d) {
    const auto p = HilbertPoint(d, order);
    EXPECT_EQ(HilbertIndex(p[0], p[1], p[2], order), d);
  }
}

INSTANTIATE_TEST_SUITE_P(SmallOrders, HilbertCurveOrderTest,
                         ::testing::Values(1, 2, 3, 4));

TEST(HilbertCurveTest, FullOrderRoundTripsRandomPoints) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const auto x = static_cast<uint32_t>(rng.NextU64() &
                                         ((uint32_t{1} << kHilbertOrder) - 1));
    const auto y = static_cast<uint32_t>(rng.NextU64() &
                                         ((uint32_t{1} << kHilbertOrder) - 1));
    const auto z = static_cast<uint32_t>(rng.NextU64() &
                                         ((uint32_t{1} << kHilbertOrder) - 1));
    const uint64_t d = HilbertIndex(x, y, z);
    const auto p = HilbertPoint(d);
    EXPECT_EQ(p[0], x);
    EXPECT_EQ(p[1], y);
    EXPECT_EQ(p[2], z);
  }
}

TEST(HilbertCurveTest, OriginMapsToZero) {
  EXPECT_EQ(HilbertIndex(0, 0, 0, 4), 0u);
  const auto p = HilbertPoint(0, 4);
  EXPECT_EQ(p, (std::array<uint32_t, 3>{0, 0, 0}));
}

TEST(HilbertCurveTest, WindowsAreMoreCompactThanRowMajorOrder) {
  // The locality property that makes Hilbert packing produce compact leaves:
  // a window of consecutive curve indices covers a cube-like region, whereas
  // a window of row-major indices covers an elongated slab. Measured as the
  // average bounding-box margin (sum of extents) of 64-cell windows.
  const int order = 4;
  const uint32_t n = 1u << order;
  const uint64_t cells = uint64_t{1} << (3 * order);
  constexpr uint64_t kWindow = 64;

  auto window_margin = [&](auto point_at) {
    double total = 0;
    uint64_t windows = 0;
    for (uint64_t begin = 0; begin + kWindow <= cells; begin += kWindow) {
      std::array<uint32_t, 3> lo = {n, n, n};
      std::array<uint32_t, 3> hi = {0, 0, 0};
      for (uint64_t d = begin; d < begin + kWindow; ++d) {
        const std::array<uint32_t, 3> p = point_at(d);
        for (int i = 0; i < 3; ++i) {
          lo[i] = std::min(lo[i], p[i]);
          hi[i] = std::max(hi[i], p[i]);
        }
      }
      for (int i = 0; i < 3; ++i) total += hi[i] - lo[i];
      ++windows;
    }
    return total / static_cast<double>(windows);
  };

  const double hilbert = window_margin(
      [&](uint64_t d) { return HilbertPoint(d, order); });
  const double rowmajor = window_margin([&](uint64_t d) {
    return std::array<uint32_t, 3>{static_cast<uint32_t>(d / (n * n)),
                                   static_cast<uint32_t>((d / n) % n),
                                   static_cast<uint32_t>(d % n)};
  });
  // A 64-cell Hilbert window is a 4x4x4 cube (margin 9); a 64-cell row-major
  // window is a 1x4x16 slab (margin 18).
  EXPECT_LT(hilbert, rowmajor * 0.75);
}

// --- HilbertCode over boxes --------------------------------------------------

TEST(HilbertCodeTest, OrdersCentersAlongTheCurve) {
  const Box space = MakeBox(0, 0, 0, 1000, 1000, 1000);
  // Two boxes at the same location get the same code.
  EXPECT_EQ(HilbertCode(CenteredBox(10, 20, 30), space),
            HilbertCode(CenteredBox(10, 20, 30, 0.1f), space));
  // Distinct corners of the space map to distinct codes.
  std::set<uint64_t> codes;
  for (const float x : {1.0f, 999.0f}) {
    for (const float y : {1.0f, 999.0f}) {
      for (const float z : {1.0f, 999.0f}) {
        codes.insert(HilbertCode(CenteredBox(x, y, z), space));
      }
    }
  }
  EXPECT_EQ(codes.size(), 8u);
}

TEST(HilbertCodeTest, DegenerateSpaceIsSafe) {
  const Box space = MakeBox(5, 5, 5, 5, 5, 5);  // zero extent
  EXPECT_EQ(HilbertCode(CenteredBox(5, 5, 5), space), 0u);
}

// --- HilbertPartition --------------------------------------------------------

TEST(HilbertPartitionTest, ProducesValidPermutationAndBucketSizes) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 1000, 3);
  const StrPartitioning part = HilbertPartition(boxes, 64);
  ASSERT_EQ(part.order.size(), boxes.size());
  std::vector<uint32_t> sorted = part.order;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  for (size_t b = 0; b < part.NumBuckets(); ++b) {
    EXPECT_LE(part.Bucket(b).size(), 64u);
    EXPECT_GT(part.Bucket(b).size(), 0u);
  }
  EXPECT_EQ(part.bucket_begin.back(), boxes.size());
}

TEST(HilbertPartitionTest, EmptyAndSingleInputs) {
  const StrPartitioning empty = HilbertPartition({}, 8);
  EXPECT_EQ(empty.NumBuckets(), 0u);
  const Dataset one = {CenteredBox(1, 2, 3)};
  const StrPartitioning single = HilbertPartition(one, 8);
  ASSERT_EQ(single.NumBuckets(), 1u);
  EXPECT_EQ(single.Bucket(0).size(), 1u);
}

TEST(HilbertPartitionTest, IsDeterministic) {
  const Dataset boxes = GenerateSynthetic(Distribution::kClustered, 500, 11);
  const StrPartitioning p1 = HilbertPartition(boxes, 32);
  const StrPartitioning p2 = HilbertPartition(boxes, 32);
  EXPECT_EQ(p1.order, p2.order);
  EXPECT_EQ(p1.bucket_begin, p2.bucket_begin);
}

TEST(HilbertPartitionTest, BucketsAreSpatiallyCompact) {
  // Hilbert buckets over uniform data should have far smaller total volume
  // than buckets formed from the unsorted input order.
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 4000, 17);
  constexpr size_t kBucket = 64;
  const StrPartitioning hilbert = HilbertPartition(boxes, kBucket);
  double hilbert_volume = 0;
  for (size_t b = 0; b < hilbert.NumBuckets(); ++b) {
    hilbert_volume += BucketMbr(boxes, hilbert.Bucket(b)).Volume();
  }
  double unsorted_volume = 0;
  std::vector<uint32_t> ids(boxes.size());
  std::iota(ids.begin(), ids.end(), 0u);
  for (size_t begin = 0; begin < ids.size(); begin += kBucket) {
    const size_t count = std::min(kBucket, ids.size() - begin);
    unsorted_volume +=
        BucketMbr(boxes, std::span<const uint32_t>(ids).subspan(begin, count))
            .Volume();
  }
  EXPECT_LT(hilbert_volume, unsorted_volume / 10);
}

// --- Hilbert-bulk-loaded R-tree ---------------------------------------------

class HilbertRTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    boxes_ = GenerateSynthetic(Distribution::kGaussian, 2000, 23);
  }
  Dataset boxes_;
};

TEST_F(HilbertRTreeTest, InvariantsHold) {
  const RTree tree(boxes_, 16, 4, BulkLoadMethod::kHilbert);
  EXPECT_EQ(tree.size(), boxes_.size());
  // Every node's MBR contains its children's MBRs / items.
  for (const RTree::Node& node : tree.nodes()) {
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
        EXPECT_TRUE(Contains(node.mbr, boxes_[tree.item_ids()[i]]));
      }
    } else {
      for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
        EXPECT_TRUE(
            Contains(node.mbr, tree.nodes()[tree.child_ids()[i]].mbr));
      }
    }
  }
  // Every item appears exactly once.
  std::vector<uint32_t> items(tree.item_ids().begin(), tree.item_ids().end());
  std::sort(items.begin(), items.end());
  for (uint32_t i = 0; i < items.size(); ++i) EXPECT_EQ(items[i], i);
}

TEST_F(HilbertRTreeTest, QueriesMatchBruteForce) {
  const RTree tree(boxes_, 16, 4, BulkLoadMethod::kHilbert);
  Rng rng(5);
  for (int q = 0; q < 50; ++q) {
    const Box query = CenteredBox(rng.NextFloat() * 1000.0f,
                                  rng.NextFloat() * 1000.0f,
                                  rng.NextFloat() * 1000.0f, 30.0f);
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < boxes_.size(); ++i) {
      if (Intersects(boxes_[i], query)) expected.push_back(i);
    }
    std::vector<uint32_t> got;
    JoinStats stats;
    tree.Query(boxes_, query, [&](uint32_t id) { got.push_back(id); }, &stats);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

TEST_F(HilbertRTreeTest, LeafVolumeComparableToStr) {
  // Hilbert and STR pack comparably on non-extreme data (the paper's claim);
  // allow Hilbert up to 3x STR leaf volume but no more.
  auto leaf_volume = [&](BulkLoadMethod method) {
    const RTree tree(boxes_, 16, 4, method);
    double volume = 0;
    for (const RTree::Node& node : tree.nodes()) {
      if (node.IsLeaf()) volume += node.mbr.Volume();
    }
    return volume;
  };
  const double str = leaf_volume(BulkLoadMethod::kStr);
  const double hilbert = leaf_volume(BulkLoadMethod::kHilbert);
  EXPECT_LT(hilbert, str * 3.0);
  EXPECT_GT(hilbert, 0.0);
}

}  // namespace
}  // namespace touch
