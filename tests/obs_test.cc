// Unit tests for the observability layer: tracer span trees and buffer
// bounds, histogram percentile math, and both export formats (Chrome trace
// JSON, Prometheus text exposition).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace touch {
namespace {

std::map<std::string, SpanRecord> ByName(const Tracer& tracer) {
  std::map<std::string, SpanRecord> by_name;
  for (const SpanRecord& record : tracer.Snapshot()) {
    by_name[record.name] = record;
  }
  return by_name;
}

TEST(TracerTest, SpanScopeNestingBuildsAParentChildTree) {
  Tracer tracer;
  const uint64_t trace_id = tracer.NewTraceId();
  {
    SpanScope root(TraceContext{&tracer, trace_id, 0}, "root");
    // The inner scope is ambient: it finds `root` via CurrentTraceContext.
    SpanScope child("child");
    child.AddAttr("k", "v");
  }
  const auto spans = ByName(tracer);
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord& root = spans.at("root");
  const SpanRecord& child = spans.at("child");
  EXPECT_EQ(root.trace_id, trace_id);
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(child.trace_id, trace_id);
  EXPECT_EQ(child.parent_id, root.span_id);
  ASSERT_EQ(child.attrs.size(), 1u);
  EXPECT_EQ(child.attrs[0].first, "k");
  EXPECT_EQ(child.attrs[0].second, "v");
}

TEST(TracerTest, AmbientContextIsRestoredWhenAScopeEnds) {
  Tracer tracer;
  SpanScope outer(TraceContext{&tracer, tracer.NewTraceId(), 0}, "outer");
  {
    SpanScope inner("inner");
    EXPECT_EQ(CurrentTraceContext().span_id, inner.context().span_id);
  }
  EXPECT_EQ(CurrentTraceContext().span_id, outer.context().span_id);
  outer.End();
  EXPECT_FALSE(CurrentTraceContext().active());
  outer.End();  // idempotent: a second End must not double-record
  EXPECT_EQ(tracer.span_count(), 2u);
}

TEST(TracerTest, InactiveScopesRecordNothing) {
  SpanScope no_ambient("orphan");  // no ambient context on this thread
  EXPECT_FALSE(no_ambient.active());
  SpanScope default_constructed;
  EXPECT_FALSE(default_constructed.active());
  no_ambient.AddAttr("k", "v");  // must not crash
}

TEST(TracerTest, ContextHandoffParentsSpansAcrossThreads) {
  Tracer tracer;
  SpanScope root(TraceContext{&tracer, tracer.NewTraceId(), 0}, "root");
  // A spawned thread has no ambient context — its kernel-style spans no-op
  // unless the parent context is handed over explicitly.
  const TraceContext handoff = root.context();
  std::thread worker([&tracer, handoff] {
    SpanScope ambient("should-not-record");
    EXPECT_FALSE(ambient.active());
    SpanScope explicit_child(handoff, "worker-span");
    EXPECT_TRUE(explicit_child.active());
  });
  worker.join();
  root.End();
  const auto spans = ByName(tracer);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans.at("worker-span").parent_id, spans.at("root").span_id);
  EXPECT_NE(spans.at("worker-span").thread, spans.at("root").thread);
}

TEST(TracerTest, FullBufferDropsNewRecordsAndCountsThem) {
  TracerOptions options;
  options.buffer_capacity = 8;
  options.buffers = 1;
  Tracer tracer(options);
  for (int i = 0; i < 100; ++i) {
    SpanRecord record;
    record.name = "span-" + std::to_string(i);
    tracer.Record(std::move(record));
  }
  EXPECT_EQ(tracer.span_count(), 8u);
  EXPECT_EQ(tracer.drops(), 92u);
  // Overflow drops the NEW record: the first 8 (roots, early phases) stay.
  const std::vector<SpanRecord> spans = tracer.Snapshot();
  ASSERT_EQ(spans.size(), 8u);
  for (const SpanRecord& record : spans) {
    EXPECT_LT(record.name, std::string("span-8"));
  }
  tracer.Clear();
  EXPECT_EQ(tracer.span_count(), 0u);
  EXPECT_EQ(tracer.drops(), 0u);
}

TEST(TracerTest, ConcurrentRecordingFromManyThreadsLosesNothing) {
  Tracer tracer;  // default: 16 buffers x 8192 slots, plenty for 4 x 500
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        SpanRecord record;
        record.span_id = static_cast<uint64_t>(t) * kPerThread + i + 1;
        record.name = "s";
        tracer.Record(std::move(record));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(tracer.span_count(), size_t{kThreads} * kPerThread);
  EXPECT_EQ(tracer.drops(), 0u);
}

TEST(TracerTest, ChromeExportIsValidTraceEventJson) {
  Tracer tracer;
  const uint64_t trace_id = tracer.NewTraceId();
  {
    SpanScope root(TraceContext{&tracer, trace_id, 0}, "root");
    SpanScope child("needs \"escaping\"\n");
    child.AddAttr("algorithm", "touch");
  }
  tracer.RecordInstant(trace_id, 0, "marker");
  std::ostringstream out;
  tracer.ExportChromeTrace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // complete spans
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);  // the instant
  EXPECT_NE(json.find("\"algorithm\":\"touch\""), std::string::npos);
  // Quotes and newlines in names must come out escaped, never raw.
  EXPECT_NE(json.find("needs \\\"escaping\\\"\\n"), std::string::npos);
  EXPECT_EQ(json.find("needs \"escaping\""), std::string::npos);
  EXPECT_NE(json.find("\"trace_id\":\"" + std::to_string(trace_id) + "\""),
            std::string::npos);
  // No drops => no tracer-drops marker.
  EXPECT_EQ(json.find("tracer-drops"), std::string::npos);
}

TEST(TracerTest, ChromeExportZeroPadsFractionalMicroseconds) {
  Tracer tracer;
  SpanRecord record;
  record.start_ns = 1'000'005;  // 1000.005 us — naive % printing says "5"
  record.duration_ns = 2'000'050;
  record.name = "pad";
  tracer.Record(std::move(record));
  std::ostringstream out;
  tracer.ExportChromeTrace(out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"ts\":1000.005"), std::string::npos) << json;
  EXPECT_NE(json.find("\"dur\":2000.050"), std::string::npos) << json;
}

TEST(TracerTest, DroppedRecordsAppearAsATrailerEvent) {
  TracerOptions options;
  options.buffer_capacity = 1;
  options.buffers = 1;
  Tracer tracer(options);
  for (int i = 0; i < 3; ++i) {
    SpanRecord record;
    record.name = "s";
    tracer.Record(std::move(record));
  }
  std::ostringstream out;
  tracer.ExportChromeTrace(out);
  EXPECT_NE(out.str().find("tracer-drops"), std::string::npos);
  EXPECT_NE(out.str().find("\"dropped\":\"2\""), std::string::npos);
}

TEST(HistogramTest, BucketBoundsArePowersOfTwoMicroseconds) {
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(0), 1e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(1), 2e-6);
  EXPECT_DOUBLE_EQ(Histogram::BucketBound(10), 1024e-6);
}

TEST(HistogramTest, PercentilesLandOnCoveringBucketBounds) {
  Histogram histogram;
  // 90 fast observations in the 1ms bucket, 10 slow in the ~1s bucket.
  // 1ms < 1024us? 1e-3 <= BucketBound(10) = 1.024e-3, so bucket 10.
  for (int i = 0; i < 90; ++i) histogram.Observe(1e-3);
  for (int i = 0; i < 10; ++i) histogram.Observe(1.0);
  EXPECT_EQ(histogram.Count(), 100u);
  EXPECT_NEAR(histogram.Sum(), 90 * 1e-3 + 10 * 1.0, 1e-9);
  const double fast_bound = histogram.Percentile(0.50);
  const double slow_bound = histogram.Percentile(0.99);
  EXPECT_GE(fast_bound, 1e-3);
  EXPECT_LT(fast_bound, 2.1e-3);  // within one power-of-two bucket
  EXPECT_GE(slow_bound, 1.0);
  EXPECT_LT(slow_bound, 2.2);
  // p90 is still in the fast bucket (target rank 90 of 100).
  EXPECT_EQ(histogram.Percentile(0.90), fast_bound);
  EXPECT_EQ(Histogram().Percentile(0.5), 0.0);  // empty histogram
}

TEST(HistogramTest, OverflowObservationsClampToTheLargestFiniteBound) {
  Histogram histogram;
  histogram.Observe(1e9);  // ~31 years: beyond every finite bucket
  EXPECT_EQ(histogram.Count(), 1u);
  EXPECT_DOUBLE_EQ(histogram.Percentile(0.5),
                   Histogram::BucketBound(Histogram::kFiniteBuckets - 1));
}

TEST(MetricsRegistryTest, CountersGaugesAndReferencesAreStable) {
  MetricsRegistry registry;
  Counter& requests = registry.counter("requests_total");
  requests.Increment();
  requests.Increment(4);
  // Same name returns the same object.
  EXPECT_EQ(&registry.counter("requests_total"), &requests);
  EXPECT_EQ(requests.Value(), 5u);
  Gauge& depth = registry.gauge("queue_depth");
  depth.Set(3.0);
  depth.Add(-1.0);
  EXPECT_DOUBLE_EQ(depth.Value(), 2.0);
}

TEST(MetricsRegistryTest, PrometheusExportGolden) {
  MetricsRegistry registry;
  registry.counter("touch_requests_total{status=\"ok\"}").Increment(3);
  registry.counter("touch_requests_total{status=\"cancelled\"}").Increment();
  registry.gauge("touch_queue_depth").Set(2);
  std::ostringstream out;
  registry.ExportPrometheus(out);
  const std::string text = out.str();
  // One # TYPE line per family, even with two labeled series. Counters are
  // emitted before gauges; series within a family sort by label.
  EXPECT_EQ(text, "# TYPE touch_requests_total counter\n"
                  "touch_requests_total{status=\"cancelled\"} 1\n"
                  "touch_requests_total{status=\"ok\"} 3\n"
                  "# TYPE touch_queue_depth gauge\n"
                  "touch_queue_depth 2\n");
  EXPECT_EQ(registry.FamilyCount(), 2u);
}

TEST(MetricsRegistryTest, HistogramExportsNativePrometheusForm) {
  MetricsRegistry registry;
  registry.histogram("touch_latency_seconds").Observe(0.5e-6);  // bucket 0
  registry.histogram("touch_latency_seconds").Observe(3e-6);    // bucket 2
  std::ostringstream out;
  registry.ExportPrometheus(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE touch_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("touch_latency_seconds_bucket{le=\"1e-06\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("touch_latency_seconds_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("touch_latency_seconds_count 2"), std::string::npos);
  // Buckets past the last occupied one are elided, not emitted 40 times.
  EXPECT_EQ(text.find("le=\"8e-06\""), std::string::npos);
}

TEST(MetricsRegistryTest, ProvidersAreSampledAtExportAndRemovable) {
  MetricsRegistry registry;
  double live_value = 7.0;
  registry.SetProvider("touch_cache_entries", MetricType::kGauge,
                       [&live_value] { return live_value; });
  std::ostringstream first;
  registry.ExportPrometheus(first);
  EXPECT_NE(first.str().find("touch_cache_entries 7"), std::string::npos);
  live_value = 9.0;  // export samples the callback, not a stored copy
  std::ostringstream second;
  registry.ExportPrometheus(second);
  EXPECT_NE(second.str().find("touch_cache_entries 9"), std::string::npos);
  registry.RemoveProvidersWithPrefix("touch_cache_");
  std::ostringstream third;
  registry.ExportPrometheus(third);
  EXPECT_EQ(third.str().find("touch_cache_entries"), std::string::npos);
  EXPECT_EQ(registry.FamilyCount(), 0u);
}

}  // namespace
}  // namespace touch
