#include "core/partitioned.h"

#include <gtest/gtest.h>

#include "core/factory.h"
#include "datagen/distributions.h"
#include "test_util.h"

namespace touch {
namespace {

std::function<std::unique_ptr<SpatialJoinAlgorithm>()> TouchFactory() {
  return [] { return MakeAlgorithm("touch"); };
}

std::vector<IdPair> RunPartitioned(const Dataset& a, const Dataset& b,
                                   int partitions, int threads,
                                   JoinStats* stats_out = nullptr) {
  PartitionedOptions opt;
  opt.partitions = partitions;
  opt.threads = threads;
  VectorCollector out;
  const JoinStats stats = PartitionedJoin(TouchFactory(), a, b, opt, out);
  if (stats_out != nullptr) *stats_out = stats;
  std::vector<IdPair> pairs = out.pairs();
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

class PartitionedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = GenerateSynthetic(Distribution::kClustered, 600, 60);
    for (Box& box : a_) box = box.Enlarged(12.0f);
    b_ = GenerateSynthetic(Distribution::kClustered, 900, 61);
  }
  Dataset a_;
  Dataset b_;
};

TEST_F(PartitionedTest, MatchesOracleAcrossPartitionCounts) {
  const auto oracle = OracleJoin(a_, b_);
  for (const int partitions : {1, 2, 7, 16, 100}) {
    EXPECT_EQ(RunPartitioned(a_, b_, partitions, 1), oracle)
        << "partitions=" << partitions;
  }
}

TEST_F(PartitionedTest, BoundarySpanningPairsAreNotLostOrDuplicated) {
  // Boxes deliberately straddling slab boundaries: the halo must keep every
  // cross-boundary pair and the reference-point rule must keep exactly one
  // copy of it.
  Dataset a;
  Dataset b;
  for (int i = 0; i < 40; ++i) {
    // Long boxes along x (the slab axis for this extent).
    a.push_back(MakeBox(static_cast<float>(i) * 25.0f, 0, 0,
                        static_cast<float>(i) * 25.0f + 60.0f, 10, 10));
    b.push_back(MakeBox(static_cast<float>(i) * 25.0f + 10.0f, 5, 5,
                        static_cast<float>(i) * 25.0f + 70.0f, 15, 15));
  }
  const auto oracle = OracleJoin(a, b);
  for (const int partitions : {3, 8, 33}) {
    const auto pairs = RunPartitioned(a, b, partitions, 1);
    EXPECT_EQ(pairs, oracle) << "partitions=" << partitions;
    EXPECT_TRUE(HasNoDuplicates(pairs));
  }
}

TEST_F(PartitionedTest, MultiThreadedMatchesSequential) {
  const auto sequential = RunPartitioned(a_, b_, 16, 1);
  for (const int threads : {2, 4, 8}) {
    EXPECT_EQ(RunPartitioned(a_, b_, 16, threads), sequential)
        << "threads=" << threads;
  }
}

TEST_F(PartitionedTest, WorksWithEveryWrappedAlgorithm) {
  const auto oracle = OracleJoin(a_, b_);
  for (const std::string name : {"ps", "pbsm-20", "s3", "rtree", "seeded",
                                 "octree", "rplus", "nbps-10", "touch"}) {
    PartitionedOptions opt;
    opt.partitions = 6;
    VectorCollector out;
    PartitionedJoin([&] { return MakeAlgorithm(name); }, a_, b_, opt, out);
    auto pairs = out.pairs();
    std::sort(pairs.begin(), pairs.end());
    EXPECT_EQ(pairs, oracle) << name;
  }
}

TEST_F(PartitionedTest, CountersAggregateAcrossSlabs) {
  JoinStats mono_stats;
  TouchJoin mono;
  VectorCollector mono_out;
  mono_stats = mono.Join(a_, b_, mono_out);

  JoinStats part_stats;
  RunPartitioned(a_, b_, 8, 1, &part_stats);
  EXPECT_EQ(part_stats.results, mono_out.pairs().size());
  EXPECT_GT(part_stats.comparisons, 0u);
}

TEST_F(PartitionedTest, SinglePartitionEqualsPlainJoin) {
  JoinStats mono_stats;
  TouchJoin mono;
  VectorCollector mono_out;
  mono_stats = mono.Join(a_, b_, mono_out);

  JoinStats stats;
  const auto pairs = RunPartitioned(a_, b_, 1, 1, &stats);
  EXPECT_EQ(pairs, OracleJoin(a_, b_));
  // One slab means the wrapped algorithm sees the whole input: filtering
  // behaviour must match the monolithic run exactly.
  EXPECT_EQ(stats.filtered, mono_stats.filtered);
  EXPECT_EQ(stats.results, mono_stats.results);
}

TEST_F(PartitionedTest, EmptyInputsAreSafe) {
  EXPECT_TRUE(RunPartitioned({}, b_, 4, 2).empty());
  EXPECT_TRUE(RunPartitioned(a_, {}, 4, 2).empty());
}

TEST(PartitionedDistanceTest, MatchesMonolithicDistanceJoin) {
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 500, 62);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 800, 63);
  constexpr float kEpsilon = 18.0f;

  TouchJoin mono;
  VectorCollector mono_out;
  DistanceJoin(mono, a, b, kEpsilon, mono_out);
  auto expected = mono_out.pairs();
  std::sort(expected.begin(), expected.end());

  PartitionedOptions opt;
  opt.partitions = 10;
  opt.threads = 3;
  VectorCollector out;
  PartitionedDistanceJoin([] { return MakeAlgorithm("touch"); }, a, b,
                          kEpsilon, opt, out);
  auto pairs = out.pairs();
  std::sort(pairs.begin(), pairs.end());
  EXPECT_EQ(pairs, expected);
}

}  // namespace
}  // namespace touch
