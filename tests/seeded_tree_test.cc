#include "join/seeded_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "datagen/distributions.h"
#include "test_util.h"

namespace touch {
namespace {

class SeededTreeStructureTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = GenerateSynthetic(Distribution::kClustered, 800, 71);
    b_ = GenerateSynthetic(Distribution::kClustered, 1200, 72);
  }
  Dataset a_;
  Dataset b_;
};

// Walks the tree and checks MBR containment, level consistency, and that
// every B object sits in exactly one leaf.
void CheckTreeInvariants(const SeededTree& tree, const Dataset& boxes) {
  ASSERT_FALSE(tree.empty());
  std::vector<int> seen(boxes.size(), 0);
  std::function<void(uint32_t)> walk = [&](uint32_t id) {
    const SeededTree::Node& node = tree.nodes()[id];
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
        const uint32_t obj = tree.item_ids()[i];
        EXPECT_TRUE(Contains(node.mbr, boxes[obj]));
        ++seen[obj];
      }
      return;
    }
    for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
      const uint32_t child = tree.child_ids()[i];
      const SeededTree::Node& child_node = tree.nodes()[child];
      if (!child_node.mbr.IsEmpty()) {
        EXPECT_TRUE(Contains(node.mbr, child_node.mbr));
      }
      EXPECT_LT(child_node.level, node.level);
      walk(child);
    }
  };
  walk(tree.root());
  for (uint32_t obj = 0; obj < boxes.size(); ++obj) {
    EXPECT_EQ(seen[obj], 1) << "object " << obj;
  }
}

TEST_F(SeededTreeStructureTest, InvariantsAcrossSeedDepths) {
  const RTree seed(a_, 32, 4);
  for (const int seed_levels : {1, 2, 3, 5, 50}) {
    const SeededTree tree(seed, seed_levels, b_, 32, 4);
    CheckTreeInvariants(tree, b_);
    EXPECT_EQ(tree.size(), b_.size());
    EXPECT_GE(tree.slot_count(), 1u);
  }
}

TEST_F(SeededTreeStructureTest, DeeperSeedsMakeMoreSlots) {
  const RTree seed(a_, 32, 4);
  const SeededTree shallow(seed, 1, b_, 32, 4);
  const SeededTree deep(seed, 4, b_, 32, 4);
  EXPECT_EQ(shallow.slot_count(), 1u);
  EXPECT_GT(deep.slot_count(), shallow.slot_count());
}

TEST_F(SeededTreeStructureTest, EmptySeedStillIndexesEverything) {
  const RTree seed(Dataset{}, 32, 4);
  const SeededTree tree(seed, 3, b_, 32, 4);
  CheckTreeInvariants(tree, b_);
}

TEST_F(SeededTreeStructureTest, EmptyDatasetYieldsEmptyTree) {
  const RTree seed(a_, 32, 4);
  const SeededTree tree(seed, 3, {}, 32, 4);
  EXPECT_TRUE(tree.empty());
}

TEST_F(SeededTreeStructureTest, DisjointDataCreatesDeadSlots) {
  // B far away from A: everything routes to a handful of slots (least
  // enlargement still picks one), leaving other slots dead with empty MBRs.
  Dataset far_b;
  for (int i = 0; i < 100; ++i) {
    far_b.push_back(CenteredBox(5000.0f + static_cast<float>(i), 5000, 5000));
  }
  const RTree seed(a_, 32, 4);
  const SeededTree tree(seed, 4, far_b, 8, 4);
  CheckTreeInvariants(tree, far_b);
  size_t dead = 0;
  for (const SeededTree::Node& node : tree.nodes()) {
    if (node.IsLeaf() && node.count == 0) ++dead;
  }
  EXPECT_GT(dead, 0u);
}

// --- Join behaviour ----------------------------------------------------------

class SeededJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = GenerateSynthetic(Distribution::kGaussian, 700, 73);
    for (Box& box : a_) box = box.Enlarged(8.0f);
    b_ = GenerateSynthetic(Distribution::kGaussian, 1100, 74);
  }
  Dataset a_;
  Dataset b_;
};

TEST_F(SeededJoinTest, MatchesOracle) {
  SeededTreeJoin join;
  EXPECT_EQ(RunJoinSorted(join, a_, b_), OracleJoin(a_, b_));
}

TEST_F(SeededJoinTest, MatchesOracleAcrossConfigurations) {
  for (const int seed_levels : {1, 2, 6}) {
    for (const size_t fanout : {size_t{2}, size_t{8}}) {
      SeededTreeOptions opt;
      opt.seed_levels = seed_levels;
      opt.fanout = fanout;
      opt.leaf_capacity = 16;
      SeededTreeJoin join(opt);
      EXPECT_EQ(RunJoinSorted(join, a_, b_), OracleJoin(a_, b_))
          << "seed_levels=" << seed_levels << " fanout=" << fanout;
    }
  }
}

TEST_F(SeededJoinTest, NoDuplicateResults) {
  SeededTreeJoin join;
  VectorCollector out;
  join.Join(a_, b_, out);
  EXPECT_TRUE(HasNoDuplicates(out.pairs()));
}

TEST_F(SeededJoinTest, EmptyInputs) {
  SeededTreeJoin join;
  VectorCollector out;
  EXPECT_EQ(join.Join({}, b_, out).results, 0u);
  EXPECT_EQ(join.Join(a_, {}, out).results, 0u);
  EXPECT_TRUE(out.pairs().empty());
}

TEST_F(SeededJoinTest, StatsAreFilled) {
  SeededTreeJoin join;
  CountingCollector out;
  const JoinStats stats = join.Join(a_, b_, out);
  EXPECT_EQ(stats.results, out.count());
  EXPECT_GT(stats.comparisons, 0u);
  EXPECT_GT(stats.node_comparisons, 0u);
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_GE(stats.total_seconds, stats.build_seconds);
}

TEST_F(SeededJoinTest, SeedDepthDoesNotDegradeTraversal) {
  // The historical seeded tree beat *insertion-grown* R-trees by aligning
  // IB's boxes with IA's. Our growth phase bulk-packs each slot with STR, so
  // an unseeded (1-slot) tree is already well formed; what the seed must not
  // do is make the traversal meaningfully worse while it buys its alignment.
  const Dataset a = GenerateSynthetic(Distribution::kClustered, 2000, 75);
  const Dataset b = GenerateSynthetic(Distribution::kClustered, 4000, 76);

  SeededTreeOptions aligned;
  aligned.seed_levels = 6;
  SeededTreeOptions unaligned;
  unaligned.seed_levels = 1;

  CountingCollector out_a;
  CountingCollector out_u;
  SeededTreeJoin aligned_join(aligned);
  SeededTreeJoin unaligned_join(unaligned);
  const JoinStats stats_aligned = aligned_join.Join(a, b, out_a);
  const JoinStats stats_unaligned = unaligned_join.Join(a, b, out_u);
  EXPECT_EQ(out_a.count(), out_u.count());
  EXPECT_LT(stats_aligned.node_comparisons,
            2 * stats_unaligned.node_comparisons);
  EXPECT_LT(stats_aligned.comparisons, 2 * stats_unaligned.comparisons);
}

}  // namespace
}  // namespace touch
