#include "engine/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>

namespace touch {
namespace {

TEST(WorkerPoolTest, RunsEverySubmittedTask) {
  WorkerPool pool(4);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(WorkerPoolTest, CompletionNotificationRunsAfterItsTask) {
  WorkerPool pool(2);
  std::atomic<bool> task_ran{false};
  std::promise<bool> order;
  pool.Submit([&task_ran] { task_ran = true; },
              [&] { order.set_value(task_ran.load()); });
  // The notification fires per task — observable without WaitIdle.
  EXPECT_TRUE(order.get_future().get());
}

TEST(WorkerPoolTest, CompletionNotificationRunsWhenTheTaskThrows) {
  WorkerPool pool(1);
  std::promise<void> done;
  pool.Submit([]() -> void { throw std::runtime_error("task failed"); },
              [&done] { done.set_value(); });
  done.get_future().wait();  // hangs (and times out the test) if dropped
  pool.WaitIdle();           // in_flight_ bookkeeping survived the throw
}

TEST(WorkerPoolTest, EveryTaskGetsItsOwnNotification) {
  WorkerPool pool(4);
  constexpr int kTasks = 200;
  std::atomic<int> notified{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([] {},
                [&notified] { notified.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(notified.load(), kTasks);
}

TEST(WorkerPoolTest, ShouldRunFalseSkipsTheTaskButStillNotifies) {
  WorkerPool pool(1);
  std::atomic<bool> task_ran{false};
  std::promise<void> done;
  pool.Submit([&task_ran] { task_ran = true; },
              [&done] { done.set_value(); },
              [] { return false; });
  done.get_future().wait();
  EXPECT_FALSE(task_ran.load());
  pool.WaitIdle();  // in_flight_ bookkeeping covered the skipped task
}

TEST(WorkerPoolTest, ShouldRunIsConsultedOncePerTaskAtPopTime) {
  WorkerPool pool(2);
  constexpr int kTasks = 100;
  std::atomic<int> consulted{0};
  std::atomic<int> ran{0};
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
                nullptr,
                [&consulted, i] {
                  consulted.fetch_add(1, std::memory_order_relaxed);
                  return i % 2 == 0;  // every odd task is obsolete
                });
  }
  pool.WaitIdle();
  EXPECT_EQ(consulted.load(), kTasks);
  EXPECT_EQ(ran.load(), kTasks / 2);
}

TEST(WorkerPoolTest, DestructorDrainsPendingTasksAndNotifications) {
  std::atomic<int> ran{0};
  std::atomic<int> notified{0};
  {
    WorkerPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); },
                  [&notified] {
                    notified.fetch_add(1, std::memory_order_relaxed);
                  });
    }
  }  // destructor joins after the queue drained
  EXPECT_EQ(ran.load(), 50);
  EXPECT_EQ(notified.load(), 50);
}

// --- Introspection (the metrics providers' data source) ---------------------

TEST(WorkerPoolTest, QueueDepthAndBusyWorkersObserveASaturatedPool) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.busy_workers(), 0);

  std::promise<void> reached;
  std::promise<void> release;
  std::shared_future<void> release_future = release.get_future().share();
  pool.Submit([&reached, release_future] {
    reached.set_value();
    release_future.wait();
  });
  reached.get_future().wait();
  // The single worker is parked inside its task; everything behind it
  // queues deterministically.
  EXPECT_EQ(pool.busy_workers(), 1);
  for (int i = 0; i < 3; ++i) pool.Submit([] {});
  EXPECT_EQ(pool.queue_depth(), 3u);

  release.set_value();
  pool.WaitIdle();
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.busy_workers(), 0);
}

TEST(WorkerPoolTest, TasksCompletedCountsRunAndSkippedTasks) {
  WorkerPool pool(2);
  for (int i = 0; i < 40; ++i) pool.Submit([] {});
  // Skipped tasks (should_run false at pop) still count as completed: the
  // counter tracks queue throughput, not work performed.
  for (int i = 0; i < 10; ++i) {
    pool.Submit([] {}, nullptr, [] { return false; });
  }
  pool.WaitIdle();
  EXPECT_EQ(pool.tasks_completed(), 50u);
}

}  // namespace
}  // namespace touch
