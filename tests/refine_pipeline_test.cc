// End-to-end filter + refine pipeline tests: the TOUCH distance join on
// cylinder MBRs (the filter the paper evaluates) composed with the exact
// cylinder-distance refinement must find exactly the pairs a brute-force
// exact scan finds — the completeness guarantee a downstream neuroscience
// user actually relies on.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/touch.h"
#include "datagen/neuro.h"
#include "test_util.h"

namespace touch {
namespace {

using PairSet = std::set<IdPair>;

PairSet BruteForceSynapses(const std::vector<Cylinder>& axons,
                           const std::vector<Cylinder>& dendrites,
                           double epsilon) {
  PairSet result;
  for (uint32_t i = 0; i < axons.size(); ++i) {
    for (uint32_t j = 0; j < dendrites.size(); ++j) {
      if (CylindersWithinDistance(axons[i], dendrites[j], epsilon)) {
        result.insert({i, j});
      }
    }
  }
  return result;
}

PairSet FilterRefineSynapses(const std::vector<Cylinder>& axons,
                             const std::vector<Cylinder>& dendrites,
                             float epsilon) {
  const Dataset axon_boxes = CylinderMbrs(axons);
  const Dataset dendrite_boxes = CylinderMbrs(dendrites);
  TouchJoin join;
  VectorCollector candidates;
  DistanceJoin(join, axon_boxes, dendrite_boxes, epsilon, candidates);
  PairSet result;
  for (const auto& [i, j] : candidates.pairs()) {
    if (CylindersWithinDistance(axons[i], dendrites[j], epsilon)) {
      result.insert({i, j});
    }
  }
  return result;
}

class RefinePipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    NeuroOptions opt;
    opt.neurons = 8;
    opt.segments_per_branch = 20;
    model_ = GenerateNeuroscience(opt, 99);
  }
  NeuroModel model_;
};

TEST_F(RefinePipelineTest, FilterRefineEqualsBruteForce) {
  for (const float epsilon : {0.5f, 1.0f, 2.0f}) {
    EXPECT_EQ(FilterRefineSynapses(model_.axons, model_.dendrites, epsilon),
              BruteForceSynapses(model_.axons, model_.dendrites, epsilon))
        << "epsilon=" << epsilon;
  }
}

TEST_F(RefinePipelineTest, FilterIsNeverLossy) {
  // Every brute-force pair must appear among the filter's candidates: the
  // MBR distance lower-bounds the exact distance.
  constexpr float kEpsilon = 1.5f;
  const Dataset axon_boxes = CylinderMbrs(model_.axons);
  const Dataset dendrite_boxes = CylinderMbrs(model_.dendrites);
  TouchJoin join;
  VectorCollector candidates;
  DistanceJoin(join, axon_boxes, dendrite_boxes, kEpsilon, candidates);
  PairSet candidate_set(candidates.pairs().begin(), candidates.pairs().end());
  for (const IdPair& pair :
       BruteForceSynapses(model_.axons, model_.dendrites, kEpsilon)) {
    EXPECT_TRUE(candidate_set.count(pair))
        << "exact pair (" << pair.first << "," << pair.second
        << ") missing from filter output";
  }
}

TEST_F(RefinePipelineTest, RefinementOnlyRemovesPairs) {
  constexpr float kEpsilon = 1.0f;
  const Dataset axon_boxes = CylinderMbrs(model_.axons);
  const Dataset dendrite_boxes = CylinderMbrs(model_.dendrites);
  TouchJoin join;
  VectorCollector candidates;
  DistanceJoin(join, axon_boxes, dendrite_boxes, kEpsilon, candidates);
  const PairSet refined =
      FilterRefineSynapses(model_.axons, model_.dendrites, kEpsilon);
  EXPECT_LE(refined.size(), candidates.pairs().size());
}

TEST(RefineScalingTest, LargerEpsilonFindsMoreSynapses) {
  NeuroOptions opt;
  opt.neurons = 12;
  opt.segments_per_branch = 15;
  const NeuroModel model = GenerateNeuroscience(opt, 7);
  const PairSet narrow = FilterRefineSynapses(model.axons, model.dendrites, 0.5f);
  const PairSet wide = FilterRefineSynapses(model.axons, model.dendrites, 2.0f);
  EXPECT_GE(wide.size(), narrow.size());
  EXPECT_TRUE(std::includes(wide.begin(), wide.end(), narrow.begin(),
                            narrow.end()));
}

}  // namespace
}  // namespace touch
