// Concurrency stress for the dynamic-dataset subsystem, meant to run under
// the TSan/ASan CI legs: mutator threads race standing continuous joins,
// one-shot queries and index-cache lookups. The assertions are
//
//   - no lost or phantom deltas: after every thread joins, the continuous
//     sink's folded pair set equals a brute-force re-join of the final
//     geometry (which the test mirrors client-side),
//   - delta-stream sanity is checked *inside* the sink (a kRemoved for a
//     pair that is not present, or a duplicate kAdded, trips a flag),
//   - no use-after-invalidate: queries keep executing against pinned
//     snapshots and versioned cache artifacts while mutations invalidate
//     them — TSan/ASan turn any violation into a hard failure.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <utility>
#include <vector>

#include "datagen/distributions.h"
#include "engine/engine.h"
#include "engine/sharded_engine.h"
#include "test_util.h"
#include "util/rng.h"
#include "util/thread_annotations.h"

namespace touch {
namespace {

Box SmallBox(Rng& rng, float space) {
  const Vec3 center(rng.NextFloat() * space, rng.NextFloat() * space,
                    rng.NextFloat() * space);
  const Vec3 half(rng.NextFloat() * 3.0f, rng.NextFloat() * 3.0f,
                  rng.NextFloat() * 3.0f);
  return Box(center - half, center + half);
}

/// Mutation generator that mirrors the catalog's state client-side
/// (id -> box of every live object), so the test can brute-force the
/// expected final join without reading engine internals.
class MirroredFuzzer {
 public:
  MirroredFuzzer(uint64_t seed, const Dataset& initial, float space)
      : rng_(seed), space_(space) {
    for (uint32_t i = 0; i < initial.size(); ++i) live_[i] = initial[i];
    next_id_ = static_cast<uint32_t>(initial.size());
  }

  std::vector<Mutation> NextBatch(int ops) {
    std::vector<Mutation> batch;
    for (int k = 0; k < ops; ++k) {
      const uint64_t dice = rng_.UniformInt(10);
      if (live_.empty() || dice < 4) {
        const Box box = SmallBox(rng_, space_);
        batch.push_back(Mutation{MutationKind::kInsert, kInvalidObjectId, box});
        live_[next_id_++] = box;
      } else if (dice < 7) {
        const uint32_t id = PickLive();
        batch.push_back(Mutation{MutationKind::kDelete, id, Box()});
        live_.erase(id);
      } else {
        const uint32_t id = PickLive();
        const Box box = SmallBox(rng_, space_);
        batch.push_back(Mutation{MutationKind::kUpdate, id, box});
        live_[id] = box;
      }
    }
    return batch;
  }

  const std::map<uint32_t, Box>& live() const { return live_; }

 private:
  uint32_t PickLive() {
    auto it = live_.begin();
    std::advance(it, rng_.UniformInt(live_.size()));
    return it->first;
  }

  Rng rng_;
  float space_;
  std::map<uint32_t, Box> live_;
  uint32_t next_id_ = 0;
};

/// Folded view of a delta stream, shared between the sink and the test.
/// The engine owns and frees the sink at delivery, so the test keeps this
/// state behind a shared_ptr and never reads through the sink pointer.
/// Guarded throughout: EmitDelta is serialized per request by the engine,
/// but OnComplete (from a racing Cancel) and the test's reads are on other
/// threads.
struct StressState {
  mutable Mutex mutex;
  std::set<IdPair> pairs GUARDED_BY(mutex);
  std::atomic<bool> corrupt{false};
  std::atomic<int> completions{0};

  std::set<IdPair> PairsCopy() const {
    MutexLock lock(mutex);
    return pairs;
  }
};

class StressSink : public ResultSink {
 public:
  explicit StressSink(std::shared_ptr<StressState> state)
      : state_(std::move(state)) {}

  void Emit(uint32_t, uint32_t) override {}

  void EmitDelta(DeltaKind kind, uint32_t a_id, uint32_t b_id) override {
    MutexLock lock(state_->mutex);
    const IdPair pair(a_id, b_id);
    if (kind == DeltaKind::kAdded) {
      if (!state_->pairs.insert(pair).second) state_->corrupt.store(true);
    } else {
      if (state_->pairs.erase(pair) == 0) state_->corrupt.store(true);
    }
  }

  void OnComplete(const JoinResult&) override {
    state_->completions.fetch_add(1, std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<StressState> state_;
};

std::set<IdPair> BruteForce(const std::map<uint32_t, Box>& a, const Dataset& b,
                            float epsilon) {
  std::set<IdPair> pairs;
  for (const auto& [id, box] : a) {
    const Box probe = box.Enlarged(epsilon);
    for (uint32_t j = 0; j < b.size(); ++j) {
      if (Intersects(probe, b[j])) pairs.emplace(id, j);
    }
  }
  return pairs;
}

TEST(DynamicStressTest, MutatorsRaceStandingQueriesWithoutLosingDeltas) {
  QueryEngine engine;
  const Dataset initial_a = GenerateSynthetic(Distribution::kUniform, 400, 71);
  const Dataset initial_b = GenerateSynthetic(Distribution::kUniform, 400, 72);
  const DatasetHandle a = engine.RegisterDataset("A", initial_a);
  const DatasetHandle b = engine.RegisterDataset("B", initial_b);
  const float epsilon = 20.0f;

  auto fold = std::make_shared<StressState>();
  JoinRequest continuous{a, b, epsilon};
  continuous.continuous = true;
  RequestHandle standing =
      engine.Submit(continuous, std::make_unique<StressSink>(fold));
  ASSERT_TRUE(standing.valid());

  // One mutator owns dataset A (batches serialize inside the engine; a
  // single mutator keeps the client-side mirror exact). Query threads
  // hammer one-shot joins — same request, so they also race each other on
  // the same cache keys while invalidation is deleting them.
  constexpr int kBatches = 60;
  std::thread mutator([&] {
    MirroredFuzzer fuzzer(/*seed=*/81, initial_a, 1000.0f);
    for (int i = 0; i < kBatches; ++i) {
      engine.ApplyMutations(a, fuzzer.NextBatch(20));
    }
  });
  std::atomic<bool> stop{false};
  std::atomic<int> queries_ok{0};
  std::vector<std::thread> queriers;
  for (int t = 0; t < 2; ++t) {
    queriers.emplace_back([&] {
      // do-while: even a starved thread (parallel test runners can delay
      // this lambda past the whole mutation sequence) executes at least
      // one join, keeping the queries_ok assertion scheduling-independent.
      do {
        CountingCollector out;
        const JoinResult result = engine.Execute(JoinRequest{a, b, epsilon}, out);
        if (result.status == RequestStatus::kOk) {
          queries_ok.fetch_add(1, std::memory_order_relaxed);
        }
      } while (!stop.load(std::memory_order_acquire));
    });
  }
  mutator.join();
  stop.store(true, std::memory_order_release);
  for (std::thread& t : queriers) t.join();

  EXPECT_FALSE(fold->corrupt.load()) << "duplicate kAdded or phantom kRemoved";
  EXPECT_GT(queries_ok.load(), 0);

  // Re-derive the expected final pair set from an independent mirror of the
  // same deterministic mutation stream.
  MirroredFuzzer mirror(/*seed=*/81, initial_a, 1000.0f);
  for (int i = 0; i < kBatches; ++i) mirror.NextBatch(20);
  EXPECT_EQ(fold->PairsCopy(), BruteForce(mirror.live(), initial_b, epsilon))
      << "continuous join lost or invented deltas under concurrency";

  EXPECT_TRUE(standing.Cancel());
  EXPECT_EQ(standing.Get().status, RequestStatus::kCancelled);
  EXPECT_EQ(fold->completions.load(), 1);
}

TEST(DynamicStressTest, CancelRacesDeltaBurstsWithoutUseAfterFree) {
  // The canceller frees the sink (delivery resets it) while a mutation
  // batch may be mid-burst: the cont_sink_mutex barrier protocol must make
  // that safe. ASan/TSan turn a violation into a crash; the functional
  // assertion is exactly-one completion per subscription.
  QueryEngine engine;
  const Dataset initial_a = GenerateSynthetic(Distribution::kUniform, 200, 73);
  const Dataset initial_b = GenerateSynthetic(Distribution::kUniform, 200, 74);
  const DatasetHandle a = engine.RegisterDataset("A", initial_a);
  const DatasetHandle b = engine.RegisterDataset("B", initial_b);

  for (int round = 0; round < 10; ++round) {
    auto fold = std::make_shared<StressState>();
    JoinRequest continuous{a, b, 25.0f};
    continuous.continuous = true;
    RequestHandle standing =
        engine.Submit(continuous, std::make_unique<StressSink>(fold));

    std::thread mutator([&] {
      MirroredFuzzer fuzzer(/*seed=*/90 + round, initial_a, 1000.0f);
      for (int i = 0; i < 8; ++i) {
        engine.ApplyMutations(a, fuzzer.NextBatch(15));
      }
    });
    // Cancel lands somewhere inside the mutator's sequence of delta bursts.
    std::thread canceller([&] { standing.Cancel(); });
    mutator.join();
    canceller.join();

    EXPECT_EQ(standing.Get().status, RequestStatus::kCancelled);
    EXPECT_EQ(fold->completions.load(), 1) << "round " << round;
    EXPECT_FALSE(fold->corrupt.load()) << "round " << round;

    // Reset dataset A for the next round by replaying nothing — each round
    // keeps mutating the same dataset; only lifecycle is under test here.
  }
}

TEST(DynamicStressTest, ShardedMutationsRaceScatterGathers) {
  EngineOptions options;
  options.shards = 4;
  ShardedQueryEngine sharded(options);
  const Dataset initial_a = GenerateSynthetic(Distribution::kClustered, 500, 75);
  const Dataset initial_b = GenerateSynthetic(Distribution::kUniform, 500, 76);
  const DatasetHandle a = sharded.RegisterDataset("A", initial_a);
  const DatasetHandle b = sharded.RegisterDataset("B", initial_b);
  const float epsilon = 15.0f;

  constexpr int kBatches = 40;
  std::thread mutator([&] {
    MirroredFuzzer fuzzer(/*seed=*/83, initial_a, 1000.0f);
    for (int i = 0; i < kBatches; ++i) {
      sharded.ApplyMutations(a, fuzzer.NextBatch(25));
    }
  });
  std::atomic<bool> stop{false};
  std::thread querier([&] {
    // Mid-flight gathers are best-effort (pinned id maps may describe an
    // older version than a pair's execution snapshot), but they must never
    // crash, hang, or report an error.
    while (!stop.load(std::memory_order_acquire)) {
      CountingCollector out;
      const ShardedJoinResult result =
          sharded.Execute(JoinRequest{a, b, epsilon}, out);
      EXPECT_NE(result.merged.status, RequestStatus::kError)
          << result.merged.error;
    }
  });
  mutator.join();
  stop.store(true, std::memory_order_release);
  querier.join();

  // Quiesced: the post-race gather must exactly match the mirrored stream's
  // brute force.
  MirroredFuzzer mirror(/*seed=*/83, initial_a, 1000.0f);
  for (int i = 0; i < kBatches; ++i) mirror.NextBatch(25);
  VectorCollector out;
  const ShardedJoinResult result =
      sharded.Execute(JoinRequest{a, b, epsilon}, out);
  ASSERT_EQ(result.merged.status, RequestStatus::kOk) << result.merged.error;
  std::set<IdPair> got(out.pairs().begin(), out.pairs().end());
  EXPECT_EQ(got, BruteForce(mirror.live(), initial_b, epsilon));
}

}  // namespace
}  // namespace touch
