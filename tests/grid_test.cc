#include "geom/grid.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "util/rng.h"

namespace touch {
namespace {

TEST(GridMapperTest, CellOfCorners) {
  const GridMapper grid(MakeBox(0, 0, 0, 10, 10, 10), 10);
  const CellCoord lo = grid.CellOf(Vec3(0, 0, 0));
  EXPECT_EQ(lo.x, 0);
  EXPECT_EQ(lo.y, 0);
  EXPECT_EQ(lo.z, 0);
  // The max corner is clamped into the last cell.
  const CellCoord hi = grid.CellOf(Vec3(10, 10, 10));
  EXPECT_EQ(hi.x, 9);
  EXPECT_EQ(hi.y, 9);
  EXPECT_EQ(hi.z, 9);
}

TEST(GridMapperTest, PointsOutsideDomainClampIntoBoundaryCells) {
  const GridMapper grid(MakeBox(0, 0, 0, 10, 10, 10), 5);
  const CellCoord below = grid.CellOf(Vec3(-100, -1, 3));
  EXPECT_EQ(below.x, 0);
  EXPECT_EQ(below.y, 0);
  const CellCoord above = grid.CellOf(Vec3(50, 10.5f, 3));
  EXPECT_EQ(above.x, 4);
  EXPECT_EQ(above.y, 4);
}

TEST(GridMapperTest, RangeOfSmallBoxIsSingleCell) {
  const GridMapper grid(MakeBox(0, 0, 0, 100, 100, 100), 10);
  const CellRange r = grid.RangeOf(MakeBox(11, 11, 11, 12, 12, 12));
  EXPECT_EQ(r.Count(), 1u);
  EXPECT_EQ(r.lo.x, 1);
}

TEST(GridMapperTest, RangeOfSpanningBoxCoversMultipleCells) {
  const GridMapper grid(MakeBox(0, 0, 0, 100, 100, 100), 10);
  const CellRange r = grid.RangeOf(MakeBox(5, 5, 5, 35, 15, 5));
  EXPECT_EQ(r.lo.x, 0);
  EXPECT_EQ(r.hi.x, 3);
  EXPECT_EQ(r.lo.y, 0);
  EXPECT_EQ(r.hi.y, 1);
  EXPECT_EQ(r.Count(), 8u);
}

TEST(GridMapperTest, ResolutionOneIsASingleCell) {
  const GridMapper grid(MakeBox(0, 0, 0, 10, 10, 10), 1);
  EXPECT_EQ(grid.TotalCells(), 1u);
  const CellRange r = grid.RangeOf(MakeBox(-5, -5, -5, 50, 50, 50));
  EXPECT_EQ(r.Count(), 1u);
}

TEST(GridMapperTest, DegenerateFlatDomainStillMaps) {
  // A domain with zero extent on z (all boxes in one plane).
  const GridMapper grid(MakeBox(0, 0, 5, 10, 10, 5), 4);
  const CellCoord c = grid.CellOf(Vec3(9, 1, 5));
  EXPECT_EQ(c.x, 3);
  EXPECT_EQ(c.y, 0);
  EXPECT_EQ(c.z, 0);
}

TEST(GridMapperTest, AnisotropicResolution) {
  const GridMapper grid(MakeBox(0, 0, 0, 100, 10, 1), 10, 2, 1);
  EXPECT_EQ(grid.res_x(), 10);
  EXPECT_EQ(grid.res_y(), 2);
  EXPECT_EQ(grid.res_z(), 1);
  EXPECT_EQ(grid.TotalCells(), 20u);
}

TEST(GridMapperTest, CellBoundsTileTheDomain) {
  const GridMapper grid(MakeBox(0, 0, 0, 10, 10, 10), 5);
  const Box first = grid.CellBounds(CellCoord{0, 0, 0});
  EXPECT_FLOAT_EQ(first.hi.x, 2.0f);
  const Box last = grid.CellBounds(CellCoord{4, 4, 4});
  EXPECT_FLOAT_EQ(last.lo.x, 8.0f);
  EXPECT_FLOAT_EQ(last.hi.x, 10.0f);
}

TEST(GridMapperTest, EveryPointMapsIntoItsCellBounds) {
  const GridMapper grid(MakeBox(0, 0, 0, 37, 41, 13), 7, 3, 9);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const Vec3 p(rng.NextFloat() * 37, rng.NextFloat() * 41,
                 rng.NextFloat() * 13);
    const CellCoord c = grid.CellOf(p);
    const Box bounds = grid.CellBounds(c);
    // Allow a float ulp of slack at the boundary.
    EXPECT_GE(p.x, bounds.lo.x - 1e-4f);
    EXPECT_LE(p.x, bounds.hi.x + 1e-4f);
    EXPECT_GE(p.y, bounds.lo.y - 1e-4f);
    EXPECT_LE(p.y, bounds.hi.y + 1e-4f);
  }
}

TEST(GridMapperTest, PackUnpackRoundTrip) {
  const CellCoord c{123, 456, 789};
  const CellCoord r = GridMapper::UnpackKey(GridMapper::PackKey(c));
  EXPECT_EQ(r.x, 123);
  EXPECT_EQ(r.y, 456);
  EXPECT_EQ(r.z, 789);
}

TEST(GridMapperTest, PackKeyIsInjectiveOnDistinctCoords) {
  // Coordinates up to 2^21-1 per axis must produce distinct keys.
  const uint64_t k1 = GridMapper::PackKey(CellCoord{1, 0, 0});
  const uint64_t k2 = GridMapper::PackKey(CellCoord{0, 1, 0});
  const uint64_t k3 = GridMapper::PackKey(CellCoord{0, 0, 1});
  EXPECT_NE(k1, k2);
  EXPECT_NE(k2, k3);
  EXPECT_NE(k1, k3);
}

TEST(ReferencePointTest, IsMaxOfMinCorners) {
  const Box a = MakeBox(0, 0, 0, 5, 5, 5);
  const Box b = MakeBox(2, 1, 3, 8, 8, 8);
  EXPECT_EQ(ReferencePoint(a, b), Vec3(2, 1, 3));
}

TEST(ReferencePointTest, LiesInsideBothBoxesWhenIntersecting) {
  Rng rng(8);
  for (int i = 0; i < 500; ++i) {
    const Box a = CenteredBox(rng.NextFloat() * 10, rng.NextFloat() * 10,
                              rng.NextFloat() * 10, 1 + rng.NextFloat());
    const Box b = CenteredBox(rng.NextFloat() * 10, rng.NextFloat() * 10,
                              rng.NextFloat() * 10, 1 + rng.NextFloat());
    if (Intersects(a, b)) {
      const Vec3 ref = ReferencePoint(a, b);
      EXPECT_TRUE(ContainsPoint(a, ref));
      EXPECT_TRUE(ContainsPoint(b, ref));
    }
  }
}

}  // namespace
}  // namespace touch
