#include "engine/sharded_engine.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <numeric>
#include <thread>
#include <vector>

#include "datagen/distributions.h"
#include "engine/shard.h"
#include "test_util.h"
#include "util/timer.h"

namespace touch {
namespace {

// --- PartitionIntoShards (the STR-slab partitioner) -------------------------

TEST(ShardPartitionTest, CoversEveryBoxExactlyOnce) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 10000, 7);
  const DatasetStats stats = ComputeDatasetStats(boxes);
  const ShardPartition partition = PartitionIntoShards(boxes, stats, 8);

  EXPECT_EQ(partition.kx * partition.ky * partition.kz, 8);
  ASSERT_EQ(partition.shards.size(), 8u);
  ASSERT_EQ(partition.shard_of.size(), boxes.size());

  size_t total = 0;
  std::vector<bool> seen(boxes.size(), false);
  for (size_t s = 0; s < partition.shards.size(); ++s) {
    const DatasetShard& shard = partition.shards[s];
    ASSERT_EQ(shard.boxes.size(), shard.to_global.size());
    total += shard.boxes.size();
    for (size_t i = 0; i < shard.to_global.size(); ++i) {
      const uint32_t global = shard.to_global[i];
      ASSERT_LT(global, boxes.size());
      EXPECT_FALSE(seen[global]) << "box assigned to two shards";
      seen[global] = true;
      EXPECT_EQ(partition.shard_of[global], s);
      EXPECT_EQ(shard.boxes[i], boxes[global]);
      EXPECT_TRUE(Contains(shard.mbr, boxes[global]));
    }
  }
  EXPECT_EQ(total, boxes.size());
}

TEST(ShardPartitionTest, BalancesUniformData) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 16000, 9);
  const DatasetStats stats = ComputeDatasetStats(boxes);
  const ShardPartition partition = PartitionIntoShards(boxes, stats, 4);
  const size_t ideal = boxes.size() / 4;
  for (const DatasetShard& shard : partition.shards) {
    // Histogram-granular cuts cannot be exact, but uniform data must land
    // within a factor of two of the ideal share.
    EXPECT_GT(shard.boxes.size(), ideal / 2);
    EXPECT_LT(shard.boxes.size(), ideal * 2);
  }
}

TEST(ShardPartitionTest, SingleShardTakesEverything) {
  const Dataset boxes = GenerateSynthetic(Distribution::kClustered, 500, 3);
  const DatasetStats stats = ComputeDatasetStats(boxes);
  const ShardPartition partition = PartitionIntoShards(boxes, stats, 1);
  ASSERT_EQ(partition.shards.size(), 1u);
  EXPECT_EQ(partition.shards[0].boxes.size(), boxes.size());
}

TEST(ShardPartitionTest, EmptyDatasetYieldsEmptyShards) {
  const DatasetStats stats = ComputeDatasetStats(Dataset{});
  const ShardPartition partition = PartitionIntoShards(Dataset{}, stats, 4);
  ASSERT_EQ(partition.shards.size(), 4u);
  for (const DatasetShard& shard : partition.shards) {
    EXPECT_TRUE(shard.boxes.empty());
  }
}

TEST(ShardPartitionTest, SlabsComeFromHistogramNotGeometry) {
  // Two clusters along x: the x cut must fall between them, whatever the
  // box order was.
  Dataset boxes;
  for (int i = 0; i < 300; ++i) {
    boxes.push_back(CenteredBox(static_cast<float>(i % 10), i % 7, i % 5));
    boxes.push_back(
        CenteredBox(100.0f + static_cast<float>(i % 10), i % 7, i % 5));
  }
  const DatasetStats stats = ComputeDatasetStats(boxes);
  const ShardPartition partition = PartitionIntoShards(boxes, stats, 2);
  ASSERT_EQ(partition.shards.size(), 2u);
  EXPECT_EQ(partition.shards[0].boxes.size(), 300u);
  EXPECT_EQ(partition.shards[1].boxes.size(), 300u);
  // The slab boundary separates the clusters spatially.
  EXPECT_LT(partition.shards[0].mbr.hi.x, partition.shards[1].mbr.lo.x);
}

// --- ShardedCatalog stats round-trip ----------------------------------------

TEST(ShardedCatalogTest, ShardStatsRoundTripThroughSerialization) {
  EngineOptions options;
  options.shards = 4;
  ShardedQueryEngine engine(options);
  const DatasetHandle handle = engine.RegisterDataset(
      "data", GenerateSynthetic(Distribution::kGaussian, 8000, 21));

  const ShardedCatalog::Entry& entry = engine.catalog().entry(handle);
  ASSERT_EQ(entry.shards.size(), 4u);
  size_t total = 0;
  for (const ShardedCatalog::Shard& shard : entry.shards) {
    DatasetStats decoded;
    ASSERT_TRUE(DeserializeDatasetStats(shard.stats_bytes, &decoded));
    // The serialized bytes must describe exactly what the inner catalog
    // holds for this shard — the wire form loses nothing planning needs.
    const DatasetStats& reference =
        engine.engine().catalog().stats(shard.engine_handle);
    EXPECT_EQ(decoded.count, reference.count);
    EXPECT_EQ(decoded.count, shard.count);
    EXPECT_EQ(decoded.extent, reference.extent);
    EXPECT_EQ(decoded.histogram_resolution, reference.histogram_resolution);
    EXPECT_EQ(decoded.histogram, reference.histogram);
    EXPECT_DOUBLE_EQ(decoded.density, reference.density);
    total += shard.count;
  }
  EXPECT_EQ(total, entry.global_stats.count);
  EXPECT_EQ(engine.catalog().Find("data"), handle);
}

// --- Sharded vs unsharded result identity -----------------------------------

/// Runs the same request sharded (K shards) and unsharded, both through
/// engines configured with `options`, and expects the exact same sorted
/// result set. Returns the sharded outcome for extra assertions.
ShardedJoinResult ExpectShardedMatchesUnsharded(const EngineOptions& options,
                                                int shards, const Dataset& a,
                                                const Dataset& b,
                                                float epsilon) {
  EngineOptions sharded_options = options;
  sharded_options.shards = shards;
  ShardedQueryEngine sharded(sharded_options);
  const JoinRequest sharded_request{sharded.RegisterDataset("A", a),
                                    sharded.RegisterDataset("B", b), epsilon};
  VectorCollector sharded_pairs;
  const ShardedJoinResult result =
      sharded.Execute(sharded_request, sharded_pairs);
  EXPECT_TRUE(result.merged.ok()) << result.merged.error;

  QueryEngine reference(options);
  const JoinRequest reference_request{reference.RegisterDataset("A", a),
                                      reference.RegisterDataset("B", b),
                                      epsilon};
  VectorCollector reference_pairs;
  const JoinResult reference_result =
      reference.Execute(reference_request, reference_pairs);
  EXPECT_TRUE(reference_result.ok()) << reference_result.error;

  std::vector<IdPair> lhs = sharded_pairs.pairs();
  std::vector<IdPair> rhs = reference_pairs.pairs();
  std::sort(lhs.begin(), lhs.end());
  std::sort(rhs.begin(), rhs.end());
  EXPECT_TRUE(HasNoDuplicates(lhs));
  EXPECT_EQ(lhs, rhs);
  EXPECT_EQ(result.merged.stats.results, reference_result.stats.results);
  EXPECT_EQ(result.deduplicated, 0u)
      << "center-disjoint partitioning cannot produce boundary duplicates";
  return result;
}

/// True when some executed pair planned an algorithm of `family`.
bool AnyPairPlanned(const ShardedJoinResult& result,
                    const std::string& family) {
  return std::any_of(result.pairs.begin(), result.pairs.end(),
                     [&](const ShardPairReport& pair) {
                       return pair.plan.algorithm.rfind(family, 0) == 0;
                     });
}

TEST(ShardedEngineTest, MatchesUnshardedOnTouchPlans) {
  // Disable the tiny-input shortcuts and PBSM so every shard pair plans
  // TOUCH — the identity must hold under the heavyweight executor.
  EngineOptions options;
  options.planner.nested_loop_max = 0;
  options.planner.plane_sweep_max = 0;
  options.planner.pbsm_skew_max = -1.0;
  const Dataset a = GenerateSynthetic(Distribution::kClustered, 6000, 31);
  const Dataset b = GenerateSynthetic(Distribution::kClustered, 9000, 32);
  const ShardedJoinResult result =
      ExpectShardedMatchesUnsharded(options, 4, a, b, 2.0f);
  EXPECT_TRUE(AnyPairPlanned(result, "touch"));
}

TEST(ShardedEngineTest, MatchesUnshardedOnPbsmPlans) {
  EngineOptions options;
  options.planner.nested_loop_max = 0;
  options.planner.plane_sweep_max = 0;
  options.planner.pbsm_skew_max = 1e9;  // PBSM whenever it fits
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 6000, 33);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 8000, 34);
  const ShardedJoinResult result =
      ExpectShardedMatchesUnsharded(options, 4, a, b, 3.0f);
  EXPECT_TRUE(AnyPairPlanned(result, "pbsm"));
}

TEST(ShardedEngineTest, MatchesUnshardedOnInlPlans) {
  // A violated memory budget with no asymmetry requirement forces the
  // indexed nested loop everywhere.
  EngineOptions options;
  options.planner.nested_loop_max = 0;
  options.planner.plane_sweep_max = 0;
  options.planner.memory_budget_bytes = 1;
  options.planner.inl_asymmetry = 1.0;
  const Dataset a = GenerateSynthetic(Distribution::kGaussian, 3000, 35);
  const Dataset b = GenerateSynthetic(Distribution::kGaussian, 12000, 36);
  const ShardedJoinResult result =
      ExpectShardedMatchesUnsharded(options, 4, a, b, 1.5f);
  EXPECT_TRUE(AnyPairPlanned(result, "inl"));
}

TEST(ShardedEngineTest, MatchesUnshardedWithDefaultPlannerAndManyShards) {
  const Dataset a = GenerateSynthetic(Distribution::kClustered, 5000, 37);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 7000, 38);
  ExpectShardedMatchesUnsharded(EngineOptions{}, 8, a, b, 2.5f);
}

// --- Shard-pair pruning goldens ---------------------------------------------

/// Two clusters per dataset, 90 units of empty space along x between them.
/// K=2 splits exactly at the gap, so the cross pairs prune iff epsilon
/// cannot bridge the gap.
Dataset TwoClusters(float offset, int count, int jitter_seed) {
  Dataset boxes;
  for (int i = 0; i < count; ++i) {
    const float dx = static_cast<float>((i * 13 + jitter_seed) % 10);
    const float dy = static_cast<float>(i % 8);
    const float dz = static_cast<float>(i % 6);
    boxes.push_back(CenteredBox(dx, dy, dz));
    boxes.push_back(CenteredBox(offset + dx, dy, dz));
  }
  return boxes;
}

TEST(ShardedEngineTest, PrunesShardPairsWhoseMbrsCannotMeet) {
  const Dataset a = TwoClusters(100.0f, 400, 1);
  const Dataset b = TwoClusters(100.0f, 400, 2);
  EngineOptions options;
  options.shards = 2;
  ShardedQueryEngine engine(options);
  const DatasetHandle ha = engine.RegisterDataset("A", a);
  const DatasetHandle hb = engine.RegisterDataset("B", b);

  // Epsilon far below the ~90-unit gap: the two cross pairs prune.
  CountingCollector out_small;
  const ShardedJoinResult small =
      engine.Execute({ha, hb, 1.0f}, out_small);
  EXPECT_TRUE(small.merged.ok());
  EXPECT_EQ(small.shard_pairs_total, 4u);
  EXPECT_EQ(small.pairs.size(), 2u);
  ASSERT_EQ(small.pruned.size(), 2u);
  const std::vector<std::pair<int, int>> expected_pruned = {{0, 1}, {1, 0}};
  std::vector<std::pair<int, int>> pruned = small.pruned;
  std::sort(pruned.begin(), pruned.end());
  EXPECT_EQ(pruned, expected_pruned);

  // Epsilon wider than the gap: nothing prunes.
  CountingCollector out_large;
  const ShardedJoinResult large =
      engine.Execute({ha, hb, 150.0f}, out_large);
  EXPECT_TRUE(large.merged.ok());
  EXPECT_EQ(large.pruned.size(), 0u);
  EXPECT_EQ(large.pairs.size(), 4u);

  // Pruning must not change the result: compare against the oracle.
  Dataset enlarged = a;
  for (Box& box : enlarged) box = box.Enlarged(1.0f);
  const std::vector<IdPair> oracle = OracleJoin(enlarged, b);
  EXPECT_EQ(out_small.count(), oracle.size());
}

TEST(ShardedEngineTest, EmptyShardPairsArePruned) {
  // All of A's mass sits in a single histogram cell: only one of its 8
  // shards is populated, and pairs against the empty shards must prune
  // rather than execute.
  Dataset a(500, CenteredBox(0, 0, 0));
  EngineOptions options;
  options.shards = 8;
  ShardedQueryEngine engine(options);
  const DatasetHandle ha = engine.RegisterDataset("A", std::move(a));
  const DatasetHandle hb = engine.RegisterDataset(
      "B", GenerateSynthetic(Distribution::kUniform, 1000, 5));

  size_t populated = 0;
  for (const ShardedCatalog::Shard& shard :
       engine.catalog().entry(ha).shards) {
    if (shard.count > 0) ++populated;
  }
  EXPECT_EQ(populated, 1u);

  CountingCollector out;
  const ShardedJoinResult result = engine.Execute({ha, hb, 1.0f}, out);
  EXPECT_TRUE(result.merged.ok());
  EXPECT_GE(result.pruned.size(), 7u * 8u);
  for (const ShardPairReport& pair : result.pairs) {
    EXPECT_GT(engine.catalog().entry(ha).shards[pair.shard_a].count, 0u);
    EXPECT_GT(engine.catalog().entry(hb).shards[pair.shard_b].count, 0u);
  }
}

// --- Cancellation fan-out ---------------------------------------------------

TEST(ShardedEngineTest, CancelFansOutToAllShardPairs) {
  EngineOptions options;
  options.shards = 2;  // 4 shard pairs
  options.threads = 2;
  std::atomic<int> entered{0};
  std::atomic<bool> released{false};
  // Park every claimed pair at its kPlanning transition so the cancel
  // deterministically lands before any pair finishes.
  options.phase_observer = [&](RequestPhase phase) {
    if (phase != RequestPhase::kPlanning) return;
    entered.fetch_add(1);
    while (!released.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  ShardedQueryEngine engine(options);
  const DatasetHandle ha = engine.RegisterDataset(
      "A", GenerateSynthetic(Distribution::kUniform, 4000, 41));
  const DatasetHandle hb = engine.RegisterDataset(
      "B", GenerateSynthetic(Distribution::kUniform, 4000, 42));

  ShardedRequestHandle handle = engine.Submit({ha, hb, 2.0f});
  ASSERT_EQ(handle.pair_count(), 4u);
  while (entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(handle.Cancel());
  released.store(true);

  const Timer gather;
  const ShardedJoinResult result = handle.Get();
  EXPECT_EQ(result.merged.status, RequestStatus::kCancelled);
  ASSERT_EQ(result.pairs.size(), 4u);
  for (const ShardPairReport& pair : result.pairs) {
    EXPECT_EQ(pair.status, RequestStatus::kCancelled)
        << "cancel must fan out to shard pair (" << pair.shard_a << ", "
        << pair.shard_b << ")";
  }
  // Promptness: the gather returns in interactive time, not join time.
  EXPECT_LT(gather.Seconds(), 5.0);
}

// --- Error paths and handle semantics ---------------------------------------

TEST(ShardedEngineTest, InvalidHandleReportsError) {
  ShardedQueryEngine engine;
  CountingCollector out;
  const ShardedJoinResult result = engine.Execute({5, 6, 1.0f}, out);
  EXPECT_EQ(result.merged.status, RequestStatus::kError);
  EXPECT_NE(result.merged.error.find("invalid dataset handle"),
            std::string::npos);
}

TEST(ShardedEngineTest, SecondGatherReportsError) {
  ShardedQueryEngine engine;
  const DatasetHandle ha = engine.RegisterDataset(
      "A", GenerateSynthetic(Distribution::kUniform, 300, 44));
  ShardedRequestHandle handle = engine.Submit({ha, ha, 1.0f});
  EXPECT_TRUE(handle.Get().merged.ok());
  EXPECT_EQ(handle.Get().merged.status, RequestStatus::kError);
}

TEST(ShardedEngineTest, SinkReceivesGlobalIdsAndOneCompletion) {
  // The engine owns the sink and drops it after OnComplete, so everything
  // the test wants to inspect is copied into this shared record there.
  struct Record {
    std::vector<IdPair> pairs;
    int completions = 0;
    uint64_t final_results = 0;
  };
  class RecordingSink : public ResultSink {
   public:
    explicit RecordingSink(std::shared_ptr<Record> record)
        : record_(std::move(record)) {}
    void Emit(uint32_t a_id, uint32_t b_id) override {
      record_->pairs.emplace_back(a_id, b_id);
    }
    void OnComplete(const JoinResult& result) override {
      ++record_->completions;
      record_->final_results = result.stats.results;
    }

   private:
    std::shared_ptr<Record> record_;
  };
  EngineOptions options;
  options.shards = 4;
  ShardedQueryEngine engine(options);
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 2000, 51);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 2000, 52);
  const DatasetHandle ha = engine.RegisterDataset("A", a);
  const DatasetHandle hb = engine.RegisterDataset("B", b);
  auto record = std::make_shared<Record>();
  ShardedRequestHandle handle =
      engine.Submit({ha, hb, 5.0f}, std::make_unique<RecordingSink>(record));
  const ShardedJoinResult result = handle.Get();
  EXPECT_TRUE(result.merged.ok());
  EXPECT_EQ(record->completions, 1);
  EXPECT_EQ(record->final_results, result.merged.stats.results);
  EXPECT_EQ(record->pairs.size(), result.merged.stats.results);
  EXPECT_GT(record->pairs.size(), 0u);

  // Global id space: every emitted id addresses the *original* datasets.
  Dataset enlarged = a;
  for (Box& box : enlarged) box = box.Enlarged(5.0f);
  std::vector<IdPair> expected = OracleJoin(enlarged, b);
  std::vector<IdPair> emitted = record->pairs;
  std::sort(emitted.begin(), emitted.end());
  EXPECT_EQ(emitted, expected);
}

TEST(ShardedEngineTest, MergedTelemetryAggregatesPairs) {
  EngineOptions options;
  options.shards = 2;
  ShardedQueryEngine engine(options);
  // Large enough that shard pairs plan a cacheable algorithm (PBSM/TOUCH),
  // so the warm re-run below can hit end to end.
  const DatasetHandle ha = engine.RegisterDataset(
      "A", GenerateSynthetic(Distribution::kUniform, 12000, 61));
  const DatasetHandle hb = engine.RegisterDataset(
      "B", GenerateSynthetic(Distribution::kUniform, 12000, 62));
  CountingCollector out;
  const ShardedJoinResult result = engine.Execute({ha, hb, 2.0f}, out);
  EXPECT_TRUE(result.merged.ok());

  uint64_t pair_results = 0;
  double pair_join_seconds = 0;
  for (const ShardPairReport& pair : result.pairs) {
    pair_results += pair.stats.results;
    pair_join_seconds += pair.stats.join_seconds;
  }
  EXPECT_EQ(result.merged.stats.results + result.deduplicated, pair_results);
  EXPECT_DOUBLE_EQ(result.merged.stats.join_seconds, pair_join_seconds);
  EXPECT_EQ(out.count(), result.merged.stats.results);
  EXPECT_EQ(result.cache.misses, engine.engine().cache_stats().misses);
  EXPECT_EQ(result.merged.plan.algorithm, "sharded");

  // A warm re-run hits the per-shard artifact cache end to end.
  CountingCollector warm_out;
  const ShardedJoinResult warm = engine.Execute({ha, hb, 2.0f}, warm_out);
  EXPECT_TRUE(warm.merged.index_cache_hit);
  EXPECT_EQ(warm.merged.stats.results, result.merged.stats.results);
}

}  // namespace
}  // namespace touch
