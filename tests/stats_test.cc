#include "util/stats.h"

#include <gtest/gtest.h>

#include "core/factory.h"
#include "util/memory.h"

namespace touch {
namespace {

TEST(JoinStatsTest, DefaultsAreZero) {
  const JoinStats s;
  EXPECT_EQ(s.comparisons, 0u);
  EXPECT_EQ(s.results, 0u);
  EXPECT_EQ(s.filtered, 0u);
  EXPECT_EQ(s.memory_bytes, 0u);
  EXPECT_DOUBLE_EQ(s.total_seconds, 0.0);
}

TEST(JoinStatsTest, SelectivityDefinition) {
  JoinStats s;
  s.results = 50;
  EXPECT_DOUBLE_EQ(s.Selectivity(100, 100), 50.0 / 10000.0);
}

TEST(JoinStatsTest, SelectivityOfEmptyInputsIsZero) {
  JoinStats s;
  s.results = 10;
  EXPECT_DOUBLE_EQ(s.Selectivity(0, 100), 0.0);
  EXPECT_DOUBLE_EQ(s.Selectivity(100, 0), 0.0);
}

TEST(JoinStatsTest, MergeCountersSumsAndKeepsPeakMemory) {
  JoinStats a;
  a.comparisons = 10;
  a.results = 2;
  a.filtered = 1;
  a.memory_bytes = 100;
  JoinStats b;
  b.comparisons = 5;
  b.results = 3;
  b.node_comparisons = 7;
  b.memory_bytes = 50;
  a.MergeCounters(b);
  EXPECT_EQ(a.comparisons, 15u);
  EXPECT_EQ(a.results, 5u);
  EXPECT_EQ(a.filtered, 1u);
  EXPECT_EQ(a.node_comparisons, 7u);
  EXPECT_EQ(a.memory_bytes, 100u);  // max, not sum
}

TEST(JoinStatsTest, ToStringMentionsKeyCounters) {
  JoinStats s;
  s.comparisons = 1234;
  s.results = 56;
  const std::string text = s.ToString();
  EXPECT_NE(text.find("1234"), std::string::npos);
  EXPECT_NE(text.find("56"), std::string::npos);
}

TEST(MemoryHelpersTest, VectorBytesUsesCapacity) {
  std::vector<uint64_t> v;
  v.reserve(100);
  EXPECT_EQ(VectorBytes(v), 100 * sizeof(uint64_t));
}

TEST(MemoryHelpersTest, NestedVectorBytesIncludesInner) {
  std::vector<std::vector<uint32_t>> v(3);
  v[0].reserve(10);
  v[2].reserve(5);
  const size_t expected =
      3 * sizeof(std::vector<uint32_t>) + 15 * sizeof(uint32_t);
  EXPECT_EQ(NestedVectorBytes(v), expected);
}

TEST(FactoryTest, BuildsEveryAdvertisedAlgorithm) {
  for (const std::string& name : AllAlgorithmNames()) {
    const auto algorithm = MakeAlgorithm(name);
    ASSERT_NE(algorithm, nullptr) << name;
    // pbsm-500/pbsm-100 share the family name "pbsm".
    EXPECT_TRUE(name.rfind(std::string(algorithm->name()), 0) == 0) << name;
  }
}

TEST(FactoryTest, RejectsUnknownNames) {
  EXPECT_EQ(MakeAlgorithm("quadtree"), nullptr);
  EXPECT_EQ(MakeAlgorithm(""), nullptr);
  EXPECT_EQ(MakeAlgorithm("pbsm-"), nullptr);
  EXPECT_EQ(MakeAlgorithm("pbsm-0"), nullptr);
}

TEST(FactoryTest, PbsmResolutionSuffixIsParsed) {
  const auto algorithm = MakeAlgorithm("pbsm-123");
  ASSERT_NE(algorithm, nullptr);
  const auto* pbsm = dynamic_cast<PbsmJoin*>(algorithm.get());
  ASSERT_NE(pbsm, nullptr);
  EXPECT_EQ(pbsm->options().resolution, 123);
}

TEST(FactoryTest, ConfigIsForwarded) {
  AlgorithmConfig config;
  config.touch.fanout = 9;
  config.s3.levels = 3;
  const auto touch_join = MakeAlgorithm("touch", config);
  EXPECT_EQ(dynamic_cast<TouchJoin*>(touch_join.get())->options().fanout, 9u);
  const auto s3_join = MakeAlgorithm("s3", config);
  EXPECT_EQ(dynamic_cast<S3Join*>(s3_join.get())->options().levels, 3);
}

}  // namespace
}  // namespace touch
