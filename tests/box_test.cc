#include "geom/box.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace touch {
namespace {

TEST(BoxTest, DefaultBoxIsPointAtOrigin) {
  Box b;
  EXPECT_FALSE(b.IsEmpty());
  EXPECT_EQ(b.Center(), Vec3(0, 0, 0));
  EXPECT_DOUBLE_EQ(b.Volume(), 0.0);
}

TEST(BoxTest, EmptyBoxIsEmpty) {
  const Box e = Box::Empty();
  EXPECT_TRUE(e.IsEmpty());
  EXPECT_DOUBLE_EQ(e.Volume(), 0.0);
}

TEST(BoxTest, ExpandToContainFromEmptyYieldsTheBox) {
  Box e = Box::Empty();
  const Box b = MakeBox(1, 2, 3, 4, 5, 6);
  e.ExpandToContain(b);
  EXPECT_EQ(e, b);
}

TEST(BoxTest, ExpandToContainPoint) {
  Box b = MakeBox(0, 0, 0, 1, 1, 1);
  b.ExpandToContain(Vec3(5, -1, 0.5f));
  EXPECT_EQ(b, MakeBox(0, -1, 0, 5, 1, 1));
}

TEST(BoxTest, VolumeAndMargin) {
  const Box b = MakeBox(0, 0, 0, 2, 3, 4);
  EXPECT_DOUBLE_EQ(b.Volume(), 24.0);
  EXPECT_DOUBLE_EQ(b.Margin(), 9.0);
}

TEST(BoxTest, IntersectsOverlapping) {
  EXPECT_TRUE(Intersects(MakeBox(0, 0, 0, 2, 2, 2), MakeBox(1, 1, 1, 3, 3, 3)));
}

TEST(BoxTest, IntersectsDisjointOnEachAxis) {
  const Box base = MakeBox(0, 0, 0, 1, 1, 1);
  EXPECT_FALSE(Intersects(base, MakeBox(2, 0, 0, 3, 1, 1)));
  EXPECT_FALSE(Intersects(base, MakeBox(0, 2, 0, 1, 3, 1)));
  EXPECT_FALSE(Intersects(base, MakeBox(0, 0, 2, 1, 1, 3)));
}

TEST(BoxTest, TouchingFacesCountAsIntersecting) {
  // Closed-box semantics: sharing a face is an intersection.
  EXPECT_TRUE(Intersects(MakeBox(0, 0, 0, 1, 1, 1), MakeBox(1, 0, 0, 2, 1, 1)));
}

TEST(BoxTest, TouchingCornerCountsAsIntersecting) {
  EXPECT_TRUE(Intersects(MakeBox(0, 0, 0, 1, 1, 1), MakeBox(1, 1, 1, 2, 2, 2)));
}

TEST(BoxTest, IntersectsIsSymmetric) {
  const Box a = MakeBox(0, 0, 0, 2, 2, 2);
  const Box b = MakeBox(1, -5, 1, 3, 7, 1.5f);
  EXPECT_EQ(Intersects(a, b), Intersects(b, a));
  EXPECT_TRUE(Intersects(a, b));
}

TEST(BoxTest, ContainmentImpliesIntersection) {
  const Box outer = MakeBox(0, 0, 0, 10, 10, 10);
  const Box inner = MakeBox(4, 4, 4, 5, 5, 5);
  EXPECT_TRUE(Contains(outer, inner));
  EXPECT_FALSE(Contains(inner, outer));
  EXPECT_TRUE(Intersects(outer, inner));
}

TEST(BoxTest, ContainsIsClosedAtBoundary) {
  const Box outer = MakeBox(0, 0, 0, 1, 1, 1);
  EXPECT_TRUE(Contains(outer, outer));
  EXPECT_TRUE(ContainsPoint(outer, Vec3(1, 1, 1)));
  EXPECT_FALSE(ContainsPoint(outer, Vec3(1, 1, 1.001f)));
}

TEST(BoxTest, DegenerateZeroExtentBoxIntersects) {
  // A point-box on the surface of another box intersects it.
  const Box point = MakeBox(1, 1, 1, 1, 1, 1);
  EXPECT_TRUE(Intersects(point, MakeBox(0, 0, 0, 1, 1, 1)));
  EXPECT_TRUE(Intersects(point, point));
}

TEST(BoxTest, IntersectionRegion) {
  const Box a = MakeBox(0, 0, 0, 2, 2, 2);
  const Box b = MakeBox(1, 1, 1, 3, 3, 3);
  EXPECT_EQ(Intersection(a, b), MakeBox(1, 1, 1, 2, 2, 2));
}

TEST(BoxTest, IntersectionOfDisjointBoxesIsEmpty) {
  EXPECT_TRUE(
      Intersection(MakeBox(0, 0, 0, 1, 1, 1), MakeBox(2, 2, 2, 3, 3, 3))
          .IsEmpty());
}

TEST(BoxTest, UnionEnclosesBoth) {
  const Box a = MakeBox(0, 0, 0, 1, 1, 1);
  const Box b = MakeBox(5, -2, 0, 6, 0, 3);
  const Box u = Union(a, b);
  EXPECT_TRUE(Contains(u, a));
  EXPECT_TRUE(Contains(u, b));
  EXPECT_EQ(u, MakeBox(0, -2, 0, 6, 1, 3));
}

TEST(BoxTest, EnlargedGrowsEverySide) {
  const Box b = MakeBox(0, 0, 0, 1, 1, 1).Enlarged(2.0f);
  EXPECT_EQ(b, MakeBox(-2, -2, -2, 3, 3, 3));
}

TEST(BoxTest, EnlargedIntersectionEqualsChebyshevDistancePredicate) {
  // Enlarging a by eps makes Intersects(a', b) equivalent to
  // "per-axis gap <= eps on all axes".
  const Box a = MakeBox(0, 0, 0, 1, 1, 1);
  const Box near = MakeBox(2.5f, 0, 0, 3, 1, 1);   // gap 1.5 on x
  const Box far = MakeBox(3.5f, 0, 0, 4, 1, 1);    // gap 2.5 on x
  EXPECT_TRUE(Intersects(a.Enlarged(1.5f), near));
  EXPECT_FALSE(Intersects(a.Enlarged(1.4f), near));
  EXPECT_FALSE(Intersects(a.Enlarged(2.0f), far));
}

TEST(BoxTest, MinDistanceZeroWhenIntersecting) {
  EXPECT_DOUBLE_EQ(
      MinDistance(MakeBox(0, 0, 0, 2, 2, 2), MakeBox(1, 1, 1, 3, 3, 3)), 0.0);
}

TEST(BoxTest, MinDistanceAlongSingleAxis) {
  EXPECT_DOUBLE_EQ(
      MinDistance(MakeBox(0, 0, 0, 1, 1, 1), MakeBox(4, 0, 0, 5, 1, 1)), 3.0);
}

TEST(BoxTest, MinDistanceDiagonal) {
  // Gap of 3 on x and 4 on y -> distance 5.
  EXPECT_DOUBLE_EQ(
      MinDistance(MakeBox(0, 0, 0, 1, 1, 1), MakeBox(4, 5, 0, 5, 6, 1)), 5.0);
}

TEST(BoxTest, CenterAndExtent) {
  const Box b = MakeBox(1, 2, 3, 3, 6, 11);
  EXPECT_EQ(b.Center(), Vec3(2, 4, 7));
  EXPECT_EQ(b.Extent(), Vec3(2, 4, 8));
}

TEST(Vec3Test, ArithmeticAndDot) {
  const Vec3 a(1, 2, 3);
  const Vec3 b(4, 5, 6);
  EXPECT_EQ(a + b, Vec3(5, 7, 9));
  EXPECT_EQ(b - a, Vec3(3, 3, 3));
  EXPECT_EQ(a * 2.0f, Vec3(2, 4, 6));
  EXPECT_FLOAT_EQ(a.Dot(b), 32.0f);
}

TEST(Vec3Test, NormalizedHasUnitLength) {
  const Vec3 v = Vec3(3, 4, 0).Normalized();
  EXPECT_FLOAT_EQ(v.Length(), 1.0f);
  EXPECT_FLOAT_EQ(v.x, 0.6f);
}

TEST(Vec3Test, NormalizedZeroVectorStaysZero) {
  EXPECT_EQ(Vec3(0, 0, 0).Normalized(), Vec3(0, 0, 0));
}

TEST(Vec3Test, IndexAccess) {
  const Vec3 v(7, 8, 9);
  EXPECT_FLOAT_EQ(v[0], 7);
  EXPECT_FLOAT_EQ(v[1], 8);
  EXPECT_FLOAT_EQ(v[2], 9);
}

}  // namespace
}  // namespace touch
