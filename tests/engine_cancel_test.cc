// Request lifecycle management: cancellation at every phase (queued,
// index-build, execute), prompt completion of abandoned requests, batch
// cancel, and the no-op edge cases. The deterministic tests park the worker
// at a chosen phase via EngineOptions::phase_observer, so "cancel while X"
// is exact, not a sleep-based race; the stress test at the bottom is the
// TSan/ASan target racing cancel against completion.

#include <atomic>
#include <chrono>
#include <functional>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "engine/engine.h"
#include "test_util.h"

namespace touch {
namespace {

// Sanitizers slow execution ~10x; the promptness budget scales with them
// but stays far below any full join on the cancelled workloads. GCC
// defines __SANITIZE_*; clang signals the same through __has_feature.
#if !defined(TOUCH_UNDER_SANITIZER) && defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define TOUCH_UNDER_SANITIZER 1
#endif
#endif
#if !defined(TOUCH_UNDER_SANITIZER) && \
    (defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__))
#define TOUCH_UNDER_SANITIZER 1
#endif
#if defined(TOUCH_UNDER_SANITIZER)
constexpr auto kPromptBudget = std::chrono::milliseconds(1000);
#else
constexpr auto kPromptBudget = std::chrono::milliseconds(100);
#endif

/// Parks the executing worker the first time a request enters `block_at`,
/// until Release(). The test thread observes the arrival via WaitReached(),
/// making "cancel while the request is in phase X" deterministic.
class PhaseGate {
 public:
  explicit PhaseGate(RequestPhase block_at)
      : block_at_(block_at),
        reached_future_(reached_.get_future()),
        release_future_(release_.get_future().share()) {}

  std::function<void(RequestPhase)> Observer() {
    return [this](RequestPhase phase) {
      if (phase == block_at_ && armed_.exchange(false)) {
        reached_.set_value();
        release_future_.wait();
      }
    };
  }

  void WaitReached() { reached_future_.wait(); }
  void Release() { release_.set_value(); }

 private:
  const RequestPhase block_at_;
  std::atomic<bool> armed_{true};
  std::promise<void> reached_;
  std::future<void> reached_future_;
  std::promise<void> release_;
  std::shared_future<void> release_future_;
};

/// Sink parked in OnComplete until released: occupies the single worker of
/// a threads=1 engine deterministically, so later submissions stay queued.
class BlockingSink : public ResultSink {
 public:
  explicit BlockingSink(std::shared_future<void> release)
      : release_(std::move(release)) {}
  void OnComplete(const JoinResult&) override { release_.wait(); }

 private:
  std::shared_future<void> release_;
};

/// Records completion and pairs into test-owned storage (the engine
/// destroys the sink itself on delivery).
struct SinkLog {
  std::atomic<int> completions{0};
  std::atomic<int> emits{0};
  RequestStatus last_status = RequestStatus::kOk;
};

class LoggingSink : public ResultSink {
 public:
  explicit LoggingSink(SinkLog* log) : log_(*log) {}
  void Emit(uint32_t, uint32_t) override { ++log_.emits; }
  void OnComplete(const JoinResult& result) override {
    log_.last_status = result.status;
    ++log_.completions;
  }

 private:
  SinkLog& log_;
};

class EngineCancelTest : public ::testing::Test {
 protected:
  Dataset small_ = GenerateSynthetic(Distribution::kClustered, 4000, 61);
  Dataset large_ = GenerateSynthetic(Distribution::kClustered, 8000, 62);
};

TEST_F(EngineCancelTest, CancelWhileQueuedCompletesPromptlyWithoutExecuting) {
  EngineOptions options;
  options.threads = 1;  // one blocker saturates the pool
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);

  std::promise<void> release;
  RequestHandle blocker = engine.Submit(
      {a, b, 2.0f},
      std::make_unique<BlockingSink>(release.get_future().share()));

  SinkLog log;
  RequestHandle victim =
      engine.Submit({a, b, 2.0f}, std::make_unique<LoggingSink>(&log));
  EXPECT_EQ(victim.phase(), RequestPhase::kQueued);

  // Cancel() of a queued request delivers the result synchronously: the
  // future is ready the moment the call returns, with the worker still
  // parked on the blocker.
  EXPECT_TRUE(victim.Cancel());
  EXPECT_TRUE(victim.cancel_requested());
  EXPECT_EQ(victim.future().wait_for(std::chrono::milliseconds(0)),
            std::future_status::ready);
  EXPECT_EQ(victim.phase(), RequestPhase::kCancelled);
  const JoinResult result = victim.Get();
  EXPECT_TRUE(result.cancelled());
  EXPECT_EQ(result.status, RequestStatus::kCancelled);
  EXPECT_TRUE(result.error.empty());

  // The sink protocol held: one OnComplete (on the cancelling thread), no
  // pairs, cancelled status visible to the sink.
  EXPECT_EQ(log.completions.load(), 1);
  EXPECT_EQ(log.emits.load(), 0);
  EXPECT_EQ(log.last_status, RequestStatus::kCancelled);

  // A second cancel is a no-op.
  EXPECT_FALSE(victim.Cancel());

  release.set_value();
  EXPECT_TRUE(blocker.Get().ok());
  // The victim never executed: only the blocker touched the index cache.
  const IndexCache::Stats cache = engine.cache_stats();
  EXPECT_EQ(cache.hits + cache.misses, 1u);
}

TEST_F(EngineCancelTest, CancelDuringIndexBuildKeepsArtifactForOthers) {
  PhaseGate gate(RequestPhase::kBuildingIndex);
  EngineOptions options;
  options.threads = 1;
  options.phase_observer = gate.Observer();
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);
  const JoinRequest request{a, b, 2.0f};

  RequestHandle handle = engine.Submit(request);
  gate.WaitReached();
  EXPECT_EQ(handle.phase(), RequestPhase::kBuildingIndex);
  EXPECT_TRUE(handle.Cancel());
  gate.Release();

  // Index builds are shared artifacts: the build ran to completion, the
  // request still completed Cancelled at the build→execute boundary...
  const JoinResult cancelled = handle.Get();
  EXPECT_TRUE(cancelled.cancelled());
  EXPECT_EQ(cancelled.stats.results, 0u);

  // ...and the artifact it paid for serves the next request for free.
  CountingCollector out;
  const JoinResult warm = engine.Execute(request, out);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.index_cache_hit);
  EXPECT_GE(engine.cache_stats().hits, 1u);
}

TEST_F(EngineCancelTest, CancelMidExecuteCompletesWithinPromptBudget) {
  // A workload whose execute phase takes much longer than the promptness
  // budget, so an in-budget completion proves the cooperative early exit.
  const Dataset big_a = GenerateSynthetic(Distribution::kClustered, 60000, 63);
  const Dataset big_b = GenerateSynthetic(Distribution::kClustered, 120000, 64);

  PhaseGate gate(RequestPhase::kExecuting);
  EngineOptions options;
  options.threads = 1;
  options.phase_observer = gate.Observer();
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset("A", big_a);
  const DatasetHandle b = engine.RegisterDataset("B", big_b);

  const uint64_t recorded_before = engine.feedback().total_recorded();
  RequestHandle handle = engine.Submit({a, b, 2.0f});
  gate.WaitReached();
  EXPECT_EQ(handle.phase(), RequestPhase::kExecuting);
  EXPECT_TRUE(handle.Cancel());

  const auto released_at = std::chrono::steady_clock::now();
  gate.Release();
  const JoinResult result = handle.Get();
  const auto elapsed = std::chrono::steady_clock::now() - released_at;

  EXPECT_TRUE(result.cancelled());
  EXPECT_LT(elapsed, kPromptBudget);
  EXPECT_EQ(handle.phase(), RequestPhase::kCancelled);
  // Partial runs are not calibration evidence.
  EXPECT_EQ(engine.feedback().total_recorded(), recorded_before);

  // Other requests are unaffected: the worker is free again and the engine
  // serves normally.
  CountingCollector out;
  EXPECT_TRUE(engine.Execute({a, a, 0.5f}, out).ok());
}

// --- Engine-enforced deadlines (JoinRequest::deadline) ----------------------

TEST_F(EngineCancelTest, ExpiredDeadlineCancelsWithoutAnyCancelCall) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  JoinRequest request{a, a, 1.0f};
  request.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  // Nobody calls Cancel and nobody has to: the engine's own boundary
  // checks see the passed deadline.
  const JoinResult result = engine.Submit(request).Get();
  EXPECT_TRUE(result.cancelled());
}

TEST_F(EngineCancelTest, DeadlineHoldsWhenCallerAbandonsTheHandle) {
  // The worker is parked in the planning phase (entered unconditionally
  // right after the claim, so the park cannot be raced by the deadline);
  // the caller abandons the handle while it is parked. Once the deadline
  // passes, the engine's own boundary check must stop the run — observed
  // through the sink, which the engine always completes.
  PhaseGate gate(RequestPhase::kPlanning);
  EngineOptions options;
  options.threads = 1;
  options.phase_observer = gate.Observer();
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset("small", small_);

  SinkLog log;
  JoinRequest request{a, a, 1.0f};
  request.deadline = std::chrono::steady_clock::now() + kPromptBudget;
  {
    RequestHandle handle =
        engine.Submit(request, std::make_unique<LoggingSink>(&log));
    gate.WaitReached();
    // Abandon: the handle dies here, with the worker parked pre-deadline.
  }
  std::this_thread::sleep_for(kPromptBudget + std::chrono::milliseconds(100));
  gate.Release();
  // The engine still owes the sink exactly one completion; the deadline
  // (now past) stops the request at the planned -> build boundary.
  const auto waited_from = std::chrono::steady_clock::now();
  while (log.completions.load() == 0 &&
         std::chrono::steady_clock::now() - waited_from <
             std::chrono::seconds(30)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(log.completions.load(), 1);
  EXPECT_EQ(log.last_status, RequestStatus::kCancelled);
}

TEST_F(EngineCancelTest, FutureDeadlineDoesNotDisturbFastRequests) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  JoinRequest request{a, a, 1.0f};
  request.deadline = std::chrono::steady_clock::now() + std::chrono::hours(1);
  const JoinResult result = engine.Submit(request).Get();
  EXPECT_TRUE(result.ok()) << result.error;
  EXPECT_GT(result.stats.results, 0u);
}

TEST_F(EngineCancelTest, PreEpochDeadlineCountsAsExpiredNotAsNone) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  JoinRequest request{a, a, 1.0f};
  // time_point::min() is before the steady-clock epoch; it must behave as
  // an expired deadline, not silently disable the timeout.
  request.deadline = std::chrono::steady_clock::time_point::min();
  const JoinResult result = engine.Submit(request).Get();
  EXPECT_TRUE(result.cancelled());
}

TEST(CancellationDeadlineTest, TokenReportsStopOnceDeadlinePasses) {
  CancellationSource source;
  const CancellationToken token = source.token();
  EXPECT_FALSE(token.stop_requested());
  source.SetDeadline(std::chrono::steady_clock::now() +
                     std::chrono::hours(1));
  EXPECT_FALSE(token.stop_requested());
  source.SetDeadline(std::chrono::steady_clock::now() -
                     std::chrono::milliseconds(1));
  EXPECT_TRUE(token.stop_requested());
  EXPECT_TRUE(source.stop_requested());
  // RequestStop still reports "first" correctly after a deadline expiry.
  EXPECT_TRUE(source.RequestStop());
  EXPECT_FALSE(source.RequestStop());
}

TEST_F(EngineCancelTest, CancelAfterCompletionIsANoOp) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  RequestHandle handle = engine.Submit({a, a, 1.0f});
  const JoinResult result = handle.Get();
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(handle.phase(), RequestPhase::kCompleted);
  EXPECT_FALSE(handle.Cancel());
  EXPECT_EQ(handle.phase(), RequestPhase::kCompleted);
}

TEST_F(EngineCancelTest, InvalidHandleIsInertlyCancelled) {
  RequestHandle handle;
  EXPECT_FALSE(handle.valid());
  EXPECT_FALSE(handle.Cancel());
  EXPECT_FALSE(handle.cancel_requested());
  EXPECT_EQ(handle.phase(), RequestPhase::kCompleted);
}

TEST_F(EngineCancelTest, BatchCancelAllCompletesEveryFuturePromptly) {
  EngineOptions options;
  options.threads = 1;
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);

  std::promise<void> release;
  RequestHandle blocker = engine.Submit(
      {a, b, 2.0f},
      std::make_unique<BlockingSink>(release.get_future().share()));

  const std::vector<JoinRequest> requests = {
      {a, b, 2.0f}, {b, a, 1.0f}, {a, a, 0.5f}, {a, b, 1.0f}};
  BatchHandle batch = engine.SubmitBatch(requests);
  EXPECT_EQ(batch.CancelAll(), requests.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    EXPECT_EQ(batch[i].future().wait_for(std::chrono::milliseconds(0)),
              std::future_status::ready)
        << i;
  }
  for (const JoinResult& result : batch.GetAll()) {
    EXPECT_TRUE(result.cancelled());
  }

  release.set_value();
  EXPECT_TRUE(blocker.Get().ok());
}

TEST_F(EngineCancelTest, PerRequestCancelLeavesBatchSiblingsIntact) {
  EngineOptions options;
  options.threads = 1;
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);

  std::promise<void> release;
  RequestHandle blocker = engine.Submit(
      {a, b, 2.0f},
      std::make_unique<BlockingSink>(release.get_future().share()));

  const std::vector<JoinRequest> requests = {
      {a, a, 0.5f}, {a, b, 2.0f}, {b, a, 1.0f}};
  BatchHandle batch = engine.SubmitBatch(requests);
  EXPECT_TRUE(batch[1].Cancel());
  release.set_value();

  EXPECT_TRUE(batch[0].Get().ok());
  EXPECT_TRUE(batch[1].Get().cancelled());
  EXPECT_TRUE(batch[2].Get().ok());
  EXPECT_TRUE(blocker.Get().ok());
}

// The TSan/ASan workhorse: cancels racing execution and completion from
// another thread, across every interleaving the scheduler produces. Every
// future must complete with kOk or kCancelled — never hang, never error —
// and the engine must stay fully usable.
TEST_F(EngineCancelTest, RacingCancelAgainstCompletionStress) {
  EngineOptions options;
  options.threads = 4;
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);

  constexpr int kRounds = 32;
  int ok_count = 0;
  int cancelled_count = 0;
  for (int round = 0; round < kRounds; ++round) {
    RequestHandle handle = engine.Submit({a, b, 1.0f + (round % 3) * 0.5f});
    std::thread canceller;
    if (round % 4 != 3) {  // every 4th round runs to completion uncancelled
      canceller = std::thread([&handle, round] {
        // Vary the race window: immediate cancel, or after a short spin.
        volatile int sink = 0;
        for (int spin = 0; spin < (round % 4) * 20000; ++spin) sink = spin;
        (void)sink;
        handle.Cancel();
      });
    }
    const JoinResult result = handle.Get();
    if (canceller.joinable()) canceller.join();
    ASSERT_TRUE(result.ok() || result.cancelled())
        << "round " << round << ": " << result.error;
    if (result.ok()) ++ok_count;
    if (result.cancelled()) ++cancelled_count;
    if (round % 4 == 3) {
      EXPECT_TRUE(result.ok()) << round;
    }
  }
  EXPECT_EQ(ok_count + cancelled_count, kRounds);

  CountingCollector out;
  EXPECT_TRUE(engine.Execute({a, b, 2.0f}, out).ok());
}

TEST(RequestLifecycleNamesTest, StableNamesForTelemetry) {
  EXPECT_STREQ(RequestPhaseName(RequestPhase::kQueued), "queued");
  EXPECT_STREQ(RequestPhaseName(RequestPhase::kBuildingIndex),
               "building-index");
  EXPECT_STREQ(RequestPhaseName(RequestPhase::kCancelled), "cancelled");
  EXPECT_STREQ(RequestStatusName(RequestStatus::kOk), "ok");
  EXPECT_STREQ(RequestStatusName(RequestStatus::kCancelled), "cancelled");
  EXPECT_STREQ(RequestStatusName(RequestStatus::kError), "error");
}

}  // namespace
}  // namespace touch
