#include "index/str.h"

#include <gtest/gtest.h>

#include <numeric>

#include "datagen/distributions.h"
#include "test_util.h"

namespace touch {
namespace {

TEST(StrTest, EmptyInput) {
  const StrPartitioning p = StrPartition({}, 8);
  EXPECT_EQ(p.NumBuckets(), 0u);
  EXPECT_TRUE(p.order.empty());
}

TEST(StrTest, SingleObject) {
  const Dataset boxes = {MakeBox(0, 0, 0, 1, 1, 1)};
  const StrPartitioning p = StrPartition(boxes, 8);
  ASSERT_EQ(p.NumBuckets(), 1u);
  EXPECT_EQ(p.Bucket(0).size(), 1u);
  EXPECT_EQ(p.Bucket(0)[0], 0u);
}

TEST(StrTest, OrderIsAPermutation) {
  const Dataset boxes = GenerateSynthetic(Distribution::kClustered, 1000, 1);
  const StrPartitioning p = StrPartition(boxes, 16);
  std::vector<uint32_t> sorted = p.order;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(StrTest, BucketSizesRespectCapacity) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 1000, 2);
  const StrPartitioning p = StrPartition(boxes, 16);
  size_t total = 0;
  for (size_t b = 0; b < p.NumBuckets(); ++b) {
    EXPECT_LE(p.Bucket(b).size(), 16u);
    EXPECT_GE(p.Bucket(b).size(), 1u);
    total += p.Bucket(b).size();
  }
  EXPECT_EQ(total, boxes.size());
}

TEST(StrTest, BucketCountNearOptimal) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 1000, 3);
  const StrPartitioning p = StrPartition(boxes, 10);
  // ceil(1000/10) = 100 ideal buckets; STR's slab rounding may add a few.
  EXPECT_GE(p.NumBuckets(), 100u);
  EXPECT_LE(p.NumBuckets(), 130u);
}

TEST(StrTest, BucketBeginIsMonotone) {
  const Dataset boxes = GenerateSynthetic(Distribution::kGaussian, 777, 4);
  const StrPartitioning p = StrPartition(boxes, 8);
  for (size_t i = 1; i < p.bucket_begin.size(); ++i) {
    EXPECT_LT(p.bucket_begin[i - 1], p.bucket_begin[i]);
  }
  EXPECT_EQ(p.bucket_begin.back(), boxes.size());
}

TEST(StrTest, DeterministicOnTies) {
  // All-identical boxes: ordering must still be a deterministic permutation.
  const Dataset boxes(100, MakeBox(1, 1, 1, 2, 2, 2));
  const StrPartitioning p1 = StrPartition(boxes, 7);
  const StrPartitioning p2 = StrPartition(boxes, 7);
  EXPECT_EQ(p1.order, p2.order);
  EXPECT_EQ(p1.bucket_begin, p2.bucket_begin);
}

TEST(StrTest, TilingBeatsRandomBucketsOnMbrVolume) {
  // STR's point: spatially grouped buckets have far smaller MBRs than
  // arbitrary buckets of the same size.
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 2000, 5);
  const size_t bucket = 20;
  const StrPartitioning p = StrPartition(boxes, bucket);
  double str_volume = 0;
  for (size_t b = 0; b < p.NumBuckets(); ++b) {
    str_volume += BucketMbr(boxes, p.Bucket(b)).Volume();
  }
  // Random (insertion-order) buckets.
  std::vector<uint32_t> ids(boxes.size());
  std::iota(ids.begin(), ids.end(), 0);
  double random_volume = 0;
  for (size_t begin = 0; begin < ids.size(); begin += bucket) {
    const size_t end = std::min(ids.size(), begin + bucket);
    random_volume +=
        BucketMbr(boxes, std::span<const uint32_t>(ids).subspan(
                             begin, end - begin))
            .Volume();
  }
  EXPECT_LT(str_volume, random_volume / 10);
}

TEST(StrTest, BucketMbrEnclosesAllMembers) {
  const Dataset boxes = GenerateSynthetic(Distribution::kClustered, 500, 6);
  const StrPartitioning p = StrPartition(boxes, 32);
  for (size_t b = 0; b < p.NumBuckets(); ++b) {
    const Box mbr = BucketMbr(boxes, p.Bucket(b));
    for (uint32_t id : p.Bucket(b)) {
      EXPECT_TRUE(Contains(mbr, boxes[id]));
    }
  }
}

TEST(StrTest, BucketSizeOneYieldsOneBucketPerObject) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 50, 7);
  const StrPartitioning p = StrPartition(boxes, 1);
  EXPECT_EQ(p.NumBuckets(), boxes.size());
}

TEST(StrTest, BucketSizeLargerThanInputYieldsSingleBucket) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 50, 8);
  const StrPartitioning p = StrPartition(boxes, 1000);
  EXPECT_EQ(p.NumBuckets(), 1u);
  EXPECT_EQ(p.Bucket(0).size(), 50u);
}

TEST(StrTest, BucketSizeZeroIsTreatedAsOne) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 10, 9);
  const StrPartitioning p = StrPartition(boxes, 0);
  EXPECT_EQ(p.NumBuckets(), 10u);
}

}  // namespace
}  // namespace touch
