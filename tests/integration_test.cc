// Cross-module integration tests: the full pipelines a downstream user runs,
// wired end to end — generate → persist → reload → filter → refine, the
// partitioned driver around parallel TOUCH, prebuilt-index joins feeding
// refinement, and the estimator planning a real join. Each test crosses at
// least three modules; unit behaviour is covered elsewhere.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "core/factory.h"
#include "core/partitioned.h"
#include "datagen/distributions.h"
#include "datagen/neuro.h"
#include "estimate/selectivity.h"
#include "io/dataset_io.h"
#include "refine/refine.h"
#include "test_util.h"
#include "util/rng.h"

namespace touch {
namespace {

using PairSet = std::set<IdPair>;

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/touch_integration_" + name;
}

TEST(IntegrationTest, GeneratePersistReloadJoinRefine) {
  // The full neuroscience workflow: grow tissue, write it to disk, read it
  // back, run the filter+refine distance join, and cross-check the synapse
  // set against an in-memory run on the original model.
  NeuroOptions opt;
  opt.neurons = 6;
  opt.segments_per_branch = 12;
  const NeuroModel model = GenerateNeuroscience(opt, 211);
  const std::string path = TempPath("model.bin");
  ASSERT_TRUE(WriteNeuroModelBinary(path, model).ok);

  NeuroModel reloaded;
  ASSERT_TRUE(ReadNeuroModelBinary(path, &reloaded).ok);
  std::remove(path.c_str());
  ASSERT_EQ(reloaded.axons.size(), model.axons.size());

  constexpr double kEpsilon = 6.0;
  TouchJoin join;
  VectorCollector original_out;
  CylinderDistanceJoin(join, model.axons, model.dendrites, kEpsilon,
                       original_out);
  VectorCollector reloaded_out;
  const RefineStats stats = CylinderDistanceJoin(
      join, reloaded.axons, reloaded.dendrites, kEpsilon, reloaded_out);

  EXPECT_EQ(PairSet(original_out.pairs().begin(), original_out.pairs().end()),
            PairSet(reloaded_out.pairs().begin(), reloaded_out.pairs().end()));
  EXPECT_GT(stats.confirmed, 0u);
}

TEST(IntegrationTest, CsvInterchangeFeedsEveryAlgorithm) {
  // Boxes written as CSV (the spreadsheet-facing format) and read back must
  // give every algorithm the identical problem.
  const Dataset a = GenerateSynthetic(Distribution::kClustered, 400, 212);
  const Dataset b = GenerateSynthetic(Distribution::kClustered, 700, 213);
  const std::string path_a = TempPath("a.csv");
  const std::string path_b = TempPath("b.csv");
  ASSERT_TRUE(WriteBoxesCsv(path_a, a).ok);
  ASSERT_TRUE(WriteBoxesCsv(path_b, b).ok);
  Dataset a2;
  Dataset b2;
  ASSERT_TRUE(ReadBoxesCsv(path_a, &a2).ok);
  ASSERT_TRUE(ReadBoxesCsv(path_b, &b2).ok);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());

  Dataset enlarged = a2;
  for (Box& box : enlarged) box = box.Enlarged(10.0f);
  const auto oracle = OracleJoin(enlarged, b2);
  ASSERT_FALSE(oracle.empty());
  for (const std::string& name : AllAlgorithmNames()) {
    if (name == "nl") continue;  // the oracle itself
    std::unique_ptr<SpatialJoinAlgorithm> algorithm = MakeAlgorithm(name);
    ASSERT_NE(algorithm, nullptr) << name;
    EXPECT_EQ(RunJoinSorted(*algorithm, enlarged, b2), oracle) << name;
  }
}

TEST(IntegrationTest, PartitionedParallelTouchWithRefinement) {
  // Partitioned driver (spatial slabs, worker threads) wrapping
  // multi-threaded TOUCH, with streaming refinement on the collector side —
  // all three concurrency/composition features at once.
  Rng rng(214);
  std::vector<Sphere> spheres_a;
  std::vector<Sphere> spheres_b;
  for (int i = 0; i < 600; ++i) {
    spheres_a.emplace_back(Vec3(rng.NextFloat() * 300, rng.NextFloat() * 300,
                                rng.NextFloat() * 300),
                           1.0f + rng.NextFloat());
    spheres_b.emplace_back(Vec3(rng.NextFloat() * 300, rng.NextFloat() * 300,
                                rng.NextFloat() * 300),
                           1.0f + rng.NextFloat());
  }
  constexpr double kEpsilon = 15.0;

  PairSet expected;
  for (uint32_t i = 0; i < spheres_a.size(); ++i) {
    for (uint32_t j = 0; j < spheres_b.size(); ++j) {
      if (SpheresWithinDistance(spheres_a[i], spheres_b[j], kEpsilon)) {
        expected.insert({i, j});
      }
    }
  }
  ASSERT_FALSE(expected.empty());

  Dataset boxes_a;
  Dataset boxes_b;
  for (const Sphere& s : spheres_a) boxes_a.push_back(s.Mbr());
  for (const Sphere& s : spheres_b) boxes_b.push_back(s.Mbr());

  VectorCollector confirmed;
  RefiningCollector refine(
      [&](uint32_t i, uint32_t j) {
        return SpheresWithinDistance(spheres_a[i], spheres_b[j], kEpsilon);
      },
      confirmed);

  PartitionedOptions popt;
  popt.partitions = 6;
  popt.threads = 3;
  AlgorithmConfig config;
  config.touch.threads = 2;
  PartitionedDistanceJoin(
      [&] { return MakeAlgorithm("touch", config); }, boxes_a, boxes_b,
      static_cast<float>(kEpsilon), popt, refine);

  EXPECT_EQ(PairSet(confirmed.pairs().begin(), confirmed.pairs().end()),
            expected);
  EXPECT_EQ(refine.stats().confirmed, expected.size());
}

TEST(IntegrationTest, PrebuiltIndexSharedAcrossJoins) {
  // One R-tree on A reused for several probe datasets via the section-4.3
  // conversion: the amortized-build pattern of a long-lived service.
  const Dataset a = GenerateSynthetic(Distribution::kGaussian, 1200, 215);
  Dataset enlarged = a;
  for (Box& box : enlarged) box = box.Enlarged(8.0f);
  const RTree index(enlarged, 32, 4);
  const TouchTree tree = TouchTree::FromRTree(index);

  TouchJoin join;
  for (uint64_t seed = 300; seed < 304; ++seed) {
    const Dataset b = GenerateSynthetic(Distribution::kGaussian, 900, seed);
    VectorCollector out;
    const JoinStats stats = join.JoinWithPrebuiltTree(tree, enlarged, b, out);
    auto pairs = out.pairs();
    std::sort(pairs.begin(), pairs.end());
    EXPECT_EQ(pairs, OracleJoin(enlarged, b)) << "seed " << seed;
    EXPECT_EQ(stats.build_seconds, 0.0);
  }
}

TEST(IntegrationTest, EstimatorGuidesRealJoin) {
  // The planner loop: estimate, choose order, run, verify the estimate was
  // in the advertised 3x band of reality.
  const Dataset a = GenerateSynthetic(Distribution::kGaussian, 3000, 216);
  const Dataset b = GenerateSynthetic(Distribution::kGaussian, 6000, 217);
  constexpr float kEpsilon = 5.0f;

  const SelectivityEstimator estimator(a, b);
  const double predicted = estimator.Estimate(kEpsilon).expected_results;

  TouchOptions opt;
  opt.join_order = SelectivityEstimator::ShouldBuildOnA(a, b)
                       ? TouchOptions::JoinOrder::kBuildOnA
                       : TouchOptions::JoinOrder::kBuildOnB;
  TouchJoin join(opt);
  CountingCollector out;
  const JoinStats stats = DistanceJoin(join, a, b, kEpsilon, out);
  ASSERT_GT(stats.results, 0u);
  EXPECT_GT(predicted, static_cast<double>(stats.results) / 3.0);
  EXPECT_LT(predicted, static_cast<double>(stats.results) * 3.0);
}

TEST(IntegrationTest, BinaryDatasetsSurviveAlgorithmRoundRobin) {
  // Write with one epsilon-enlarged dataset, then confirm a chain of
  // different algorithms (one per family) all agree on the reloaded data.
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 800, 218);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 1200, 219);
  const std::string path = TempPath("roundrobin.bin");
  ASSERT_TRUE(WriteBoxesBinary(path, b).ok);
  Dataset reloaded;
  ASSERT_TRUE(ReadBoxesBinary(path, &reloaded).ok);
  std::remove(path.c_str());

  std::vector<IdPair> reference;
  bool first = true;
  for (const std::string name :
       {"touch", "pbsm-50", "rtree", "seeded", "octree", "rplus", "nbps-25"}) {
    std::unique_ptr<SpatialJoinAlgorithm> algorithm = MakeAlgorithm(name);
    VectorCollector out;
    DistanceJoin(*algorithm, a, reloaded, 12.0f, out);
    auto pairs = out.pairs();
    std::sort(pairs.begin(), pairs.end());
    if (first) {
      reference = pairs;
      ASSERT_FALSE(reference.empty());
      first = false;
    } else {
      EXPECT_EQ(pairs, reference) << name;
    }
  }
}

}  // namespace
}  // namespace touch
