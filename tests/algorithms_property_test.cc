// The cross-algorithm oracle suite: every join algorithm must produce
// exactly the nested-loop join's result set (sorted pair-vector equality, not
// just counts) on every combination of distribution, cardinality ratio and
// distance threshold. This is the library's equivalent of the paper's
// correctness theorem (section 4.6) checked empirically for all algorithms.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "core/factory.h"
#include "datagen/distributions.h"
#include "join/algorithm.h"
#include "test_util.h"

namespace touch {
namespace {

struct PropertyCase {
  std::string algorithm;
  Distribution distribution;
  size_t size_a;
  size_t size_b;
  float epsilon;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const PropertyCase& c = info.param;
  std::string name = c.algorithm + "_";
  name += DistributionName(c.distribution);
  name += "_a" + std::to_string(c.size_a) + "_b" + std::to_string(c.size_b);
  name += "_eps" + std::to_string(static_cast<int>(c.epsilon));
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

class JoinPropertyTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(JoinPropertyTest, MatchesNestedLoopOracle) {
  const PropertyCase& c = GetParam();
  // A compact space and generous object sizes so that even the smallest
  // configuration produces a non-empty result set to compare.
  SyntheticOptions opt;
  opt.space = 200.0f;
  opt.max_side = 4.0f;
  Dataset a = GenerateSynthetic(c.distribution, c.size_a, /*seed=*/1001, opt);
  const Dataset b =
      GenerateSynthetic(c.distribution, c.size_b, /*seed=*/2002, opt);
  for (Box& box : a) box = box.Enlarged(c.epsilon);

  const auto oracle = OracleJoin(a, b);
  ASSERT_FALSE(oracle.empty()) << "degenerate case: no results";

  std::unique_ptr<SpatialJoinAlgorithm> algorithm =
      MakeAlgorithm(c.algorithm);
  ASSERT_NE(algorithm, nullptr);
  JoinStats stats;
  const auto pairs = RunJoinSorted(*algorithm, a, b, &stats);
  EXPECT_EQ(pairs, oracle);
  EXPECT_EQ(stats.results, oracle.size());
}

std::vector<PropertyCase> AllCases() {
  std::vector<PropertyCase> cases;
  // PBSM resolutions are chosen for the 200-unit test space: cell edges of
  // 5, 2 and ~28 units (resolution 500 over this space would replicate each
  // enlarged box into ~10^5 cells and thrash memory for no extra coverage).
  const std::vector<std::string> algorithms = {
      "ps",     "pbsm-40", "pbsm-100", "pbsm-7",        "s3",
      "sssj",   "inl",     "rtree",    "rtree-hilbert", "rtree-tgs", "rtree-guttman",
      "rtree-rstar", "rplus", "seeded",
      "octree", "nbps-25", "touch"};
  const Distribution distributions[] = {
      Distribution::kUniform, Distribution::kGaussian,
      Distribution::kClustered};
  const std::pair<size_t, size_t> sizes[] = {{200, 200}, {100, 700}, {700, 100}};
  const float epsilons[] = {5.0f, 25.0f};
  for (const auto& algorithm : algorithms) {
    for (const Distribution distribution : distributions) {
      for (const auto& [size_a, size_b] : sizes) {
        for (const float epsilon : epsilons) {
          cases.push_back(
              PropertyCase{algorithm, distribution, size_a, size_b, epsilon});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllAlgorithms, JoinPropertyTest,
                         ::testing::ValuesIn(AllCases()), CaseName);

// TOUCH parameter grid: the oracle equality must hold for every combination
// of its tuning knobs, not just the defaults.
struct TouchParamCase {
  size_t fanout;
  size_t partitions;
  LocalJoinStrategy local_join;
  TouchOptions::JoinOrder join_order;
};

std::string TouchCaseName(
    const ::testing::TestParamInfo<TouchParamCase>& info) {
  const TouchParamCase& c = info.param;
  std::string name = "f" + std::to_string(c.fanout) + "_p" +
                     std::to_string(c.partitions) + "_";
  name += LocalJoinStrategyName(c.local_join);
  name += c.join_order == TouchOptions::JoinOrder::kAuto        ? "_auto"
          : c.join_order == TouchOptions::JoinOrder::kBuildOnA ? "_onA"
                                                               : "_onB";
  for (char& ch : name) {
    if (ch == '-') ch = '_';
  }
  return name;
}

class TouchParamTest : public ::testing::TestWithParam<TouchParamCase> {};

TEST_P(TouchParamTest, MatchesNestedLoopOracle) {
  const TouchParamCase& c = GetParam();
  SyntheticOptions gen;
  gen.max_side = 3.0f;
  Dataset a = GenerateSynthetic(Distribution::kClustered, 400, 42, gen);
  const Dataset b = GenerateSynthetic(Distribution::kClustered, 600, 43, gen);
  for (Box& box : a) box = box.Enlarged(10.0f);

  TouchOptions opt;
  opt.fanout = c.fanout;
  opt.partitions = c.partitions;
  opt.local_join = c.local_join;
  opt.join_order = c.join_order;
  TouchJoin join(opt);
  EXPECT_EQ(RunJoinSorted(join, a, b), OracleJoin(a, b));
}

std::vector<TouchParamCase> TouchParameterGrid() {
  std::vector<TouchParamCase> cases;
  for (const size_t fanout : {2u, 5u, 16u}) {
    for (const size_t partitions : {1u, 32u, 4096u}) {
      for (const LocalJoinStrategy local_join :
           {LocalJoinStrategy::kGrid, LocalJoinStrategy::kPlaneSweep}) {
        for (const TouchOptions::JoinOrder join_order :
             {TouchOptions::JoinOrder::kAuto,
              TouchOptions::JoinOrder::kBuildOnA,
              TouchOptions::JoinOrder::kBuildOnB}) {
          cases.push_back(
              TouchParamCase{fanout, partitions, local_join, join_order});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(ParameterGrid, TouchParamTest,
                         ::testing::ValuesIn(TouchParameterGrid()),
                         TouchCaseName);

}  // namespace
}  // namespace touch
