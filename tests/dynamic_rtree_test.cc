#include "index/dynamic_rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "datagen/distributions.h"
#include "test_util.h"
#include "util/rng.h"

namespace touch {
namespace {

DynamicRTree::Options MakeOptions(RTreeVariant variant, uint32_t max_entries,
                                  uint32_t min_entries) {
  DynamicRTree::Options opt;
  opt.variant = variant;
  opt.max_entries = max_entries;
  opt.min_entries = min_entries;
  return opt;
}

std::vector<uint32_t> QuerySorted(const DynamicRTree& tree, const Box& query) {
  std::vector<uint32_t> got;
  tree.Query(query, [&](uint32_t id, const Box&) { got.push_back(id); });
  std::sort(got.begin(), got.end());
  return got;
}

std::vector<uint32_t> BruteForce(const Dataset& boxes, const Box& query) {
  std::vector<uint32_t> expected;
  for (uint32_t i = 0; i < boxes.size(); ++i) {
    if (Intersects(boxes[i], query)) expected.push_back(i);
  }
  return expected;
}

// Both variants must satisfy the same contract; run the core battery on each.
class DynamicRTreeVariantTest : public ::testing::TestWithParam<RTreeVariant> {
 protected:
  DynamicRTree MakeTree(uint32_t max_entries = 16, uint32_t min_entries = 6) {
    return DynamicRTree(MakeOptions(GetParam(), max_entries, min_entries));
  }
};

TEST_P(DynamicRTreeVariantTest, EmptyTreeBasics) {
  DynamicRTree tree = MakeTree();
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0);
  EXPECT_TRUE(tree.bounds().IsEmpty());
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_TRUE(QuerySorted(tree, MakeBox(0, 0, 0, 1, 1, 1)).empty());
  EXPECT_FALSE(tree.Remove(0, MakeBox(0, 0, 0, 1, 1, 1)));
}

TEST_P(DynamicRTreeVariantTest, InsertThenQueryMatchesBruteForce) {
  const Dataset boxes = GenerateSynthetic(Distribution::kClustered, 3000, 41);
  DynamicRTree tree = MakeTree();
  for (uint32_t i = 0; i < boxes.size(); ++i) tree.Insert(i, boxes[i]);
  ASSERT_EQ(tree.size(), boxes.size());
  ASSERT_TRUE(tree.CheckInvariants());

  Rng rng(42);
  for (int q = 0; q < 60; ++q) {
    const Box query = CenteredBox(rng.NextFloat() * 1000.0f,
                                  rng.NextFloat() * 1000.0f,
                                  rng.NextFloat() * 1000.0f, 25.0f);
    EXPECT_EQ(QuerySorted(tree, query), BruteForce(boxes, query))
        << "query " << q;
  }
}

TEST_P(DynamicRTreeVariantTest, InvariantsHoldThroughoutInsertion) {
  const Dataset boxes = GenerateSynthetic(Distribution::kGaussian, 600, 43);
  DynamicRTree tree = MakeTree(8, 3);
  for (uint32_t i = 0; i < boxes.size(); ++i) {
    tree.Insert(i, boxes[i]);
    if (i % 37 == 0) {
      ASSERT_TRUE(tree.CheckInvariants()) << "after insert " << i;
    }
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_GE(tree.height(), 2);
}

TEST_P(DynamicRTreeVariantTest, RemoveDeletesExactlyTheEntry) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 500, 44);
  DynamicRTree tree = MakeTree(8, 3);
  for (uint32_t i = 0; i < boxes.size(); ++i) tree.Insert(i, boxes[i]);

  // Remove every third entry and verify queries reflect it.
  std::vector<bool> removed(boxes.size(), false);
  for (uint32_t i = 0; i < boxes.size(); i += 3) {
    EXPECT_TRUE(tree.Remove(i, boxes[i])) << i;
    removed[i] = true;
  }
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), boxes.size() - (boxes.size() + 2) / 3);

  const Box everything = MakeBox(-1e6f, -1e6f, -1e6f, 1e6f, 1e6f, 1e6f);
  const std::vector<uint32_t> got = QuerySorted(tree, everything);
  std::vector<uint32_t> expected;
  for (uint32_t i = 0; i < boxes.size(); ++i) {
    if (!removed[i]) expected.push_back(i);
  }
  EXPECT_EQ(got, expected);

  // Removing again fails; removing with the wrong box fails.
  EXPECT_FALSE(tree.Remove(0, boxes[0]));
  EXPECT_FALSE(tree.Remove(1, boxes[2]));
}

TEST_P(DynamicRTreeVariantTest, DrainToEmptyAndReuse) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 300, 45);
  DynamicRTree tree = MakeTree(6, 2);
  for (uint32_t i = 0; i < boxes.size(); ++i) tree.Insert(i, boxes[i]);
  for (uint32_t i = 0; i < boxes.size(); ++i) {
    ASSERT_TRUE(tree.Remove(i, boxes[i])) << i;
    if (i % 29 == 0) ASSERT_TRUE(tree.CheckInvariants());
  }
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0);

  // The drained tree accepts new entries.
  for (uint32_t i = 0; i < 100; ++i) tree.Insert(i, boxes[i]);
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_TRUE(tree.CheckInvariants());
}

TEST_P(DynamicRTreeVariantTest, DuplicateIdsAndIdenticalBoxesSupported) {
  DynamicRTree tree = MakeTree(4, 2);
  const Box box = CenteredBox(5, 5, 5);
  for (int i = 0; i < 50; ++i) tree.Insert(7, box);
  EXPECT_EQ(tree.size(), 50u);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(QuerySorted(tree, box).size(), 50u);
  // Each Remove takes out exactly one copy.
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(tree.Remove(7, box));
  EXPECT_FALSE(tree.Remove(7, box));
  EXPECT_TRUE(tree.empty());
}

TEST_P(DynamicRTreeVariantTest, BoundsTrackInsertsAndRemoves) {
  DynamicRTree tree = MakeTree(4, 2);
  tree.Insert(0, MakeBox(0, 0, 0, 1, 1, 1));
  tree.Insert(1, MakeBox(100, 100, 100, 101, 101, 101));
  EXPECT_EQ(tree.bounds(), MakeBox(0, 0, 0, 101, 101, 101));
  EXPECT_TRUE(tree.Remove(1, MakeBox(100, 100, 100, 101, 101, 101)));
  EXPECT_EQ(tree.bounds(), MakeBox(0, 0, 0, 1, 1, 1));
}

TEST_P(DynamicRTreeVariantTest, QueryCountsComparisons) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 400, 46);
  DynamicRTree tree(MakeOptions(GetParam(), 16, 6));
  for (uint32_t i = 0; i < boxes.size(); ++i) tree.Insert(i, boxes[i]);
  JoinStats stats;
  tree.Query(CenteredBox(500, 500, 500, 50.0f), [](uint32_t, const Box&) {},
             &stats);
  EXPECT_GT(stats.node_comparisons, 0u);
  // A selective query must not scan everything.
  EXPECT_LT(stats.comparisons, boxes.size());
}

INSTANTIATE_TEST_SUITE_P(Variants, DynamicRTreeVariantTest,
                         ::testing::Values(RTreeVariant::kGuttman,
                                           RTreeVariant::kRStar),
                         [](const auto& info) {
                           return info.param == RTreeVariant::kGuttman
                                      ? "Guttman"
                                      : "RStar";
                         });

// --- R*-specific behaviour ---------------------------------------------------

TEST(RStarTest, ProducesLessSiblingOverlapThanGuttmanOnSkewedData) {
  // The R*-tree's entire purpose (and the reason the paper cites it) is
  // lower node overlap. Verify the heuristics actually deliver that on
  // clustered data.
  const Dataset boxes = GenerateSynthetic(Distribution::kClustered, 4000, 47);
  DynamicRTree guttman(MakeOptions(RTreeVariant::kGuttman, 16, 6));
  DynamicRTree rstar(MakeOptions(RTreeVariant::kRStar, 16, 6));
  for (uint32_t i = 0; i < boxes.size(); ++i) {
    guttman.Insert(i, boxes[i]);
    rstar.Insert(i, boxes[i]);
  }
  ASSERT_TRUE(guttman.CheckInvariants());
  ASSERT_TRUE(rstar.CheckInvariants());
  EXPECT_LT(rstar.TotalSiblingOverlapVolume(),
            guttman.TotalSiblingOverlapVolume());
}

TEST(RStarTest, ReinsertFractionZeroStillWorks) {
  DynamicRTree::Options opt = MakeOptions(RTreeVariant::kRStar, 8, 3);
  opt.reinsert_fraction = 0.0f;  // degenerates towards split-only behaviour
  DynamicRTree tree(opt);
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 400, 48);
  for (uint32_t i = 0; i < boxes.size(); ++i) tree.Insert(i, boxes[i]);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_EQ(tree.size(), boxes.size());
}

// --- Edge shapes --------------------------------------------------------------

TEST(DynamicRTreeEdgeTest, DegenerateAndHugeBoxes) {
  DynamicRTree tree(MakeOptions(RTreeVariant::kGuttman, 4, 2));
  // Zero-extent boxes (points).
  for (uint32_t i = 0; i < 30; ++i) {
    const float f = static_cast<float>(i);
    tree.Insert(i, MakeBox(f, f, f, f, f, f));
  }
  // One box covering everything.
  tree.Insert(1000, MakeBox(-1e5f, -1e5f, -1e5f, 1e5f, 1e5f, 1e5f));
  EXPECT_TRUE(tree.CheckInvariants());
  const auto got = QuerySorted(tree, MakeBox(4.5f, 4.5f, 4.5f, 5.5f, 5.5f, 5.5f));
  EXPECT_EQ(got, (std::vector<uint32_t>{5, 1000}));
}

TEST(DynamicRTreeEdgeTest, MinimalFanoutTwo) {
  DynamicRTree tree(MakeOptions(RTreeVariant::kGuttman, 2, 1));
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 200, 49);
  for (uint32_t i = 0; i < boxes.size(); ++i) tree.Insert(i, boxes[i]);
  EXPECT_TRUE(tree.CheckInvariants());
  EXPECT_GE(tree.height(), 7);  // a binary-ish tree over 200 items is tall
  const Box everything = MakeBox(-1e6f, -1e6f, -1e6f, 1e6f, 1e6f, 1e6f);
  EXPECT_EQ(QuerySorted(tree, everything).size(), boxes.size());
}

TEST(DynamicRTreeEdgeTest, MemoryGrowsWithContent) {
  DynamicRTree tree(MakeOptions(RTreeVariant::kGuttman, 16, 6));
  const size_t empty_bytes = tree.MemoryUsageBytes();
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 2000, 50);
  for (uint32_t i = 0; i < boxes.size(); ++i) tree.Insert(i, boxes[i]);
  EXPECT_GT(tree.MemoryUsageBytes(), empty_bytes + boxes.size() * sizeof(Box));
}

}  // namespace
}  // namespace touch
