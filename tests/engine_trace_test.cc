// End-to-end tracing and metrics through the engine: a traced request must
// produce a well-formed span tree (every span parented inside the trace),
// the legacy phase_observer must keep firing alongside the tracer, the
// engine sink wrapper must measure first_result_seconds for every
// algorithm, and a sharded cancelled request must still export a coherent
// tree — the hardest case, since its spans come from many worker threads
// that stopped at different phases.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "engine/engine.h"
#include "engine/sharded_engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace touch {
namespace {

struct TraceView {
  std::vector<SpanRecord> records;
  std::set<uint64_t> span_ids;
  std::map<std::string, int> names;

  explicit TraceView(const Tracer& tracer) : records(tracer.Snapshot()) {
    for (const SpanRecord& record : records) {
      span_ids.insert(record.span_id);
      ++names[record.name];
    }
  }

  const SpanRecord* Find(const std::string& name) const {
    for (const SpanRecord& record : records) {
      if (record.name == name) return &record;
    }
    return nullptr;
  }
};

/// Every record belongs to `trace_id` and parents onto a present span (or
/// is a root). This is the "well-formed span tree" acceptance predicate.
void ExpectWellFormed(const TraceView& view, uint64_t trace_id) {
  ASSERT_FALSE(view.records.empty());
  for (const SpanRecord& record : view.records) {
    EXPECT_EQ(record.trace_id, trace_id) << record.name;
    if (record.parent_id != 0) {
      EXPECT_TRUE(view.span_ids.count(record.parent_id))
          << record.name << " parents onto an absent span";
    }
  }
}

class EngineTraceTest : public ::testing::Test {
 protected:
  EngineOptions TracedOptions() {
    EngineOptions options;
    options.tracer = tracer_;
    options.metrics = metrics_;
    return options;
  }

  std::shared_ptr<Tracer> tracer_ = std::make_shared<Tracer>();
  std::shared_ptr<MetricsRegistry> metrics_ =
      std::make_shared<MetricsRegistry>();
  Dataset small_ = GenerateSynthetic(Distribution::kClustered, 4000, 61);
  Dataset large_ = GenerateSynthetic(Distribution::kClustered, 8000, 62);
};

TEST_F(EngineTraceTest, TracedRequestProducesARootedPhaseSpanTree) {
  QueryEngine engine(TracedOptions());
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);
  CountingCollector out;
  const JoinResult result = engine.Execute({a, b, 2.0f}, out);
  ASSERT_TRUE(result.ok()) << result.error;
  ASSERT_NE(result.trace_id, 0u);

  const TraceView view(*tracer_);
  ExpectWellFormed(view, result.trace_id);
  const SpanRecord* root = view.Find("request");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  // The root span carries the outcome.
  const auto has_attr = [&](const std::string& key, const std::string& val) {
    return std::find(root->attrs.begin(), root->attrs.end(),
                     SpanAttr{key, val}) != root->attrs.end();
  };
  EXPECT_TRUE(has_attr("status", "ok"));
  EXPECT_TRUE(has_attr("algorithm", result.plan.algorithm));

  // Lifecycle spans all hang off the root; phases appear as instants.
  for (const std::string name : {"queue-wait", "plan", "execute"}) {
    const SpanRecord* span = view.Find(name);
    ASSERT_NE(span, nullptr) << name;
    EXPECT_EQ(span->parent_id, root->span_id) << name;
  }
  EXPECT_GE(view.names.count("phase:planning") +
                view.names.count("phase:executing"),
            1u);
}

TEST_F(EngineTraceTest, PhaseObserverStillFiresAlongsideTheTracer) {
  // EngineOptions::phase_observer is now an adapter over the same phase
  // transitions the tracer records; both must see every transition.
  std::atomic<int> observed{0};
  EngineOptions options = TracedOptions();
  options.phase_observer = [&observed](RequestPhase) { ++observed; };
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  CountingCollector out;
  ASSERT_TRUE(engine.Execute({a, a, 1.0f}, out).ok());
  const TraceView view(*tracer_);
  int phase_instants = 0;
  for (const auto& [name, count] : view.names) {
    if (name.rfind("phase:", 0) == 0) phase_instants += count;
  }
  EXPECT_GT(observed.load(), 0);
  EXPECT_EQ(phase_instants, observed.load());
}

TEST_F(EngineTraceTest, FirstResultSecondsIsMeasuredForEveryAlgorithm) {
  // The engine's sink wrapper measures time-to-first-result generically —
  // not just for NBPS, which reports its own streaming-phase value.
  QueryEngine engine(TracedOptions());
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);
  for (const std::string name : {"touch", "inl", "ps", "pbsm-100"}) {
    CountingCollector out;
    const JoinResult result = engine.ExecuteFixed(name, {a, b, 2.0f}, out);
    ASSERT_TRUE(result.ok()) << name << ": " << result.error;
    ASSERT_GT(result.stats.results, 0u) << name;
    EXPECT_GT(result.stats.first_result_seconds, 0.0) << name;
    EXPECT_LE(result.stats.first_result_seconds, result.stats.total_seconds)
        << name;
  }
  // Each run fed the time-to-first-result histogram.
  EXPECT_EQ(engine.metrics()
                .histogram("touch_engine_first_result_seconds")
                .Count(),
            4u);
}

TEST_F(EngineTraceTest, EngineRunPopulatesTheMetricCatalog) {
  QueryEngine engine(TracedOptions());
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  CountingCollector out;
  ASSERT_TRUE(engine.Execute({a, a, 1.0f}, out).ok());
  MetricsRegistry& metrics = engine.metrics();
  EXPECT_EQ(&metrics, metrics_.get());
  EXPECT_EQ(
      metrics.counter("touch_engine_requests_total{status=\"ok\"}").Value(),
      1u);
  EXPECT_EQ(metrics.histogram("touch_engine_queue_wait_seconds").Count(), 1u);
  EXPECT_EQ(metrics.histogram("touch_engine_plan_seconds").Count(), 1u);
  EXPECT_EQ(metrics.histogram("touch_engine_execute_seconds").Count(), 1u);
  // Engine + cache + pool providers: the scrape surface the acceptance
  // criteria count ("at least 12 distinct metrics").
  EXPECT_GE(metrics.FamilyCount(), 12u);
}

TEST_F(EngineTraceTest, ShardedCancelledRequestYieldsWellFormedSpanTree) {
  EngineOptions options = TracedOptions();
  options.shards = 4;
  options.threads = 2;
  // Park every claimed pair at its kPlanning transition so the cancel
  // deterministically lands while pairs are mid-flight on worker threads.
  std::atomic<int> entered{0};
  std::atomic<bool> released{false};
  options.phase_observer = [&](RequestPhase phase) {
    if (phase != RequestPhase::kPlanning) return;
    entered.fetch_add(1);
    while (!released.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  ShardedQueryEngine engine(options);
  const DatasetHandle ha = engine.RegisterDataset("A", small_);
  const DatasetHandle hb = engine.RegisterDataset("B", large_);

  ShardedRequestHandle handle = engine.Submit({ha, hb, 2.0f});
  ASSERT_GT(handle.pair_count(), 0u);
  while (entered.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(handle.Cancel());
  released.store(true);
  const ShardedJoinResult result = handle.Get();
  EXPECT_EQ(result.merged.status, RequestStatus::kCancelled);
  ASSERT_NE(result.merged.trace_id, 0u);

  // One trace spans the sharded root, the scatter/gather phases, and every
  // per-pair engine request — including the cancellation instants — with
  // no orphan parents even though the pairs died mid-phase.
  const TraceView view(*tracer_);
  ExpectWellFormed(view, result.merged.trace_id);
  const SpanRecord* root = view.Find("sharded-request");
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(root->parent_id, 0u);
  const SpanRecord* scatter = view.Find("scatter");
  ASSERT_NE(scatter, nullptr);
  EXPECT_EQ(scatter->parent_id, root->span_id);
  const SpanRecord* gather = view.Find("gather");
  ASSERT_NE(gather, nullptr);
  EXPECT_EQ(gather->parent_id, root->span_id);
  // Every shard-pair request span parents onto the sharded root.
  ASSERT_EQ(view.names.at("request"), static_cast<int>(handle.pair_count()));
  for (const SpanRecord& record : view.records) {
    if (record.name == "request") {
      EXPECT_EQ(record.parent_id, root->span_id);
    }
  }
  EXPECT_GE(view.names.count("cancel-requested") +
                view.names.count("cancelled"),
            1u);
  // The cancellation also landed in the metric catalog.
  EXPECT_GE(metrics_
                ->counter("touch_engine_requests_total{status=\"cancelled\"}")
                .Value(),
            1u);
  EXPECT_EQ(metrics_->counter("touch_sharded_requests_total").Value(), 1u);
}

TEST_F(EngineTraceTest, ShardedOkRequestCoversPlanBuildExecuteGather) {
  EngineOptions options = TracedOptions();
  options.shards = 2;
  ShardedQueryEngine engine(options);
  const DatasetHandle ha = engine.RegisterDataset("A", small_);
  const DatasetHandle hb = engine.RegisterDataset("B", large_);
  CountingCollector out;
  const ShardedJoinResult result = engine.Execute({ha, hb, 2.0f}, out);
  ASSERT_TRUE(result.merged.ok()) << result.merged.error;
  const TraceView view(*tracer_);
  ExpectWellFormed(view, result.merged.trace_id);
  for (const std::string name :
       {"sharded-request", "scatter", "plan", "execute", "gather"}) {
    EXPECT_TRUE(view.names.count(name)) << name << " missing from trace";
  }
  EXPECT_GE(metrics_->counter("touch_sharded_pairs_executed_total").Value(),
            1u);
}

TEST_F(EngineTraceTest, UntracedEngineStillSetsFirstResultAndMetrics) {
  // tracer == nullptr must not disable the sink wrapper or the registry.
  EngineOptions options;
  options.metrics = metrics_;
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  CountingCollector out;
  const JoinResult result = engine.Execute({a, a, 1.0f}, out);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.trace_id, 0u);  // no tracer, no trace
  EXPECT_GT(result.stats.first_result_seconds, 0.0);
  EXPECT_EQ(
      metrics_->counter("touch_engine_requests_total{status=\"ok\"}").Value(),
      1u);
}

}  // namespace
}  // namespace touch
