// Property tests for the SoA slab builder and its aligned arena
// (core/overlap_kernel.h, util/simd.h): every coordinate array is 64-byte
// aligned, box reconstruction round-trips bit-exactly, tail padding can
// never produce phantom overlaps (even against a ±infinite query), and the
// arena's footprint is deterministic in the request sequence and
// independent of epsilon — the property the engine's footprint-equality
// tests (prebuilt_tree_test) lean on. CI also runs this suite under the
// ASan/UBSan leg, where an out-of-bounds tail load or misaligned store
// fails loudly.

#include <bit>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "core/overlap_kernel.h"
#include "datagen/distributions.h"
#include "test_util.h"
#include "util/simd.h"

namespace touch {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

bool Is64ByteAligned(const float* p) {
  return (reinterpret_cast<uintptr_t>(p) % simd::AlignedArena::kAlignment) ==
         0;
}

TEST(BoxSlabTest, AllSixArraysAre64ByteAlignedAtEverySize) {
  std::mt19937 rng(3);
  BoxSlab slab;
  for (const size_t n : {1u, 2u, 3u, 7u, 15u, 16u, 17u, 100u, 1000u}) {
    Dataset boxes;
    for (size_t i = 0; i < n; ++i) {
      const float x = static_cast<float>(rng() % 1000);
      boxes.push_back(CenteredBox(x, x * 0.5f, -x));
    }
    slab.Assign(boxes);  // reusing one slab exercises arena reuse paths
    EXPECT_TRUE(Is64ByteAligned(slab.lo_x())) << n;
    EXPECT_TRUE(Is64ByteAligned(slab.hi_x())) << n;
    EXPECT_TRUE(Is64ByteAligned(slab.lo_y())) << n;
    EXPECT_TRUE(Is64ByteAligned(slab.hi_y())) << n;
    EXPECT_TRUE(Is64ByteAligned(slab.lo_z())) << n;
    EXPECT_TRUE(Is64ByteAligned(slab.hi_z())) << n;
  }
}

// Bit-level float equality (NaN-safe, distinguishes -0.0f from 0.0f): the
// round-trip guarantee the sweep-order and reference-point consumers need.
bool SameBits(float a, float b) {
  return std::bit_cast<uint32_t>(a) == std::bit_cast<uint32_t>(b);
}

bool SameBoxBits(const Box& a, const Box& b) {
  return SameBits(a.lo.x, b.lo.x) && SameBits(a.lo.y, b.lo.y) &&
         SameBits(a.lo.z, b.lo.z) && SameBits(a.hi.x, b.hi.x) &&
         SameBits(a.hi.y, b.hi.y) && SameBits(a.hi.z, b.hi.z);
}

TEST(BoxSlabTest, BoxAtRoundTripsBitExactly) {
  const Dataset boxes = GenerateSynthetic(Distribution::kClustered, 500, 17);
  BoxSlab slab;
  slab.Assign(boxes);
  for (size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_TRUE(SameBoxBits(slab.BoxAt(i), boxes[i])) << i;
  }
  // With epsilon, the slab must hold exactly Box::Enlarged's floats.
  const float epsilon = 2.75f;
  slab.Assign(boxes, epsilon);
  for (size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_TRUE(SameBoxBits(slab.BoxAt(i), boxes[i].Enlarged(epsilon))) << i;
  }
}

TEST(BoxSlabTest, SpecialValuesRoundTrip) {
  const float denormal = 1e-42f;
  const Dataset boxes = {
      MakeBox(-0.0f, 0.0f, -0.0f, 0.0f, -0.0f, 0.0f),
      MakeBox(-kInf, -kInf, -kInf, kInf, kInf, kInf),
      MakeBox(denormal, -denormal, denormal, denormal, denormal, denormal),
  };
  BoxSlab slab;
  slab.Assign(boxes);
  for (size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_TRUE(SameBoxBits(slab.BoxAt(i), boxes[i])) << i;
  }
}

// Padding lanes must be invisible to every kernel — including against a
// query that covers all of space, which the ±inf sentinels alone would NOT
// repel if the tail masking were missing.
TEST(BoxSlabTest, TailPaddingProducesNoPhantomOverlaps) {
  const Box everything = MakeBox(-kInf, -kInf, -kInf, kInf, kInf, kInf);
  for (size_t n = 1; n <= 2 * BoxSlab::kPad + 1; ++n) {
    Dataset boxes;
    for (size_t i = 0; i < n; ++i) {
      boxes.push_back(CenteredBox(static_cast<float>(i), 0, 0));
    }
    BoxSlab slab;
    slab.Assign(boxes);
    std::vector<uint32_t> hits;
    CollectOverlaps(slab, 0, slab.size(), everything, hits);
    ASSERT_EQ(hits.size(), n) << "phantom or dropped hits at size " << n;
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], i);

    // The gather path with every position listed must agree.
    std::vector<uint32_t> all_positions;
    for (uint32_t i = 0; i < n; ++i) all_positions.push_back(i);
    hits.clear();
    CollectOverlapsGather(slab, all_positions, everything, hits);
    EXPECT_EQ(hits.size(), n);
  }
}

TEST(BoxSlabTest, EmptySlabYieldsNothing) {
  BoxSlab slab;
  slab.Assign(Dataset{});
  EXPECT_TRUE(slab.empty());
  std::vector<uint32_t> hits;
  EXPECT_EQ(CollectOverlaps(slab, 0, 0,
                            MakeBox(-kInf, -kInf, -kInf, kInf, kInf, kInf),
                            hits),
            0u);
  EXPECT_TRUE(hits.empty());
}

// --- arena properties --------------------------------------------------------

TEST(AlignedArenaTest, ReturnsAlignedGrowingStorage) {
  simd::AlignedArena arena;
  EXPECT_EQ(arena.capacity(), 0u);
  EXPECT_EQ(arena.MemoryUsageBytes(), 0u);
  float* p = arena.Reserve(10);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(Is64ByteAligned(p));
  EXPECT_GE(arena.capacity(), 10u);
  const size_t first_capacity = arena.capacity();
  // Shrinking requests reuse the block: same pointer, same capacity.
  EXPECT_EQ(arena.Reserve(5), p);
  EXPECT_EQ(arena.capacity(), first_capacity);
  // Growth keeps alignment.
  float* grown = arena.Reserve(first_capacity + 1);
  EXPECT_TRUE(Is64ByteAligned(grown));
  EXPECT_GE(arena.capacity(), first_capacity + 1);
}

// Two arenas fed the same request sequence end at the same capacity, and
// slab footprints do not depend on epsilon: the determinism the engine's
// fly-vs-copied footprint equality rests on.
TEST(AlignedArenaTest, FootprintIsDeterministicAndEpsilonIndependent) {
  const std::vector<size_t> requests = {16, 100, 20, 300, 299, 512};
  simd::AlignedArena arena_one;
  simd::AlignedArena arena_two;
  for (const size_t count : requests) {
    arena_one.Reserve(count);
    arena_two.Reserve(count);
    EXPECT_EQ(arena_one.MemoryUsageBytes(), arena_two.MemoryUsageBytes());
  }

  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 333, 29);
  BoxSlab plain;
  BoxSlab enlarged;
  plain.Assign(boxes, 0.0f);
  enlarged.Assign(boxes, 7.5f);
  EXPECT_EQ(plain.MemoryUsageBytes(), enlarged.MemoryUsageBytes());
}

}  // namespace
}  // namespace touch
