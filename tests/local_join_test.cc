#include "join/local_join.h"

#include <gtest/gtest.h>

#include <numeric>

#include "datagen/distributions.h"
#include "test_util.h"

namespace touch {
namespace {

std::vector<uint32_t> AllIds(size_t n) {
  std::vector<uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  return ids;
}

class LocalJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = GenerateSynthetic(Distribution::kClustered, 300, 1);
    b_ = GenerateSynthetic(Distribution::kClustered, 400, 2);
    // Enlarge A so the joins have plenty of results.
    for (Box& box : a_) box = box.Enlarged(20.0f);
    ids_a_ = AllIds(a_.size());
    ids_b_ = AllIds(b_.size());
  }

  std::vector<IdPair> RunNested(JoinStats* stats) {
    std::vector<IdPair> pairs;
    LocalNestedLoop(a_, ids_a_, b_, ids_b_, stats,
                    [&](uint32_t x, uint32_t y) { pairs.emplace_back(x, y); });
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  }

  std::vector<IdPair> RunSweep(JoinStats* stats) {
    std::vector<IdPair> pairs;
    LocalPlaneSweep(a_, ids_a_, b_, ids_b_, stats,
                    [&](uint32_t x, uint32_t y) { pairs.emplace_back(x, y); });
    std::sort(pairs.begin(), pairs.end());
    return pairs;
  }

  Dataset a_;
  Dataset b_;
  std::vector<uint32_t> ids_a_;
  std::vector<uint32_t> ids_b_;
};

TEST_F(LocalJoinTest, SweepMatchesNestedLoop) {
  JoinStats s1;
  JoinStats s2;
  EXPECT_EQ(RunNested(&s1), RunSweep(&s2));
}

TEST_F(LocalJoinTest, SweepEmitsNoDuplicates) {
  JoinStats stats;
  std::vector<IdPair> pairs;
  LocalPlaneSweep(a_, ids_a_, b_, ids_b_, &stats,
                  [&](uint32_t x, uint32_t y) { pairs.emplace_back(x, y); });
  EXPECT_TRUE(HasNoDuplicates(pairs));
}

TEST_F(LocalJoinTest, NestedLoopComparisonCountIsExact) {
  JoinStats stats;
  RunNested(&stats);
  EXPECT_EQ(stats.comparisons, a_.size() * b_.size());
}

TEST_F(LocalJoinTest, SweepDoesFewerComparisonsThanNestedLoop) {
  JoinStats nested;
  JoinStats sweep;
  RunNested(&nested);
  RunSweep(&sweep);
  EXPECT_LT(sweep.comparisons, nested.comparisons);
}

TEST(LocalJoinEdgeTest, EmptySidesProduceNothing) {
  const Dataset a = {MakeBox(0, 0, 0, 1, 1, 1)};
  const std::vector<uint32_t> ids = {0};
  JoinStats stats;
  int emitted = 0;
  LocalPlaneSweep(a, ids, a, {}, &stats,
                  [&](uint32_t, uint32_t) { ++emitted; });
  LocalPlaneSweep(a, {}, a, ids, &stats,
                  [&](uint32_t, uint32_t) { ++emitted; });
  LocalNestedLoop(a, {}, a, {}, &stats,
                  [&](uint32_t, uint32_t) { ++emitted; });
  EXPECT_EQ(emitted, 0);
  EXPECT_EQ(stats.comparisons, 0u);
}

TEST(LocalJoinEdgeTest, SweepHandlesSharedXLowTies) {
  // Several boxes with identical lo.x: every intersecting pair must be
  // reported exactly once despite the tie.
  Dataset a;
  Dataset b;
  for (int i = 0; i < 5; ++i) {
    a.push_back(MakeBox(0, static_cast<float>(i), 0, 1,
                        static_cast<float>(i) + 0.5f, 1));
    b.push_back(MakeBox(0, static_cast<float>(i), 0, 1,
                        static_cast<float>(i) + 0.5f, 1));
  }
  const std::vector<uint32_t> ids_a = AllIds(a.size());
  const std::vector<uint32_t> ids_b = AllIds(b.size());
  JoinStats stats;
  std::vector<IdPair> sweep;
  LocalPlaneSweep(a, ids_a, b, ids_b, &stats,
                  [&](uint32_t x, uint32_t y) { sweep.emplace_back(x, y); });
  std::sort(sweep.begin(), sweep.end());
  std::vector<IdPair> nested;
  JoinStats stats2;
  LocalNestedLoop(a, ids_a, b, ids_b, &stats2,
                  [&](uint32_t x, uint32_t y) { nested.emplace_back(x, y); });
  std::sort(nested.begin(), nested.end());
  EXPECT_EQ(sweep, nested);
  EXPECT_TRUE(HasNoDuplicates(sweep));
}

TEST(LocalJoinEdgeTest, SortByXLowIsStableOnTies) {
  const Dataset boxes(10, MakeBox(1, 0, 0, 2, 1, 1));
  std::vector<uint32_t> ids = AllIds(boxes.size());
  SortByXLow(boxes, ids);
  for (uint32_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
}

TEST(LocalJoinEdgeTest, SubsetIdListsJoinOnlyTheSubset) {
  // Local joins operate on id subsets, not whole datasets.
  Dataset data;
  for (int i = 0; i < 10; ++i) {
    data.push_back(CenteredBox(static_cast<float>(i) * 10, 0, 0, 6));
  }
  const std::vector<uint32_t> left = {0, 1};
  const std::vector<uint32_t> right = {1, 9};
  JoinStats stats;
  std::vector<IdPair> pairs;
  LocalNestedLoop(data, left, data, right, &stats,
                  [&](uint32_t x, uint32_t y) { pairs.emplace_back(x, y); });
  std::sort(pairs.begin(), pairs.end());
  // Boxes 0-1 and 1-1 overlap (10 apart, half-extent 6); 9 is far away.
  const std::vector<IdPair> expected = {{0, 1}, {1, 1}};
  EXPECT_EQ(pairs, expected);
}

TEST(LocalJoinEdgeTest, StrategyNames) {
  EXPECT_STREQ(LocalJoinStrategyName(LocalJoinStrategy::kGrid), "grid");
  EXPECT_STREQ(LocalJoinStrategyName(LocalJoinStrategy::kPlaneSweep),
               "plane-sweep");
  EXPECT_STREQ(LocalJoinStrategyName(LocalJoinStrategy::kNestedLoop),
               "nested-loop");
}

}  // namespace
}  // namespace touch
