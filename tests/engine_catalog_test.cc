#include "engine/catalog.h"

#include <gtest/gtest.h>

#include <numeric>

#include "datagen/distributions.h"
#include "test_util.h"

namespace touch {
namespace {

TEST(DatasetStatsTest, ComputesCountExtentAndAverages) {
  Dataset boxes;
  boxes.push_back(MakeBox(0, 0, 0, 2, 2, 2));
  boxes.push_back(MakeBox(8, 8, 8, 12, 12, 12));

  const DatasetStats stats = ComputeDatasetStats(boxes);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_EQ(stats.extent, MakeBox(0, 0, 0, 12, 12, 12));
  EXPECT_FLOAT_EQ(stats.avg_object_extent.x, 3.0f);  // (2 + 4) / 2
  EXPECT_GT(stats.density, 0);
}

TEST(DatasetStatsTest, HistogramCountsEveryObjectOnce) {
  const Dataset boxes = GenerateSynthetic(Distribution::kGaussian, 5000, 11);
  const DatasetStats stats = ComputeDatasetStats(boxes);
  const uint64_t total = std::accumulate(stats.histogram.begin(),
                                         stats.histogram.end(), uint64_t{0});
  EXPECT_EQ(total, boxes.size());
  EXPECT_EQ(stats.histogram.size(),
            static_cast<size_t>(stats.histogram_resolution) *
                stats.histogram_resolution * stats.histogram_resolution);
}

TEST(DatasetStatsTest, SkewSeparatesUniformFromClustered) {
  const DatasetStats uniform = ComputeDatasetStats(
      GenerateSynthetic(Distribution::kUniform, 20000, 12));
  const DatasetStats clustered = ComputeDatasetStats(
      GenerateSynthetic(Distribution::kClustered, 20000, 13));
  EXPECT_GT(clustered.HistogramSkew(), uniform.HistogramSkew());
  EXPECT_LT(uniform.HistogramSkew(), 3.0);
}

TEST(DatasetStatsTest, EmptyDatasetIsWellDefined) {
  const DatasetStats stats = ComputeDatasetStats(Dataset{});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.HistogramSkew(), 0);
}

TEST(DatasetCatalogTest, RegisterAndLookup) {
  DatasetCatalog catalog;
  const DatasetHandle parcels = catalog.Register(
      "parcels", GenerateSynthetic(Distribution::kUniform, 100, 1));
  const DatasetHandle roads = catalog.Register(
      "roads", GenerateSynthetic(Distribution::kUniform, 200, 2));

  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_TRUE(catalog.Contains(parcels));
  EXPECT_FALSE(catalog.Contains(99));
  EXPECT_EQ(catalog.name(parcels), "parcels");
  EXPECT_EQ(catalog.boxes(roads).size(), 200u);
  EXPECT_EQ(catalog.stats(parcels).count, 100u);
  EXPECT_EQ(catalog.Find("roads"), roads);
  EXPECT_EQ(catalog.Find("missing"), std::nullopt);
}

TEST(DatasetCatalogTest, ReferencesStayStableAcrossRegistrations) {
  DatasetCatalog catalog;
  const DatasetHandle first = catalog.Register(
      "first", GenerateSynthetic(Distribution::kUniform, 50, 3));
  const Dataset* boxes = &catalog.boxes(first);
  const DatasetStats* stats = &catalog.stats(first);
  for (int i = 0; i < 20; ++i) {
    catalog.Register("other", GenerateSynthetic(Distribution::kUniform, 50, i));
  }
  EXPECT_EQ(boxes, &catalog.boxes(first));
  EXPECT_EQ(stats, &catalog.stats(first));
}

TEST(DatasetCatalogTest, DuplicateNamesResolveToLatest) {
  DatasetCatalog catalog;
  catalog.Register("data", GenerateSynthetic(Distribution::kUniform, 10, 4));
  const DatasetHandle second = catalog.Register(
      "data", GenerateSynthetic(Distribution::kUniform, 20, 5));
  EXPECT_EQ(catalog.Find("data"), second);
}

}  // namespace
}  // namespace touch
