#include "engine/catalog.h"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>

#include "datagen/distributions.h"
#include "engine/planner.h"
#include "join/nested_loop.h"
#include "test_util.h"

namespace touch {
namespace {

TEST(DatasetStatsTest, ComputesCountExtentAndAverages) {
  Dataset boxes;
  boxes.push_back(MakeBox(0, 0, 0, 2, 2, 2));
  boxes.push_back(MakeBox(8, 8, 8, 12, 12, 12));

  const DatasetStats stats = ComputeDatasetStats(boxes);
  EXPECT_EQ(stats.count, 2u);
  EXPECT_EQ(stats.extent, MakeBox(0, 0, 0, 12, 12, 12));
  EXPECT_FLOAT_EQ(stats.avg_object_extent.x, 3.0f);  // (2 + 4) / 2
  EXPECT_GT(stats.density, 0);
}

TEST(DatasetStatsTest, HistogramCountsEveryObjectOnce) {
  const Dataset boxes = GenerateSynthetic(Distribution::kGaussian, 5000, 11);
  const DatasetStats stats = ComputeDatasetStats(boxes);
  const uint64_t total = std::accumulate(stats.histogram.begin(),
                                         stats.histogram.end(), uint64_t{0});
  EXPECT_EQ(total, boxes.size());
  EXPECT_EQ(stats.histogram.size(),
            static_cast<size_t>(stats.histogram_resolution) *
                stats.histogram_resolution * stats.histogram_resolution);
}

TEST(DatasetStatsTest, SkewSeparatesUniformFromClustered) {
  const DatasetStats uniform = ComputeDatasetStats(
      GenerateSynthetic(Distribution::kUniform, 20000, 12));
  const DatasetStats clustered = ComputeDatasetStats(
      GenerateSynthetic(Distribution::kClustered, 20000, 13));
  EXPECT_GT(clustered.HistogramSkew(), uniform.HistogramSkew());
  EXPECT_LT(uniform.HistogramSkew(), 3.0);
}

TEST(DatasetStatsTest, EmptyDatasetIsWellDefined) {
  const DatasetStats stats = ComputeDatasetStats(Dataset{});
  EXPECT_EQ(stats.count, 0u);
  EXPECT_EQ(stats.HistogramSkew(), 0);
}

// --- Histogram pair-combination (the planner's plan-time estimate) ---------

/// Brute-force result count of the epsilon-distance join (ground truth).
uint64_t MeasuredResults(const Dataset& a, const Dataset& b, float epsilon) {
  Dataset enlarged = a;
  for (Box& box : enlarged) box = box.Enlarged(epsilon);
  NestedLoopJoin join;
  CountingCollector out;
  join.Join(enlarged, b, out);
  return out.count();
}

class PairEstimateAccuracyTest
    : public ::testing::TestWithParam<std::tuple<Distribution, float>> {};

// The combination of two *independently computed* per-dataset histograms
// must track brute-force overlap counts as well as a direct joint-grid
// estimate does (factor 3, like the SelectivityEstimator accuracy suite).
TEST_P(PairEstimateAccuracyTest, WithinFactorThreeOfBruteForce) {
  const auto [distribution, epsilon] = GetParam();
  const Dataset a = GenerateSynthetic(distribution, 4000, 121);
  const Dataset b = GenerateSynthetic(distribution, 8000, 122);
  const uint64_t measured = MeasuredResults(a, b, epsilon);
  ASSERT_GT(measured, 0u);

  const PairEstimate estimate = CombineHistograms(
      ComputeDatasetStats(a), ComputeDatasetStats(b), epsilon);
  EXPECT_GT(estimate.expected_results, static_cast<double>(measured) / 3.0)
      << "measured " << measured;
  EXPECT_LT(estimate.expected_results, static_cast<double>(measured) * 3.0)
      << "measured " << measured;
  EXPECT_NEAR(estimate.selectivity,
              estimate.expected_results / (4000.0 * 8000.0), 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    DistributionsAndEpsilons, PairEstimateAccuracyTest,
    ::testing::Combine(::testing::Values(Distribution::kUniform,
                                         Distribution::kGaussian),
                       ::testing::Values(5.0f, 10.0f)),
    [](const auto& info) {
      return std::string(DistributionName(std::get<0>(info.param))) + "_eps" +
             std::to_string(static_cast<int>(std::get<1>(info.param)));
    });

// Clustered data is the model's hard case: the generator clamps cluster
// mass onto the workload cube's boundary planes, which within-cell
// uniformity underestimates at the planner's combine resolution. The
// combination matches the direct joint-grid estimate the planner previously
// computed at the same resolution (32) — this bound tracks that accuracy at
// an order of magnitude so regressions are caught without overstating the
// model (the offline SelectivityEstimator suite holds factor 3 at its finer
// default resolution of 64).
TEST(PairEstimateTest, ClusteredWithinFactorTenOfBruteForce) {
  const Dataset a = GenerateSynthetic(Distribution::kClustered, 4000, 121);
  const Dataset b = GenerateSynthetic(Distribution::kClustered, 8000, 122);
  for (const float epsilon : {5.0f, 10.0f}) {
    const uint64_t measured = MeasuredResults(a, b, epsilon);
    ASSERT_GT(measured, 0u);
    const PairEstimate estimate = CombineHistograms(
        ComputeDatasetStats(a), ComputeDatasetStats(b), epsilon);
    EXPECT_GT(estimate.expected_results, static_cast<double>(measured) / 10.0)
        << "epsilon " << epsilon << ", measured " << measured;
    EXPECT_LT(estimate.expected_results, static_cast<double>(measured) * 10.0)
        << "epsilon " << epsilon << ", measured " << measured;
  }
}

TEST(PairEstimateTest, MonotonicInEpsilon) {
  const DatasetStats a =
      ComputeDatasetStats(GenerateSynthetic(Distribution::kUniform, 3000, 123));
  const DatasetStats b =
      ComputeDatasetStats(GenerateSynthetic(Distribution::kUniform, 3000, 124));
  double previous = -1;
  for (const float epsilon : {0.0f, 2.0f, 5.0f, 10.0f, 20.0f}) {
    const double expected =
        CombineHistograms(a, b, epsilon).expected_results;
    EXPECT_GT(expected, previous) << "epsilon=" << epsilon;
    previous = expected;
  }
}

// Datasets whose extents do not even touch expect (next to) nothing —
// resampling onto the joint grid keeps their mass in disjoint cells.
TEST(PairEstimateTest, DisjointDatasetsEstimateNearZero) {
  Dataset near;
  Dataset far;
  for (int i = 0; i < 500; ++i) {
    const float offset = static_cast<float>(i % 10);
    near.push_back(CenteredBox(offset, offset, offset));
    far.push_back(CenteredBox(1000 + offset, 1000 + offset, 1000 + offset));
  }
  const PairEstimate estimate = CombineHistograms(
      ComputeDatasetStats(near), ComputeDatasetStats(far), 1.0f);
  EXPECT_LT(estimate.expected_results, 1.0);
}

TEST(PairEstimateTest, EmptyInputsAreSafe) {
  const DatasetStats empty = ComputeDatasetStats(Dataset{});
  const DatasetStats full =
      ComputeDatasetStats(GenerateSynthetic(Distribution::kUniform, 1000, 5));
  EXPECT_EQ(CombineHistograms(empty, full, 1.0f).expected_results, 0);
  EXPECT_EQ(CombineHistograms(full, empty, 1.0f).expected_results, 0);
  EXPECT_EQ(CombineHistograms(empty, empty, 1.0f).expected_results, 0);
}

// Clustering concentrates the expected output into hotspot cells, which the
// combined per-cell contribution skew must expose (the planner's rationale
// signal for "the result set is not spread evenly").
TEST(PairEstimateTest, ClusteringRaisesPairSkew) {
  const PairEstimate uniform = CombineHistograms(
      ComputeDatasetStats(GenerateSynthetic(Distribution::kUniform, 20000, 31)),
      ComputeDatasetStats(GenerateSynthetic(Distribution::kUniform, 20000, 32)),
      2.0f);
  const PairEstimate clustered = CombineHistograms(
      ComputeDatasetStats(
          GenerateSynthetic(Distribution::kClustered, 20000, 33)),
      ComputeDatasetStats(
          GenerateSynthetic(Distribution::kClustered, 20000, 34)),
      2.0f);
  EXPECT_GT(clustered.pair_skew, uniform.pair_skew);
}

// --- DatasetStats serialization (round-trip without geometry) --------------

TEST(DatasetStatsSerializationTest, RoundTripsExactly) {
  const DatasetStats stats = ComputeDatasetStats(
      GenerateSynthetic(Distribution::kClustered, 5000, 77));
  const std::vector<uint8_t> bytes = SerializeDatasetStats(stats);
  DatasetStats decoded;
  ASSERT_TRUE(DeserializeDatasetStats(bytes, &decoded));
  EXPECT_EQ(decoded.count, stats.count);
  EXPECT_EQ(decoded.extent, stats.extent);
  EXPECT_FLOAT_EQ(decoded.avg_object_extent.x, stats.avg_object_extent.x);
  EXPECT_FLOAT_EQ(decoded.avg_object_extent.y, stats.avg_object_extent.y);
  EXPECT_FLOAT_EQ(decoded.avg_object_extent.z, stats.avg_object_extent.z);
  EXPECT_EQ(decoded.density, stats.density);
  EXPECT_EQ(decoded.histogram_resolution, stats.histogram_resolution);
  EXPECT_EQ(decoded.histogram, stats.histogram);
  EXPECT_EQ(decoded.HistogramSkew(), stats.HistogramSkew());
}

TEST(DatasetStatsSerializationTest, EmptyStatsRoundTrip) {
  const DatasetStats stats = ComputeDatasetStats(Dataset{});
  DatasetStats decoded;
  ASSERT_TRUE(DeserializeDatasetStats(SerializeDatasetStats(stats), &decoded));
  EXPECT_EQ(decoded.count, 0u);
  EXPECT_TRUE(decoded.histogram.empty());
}

TEST(DatasetStatsSerializationTest, RejectsCorruptedInput) {
  const DatasetStats stats = ComputeDatasetStats(
      GenerateSynthetic(Distribution::kUniform, 200, 9));
  const std::vector<uint8_t> bytes = SerializeDatasetStats(stats);
  DatasetStats decoded;
  // Truncated at every prefix length, wrong version, and trailing garbage.
  for (const size_t cut : {size_t{0}, size_t{3}, size_t{20}, bytes.size() - 1}) {
    EXPECT_FALSE(DeserializeDatasetStats(
        std::span<const uint8_t>(bytes.data(), cut), &decoded))
        << "cut=" << cut;
  }
  std::vector<uint8_t> wrong_version = bytes;
  wrong_version[0] ^= 0xff;
  EXPECT_FALSE(DeserializeDatasetStats(wrong_version, &decoded));
  std::vector<uint8_t> overlong = bytes;
  overlong.push_back(0);
  EXPECT_FALSE(DeserializeDatasetStats(overlong, &decoded));
}

// Stats may arrive from untrusted peers: a header claiming 2^21 cells/axis
// with a histogram size whose byte count wraps uint64 to zero must be
// rejected up front, never allocated.
TEST(DatasetStatsSerializationTest, RejectsResolutionBomb) {
  std::vector<uint8_t> bomb =
      SerializeDatasetStats(ComputeDatasetStats(Dataset{}));
  // Layout: version(4) count(8) extents+avg floats(36) density(8)
  // resolution(4) histogram_size(8).
  const size_t resolution_offset = 4 + 8 + 36 + 8;
  ASSERT_EQ(bomb.size(), resolution_offset + 4 + 8);
  const int32_t huge_resolution = 1 << 21;
  const uint64_t wrapping_cells = uint64_t{1} << 63;  // * 4 wraps to 0 bytes
  std::memcpy(bomb.data() + resolution_offset, &huge_resolution, 4);
  std::memcpy(bomb.data() + resolution_offset + 4, &wrapping_cells, 8);
  DatasetStats decoded;
  EXPECT_FALSE(DeserializeDatasetStats(bomb, &decoded));
}

// Stats that traveled without their geometry plan identically — the sharded
// catalog's contract: shipping DatasetStats is all planning ever needs.
TEST(DatasetStatsSerializationTest, DeserializedStatsPlanIdentically) {
  const DatasetStats a = ComputeDatasetStats(
      GenerateSynthetic(Distribution::kClustered, 30000, 10));
  const DatasetStats b = ComputeDatasetStats(
      GenerateSynthetic(Distribution::kClustered, 60000, 11));
  DatasetStats remote_a;
  DatasetStats remote_b;
  ASSERT_TRUE(DeserializeDatasetStats(SerializeDatasetStats(a), &remote_a));
  ASSERT_TRUE(DeserializeDatasetStats(SerializeDatasetStats(b), &remote_b));

  const Planner planner;
  const JoinPlan local = planner.Plan(a, b, 1.0f);
  const JoinPlan remote = planner.Plan(remote_a, remote_b, 1.0f);
  EXPECT_EQ(local.algorithm, remote.algorithm);
  EXPECT_EQ(local.build_on_a, remote.build_on_a);
  EXPECT_EQ(local.rationale, remote.rationale);
  EXPECT_DOUBLE_EQ(local.expected_results, remote.expected_results);
}

TEST(DatasetCatalogTest, RegisterAndLookup) {
  DatasetCatalog catalog;
  const DatasetHandle parcels = catalog.Register(
      "parcels", GenerateSynthetic(Distribution::kUniform, 100, 1));
  const DatasetHandle roads = catalog.Register(
      "roads", GenerateSynthetic(Distribution::kUniform, 200, 2));

  EXPECT_EQ(catalog.size(), 2u);
  EXPECT_TRUE(catalog.Contains(parcels));
  EXPECT_FALSE(catalog.Contains(99));
  EXPECT_EQ(catalog.name(parcels), "parcels");
  EXPECT_EQ(catalog.boxes(roads).size(), 200u);
  EXPECT_EQ(catalog.stats(parcels).count, 100u);
  EXPECT_EQ(catalog.Find("roads"), roads);
  EXPECT_EQ(catalog.Find("missing"), std::nullopt);
}

TEST(DatasetCatalogTest, ReferencesStayStableAcrossRegistrations) {
  DatasetCatalog catalog;
  const DatasetHandle first = catalog.Register(
      "first", GenerateSynthetic(Distribution::kUniform, 50, 3));
  const Dataset* boxes = &catalog.boxes(first);
  const DatasetStats* stats = &catalog.stats(first);
  for (int i = 0; i < 20; ++i) {
    catalog.Register("other", GenerateSynthetic(Distribution::kUniform, 50, i));
  }
  EXPECT_EQ(boxes, &catalog.boxes(first));
  EXPECT_EQ(stats, &catalog.stats(first));
}

TEST(DatasetCatalogTest, DuplicateNamesResolveToLatest) {
  DatasetCatalog catalog;
  catalog.Register("data", GenerateSynthetic(Distribution::kUniform, 10, 4));
  const DatasetHandle second = catalog.Register(
      "data", GenerateSynthetic(Distribution::kUniform, 20, 5));
  EXPECT_EQ(catalog.Find("data"), second);
}

}  // namespace
}  // namespace touch
