#include "join/nbps.h"

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "join/pbsm.h"
#include "test_util.h"

namespace touch {
namespace {

class NbpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = GenerateSynthetic(Distribution::kGaussian, 600, 91);
    for (Box& box : a_) box = box.Enlarged(8.0f);
    b_ = GenerateSynthetic(Distribution::kGaussian, 900, 92);
  }
  Dataset a_;
  Dataset b_;
};

TEST_F(NbpsTest, MatchesOracle) {
  NbpsJoin join;
  EXPECT_EQ(RunJoinSorted(join, a_, b_), OracleJoin(a_, b_));
}

TEST_F(NbpsTest, StreamedResultsAreDuplicateFree) {
  NbpsJoin join;
  VectorCollector out;
  join.Join(a_, b_, out);
  EXPECT_TRUE(HasNoDuplicates(out.pairs()));
}

TEST_F(NbpsTest, MatchesOracleAcrossResolutions) {
  for (const int resolution : {1, 4, 25, 120}) {
    NbpsOptions opt;
    opt.resolution = resolution;
    NbpsJoin join(opt);
    EXPECT_EQ(RunJoinSorted(join, a_, b_), OracleJoin(a_, b_))
        << "resolution=" << resolution;
  }
}

TEST_F(NbpsTest, EmptyInputs) {
  NbpsJoin join;
  VectorCollector out;
  EXPECT_EQ(join.Join({}, b_, out).results, 0u);
  EXPECT_EQ(join.Join(a_, {}, out).results, 0u);
  EXPECT_TRUE(out.pairs().empty());
}

TEST_F(NbpsTest, RecordsTimeToFirstResult) {
  NbpsJoin join;
  CountingCollector out;
  const JoinStats stats = join.Join(a_, b_, out);
  ASSERT_GT(stats.results, 0u);
  EXPECT_GT(stats.first_result_seconds, 0.0);
  EXPECT_LE(stats.first_result_seconds, stats.total_seconds);
}

TEST_F(NbpsTest, NoResultsLeavesFirstResultTimeZero) {
  Dataset far;
  for (int i = 0; i < 50; ++i) far.push_back(CenteredBox(5000, 5000, 5000));
  NbpsJoin join;
  CountingCollector out;
  const JoinStats stats = join.Join(a_, far, out);
  EXPECT_EQ(stats.results, 0u);
  EXPECT_EQ(stats.first_result_seconds, 0.0);
}

TEST_F(NbpsTest, FirstResultArrivesBeforeBlockingJoinFinishes) {
  // The non-blocking property: on a workload sized so the blocking PBSM join
  // takes measurable time, NBPS must deliver its first pair well before its
  // own end (and thus before any blocking join could deliver anything).
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 20000, 93);
  Dataset enlarged = a;
  for (Box& box : enlarged) box = box.Enlarged(5.0f);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 30000, 94);

  NbpsJoin nbps;
  CountingCollector out;
  const JoinStats stats = nbps.Join(enlarged, b, out);
  ASSERT_GT(stats.results, 0u);
  EXPECT_LT(stats.first_result_seconds, stats.total_seconds / 4);
}

TEST_F(NbpsTest, ResultsIdenticalToPbsmWithSameGrid) {
  NbpsOptions nbps_opt;
  nbps_opt.resolution = 50;
  PbsmOptions pbsm_opt;
  pbsm_opt.resolution = 50;
  NbpsJoin nbps(nbps_opt);
  PbsmJoin pbsm(pbsm_opt);
  EXPECT_EQ(RunJoinSorted(nbps, a_, b_), RunJoinSorted(pbsm, a_, b_));
}

TEST_F(NbpsTest, OrderInsensitive) {
  // The pair set must not depend on which stream plays A and which plays B.
  NbpsJoin join;
  const auto forward = RunJoinSorted(join, a_, b_);
  VectorCollector reversed_out;
  join.Join(b_, a_, reversed_out);
  std::vector<IdPair> reversed;
  reversed.reserve(reversed_out.pairs().size());
  for (const auto& [b_id, a_id] : reversed_out.pairs()) {
    reversed.emplace_back(a_id, b_id);
  }
  std::sort(reversed.begin(), reversed.end());
  EXPECT_EQ(forward, reversed);
}

}  // namespace
}  // namespace touch
