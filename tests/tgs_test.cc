#include "index/tgs.h"

#include <gtest/gtest.h>

#include <numeric>

#include "datagen/distributions.h"
#include "index/rtree.h"
#include "test_util.h"
#include "util/rng.h"

namespace touch {
namespace {

TEST(TgsPartitionTest, ProducesValidPermutationAndBucketSizes) {
  const Dataset boxes = GenerateSynthetic(Distribution::kGaussian, 1200, 141);
  const StrPartitioning part = TgsPartition(boxes, 50);
  ASSERT_EQ(part.order.size(), boxes.size());
  std::vector<uint32_t> sorted = part.order;
  std::sort(sorted.begin(), sorted.end());
  for (uint32_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
  for (size_t b = 0; b < part.NumBuckets(); ++b) {
    EXPECT_LE(part.Bucket(b).size(), 50u);
    EXPECT_GT(part.Bucket(b).size(), 0u);
  }
}

TEST(TgsPartitionTest, EmptySingleAndExactFit) {
  EXPECT_EQ(TgsPartition({}, 8).NumBuckets(), 0u);

  const Dataset one = {CenteredBox(1, 2, 3)};
  ASSERT_EQ(TgsPartition(one, 8).NumBuckets(), 1u);

  const Dataset exact = GenerateSynthetic(Distribution::kUniform, 64, 142);
  const StrPartitioning part = TgsPartition(exact, 16);
  EXPECT_EQ(part.NumBuckets(), 4u);
  for (size_t b = 0; b < 4; ++b) EXPECT_EQ(part.Bucket(b).size(), 16u);
}

TEST(TgsPartitionTest, SeparatesObviousClusters) {
  // Two well-separated blobs: the greedy cut must never mix them into one
  // bucket (that would inflate the cost it minimizes).
  Dataset boxes;
  Rng rng(143);
  for (int i = 0; i < 64; ++i) {
    boxes.push_back(CenteredBox(rng.NextFloat() * 10, rng.NextFloat() * 10,
                                rng.NextFloat() * 10));
  }
  for (int i = 0; i < 64; ++i) {
    boxes.push_back(CenteredBox(900 + rng.NextFloat() * 10,
                                900 + rng.NextFloat() * 10,
                                900 + rng.NextFloat() * 10));
  }
  const StrPartitioning part = TgsPartition(boxes, 32);
  for (size_t b = 0; b < part.NumBuckets(); ++b) {
    const Box mbr = BucketMbr(boxes, part.Bucket(b));
    EXPECT_LT(mbr.Extent().Length(), 100.0f)
        << "bucket " << b << " spans both clusters";
  }
}

TEST(TgsPartitionTest, HandlesExtremeAspectRatios) {
  // The workload class TGS is known to win on (paper 2.2.1): long thin
  // boxes. The partition must stay valid and reasonably tight.
  Dataset boxes;
  for (int i = 0; i < 500; ++i) {
    const float y = static_cast<float>(i) * 2.0f;
    boxes.push_back(MakeBox(0, y, 0, 800, y + 0.5f, 0.5f));
  }
  const StrPartitioning part = TgsPartition(boxes, 25);
  ASSERT_EQ(part.NumBuckets(), 20u);
  double total_volume = 0;
  for (size_t b = 0; b < part.NumBuckets(); ++b) {
    total_volume += BucketMbr(boxes, part.Bucket(b)).Volume();
  }
  // Slicing along y is the only sensible cut; each bucket then covers about
  // 1/20th of the y-extent. Allow 2x slack over that ideal.
  const double ideal = 800.0 * (500 * 2.0) * 0.5;
  EXPECT_LT(total_volume, 2.0 * ideal);
}

TEST(TgsRTreeTest, QueriesMatchBruteForce) {
  const Dataset boxes = GenerateSynthetic(Distribution::kClustered, 2000, 144);
  const RTree tree(boxes, 16, 4, BulkLoadMethod::kTgs);
  EXPECT_EQ(tree.size(), boxes.size());
  Rng rng(145);
  for (int q = 0; q < 40; ++q) {
    const Box query = CenteredBox(rng.NextFloat() * 1000.0f,
                                  rng.NextFloat() * 1000.0f,
                                  rng.NextFloat() * 1000.0f, 30.0f);
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < boxes.size(); ++i) {
      if (Intersects(boxes[i], query)) expected.push_back(i);
    }
    std::vector<uint32_t> got;
    JoinStats stats;
    tree.Query(boxes, query, [&](uint32_t id) { got.push_back(id); }, &stats);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

}  // namespace
}  // namespace touch
