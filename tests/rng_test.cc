#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace touch {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextU64(), b.NextU64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(RngTest, LowEntropySeedsStillMix) {
  // Seed 0 must not produce a degenerate all-zero state.
  Rng rng(0);
  uint64_t all_or = 0;
  for (int i = 0; i < 10; ++i) all_or |= rng.NextU64();
  EXPECT_NE(all_or, 0u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanIsHalf) {
  Rng rng(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.NextDouble();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(17);
  bool seen[10] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.UniformInt(10)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(23);
  double sum = 0;
  double sum_sq = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    const double v = rng.Normal();
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / kN;
  const double var = sum_sq / kN - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(29);
  double sum = 0;
  constexpr int kN = 50000;
  for (int i = 0; i < kN; ++i) sum += rng.Normal(500.0, 250.0);
  EXPECT_NEAR(sum / kN, 500.0, 5.0);
}

TEST(RngTest, NextFloatInUnitInterval) {
  Rng rng(31);
  for (int i = 0; i < 10000; ++i) {
    const float v = rng.NextFloat();
    EXPECT_GE(v, 0.0f);
    EXPECT_LT(v, 1.0f);
  }
}

}  // namespace
}  // namespace touch
