#include "join/octree_join.h"

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "test_util.h"

namespace touch {
namespace {

class OctreeJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = GenerateSynthetic(Distribution::kClustered, 700, 81);
    for (Box& box : a_) box = box.Enlarged(10.0f);
    b_ = GenerateSynthetic(Distribution::kClustered, 1000, 82);
  }
  Dataset a_;
  Dataset b_;
};

TEST_F(OctreeJoinTest, MatchesOracle) {
  OctreeJoin join;
  EXPECT_EQ(RunJoinSorted(join, a_, b_), OracleJoin(a_, b_));
}

TEST_F(OctreeJoinTest, NoDuplicateResultsDespiteObjectDuplication) {
  OctreeJoin join;
  VectorCollector out;
  join.Join(a_, b_, out);
  EXPECT_TRUE(HasNoDuplicates(out.pairs()));
}

TEST_F(OctreeJoinTest, MatchesOracleAcrossConfigurations) {
  for (const size_t capacity : {size_t{4}, size_t{64}, size_t{100000}}) {
    for (const int depth : {1, 4, 12}) {
      OctreeJoinOptions opt;
      opt.leaf_capacity = capacity;
      opt.max_depth = depth;
      OctreeJoin join(opt);
      EXPECT_EQ(RunJoinSorted(join, a_, b_), OracleJoin(a_, b_))
          << "capacity=" << capacity << " depth=" << depth;
    }
  }
}

TEST_F(OctreeJoinTest, DepthZeroDegeneratesToNestedLoop) {
  OctreeJoinOptions opt;
  opt.max_depth = 0;
  opt.leaf_capacity = 1;
  OctreeJoin join(opt);
  JoinStats stats;
  EXPECT_EQ(RunJoinSorted(join, a_, b_, &stats), OracleJoin(a_, b_));
  EXPECT_EQ(stats.comparisons, a_.size() * b_.size());
}

TEST_F(OctreeJoinTest, EmptyInputs) {
  OctreeJoin join;
  VectorCollector out;
  EXPECT_EQ(join.Join({}, b_, out).results, 0u);
  EXPECT_EQ(join.Join(a_, {}, out).results, 0u);
  EXPECT_TRUE(out.pairs().empty());
}

TEST_F(OctreeJoinTest, PrunesOneSidedRegions) {
  // A in one corner, B partly overlapping, partly far away: far B objects
  // land in pruned subtrees.
  Dataset a;
  Dataset b;
  for (int i = 0; i < 200; ++i) {
    const float f = static_cast<float>(i % 20);
    a.push_back(CenteredBox(f, f, f, 2.0f));
    b.push_back(CenteredBox(f, f, f, 2.0f));               // overlapping half
    b.push_back(CenteredBox(900 + f, 900 + f, 900 + f));   // far half
  }
  OctreeJoinOptions opt;
  opt.leaf_capacity = 16;
  OctreeJoin join(opt);
  JoinStats stats;
  EXPECT_EQ(RunJoinSorted(join, a, b, &stats), OracleJoin(a, b));
  EXPECT_GT(stats.filtered, 0u);
}

TEST_F(OctreeJoinTest, IdenticalDegenerateBoxesDoNotRecurseForever) {
  // 500 identical points exceed any leaf capacity; the depth cap must stop
  // the split chain.
  Dataset a(300, CenteredBox(10, 10, 10, 0.0f));
  Dataset b(300, CenteredBox(10, 10, 10, 0.0f));
  OctreeJoinOptions opt;
  opt.leaf_capacity = 8;
  opt.max_depth = 20;
  OctreeJoin join(opt);
  VectorCollector out;
  join.Join(a, b, out);
  EXPECT_EQ(out.pairs().size(), a.size() * b.size());
  EXPECT_TRUE(HasNoDuplicates(out.pairs()));
}

TEST_F(OctreeJoinTest, StatsAreFilled) {
  OctreeJoin join;
  CountingCollector out;
  const JoinStats stats = join.Join(a_, b_, out);
  EXPECT_EQ(stats.results, out.count());
  EXPECT_GT(stats.comparisons, 0u);
  EXPECT_GT(stats.node_comparisons, 0u);
  EXPECT_GT(stats.memory_bytes, (a_.size() + b_.size()) * sizeof(uint32_t) / 2);
  EXPECT_GE(stats.total_seconds, 0.0);
}

TEST_F(OctreeJoinTest, FinerDecompositionCutsComparisons) {
  JoinStats coarse_stats;
  JoinStats fine_stats;
  OctreeJoinOptions coarse;
  coarse.max_depth = 0;
  OctreeJoinOptions fine;
  fine.leaf_capacity = 32;
  fine.max_depth = 10;
  OctreeJoin coarse_join(coarse);
  OctreeJoin fine_join(fine);
  RunJoinSorted(coarse_join, a_, b_, &coarse_stats);
  RunJoinSorted(fine_join, a_, b_, &fine_stats);
  EXPECT_LT(fine_stats.comparisons, coarse_stats.comparisons / 10);
}

}  // namespace
}  // namespace touch
