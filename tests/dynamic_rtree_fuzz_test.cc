// Differential fuzz test: random interleavings of Insert/Remove/Query on the
// DynamicRTree, checked against a brute-force reference multiset after every
// operation batch. Catches the classes of bugs unit tests miss — stale
// parent entries, condense-tree corner cases, free-list reuse.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "index/dynamic_rtree.h"
#include "test_util.h"
#include "util/rng.h"

namespace touch {
namespace {

struct Entry {
  uint32_t id;
  Box box;
};

Box RandomBox(Rng& rng, float space, float max_side) {
  const Vec3 lo(rng.NextFloat() * space, rng.NextFloat() * space,
                rng.NextFloat() * space);
  const Vec3 side(rng.NextFloat() * max_side, rng.NextFloat() * max_side,
                  rng.NextFloat() * max_side);
  return Box(lo, lo + side);
}

std::vector<uint32_t> ReferenceQuery(const std::vector<Entry>& live,
                                     const Box& query) {
  std::vector<uint32_t> result;
  for (const Entry& e : live) {
    if (Intersects(e.box, query)) result.push_back(e.id);
  }
  std::sort(result.begin(), result.end());
  return result;
}

std::vector<uint32_t> TreeQuery(const DynamicRTree& tree, const Box& query) {
  std::vector<uint32_t> result;
  tree.Query(query, [&](uint32_t id, const Box&) { result.push_back(id); });
  std::sort(result.begin(), result.end());
  return result;
}

class DynamicRTreeFuzzTest
    : public ::testing::TestWithParam<std::tuple<RTreeVariant, uint64_t>> {};

TEST_P(DynamicRTreeFuzzTest, RandomOperationsMatchReference) {
  const auto [variant, seed] = GetParam();
  Rng rng(seed);

  DynamicRTree::Options options;
  options.variant = variant;
  // Small nodes stress splits/condense far more per operation.
  options.max_entries = 2 + static_cast<uint32_t>(rng.UniformInt(7));
  options.min_entries =
      1 + static_cast<uint32_t>(rng.UniformInt(options.max_entries / 2));
  DynamicRTree tree(options);

  std::vector<Entry> live;
  uint32_t next_id = 0;
  constexpr int kBatches = 40;
  constexpr int kOpsPerBatch = 25;

  for (int batch = 0; batch < kBatches; ++batch) {
    for (int op = 0; op < kOpsPerBatch; ++op) {
      // Bias towards inserts early, removes late, so the tree both grows
      // tall and shrinks back.
      const bool grow_phase = batch < kBatches / 2;
      const uint64_t dice = rng.UniformInt(10);
      const bool insert = live.empty() || (grow_phase ? dice < 7 : dice < 3);
      if (insert) {
        Entry e{next_id++, RandomBox(rng, 200.0f, 8.0f)};
        tree.Insert(e.id, e.box);
        live.push_back(e);
      } else {
        const size_t victim = rng.UniformInt(live.size());
        ASSERT_TRUE(tree.Remove(live[victim].id, live[victim].box));
        live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
      }
    }

    ASSERT_EQ(tree.size(), live.size()) << "batch " << batch;
    ASSERT_TRUE(tree.CheckInvariants()) << "batch " << batch;
    for (int q = 0; q < 5; ++q) {
      const Box query = RandomBox(rng, 200.0f, 40.0f);
      ASSERT_EQ(TreeQuery(tree, query), ReferenceQuery(live, query))
          << "batch " << batch << " query " << q;
    }
  }

  // Drain completely; the tree must stay consistent to the last entry.
  while (!live.empty()) {
    ASSERT_TRUE(tree.Remove(live.back().id, live.back().box));
    live.pop_back();
    if (live.size() % 50 == 0) ASSERT_TRUE(tree.CheckInvariants());
  }
  EXPECT_TRUE(tree.empty());
}

TEST_P(DynamicRTreeFuzzTest, RandomUpdatesMatchReference) {
  // Update coverage (the RTUpdateDimensions surface): small in-place moves
  // that stay inside the leaf MBR, large moves that degrade to
  // remove+reinsert, not-found updates, and delete-reinsert churn — all
  // against the same brute-force oracle.
  const auto [variant, seed] = GetParam();
  Rng rng(seed + 1000);

  DynamicRTree::Options options;
  options.variant = variant;
  options.max_entries = 2 + static_cast<uint32_t>(rng.UniformInt(7));
  options.min_entries =
      1 + static_cast<uint32_t>(rng.UniformInt(options.max_entries / 2));
  DynamicRTree tree(options);

  std::vector<Entry> live;
  uint32_t next_id = 0;
  constexpr int kBatches = 40;
  constexpr int kOpsPerBatch = 25;

  for (int batch = 0; batch < kBatches; ++batch) {
    for (int op = 0; op < kOpsPerBatch; ++op) {
      const uint64_t dice = rng.UniformInt(10);
      if (live.empty() || dice < 3) {
        Entry e{next_id++, RandomBox(rng, 200.0f, 8.0f)};
        tree.Insert(e.id, e.box);
        live.push_back(e);
      } else if (dice < 5) {
        const size_t victim = rng.UniformInt(live.size());
        ASSERT_TRUE(tree.Remove(live[victim].id, live[victim].box));
        live.erase(live.begin() + static_cast<ptrdiff_t>(victim));
      } else if (dice < 8) {
        // Small nudge: usually rewritable in place (leaf MBR still covers
        // the new box), exercising the fast path plus upward tightening.
        Entry& e = live[rng.UniformInt(live.size())];
        const float dx = (rng.NextFloat() - 0.5f) * 2.0f;
        const float dy = (rng.NextFloat() - 0.5f) * 2.0f;
        const float dz = (rng.NextFloat() - 0.5f) * 2.0f;
        const Box moved(e.box.lo + Vec3(dx, dy, dz),
                        e.box.hi + Vec3(dx, dy, dz));
        ASSERT_TRUE(tree.Update(e.id, e.box, moved));
        e.box = moved;
      } else {
        // Large move across the space: must degrade to remove + reinsert.
        Entry& e = live[rng.UniformInt(live.size())];
        const Box teleported = RandomBox(rng, 200.0f, 8.0f);
        ASSERT_TRUE(tree.Update(e.id, e.box, teleported));
        e.box = teleported;
      }
    }

    // Not-found updates must return false and leave the tree untouched.
    const Box ghost = RandomBox(rng, 200.0f, 8.0f);
    ASSERT_FALSE(tree.Update(next_id + 12345, ghost, ghost));
    if (!live.empty()) {
      // Right id, wrong box: also not found (the API matches exact pairs).
      const Entry& e = live[0];
      const Box wrong(e.box.lo + Vec3(500.0f, 0, 0),
                      e.box.hi + Vec3(500.0f, 0, 0));
      ASSERT_FALSE(tree.Update(e.id, wrong, ghost));
    }

    ASSERT_EQ(tree.size(), live.size()) << "batch " << batch;
    ASSERT_TRUE(tree.CheckInvariants()) << "batch " << batch;
    for (int q = 0; q < 5; ++q) {
      const Box query = RandomBox(rng, 200.0f, 40.0f);
      ASSERT_EQ(TreeQuery(tree, query), ReferenceQuery(live, query))
          << "batch " << batch << " query " << q;
    }
  }

  // Delete-reinsert churn: repeatedly remove a block of entries and insert
  // replacements under fresh ids, shaking the free list and condense paths.
  for (int round = 0; round < 10; ++round) {
    const size_t churn = std::min<size_t>(live.size(), 30);
    for (size_t i = 0; i < churn; ++i) {
      ASSERT_TRUE(tree.Remove(live.back().id, live.back().box));
      live.pop_back();
    }
    for (size_t i = 0; i < churn; ++i) {
      Entry e{next_id++, RandomBox(rng, 200.0f, 8.0f)};
      tree.Insert(e.id, e.box);
      live.push_back(e);
    }
    ASSERT_TRUE(tree.CheckInvariants()) << "churn round " << round;
    const Box query = RandomBox(rng, 200.0f, 60.0f);
    ASSERT_EQ(TreeQuery(tree, query), ReferenceQuery(live, query))
        << "churn round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DynamicRTreeFuzzTest,
    ::testing::Combine(::testing::Values(RTreeVariant::kGuttman,
                                         RTreeVariant::kRStar),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param) == RTreeVariant::kGuttman
                             ? "Guttman"
                             : "RStar") +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace touch
