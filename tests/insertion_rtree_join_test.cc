#include "join/insertion_rtree_join.h"

#include <gtest/gtest.h>

#include <functional>

#include "core/factory.h"
#include "datagen/distributions.h"
#include "index/rtree.h"
#include "test_util.h"

namespace touch {
namespace {

// --- FromDynamic conversion ----------------------------------------------------

TEST(FromDynamicTest, FlatTreeMirrorsDynamicTree) {
  const Dataset boxes = GenerateSynthetic(Distribution::kClustered, 1500, 171);
  DynamicRTree dynamic;
  for (uint32_t i = 0; i < boxes.size(); ++i) dynamic.Insert(i, boxes[i]);
  const RTree flat = RTree::FromDynamic(dynamic);

  EXPECT_EQ(flat.size(), boxes.size());
  EXPECT_EQ(flat.height(), dynamic.height());

  // Containment invariants and single placement.
  std::vector<int> seen(boxes.size(), 0);
  std::function<void(uint32_t)> walk = [&](uint32_t id) {
    const RTree::Node& node = flat.nodes()[id];
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
        const uint32_t obj = flat.item_ids()[i];
        EXPECT_TRUE(Contains(node.mbr, boxes[obj]));
        ++seen[obj];
      }
      return;
    }
    for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
      const uint32_t child = flat.child_ids()[i];
      EXPECT_TRUE(Contains(node.mbr, flat.nodes()[child].mbr));
      walk(child);
    }
  };
  walk(flat.root());
  for (uint32_t obj = 0; obj < boxes.size(); ++obj) {
    EXPECT_EQ(seen[obj], 1) << obj;
  }
}

TEST(FromDynamicTest, QueriesMatchTheDynamicTree) {
  const Dataset boxes = GenerateSynthetic(Distribution::kGaussian, 1000, 172);
  DynamicRTree::Options opt;
  opt.variant = RTreeVariant::kRStar;
  DynamicRTree dynamic(opt);
  for (uint32_t i = 0; i < boxes.size(); ++i) dynamic.Insert(i, boxes[i]);
  const RTree flat = RTree::FromDynamic(dynamic);

  for (int q = 0; q < 30; ++q) {
    const Box query = CenteredBox(static_cast<float>(q) * 30.0f,
                                  static_cast<float>(q) * 30.0f, 500.0f,
                                  60.0f);
    std::vector<uint32_t> from_dynamic;
    dynamic.Query(query,
                  [&](uint32_t id, const Box&) { from_dynamic.push_back(id); });
    std::vector<uint32_t> from_flat;
    JoinStats stats;
    flat.Query(boxes, query, [&](uint32_t id) { from_flat.push_back(id); },
               &stats);
    std::sort(from_dynamic.begin(), from_dynamic.end());
    std::sort(from_flat.begin(), from_flat.end());
    EXPECT_EQ(from_flat, from_dynamic) << "query " << q;
  }
}

TEST(FromDynamicTest, EmptyTreeConverts) {
  const RTree flat = RTree::FromDynamic(DynamicRTree());
  EXPECT_TRUE(flat.empty());
}

// --- Insertion-built join ------------------------------------------------------

class InsertionJoinTest : public ::testing::TestWithParam<RTreeVariant> {
 protected:
  void SetUp() override {
    a_ = GenerateSynthetic(Distribution::kClustered, 900, 173);
    for (Box& box : a_) box = box.Enlarged(8.0f);
    b_ = GenerateSynthetic(Distribution::kClustered, 1400, 174);
  }
  Dataset a_;
  Dataset b_;
};

TEST_P(InsertionJoinTest, MatchesOracle) {
  InsertionRTreeJoinOptions opt;
  opt.variant = GetParam();
  InsertionRTreeJoin join(opt);
  EXPECT_EQ(RunJoinSorted(join, a_, b_), OracleJoin(a_, b_));
}

TEST_P(InsertionJoinTest, EmptyInputs) {
  InsertionRTreeJoinOptions opt;
  opt.variant = GetParam();
  InsertionRTreeJoin join(opt);
  VectorCollector out;
  EXPECT_EQ(join.Join({}, b_, out).results, 0u);
  EXPECT_EQ(join.Join(a_, {}, out).results, 0u);
}

INSTANTIATE_TEST_SUITE_P(Variants, InsertionJoinTest,
                         ::testing::Values(RTreeVariant::kGuttman,
                                           RTreeVariant::kRStar),
                         [](const auto& info) {
                           return info.param == RTreeVariant::kGuttman
                                      ? "Guttman"
                                      : "RStar";
                         });

TEST(InsertionJoinComparisonTest, BulkLoadedBeatsInsertionBuilt) {
  // The reason the paper benchmarks bulk-loaded trees: insertion-built
  // trees carry sibling overlap the traversal pays for.
  const Dataset a = GenerateSynthetic(Distribution::kClustered, 3000, 175);
  Dataset enlarged = a;
  for (Box& box : enlarged) box = box.Enlarged(5.0f);
  const Dataset b = GenerateSynthetic(Distribution::kClustered, 5000, 176);

  auto run = [&](const std::string& name) {
    auto algorithm = MakeAlgorithm(name);
    JoinStats stats;
    RunJoinSorted(*algorithm, enlarged, b, &stats);
    return stats;
  };
  // Note: factory's bulk-loaded rtree uses the paper's fanout-2 config while
  // the insertion trees use M=16; compare comparisons, the structural metric.
  const JoinStats bulk = run("rtree");
  const JoinStats guttman = run("rtree-guttman");
  EXPECT_LT(bulk.comparisons + bulk.node_comparisons,
            guttman.comparisons + guttman.node_comparisons);
}

TEST(InsertionJoinComparisonTest, RStarNotWorseThanGuttman) {
  // R*'s overlap-minimizing heuristics should not lose to plain Guttman on
  // skewed data (usually they win; tolerate parity).
  const Dataset a = GenerateSynthetic(Distribution::kClustered, 3000, 177);
  Dataset enlarged = a;
  for (Box& box : enlarged) box = box.Enlarged(5.0f);
  const Dataset b = GenerateSynthetic(Distribution::kClustered, 5000, 178);

  auto run = [&](const std::string& name) {
    auto algorithm = MakeAlgorithm(name);
    JoinStats stats;
    RunJoinSorted(*algorithm, enlarged, b, &stats);
    return stats.comparisons + stats.node_comparisons;
  };
  EXPECT_LE(run("rtree-rstar"), run("rtree-guttman") * 11 / 10);
}

}  // namespace
}  // namespace touch
