#include "join/rplus_join.h"

#include <gtest/gtest.h>

#include <functional>

#include "datagen/distributions.h"
#include "test_util.h"
#include "util/rng.h"

namespace touch {
namespace {

class RPlusTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    boxes_ = GenerateSynthetic(Distribution::kClustered, 2000, 161);
  }
  Dataset boxes_;
};

TEST_F(RPlusTreeTest, SiblingRegionsAreDisjointAndCoverParent) {
  const RPlusTree tree(boxes_, 16);
  std::function<void(uint32_t)> walk = [&](uint32_t id) {
    const RPlusTree::Node& node = tree.nodes()[id];
    if (node.IsLeaf()) return;
    double child_volume = 0;
    for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
      const RPlusTree::Node& child = tree.nodes()[tree.child_ids()[i]];
      EXPECT_TRUE(Contains(node.region, child.region));
      child_volume += child.region.Volume();
      for (uint32_t j = i + 1; j < node.begin + node.count; ++j) {
        const RPlusTree::Node& sibling = tree.nodes()[tree.child_ids()[j]];
        // Regions may touch on the split plane but never overlap in volume.
        EXPECT_EQ(Intersection(child.region, sibling.region).Volume(), 0.0);
      }
      walk(tree.child_ids()[i]);
    }
    EXPECT_NEAR(child_volume, node.region.Volume(),
                node.region.Volume() * 1e-5);
  };
  walk(tree.root());
}

TEST_F(RPlusTreeTest, EveryObjectIsPlacedInEveryLeafItOverlaps) {
  const RPlusTree tree(boxes_, 16);
  EXPECT_EQ(tree.size(), boxes_.size());
  EXPECT_GE(tree.placements(), tree.size());  // duplication only adds

  // Each object: the set of leaves holding it must equal the set of leaf
  // regions it overlaps.
  std::vector<std::vector<uint32_t>> leaves_of(boxes_.size());
  for (uint32_t node_id = 0; node_id < tree.nodes().size(); ++node_id) {
    const RPlusTree::Node& node = tree.nodes()[node_id];
    if (!node.IsLeaf()) continue;
    for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
      leaves_of[tree.item_ids()[i]].push_back(node_id);
    }
    for (uint32_t obj = 0; obj < boxes_.size(); ++obj) {
      // Spot check a sample to keep the test fast.
      if (obj % 97 != 0) continue;
      const bool overlaps = Intersects(boxes_[obj], node.region);
      const bool stored =
          std::find(leaves_of[obj].begin(), leaves_of[obj].end(), node_id) !=
          leaves_of[obj].end();
      if (overlaps && !stored) {
        // Overlap can be face-only with volume 0 on the far side of a
        // half-open split; full containment of the placement rule is
        // checked through query correctness below instead.
        continue;
      }
      if (stored) {
        EXPECT_TRUE(Intersects(boxes_[obj], node.region)) << obj;
      }
    }
  }
  for (uint32_t obj = 0; obj < boxes_.size(); ++obj) {
    EXPECT_GE(leaves_of[obj].size(), 1u) << obj;
  }
}

TEST_F(RPlusTreeTest, QueriesMatchBruteForceWithoutDuplicates) {
  const RPlusTree tree(boxes_, 16);
  Rng rng(162);
  for (int q = 0; q < 50; ++q) {
    const Box query = CenteredBox(rng.NextFloat() * 1000.0f,
                                  rng.NextFloat() * 1000.0f,
                                  rng.NextFloat() * 1000.0f, 40.0f);
    std::vector<uint32_t> expected;
    for (uint32_t i = 0; i < boxes_.size(); ++i) {
      if (Intersects(boxes_[i], query)) expected.push_back(i);
    }
    std::vector<uint32_t> got;
    JoinStats stats;
    tree.Query(boxes_, query, &got, &stats);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

TEST_F(RPlusTreeTest, AllIdenticalBoxesDoNotRecurseForever) {
  const Dataset same(500, CenteredBox(10, 10, 10));
  const RPlusTree tree(same, 16);
  EXPECT_EQ(tree.size(), 500u);
  std::vector<uint32_t> got;
  tree.Query(same, CenteredBox(10, 10, 10), &got, nullptr);
  EXPECT_EQ(got.size(), 500u);
}

class RPlusJoinTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = GenerateSynthetic(Distribution::kGaussian, 800, 163);
    for (Box& box : a_) box = box.Enlarged(9.0f);
    b_ = GenerateSynthetic(Distribution::kGaussian, 1300, 164);
  }
  Dataset a_;
  Dataset b_;
};

TEST_F(RPlusJoinTest, MatchesOracle) {
  RPlusJoin join;
  EXPECT_EQ(RunJoinSorted(join, a_, b_), OracleJoin(a_, b_));
}

TEST_F(RPlusJoinTest, NoDuplicateResultsDespiteDuplicatedPlacements) {
  RPlusJoin join;
  VectorCollector out;
  join.Join(a_, b_, out);
  EXPECT_TRUE(HasNoDuplicates(out.pairs()));
}

TEST_F(RPlusJoinTest, MatchesOracleAcrossLeafCapacities) {
  for (const size_t capacity : {size_t{1}, size_t{8}, size_t{512}}) {
    RPlusJoinOptions opt;
    opt.leaf_capacity = capacity;
    RPlusJoin join(opt);
    EXPECT_EQ(RunJoinSorted(join, a_, b_), OracleJoin(a_, b_))
        << "capacity=" << capacity;
  }
}

TEST_F(RPlusJoinTest, EmptyInputs) {
  RPlusJoin join;
  VectorCollector out;
  EXPECT_EQ(join.Join({}, b_, out).results, 0u);
  EXPECT_EQ(join.Join(a_, {}, out).results, 0u);
  EXPECT_TRUE(out.pairs().empty());
}

TEST_F(RPlusJoinTest, StatsAreFilled) {
  RPlusJoin join;
  CountingCollector out;
  const JoinStats stats = join.Join(a_, b_, out);
  EXPECT_EQ(stats.results, out.count());
  EXPECT_GT(stats.comparisons, 0u);
  EXPECT_GT(stats.node_comparisons, 0u);
  EXPECT_GT(stats.memory_bytes, 0u);
}

}  // namespace
}  // namespace touch
