#include "core/touch.h"

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "test_util.h"

namespace touch {
namespace {

Dataset DenseA() {
  Dataset a = GenerateSynthetic(Distribution::kClustered, 500, 20);
  for (Box& box : a) box = box.Enlarged(10.0f);
  return a;
}
Dataset DenseB() { return GenerateSynthetic(Distribution::kClustered, 800, 21); }

TEST(TouchJoinTest, MatchesOracle) {
  TouchJoin join;
  const Dataset a = DenseA();
  const Dataset b = DenseB();
  EXPECT_EQ(RunJoinSorted(join, a, b), OracleJoin(a, b));
}

TEST(TouchJoinTest, MatchesOracleAcrossFanouts) {
  const Dataset a = DenseA();
  const Dataset b = DenseB();
  const auto oracle = OracleJoin(a, b);
  for (const size_t fanout : {2u, 3u, 8u, 20u}) {
    TouchOptions opt;
    opt.fanout = fanout;
    TouchJoin join(opt);
    EXPECT_EQ(RunJoinSorted(join, a, b), oracle) << "fanout=" << fanout;
  }
}

TEST(TouchJoinTest, MatchesOracleAcrossPartitionCounts) {
  const Dataset a = DenseA();
  const Dataset b = DenseB();
  const auto oracle = OracleJoin(a, b);
  for (const size_t partitions : {1u, 4u, 64u, 1024u, 100000u}) {
    TouchOptions opt;
    opt.partitions = partitions;
    TouchJoin join(opt);
    EXPECT_EQ(RunJoinSorted(join, a, b), oracle)
        << "partitions=" << partitions;
  }
}

TEST(TouchJoinTest, MatchesOracleForEveryLocalJoinStrategy) {
  const Dataset a = DenseA();
  const Dataset b = DenseB();
  const auto oracle = OracleJoin(a, b);
  for (const LocalJoinStrategy strategy :
       {LocalJoinStrategy::kGrid, LocalJoinStrategy::kPlaneSweep,
        LocalJoinStrategy::kNestedLoop}) {
    TouchOptions opt;
    opt.local_join = strategy;
    TouchJoin join(opt);
    EXPECT_EQ(RunJoinSorted(join, a, b), oracle)
        << LocalJoinStrategyName(strategy);
  }
}

TEST(TouchJoinTest, MatchesOracleForEveryJoinOrder) {
  const Dataset a = DenseA();   // 500 objects
  const Dataset b = DenseB();   // 800 objects
  const auto oracle = OracleJoin(a, b);
  for (const TouchOptions::JoinOrder order :
       {TouchOptions::JoinOrder::kAuto, TouchOptions::JoinOrder::kBuildOnA,
        TouchOptions::JoinOrder::kBuildOnB}) {
    TouchOptions opt;
    opt.join_order = order;
    TouchJoin join(opt);
    // Pair orientation must stay (a, b) even when the tree is built on B.
    EXPECT_EQ(RunJoinSorted(join, a, b), oracle);
  }
}

TEST(TouchJoinTest, NoDuplicateResults) {
  TouchJoin join;
  Dataset a = DenseA();
  for (Box& box : a) box = box.Enlarged(30.0f);  // force heavy cell overlap
  const Dataset b = DenseB();
  VectorCollector out;
  join.Join(a, b, out);
  EXPECT_TRUE(HasNoDuplicates(out.pairs()));
}

TEST(TouchJoinTest, FiltersObjectsOutsideTheTree) {
  // B objects far from every A object must be filtered, not compared.
  Dataset a;
  for (int i = 0; i < 100; ++i) {
    a.push_back(CenteredBox(static_cast<float>(i), 0, 0));
  }
  Dataset b;
  for (int i = 0; i < 50; ++i) {
    b.push_back(CenteredBox(static_cast<float>(i), 0, 0));       // near
    b.push_back(CenteredBox(static_cast<float>(i), 500, 500));   // far
  }
  TouchOptions opt;
  opt.join_order = TouchOptions::JoinOrder::kBuildOnA;
  TouchJoin join(opt);
  JoinStats stats;
  const auto pairs = RunJoinSorted(join, a, b, &stats);
  EXPECT_EQ(pairs, OracleJoin(a, b));
  EXPECT_GE(stats.filtered, 50u);  // all far objects filtered
}

TEST(TouchJoinTest, UniformDataFiltersAlmostNothing) {
  // Paper Figure 13: on uniform data of equal extent (almost) nothing is
  // filtered. At test scale the leaf MBRs keep a little dead space, so allow
  // a few percent.
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 2000, 22);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 2000, 23);
  TouchOptions opt;
  opt.join_order = TouchOptions::JoinOrder::kBuildOnA;
  TouchJoin join(opt);
  JoinStats stats;
  RunJoinSorted(join, a, b, &stats);
  EXPECT_LT(stats.filtered, b.size() / 10);
}

TEST(TouchJoinTest, ClusteredDataFiltersMoreThanUniform) {
  // Paper Figure 13: the less uniform the data, the more gets filtered.
  SyntheticOptions copt;
  copt.clusters = 10;
  copt.cluster_sigma = 50.0f;
  const Dataset ca =
      GenerateSynthetic(Distribution::kClustered, 2000, 24, copt);
  const Dataset cb =
      GenerateSynthetic(Distribution::kClustered, 2000, 25, copt);
  TouchOptions opt;
  opt.join_order = TouchOptions::JoinOrder::kBuildOnA;
  TouchJoin join(opt);
  JoinStats clustered_stats;
  RunJoinSorted(join, ca, cb, &clustered_stats);

  const Dataset ua = GenerateSynthetic(Distribution::kUniform, 2000, 24);
  const Dataset ub = GenerateSynthetic(Distribution::kUniform, 2000, 25);
  JoinStats uniform_stats;
  RunJoinSorted(join, ua, ub, &uniform_stats);
  EXPECT_GT(clustered_stats.filtered, uniform_stats.filtered);
}

TEST(TouchJoinTest, SmallerFanoutNeedsFewerComparisons) {
  // Paper Figure 14(b): fanout 2 does ~1.5x fewer comparisons than 20.
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 4000, 26);
  Dataset a_big = a;
  for (Box& box : a_big) box = box.Enlarged(5.0f);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 8000, 27);
  JoinStats fanout2;
  JoinStats fanout20;
  {
    TouchOptions opt;
    opt.fanout = 2;
    opt.join_order = TouchOptions::JoinOrder::kBuildOnA;
    TouchJoin join(opt);
    RunJoinSorted(join, a_big, b, &fanout2);
  }
  {
    TouchOptions opt;
    opt.fanout = 20;
    opt.join_order = TouchOptions::JoinOrder::kBuildOnA;
    TouchJoin join(opt);
    RunJoinSorted(join, a_big, b, &fanout20);
  }
  EXPECT_LT(fanout2.comparisons, fanout20.comparisons);
}

TEST(TouchJoinTest, AutoOrderBuildsOnSmallerSide) {
  // With kAuto and |A| >> |B| the tree goes on B; the cheap way to observe
  // it is that results stay correctly oriented and memory stays low.
  const Dataset big = GenerateSynthetic(Distribution::kUniform, 5000, 28);
  const Dataset tiny = GenerateSynthetic(Distribution::kUniform, 100, 29);
  TouchJoin join;
  EXPECT_EQ(RunJoinSorted(join, big, tiny), OracleJoin(big, tiny));
}

TEST(TouchJoinTest, EmptyInputs) {
  TouchJoin join;
  const Dataset a = DenseA();
  JoinStats stats;
  EXPECT_TRUE(RunJoinSorted(join, {}, a, &stats).empty());
  EXPECT_TRUE(RunJoinSorted(join, a, {}, &stats).empty());
  EXPECT_TRUE(RunJoinSorted(join, {}, {}, &stats).empty());
}

TEST(TouchJoinTest, IdenticalDatasetsSelfJoin) {
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 500, 30);
  TouchJoin join;
  const auto pairs = RunJoinSorted(join, a, a);
  EXPECT_EQ(pairs, OracleJoin(a, a));
  // Self-join must at least contain the diagonal.
  EXPECT_GE(pairs.size(), a.size());
}

TEST(TouchJoinTest, AllOverlappingAdversarialCase) {
  // Every box overlaps every other box: result is the full cross product.
  Dataset a;
  Dataset b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(CenteredBox(500, 500, 500, 100 + static_cast<float>(i)));
    b.push_back(CenteredBox(510, 510, 510, 100 + static_cast<float>(i)));
  }
  TouchJoin join;
  JoinStats stats;
  const auto pairs = RunJoinSorted(join, a, b, &stats);
  EXPECT_EQ(pairs.size(), a.size() * b.size());
}

TEST(TouchJoinTest, StatsTimingsArePopulated) {
  TouchJoin join;
  const Dataset a = DenseA();
  const Dataset b = DenseB();
  JoinStats stats;
  RunJoinSorted(join, a, b, &stats);
  EXPECT_GE(stats.total_seconds,
            stats.build_seconds);  // total covers all phases
  EXPECT_GT(stats.total_seconds, 0.0);
  EXPECT_GT(stats.memory_bytes, 0u);
  EXPECT_GT(stats.node_comparisons, 0u);
}

TEST(TouchJoinTest, ResultsCounterMatchesCollector) {
  TouchJoin join;
  const Dataset a = DenseA();
  const Dataset b = DenseB();
  CountingCollector out;
  const JoinStats stats = join.Join(a, b, out);
  EXPECT_EQ(stats.results, out.count());
}

TEST(DistanceJoinTest, EquivalentToEnlargedSpatialJoin) {
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 300, 31);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 300, 32);
  TouchJoin join;
  VectorCollector distance_out;
  DistanceJoin(join, a, b, 15.0f, distance_out);
  auto distance_pairs = distance_out.pairs();
  std::sort(distance_pairs.begin(), distance_pairs.end());

  Dataset enlarged = a;
  for (Box& box : enlarged) box = box.Enlarged(15.0f);
  EXPECT_EQ(distance_pairs, OracleJoin(enlarged, b));
}

TEST(DistanceJoinTest, LargerEpsilonYieldsSupersetOfResults) {
  // Compact space so both epsilon values yield non-empty result sets.
  SyntheticOptions gen;
  gen.space = 120.0f;
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 400, 33, gen);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 400, 34, gen);
  TouchJoin join;
  VectorCollector out5;
  VectorCollector out10;
  DistanceJoin(join, a, b, 5.0f, out5);
  DistanceJoin(join, a, b, 10.0f, out10);
  auto p5 = out5.pairs();
  auto p10 = out10.pairs();
  std::sort(p5.begin(), p5.end());
  std::sort(p10.begin(), p10.end());
  EXPECT_TRUE(std::includes(p10.begin(), p10.end(), p5.begin(), p5.end()));
  EXPECT_GT(p10.size(), p5.size());
}

TEST(DistanceJoinTest, ZeroEpsilonIsPlainSpatialJoin) {
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 300, 35);
  Dataset b = a;  // guarantee overlaps
  TouchJoin join;
  VectorCollector out;
  DistanceJoin(join, a, b, 0.0f, out);
  auto pairs = out.pairs();
  std::sort(pairs.begin(), pairs.end());
  EXPECT_EQ(pairs, OracleJoin(a, b));
}

}  // namespace
}  // namespace touch
