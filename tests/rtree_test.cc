#include "index/rtree.h"

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "test_util.h"
#include "util/rng.h"

namespace touch {
namespace {

// Brute-force range query for comparison.
std::vector<uint32_t> BruteForceQuery(const Dataset& boxes, const Box& query) {
  std::vector<uint32_t> hits;
  for (uint32_t i = 0; i < boxes.size(); ++i) {
    if (Intersects(boxes[i], query)) hits.push_back(i);
  }
  return hits;
}

TEST(RTreeTest, EmptyTree) {
  const RTree tree({}, 8, 4);
  EXPECT_TRUE(tree.empty());
  EXPECT_EQ(tree.height(), 0);
  JoinStats stats;
  int hits = 0;
  tree.Query({}, MakeBox(0, 0, 0, 1, 1, 1), [&](uint32_t) { ++hits; }, &stats);
  EXPECT_EQ(hits, 0);
}

TEST(RTreeTest, SingleObjectTree) {
  const Dataset boxes = {MakeBox(1, 1, 1, 2, 2, 2)};
  const RTree tree(boxes, 8, 4);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1);
  JoinStats stats;
  std::vector<uint32_t> hits;
  tree.Query(boxes, MakeBox(0, 0, 0, 5, 5, 5),
             [&](uint32_t id) { hits.push_back(id); }, &stats);
  EXPECT_EQ(hits, std::vector<uint32_t>{0});
}

TEST(RTreeTest, NodeMbrsEncloseChildren) {
  const Dataset boxes = GenerateSynthetic(Distribution::kClustered, 2000, 1);
  const RTree tree(boxes, 16, 4);
  for (const RTree::Node& node : tree.nodes()) {
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
        EXPECT_TRUE(Contains(node.mbr, boxes[tree.item_ids()[i]]));
      }
    } else {
      for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
        EXPECT_TRUE(
            Contains(node.mbr, tree.nodes()[tree.child_ids()[i]].mbr));
      }
    }
  }
}

TEST(RTreeTest, LeavesPartitionTheInput) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 1000, 2);
  const RTree tree(boxes, 16, 4);
  std::vector<uint32_t> all(tree.item_ids().begin(), tree.item_ids().end());
  std::sort(all.begin(), all.end());
  for (uint32_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i], i);
}

TEST(RTreeTest, RootLevelMatchesHeight) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 1000, 3);
  const RTree tree(boxes, 8, 2);
  EXPECT_EQ(tree.nodes()[tree.root()].level, tree.height() - 1);
}

TEST(RTreeTest, SmallerFanoutGivesTallerTree) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 2000, 4);
  const RTree tall(boxes, 8, 2);
  const RTree flat(boxes, 8, 16);
  EXPECT_GT(tall.height(), flat.height());
}

TEST(RTreeTest, QueryMatchesBruteForce) {
  const Dataset boxes = GenerateSynthetic(Distribution::kGaussian, 3000, 5);
  const RTree tree(boxes, 16, 4);
  Rng rng(99);
  for (int q = 0; q < 50; ++q) {
    const Box query = CenteredBox(
        static_cast<float>(rng.Uniform(0, 1000)),
        static_cast<float>(rng.Uniform(0, 1000)),
        static_cast<float>(rng.Uniform(0, 1000)),
        static_cast<float>(rng.Uniform(1, 50)));
    JoinStats stats;
    std::vector<uint32_t> hits;
    tree.Query(boxes, query, [&](uint32_t id) { hits.push_back(id); }, &stats);
    std::sort(hits.begin(), hits.end());
    EXPECT_EQ(hits, BruteForceQuery(boxes, query)) << "query " << q;
  }
}

TEST(RTreeTest, QueryCountsComparisons) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 1000, 6);
  const RTree tree(boxes, 16, 4);
  JoinStats stats;
  tree.Query(boxes, MakeBox(0, 0, 0, 1000, 1000, 1000), [](uint32_t) {}, &stats);
  // A query covering everything must test every object and visit every node.
  EXPECT_EQ(stats.comparisons, boxes.size());
  EXPECT_GT(stats.node_comparisons, 0u);
}

TEST(RTreeTest, DisjointQueryPrunesEverything) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 1000, 7);
  const RTree tree(boxes, 16, 4);
  JoinStats stats;
  int hits = 0;
  tree.Query(boxes, MakeBox(5000, 5000, 5000, 6000, 6000, 6000),
             [&](uint32_t) { ++hits; }, &stats);
  EXPECT_EQ(hits, 0);
  // Pruned at the root: no object comparisons at all.
  EXPECT_EQ(stats.comparisons, 0u);
}

TEST(RTreeTest, MemoryUsageGrowsWithInput) {
  const Dataset small = GenerateSynthetic(Distribution::kUniform, 100, 8);
  const Dataset large = GenerateSynthetic(Distribution::kUniform, 10000, 8);
  EXPECT_LT(RTree(small, 16, 4).MemoryUsageBytes(),
            RTree(large, 16, 4).MemoryUsageBytes());
}

TEST(RTreeTest, IdenticalBoxesAllFound) {
  const Dataset boxes(500, MakeBox(5, 5, 5, 6, 6, 6));
  const RTree tree(boxes, 8, 2);
  JoinStats stats;
  std::vector<uint32_t> hits;
  tree.Query(boxes, MakeBox(5.5f, 5.5f, 5.5f, 5.6f, 5.6f, 5.6f),
             [&](uint32_t id) { hits.push_back(id); }, &stats);
  EXPECT_EQ(hits.size(), boxes.size());
}

}  // namespace
}  // namespace touch
