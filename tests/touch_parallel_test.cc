// Tests of the multi-threaded TOUCH join phase: results and counters must be
// independent of the thread count; only wall-clock and result order may vary.

#include <gtest/gtest.h>

#include "core/touch.h"
#include "datagen/distributions.h"
#include "test_util.h"

namespace touch {
namespace {

class TouchParallelTest : public ::testing::TestWithParam<int> {
 protected:
  void SetUp() override {
    a_ = GenerateSynthetic(Distribution::kClustered, 3000, 111);
    for (Box& box : a_) box = box.Enlarged(6.0f);
    b_ = GenerateSynthetic(Distribution::kClustered, 6000, 112);
  }
  Dataset a_;
  Dataset b_;
};

TEST_P(TouchParallelTest, ResultsMatchSequentialRun) {
  TouchJoin sequential;
  const auto expected = RunJoinSorted(sequential, a_, b_);

  TouchOptions opt;
  opt.threads = GetParam();
  TouchJoin parallel(opt);
  JoinStats stats;
  EXPECT_EQ(RunJoinSorted(parallel, a_, b_, &stats), expected);
  EXPECT_EQ(stats.results, expected.size());
}

TEST_P(TouchParallelTest, CountersMatchSequentialRun) {
  TouchJoin sequential;
  JoinStats seq_stats;
  RunJoinSorted(sequential, a_, b_, &seq_stats);

  TouchOptions opt;
  opt.threads = GetParam();
  TouchJoin parallel(opt);
  JoinStats par_stats;
  RunJoinSorted(parallel, a_, b_, &par_stats);
  // The same local joins run, just on different threads.
  EXPECT_EQ(par_stats.comparisons, seq_stats.comparisons);
  EXPECT_EQ(par_stats.filtered, seq_stats.filtered);
  EXPECT_EQ(par_stats.results, seq_stats.results);
}

INSTANTIATE_TEST_SUITE_P(ThreadCounts, TouchParallelTest,
                         ::testing::Values(2, 4, 8));

TEST(TouchParallelEdgeTest, ParallelDistanceJoinMatches) {
  const Dataset a = GenerateSynthetic(Distribution::kGaussian, 2000, 113);
  const Dataset b = GenerateSynthetic(Distribution::kGaussian, 4000, 114);

  TouchJoin sequential;
  VectorCollector seq_out;
  DistanceJoin(sequential, a, b, 7.5f, seq_out);
  auto expected = seq_out.pairs();
  std::sort(expected.begin(), expected.end());

  TouchOptions opt;
  opt.threads = 4;
  TouchJoin parallel(opt);
  VectorCollector par_out;
  DistanceJoin(parallel, a, b, 7.5f, par_out);
  auto got = par_out.pairs();
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, expected);
}

TEST(TouchParallelEdgeTest, TinyInputsWithManyThreads) {
  Dataset a = {CenteredBox(5, 5, 5), CenteredBox(6, 5, 5)};
  Dataset b = {CenteredBox(5, 5, 5)};
  TouchOptions opt;
  opt.threads = 16;
  TouchJoin join(opt);
  EXPECT_EQ(RunJoinSorted(join, a, b), OracleJoin(a, b));
}

TEST(TouchParallelEdgeTest, AllLocalJoinStrategiesParallelize) {
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 1500, 115);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 2500, 116);
  Dataset enlarged = a;
  for (Box& box : enlarged) box = box.Enlarged(9.0f);
  const auto oracle = OracleJoin(enlarged, b);

  for (const LocalJoinStrategy strategy :
       {LocalJoinStrategy::kGrid, LocalJoinStrategy::kPlaneSweep,
        LocalJoinStrategy::kNestedLoop}) {
    TouchOptions opt;
    opt.threads = 4;
    opt.local_join = strategy;
    TouchJoin join(opt);
    EXPECT_EQ(RunJoinSorted(join, enlarged, b), oracle)
        << LocalJoinStrategyName(strategy);
  }
}

}  // namespace
}  // namespace touch
