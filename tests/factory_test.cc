#include "core/factory.h"

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "test_util.h"

namespace touch {
namespace {

// Every accepted name must round-trip: construct, report a name, and produce
// exactly the oracle's result set on a dense input.
TEST(FactoryTest, EveryNameConstructsAndJoinsCorrectly) {
  Dataset a = GenerateSynthetic(Distribution::kClustered, 150, 31);
  for (Box& box : a) box = box.Enlarged(8.0f);
  const Dataset b = GenerateSynthetic(Distribution::kClustered, 250, 32);
  const auto oracle = OracleJoin(a, b);
  ASSERT_FALSE(oracle.empty());

  for (const std::string& name : AllAlgorithmNames()) {
    const std::unique_ptr<SpatialJoinAlgorithm> algorithm = MakeAlgorithm(name);
    ASSERT_NE(algorithm, nullptr) << name;
    EXPECT_FALSE(algorithm->name().empty()) << name;
    EXPECT_EQ(RunJoinSorted(*algorithm, a, b), oracle) << name;
  }
}

TEST(FactoryTest, ParameterizedNamesApplyTheirResolution) {
  const std::unique_ptr<SpatialJoinAlgorithm> algorithm =
      MakeAlgorithm("pbsm-123");
  ASSERT_NE(algorithm, nullptr);
  EXPECT_EQ(static_cast<const PbsmJoin*>(algorithm.get())
                ->options()
                .resolution,
            123);
}

TEST(FactoryTest, UnknownNamesReturnNull) {
  EXPECT_EQ(MakeAlgorithm(""), nullptr);
  EXPECT_EQ(MakeAlgorithm("bogus"), nullptr);
  EXPECT_EQ(MakeAlgorithm("TOUCH"), nullptr);
  EXPECT_EQ(MakeAlgorithm("pbsm-0"), nullptr);
  EXPECT_EQ(MakeAlgorithm("pbsm--5"), nullptr);
  EXPECT_EQ(MakeAlgorithm("nbps-abc"), nullptr);
}

TEST(FactoryTest, UnknownAlgorithmMessageNamesCulpritAndAcceptedList) {
  const std::string message = UnknownAlgorithmMessage("bogus");
  EXPECT_NE(message.find("'bogus'"), std::string::npos);
  for (const std::string& name : AllAlgorithmNames()) {
    EXPECT_NE(message.find(name), std::string::npos) << name;
  }
}

}  // namespace
}  // namespace touch
