// Differential harness for the batched epsilon-overlap kernels
// (core/overlap_kernel.h): every dispatched kernel is held to *sequence*
// identity — same hits, same order, same examined counts — against its
// scalar reference twin, on the paper's synthetic distributions and on
// adversarial inputs (epsilon = 0, boxes touching exactly at a boundary,
// negative coordinates, denormals, infinities, NaN, and slab tails of every
// length shorter than a vector). Dispatch is at runtime, so one binary
// carries every level: the cross-level pass below iterates
// simd::RuntimeAvailableLevels(), forces each via ForceSimdLevel, and
// re-runs the whole differential surface — upgrading the old "dispatched
// build vs scalar build" CI matrix to "every available level vs scalar
// within one process". CI additionally runs the full suite once per forced
// TOUCH_SIMD_LEVEL, which pins the suite at that level end to end.

#include "core/overlap_kernel.h"

#include <cmath>
#include <cstring>
#include <limits>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "index/rtree.h"
#include "join/algorithm.h"
#include "join/indexed_nested_loop.h"
#include "test_util.h"

namespace touch {
namespace {

constexpr float kInf = std::numeric_limits<float>::infinity();

// --- sequence-identity helpers ----------------------------------------------

void ExpectCollectIdentity(const BoxSlab& slab, size_t begin, size_t end,
                           const Box& query) {
  std::vector<uint32_t> batched;
  std::vector<uint32_t> scalar;
  const size_t batched_examined =
      CollectOverlaps(slab, begin, end, query, batched);
  const size_t scalar_examined =
      CollectOverlapsScalar(slab, begin, end, query, scalar);
  EXPECT_EQ(batched_examined, scalar_examined);
  EXPECT_EQ(batched, scalar);
}

void ExpectSweepIdentity(const BoxSlab& slab, size_t begin, size_t end,
                         const Box& query) {
  std::vector<uint32_t> batched;
  std::vector<uint32_t> scalar;
  const size_t batched_examined =
      CollectOverlapsUntilBeyondX(slab, begin, end, query, batched);
  const size_t scalar_examined =
      CollectOverlapsUntilBeyondXScalar(slab, begin, end, query, scalar);
  EXPECT_EQ(batched_examined, scalar_examined);
  EXPECT_EQ(batched, scalar);
}

void ExpectClassifyIdentity(const BoxSlab& slab, size_t begin, size_t end,
                            const Box& query) {
  size_t batched_first = SIZE_MAX;
  size_t scalar_first = SIZE_MAX;
  uint64_t batched_examined = 0;
  uint64_t scalar_examined = 0;
  const int batched = ClassifyOverlaps(slab, begin, end, query,
                                       &batched_first, &batched_examined);
  const int scalar = ClassifyOverlapsScalar(slab, begin, end, query,
                                            &scalar_first, &scalar_examined);
  EXPECT_EQ(batched, scalar);
  EXPECT_EQ(batched_examined, scalar_examined);
  if (scalar > 0) EXPECT_EQ(batched_first, scalar_first);
}

void ExpectGatherIdentity(const BoxSlab& slab,
                          std::span<const uint32_t> positions,
                          const Box& query) {
  std::vector<uint32_t> batched;
  std::vector<uint32_t> scalar;
  const size_t batched_examined =
      CollectOverlapsGather(slab, positions, query, batched);
  const size_t scalar_examined =
      CollectOverlapsGatherScalar(slab, positions, query, scalar);
  EXPECT_EQ(batched_examined, scalar_examined);
  EXPECT_EQ(batched, scalar);
}

// Runs every kernel against its twin over the full range plus offset
// subranges (so chunk alignment relative to `begin` varies).
void ExpectAllKernelsIdentical(const BoxSlab& slab,
                               std::span<const Box> queries) {
  std::mt19937 rng(7);
  std::vector<uint32_t> positions;
  for (uint32_t i = 0; i < slab.size(); ++i) {
    if (rng() % 3 != 0) positions.push_back(i);
  }
  for (const Box& query : queries) {
    ExpectCollectIdentity(slab, 0, slab.size(), query);
    ExpectClassifyIdentity(slab, 0, slab.size(), query);
    ExpectGatherIdentity(slab, positions, query);
    if (slab.size() > 5) {
      const size_t begin = slab.size() / 3;
      const size_t end = slab.size() - 1;
      ExpectCollectIdentity(slab, begin, end, query);
      ExpectClassifyIdentity(slab, begin, end, query);
    }
  }
}

Dataset SortedByXLow(Dataset boxes) {
  std::sort(boxes.begin(), boxes.end(), [](const Box& a, const Box& b) {
    return a.lo.x < b.lo.x;
  });
  return boxes;
}

// --- paper distributions -----------------------------------------------------

class OverlapKernelDistributionTest
    : public ::testing::TestWithParam<Distribution> {};

TEST_P(OverlapKernelDistributionTest, CollectClassifyGatherMatchScalar) {
  for (const float epsilon : {0.0f, 2.5f}) {
    const Dataset boxes = GenerateSynthetic(GetParam(), 700, /*seed=*/11);
    const Dataset queries = GenerateSynthetic(GetParam(), 120, /*seed=*/22);
    BoxSlab slab;
    slab.Assign(boxes, epsilon);
    ExpectAllKernelsIdentical(slab, queries);
  }
}

TEST_P(OverlapKernelDistributionTest, SweepMatchesScalar) {
  for (const float epsilon : {0.0f, 2.5f}) {
    const Dataset sorted =
        SortedByXLow(GenerateSynthetic(GetParam(), 700, /*seed=*/33));
    const Dataset queries = GenerateSynthetic(GetParam(), 120, /*seed=*/44);
    BoxSlab slab;
    slab.Assign(sorted, epsilon);
    for (const Box& query : queries) {
      ExpectSweepIdentity(slab, 0, slab.size(), query);
      ExpectSweepIdentity(slab, slab.size() / 2, slab.size(), query);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, OverlapKernelDistributionTest,
                         ::testing::Values(Distribution::kUniform,
                                           Distribution::kGaussian,
                                           Distribution::kClustered),
                         [](const auto& info) {
                           return DistributionName(info.param);
                         });

// --- adversarial inputs ------------------------------------------------------

Dataset AdversarialBoxes() {
  const float denormal = 1e-42f;  // subnormal: exercises flush-to-zero bugs
  return Dataset{
      MakeBox(0, 0, 0, 1, 1, 1),
      MakeBox(1, 0, 0, 2, 1, 1),        // shares the x=1 face with the first
      MakeBox(1, 1, 1, 2, 2, 2),        // shares only the corner (1,1,1)
      MakeBox(-5, -5, -5, -4, -4, -4),  // fully negative coordinates
      MakeBox(-1, -1, -1, 1, 1, 1),     // spans the origin
      MakeBox(denormal, denormal, denormal, denormal, denormal, denormal),
      MakeBox(-denormal, -denormal, -denormal, denormal, denormal, denormal),
      MakeBox(-kInf, -kInf, -kInf, kInf, kInf, kInf),  // everything
      MakeBox(0, 0, 0, kInf, kInf, kInf),              // half-infinite
      Box::Empty(),  // inverted sentinel shape: intersects nothing
      MakeBox(1e30f, 1e30f, 1e30f, 2e30f, 2e30f, 2e30f),  // huge magnitude
      MakeBox(0.5f, 0.5f, 0.5f, 0.5f, 0.5f, 0.5f),        // degenerate point
  };
}

TEST(OverlapKernelAdversarialTest, BoundaryNegativeDenormalInfinite) {
  const Dataset boxes = AdversarialBoxes();
  // Queries: the adversarial shapes themselves, plus an exact-boundary
  // toucher and an all-covering infinite box.
  Dataset queries = boxes;
  queries.push_back(MakeBox(2, 2, 2, 3, 3, 3));  // touches corner of box 2
  for (const float epsilon : {0.0f, 0.25f}) {
    BoxSlab slab;
    slab.Assign(boxes, epsilon);
    ExpectAllKernelsIdentical(slab, queries);
  }
}

TEST(OverlapKernelAdversarialTest, NaNBoundsNeverMatchEitherPath) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Dataset boxes = AdversarialBoxes();
  boxes.push_back(MakeBox(nan, 0, 0, nan, 1, 1));
  boxes.push_back(MakeBox(nan, nan, nan, nan, nan, nan));
  BoxSlab slab;
  slab.Assign(boxes);
  const Box everything = MakeBox(-kInf, -kInf, -kInf, kInf, kInf, kInf);
  std::vector<uint32_t> hits;
  CollectOverlaps(slab, 0, slab.size(), everything, hits);
  // The NaN boxes are the last two; neither path may report them.
  for (const uint32_t hit : hits) EXPECT_LT(hit, boxes.size() - 2);
  ExpectCollectIdentity(slab, 0, slab.size(), everything);
  ExpectClassifyIdentity(slab, 0, slab.size(), everything);
  const Box nan_query = MakeBox(nan, nan, nan, nan, nan, nan);
  ExpectCollectIdentity(slab, 0, slab.size(), nan_query);
}

// Slab tails of every length shorter than a full pad block: the partially
// valid final chunk must neither drop real candidates nor leak padding.
TEST(OverlapKernelAdversarialTest, TailLengthsOneToPadMinusOne) {
  const Box everything = MakeBox(-kInf, -kInf, -kInf, kInf, kInf, kInf);
  const Box nothing = MakeBox(3e5f, 3e5f, 3e5f, 4e5f, 4e5f, 4e5f);
  for (size_t n = 1; n < BoxSlab::kPad; ++n) {
    Dataset boxes;
    for (size_t i = 0; i < n; ++i) {
      boxes.push_back(CenteredBox(static_cast<float>(i), 0.0f, 0.0f));
    }
    BoxSlab slab;
    slab.Assign(boxes);
    std::vector<uint32_t> hits;
    EXPECT_EQ(CollectOverlaps(slab, 0, n, everything, hits), n);
    // Every real box hit exactly once, nothing from the padded tail.
    ASSERT_EQ(hits.size(), n) << "tail length " << n;
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i], i);
    hits.clear();
    CollectOverlaps(slab, 0, n, nothing, hits);
    EXPECT_TRUE(hits.empty());
    ExpectAllKernelsIdentical(slab, {&everything, 1});
    ExpectSweepIdentity(slab, 0, n, everything);
    ExpectClassifyIdentity(slab, 0, n, everything);
  }
}

// --- tree probe --------------------------------------------------------------

// The batched INL probe must reproduce the scalar RTree::Query loop
// *exactly*: pair sequence (emit order), comparison counts, and results.
TEST(BatchedTreeProbeTest, MatchesScalarQuerySequenceAndStats) {
  const Dataset a = GenerateSynthetic(Distribution::kClustered, 900, 5);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 500, 6);
  const RTree tree(a, /*leaf_capacity=*/16, /*fanout=*/8);
  for (const float probe_epsilon : {0.0f, 3.0f}) {
    JoinStats scalar_stats;
    VectorCollector scalar_out;
    for (uint32_t b_id = 0; b_id < b.size(); ++b_id) {
      const Box query = probe_epsilon > 0 ? b[b_id].Enlarged(probe_epsilon)
                                          : b[b_id];
      tree.Query(
          a, query,
          [&](uint32_t a_id) {
            ++scalar_stats.results;
            scalar_out.Emit(a_id, b_id);
          },
          &scalar_stats);
    }

    RTreeProbeSlabs slabs;
    slabs.Build(tree, a);
    JoinStats batched_stats;
    VectorCollector batched_out;
    BatchedTreeProbe(tree, slabs, b, probe_epsilon, /*swap_emit=*/false,
                     &batched_stats, batched_out);

    EXPECT_EQ(batched_out.pairs(), scalar_out.pairs());  // order included
    EXPECT_EQ(batched_stats.comparisons, scalar_stats.comparisons);
    EXPECT_EQ(batched_stats.node_comparisons, scalar_stats.node_comparisons);
    EXPECT_EQ(batched_stats.results, scalar_stats.results);
  }
}

TEST(BatchedTreeProbeTest, SwapEmitFlipsPairOrientation) {
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 300, 9);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 200, 10);
  const RTree tree(a, 16, 8);
  RTreeProbeSlabs slabs;
  slabs.Build(tree, a);
  JoinStats stats;
  VectorCollector straight;
  VectorCollector swapped;
  BatchedTreeProbe(tree, slabs, b, 0.0f, /*swap_emit=*/false, &stats,
                   straight);
  BatchedTreeProbe(tree, slabs, b, 0.0f, /*swap_emit=*/true, &stats, swapped);
  ASSERT_EQ(straight.pairs().size(), swapped.pairs().size());
  for (size_t i = 0; i < straight.pairs().size(); ++i) {
    EXPECT_EQ(straight.pairs()[i].first, swapped.pairs()[i].second);
    EXPECT_EQ(straight.pairs()[i].second, swapped.pairs()[i].first);
  }
}

TEST(BatchedTreeProbeTest, CancellationStopsEarly) {
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 2000, 12);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 5000, 13);
  const RTree tree(a, 16, 8);
  RTreeProbeSlabs slabs;
  slabs.Build(tree, a);
  CancellationSource source;
  source.RequestStop();
  JoinStats stats;
  VectorCollector out;
  const uint64_t probed = BatchedTreeProbe(tree, slabs, b, 0.0f, false,
                                           &stats, out, source.token());
  EXPECT_EQ(probed, 0u);
  EXPECT_TRUE(out.pairs().empty());
}

// --- end-to-end join identity ------------------------------------------------

// The batched INL must still agree with the brute-force oracle (its own
// differential check routes through every kernel consumer at once).
TEST(OverlapKernelEndToEndTest, IndexedNestedLoopMatchesOracle) {
  const Dataset a = GenerateSynthetic(Distribution::kClustered, 800, 21);
  const Dataset b = GenerateSynthetic(Distribution::kGaussian, 600, 22);
  IndexedNestedLoopJoin inl;
  EXPECT_EQ(RunJoinSorted(inl, a, b), OracleJoin(a, b));
}

// --- runtime dispatch --------------------------------------------------------

/// Forces a dispatch level for one scope, restoring the entry level after —
/// so cross-level tests never leak a narrowed level into later tests (the
/// suite may be running under a forced TOUCH_SIMD_LEVEL it must preserve).
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(simd::Level level) : entry_(ActiveSimdLevel()) {
    std::string error;
    forced_ = ForceSimdLevel(level, &error);
    EXPECT_TRUE(forced_) << error;
  }
  ~ScopedSimdLevel() {
    if (forced_) ForceSimdLevel(entry_);
  }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  simd::Level entry_;
  bool forced_ = false;
};

TEST(SimdDispatchTest, ReportsConsistentLevel) {
  const std::string name = SimdLevelName();
  const int width = SimdWidth();
  EXPECT_EQ(name, simd::LevelName(ActiveSimdLevel()));
  EXPECT_EQ(width, simd::LevelWidth(ActiveSimdLevel()));
  EXPECT_EQ(width, ActiveKernels().width);
  if (SimdEnabled()) {
    EXPECT_TRUE(name == "avx2" || name == "sse2" || name == "neon") << name;
    EXPECT_TRUE(width == 4 || width == 8) << width;
    EXPECT_EQ(width == 8, name == "avx2");
  } else {
    EXPECT_EQ(name, "scalar");
    EXPECT_EQ(width, 1);
  }
}

TEST(SimdDispatchTest, AvailableLevelsStartWithScalarAndMatchCpu) {
  const std::vector<simd::Level> levels = simd::RuntimeAvailableLevels();
  ASSERT_FALSE(levels.empty());
  EXPECT_EQ(levels.front(), simd::Level::kScalar);
  for (const simd::Level level : levels) {
    EXPECT_TRUE(simd::LevelCompiledIn(level));
    EXPECT_TRUE(simd::LevelSupported(level));
  }
  // Auto-detection picks the widest available level, and that level is in
  // the available set.
  EXPECT_EQ(simd::DetectBestLevel(), levels.back());
}

TEST(SimdDispatchTest, ForceSucceedsOnEveryAvailableLevel) {
  const simd::Level entry = ActiveSimdLevel();
  for (const simd::Level level : simd::RuntimeAvailableLevels()) {
    ScopedSimdLevel forced(level);
    EXPECT_EQ(ActiveSimdLevel(), level);
    EXPECT_STREQ(SimdLevelName(), simd::LevelName(level));
    EXPECT_EQ(SimdWidth(), simd::LevelWidth(level));
    EXPECT_TRUE(SimdLevelForced());
  }
  EXPECT_EQ(ActiveSimdLevel(), entry);
}

TEST(SimdDispatchTest, ForceFailsLoudlyOnUnavailableLevel) {
  const simd::Level entry = ActiveSimdLevel();
  std::vector<simd::Level> unavailable;
  for (const simd::Level level :
       {simd::Level::kNeon, simd::Level::kSse2, simd::Level::kAvx2}) {
    if (!simd::LevelSupported(level)) unavailable.push_back(level);
  }
  for (const simd::Level level : unavailable) {
    std::string error;
    EXPECT_FALSE(ForceSimdLevel(level, &error));
    // The error names the request and what the host can actually run.
    EXPECT_NE(error.find(simd::LevelName(level)), std::string::npos) << error;
    EXPECT_NE(error.find("scalar"), std::string::npos) << error;
    EXPECT_EQ(ActiveSimdLevel(), entry);  // active level unchanged
  }
}

// --- cross-level differential pass -------------------------------------------
//
// The tentpole guarantee: every level this host can run produces the exact
// hit sequences and scalar-identical examined counts, verified in ONE
// process by forcing each level and re-running the differential surface.

class CrossLevelTest : public ::testing::TestWithParam<simd::Level> {};

TEST_P(CrossLevelTest, DistributionsMatchScalar) {
  ScopedSimdLevel forced(GetParam());
  for (const float epsilon : {0.0f, 2.5f}) {
    const Dataset boxes =
        GenerateSynthetic(Distribution::kClustered, 700, /*seed=*/11);
    const Dataset queries =
        GenerateSynthetic(Distribution::kClustered, 120, /*seed=*/22);
    BoxSlab slab;
    slab.Assign(boxes, epsilon);
    ExpectAllKernelsIdentical(slab, queries);
    const Dataset sorted =
        SortedByXLow(GenerateSynthetic(Distribution::kUniform, 700, 33));
    BoxSlab sweep_slab;
    sweep_slab.Assign(sorted, epsilon);
    for (const Box& query : queries) {
      ExpectSweepIdentity(sweep_slab, 0, sweep_slab.size(), query);
    }
  }
}

TEST_P(CrossLevelTest, AdversarialInputsMatchScalar) {
  ScopedSimdLevel forced(GetParam());
  const float nan = std::numeric_limits<float>::quiet_NaN();
  Dataset boxes = AdversarialBoxes();
  boxes.push_back(MakeBox(nan, 0, 0, nan, 1, 1));
  boxes.push_back(MakeBox(nan, nan, nan, nan, nan, nan));
  Dataset queries = boxes;
  queries.push_back(MakeBox(2, 2, 2, 3, 3, 3));
  for (const float epsilon : {0.0f, 0.25f}) {
    BoxSlab slab;
    slab.Assign(boxes, epsilon);
    ExpectAllKernelsIdentical(slab, queries);
  }
  // Tail lengths at this level: partially valid final chunks everywhere.
  const Box everything = MakeBox(-kInf, -kInf, -kInf, kInf, kInf, kInf);
  for (size_t n = 1; n < BoxSlab::kPad; ++n) {
    Dataset tail;
    for (size_t i = 0; i < n; ++i) {
      tail.push_back(CenteredBox(static_cast<float>(i), 0.0f, 0.0f));
    }
    BoxSlab slab;
    slab.Assign(tail);
    ExpectAllKernelsIdentical(slab, {&everything, 1});
    ExpectSweepIdentity(slab, 0, n, everything);
  }
}

// JoinStats byte-comparability across levels: the same probe at every
// available level must yield the identical pair sequence AND the identical
// comparison counters, all within this one process.
TEST(CrossLevelTest, TreeProbePairsAndStatsIdenticalAcrossLevels) {
  const Dataset a = GenerateSynthetic(Distribution::kClustered, 900, 5);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 500, 6);
  const RTree tree(a, /*leaf_capacity=*/16, /*fanout=*/8);
  RTreeProbeSlabs slabs;
  slabs.Build(tree, a);

  JoinStats reference_stats;
  VectorCollector reference_out;
  {
    ScopedSimdLevel forced(simd::Level::kScalar);
    BatchedTreeProbe(tree, slabs, b, 3.0f, /*swap_emit=*/false,
                     &reference_stats, reference_out);
  }
  for (const simd::Level level : simd::RuntimeAvailableLevels()) {
    ScopedSimdLevel forced(level);
    JoinStats stats;
    VectorCollector out;
    BatchedTreeProbe(tree, slabs, b, 3.0f, /*swap_emit=*/false, &stats, out);
    EXPECT_EQ(out.pairs(), reference_out.pairs()) << simd::LevelName(level);
    EXPECT_EQ(stats.comparisons, reference_stats.comparisons)
        << simd::LevelName(level);
    EXPECT_EQ(stats.node_comparisons, reference_stats.node_comparisons)
        << simd::LevelName(level);
    EXPECT_EQ(stats.results, reference_stats.results)
        << simd::LevelName(level);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllRuntimeLevels, CrossLevelTest,
    ::testing::ValuesIn(simd::RuntimeAvailableLevels()),
    [](const auto& info) { return simd::LevelName(info.param); });

}  // namespace
}  // namespace touch
