#ifndef TOUCH_TESTS_TEST_UTIL_H_
#define TOUCH_TESTS_TEST_UTIL_H_

#include <algorithm>
#include <utility>
#include <vector>

#include "datagen/dataset.h"
#include "join/algorithm.h"
#include "join/nested_loop.h"

namespace touch {

using IdPair = std::pair<uint32_t, uint32_t>;

/// Runs `algorithm` and returns its result pairs sorted (for set equality
/// checks). `stats_out` may be null.
inline std::vector<IdPair> RunJoinSorted(SpatialJoinAlgorithm& algorithm,
                                         const Dataset& a, const Dataset& b,
                                         JoinStats* stats_out = nullptr) {
  VectorCollector collector;
  JoinStats stats = algorithm.Join(a, b, collector);
  if (stats_out != nullptr) *stats_out = stats;
  std::vector<IdPair> pairs = collector.pairs();
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

/// Ground truth via the nested loop join (sorted pairs).
inline std::vector<IdPair> OracleJoin(const Dataset& a, const Dataset& b) {
  NestedLoopJoin oracle;
  return RunJoinSorted(oracle, a, b);
}

/// True when the pair list contains no duplicate entries (input unsorted).
inline bool HasNoDuplicates(std::vector<IdPair> pairs) {
  std::sort(pairs.begin(), pairs.end());
  return std::adjacent_find(pairs.begin(), pairs.end()) == pairs.end();
}

/// Convenience box constructor from scalar corners.
inline Box MakeBox(float x0, float y0, float z0, float x1, float y1,
                   float z1) {
  return Box(Vec3(x0, y0, z0), Vec3(x1, y1, z1));
}

/// A unit-ish box centered at (x, y, z) with half-extent h.
inline Box CenteredBox(float x, float y, float z, float h = 0.5f) {
  return Box(Vec3(x - h, y - h, z - h), Vec3(x + h, y + h, z + h));
}

}  // namespace touch

#endif  // TOUCH_TESTS_TEST_UTIL_H_
