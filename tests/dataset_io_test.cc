#include "io/dataset_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "datagen/distributions.h"
#include "test_util.h"

namespace touch {
namespace {

/// Unique temp path per test; removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& name)
      : path_(std::string(::testing::TempDir()) + "/touch_io_" + name) {}
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(BoxBinaryIoTest, RoundTripsExactly) {
  const Dataset boxes = GenerateSynthetic(Distribution::kClustered, 2000, 7);
  TempFile file("boxes.bin");
  ASSERT_TRUE(WriteBoxesBinary(file.path(), boxes).ok);
  Dataset loaded;
  ASSERT_TRUE(ReadBoxesBinary(file.path(), &loaded).ok);
  ASSERT_EQ(loaded.size(), boxes.size());
  for (size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_EQ(loaded[i], boxes[i]) << i;
  }
}

TEST(BoxBinaryIoTest, EmptyDatasetRoundTrips) {
  TempFile file("empty.bin");
  ASSERT_TRUE(WriteBoxesBinary(file.path(), {}).ok);
  Dataset loaded = {CenteredBox(1, 1, 1)};  // must be cleared by the read
  ASSERT_TRUE(ReadBoxesBinary(file.path(), &loaded).ok);
  EXPECT_TRUE(loaded.empty());
}

TEST(BoxBinaryIoTest, MissingFileFails) {
  Dataset loaded;
  const IoStatus status = ReadBoxesBinary("/nonexistent/nowhere.bin", &loaded);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.message.find("cannot open"), std::string::npos);
}

TEST(BoxBinaryIoTest, WrongMagicFails) {
  TempFile file("notboxes.bin");
  std::ofstream(file.path()) << "definitely not a TSJB file at all";
  Dataset loaded;
  const IoStatus status = ReadBoxesBinary(file.path(), &loaded);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.message.find("magic"), std::string::npos);
}

TEST(BoxBinaryIoTest, TruncatedPayloadFails) {
  const Dataset boxes = GenerateSynthetic(Distribution::kUniform, 100, 8);
  TempFile file("trunc.bin");
  ASSERT_TRUE(WriteBoxesBinary(file.path(), boxes).ok);
  // Chop the file to half its size.
  std::ifstream in(file.path(), std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(file.path(), std::ios::binary)
      << contents.substr(0, contents.size() / 2);
  Dataset loaded;
  const IoStatus status = ReadBoxesBinary(file.path(), &loaded);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.message.find("truncated"), std::string::npos);
  EXPECT_TRUE(loaded.empty());  // no partial results
}

TEST(BoxCsvIoTest, RoundTripsWithFloatFidelity) {
  const Dataset boxes = GenerateSynthetic(Distribution::kGaussian, 500, 9);
  TempFile file("boxes.csv");
  ASSERT_TRUE(WriteBoxesCsv(file.path(), boxes).ok);
  Dataset loaded;
  ASSERT_TRUE(ReadBoxesCsv(file.path(), &loaded).ok);
  ASSERT_EQ(loaded.size(), boxes.size());
  // %.9g prints floats exactly; the round trip must be bit-faithful.
  for (size_t i = 0; i < boxes.size(); ++i) {
    EXPECT_EQ(loaded[i], boxes[i]) << i;
  }
}

TEST(BoxCsvIoTest, MalformedLineReportsLineNumber) {
  TempFile file("bad.csv");
  std::ofstream(file.path()) << "lo_x,lo_y,lo_z,hi_x,hi_y,hi_z\n"
                             << "1,2,3,4,5,6\n"
                             << "1,2,three,4,5,6\n";
  Dataset loaded;
  const IoStatus status = ReadBoxesCsv(file.path(), &loaded);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.message.find("line 3"), std::string::npos);
}

TEST(BoxCsvIoTest, HeaderlessFileStillParses) {
  TempFile file("raw.csv");
  std::ofstream(file.path()) << "0,0,0,1,1,1\n2,2,2,3,3,3\n";
  Dataset loaded;
  ASSERT_TRUE(ReadBoxesCsv(file.path(), &loaded).ok);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[1], MakeBox(2, 2, 2, 3, 3, 3));
}

TEST(NeuroIoTest, RoundTripsModel) {
  NeuroModel model;
  for (int i = 0; i < 50; ++i) {
    const float f = static_cast<float>(i);
    model.axons.emplace_back(Vec3(f, 0, 0), Vec3(f + 1, 1, 0), 0.5f);
    model.dendrites.emplace_back(Vec3(0, f, 0), Vec3(1, f + 1, 0), 0.25f);
    model.dendrites.emplace_back(Vec3(0, f, 5), Vec3(1, f + 1, 5), 0.25f);
  }
  TempFile file("model.bin");
  ASSERT_TRUE(WriteNeuroModelBinary(file.path(), model).ok);
  NeuroModel loaded;
  ASSERT_TRUE(ReadNeuroModelBinary(file.path(), &loaded).ok);
  ASSERT_EQ(loaded.axons.size(), model.axons.size());
  ASSERT_EQ(loaded.dendrites.size(), model.dendrites.size());
  for (size_t i = 0; i < model.axons.size(); ++i) {
    EXPECT_EQ(loaded.axons[i].Mbr(), model.axons[i].Mbr());
    EXPECT_EQ(loaded.axons[i].radius, model.axons[i].radius);
  }
}

TEST(NeuroIoTest, BoxFileRejectedAsNeuroModel) {
  TempFile file("boxes_as_model.bin");
  ASSERT_TRUE(WriteBoxesBinary(file.path(), {CenteredBox(1, 2, 3)}).ok);
  NeuroModel loaded;
  const IoStatus status = ReadNeuroModelBinary(file.path(), &loaded);
  EXPECT_FALSE(status.ok);
  EXPECT_NE(status.message.find("magic"), std::string::npos);
}

}  // namespace
}  // namespace touch
