// The futures-based submission surface of QueryEngine: per-request
// completion, sink ownership and delivery order, callback overloads, and
// identity between the async path and the synchronous wrappers.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "engine/engine.h"
#include "test_util.h"

namespace touch {
namespace {

std::vector<IdPair> DistanceOracle(const Dataset& a, const Dataset& b,
                                   float epsilon) {
  Dataset enlarged = a;
  for (Box& box : enlarged) box = box.Enlarged(epsilon);
  return OracleJoin(enlarged, b);
}

/// What a RecordingSink saw, owned by the test: the engine destroys the
/// sink itself once the request completes, so observations must outlive it.
struct SinkLog {
  std::vector<IdPair> pairs;
  int completions = 0;
  JoinResult last_result;

  std::vector<IdPair> SortedPairs() const {
    std::vector<IdPair> sorted = pairs;
    std::sort(sorted.begin(), sorted.end());
    return sorted;
  }
};

/// Materializes pairs and records completion into a test-owned SinkLog, for
/// inspecting the engine's sink protocol after the sink itself is gone.
class RecordingSink : public ResultSink {
 public:
  explicit RecordingSink(SinkLog* log) : log_(*log) {}
  void Emit(uint32_t a_id, uint32_t b_id) override {
    log_.pairs.emplace_back(a_id, b_id);
  }
  void OnComplete(const JoinResult& result) override {
    ++log_.completions;
    log_.last_result = result;
  }

 private:
  SinkLog& log_;
};

class QueryEngineAsyncTest : public ::testing::Test {
 protected:
  Dataset small_ = GenerateSynthetic(Distribution::kClustered, 4000, 51);
  Dataset large_ = GenerateSynthetic(Distribution::kClustered, 8000, 52);
};

TEST_F(QueryEngineAsyncTest, SubmitFutureDeliversSameResultAsExecute) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);
  const JoinRequest request{a, b, 2.0f};

  SinkLog log;
  RequestHandle handle =
      engine.Submit(request, std::make_unique<RecordingSink>(&log));
  const JoinResult async_result = handle.Get();
  ASSERT_TRUE(async_result.error.empty());
  EXPECT_TRUE(async_result.ok());
  EXPECT_EQ(handle.phase(), RequestPhase::kCompleted);

  VectorCollector sync;
  const JoinResult sync_result = engine.Execute(request, sync);
  ASSERT_TRUE(sync_result.error.empty());

  // Async and sync paths are the same execution core: identical pairs,
  // identical plan, identical result counts.
  std::vector<IdPair> sync_pairs = sync.pairs();
  std::sort(sync_pairs.begin(), sync_pairs.end());
  EXPECT_EQ(log.SortedPairs(), sync_pairs);
  EXPECT_EQ(log.SortedPairs(), DistanceOracle(small_, large_, 2.0f));
  EXPECT_EQ(async_result.plan.algorithm, sync_result.plan.algorithm);
  EXPECT_EQ(async_result.stats.results, sync_result.stats.results);

  // The sink saw OnComplete exactly once, before the future completed.
  EXPECT_EQ(log.completions, 1);
  EXPECT_EQ(log.last_result.stats.results, async_result.stats.results);
}

TEST_F(QueryEngineAsyncTest, SlowRequestDoesNotBlockAFastOnesFuture) {
  EngineOptions options;
  options.threads = 2;  // the blocked request must not starve the fast one
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);

  // A sink that parks its request in OnComplete until released — a
  // deterministic "slow request", no timing assumptions.
  class BlockingSink : public ResultSink {
   public:
    explicit BlockingSink(std::shared_future<void> release)
        : release_(std::move(release)) {}
    void OnComplete(const JoinResult&) override { release_.wait(); }

   private:
    std::shared_future<void> release_;
  };

  std::promise<void> release;
  RequestHandle slow = engine.Submit(
      {a, b, 2.0f},
      std::make_unique<BlockingSink>(release.get_future().share()));

  // The fast request completes while the slow one is still parked.
  RequestHandle fast = engine.Submit({a, a, 0.5f});
  EXPECT_EQ(fast.future().wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_TRUE(fast.Get().error.empty());
  EXPECT_EQ(slow.future().wait_for(std::chrono::milliseconds(0)),
            std::future_status::timeout);

  release.set_value();
  EXPECT_TRUE(slow.Get().error.empty());
}

TEST_F(QueryEngineAsyncTest, CallbackOverloadRunsAfterSinkCompletion) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);

  SinkLog log;
  std::promise<uint64_t> delivered;
  engine.Submit({a, b, 2.0f}, std::make_unique<RecordingSink>(&log),
                [&delivered, &log](const JoinResult& result) {
                  // The sink's OnComplete already ran when the callback fires.
                  EXPECT_EQ(log.completions, 1);
                  delivered.set_value(result.stats.results);
                });
  const uint64_t results = delivered.get_future().get();
  EXPECT_EQ(results, DistanceOracle(small_, large_, 2.0f).size());
}

TEST_F(QueryEngineAsyncTest, SubmitBatchFuturesAreIndexAligned) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);
  const std::vector<JoinRequest> requests = {
      {a, b, 2.0f}, {b, a, 1.0f}, {a, a, 0.5f}, {a, b, 2.0f}};

  std::vector<SinkLog> logs(requests.size());
  BatchHandle batch = engine.SubmitBatch(
      requests,
      [&logs](size_t i) { return std::make_unique<RecordingSink>(&logs[i]); });
  ASSERT_EQ(batch.size(), requests.size());

  QueryEngine reference;
  const DatasetHandle ra = reference.RegisterDataset("small", small_);
  const DatasetHandle rb = reference.RegisterDataset("large", large_);
  const std::vector<JoinRequest> reference_requests = {
      {ra, rb, 2.0f}, {rb, ra, 1.0f}, {ra, ra, 0.5f}, {ra, rb, 2.0f}};
  for (size_t i = 0; i < requests.size(); ++i) {
    const JoinResult result = batch[i].Get();
    ASSERT_TRUE(result.error.empty()) << i;
    CountingCollector expected;
    reference.Execute(reference_requests[i], expected);
    EXPECT_EQ(result.stats.results, expected.count()) << i;
  }
}

TEST_F(QueryEngineAsyncTest, ExecuteBatchOnSubmitKeepsObservableBehavior) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset("small", small_);
  const DatasetHandle b = engine.RegisterDataset("large", large_);
  const std::vector<JoinRequest> requests = {
      {a, b, 2.0f}, {b, a, 1.0f}, {a, a, 0.5f}, {a, b, 2.0f}};

  const std::vector<JoinResult> batch = engine.ExecuteBatch(requests);
  ASSERT_EQ(batch.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(batch[i].error.empty()) << i;
    CountingCollector expected;
    engine.Execute(requests[i], expected);
    EXPECT_EQ(batch[i].stats.results, expected.count()) << i;
  }
  // The duplicated request shares one index with its twin.
  EXPECT_GE(engine.cache_stats().hits, 1u);
}

TEST_F(QueryEngineAsyncTest, FailedRequestCompletesSinkFutureAndCallback) {
  QueryEngine engine;  // empty catalog: every handle is invalid
  SinkLog log;
  std::atomic<bool> callback_ran{false};
  std::promise<void> done;
  engine.Submit({0, 1, 1.0f}, std::make_unique<RecordingSink>(&log),
                [&](const JoinResult& result) {
                  callback_ran = !result.error.empty();
                  done.set_value();
                });
  done.get_future().wait();
  EXPECT_TRUE(callback_ran);
  EXPECT_EQ(log.completions, 1);
  EXPECT_FALSE(log.last_result.error.empty());
  EXPECT_TRUE(log.pairs.empty());
}

TEST_F(QueryEngineAsyncTest, ConcurrentCountingCollectorTalliesAcrossThreads) {
  // The engine-independent piece of the batch path: one relaxed-atomic
  // collector fed by many threads counts every Emit.
  ConcurrentCountingCollector collector;
  constexpr int kThreads = 8;
  constexpr int kEmits = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&collector] {
      for (int i = 0; i < kEmits; ++i) {
        collector.Emit(static_cast<uint32_t>(i), 0);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(collector.count(),
            static_cast<uint64_t>(kThreads) * kEmits);
}

}  // namespace
}  // namespace touch
