// Tests of the self-calibrating planner: the PlanFeedback store and cost-
// model fit, the planner's calibrated override of its static rules (golden
// plan flips driven by synthetic measured feedback), and the engine's
// recording toggle.

#include "engine/calibration.h"

#include <gtest/gtest.h>

#include "datagen/distributions.h"
#include "engine/engine.h"
#include "engine/planner.h"
#include "join/nested_loop.h"
#include "test_util.h"

namespace touch {
namespace {

TEST(AlgorithmFamilyTest, StripsParameterSuffix) {
  EXPECT_EQ(AlgorithmFamily("pbsm-250"), "pbsm");
  EXPECT_EQ(AlgorithmFamily("nbps-64"), "nbps");
  EXPECT_EQ(AlgorithmFamily("touch"), "touch");
  EXPECT_EQ(AlgorithmFamily("ps"), "ps");
}

TEST(FitCostModelTest, RecoversKnownCoefficients) {
  // Synthetic runs drawn exactly from t = 2e-6*objects + 5e-8*results, with
  // enough independent variation that the 2x2 system is well-conditioned.
  const double per_object = 2e-6;
  const double per_result = 5e-8;
  const double runs[][2] = {
      {1000, 100}, {5000, 200000}, {20000, 1000}, {80000, 500000}};
  size_t n = 0;
  double soo = 0, sor = 0, srr = 0, sot = 0, srt = 0;
  for (const auto& run : runs) {
    const double o = run[0];
    const double r = run[1];
    const double t = per_object * o + per_result * r;
    ++n;
    soo += o * o;
    sor += o * r;
    srr += r * r;
    sot += o * t;
    srt += r * t;
  }
  const CostModel model = FitCostModel(n, soo, sor, srr, sot, srt);
  EXPECT_EQ(model.samples, 4u);
  EXPECT_NEAR(model.seconds_per_object, per_object, per_object * 0.05);
  EXPECT_NEAR(model.seconds_per_result, per_result, per_result * 0.05);
  const double truth = per_object * 40000 + per_result * 60000;
  EXPECT_NEAR(model.Predict(40000, 60000), truth, truth * 0.05);
}

TEST(FitCostModelTest, RepeatedWorkloadFallsBackGracefully) {
  // One workload repeated: objects and results are perfectly collinear, so
  // the two coefficients are not identifiable — the fit must still predict
  // that workload's cost instead of exploding.
  size_t n = 0;
  double soo = 0, sor = 0, srr = 0, sot = 0, srt = 0;
  for (int i = 0; i < 3; ++i) {
    const double o = 10000, r = 20000, t = 0.05;
    ++n;
    soo += o * o;
    sor += o * r;
    srr += r * r;
    sot += o * t;
    srt += r * t;
  }
  const CostModel model = FitCostModel(n, soo, sor, srr, sot, srt);
  EXPECT_GE(model.seconds_per_object, 0);
  EXPECT_GE(model.seconds_per_result, 0);
  EXPECT_NEAR(model.Predict(10000, 20000), 0.05, 0.01);
}

TEST(FitCostModelTest, EmptyAndNegativeCornersAreSafe) {
  const CostModel empty = FitCostModel(0, 0, 0, 0, 0, 0);
  EXPECT_EQ(empty.samples, 0u);
  EXPECT_EQ(empty.Predict(1000, 1000), 0);
  // Anti-correlated noise pushing a coefficient negative gets clamped to a
  // non-negative axis solution, never a negative prediction.
  const CostModel clamped =
      FitCostModel(2, 2e8, 1e6, 1e4, /*objects_time=*/-3.0, /*results_time=*/
                   0.5);
  EXPECT_GE(clamped.seconds_per_object, 0);
  EXPECT_GE(clamped.seconds_per_result, 0);
  EXPECT_GE(clamped.Predict(5000, 100), 0);
}

/// Records `samples` synthetic cold runs of `family` costing
/// `seconds_per_object` per object (results kept at zero so the fitted model
/// is purely per-object and predictions are easy to reason about).
void Teach(PlanFeedback* feedback, const std::string& family,
           double seconds_per_object, size_t samples = 3) {
  for (size_t i = 0; i < samples; ++i) {
    PlanOutcome outcome;
    outcome.family = family;
    outcome.objects = 10000 * (i + 1);
    outcome.results = 0;
    outcome.total_seconds = seconds_per_object * outcome.objects;
    feedback->Record(outcome);
  }
}

TEST(PlanFeedbackTest, SnapshotGatesOnMinSamples) {
  PlanFeedback feedback;
  Teach(&feedback, "touch", 1e-6, 2);
  CalibrationSnapshot snapshot = feedback.Snapshot(3);
  EXPECT_EQ(snapshot.Predict("touch", 1000, 0), std::nullopt);
  EXPECT_EQ(snapshot.Predict("never-seen", 1000, 0), std::nullopt);
  EXPECT_EQ(snapshot.calibrated_families(), 0u);

  Teach(&feedback, "touch", 1e-6, 1);
  snapshot = feedback.Snapshot(3);
  const std::optional<double> predicted = snapshot.Predict("touch", 50000, 0);
  ASSERT_TRUE(predicted.has_value());
  EXPECT_NEAR(*predicted, 0.05, 0.005);
  EXPECT_EQ(snapshot.calibrated_families(), 1u);
  EXPECT_EQ(snapshot.total_samples(), 3u);
  EXPECT_EQ(feedback.total_recorded(), 3u);
  EXPECT_EQ(feedback.RecentOutcomes().size(), 3u);
}

TEST(PlanFeedbackTest, LogIsCappedButFitIsNot) {
  PlanFeedback feedback(/*max_outcomes=*/4);
  Teach(&feedback, "ps", 1e-7, 10);
  EXPECT_EQ(feedback.RecentOutcomes().size(), 4u);
  EXPECT_EQ(feedback.total_recorded(), 10u);
  const CalibrationSnapshot snapshot = feedback.Snapshot(3);
  ASSERT_NE(snapshot.Find("ps"), nullptr);
  EXPECT_EQ(snapshot.Find("ps")->samples, 10u);
}

TEST(PlanFeedbackTest, ClearForgetsEverything) {
  PlanFeedback feedback;
  Teach(&feedback, "touch", 1e-6);
  feedback.Clear();
  EXPECT_EQ(feedback.total_recorded(), 0u);
  EXPECT_TRUE(feedback.RecentOutcomes().empty());
  EXPECT_EQ(feedback.Snapshot(1).Predict("touch", 1000, 0), std::nullopt);
}

/// Catalog with clustered datasets big enough that the static rules reach
/// the TOUCH branch (mirrors PlannerTest::ClusteredInputsPlanTouch).
class CalibratedPlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = catalog_.Register(
        "a", GenerateSynthetic(Distribution::kClustered, 30000, 10));
    b_ = catalog_.Register(
        "b", GenerateSynthetic(Distribution::kClustered, 60000, 11));
  }

  DatasetCatalog catalog_;
  Planner planner_;
  DatasetHandle a_ = 0;
  DatasetHandle b_ = 0;
};

// The golden plan flip: static rules pick TOUCH for clustered data, but
// measured feedback showing another family is faster on this engine
// overrides them — with a before/after rationale.
TEST_F(CalibratedPlannerTest, MeasuredFeedbackFlipsTheStaticChoice) {
  const JoinRequest request{a_, b_, 1.0f};
  ASSERT_EQ(planner_.Plan(catalog_, request).algorithm, "touch");

  PlanFeedback feedback;
  Teach(&feedback, "touch", 1e-6);  // measured slow
  Teach(&feedback, "ps", 1e-8);    // measured 100x faster per object
  const CalibrationSnapshot snapshot = feedback.Snapshot(3);
  const JoinPlan plan = planner_.Plan(catalog_, request, &snapshot);
  EXPECT_EQ(plan.algorithm, "ps");
  EXPECT_TRUE(plan.calibrated);
  EXPECT_EQ(plan.static_algorithm, "touch");
  EXPECT_GT(plan.predicted_seconds, 0);
  EXPECT_NE(plan.rationale.find("calibrated override"), std::string::npos);
  EXPECT_NE(plan.rationale.find("static rule chose touch"), std::string::npos);
  EXPECT_NE(plan.ToString().find("predicted="), std::string::npos);
}

TEST_F(CalibratedPlannerTest, AgreementKeepsThePlanAndSaysSo) {
  const JoinRequest request{a_, b_, 1.0f};
  PlanFeedback feedback;
  Teach(&feedback, "touch", 1e-8);  // measured fastest
  Teach(&feedback, "ps", 1e-6);
  const CalibrationSnapshot snapshot = feedback.Snapshot(3);
  const JoinPlan plan = planner_.Plan(catalog_, request, &snapshot);
  EXPECT_EQ(plan.algorithm, "touch");
  EXPECT_TRUE(plan.calibrated);
  EXPECT_EQ(plan.static_algorithm, "touch");
  EXPECT_NE(plan.rationale.find("calibration agrees"), std::string::npos);
}

// "Slower than what?" — without measurements of the static choice itself
// (or with only one measured family) the static plan stands untouched.
TEST_F(CalibratedPlannerTest, OverrideNeedsTheStaticFamilyMeasured) {
  const JoinRequest request{a_, b_, 1.0f};
  PlanFeedback feedback;
  Teach(&feedback, "ps", 1e-9);  // blazing fast, but touch is unmeasured
  CalibrationSnapshot snapshot = feedback.Snapshot(3);
  JoinPlan plan = planner_.Plan(catalog_, request, &snapshot);
  EXPECT_EQ(plan.algorithm, "touch");
  EXPECT_FALSE(plan.calibrated);

  feedback.Clear();
  Teach(&feedback, "touch", 1e-6);  // only the static family measured
  snapshot = feedback.Snapshot(3);
  plan = planner_.Plan(catalog_, request, &snapshot);
  EXPECT_EQ(plan.algorithm, "touch");
  EXPECT_FALSE(plan.calibrated);
}

// Hard constraints survive any amount of evidence: under a violated memory
// budget TOUCH is not a candidate no matter how fast it measured.
TEST(CalibratedPlannerConstraintTest, MemoryBudgetBeatsCalibration) {
  DatasetCatalog catalog;
  const DatasetHandle small = catalog.Register(
      "small", GenerateSynthetic(Distribution::kClustered, 1200, 6));
  const DatasetHandle large = catalog.Register(
      "large", GenerateSynthetic(Distribution::kClustered, 120000, 7));
  PlannerOptions options;
  options.memory_budget_bytes = 2 << 20;
  const Planner constrained(options);
  const JoinRequest request{small, large, 1.0f};
  ASSERT_EQ(constrained.Plan(catalog, request).algorithm, "inl");

  PlanFeedback feedback;
  Teach(&feedback, "touch", 1e-12);  // "measured" absurdly fast
  Teach(&feedback, "inl", 1e-6);
  const CalibrationSnapshot snapshot = feedback.Snapshot(3);
  const JoinPlan plan = constrained.Plan(catalog, request, &snapshot);
  EXPECT_NE(plan.algorithm, "touch") << plan.rationale;
}

// --- Engine integration ----------------------------------------------------

using IdPairVector = std::vector<IdPair>;

IdPairVector SortedPairs(VectorCollector& collector) {
  IdPairVector pairs = collector.pairs();
  std::sort(pairs.begin(), pairs.end());
  return pairs;
}

IdPairVector DistanceOracle(const Dataset& a, const Dataset& b,
                            float epsilon) {
  Dataset enlarged = a;
  for (Box& box : enlarged) box = box.Enlarged(epsilon);
  return OracleJoin(enlarged, b);
}

TEST(QueryEngineCalibrationTest, InjectedFeedbackFlipsEnginePlans) {
  QueryEngine engine;  // calibration enabled by default
  const Dataset small = GenerateSynthetic(Distribution::kClustered, 4000, 51);
  const Dataset large = GenerateSynthetic(Distribution::kClustered, 8000, 52);
  const DatasetHandle a = engine.RegisterDataset("small", small);
  const DatasetHandle b = engine.RegisterDataset("large", large);
  const JoinRequest request{a, b, 2.0f};
  ASSERT_EQ(engine.Plan(request).algorithm, "touch");

  Teach(&engine.feedback(), "touch", 1e-5);
  Teach(&engine.feedback(), "inl", 1e-9);
  const JoinPlan plan = engine.Plan(request);
  EXPECT_EQ(plan.algorithm, "inl");
  EXPECT_TRUE(plan.calibrated);
  EXPECT_EQ(plan.static_algorithm, "touch");

  // The flipped plan executes end to end and returns the right pairs.
  VectorCollector out;
  const JoinResult result = engine.Execute(request, out);
  ASSERT_TRUE(result.error.empty());
  EXPECT_EQ(result.plan.algorithm, "inl");
  EXPECT_EQ(SortedPairs(out), DistanceOracle(small, large, 2.0f));
}

TEST(QueryEngineCalibrationTest, ColdRunsAreRecordedCacheHitsAreNot) {
  QueryEngine engine;
  const DatasetHandle a = engine.RegisterDataset(
      "small", GenerateSynthetic(Distribution::kClustered, 4000, 51));
  const DatasetHandle b = engine.RegisterDataset(
      "large", GenerateSynthetic(Distribution::kClustered, 8000, 52));
  const JoinRequest request{a, b, 2.0f};

  CountingCollector out;
  ASSERT_TRUE(engine.Execute(request, out).error.empty());   // cold
  ASSERT_TRUE(engine.Execute(request, out).error.empty());   // cache hit
  EXPECT_EQ(engine.feedback().total_recorded(), 1u);
  const std::vector<PlanOutcome> outcomes = engine.feedback().RecentOutcomes();
  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_EQ(outcomes[0].family, "touch");
  EXPECT_EQ(outcomes[0].objects, 12000u);
  EXPECT_GT(outcomes[0].results, 0u);
  EXPECT_GT(outcomes[0].total_seconds, 0);

  // ExecuteFixed cold runs are evidence too (that is how alternatives the
  // static rules never pick get measured).
  ASSERT_TRUE(engine.ExecuteFixed("ps", request, out).error.empty());
  EXPECT_EQ(engine.feedback().total_recorded(), 2u);
  EXPECT_EQ(engine.feedback().RecentOutcomes()[1].family, "ps");
}

// PBSM caches one directory per side, so a request can be half-warm: the
// shared dataset's directory hits while the new partner's builds. Such runs
// report partial_index_cache_hit, and — since their build_seconds covers
// only the missing side — are not calibration evidence.
TEST(QueryEngineCalibrationTest, PartialPbsmHitsAreNotEvidence) {
  QueryEngine engine;
  Dataset big;
  for (int x = 0; x < 20; ++x) {
    for (int y = 0; y < 20; ++y) {
      for (int z = 0; z < 20; ++z) {
        big.push_back(CenteredBox(5.0f * x, 5.0f * y, 5.0f * z));
      }
    }
  }
  Dataset sub1;
  Dataset sub2;
  for (int i = 0; i < 4000; ++i) {
    sub1.push_back(CenteredBox(10.0f + (i % 70), 10.0f + (i % 60),
                               12.0f + (i % 50)));
    sub2.push_back(CenteredBox(12.0f + (i % 65), 14.0f + (i % 55),
                               20.0f + (i % 40)));
  }
  // Both partners sit strictly inside big's extent, so every request shares
  // one joint grid domain — the precondition for the big directory to hit.
  const DatasetHandle a = engine.RegisterDataset("big", std::move(big));
  const DatasetHandle b = engine.RegisterDataset("sub1", std::move(sub1));
  const DatasetHandle c = engine.RegisterDataset("sub2", std::move(sub2));

  CountingCollector out;
  const JoinResult cold = engine.ExecuteFixed("pbsm-50", {a, b, 0.0f}, out);
  ASSERT_TRUE(cold.error.empty());
  EXPECT_FALSE(cold.index_cache_hit);
  EXPECT_FALSE(cold.partial_index_cache_hit);
  EXPECT_EQ(engine.feedback().total_recorded(), 1u);

  const JoinResult partial = engine.ExecuteFixed("pbsm-50", {a, c, 0.0f}, out);
  ASSERT_TRUE(partial.error.empty());
  EXPECT_FALSE(partial.index_cache_hit);
  EXPECT_TRUE(partial.partial_index_cache_hit);
  EXPECT_EQ(engine.feedback().total_recorded(), 1u);  // half-warm: no record

  const JoinResult warm = engine.ExecuteFixed("pbsm-50", {a, b, 0.0f}, out);
  ASSERT_TRUE(warm.error.empty());
  EXPECT_TRUE(warm.index_cache_hit);
  EXPECT_FALSE(warm.partial_index_cache_hit);
  EXPECT_EQ(engine.feedback().total_recorded(), 1u);
}

TEST(QueryEngineCalibrationTest, DisabledToggleRecordsAndOverridesNothing) {
  EngineOptions options;
  options.calibration.enabled = false;
  QueryEngine engine(options);
  const DatasetHandle a = engine.RegisterDataset(
      "small", GenerateSynthetic(Distribution::kClustered, 4000, 51));
  const DatasetHandle b = engine.RegisterDataset(
      "large", GenerateSynthetic(Distribution::kClustered, 8000, 52));
  const JoinRequest request{a, b, 2.0f};

  CountingCollector out;
  ASSERT_TRUE(engine.Execute(request, out).error.empty());
  EXPECT_EQ(engine.feedback().total_recorded(), 0u);

  // Even with (externally injected) evidence, the disabled engine plans
  // statically.
  Teach(&engine.feedback(), "touch", 1e-5);
  Teach(&engine.feedback(), "inl", 1e-9);
  const JoinPlan plan = engine.Plan(request);
  EXPECT_EQ(plan.algorithm, "touch");
  EXPECT_FALSE(plan.calibrated);
}

}  // namespace
}  // namespace touch
