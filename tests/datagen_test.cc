#include "datagen/distributions.h"

#include <gtest/gtest.h>

#include <cmath>

namespace touch {
namespace {

TEST(DatagenTest, GeneratesRequestedCount) {
  for (const Distribution d : {Distribution::kUniform, Distribution::kGaussian,
                               Distribution::kClustered}) {
    EXPECT_EQ(GenerateSynthetic(d, 1234, 1).size(), 1234u);
  }
}

TEST(DatagenTest, ZeroCountYieldsEmptyDataset) {
  EXPECT_TRUE(GenerateSynthetic(Distribution::kUniform, 0, 1).empty());
}

TEST(DatagenTest, DeterministicInSeed) {
  const Dataset a = GenerateSynthetic(Distribution::kClustered, 500, 77);
  const Dataset b = GenerateSynthetic(Distribution::kClustered, 500, 77);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

TEST(DatagenTest, DifferentSeedsDiffer) {
  const Dataset a = GenerateSynthetic(Distribution::kUniform, 100, 1);
  const Dataset b = GenerateSynthetic(Distribution::kUniform, 100, 2);
  int same = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(DatagenTest, BoxCentersStayInsideSpace) {
  SyntheticOptions opt;
  for (const Distribution d : {Distribution::kUniform, Distribution::kGaussian,
                               Distribution::kClustered}) {
    for (const Box& box : GenerateSynthetic(d, 2000, 3, opt)) {
      const Vec3 c = box.Center();
      EXPECT_GE(c.x, 0.0f);
      EXPECT_LE(c.x, opt.space);
      EXPECT_GE(c.y, 0.0f);
      EXPECT_LE(c.y, opt.space);
      EXPECT_GE(c.z, 0.0f);
      EXPECT_LE(c.z, opt.space);
    }
  }
}

TEST(DatagenTest, BoxSidesBoundedByMaxSide) {
  SyntheticOptions opt;
  opt.max_side = 2.5f;
  for (const Box& box : GenerateSynthetic(Distribution::kUniform, 2000, 4, opt)) {
    const Vec3 e = box.Extent();
    EXPECT_GE(e.x, 0.0f);
    EXPECT_LT(e.x, opt.max_side);
    EXPECT_LT(e.y, opt.max_side);
    EXPECT_LT(e.z, opt.max_side);
  }
}

TEST(DatagenTest, GaussianConcentratesAroundCenter) {
  SyntheticOptions opt;
  const Dataset data = GenerateSynthetic(Distribution::kGaussian, 20000, 5, opt);
  // About 38% of a clamped N(500,250) sample lies within 125 of the mean on
  // each axis; jointly the central half-cube should hold far more mass than
  // it would under uniformity.
  size_t central = 0;
  for (const Box& box : data) {
    const Vec3 c = box.Center();
    if (std::abs(c.x - 500) < 250 && std::abs(c.y - 500) < 250 &&
        std::abs(c.z - 500) < 250) {
      ++central;
    }
  }
  const double fraction = static_cast<double>(central) / data.size();
  EXPECT_GT(fraction, 0.2);  // uniform would give 0.125
}

TEST(DatagenTest, ClusteredIsMoreConcentratedThanUniform) {
  // Compare the average nearest-centroid spread via a crude proxy: the mean
  // pairwise-sample distance of clustered data must undershoot uniform data.
  const Dataset u = GenerateSynthetic(Distribution::kUniform, 2000, 6);
  SyntheticOptions copt;
  copt.clusters = 5;
  copt.cluster_sigma = 30.0f;
  const Dataset c = GenerateSynthetic(Distribution::kClustered, 2000, 6, copt);
  auto mean_pair_distance = [](const Dataset& data) {
    double sum = 0;
    int count = 0;
    for (size_t i = 0; i < data.size(); i += 40) {
      for (size_t j = i + 1; j < data.size(); j += 40) {
        sum += (data[i].Center() - data[j].Center()).Length();
        ++count;
      }
    }
    return sum / count;
  };
  EXPECT_LT(mean_pair_distance(c), mean_pair_distance(u));
}

TEST(DatagenTest, ClusteredHotspotsIndependentOfCount) {
  // Growing a clustered dataset must extend it around the same hotspots:
  // the first boxes of a bigger dataset coincide with the smaller one.
  const Dataset small = GenerateSynthetic(Distribution::kClustered, 100, 9);
  const Dataset big = GenerateSynthetic(Distribution::kClustered, 1000, 9);
  for (size_t i = 0; i < small.size(); ++i) EXPECT_EQ(small[i], big[i]);
}

TEST(DatagenTest, ParseDistributionNames) {
  Distribution d;
  EXPECT_TRUE(ParseDistribution("uniform", &d));
  EXPECT_EQ(d, Distribution::kUniform);
  EXPECT_TRUE(ParseDistribution("gaussian", &d));
  EXPECT_EQ(d, Distribution::kGaussian);
  EXPECT_TRUE(ParseDistribution("clustered", &d));
  EXPECT_EQ(d, Distribution::kClustered);
  EXPECT_FALSE(ParseDistribution("zipf", &d));
}

TEST(DatagenTest, DistributionNamesRoundTrip) {
  for (const Distribution d : {Distribution::kUniform, Distribution::kGaussian,
                               Distribution::kClustered}) {
    Distribution parsed;
    ASSERT_TRUE(ParseDistribution(DistributionName(d), &parsed));
    EXPECT_EQ(parsed, d);
  }
}

}  // namespace
}  // namespace touch
