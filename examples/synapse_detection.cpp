// Synapse detection: the paper's motivating neuroscience application end to
// end, including the refinement phase the paper delegates to "any
// off-the-shelf solution".
//
// A synapse can form wherever an axon branch of one neuron passes within a
// threshold distance of a dendrite branch of another. The pipeline is the
// classic filter + refine:
//
//   filter : TOUCH distance join on the cylinders' bounding boxes
//   refine : exact segment-to-segment distance between the two cylinders
//
// Build & run:  ./build/examples/synapse_detection

#include <cstdio>

#include "core/touch.h"
#include "datagen/neuro.h"
#include "util/timer.h"

int main() {
  using namespace touch;

  // Grow a synthetic cortical tissue model: 200 neurons, each with axonal
  // and dendritic processes made of short cylinders (axon:dendrite ~ 1:2).
  NeuroOptions tissue;
  tissue.neurons = 200;
  const NeuroModel model = GenerateNeuroscience(tissue, /*seed=*/2024);
  const Dataset axon_boxes = CylinderMbrs(model.axons);
  const Dataset dendrite_boxes = CylinderMbrs(model.dendrites);
  std::printf("tissue model: %zu axon cylinders, %zu dendrite cylinders\n",
              model.axons.size(), model.dendrites.size());

  constexpr float kEpsilon = 1.0f;  // synapse distance threshold (um)

  // --- Filter: TOUCH join on the MBRs, enlarged by the threshold. ---
  Timer timer;
  TouchJoin join;
  VectorCollector candidates;
  const JoinStats filter_stats =
      DistanceJoin(join, axon_boxes, dendrite_boxes, kEpsilon, candidates);
  const double filter_seconds = timer.Seconds();

  // --- Refine: exact cylinder-to-cylinder distance on the candidates. ---
  timer.Reset();
  size_t synapses = 0;
  for (const auto& [axon_id, dendrite_id] : candidates.pairs()) {
    if (CylindersWithinDistance(model.axons[axon_id],
                                model.dendrites[dendrite_id], kEpsilon)) {
      ++synapses;
    }
  }
  const double refine_seconds = timer.Seconds();

  std::printf("filter : %zu candidate pairs in %.3fs (%llu comparisons, "
              "%llu dendrites filtered = %.1f%%)\n",
              candidates.pairs().size(), filter_seconds,
              static_cast<unsigned long long>(filter_stats.comparisons),
              static_cast<unsigned long long>(filter_stats.filtered),
              100.0 * static_cast<double>(filter_stats.filtered) /
                  static_cast<double>(dendrite_boxes.size()));
  std::printf("refine : %zu synapses in %.3fs (%.1f%% of candidates)\n",
              synapses, refine_seconds,
              candidates.pairs().empty()
                  ? 0.0
                  : 100.0 * static_cast<double>(synapses) /
                        static_cast<double>(candidates.pairs().size()));
  std::printf("synapse density: %.2f per neuron\n",
              static_cast<double>(synapses) / tissue.neurons);
  return 0;
}
