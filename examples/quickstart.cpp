// Quickstart: the minimal end-to-end use of the TOUCH library.
//
//   1. Bring (or generate) two datasets of 3D boxes.
//   2. Run the TOUCH spatial join to find every intersecting pair.
//   3. Run a distance join (pairs within epsilon) with one extra argument.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/touch.h"
#include "datagen/distributions.h"

int main() {
  using namespace touch;

  // Two synthetic datasets: 20K uniform boxes each, in a 300-unit cube.
  SyntheticOptions gen;
  gen.space = 300.0f;
  const Dataset buildings =
      GenerateSynthetic(Distribution::kUniform, 20'000, /*seed=*/1, gen);
  const Dataset sensors =
      GenerateSynthetic(Distribution::kUniform, 20'000, /*seed=*/2, gen);

  // A spatial join: every (building, sensor) pair whose boxes intersect.
  TouchJoin join;               // default = the paper's configuration
  VectorCollector intersecting; // stores pairs; CountingCollector just counts
  const JoinStats spatial = join.Join(buildings, sensors, intersecting);
  std::printf("spatial join:  %zu pairs   [%s]\n",
              intersecting.pairs().size(), spatial.ToString().c_str());

  // A distance join: every pair within epsilon = 5 units (per axis).
  CountingCollector near_pairs;
  const JoinStats distance =
      DistanceJoin(join, buildings, sensors, /*epsilon=*/5.0f, near_pairs);
  std::printf("distance join: %llu pairs within eps=5   [%s]\n",
              static_cast<unsigned long long>(near_pairs.count()),
              distance.ToString().c_str());

  // Every knob of the algorithm is a field of TouchOptions.
  TouchOptions options;
  options.fanout = 4;
  options.partitions = 256;
  TouchJoin tuned(options);
  CountingCollector tuned_out;
  const JoinStats tuned_stats =
      DistanceJoin(tuned, buildings, sensors, 5.0f, tuned_out);
  std::printf("tuned (fanout=4, 256 partitions): %llu pairs, %.0fk comparisons\n",
              static_cast<unsigned long long>(tuned_out.count()),
              static_cast<double>(tuned_stats.comparisons) / 1000.0);
  return 0;
}
