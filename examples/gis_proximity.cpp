// GIS proximity analysis: the geographic use case from the paper's
// introduction — detecting proximity between geographical features.
//
// Scenario: a city has clustered building footprints and a network of road
// segments; planners want every building within 15 m of a road (noise
// corridor). Roads are long thin boxes, buildings are compact boxes — a
// shape mix that stresses a spatial join differently from the cube-ish
// synthetic workloads.
//
// Build & run:  ./build/examples/gis_proximity

#include <cstdio>
#include <vector>

#include "core/factory.h"
#include "datagen/distributions.h"
#include "util/rng.h"

namespace {

using namespace touch;

// Road network: random polylines rasterized into elongated axis-aligned
// segment boxes ~4 m wide, a few hundred meters long each.
Dataset GenerateRoads(int num_roads, float city_size, uint64_t seed) {
  Rng rng(seed);
  Dataset segments;
  for (int r = 0; r < num_roads; ++r) {
    float x = static_cast<float>(rng.Uniform(0, city_size));
    float y = static_cast<float>(rng.Uniform(0, city_size));
    const int pieces = 5 + static_cast<int>(rng.UniformInt(15));
    for (int p = 0; p < pieces; ++p) {
      const bool horizontal = rng.UniformInt(2) == 0;
      const float length = 100.0f + 300.0f * rng.NextFloat();
      const float width = 4.0f;
      Box segment;
      if (horizontal) {
        segment = Box(Vec3(x, y - width / 2, 0),
                      Vec3(x + length, y + width / 2, 8));
        x += length;
      } else {
        segment = Box(Vec3(x - width / 2, y, 0),
                      Vec3(x + width / 2, y + length, 8));
        y += length;
      }
      // Keep the network inside the city limits.
      if (x > city_size || y > city_size) break;
      segments.push_back(segment);
    }
  }
  return segments;
}

}  // namespace

int main() {
  constexpr float kCitySize = 20'000.0f;  // 20 km x 20 km
  constexpr float kCorridor = 15.0f;      // noise corridor, meters

  // Buildings cluster into districts; boxes 8-40 m on a side, z = height.
  SyntheticOptions districts;
  districts.space = kCitySize;
  districts.max_side = 40.0f;
  districts.clusters = 60;
  districts.cluster_sigma = 600.0f;
  Dataset buildings =
      GenerateSynthetic(Distribution::kClustered, 150'000, 7, districts);
  // Flatten buildings onto the ground plane (z in [0, 30] m).
  for (Box& b : buildings) {
    b.lo.z = 0;
    b.hi.z = 30.0f * (b.hi.z / kCitySize);
  }
  const Dataset roads = GenerateRoads(800, kCitySize, 8);
  std::printf("city: %zu buildings, %zu road segments\n", buildings.size(),
              roads.size());

  // Run the same distance join with TOUCH and with the R-tree baseline.
  for (const char* name : {"touch", "rtree"}) {
    const auto algorithm = MakeAlgorithm(name);
    VectorCollector out;
    const JoinStats stats =
        DistanceJoin(*algorithm, roads, buildings, kCorridor, out);
    // Count distinct buildings (one building can border several segments).
    std::vector<bool> affected(buildings.size(), false);
    size_t distinct = 0;
    for (const auto& [road_id, building_id] : out.pairs()) {
      if (!affected[building_id]) {
        affected[building_id] = true;
        ++distinct;
      }
    }
    std::printf(
        "%-6s: %zu road-building pairs, %zu buildings in the corridor\n"
        "        %s\n",
        name, out.pairs().size(), distinct, stats.ToString().c_str());
  }
  return 0;
}
