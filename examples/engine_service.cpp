// The query engine as a service: register datasets once, serve many joins.
//
// A deployment holding several spatial datasets (a parcel database, road
// network MBRs, antenna sites) answers join queries arriving in batches. The
// engine plans each query cost-based (printing an explainable plan), executes
// the batch concurrently on its worker pool, and reuses built TOUCH trees via
// the index cache, so steady traffic against registered datasets stops paying
// the build phase — the paper's section-4.3 prebuilt shortcut, productized.
//
// Build & run:  ./build/examples/engine_service

#include <cstdio>

#include "datagen/distributions.h"
#include "engine/engine.h"
#include "util/timer.h"

int main() {
  using namespace touch;

  QueryEngine engine;

  // --- Register the datasets the service holds. Stats are computed once. ---
  SyntheticOptions gen;
  gen.space = 800.0f;
  const DatasetHandle parcels = engine.RegisterDataset(
      "parcels", GenerateSynthetic(Distribution::kClustered, 60'000, 1, gen));
  const DatasetHandle roads = engine.RegisterDataset(
      "roads", GenerateSynthetic(Distribution::kUniform, 40'000, 2, gen));
  const DatasetHandle antennas = engine.RegisterDataset(
      "antennas", GenerateSynthetic(Distribution::kUniform, 900, 3, gen));

  for (const DatasetHandle handle : {parcels, roads, antennas}) {
    const DatasetStats& stats = engine.catalog().stats(handle);
    std::printf("registered %-8s  %6zu objects, skew %.2f\n",
                engine.catalog().name(handle).c_str(), stats.count,
                stats.HistogramSkew());
  }

  // --- A mixed batch: every request is planned independently. ---
  const std::vector<JoinRequest> batch = {
      {parcels, roads, 2.0f},    // skewed vs uniform        -> TOUCH
      {roads, parcels, 2.0f},    // reversed                 -> TOUCH, build B
      {antennas, parcels, 10.0f},// tiny build side          -> TOUCH
      {antennas, antennas, 5.0f},// small self-join          -> plane sweep
      {parcels, roads, 2.0f},    // repeat: hits the index cache
      {parcels, parcels, 1.0f},  // skewed self-join         -> TOUCH
  };

  Timer batch_timer;
  const std::vector<JoinResult> results = engine.ExecuteBatch(batch);
  const double batch_seconds = batch_timer.Seconds();

  std::puts("\nbatch results:");
  for (size_t i = 0; i < results.size(); ++i) {
    const JoinResult& result = results[i];
    if (!result.error.empty()) {
      std::printf("  [%zu] failed: %s\n", i, result.error.c_str());
      return 1;
    }
    std::printf("  [%zu] %-8s x %-8s eps=%-4g -> %-9s %8llu results %7.1f ms%s\n",
                i, engine.catalog().name(batch[i].a).c_str(),
                engine.catalog().name(batch[i].b).c_str(), batch[i].epsilon,
                result.plan.algorithm.c_str(),
                static_cast<unsigned long long>(result.stats.results),
                result.stats.total_seconds * 1e3,
                result.index_cache_hit ? "  [cache hit]" : "");
  }
  std::printf("batch of %zu joins in %.1f ms on %d threads\n", batch.size(),
              batch_seconds * 1e3, engine.threads());

  // --- Repeated single query: cold build vs cached index. ---
  const JoinRequest repeated{parcels, roads, 3.0f};
  std::printf("\nrepeated query plan:\n%s\n",
              engine.Plan(repeated).ToString().c_str());
  for (int run = 0; run < 2; ++run) {
    CountingCollector out;
    const JoinResult result = engine.Execute(repeated, out);
    std::printf("  run %d: %llu results in %.1f ms (build %.1f ms)%s\n", run,
                static_cast<unsigned long long>(result.stats.results),
                result.stats.total_seconds * 1e3,
                result.stats.build_seconds * 1e3,
                result.index_cache_hit ? "  [cache hit]" : "");
  }

  const IndexCache::Stats cache = engine.cache_stats();
  std::printf("\nindex cache: %llu hits, %llu misses, %zu entries, %.1f MB\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses), cache.entries,
              static_cast<double>(cache.bytes) / (1024.0 * 1024.0));
  return 0;
}
