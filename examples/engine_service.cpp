// The query engine as a service: register datasets once, serve many joins.
//
// A deployment holding several spatial datasets (a parcel database, road
// network MBRs, antenna sites) answers join queries arriving concurrently.
// The engine plans each query cost-based (printing an explainable plan),
// executes submissions asynchronously on its worker pool — every request
// completes through its own future or callback the moment it finishes —
// and reuses built index artifacts via the LRU-capped index cache, so
// steady traffic against registered datasets stops paying the build phase:
// the paper's section-4.3 prebuilt shortcut, productized.
//
// Build & run:  ./build/examples/engine_service

#include <cstdio>
#include <future>

#include "datagen/distributions.h"
#include "engine/engine.h"
#include "util/timer.h"

int main() {
  using namespace touch;

  // Cap the index cache at 64 MB: old artifacts fall out LRU-first.
  EngineOptions options;
  options.max_cache_bytes = 64u << 20;
  QueryEngine engine(options);

  // --- Register the datasets the service holds. Stats are computed once. ---
  SyntheticOptions gen;
  gen.space = 800.0f;
  const DatasetHandle parcels = engine.RegisterDataset(
      "parcels", GenerateSynthetic(Distribution::kClustered, 60'000, 1, gen));
  const DatasetHandle roads = engine.RegisterDataset(
      "roads", GenerateSynthetic(Distribution::kUniform, 40'000, 2, gen));
  const DatasetHandle antennas = engine.RegisterDataset(
      "antennas", GenerateSynthetic(Distribution::kUniform, 900, 3, gen));

  for (const DatasetHandle handle : {parcels, roads, antennas}) {
    const DatasetStats& stats = engine.catalog().stats(handle);
    std::printf("registered %-8s  %6zu objects, skew %.2f\n",
                engine.catalog().name(handle).c_str(), stats.count,
                stats.HistogramSkew());
  }

  // --- A mixed batch, submitted asynchronously: every request is planned
  // independently and its future completes the moment that join finishes —
  // a slow request never delays a fast one's result. ---
  const std::vector<JoinRequest> batch = {
      {parcels, roads, 2.0f},    // skewed vs uniform        -> TOUCH
      {roads, parcels, 2.0f},    // reversed                 -> TOUCH, build B
      {antennas, parcels, 10.0f},// tiny build side          -> TOUCH
      {antennas, antennas, 5.0f},// small self-join          -> plane sweep
      {parcels, roads, 2.0f},    // repeat: hits the index cache
      {parcels, parcels, 1.0f},  // skewed self-join         -> TOUCH
  };

  Timer batch_timer;
  BatchHandle handles = engine.SubmitBatch(batch);

  std::puts("\nbatch results (streamed as each future completes):");
  for (size_t i = 0; i < handles.size(); ++i) {
    const JoinResult result = handles[i].Get();
    if (!result.error.empty()) {
      std::printf("  [%zu] failed: %s\n", i, result.error.c_str());
      return 1;
    }
    std::printf("  [%zu] %-8s x %-8s eps=%-4g -> %-9s %8llu results %7.1f ms%s\n",
                i, engine.catalog().name(batch[i].a).c_str(),
                engine.catalog().name(batch[i].b).c_str(), batch[i].epsilon,
                result.plan.algorithm.c_str(),
                static_cast<unsigned long long>(result.stats.results),
                result.stats.total_seconds * 1e3,
                result.index_cache_hit ? "  [cache hit]" : "");
  }
  std::printf("batch of %zu joins in %.1f ms on %d threads\n", batch.size(),
              batch_timer.Seconds() * 1e3, engine.threads());

  // --- Request lifecycle: a serving system abandons requests whose caller
  // gave up (timeout, disconnect). Cancel() stops an executing join
  // cooperatively within milliseconds; a request still queued completes
  // immediately without ever occupying a worker. Cancel racing a fast join
  // is benign — the future completes exactly once, as cancelled or, when
  // the join won the race, with its full result. ---
  RequestHandle doomed = engine.Submit({parcels, parcels, 2.0f});
  doomed.Cancel();
  const JoinResult abandoned = doomed.Get();
  std::printf("\ncancelled request: status=%s, phase=%s%s\n",
              RequestStatusName(abandoned.status),
              RequestPhaseName(doomed.phase()),
              abandoned.ok() ? "  (the join outraced the cancel)" : "");

  // --- Completion callbacks: fire-and-forget submission for callers that
  // push results onward instead of blocking on a future. ---
  std::promise<uint64_t> done;
  engine.Submit({antennas, roads, 5.0f}, nullptr,
                [&done](const JoinResult& result) {
                  done.set_value(result.stats.results);
                });
  std::printf("\ncallback delivery: antennas x roads -> %llu results\n",
              static_cast<unsigned long long>(done.get_future().get()));

  // --- Repeated single query: cold build vs cached index (the synchronous
  // wrapper, for callers that want the classic blocking call). ---
  const JoinRequest repeated{parcels, roads, 3.0f};
  std::printf("\nrepeated query plan:\n%s\n",
              engine.Plan(repeated).ToString().c_str());
  for (int run = 0; run < 2; ++run) {
    CountingCollector out;
    const JoinResult result = engine.Execute(repeated, out);
    std::printf("  run %d: %llu results in %.1f ms (build %.1f ms)%s\n", run,
                static_cast<unsigned long long>(result.stats.results),
                result.stats.total_seconds * 1e3,
                result.stats.build_seconds * 1e3,
                result.index_cache_hit ? "  [cache hit]" : "");
  }

  const IndexCache::Stats cache = engine.cache_stats();
  std::printf(
      "\nindex cache: %.0f%% hit rate (%llu hits, %llu misses), "
      "%llu evictions, %zu entries, %.1f / %.0f MB\n",
      cache.HitRate() * 100.0, static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.evictions), cache.entries,
      static_cast<double>(cache.bytes) / (1024.0 * 1024.0),
      static_cast<double>(cache.capacity_bytes) / (1024.0 * 1024.0));
  return 0;
}
