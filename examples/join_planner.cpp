// Planning a join before paying for it: selectivity estimation, join-order
// choice, and persistence.
//
// A downstream system that runs many joins wants to (a) predict how large a
// result set will be before committing memory to it, (b) let the library
// pick the cheaper join order, and (c) cache datasets on disk between runs.
// This example walks those three steps with the estimator, TOUCH's
// join-order knob, and the binary dataset format.
//
// Build & run:  ./build/examples/join_planner

#include <cstdio>
#include <cstdlib>

#include "core/touch.h"
#include "datagen/distributions.h"
#include "estimate/selectivity.h"
#include "io/dataset_io.h"

int main() {
  using namespace touch;

  // A skewed workload: a small set of facilities, a large set of parcels.
  SyntheticOptions gen;
  gen.space = 800.0f;
  const Dataset facilities =
      GenerateSynthetic(Distribution::kClustered, 30'000, /*seed=*/3, gen);
  const Dataset parcels =
      GenerateSynthetic(Distribution::kClustered, 150'000, /*seed=*/4, gen);
  constexpr float kEpsilon = 4.0f;

  // --- (a) Estimate before running. ---
  const SelectivityEstimator estimator(facilities, parcels);
  const SelectivityEstimate estimate = estimator.Estimate(kEpsilon);
  std::printf("estimated results:  %.0f  (selectivity %.2fe-6)\n",
              estimate.expected_results, estimate.selectivity * 1e6);

  // --- (b) Join with the order the library recommends. ---
  TouchOptions options;
  options.join_order = SelectivityEstimator::ShouldBuildOnA(facilities,
                                                            parcels)
                           ? TouchOptions::JoinOrder::kBuildOnA
                           : TouchOptions::JoinOrder::kBuildOnB;
  TouchJoin join(options);
  CountingCollector out;
  const JoinStats stats =
      DistanceJoin(join, facilities, parcels, kEpsilon, out);
  std::printf("measured results:   %llu  in %.1f ms  [%s]\n",
              static_cast<unsigned long long>(stats.results),
              stats.total_seconds * 1e3, stats.ToString().c_str());

  const double ratio =
      estimate.expected_results / static_cast<double>(stats.results);
  std::printf("estimate / measured = %.2fx %s\n", ratio,
              (ratio > 0.33 && ratio < 3.0) ? "(within the expected 3x band)"
                                            : "(outside the 3x band!)");

  // --- (c) Persist the datasets for the next run. ---
  const std::string path = "/tmp/join_planner_facilities.bin";
  if (const IoStatus status = WriteBoxesBinary(path, facilities); !status) {
    std::printf("write failed: %s\n", status.message.c_str());
    return 1;
  }
  Dataset reloaded;
  if (const IoStatus status = ReadBoxesBinary(path, &reloaded); !status) {
    std::printf("read failed: %s\n", status.message.c_str());
    return 1;
  }
  std::printf("persisted and reloaded %zu facility boxes via %s\n",
              reloaded.size(), path.c_str());
  std::remove(path.c_str());
  return 0;
}
