// Streaming (non-blocking) spatial join: results flow to a consumer while
// the join is still running.
//
// Scenario: a monitoring pipeline wants to react to collisions between
// moving assets and restricted zones without waiting for the full join to
// finish. NBPS emits each confirmed pair the moment both objects have
// arrived, so the consumer below sees its first alerts after a fraction of
// the total join time — compare `first result` against `total` in the
// output, then against the blocking PBSM run that uses the same grid.
//
// Build & run:  ./build/examples/streaming_join

#include <cstdio>

#include "datagen/distributions.h"
#include "join/nbps.h"
#include "join/pbsm.h"

int main() {
  using namespace touch;

  SyntheticOptions gen;
  gen.space = 500.0f;
  Dataset zones =
      GenerateSynthetic(Distribution::kClustered, 60'000, /*seed=*/7, gen);
  for (Box& zone : zones) zone = zone.Enlarged(2.0f);  // 2-unit safety margin
  const Dataset assets =
      GenerateSynthetic(Distribution::kClustered, 120'000, /*seed=*/8, gen);

  // The consumer: counts alerts, remembers when the first one landed.
  class AlertConsumer : public ResultCollector {
   public:
    void Emit(uint32_t zone_id, uint32_t asset_id) override {
      ++alerts_;
      if (alerts_ == 1) {
        std::printf("first alert: zone %u x asset %u\n", zone_id, asset_id);
      }
    }
    uint64_t alerts() const { return alerts_; }

   private:
    uint64_t alerts_ = 0;
  };

  NbpsJoin streaming;  // non-blocking: emits while inputs stream in
  AlertConsumer consumer;
  const JoinStats nbps_stats = streaming.Join(zones, assets, consumer);
  std::printf(
      "NBPS:  %llu alerts, first result after %.1f ms, total %.1f ms\n",
      static_cast<unsigned long long>(nbps_stats.results),
      nbps_stats.first_result_seconds * 1e3, nbps_stats.total_seconds * 1e3);

  PbsmOptions pbsm_options;
  pbsm_options.resolution = 100;  // same grid granularity as NBPS's default
  PbsmJoin blocking(pbsm_options);
  CountingCollector counter;
  const JoinStats pbsm_stats = blocking.Join(zones, assets, counter);
  std::printf(
      "PBSM:  %llu alerts, nothing before the partition phase ends "
      "(%.1f ms), total %.1f ms\n",
      static_cast<unsigned long long>(pbsm_stats.results),
      (pbsm_stats.build_seconds + pbsm_stats.assign_seconds) * 1e3,
      pbsm_stats.total_seconds * 1e3);

  if (nbps_stats.results != pbsm_stats.results) {
    std::puts("ERROR: streaming and blocking joins disagree");
    return 1;
  }
  std::puts("both joins found the same pairs; NBPS just told you earlier");
  return 0;
}
