// Algorithm tour: run every join algorithm in the library on one workload
// and print the paper's three metrics side by side — execution time, number
// of object comparisons, and memory footprint. A miniature of the paper's
// evaluation section, and a demonstration of the factory API.
//
// Usage:  ./build/examples/algorithm_tour [objects_per_dataset]

#include <cstdio>
#include <cstdlib>

#include "core/factory.h"
#include "datagen/distributions.h"

int main(int argc, char** argv) {
  using namespace touch;

  size_t count = 30'000;
  if (argc > 1) {
    const long parsed = std::strtol(argv[1], nullptr, 10);
    if (parsed > 0) count = static_cast<size_t>(parsed);
  }

  // Clustered data at city-block density; epsilon = 5 as in the paper.
  SyntheticOptions gen;
  gen.space = 320.0f;
  gen.cluster_sigma = 70.0f;
  const Dataset a = GenerateSynthetic(Distribution::kClustered, count, 1, gen);
  const Dataset b =
      GenerateSynthetic(Distribution::kClustered, 2 * count, 2, gen);
  std::printf("workload: %zu x %zu clustered boxes, eps=5, space=%.0f^3\n\n",
              a.size(), b.size(), static_cast<double>(gen.space));
  std::printf("%-10s %12s %16s %12s %12s\n", "algorithm", "time[ms]",
              "comparisons", "results", "memory[MB]");

  // The quadratic joins are only run on small inputs, as in the paper.
  for (const std::string& name : AllAlgorithmNames()) {
    if ((name == "nl" || name == "ps") && count > 50'000) continue;
    AlgorithmConfig config;
    // Translate the paper's PBSM-500 / PBSM-100 cell sizes to this space.
    std::string effective = name;
    if (name == "pbsm-500") effective = "pbsm-160";  // ~2-unit cells
    if (name == "pbsm-100") effective = "pbsm-32";   // ~10-unit cells
    const auto algorithm = MakeAlgorithm(effective, config);
    CountingCollector out;
    const JoinStats stats = DistanceJoin(*algorithm, a, b, 5.0f, out);
    std::printf("%-10s %12.1f %16llu %12llu %12.2f\n", name.c_str(),
                stats.total_seconds * 1000.0,
                static_cast<unsigned long long>(stats.comparisons),
                static_cast<unsigned long long>(stats.results),
                static_cast<double>(stats.memory_bytes) / (1024.0 * 1024.0));
  }
  std::printf("\nExpected shape (paper figs 8-11): TOUCH fewest comparisons "
              "and fastest;\nPBSM fine grids fast but memory-hungry; "
              "NL/PS orders of magnitude slower.\n");
  return 0;
}
