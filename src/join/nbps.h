#ifndef TOUCH_JOIN_NBPS_H_
#define TOUCH_JOIN_NBPS_H_

#include "join/algorithm.h"

namespace touch {

/// Configuration of the non-blocking partitioned spatial join.
struct NbpsOptions {
  /// Grid cells per dimension over the joint MBR of both inputs.
  int resolution = 100;
};

/// Non-Blocking Parallel Spatial join (Luo, Naughton, Ellmann, ICDE 2002;
/// paper section 2.2.3), adapted to a single in-memory node.
///
/// NBPS's defining property is that "result tuples are produced continuously
/// as they are generated": objects of the two inputs are consumed as
/// interleaved streams, every arriving object immediately probes the
/// opposite dataset's entries in the grid cells it overlaps, and matches are
/// emitted on the spot. The revised reference-point rule (a pair is reported
/// only in the cell owning the min-corner of the pair's intersection) makes
/// the emitted stream duplicate-free without any post-pass, so downstream
/// consumers can start working after the first arrival instead of after a
/// full partitioning phase. `JoinStats::first_result_seconds` records the
/// resulting time-to-first-result.
class NbpsJoin : public SpatialJoinAlgorithm {
 public:
  explicit NbpsJoin(const NbpsOptions& options = {}) : options_(options) {}

  std::string_view name() const override { return "nbps"; }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;

  const NbpsOptions& options() const { return options_; }

 private:
  NbpsOptions options_;
};

}  // namespace touch

#endif  // TOUCH_JOIN_NBPS_H_
