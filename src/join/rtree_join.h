#ifndef TOUCH_JOIN_RTREE_JOIN_H_
#define TOUCH_JOIN_RTREE_JOIN_H_

#include "index/rtree.h"
#include "join/algorithm.h"
#include "join/local_join.h"

namespace touch {

/// Configuration shared by the two R-tree baselines. The paper's best
/// configuration is a fanout of 2 with 2KB nodes; at ~32 bytes per object
/// entry that is a leaf capacity of 64.
struct RTreeJoinOptions {
  size_t fanout = 2;
  size_t leaf_capacity = 64;
  /// Local join for leaf-pair joins (paper: plane sweep).
  LocalJoinStrategy local_join = LocalJoinStrategy::kPlaneSweep;
  /// Bulk loader for both trees (paper: STR; Hilbert for the ablation).
  BulkLoadMethod bulkload = BulkLoadMethod::kStr;
};

/// Synchronous R-tree traversal join (Brinkhoff, Kriegel, Seeger, SIGMOD'93;
/// paper section 2.2.1): bulk-loads an STR R-tree on each dataset and walks
/// both trees in lockstep, descending only into node pairs whose MBRs
/// intersect; intersecting leaf pairs are joined locally.
class RTreeSyncJoin : public SpatialJoinAlgorithm {
 public:
  explicit RTreeSyncJoin(const RTreeJoinOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "rtree"; }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;

  const RTreeJoinOptions& options() const { return options_; }

 private:
  void JoinNodes(std::span<const Box> a, std::span<const Box> b,
                 const RTree& tree_a, const RTree& tree_b, uint32_t node_a,
                 uint32_t node_b, JoinStats* stats, ResultCollector& out);

  RTreeJoinOptions options_;
};

}  // namespace touch

#endif  // TOUCH_JOIN_RTREE_JOIN_H_
