#include "join/seeded_tree.h"

#include <algorithm>
#include <limits>

#include "index/str.h"
#include "join/sync_traversal.h"
#include "util/memory.h"
#include "util/timer.h"

namespace touch {
namespace {

/// Construction-time node representation; flattened into the arena at the
/// end so begin/count ranges can be laid out contiguously.
struct TmpNode {
  Box mbr = Box::Empty();
  std::vector<uint32_t> children;  // indices into the TmpNode vector
  std::vector<uint32_t> items;     // object ids (leaves only)
  uint8_t level = 0;
  bool is_slot = false;
};

/// Copies the top `seed_levels` of `seed` into TmpNodes; nodes at the cut
/// depth (or seed leaves reached earlier) become slots. Returns the root
/// TmpNode index.
uint32_t CopySeed(const RTree& seed, std::vector<TmpNode>* tmp,
                  std::vector<uint32_t>* slots, uint32_t seed_node_id,
                  int remaining_levels) {
  const RTree::Node& seed_node = seed.nodes()[seed_node_id];
  const uint32_t id = static_cast<uint32_t>(tmp->size());
  tmp->emplace_back();
  (*tmp)[id].mbr = seed_node.mbr;
  if (remaining_levels <= 1 || seed_node.IsLeaf()) {
    (*tmp)[id].is_slot = true;
    slots->push_back(id);
    return id;
  }
  for (uint32_t i = seed_node.begin; i < seed_node.begin + seed_node.count;
       ++i) {
    const uint32_t child = CopySeed(seed, tmp, slots, seed.child_ids()[i],
                                    remaining_levels - 1);
    (*tmp)[id].children.push_back(child);
  }
  return id;
}

double Enlargement(const Box& mbr, const Box& box) {
  return Union(mbr, box).Volume() - mbr.Volume();
}

}  // namespace

SeededTree::SeededTree(const RTree& seed, int seed_levels,
                       std::span<const Box> boxes, size_t leaf_capacity,
                       size_t fanout) {
  leaf_capacity = std::max<size_t>(1, leaf_capacity);
  fanout = std::max<size_t>(2, fanout);
  if (boxes.empty()) return;

  std::vector<TmpNode> tmp;
  std::vector<uint32_t> slots;
  uint32_t tmp_root = 0;
  if (seed.empty()) {
    // No seed: the whole tree is one slot grown over B.
    tmp.emplace_back();
    tmp[0].is_slot = true;
    slots.push_back(0);
  } else {
    tmp_root = CopySeed(seed, &tmp, &slots, seed.root(),
                        std::max(1, seed_levels));
  }
  slot_count_ = slots.size();

  // Route every object to the slot reached by least-enlargement descent.
  std::vector<std::vector<uint32_t>> slot_objects(slots.size());
  std::vector<size_t> slot_index_of(tmp.size(), SIZE_MAX);
  for (size_t s = 0; s < slots.size(); ++s) slot_index_of[slots[s]] = s;
  for (uint32_t obj = 0; obj < boxes.size(); ++obj) {
    uint32_t current = tmp_root;
    while (!tmp[current].is_slot) {
      const std::vector<uint32_t>& children = tmp[current].children;
      uint32_t best = children.front();
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_volume = std::numeric_limits<double>::infinity();
      for (const uint32_t child : children) {
        const double enlargement = Enlargement(tmp[child].mbr, boxes[obj]);
        const double volume = tmp[child].mbr.Volume();
        if (enlargement < best_enlargement ||
            (enlargement == best_enlargement && volume < best_volume)) {
          best = child;
          best_enlargement = enlargement;
          best_volume = volume;
        }
      }
      current = best;
    }
    slot_objects[slot_index_of[current]].push_back(obj);
  }

  // Grow an STR-packed subtree under every non-empty slot.
  for (size_t s = 0; s < slots.size(); ++s) {
    TmpNode& slot = tmp[slots[s]];
    const std::vector<uint32_t>& objects = slot_objects[s];
    if (objects.empty()) {
      // Dead slot: an empty leaf whose empty MBR intersects nothing.
      slot.mbr = Box::Empty();
      slot.level = 0;
      continue;
    }

    std::vector<Box> object_boxes;
    object_boxes.reserve(objects.size());
    for (const uint32_t id : objects) object_boxes.push_back(boxes[id]);

    // Leaves.
    const StrPartitioning leaves = StrPartition(object_boxes, leaf_capacity);
    std::vector<uint32_t> level_nodes;
    for (size_t bkt = 0; bkt < leaves.NumBuckets(); ++bkt) {
      const uint32_t id = static_cast<uint32_t>(tmp.size());
      tmp.emplace_back();
      TmpNode& leaf = tmp.back();
      leaf.level = 0;
      for (const uint32_t local : leaves.Bucket(bkt)) {
        leaf.items.push_back(objects[local]);
        leaf.mbr.ExpandToContain(boxes[objects[local]]);
      }
      level_nodes.push_back(id);
    }

    // Pack upper levels until they fit under the slot.
    uint8_t level = 1;
    while (level_nodes.size() > fanout) {
      std::vector<Box> level_mbrs;
      level_mbrs.reserve(level_nodes.size());
      for (const uint32_t id : level_nodes) level_mbrs.push_back(tmp[id].mbr);
      const StrPartitioning packed = StrPartition(level_mbrs, fanout);
      std::vector<uint32_t> next;
      for (size_t bkt = 0; bkt < packed.NumBuckets(); ++bkt) {
        const uint32_t id = static_cast<uint32_t>(tmp.size());
        tmp.emplace_back();
        TmpNode& parent = tmp.back();
        parent.level = level;
        for (const uint32_t local : packed.Bucket(bkt)) {
          parent.children.push_back(level_nodes[local]);
          parent.mbr.ExpandToContain(tmp[level_nodes[local]].mbr);
        }
        next.push_back(id);
      }
      level_nodes = std::move(next);
      ++level;
    }

    TmpNode& slot_node = tmp[slots[s]];  // re-fetch: tmp may have grown
    slot_node.mbr = Box::Empty();
    if (level_nodes.size() == 1 && tmp[level_nodes[0]].items.empty() == false) {
      // A single leaf: make the slot itself that leaf to avoid a one-child
      // chain.
      slot_node.level = 0;
      slot_node.items = std::move(tmp[level_nodes[0]].items);
      slot_node.mbr = tmp[level_nodes[0]].mbr;
      tmp[level_nodes[0]].items.clear();
    } else {
      slot_node.children = std::move(level_nodes);
      uint8_t max_child_level = 0;
      for (const uint32_t child : slot_node.children) {
        slot_node.mbr.ExpandToContain(tmp[child].mbr);
        max_child_level = std::max(max_child_level, tmp[child].level);
      }
      slot_node.level = static_cast<uint8_t>(max_child_level + 1);
    }
  }

  // Recompute seed-node MBRs and levels bottom-up (slot MBRs now reflect the
  // grown content, not the seed's dataset-A extents).
  const auto finalize = [&](auto&& self, uint32_t id) -> void {
    TmpNode& node = tmp[id];
    if (node.is_slot || node.children.empty()) return;
    node.mbr = Box::Empty();
    uint8_t max_child_level = 0;
    for (const uint32_t child : node.children) {
      self(self, child);
      node.mbr.ExpandToContain(tmp[child].mbr);
      max_child_level = std::max(max_child_level, tmp[child].level);
    }
    node.level = static_cast<uint8_t>(max_child_level + 1);
  };
  finalize(finalize, tmp_root);

  // Flatten into the arena (preorder; children ranges are contiguous).
  nodes_.reserve(tmp.size());
  std::vector<uint32_t> arena_id(tmp.size(), 0);
  const auto flatten = [&](auto&& self, uint32_t id) -> uint32_t {
    const TmpNode& node = tmp[id];
    const uint32_t out_id = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[out_id].mbr = node.mbr;
    nodes_[out_id].level = node.level;
    if (node.children.empty()) {
      nodes_[out_id].begin = static_cast<uint32_t>(item_ids_.size());
      nodes_[out_id].count = static_cast<uint32_t>(node.items.size());
      item_ids_.insert(item_ids_.end(), node.items.begin(), node.items.end());
      return out_id;
    }
    // Reserve the contiguous child-id range up front, fill after recursion.
    const uint32_t child_begin = static_cast<uint32_t>(child_ids_.size());
    nodes_[out_id].begin = child_begin;
    nodes_[out_id].count = static_cast<uint32_t>(node.children.size());
    child_ids_.resize(child_ids_.size() + node.children.size());
    for (size_t i = 0; i < node.children.size(); ++i) {
      child_ids_[child_begin + i] = self(self, node.children[i]);
    }
    return out_id;
  };
  root_ = flatten(flatten, tmp_root);
  height_ = nodes_[root_].level + 1;
}

size_t SeededTree::MemoryUsageBytes() const {
  return VectorBytes(nodes_) + VectorBytes(child_ids_) + VectorBytes(item_ids_);
}

JoinStats SeededTreeJoin::Join(std::span<const Box> a, std::span<const Box> b,
                               ResultCollector& out) {
  JoinStats stats;
  Timer total;
  if (a.empty() || b.empty()) {
    stats.total_seconds = total.Seconds();
    return stats;
  }

  Timer phase;
  const RTree tree_a(a, options_.leaf_capacity, options_.fanout);
  const SeededTree tree_b(tree_a, options_.seed_levels, b,
                          options_.leaf_capacity, options_.fanout);
  stats.build_seconds = phase.Seconds();
  stats.memory_bytes = tree_a.MemoryUsageBytes() + tree_b.MemoryUsageBytes();

  phase.Reset();
  ++stats.node_comparisons;
  if (Intersects(tree_a.nodes()[tree_a.root()].mbr,
                 tree_b.nodes()[tree_b.root()].mbr)) {
    SyncTraverse(a, b, tree_a, tree_b, tree_a.root(), tree_b.root(),
                 options_.local_join, &stats,
                 [&](uint32_t a_id, uint32_t b_id) {
                   ++stats.results;
                   out.Emit(a_id, b_id);
                 });
  }
  stats.join_seconds = phase.Seconds();
  stats.total_seconds = total.Seconds();
  return stats;
}

}  // namespace touch
