#include "join/algorithm.h"

#include "util/memory.h"
#include "util/timer.h"

namespace touch {

JoinStats DistanceJoin(SpatialJoinAlgorithm& algorithm, std::span<const Box> a,
                       std::span<const Box> b, float epsilon,
                       ResultCollector& out) {
  Timer timer;
  std::vector<Box> enlarged;
  enlarged.reserve(a.size());
  for (const Box& box : a) enlarged.push_back(box.Enlarged(epsilon));
  const double enlarge_seconds = timer.Seconds();

  // The enlarged copy is input preparation, shared by all algorithms; it is
  // charged to total time but not to the algorithm's memory footprint.
  JoinStats stats = algorithm.Join(enlarged, b, out);
  stats.total_seconds += enlarge_seconds;
  return stats;
}

}  // namespace touch
