#include "join/indexed_nested_loop.h"

#include "core/overlap_kernel.h"
#include "index/rtree.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace touch {

JoinStats IndexedNestedLoopJoin::Join(std::span<const Box> a,
                                      std::span<const Box> b,
                                      ResultCollector& out) {
  JoinStats stats;
  Timer total;
  if (a.empty() || b.empty()) {
    stats.total_seconds = total.Seconds();
    return stats;
  }

  Timer phase;
  const RTree tree(a, options_.leaf_capacity, options_.fanout,
                   options_.bulkload);
  // Restructure the tree's items and child MBRs into SoA probe slabs once,
  // so every probe runs the batched overlap kernel instead of per-box
  // scalar tests. Gathering is index-side work, hence build time; the slab
  // bytes are probe scratch and stay out of memory_bytes, the paper's
  // index-footprint metric (same treatment as the sweep's sorted copies).
  RTreeProbeSlabs slabs;
  slabs.Build(tree, a);
  stats.build_seconds = phase.Seconds();
  stats.memory_bytes = tree.MemoryUsageBytes();

  phase.Reset();
  // Ambient kernel span (no-op outside a traced engine request).
  SpanScope probe_span("inl-probe");
  BatchedTreeProbe(tree, slabs, b, /*probe_epsilon=*/0.0f,
                   /*swap_emit=*/false, &stats, out);
  probe_span.End();
  stats.join_seconds = phase.Seconds();
  stats.total_seconds = total.Seconds();
  return stats;
}

}  // namespace touch
