#include "join/indexed_nested_loop.h"

#include "index/rtree.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace touch {

JoinStats IndexedNestedLoopJoin::Join(std::span<const Box> a,
                                      std::span<const Box> b,
                                      ResultCollector& out) {
  JoinStats stats;
  Timer total;
  if (a.empty() || b.empty()) {
    stats.total_seconds = total.Seconds();
    return stats;
  }

  Timer phase;
  const RTree tree(a, options_.leaf_capacity, options_.fanout,
                   options_.bulkload);
  stats.build_seconds = phase.Seconds();
  stats.memory_bytes = tree.MemoryUsageBytes();

  phase.Reset();
  // Ambient kernel span (no-op outside a traced engine request).
  SpanScope probe_span("inl-probe");
  for (uint32_t b_id = 0; b_id < b.size(); ++b_id) {
    tree.Query(
        a, b[b_id],
        [&](uint32_t a_id) {
          ++stats.results;
          out.Emit(a_id, b_id);
        },
        &stats);
  }
  probe_span.End();
  stats.join_seconds = phase.Seconds();
  stats.total_seconds = total.Seconds();
  return stats;
}

}  // namespace touch
