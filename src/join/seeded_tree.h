#ifndef TOUCH_JOIN_SEEDED_TREE_H_
#define TOUCH_JOIN_SEEDED_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "index/rtree.h"
#include "join/algorithm.h"
#include "join/local_join.h"

namespace touch {

/// R-tree grown over dataset B under a "seed" copied from the index on
/// dataset A (Lo & Ravishankar, SIGMOD'94; paper section 2.2.2).
///
/// The top `seed_levels` levels of the existing index IA are copied verbatim;
/// every object of B then descends the seed by least volume enlargement to a
/// slot (a copied bottom-level seed node) and each slot's objects are
/// bulk-packed into an STR subtree beneath it. Because the seed mirrors IA's
/// upper structure, the bounding boxes of the grown tree align with IA's,
/// which reduces the node pairs the synchronous-traversal join must visit.
///
/// Exposes the same flat-arena interface as `RTree` so `SyncTraverse` works
/// on (RTree, SeededTree) pairs.
class SeededTree {
 public:
  struct Node {
    Box mbr;
    uint32_t begin = 0;
    uint32_t count = 0;
    uint8_t level = 0;

    bool IsLeaf() const { return level == 0; }
  };

  /// `seed` is the index on dataset A; `boxes` is dataset B. `seed_levels`
  /// >= 1 top levels of the seed are copied (clamped to the seed's height).
  SeededTree(const RTree& seed, int seed_levels, std::span<const Box> boxes,
             size_t leaf_capacity, size_t fanout);

  size_t size() const { return item_ids_.size(); }
  bool empty() const { return item_ids_.empty(); }
  uint32_t root() const { return root_; }
  std::span<const Node> nodes() const { return nodes_; }
  std::span<const uint32_t> child_ids() const { return child_ids_; }
  std::span<const uint32_t> item_ids() const { return item_ids_; }
  int height() const { return height_; }
  /// Number of slots the seed offered (bottom-level copied nodes).
  size_t slot_count() const { return slot_count_; }

  size_t MemoryUsageBytes() const;

 private:
  std::vector<Node> nodes_;
  std::vector<uint32_t> child_ids_;
  std::vector<uint32_t> item_ids_;
  uint32_t root_ = 0;
  int height_ = 0;
  size_t slot_count_ = 0;
};

/// Configuration of the seeded tree join.
struct SeededTreeOptions {
  size_t fanout = 2;
  size_t leaf_capacity = 64;
  /// Levels copied from the index on A (>= 1). More levels align the grown
  /// tree more tightly with IA but create more (possibly empty) slots.
  int seed_levels = 4;
  LocalJoinStrategy local_join = LocalJoinStrategy::kPlaneSweep;
};

/// Seeded tree join (paper section 2.2.2): bulk-loads IA on dataset A, grows
/// IB on dataset B from IA's seed, then joins both with the synchronous
/// traversal.
class SeededTreeJoin : public SpatialJoinAlgorithm {
 public:
  explicit SeededTreeJoin(const SeededTreeOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "seeded"; }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;

  const SeededTreeOptions& options() const { return options_; }

 private:
  SeededTreeOptions options_;
};

}  // namespace touch

#endif  // TOUCH_JOIN_SEEDED_TREE_H_
