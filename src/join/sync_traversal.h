#ifndef TOUCH_JOIN_SYNC_TRAVERSAL_H_
#define TOUCH_JOIN_SYNC_TRAVERSAL_H_

#include <cstdint>
#include <span>

#include "geom/box.h"
#include "join/local_join.h"
#include "util/stats.h"

namespace touch {

/// Synchronous traversal of two bounding-box hierarchies (Brinkhoff et al.,
/// SIGMOD'93): starting from a node pair, descend only into child pairs with
/// intersecting MBRs; intersecting leaf pairs are joined with the chosen
/// local join. The deeper side descends first so both sides reach their
/// leaves together.
///
/// Works over any tree exposing the flat-arena interface of `RTree`
/// (nodes(), child_ids(), item_ids(), and Node{mbr, begin, count, level,
/// IsLeaf()}), which lets the R-tree baseline and the seeded-tree join share
/// the traversal. Callers test the roots' MBR intersection themselves.
template <typename TreeA, typename TreeB, typename EmitPair>
void SyncTraverse(std::span<const Box> a, std::span<const Box> b,
                  const TreeA& tree_a, const TreeB& tree_b, uint32_t node_a,
                  uint32_t node_b, LocalJoinStrategy local_join,
                  JoinStats* stats, EmitPair&& emit) {
  const auto& na = tree_a.nodes()[node_a];
  const auto& nb = tree_b.nodes()[node_b];

  if (na.IsLeaf() && nb.IsLeaf()) {
    const auto ids_a = tree_a.item_ids().subspan(na.begin, na.count);
    const auto ids_b = tree_b.item_ids().subspan(nb.begin, nb.count);
    if (local_join == LocalJoinStrategy::kNestedLoop) {
      LocalNestedLoop(a, ids_a, b, ids_b, stats, emit);
    } else {
      LocalPlaneSweep(a, ids_a, b, ids_b, stats, emit);
    }
    return;
  }

  if (!na.IsLeaf() && (nb.IsLeaf() || na.level >= nb.level)) {
    for (uint32_t i = na.begin; i < na.begin + na.count; ++i) {
      const uint32_t child = tree_a.child_ids()[i];
      ++stats->node_comparisons;
      if (Intersects(tree_a.nodes()[child].mbr, nb.mbr)) {
        SyncTraverse(a, b, tree_a, tree_b, child, node_b, local_join, stats,
                     emit);
      }
    }
  } else {
    for (uint32_t i = nb.begin; i < nb.begin + nb.count; ++i) {
      const uint32_t child = tree_b.child_ids()[i];
      ++stats->node_comparisons;
      if (Intersects(na.mbr, tree_b.nodes()[child].mbr)) {
        SyncTraverse(a, b, tree_a, tree_b, node_a, child, local_join, stats,
                     emit);
      }
    }
  }
}

}  // namespace touch

#endif  // TOUCH_JOIN_SYNC_TRAVERSAL_H_
