#ifndef TOUCH_JOIN_PBSM_H_
#define TOUCH_JOIN_PBSM_H_

#include "join/algorithm.h"
#include "join/local_join.h"

namespace touch {

/// Configuration of the PBSM join. The paper evaluates two settings:
/// resolution 500 (fast, huge footprint) and resolution 100 (slower, smaller
/// footprint).
struct PbsmOptions {
  /// Grid cells per dimension over the joint MBR of both inputs.
  int resolution = 500;
  /// Local join used inside each cell (paper: plane sweep).
  LocalJoinStrategy local_join = LocalJoinStrategy::kPlaneSweep;
};

/// Partition Based Spatial-Merge join (Patel & DeWitt, SIGMOD'96; paper
/// section 2.2.3), run fully in memory.
///
/// PBSM lays a uniform grid over the space and assigns every object to every
/// cell it overlaps (*multiple assignment*, i.e. replication) so the join is
/// purely cell-local. Replication is what gives PBSM its two-orders-of-
/// magnitude memory footprint in the paper's measurements, and would yield
/// duplicate results; following the paper's implementation note we
/// deduplicate *during* the join with the reference-point method (Dittrich &
/// Seeger, ICDE 2000): a pair is reported only by the cell containing the
/// min-corner of the pair's intersection region, so no result memory or
/// post-pass is needed.
///
/// Only occupied cells are materialized (hash map keyed by packed cell
/// coordinates), so resolution 500 in 3D does not allocate 500^3 cells.
class PbsmJoin : public SpatialJoinAlgorithm {
 public:
  explicit PbsmJoin(const PbsmOptions& options = {}) : options_(options) {}

  std::string_view name() const override { return "pbsm"; }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;

  const PbsmOptions& options() const { return options_; }

 private:
  PbsmOptions options_;
};

}  // namespace touch

#endif  // TOUCH_JOIN_PBSM_H_
