#ifndef TOUCH_JOIN_PBSM_H_
#define TOUCH_JOIN_PBSM_H_

#include <vector>

#include "geom/grid.h"
#include "join/algorithm.h"
#include "join/local_join.h"
#include "util/cancellation.h"

namespace touch {

/// Configuration of the PBSM join. The paper evaluates two settings:
/// resolution 500 (fast, huge footprint) and resolution 100 (slower, smaller
/// footprint).
struct PbsmOptions {
  /// Grid cells per dimension over the joint MBR of both inputs.
  int resolution = 500;
  /// Local join used inside each cell (paper: plane sweep).
  LocalJoinStrategy local_join = LocalJoinStrategy::kPlaneSweep;
};

/// One replicated placement: object `id` assigned to the cell with dense
/// row-major index `key` (x-major, z fastest — see BuildPbsmPlacements).
struct PbsmPlacement {
  uint64_t key;
  uint32_t id;
};

/// PBSM's partitioning phase for one dataset: multiple assignment of every
/// object to every grid cell it overlaps, returned sorted by cell key — the
/// in-memory analogue of PBSM's partition files, and the "cell directory"
/// the engine caches per (dataset, epsilon, grid). The placement list IS the
/// replication cost the paper charges PBSM for. `scratch_bytes`, when given,
/// receives the radix sort's peak scratch footprint so memory accounting can
/// cover the true peak.
std::vector<PbsmPlacement> BuildPbsmPlacements(std::span<const Box> boxes,
                                               const GridMapper& grid,
                                               size_t* scratch_bytes = nullptr);

/// PBSM's join phase: merges two key-sorted placement lists (both built over
/// the SAME grid), running a local join in every cell occupied by both sides
/// and deduplicating replicated pairs with the reference-point method. Fills
/// stats->results/comparisons and emits into `out`; phase timings and memory
/// are the caller's job. `cancel` is polled once per joined cell: when it
/// fires the merge returns early with whatever it had emitted so far (the
/// engine flags such runs Cancelled).
void PbsmMergeJoin(std::span<const Box> a,
                   std::span<const PbsmPlacement> placements_a,
                   std::span<const Box> b,
                   std::span<const PbsmPlacement> placements_b,
                   const GridMapper& grid, LocalJoinStrategy local_join,
                   JoinStats* stats, ResultCollector& out,
                   CancellationToken cancel = {});

/// Partition Based Spatial-Merge join (Patel & DeWitt, SIGMOD'96; paper
/// section 2.2.3), run fully in memory.
///
/// PBSM lays a uniform grid over the space and assigns every object to every
/// cell it overlaps (*multiple assignment*, i.e. replication) so the join is
/// purely cell-local. Replication is what gives PBSM its two-orders-of-
/// magnitude memory footprint in the paper's measurements, and would yield
/// duplicate results; following the paper's implementation note we
/// deduplicate *during* the join with the reference-point method (Dittrich &
/// Seeger, ICDE 2000): a pair is reported only by the cell containing the
/// min-corner of the pair's intersection region, so no result memory or
/// post-pass is needed.
///
/// Only occupied cells are materialized (the sorted placement lists), so
/// resolution 500 in 3D does not allocate 500^3 cells. Join() composes the
/// two phases above; the engine calls them separately to reuse cached
/// per-dataset placement lists.
class PbsmJoin : public SpatialJoinAlgorithm {
 public:
  explicit PbsmJoin(const PbsmOptions& options = {}) : options_(options) {}

  std::string_view name() const override { return "pbsm"; }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;

  const PbsmOptions& options() const { return options_; }

 private:
  PbsmOptions options_;
};

}  // namespace touch

#endif  // TOUCH_JOIN_PBSM_H_
