#include "join/insertion_rtree_join.h"

#include "index/rtree.h"
#include "join/sync_traversal.h"
#include "util/timer.h"

namespace touch {
namespace {

RTree BuildByInsertion(std::span<const Box> boxes,
                       const InsertionRTreeJoinOptions& options) {
  DynamicRTree::Options tree_options;
  tree_options.variant = options.variant;
  tree_options.max_entries = options.max_entries;
  tree_options.min_entries = options.min_entries;
  DynamicRTree tree(tree_options);
  for (uint32_t i = 0; i < boxes.size(); ++i) tree.Insert(i, boxes[i]);
  // Flatten for the traversal: the arena layout joins faster and the
  // construction cost being measured is the insertions above.
  return RTree::FromDynamic(tree);
}

}  // namespace

JoinStats InsertionRTreeJoin::Join(std::span<const Box> a,
                                   std::span<const Box> b,
                                   ResultCollector& out) {
  JoinStats stats;
  Timer total;
  if (a.empty() || b.empty()) {
    stats.total_seconds = total.Seconds();
    return stats;
  }

  Timer phase;
  const RTree tree_a = BuildByInsertion(a, options_);
  const RTree tree_b = BuildByInsertion(b, options_);
  stats.build_seconds = phase.Seconds();
  stats.memory_bytes = tree_a.MemoryUsageBytes() + tree_b.MemoryUsageBytes();

  phase.Reset();
  ++stats.node_comparisons;
  if (Intersects(tree_a.nodes()[tree_a.root()].mbr,
                 tree_b.nodes()[tree_b.root()].mbr)) {
    SyncTraverse(a, b, tree_a, tree_b, tree_a.root(), tree_b.root(),
                 options_.local_join, &stats,
                 [&](uint32_t a_id, uint32_t b_id) {
                   ++stats.results;
                   out.Emit(a_id, b_id);
                 });
  }
  stats.join_seconds = phase.Seconds();
  stats.total_seconds = total.Seconds();
  return stats;
}

}  // namespace touch
