#include "join/local_join.h"

#include <algorithm>

namespace touch {

const char* LocalJoinStrategyName(LocalJoinStrategy strategy) {
  switch (strategy) {
    case LocalJoinStrategy::kNestedLoop:
      return "nested-loop";
    case LocalJoinStrategy::kPlaneSweep:
      return "plane-sweep";
    case LocalJoinStrategy::kGrid:
      return "grid";
  }
  return "unknown";
}

void SortByXLow(std::span<const Box> boxes, std::vector<uint32_t>& ids) {
  std::sort(ids.begin(), ids.end(), [boxes](uint32_t a, uint32_t b) {
    if (boxes[a].lo.x != boxes[b].lo.x) return boxes[a].lo.x < boxes[b].lo.x;
    return a < b;
  });
}

}  // namespace touch
