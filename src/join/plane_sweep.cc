#include "join/plane_sweep.h"

#include <numeric>

#include "join/local_join.h"
#include "util/memory.h"
#include "util/timer.h"

namespace touch {

JoinStats PlaneSweepJoin::Join(std::span<const Box> a, std::span<const Box> b,
                               ResultCollector& out) {
  JoinStats stats;
  Timer total;

  Timer phase;
  std::vector<uint32_t> sorted_a(a.size());
  std::vector<uint32_t> sorted_b(b.size());
  std::iota(sorted_a.begin(), sorted_a.end(), 0);
  std::iota(sorted_b.begin(), sorted_b.end(), 0);
  SortByXLow(a, sorted_a);
  SortByXLow(b, sorted_b);
  stats.build_seconds = phase.Seconds();

  phase.Reset();
  LocalPlaneSweepSorted(a, sorted_a, b, sorted_b, &stats,
                        [&](uint32_t a_id, uint32_t b_id) {
                          ++stats.results;
                          out.Emit(a_id, b_id);
                        });
  stats.join_seconds = phase.Seconds();

  stats.memory_bytes = VectorBytes(sorted_a) + VectorBytes(sorted_b);
  stats.total_seconds = total.Seconds();
  return stats;
}

}  // namespace touch
