#include "join/rplus_join.h"

#include "geom/grid.h"
#include "util/timer.h"

namespace touch {
namespace {

void JoinNodes(std::span<const Box> a, std::span<const Box> b,
               const RPlusTree& tree_a, const RPlusTree& tree_b,
               uint32_t node_a, uint32_t node_b, JoinStats* stats,
               ResultCollector& out) {
  const RPlusTree::Node& na = tree_a.nodes()[node_a];
  const RPlusTree::Node& nb = tree_b.nodes()[node_b];

  if (na.IsLeaf() && nb.IsLeaf()) {
    const auto ids_a = tree_a.item_ids().subspan(na.begin, na.count);
    const auto ids_b = tree_b.item_ids().subspan(nb.begin, nb.count);
    for (const uint32_t a_id : ids_a) {
      const Box& box_a = a[a_id];
      for (const uint32_t b_id : ids_b) {
        ++stats->comparisons;
        const Box& box_b = b[b_id];
        if (!Intersects(box_a, box_b)) continue;
        // Both objects are duplicated across leaves; only the leaf pair
        // whose regions own the reference point reports.
        const Vec3 ref = ReferencePoint(box_a, box_b);
        if (RegionOwnsPoint(na.region, ref, tree_a.domain()) &&
            RegionOwnsPoint(nb.region, ref, tree_b.domain())) {
          ++stats->results;
          out.Emit(a_id, b_id);
        }
      }
    }
    return;
  }

  if (!na.IsLeaf() && (nb.IsLeaf() || na.level >= nb.level)) {
    for (uint32_t i = na.begin; i < na.begin + na.count; ++i) {
      const uint32_t child = tree_a.child_ids()[i];
      ++stats->node_comparisons;
      if (Intersects(tree_a.nodes()[child].mbr, nb.mbr)) {
        JoinNodes(a, b, tree_a, tree_b, child, node_b, stats, out);
      }
    }
  } else {
    for (uint32_t i = nb.begin; i < nb.begin + nb.count; ++i) {
      const uint32_t child = tree_b.child_ids()[i];
      ++stats->node_comparisons;
      if (Intersects(na.mbr, tree_b.nodes()[child].mbr)) {
        JoinNodes(a, b, tree_a, tree_b, node_a, child, stats, out);
      }
    }
  }
}

}  // namespace

JoinStats RPlusJoin::Join(std::span<const Box> a, std::span<const Box> b,
                          ResultCollector& out) {
  JoinStats stats;
  Timer total;
  if (a.empty() || b.empty()) {
    stats.total_seconds = total.Seconds();
    return stats;
  }

  Timer phase;
  const RPlusTree tree_a(a, options_.leaf_capacity);
  const RPlusTree tree_b(b, options_.leaf_capacity);
  stats.build_seconds = phase.Seconds();
  stats.memory_bytes = tree_a.MemoryUsageBytes() + tree_b.MemoryUsageBytes();

  phase.Reset();
  ++stats.node_comparisons;
  if (Intersects(tree_a.nodes()[tree_a.root()].mbr,
                 tree_b.nodes()[tree_b.root()].mbr)) {
    JoinNodes(a, b, tree_a, tree_b, tree_a.root(), tree_b.root(), &stats,
              out);
  }
  stats.join_seconds = phase.Seconds();
  stats.total_seconds = total.Seconds();
  return stats;
}

}  // namespace touch
