#include "join/s3.h"

#include <algorithm>
#include <unordered_map>

#include "geom/grid.h"
#include "util/memory.h"
#include "util/timer.h"

namespace touch {
namespace {

// One hierarchy level: occupied cells -> resident object ids.
using LevelMap = std::unordered_map<uint64_t, std::vector<uint32_t>>;

struct Hierarchy {
  std::vector<LevelMap> levels;  // index 0 = coarsest (single cell)
};

// Integer power; levels/fanout are small so overflow is not a concern here.
int64_t IntPow(int64_t base, int exp) {
  int64_t result = 1;
  while (exp-- > 0) result *= base;
  return result;
}

// Assigns every object of `boxes` to the lowest (finest) level where it
// overlaps exactly one cell. Cell coordinates at coarser levels are derived
// from the finest-level coordinates with integer division by fanout^k, so
// cross-level alignment is exact (no float inconsistencies between levels).
void AssignHierarchy(std::span<const Box> boxes, const GridMapper& finest,
                     int levels, int fanout, Hierarchy* h) {
  h->levels.assign(levels, LevelMap());
  for (uint32_t id = 0; id < boxes.size(); ++id) {
    const CellRange range = finest.RangeOf(boxes[id]);
    // Number of coarsening steps until the range collapses to one cell.
    int ups = 0;
    int64_t divisor = 1;
    while (ups < levels - 1 &&
           (range.lo.x / divisor != range.hi.x / divisor ||
            range.lo.y / divisor != range.hi.y / divisor ||
            range.lo.z / divisor != range.hi.z / divisor)) {
      ++ups;
      divisor *= fanout;
    }
    const int level = levels - 1 - ups;
    const CellCoord coord{static_cast<int>(range.lo.x / divisor),
                          static_cast<int>(range.lo.y / divisor),
                          static_cast<int>(range.lo.z / divisor)};
    h->levels[level][GridMapper::PackKey(coord)].push_back(id);
  }
}

size_t HierarchyBytes(const Hierarchy& h) {
  size_t bytes = 0;
  constexpr size_t kNodeOverhead = sizeof(uint64_t) + 2 * sizeof(void*);
  for (const LevelMap& level : h.levels) {
    bytes += level.bucket_count() * sizeof(void*);
    for (const auto& [key, ids] : level) {
      bytes += kNodeOverhead + sizeof(std::vector<uint32_t>) + VectorBytes(ids);
    }
  }
  return bytes;
}

}  // namespace

JoinStats S3Join::Join(std::span<const Box> a, std::span<const Box> b,
                       ResultCollector& out) {
  JoinStats stats;
  Timer total;
  if (a.empty() || b.empty()) {
    stats.total_seconds = total.Seconds();
    return stats;
  }
  const int levels = std::max(1, options_.levels);
  const int fanout = std::max(2, options_.fanout);

  // Both hierarchies share one domain (the joint MBR) so their grids align.
  Timer phase;
  Box domain = Box::Empty();
  for (const Box& box : a) domain.ExpandToContain(box);
  for (const Box& box : b) domain.ExpandToContain(box);
  const int finest_res = static_cast<int>(IntPow(fanout, levels - 1));
  const GridMapper finest(domain, finest_res);

  Hierarchy ha;
  Hierarchy hb;
  AssignHierarchy(a, finest, levels, fanout, &ha);
  AssignHierarchy(b, finest, levels, fanout, &hb);
  // Sort every cell's list by x-lower-bound once, so that each of the up to
  // levels^2 joins a cell participates in can plane-sweep directly instead
  // of re-sorting the list every time.
  if (options_.local_join != LocalJoinStrategy::kNestedLoop) {
    for (Hierarchy* h : {&ha, &hb}) {
      std::span<const Box> boxes = (h == &ha) ? a : b;
      for (LevelMap& level : h->levels) {
        for (auto& [key, ids] : level) SortByXLow(boxes, ids);
      }
    }
  }
  stats.build_seconds = phase.Seconds();
  stats.memory_bytes = HierarchyBytes(ha) + HierarchyBytes(hb);

  // Join every aligned (A-cell, B-cell) pair across all level combinations:
  // the finer cell looks up its enclosing cell on the coarser level.
  phase.Reset();
  auto emit = [&](uint32_t a_id, uint32_t b_id) {
    ++stats.results;
    out.Emit(a_id, b_id);
  };
  auto local_join = [&](const std::vector<uint32_t>& a_ids,
                        const std::vector<uint32_t>& b_ids) {
    switch (options_.local_join) {
      case LocalJoinStrategy::kPlaneSweep:
      case LocalJoinStrategy::kGrid:
        // Cell lists were sorted by x right after assignment.
        LocalPlaneSweepSorted(a, a_ids, b, b_ids, &stats, emit);
        break;
      case LocalJoinStrategy::kNestedLoop:
        LocalNestedLoop(a, a_ids, b, b_ids, &stats, emit);
        break;
    }
  };

  for (int la = 0; la < levels; ++la) {
    const LevelMap& a_level = ha.levels[la];
    if (a_level.empty()) continue;
    for (int lb = 0; lb < levels; ++lb) {
      const LevelMap& b_level = hb.levels[lb];
      if (b_level.empty()) continue;
      if (la >= lb) {
        // A side is finer or equal: A cell -> enclosing B cell.
        const int64_t divisor = IntPow(fanout, la - lb);
        for (const auto& [key, a_ids] : a_level) {
          const CellCoord c = GridMapper::UnpackKey(key);
          const CellCoord up{static_cast<int>(c.x / divisor),
                             static_cast<int>(c.y / divisor),
                             static_cast<int>(c.z / divisor)};
          auto it = b_level.find(GridMapper::PackKey(up));
          if (it != b_level.end()) local_join(a_ids, it->second);
        }
      } else {
        // B side is strictly finer: B cell -> enclosing A cell.
        const int64_t divisor = IntPow(fanout, lb - la);
        for (const auto& [key, b_ids] : b_level) {
          const CellCoord c = GridMapper::UnpackKey(key);
          const CellCoord up{static_cast<int>(c.x / divisor),
                             static_cast<int>(c.y / divisor),
                             static_cast<int>(c.z / divisor)};
          auto it = a_level.find(GridMapper::PackKey(up));
          if (it != a_level.end()) local_join(it->second, b_ids);
        }
      }
    }
  }
  stats.join_seconds = phase.Seconds();
  stats.total_seconds = total.Seconds();
  return stats;
}

}  // namespace touch
