#ifndef TOUCH_JOIN_SSSJ_H_
#define TOUCH_JOIN_SSSJ_H_

#include "join/algorithm.h"
#include "join/local_join.h"

namespace touch {

/// Configuration of the SSSJ join.
struct SssjOptions {
  /// Number of equi-width strips the space is cut into (along z, so the
  /// in-strip plane sweep can keep sweeping on x).
  int strips = 64;
};

/// Scalable Sweeping-Based Spatial Join (Arge et al., VLDB'98; paper section
/// 2.2.3). The paper describes it among the multiple-matching approaches but
/// does not evaluate it; we implement it as an additional baseline.
///
/// Space is cut into equi-width strips. An object is *not* replicated:
/// conceptually it belongs to the interval of strips [s, e] it spans. A pair
/// (a, b) is joined exactly once, in strip max(s_a, s_b) — the first strip
/// where both are present — by sweeping the strip's resident objects on x.
/// The implementation keeps incremental active lists per dataset (add at s,
/// drop after e) and joins each strip's newly-starting objects against the
/// other dataset's active set.
class SssjJoin : public SpatialJoinAlgorithm {
 public:
  explicit SssjJoin(const SssjOptions& options = {}) : options_(options) {}

  std::string_view name() const override { return "sssj"; }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;

  const SssjOptions& options() const { return options_; }

 private:
  SssjOptions options_;
};

}  // namespace touch

#endif  // TOUCH_JOIN_SSSJ_H_
