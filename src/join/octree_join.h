#ifndef TOUCH_JOIN_OCTREE_JOIN_H_
#define TOUCH_JOIN_OCTREE_JOIN_H_

#include <cstdint>
#include <vector>

#include "join/algorithm.h"

namespace touch {

/// Configuration of the octree join.
struct OctreeJoinOptions {
  /// An octant stops splitting once it holds at most this many objects
  /// (A and B combined).
  size_t leaf_capacity = 64;
  /// Hard depth cap; at 1000 space units an octant at depth 10 is under one
  /// unit across, i.e. object-sized.
  int max_depth = 10;
};

/// Double-index octree traversal join (the 3D analogue of the quadtree join
/// of Aref & Samet; paper section 2.2.1).
///
/// Space is decomposed into octants recursively wherever the combined
/// occupancy exceeds the leaf capacity; objects of both datasets are
/// *duplicated* into every octant they overlap ("similar to the R+-Tree
/// objects are duplicated"). Subtrees that lost one side entirely are pruned
/// — an octant with no A objects cannot produce results, so its B objects
/// are dropped. Each leaf joins its A-list against its B-list; because
/// duplication makes a pair co-occur in several leaves, a result is emitted
/// only in the single leaf that owns the pair's reference point (the minimum
/// corner of the two boxes' intersection), which filters the duplicates the
/// paper says this family of joins must deal with.
class OctreeJoin : public SpatialJoinAlgorithm {
 public:
  explicit OctreeJoin(const OctreeJoinOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "octree"; }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;

  const OctreeJoinOptions& options() const { return options_; }

 private:
  OctreeJoinOptions options_;
};

}  // namespace touch

#endif  // TOUCH_JOIN_OCTREE_JOIN_H_
