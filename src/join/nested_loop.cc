#include "join/nested_loop.h"

#include "util/timer.h"

namespace touch {

JoinStats NestedLoopJoin::Join(std::span<const Box> a, std::span<const Box> b,
                               ResultCollector& out) {
  JoinStats stats;
  Timer timer;
  for (uint32_t i = 0; i < a.size(); ++i) {
    const Box& box_a = a[i];
    for (uint32_t j = 0; j < b.size(); ++j) {
      ++stats.comparisons;
      if (Intersects(box_a, b[j])) {
        ++stats.results;
        out.Emit(i, j);
      }
    }
  }
  stats.join_seconds = timer.Seconds();
  stats.total_seconds = stats.join_seconds;
  return stats;
}

}  // namespace touch
