#include "join/octree_join.h"

#include <algorithm>

#include "util/memory.h"
#include "util/timer.h"

namespace touch {
namespace {

/// One octant under construction. Item lists are only materialized in
/// leaves; inner octants hand their lists to their children and drop them.
struct BuildState {
  std::span<const Box> a;
  std::span<const Box> b;
  const OctreeJoinOptions* options;
  Box root_cube;
  JoinStats* stats;
  ResultCollector* out;
  /// Peak number of live duplicated id-list entries, for memory accounting.
  size_t live_entries = 0;
  size_t peak_entries = 0;
};

/// Reference point of a result pair: the minimum corner of the boxes'
/// intersection (both boxes contain it, so every leaf overlapping it holds
/// both objects).
Vec3 ReferencePoint(const Box& box_a, const Box& box_b) {
  return Vec3(std::max(box_a.lo.x, box_b.lo.x),
              std::max(box_a.lo.y, box_b.lo.y),
              std::max(box_a.lo.z, box_b.lo.z));
}

/// Half-open containment `lo <= p < hi`, closed on faces that lie on the
/// root cube's upper boundary so boundary points belong to exactly one leaf.
bool OwnsPoint(const Box& cube, const Vec3& p, const Box& root) {
  const auto axis_ok = [](float lo, float hi, float v, float root_hi) {
    return v >= lo && (v < hi || (hi == root_hi && v <= hi));
  };
  return axis_ok(cube.lo.x, cube.hi.x, p.x, root.hi.x) &&
         axis_ok(cube.lo.y, cube.hi.y, p.y, root.hi.y) &&
         axis_ok(cube.lo.z, cube.hi.z, p.z, root.hi.z);
}

void JoinLeaf(BuildState& state, const Box& cube,
              const std::vector<uint32_t>& a_ids,
              const std::vector<uint32_t>& b_ids) {
  for (const uint32_t a_id : a_ids) {
    const Box& box_a = state.a[a_id];
    for (const uint32_t b_id : b_ids) {
      ++state.stats->comparisons;
      const Box& box_b = state.b[b_id];
      if (!Intersects(box_a, box_b)) continue;
      // Deduplicate: only the octant owning the reference point reports.
      if (OwnsPoint(cube, ReferencePoint(box_a, box_b), state.root_cube)) {
        ++state.stats->results;
        state.out->Emit(a_id, b_id);
      }
    }
  }
}

void BuildAndJoin(BuildState& state, const Box& cube, int depth,
                  std::vector<uint32_t> a_ids, std::vector<uint32_t> b_ids) {
  if (a_ids.empty() || b_ids.empty()) {
    // Pruned subtree: one side cannot contribute results. This is the
    // octree's equivalent of TOUCH/S3 filtering.
    state.stats->filtered += a_ids.size() + b_ids.size();
    return;
  }
  if (a_ids.size() + b_ids.size() <= state.options->leaf_capacity ||
      depth >= state.options->max_depth) {
    JoinLeaf(state, cube, a_ids, b_ids);
    return;
  }

  // Split only the axes the midpoint strictly separates; a degenerate axis
  // (zero or float-denormal extent) would otherwise clone its objects into
  // both halves forever without making progress.
  const Vec3 mid = cube.Center();
  const bool split_x = cube.lo.x < mid.x && mid.x < cube.hi.x;
  const bool split_y = cube.lo.y < mid.y && mid.y < cube.hi.y;
  const bool split_z = cube.lo.z < mid.z && mid.z < cube.hi.z;
  if (!split_x && !split_y && !split_z) {
    JoinLeaf(state, cube, a_ids, b_ids);
    return;
  }

  struct Child {
    Box cube;
    std::vector<uint32_t> a_ids;
    std::vector<uint32_t> b_ids;
  };
  std::vector<Child> children;
  children.reserve(8);
  bool made_progress = false;
  for (int octant = 0; octant < 8; ++octant) {
    // Skip the duplicate sibling on axes that are not split.
    if ((octant & 1 && !split_x) || (octant & 2 && !split_y) ||
        (octant & 4 && !split_z)) {
      continue;
    }
    Child child;
    child.cube = Box(
        Vec3(octant & 1 ? mid.x : cube.lo.x, octant & 2 ? mid.y : cube.lo.y,
             octant & 4 ? mid.z : cube.lo.z),
        Vec3(octant & 1 || !split_x ? cube.hi.x : mid.x,
             octant & 2 || !split_y ? cube.hi.y : mid.y,
             octant & 4 || !split_z ? cube.hi.z : mid.z));
    for (const uint32_t id : a_ids) {
      ++state.stats->node_comparisons;
      if (Intersects(state.a[id], child.cube)) child.a_ids.push_back(id);
    }
    for (const uint32_t id : b_ids) {
      ++state.stats->node_comparisons;
      if (Intersects(state.b[id], child.cube)) child.b_ids.push_back(id);
    }
    if (child.a_ids.size() + child.b_ids.size() <
        a_ids.size() + b_ids.size()) {
      made_progress = true;
    }
    children.push_back(std::move(child));
  }

  if (!made_progress) {
    // Every octant inherited the full load (e.g. a stack of identical
    // boxes): splitting further only multiplies duplicates.
    JoinLeaf(state, cube, a_ids, b_ids);
    return;
  }

  for (Child& child : children) {
    const size_t created = child.a_ids.size() + child.b_ids.size();
    state.live_entries += created;
    state.peak_entries = std::max(state.peak_entries, state.live_entries);
    BuildAndJoin(state, child.cube, depth + 1, std::move(child.a_ids),
                 std::move(child.b_ids));
    state.live_entries -= created;
  }
}

}  // namespace

JoinStats OctreeJoin::Join(std::span<const Box> a, std::span<const Box> b,
                           ResultCollector& out) {
  JoinStats stats;
  Timer total;
  if (a.empty() || b.empty()) {
    stats.total_seconds = total.Seconds();
    return stats;
  }

  Box space = Box::Empty();
  for (const Box& box : a) space.ExpandToContain(box);
  for (const Box& box : b) space.ExpandToContain(box);

  BuildState state{a, b, &options_, space, &stats, &out};

  std::vector<uint32_t> a_ids(a.size());
  std::vector<uint32_t> b_ids(b.size());
  for (uint32_t i = 0; i < a.size(); ++i) a_ids[i] = i;
  for (uint32_t i = 0; i < b.size(); ++i) b_ids[i] = i;
  state.live_entries = a.size() + b.size();
  state.peak_entries = state.live_entries;

  BuildAndJoin(state, space, 0, std::move(a_ids), std::move(b_ids));

  // The tree is built and consumed in one pass; its footprint is the peak
  // of the duplicated id lists live at once (the recursion stack holds one
  // path of sibling lists).
  stats.memory_bytes = state.peak_entries * sizeof(uint32_t);
  stats.join_seconds = total.Seconds();
  stats.total_seconds = stats.join_seconds;
  return stats;
}

}  // namespace touch
