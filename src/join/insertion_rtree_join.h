#ifndef TOUCH_JOIN_INSERTION_RTREE_JOIN_H_
#define TOUCH_JOIN_INSERTION_RTREE_JOIN_H_

#include "index/dynamic_rtree.h"
#include "join/algorithm.h"
#include "join/local_join.h"

namespace touch {

/// Configuration of the insertion-built R-tree join.
struct InsertionRTreeJoinOptions {
  RTreeVariant variant = RTreeVariant::kGuttman;
  uint32_t max_entries = 16;
  uint32_t min_entries = 6;
  LocalJoinStrategy local_join = LocalJoinStrategy::kPlaneSweep;
};

/// Synchronous R-tree traversal join over *insertion-built* trees — the
/// 1984/1990-era baseline exactly as the paper's related work frames it
/// (section 2.2.1): Guttman or R*-tree construction by one-at-a-time
/// insertion, then the Brinkhoff et al. traversal. The bulk-loaded `rtree`
/// variant is what the paper actually benchmarks ("arguably the most
/// efficient R-Trees can be built through bulkloading"); this join makes
/// the gap measurable: insertion-built trees carry sibling overlap that
/// the traversal pays for in node and object comparisons, R* less so than
/// Guttman.
class InsertionRTreeJoin : public SpatialJoinAlgorithm {
 public:
  explicit InsertionRTreeJoin(const InsertionRTreeJoinOptions& options = {})
      : options_(options) {}

  std::string_view name() const override {
    return options_.variant == RTreeVariant::kRStar ? "rtree-rstar"
                                                    : "rtree-guttman";
  }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;

  const InsertionRTreeJoinOptions& options() const { return options_; }

 private:
  InsertionRTreeJoinOptions options_;
};

}  // namespace touch

#endif  // TOUCH_JOIN_INSERTION_RTREE_JOIN_H_
