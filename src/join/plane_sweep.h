#ifndef TOUCH_JOIN_PLANE_SWEEP_H_
#define TOUCH_JOIN_PLANE_SWEEP_H_

#include "join/algorithm.h"

namespace touch {

/// In-memory plane sweep join (paper section 2.1): sorts both datasets on x
/// and sweeps them synchronously, fully testing only pairs whose x-extents
/// overlap. Because objects are sorted in one dimension only, objects close
/// on x but far on y/z still cause redundant comparisons — the inefficiency
/// the paper highlights.
class PlaneSweepJoin : public SpatialJoinAlgorithm {
 public:
  std::string_view name() const override { return "ps"; }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;
};

}  // namespace touch

#endif  // TOUCH_JOIN_PLANE_SWEEP_H_
