#ifndef TOUCH_JOIN_S3_H_
#define TOUCH_JOIN_S3_H_

#include "join/algorithm.h"
#include "join/local_join.h"

namespace touch {

/// Configuration of the S3 join. The paper's evaluation configures S3 with a
/// fanout of 3 and 5 levels.
struct S3Options {
  /// Number of grid levels L; level l has (fanout^l)^3 cells.
  int levels = 5;
  /// Refinement factor between consecutive levels.
  int fanout = 3;
  /// Local join used per aligned cell pair (paper: plane sweep).
  LocalJoinStrategy local_join = LocalJoinStrategy::kPlaneSweep;
};

/// Size Separation Spatial Join (Koudas & Sevcik, SIGMOD'97; paper section
/// 2.2.3, Figure 2).
///
/// S3 maintains a hierarchy of L equi-width grids of increasing granularity
/// per dataset and assigns each object once (*multiple matching*, no
/// replication) to the lowest level where it overlaps exactly one cell. A
/// cell is then joined with its aligned counterpart and with the enclosing
/// cells on every other level. Because the partitioning is space-oriented,
/// skewed data pushes many objects to coarse levels, which is why the paper
/// measures S3 fastest on uniform and slowest on clustered data.
class S3Join : public SpatialJoinAlgorithm {
 public:
  explicit S3Join(const S3Options& options = {}) : options_(options) {}

  std::string_view name() const override { return "s3"; }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;

  const S3Options& options() const { return options_; }

 private:
  S3Options options_;
};

}  // namespace touch

#endif  // TOUCH_JOIN_S3_H_
