#include "join/pbsm.h"

#include <algorithm>

#include "obs/trace.h"
#include "util/memory.h"
#include "util/timer.h"

namespace touch {
namespace {

// Joint MBR of both datasets; the grid must cover every object.
Box JointDomain(std::span<const Box> a, std::span<const Box> b) {
  Box domain = Box::Empty();
  for (const Box& box : a) domain.ExpandToContain(box);
  for (const Box& box : b) domain.ExpandToContain(box);
  return domain;
}

// Multiple assignment: append one placement per (object, overlapped cell),
// keyed by the *dense* cell index (row-major) so the sort below can be a
// radix sort over a compact key space.
void AssignToCells(std::span<const Box> boxes, const GridMapper& grid,
                   std::vector<PbsmPlacement>* placements) {
  const uint64_t stride_y = static_cast<uint64_t>(grid.res_z());
  const uint64_t stride_x = stride_y * static_cast<uint64_t>(grid.res_y());
  for (uint32_t id = 0; id < boxes.size(); ++id) {
    const CellRange range = grid.RangeOf(boxes[id]);
    for (int x = range.lo.x; x <= range.hi.x; ++x) {
      for (int y = range.lo.y; y <= range.hi.y; ++y) {
        const uint64_t base = static_cast<uint64_t>(x) * stride_x +
                              static_cast<uint64_t>(y) * stride_y;
        for (int z = range.lo.z; z <= range.hi.z; ++z) {
          placements->push_back(
              PbsmPlacement{base + static_cast<uint64_t>(z), id});
        }
      }
    }
  }
}

// LSD radix sort on the dense cell key (16-bit digits). Replicated datasets
// produce millions of placements; a comparison sort here dominated the whole
// join. Returns the scratch buffer's footprint so PBSM's memory accounting
// covers the true peak.
size_t RadixSortByKey(std::vector<PbsmPlacement>& placements,
                      uint64_t max_key) {
  if (placements.size() < 2) return 0;
  std::vector<PbsmPlacement> scratch(placements.size());
  constexpr int kDigitBits = 16;
  constexpr size_t kBuckets = size_t{1} << kDigitBits;
  std::vector<size_t> counts(kBuckets);
  for (int shift = 0; (max_key >> shift) != 0; shift += kDigitBits) {
    std::fill(counts.begin(), counts.end(), 0);
    for (const PbsmPlacement& p : placements) {
      ++counts[(p.key >> shift) & (kBuckets - 1)];
    }
    size_t offset = 0;
    for (size_t bucket = 0; bucket < kBuckets; ++bucket) {
      const size_t count = counts[bucket];
      counts[bucket] = offset;
      offset += count;
    }
    for (const PbsmPlacement& p : placements) {
      scratch[counts[(p.key >> shift) & (kBuckets - 1)]++] = p;
    }
    placements.swap(scratch);
  }
  return VectorBytes(scratch) + VectorBytes(counts);
}

}  // namespace

std::vector<PbsmPlacement> BuildPbsmPlacements(std::span<const Box> boxes,
                                               const GridMapper& grid,
                                               size_t* scratch_bytes) {
  // Ambient kernel span (no-op outside a traced engine request).
  SpanScope span("pbsm-placements");
  std::vector<PbsmPlacement> placements;
  AssignToCells(boxes, grid, &placements);
  const size_t scratch = RadixSortByKey(placements, grid.TotalCells());
  if (scratch_bytes != nullptr) *scratch_bytes = scratch;
  return placements;
}

void PbsmMergeJoin(std::span<const Box> a,
                   std::span<const PbsmPlacement> placements_a,
                   std::span<const Box> b,
                   std::span<const PbsmPlacement> placements_b,
                   const GridMapper& grid, LocalJoinStrategy local_join,
                   JoinStats* stats, ResultCollector& out,
                   CancellationToken cancel) {
  // Ambient kernel span (no-op outside a traced engine request); the early
  // cancellation returns end it through the destructor.
  SpanScope span("pbsm-merge");
  // Merge the two sorted runs on the cell key; every cell present in both
  // sides gets a local join. Replication would report a pair once per shared
  // cell, so only the cell containing the pair's reference point emits it
  // (dedup during the join, no extra memory).
  std::vector<uint32_t> ids_a;
  std::vector<uint32_t> ids_b;
  size_t ia = 0;
  size_t ib = 0;
  uint64_t merge_steps = 0;
  while (ia < placements_a.size() && ib < placements_b.size()) {
    // Cooperative cancellation on the cheap skip-advance fast path is
    // amortized over a power-of-two stride (one branch per step).
    if ((merge_steps++ & 4095u) == 0 && cancel.stop_requested()) return;
    const uint64_t key_a = placements_a[ia].key;
    const uint64_t key_b = placements_b[ib].key;
    if (key_a < key_b) {
      ++ia;
      continue;
    }
    if (key_b < key_a) {
      ++ib;
      continue;
    }
    // Every joined cell runs a full local join — the expensive step — so
    // it polls unamortized: cancel latency is bounded by one cell's join,
    // not 4096 of them.
    if (cancel.stop_requested()) return;
    const uint64_t key = key_a;
    ids_a.clear();
    ids_b.clear();
    while (ia < placements_a.size() && placements_a[ia].key == key) {
      ids_a.push_back(placements_a[ia++].id);
    }
    while (ib < placements_b.size() && placements_b[ib].key == key) {
      ids_b.push_back(placements_b[ib++].id);
    }

    // Decode the dense key back into cell coordinates for the dedup test.
    const uint64_t stride_y = static_cast<uint64_t>(grid.res_z());
    const uint64_t stride_x = stride_y * static_cast<uint64_t>(grid.res_y());
    const CellCoord coord{
        static_cast<int>(key / stride_x),
        static_cast<int>((key / stride_y) %
                         static_cast<uint64_t>(grid.res_y())),
        static_cast<int>(key % stride_y)};
    auto emit = [&](uint32_t a_id, uint32_t b_id) {
      const Vec3 ref = ReferencePoint(a[a_id], b[b_id]);
      const CellCoord home = grid.CellOf(ref);
      if (home.x == coord.x && home.y == coord.y && home.z == coord.z) {
        ++stats->results;
        out.Emit(a_id, b_id);
      }
    };
    switch (local_join) {
      case LocalJoinStrategy::kPlaneSweep:
      case LocalJoinStrategy::kGrid: {  // grid-in-grid is pointless; sweep.
        // Only cells occupied by both datasets reach this point, so the
        // x-sorting work is proportional to joinable cells, not replication.
        SortByXLow(a, ids_a);
        SortByXLow(b, ids_b);
        LocalPlaneSweepSorted(a, ids_a, b, ids_b, stats, emit);
        break;
      }
      case LocalJoinStrategy::kNestedLoop:
        LocalNestedLoop(a, ids_a, b, ids_b, stats, emit);
        break;
    }
  }
}

JoinStats PbsmJoin::Join(std::span<const Box> a, std::span<const Box> b,
                         ResultCollector& out) {
  JoinStats stats;
  Timer total;
  if (a.empty() || b.empty()) {
    stats.total_seconds = total.Seconds();
    return stats;
  }

  // Partitioning phase: build both cell directories over the joint grid.
  Timer phase;
  const Box domain = JointDomain(a, b);
  const GridMapper grid(domain, options_.resolution);
  size_t scratch_a = 0;
  size_t scratch_b = 0;
  const std::vector<PbsmPlacement> placements_a =
      BuildPbsmPlacements(a, grid, &scratch_a);
  const std::vector<PbsmPlacement> placements_b =
      BuildPbsmPlacements(b, grid, &scratch_b);
  stats.build_seconds = phase.Seconds();
  stats.memory_bytes = VectorBytes(placements_a) + VectorBytes(placements_b) +
                       std::max(scratch_a, scratch_b);

  // Join phase.
  phase.Reset();
  PbsmMergeJoin(a, placements_a, b, placements_b, grid, options_.local_join,
                &stats, out);
  stats.join_seconds = phase.Seconds();
  stats.total_seconds = total.Seconds();
  return stats;
}

}  // namespace touch
