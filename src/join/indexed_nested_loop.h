#ifndef TOUCH_JOIN_INDEXED_NESTED_LOOP_H_
#define TOUCH_JOIN_INDEXED_NESTED_LOOP_H_

#include "join/algorithm.h"
#include "join/rtree_join.h"

namespace touch {

/// Indexed nested loop join (paper section 2.2.2): bulk-loads an STR R-tree
/// on dataset A and runs one range query per object of B.
///
/// The paper measures INL needing about as many object comparisons as the
/// synchronous traversal but more time — the cost of re-descending the tree
/// from the root for every probe instead of traversing once. That repeated
/// descent shows up here as a much larger node_comparisons count.
class IndexedNestedLoopJoin : public SpatialJoinAlgorithm {
 public:
  explicit IndexedNestedLoopJoin(const RTreeJoinOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "inl"; }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;

  const RTreeJoinOptions& options() const { return options_; }

 private:
  RTreeJoinOptions options_;
};

}  // namespace touch

#endif  // TOUCH_JOIN_INDEXED_NESTED_LOOP_H_
