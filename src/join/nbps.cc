#include "join/nbps.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "geom/grid.h"
#include "util/memory.h"
#include "util/timer.h"

namespace touch {
namespace {

/// Per-cell state: the objects of each stream that arrived so far and
/// overlap this cell.
struct Cell {
  std::vector<uint32_t> a_ids;
  std::vector<uint32_t> b_ids;
};

}  // namespace

JoinStats NbpsJoin::Join(std::span<const Box> a, std::span<const Box> b,
                         ResultCollector& out) {
  JoinStats stats;
  Timer total;
  if (a.empty() || b.empty()) {
    stats.total_seconds = total.Seconds();
    return stats;
  }

  // NBPS distributes tuples with a spatial partitioning function that is
  // fixed before the streams start; we derive it from the inputs' joint MBR
  // (a production system would use catalog bounds).
  Box domain = Box::Empty();
  for (const Box& box : a) domain.ExpandToContain(box);
  for (const Box& box : b) domain.ExpandToContain(box);
  const GridMapper grid(domain, std::max(1, options_.resolution));

  std::unordered_map<uint64_t, Cell> cells;
  cells.reserve((a.size() + b.size()) / 4);

  // Probes `box` against the opposite stream's entries in `cell`, emitting
  // matches owned by this cell, then registers the object in its own list.
  const auto arrive = [&](bool from_a, uint32_t id, const Box& box) {
    const CellRange range = grid.RangeOf(box);
    for (int x = range.lo.x; x <= range.hi.x; ++x) {
      for (int y = range.lo.y; y <= range.hi.y; ++y) {
        for (int z = range.lo.z; z <= range.hi.z; ++z) {
          const CellCoord coord{x, y, z};
          Cell& cell = cells[GridMapper::PackKey(coord)];
          const std::vector<uint32_t>& opposite =
              from_a ? cell.b_ids : cell.a_ids;
          const std::span<const Box> opposite_boxes = from_a ? b : a;
          for (const uint32_t other : opposite) {
            ++stats.comparisons;
            const Box& other_box = opposite_boxes[other];
            if (!Intersects(box, other_box)) continue;
            // Revised reference point: report in exactly one shared cell.
            // Boundary cells also own the out-of-domain space they were
            // clamped from, which CellOf reproduces by clamping the point.
            const Vec3 ref = ReferencePoint(box, other_box);
            const CellCoord owner = grid.CellOf(ref);
            if (owner.x != x || owner.y != y || owner.z != z) continue;
            if (stats.results == 0) {
              stats.first_result_seconds = total.Seconds();
            }
            ++stats.results;
            if (from_a) {
              out.Emit(id, other);
            } else {
              out.Emit(other, id);
            }
          }
          if (from_a) {
            cell.a_ids.push_back(id);
          } else {
            cell.b_ids.push_back(id);
          }
        }
      }
    }
  };

  // Interleave the two inputs as NBPS interleaves its network streams.
  const size_t rounds = std::max(a.size(), b.size());
  for (size_t i = 0; i < rounds; ++i) {
    if (i < a.size()) arrive(true, static_cast<uint32_t>(i), a[i]);
    if (i < b.size()) arrive(false, static_cast<uint32_t>(i), b[i]);
  }

  // Footprint: the fully-populated grid (every placement is retained until
  // the streams end, as in PBSM's multiple assignment).
  size_t bytes = cells.size() *
                 (sizeof(uint64_t) + sizeof(Cell) + sizeof(void*));
  for (const auto& [key, cell] : cells) {
    bytes += VectorBytes(cell.a_ids) + VectorBytes(cell.b_ids);
  }
  stats.memory_bytes = bytes;
  stats.join_seconds = total.Seconds();
  stats.total_seconds = stats.join_seconds;
  return stats;
}

}  // namespace touch
