#ifndef TOUCH_JOIN_ALGORITHM_H_
#define TOUCH_JOIN_ALGORITHM_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "geom/box.h"
#include "util/stats.h"

namespace touch {

/// Sink for result pairs. Pair ids are indices into the two input spans, in
/// (a, b) order regardless of any internal join-order swap an algorithm does.
///
/// Thread-safety contract: unless a collector documents otherwise, Emit
/// calls must be externally serialized — the parallel joins (TOUCH with
/// threads > 1, PartitionedJoin) take a mutex around the shared collector,
/// and the engine drives each request's collector from a single worker
/// thread. ConcurrentCountingCollector is the lock-free exception for
/// count-only paths.
class ResultCollector {
 public:
  virtual ~ResultCollector() = default;
  virtual void Emit(uint32_t a_id, uint32_t b_id) = 0;
};

/// Debug-only detector of unserialized Emit calls: an entry counter that
/// must never observe a concurrent entry. Zero-size and no-op in NDEBUG
/// builds. Serialized use from *different* threads (the parallel joins'
/// mutex-guarded emission) passes; only genuinely concurrent calls — the
/// ones that corrupt a non-atomic counter or vector — trip the assert.
class SerialEmitCheck {
 public:
  void Enter() {
#ifndef NDEBUG
    [[maybe_unused]] const int prior =
        in_emit_.fetch_add(1, std::memory_order_acquire);
    assert(prior == 0 &&
           "ResultCollector::Emit called concurrently; serialize calls or "
           "use ConcurrentCountingCollector");
#endif
  }
  void Exit() {
#ifndef NDEBUG
    in_emit_.fetch_sub(1, std::memory_order_release);
#endif
  }

 private:
#ifndef NDEBUG
  std::atomic<int> in_emit_{0};
#endif
};

/// Counts results without storing them (used by the benchmarks, where result
/// sets of millions of pairs would distort memory measurements).
///
/// Not thread-safe: Emit calls must be serialized (asserted in debug
/// builds); use ConcurrentCountingCollector when emitters race.
class CountingCollector : public ResultCollector {
 public:
  void Emit(uint32_t, uint32_t) override {
    check_.Enter();
    ++count_;
    check_.Exit();
  }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
  SerialEmitCheck check_;
};

/// Counts results with a relaxed atomic, safe for concurrent Emit from any
/// number of threads (the engine's count-only batch paths). count() is only
/// meaningful once the emitting join has completed.
class ConcurrentCountingCollector : public ResultCollector {
 public:
  void Emit(uint32_t, uint32_t) override {
    count_.fetch_add(1, std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> count_{0};
};

/// Materializes result pairs (used by tests and examples).
///
/// Not thread-safe: Emit calls must be serialized (asserted in debug
/// builds).
class VectorCollector : public ResultCollector {
 public:
  void Emit(uint32_t a_id, uint32_t b_id) override {
    check_.Enter();
    pairs_.emplace_back(a_id, b_id);
    check_.Exit();
  }
  const std::vector<std::pair<uint32_t, uint32_t>>& pairs() const {
    return pairs_;
  }
  std::vector<std::pair<uint32_t, uint32_t>>& mutable_pairs() { return pairs_; }

 private:
  std::vector<std::pair<uint32_t, uint32_t>> pairs_;
  SerialEmitCheck check_;
};

/// Common interface of every spatial join in this library (the filtering
/// phase of the paper: inputs are object MBRs, output is every intersecting
/// (a, b) pair, exactly once).
class SpatialJoinAlgorithm {
 public:
  virtual ~SpatialJoinAlgorithm() = default;

  /// Stable identifier, e.g. "touch", "pbsm", "s3".
  virtual std::string_view name() const = 0;

  /// Runs the join. Implementations must emit each intersecting pair exactly
  /// once and fill the JoinStats counters and phase timings.
  virtual JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                         ResultCollector& out) = 0;
};

/// The paper's distance-join translation: enlarges every box of `a` by
/// `epsilon` and runs the spatial join, so the result is all pairs within L∞
/// distance epsilon of each other's MBRs. Enlargement cost is included in
/// total_seconds, mirroring the paper's methodology of timing everything
/// after load.
JoinStats DistanceJoin(SpatialJoinAlgorithm& algorithm, std::span<const Box> a,
                       std::span<const Box> b, float epsilon,
                       ResultCollector& out);

}  // namespace touch

#endif  // TOUCH_JOIN_ALGORITHM_H_
