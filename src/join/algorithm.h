#ifndef TOUCH_JOIN_ALGORITHM_H_
#define TOUCH_JOIN_ALGORITHM_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <utility>
#include <vector>

#include "geom/box.h"
#include "util/stats.h"

namespace touch {

/// Sink for result pairs. Pair ids are indices into the two input spans, in
/// (a, b) order regardless of any internal join-order swap an algorithm does.
class ResultCollector {
 public:
  virtual ~ResultCollector() = default;
  virtual void Emit(uint32_t a_id, uint32_t b_id) = 0;
};

/// Counts results without storing them (used by the benchmarks, where result
/// sets of millions of pairs would distort memory measurements).
class CountingCollector : public ResultCollector {
 public:
  void Emit(uint32_t, uint32_t) override { ++count_; }
  uint64_t count() const { return count_; }

 private:
  uint64_t count_ = 0;
};

/// Materializes result pairs (used by tests and examples).
class VectorCollector : public ResultCollector {
 public:
  void Emit(uint32_t a_id, uint32_t b_id) override {
    pairs_.emplace_back(a_id, b_id);
  }
  const std::vector<std::pair<uint32_t, uint32_t>>& pairs() const {
    return pairs_;
  }
  std::vector<std::pair<uint32_t, uint32_t>>& mutable_pairs() { return pairs_; }

 private:
  std::vector<std::pair<uint32_t, uint32_t>> pairs_;
};

/// Common interface of every spatial join in this library (the filtering
/// phase of the paper: inputs are object MBRs, output is every intersecting
/// (a, b) pair, exactly once).
class SpatialJoinAlgorithm {
 public:
  virtual ~SpatialJoinAlgorithm() = default;

  /// Stable identifier, e.g. "touch", "pbsm", "s3".
  virtual std::string_view name() const = 0;

  /// Runs the join. Implementations must emit each intersecting pair exactly
  /// once and fill the JoinStats counters and phase timings.
  virtual JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                         ResultCollector& out) = 0;
};

/// The paper's distance-join translation: enlarges every box of `a` by
/// `epsilon` and runs the spatial join, so the result is all pairs within L∞
/// distance epsilon of each other's MBRs. Enlargement cost is included in
/// total_seconds, mirroring the paper's methodology of timing everything
/// after load.
JoinStats DistanceJoin(SpatialJoinAlgorithm& algorithm, std::span<const Box> a,
                       std::span<const Box> b, float epsilon,
                       ResultCollector& out);

}  // namespace touch

#endif  // TOUCH_JOIN_ALGORITHM_H_
