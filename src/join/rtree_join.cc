#include "join/rtree_join.h"

#include "join/sync_traversal.h"
#include "util/timer.h"

namespace touch {

void RTreeSyncJoin::JoinNodes(std::span<const Box> a, std::span<const Box> b,
                              const RTree& tree_a, const RTree& tree_b,
                              uint32_t node_a, uint32_t node_b,
                              JoinStats* stats, ResultCollector& out) {
  SyncTraverse(a, b, tree_a, tree_b, node_a, node_b, options_.local_join,
               stats, [&](uint32_t a_id, uint32_t b_id) {
                 ++stats->results;
                 out.Emit(a_id, b_id);
               });
}

JoinStats RTreeSyncJoin::Join(std::span<const Box> a, std::span<const Box> b,
                              ResultCollector& out) {
  JoinStats stats;
  Timer total;
  if (a.empty() || b.empty()) {
    stats.total_seconds = total.Seconds();
    return stats;
  }

  Timer phase;
  const RTree tree_a(a, options_.leaf_capacity, options_.fanout,
                     options_.bulkload);
  const RTree tree_b(b, options_.leaf_capacity, options_.fanout,
                     options_.bulkload);
  stats.build_seconds = phase.Seconds();
  stats.memory_bytes = tree_a.MemoryUsageBytes() + tree_b.MemoryUsageBytes();

  phase.Reset();
  ++stats.node_comparisons;
  if (Intersects(tree_a.nodes()[tree_a.root()].mbr,
                 tree_b.nodes()[tree_b.root()].mbr)) {
    JoinNodes(a, b, tree_a, tree_b, tree_a.root(), tree_b.root(), &stats, out);
  }
  stats.join_seconds = phase.Seconds();
  stats.total_seconds = total.Seconds();
  return stats;
}

}  // namespace touch
