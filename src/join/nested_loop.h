#ifndef TOUCH_JOIN_NESTED_LOOP_H_
#define TOUCH_JOIN_NESTED_LOOP_H_

#include "join/algorithm.h"

namespace touch {

/// The textbook O(|A|*|B|) nested loop join (paper section 2.1): compares
/// every pair of objects. No auxiliary structures, hence a zero memory
/// footprint — the paper keeps it as the space-efficiency baseline, and the
/// test suite uses it as the correctness oracle for every other algorithm.
class NestedLoopJoin : public SpatialJoinAlgorithm {
 public:
  std::string_view name() const override { return "nl"; }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;
};

}  // namespace touch

#endif  // TOUCH_JOIN_NESTED_LOOP_H_
