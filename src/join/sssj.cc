#include "join/sssj.h"

#include <algorithm>
#include <cmath>

#include "util/memory.h"
#include "util/timer.h"

namespace touch {
namespace {

// Strip interval [start, end] of a box along z, clamped into [0, strips).
struct StripInterval {
  int start;
  int end;
};

// Incremental membership list with O(1) add and O(1) swap-remove.
class ActiveList {
 public:
  explicit ActiveList(size_t universe) : position_(universe, kAbsent) {}

  void Add(uint32_t id) {
    position_[id] = static_cast<uint32_t>(members_.size());
    members_.push_back(id);
  }

  void Remove(uint32_t id) {
    const uint32_t pos = position_[id];
    const uint32_t last = members_.back();
    members_[pos] = last;
    position_[last] = pos;
    members_.pop_back();
    position_[id] = kAbsent;
  }

  const std::vector<uint32_t>& members() const { return members_; }

  size_t MemoryUsageBytes() const {
    return VectorBytes(members_) + VectorBytes(position_);
  }

 private:
  static constexpr uint32_t kAbsent = 0xffffffffu;
  std::vector<uint32_t> members_;
  std::vector<uint32_t> position_;
};

}  // namespace

JoinStats SssjJoin::Join(std::span<const Box> a, std::span<const Box> b,
                         ResultCollector& out) {
  JoinStats stats;
  Timer total;
  if (a.empty() || b.empty()) {
    stats.total_seconds = total.Seconds();
    return stats;
  }
  const int strips = std::max(1, options_.strips);

  // Partitioning phase: compute each object's strip interval along z over
  // the joint extent; bucket ids by starting and ending strip.
  Timer phase;
  Box domain = Box::Empty();
  for (const Box& box : a) domain.ExpandToContain(box);
  for (const Box& box : b) domain.ExpandToContain(box);
  const float z0 = domain.lo.z;
  const float extent = domain.hi.z - domain.lo.z;
  const float inv_width =
      extent > 0 ? static_cast<float>(strips) / extent : 0.0f;
  auto interval_of = [&](const Box& box) {
    const int start = std::clamp(
        static_cast<int>(std::floor((box.lo.z - z0) * inv_width)), 0,
        strips - 1);
    const int end = std::clamp(
        static_cast<int>(std::floor((box.hi.z - z0) * inv_width)), start,
        strips - 1);
    return StripInterval{start, end};
  };

  std::vector<std::vector<uint32_t>> a_starts(strips);
  std::vector<std::vector<uint32_t>> a_ends(strips);
  std::vector<std::vector<uint32_t>> b_starts(strips);
  std::vector<std::vector<uint32_t>> b_ends(strips);
  for (uint32_t id = 0; id < a.size(); ++id) {
    const StripInterval iv = interval_of(a[id]);
    a_starts[iv.start].push_back(id);
    a_ends[iv.end].push_back(id);
  }
  for (uint32_t id = 0; id < b.size(); ++id) {
    const StripInterval iv = interval_of(b[id]);
    b_starts[iv.start].push_back(id);
    b_ends[iv.end].push_back(id);
  }
  stats.build_seconds = phase.Seconds();

  // Join phase: sweep the strips. In strip n, the objects starting here are
  // joined against everything active from the other dataset (which by
  // construction started at a strip <= n and reaches n), so each overlapping
  // pair is joined exactly once at strip max(s_a, s_b). To avoid the
  // (a starts at n) x (b starts at n) pairs twice, the A-side join runs
  // against B's active set *after* B's starters are added, and the B-side
  // join runs against A's active set *before* A's starters are added.
  phase.Reset();
  ActiveList active_a(a.size());
  ActiveList active_b(b.size());
  auto emit = [&](uint32_t a_id, uint32_t b_id) {
    ++stats.results;
    out.Emit(a_id, b_id);
  };
  for (int n = 0; n < strips; ++n) {
    for (const uint32_t id : b_starts[n]) active_b.Add(id);
    // New B objects vs previously active A objects (s_a < n covered; also
    // s_a == n pairs are excluded here because A starters are not yet added).
    if (!b_starts[n].empty() && !active_a.members().empty()) {
      LocalPlaneSweep(a, active_a.members(), b, b_starts[n], &stats, emit);
    }
    // New A objects vs the full B active set (covers s_b <= n).
    if (!a_starts[n].empty() && !active_b.members().empty()) {
      LocalPlaneSweep(a, a_starts[n], b, active_b.members(), &stats, emit);
    }
    for (const uint32_t id : a_starts[n]) active_a.Add(id);
    for (const uint32_t id : a_ends[n]) active_a.Remove(id);
    for (const uint32_t id : b_ends[n]) active_b.Remove(id);
  }
  stats.join_seconds = phase.Seconds();

  stats.memory_bytes = active_a.MemoryUsageBytes() +
                       active_b.MemoryUsageBytes() +
                       NestedVectorBytes(a_starts) + NestedVectorBytes(a_ends) +
                       NestedVectorBytes(b_starts) + NestedVectorBytes(b_ends);
  stats.total_seconds = total.Seconds();
  return stats;
}

}  // namespace touch
