#ifndef TOUCH_JOIN_RPLUS_JOIN_H_
#define TOUCH_JOIN_RPLUS_JOIN_H_

#include "index/rplus_tree.h"
#include "join/algorithm.h"

namespace touch {

/// Configuration of the R+-tree join.
struct RPlusJoinOptions {
  size_t leaf_capacity = 64;
};

/// Double-index R+-tree traversal join (paper section 2.2.1's "R+-Tree"
/// alternative to the overlapping R-tree): both datasets are indexed with
/// disjoint-region R+-trees and walked synchronously. Object duplication in
/// the leaves would produce duplicate results; they are filtered on the fly
/// with the reference-point rule over the *regions* — leaf regions partition
/// the space, so exactly one leaf pair owns each result pair's reference
/// point.
class RPlusJoin : public SpatialJoinAlgorithm {
 public:
  explicit RPlusJoin(const RPlusJoinOptions& options = {})
      : options_(options) {}

  std::string_view name() const override { return "rplus"; }
  JoinStats Join(std::span<const Box> a, std::span<const Box> b,
                 ResultCollector& out) override;

  const RPlusJoinOptions& options() const { return options_; }

 private:
  RPlusJoinOptions options_;
};

}  // namespace touch

#endif  // TOUCH_JOIN_RPLUS_JOIN_H_
