#ifndef TOUCH_JOIN_LOCAL_JOIN_H_
#define TOUCH_JOIN_LOCAL_JOIN_H_

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/overlap_kernel.h"
#include "geom/box.h"
#include "util/stats.h"

namespace touch {

/// Strategy used to join the objects that meet inside one partition (a PBSM
/// cell, an S3 cell pair, an R-tree leaf pair, or a TOUCH inner node). The
/// paper runs PBSM/S3/RTree/INL with the plane sweep as the local join and
/// TOUCH with the grid local join; the others exist for the ablation bench.
enum class LocalJoinStrategy {
  kNestedLoop,
  kPlaneSweep,
  kGrid,
};

const char* LocalJoinStrategyName(LocalJoinStrategy strategy);

/// All-pairs test of boxes_a[ids_a] x boxes_b[ids_b]. Every test counts as
/// one object comparison. Emit(a_id, b_id) is called for intersecting pairs.
///
/// Large inner lists are gathered into a SoA slab once and probed with the
/// batched overlap kernel (core/overlap_kernel.h); small ones keep the
/// scalar loop, whose pair set, emit order, and comparison count the
/// batched path reproduces exactly.
template <typename Emit>
void LocalNestedLoop(std::span<const Box> boxes_a,
                     std::span<const uint32_t> ids_a,
                     std::span<const Box> boxes_b,
                     std::span<const uint32_t> ids_b, JoinStats* stats,
                     Emit&& emit) {
  if (ids_a.empty() || ids_b.empty()) return;
  if (ids_b.size() < kBatchedLocalJoinMinIds) {
    for (const uint32_t a_id : ids_a) {
      const Box& box_a = boxes_a[a_id];
      for (const uint32_t b_id : ids_b) {
        ++stats->comparisons;
        if (Intersects(box_a, boxes_b[b_id])) emit(a_id, b_id);
      }
    }
    return;
  }
  OverlapScratch& scratch = ThreadLocalOverlapScratch();
  scratch.slab_b.AssignGather(boxes_b, ids_b);
  for (const uint32_t a_id : ids_a) {
    scratch.hits.clear();
    stats->comparisons += CollectOverlaps(scratch.slab_b, 0, ids_b.size(),
                                          boxes_a[a_id], scratch.hits);
    for (const uint32_t pos : scratch.hits) emit(a_id, ids_b[pos]);
  }
}

/// Sorts `ids` ascending by the x-lower-bound of their boxes (the sweep
/// order). Deterministic under ties.
void SortByXLow(std::span<const Box> boxes, std::vector<uint32_t>& ids);

/// Forward plane sweep over two id lists that are already sorted with
/// SortByXLow. Only pairs whose x-extents overlap are tested in full (one
/// comparison each); pairs far apart on x are skipped, pairs far apart on y/z
/// but close on x are the redundant tests the paper attributes to the sweep.
///
/// When both lists clear the batching threshold they are gathered into SoA
/// slabs and the inner scans run the batched sweep kernel
/// (CollectOverlapsUntilBeyondX); the slab keeps the lists' sorted order, so
/// pair set, emit order, and comparison count match the scalar sweep below.
template <typename Emit>
void LocalPlaneSweepSorted(std::span<const Box> boxes_a,
                           std::span<const uint32_t> sorted_a,
                           std::span<const Box> boxes_b,
                           std::span<const uint32_t> sorted_b,
                           JoinStats* stats, Emit&& emit) {
  if (std::min(sorted_a.size(), sorted_b.size()) <
      kBatchedLocalJoinMinIds) {
    size_t i = 0;
    size_t j = 0;
    while (i < sorted_a.size() && j < sorted_b.size()) {
      const Box& box_a = boxes_a[sorted_a[i]];
      const Box& box_b = boxes_b[sorted_b[j]];
      if (box_a.lo.x <= box_b.lo.x) {
        // box_a enters the sweep plane: scan B objects that start before
        // box_a ends.
        for (size_t k = j; k < sorted_b.size(); ++k) {
          const Box& candidate = boxes_b[sorted_b[k]];
          if (candidate.lo.x > box_a.hi.x) break;
          ++stats->comparisons;
          if (Intersects(box_a, candidate)) emit(sorted_a[i], sorted_b[k]);
        }
        ++i;
      } else {
        // box_b enters the sweep plane: scan A objects strictly after
        // box_b's start (equal starts were handled by the branch above).
        for (size_t k = i; k < sorted_a.size(); ++k) {
          const Box& candidate = boxes_a[sorted_a[k]];
          if (candidate.lo.x > box_b.hi.x) break;
          ++stats->comparisons;
          if (Intersects(candidate, box_b)) emit(sorted_a[k], sorted_b[j]);
        }
        ++j;
      }
    }
    return;
  }
  OverlapScratch& scratch = ThreadLocalOverlapScratch();
  scratch.slab_a.AssignGather(boxes_a, sorted_a);
  scratch.slab_b.AssignGather(boxes_b, sorted_b);
  const BoxSlab& slab_a = scratch.slab_a;
  const BoxSlab& slab_b = scratch.slab_b;
  size_t i = 0;
  size_t j = 0;
  while (i < sorted_a.size() && j < sorted_b.size()) {
    if (slab_a.lo_x()[i] <= slab_b.lo_x()[j]) {
      scratch.hits.clear();
      stats->comparisons += CollectOverlapsUntilBeyondX(
          slab_b, j, sorted_b.size(), slab_a.BoxAt(i), scratch.hits);
      for (const uint32_t k : scratch.hits) emit(sorted_a[i], sorted_b[k]);
      ++i;
    } else {
      scratch.hits.clear();
      stats->comparisons += CollectOverlapsUntilBeyondX(
          slab_a, i, sorted_a.size(), slab_b.BoxAt(j), scratch.hits);
      for (const uint32_t k : scratch.hits) emit(sorted_a[k], sorted_b[j]);
      ++j;
    }
  }
}

/// Convenience wrapper that copies and sorts the id lists, then sweeps.
template <typename Emit>
void LocalPlaneSweep(std::span<const Box> boxes_a,
                     std::span<const uint32_t> ids_a,
                     std::span<const Box> boxes_b,
                     std::span<const uint32_t> ids_b, JoinStats* stats,
                     Emit&& emit) {
  std::vector<uint32_t> sorted_a(ids_a.begin(), ids_a.end());
  std::vector<uint32_t> sorted_b(ids_b.begin(), ids_b.end());
  SortByXLow(boxes_a, sorted_a);
  SortByXLow(boxes_b, sorted_b);
  LocalPlaneSweepSorted(boxes_a, sorted_a, boxes_b, sorted_b, stats,
                        static_cast<Emit&&>(emit));
}

}  // namespace touch

#endif  // TOUCH_JOIN_LOCAL_JOIN_H_
