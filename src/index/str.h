#ifndef TOUCH_INDEX_STR_H_
#define TOUCH_INDEX_STR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/box.h"

namespace touch {

/// Result of Sort-Tile-Recursive packing: a permutation of the input ids
/// grouped into consecutive buckets.
///
/// Bucket i consists of `order[bucket_begin[i] .. bucket_begin[i+1])`;
/// `bucket_begin` has NumBuckets()+1 entries (last one = input size).
struct StrPartitioning {
  std::vector<uint32_t> order;
  std::vector<uint32_t> bucket_begin;

  size_t NumBuckets() const {
    return bucket_begin.empty() ? 0 : bucket_begin.size() - 1;
  }

  /// Ids of bucket `i`.
  std::span<const uint32_t> Bucket(size_t i) const {
    return std::span<const uint32_t>(order).subspan(
        bucket_begin[i], bucket_begin[i + 1] - bucket_begin[i]);
  }
};

/// Sort-Tile-Recursive packing (Leutenegger et al., ICDE'97) of 3D boxes into
/// buckets of at most `bucket_size` objects.
///
/// Sorts by x-center into vertical slabs, re-sorts each slab by y-center into
/// tiles, re-sorts each tile by z-center and chops it into buckets. STR
/// "typically produces leaf nodes with the smallest MBRs" (paper section 5.1)
/// which is why both the R-tree bulk loader and TOUCH's partitioning phase
/// use it.
StrPartitioning StrPartition(std::span<const Box> boxes, size_t bucket_size);

/// MBR of a bucket of object ids.
Box BucketMbr(std::span<const Box> boxes, std::span<const uint32_t> ids);

}  // namespace touch

#endif  // TOUCH_INDEX_STR_H_
