#ifndef TOUCH_INDEX_TGS_H_
#define TOUCH_INDEX_TGS_H_

#include <span>

#include "geom/box.h"
#include "index/str.h"

namespace touch {

/// Top-down Greedy Split packing (García, López, Leutenegger, GIS'97 — the
/// "TGS" bulk loader of paper section 2.2.1).
///
/// Where STR tiles by sorting each axis once, TGS recursively bisects the
/// dataset: at every step it tries all three axes (objects ordered by
/// center) and every bucket-aligned split position, and keeps the cut that
/// minimizes the total volume of the two sides' MBRs. The paper notes TGS
/// beats STR/Hilbert on extreme skew and aspect ratios and loses on
/// real-world data; the bulkload ablation bench measures exactly that
/// trade-off here.
///
/// This implementation greedily splits down to the leaf buckets (the
/// original recurses per tree level; bucket-granular bisection preserves the
/// greedy cost structure while producing the same StrPartitioning interface
/// as the STR and Hilbert loaders, so all three plug into the same R-tree
/// builder).
StrPartitioning TgsPartition(std::span<const Box> boxes, size_t bucket_size);

}  // namespace touch

#endif  // TOUCH_INDEX_TGS_H_
