#ifndef TOUCH_INDEX_RPLUS_TREE_H_
#define TOUCH_INDEX_RPLUS_TREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/box.h"
#include "util/stats.h"

namespace touch {

/// R+-tree (Sellis, Roussopoulos, Faloutsos, VLDB'87; paper section 2.2.1):
/// sibling *regions* never overlap — the fix for the R-tree's inner-node
/// overlap — at the price of storing an object in every leaf whose region it
/// crosses ("the latter duplicates objects to reduce overlap. Duplicating
/// objects, however, also leads to duplicate results which have to be
/// filtered").
///
/// Built top-down: each node's region is cut by a median plane on its widest
/// axis; objects go to every side they overlap. Each node carries both its
/// disjoint `region` (the R+ invariant, used for deduplication — regions of
/// the leaves partition the root region, so any point belongs to exactly one
/// leaf) and its tight content `mbr` (used for traversal pruning).
class RPlusTree {
 public:
  struct Node {
    /// Disjoint partition cell owned by this node (half-open semantics
    /// against siblings; the helpers below handle the boundary).
    Box region;
    /// Tight MBR of the content (may poke out of `region`: an object
    /// overlapping the region may extend beyond it).
    Box mbr;
    /// Children range in child_ids() for inner nodes; item range in
    /// item_ids() for leaves.
    uint32_t begin = 0;
    uint32_t count = 0;
    uint8_t level = 0;

    bool IsLeaf() const { return level == 0; }
  };

  /// Builds the tree; leaves hold at most `leaf_capacity` placements.
  RPlusTree(std::span<const Box> boxes, size_t leaf_capacity);

  /// Number of distinct indexed objects (not placements).
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Total placements; placements - size() = duplicated entries.
  size_t placements() const { return item_ids_.size(); }

  uint32_t root() const { return root_; }
  std::span<const Node> nodes() const { return nodes_; }
  std::span<const uint32_t> child_ids() const { return child_ids_; }
  std::span<const uint32_t> item_ids() const { return item_ids_; }
  int height() const { return height_; }

  /// The root region (the dataset MBR); needed for half-open ownership
  /// tests at the domain's upper boundary.
  const Box& domain() const { return domain_; }

  /// Finds all distinct objects intersecting `query` (duplicates from the
  /// multi-placement are filtered internally with a visited mark).
  /// `boxes` must be the span the tree was built from.
  void Query(std::span<const Box> boxes, const Box& query,
             std::vector<uint32_t>* result, JoinStats* stats) const;

  size_t MemoryUsageBytes() const;

 private:
  std::vector<Node> nodes_;
  std::vector<uint32_t> child_ids_;
  std::vector<uint32_t> item_ids_;
  uint32_t root_ = 0;
  int height_ = 0;
  size_t size_ = 0;
  Box domain_;
  mutable std::vector<uint32_t> visited_mark_;
  mutable uint32_t visit_epoch_ = 0;
};

/// Half-open point-in-region test (`lo <= p < hi`), closed on faces lying on
/// the domain's upper boundary — the rule that makes leaf regions partition
/// the domain so each point has exactly one owner.
bool RegionOwnsPoint(const Box& region, const Vec3& p, const Box& domain);

}  // namespace touch

#endif  // TOUCH_INDEX_RPLUS_TREE_H_
