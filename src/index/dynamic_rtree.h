#ifndef TOUCH_INDEX_DYNAMIC_RTREE_H_
#define TOUCH_INDEX_DYNAMIC_RTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/box.h"
#include "util/stats.h"

namespace touch {

/// Insertion policy of the dynamic R-tree.
enum class RTreeVariant {
  /// Guttman's original R-tree (SIGMOD'84): choose-leaf by least volume
  /// enlargement, quadratic node split.
  kGuttman,
  /// R*-tree (Beckmann et al., SIGMOD'90): overlap-minimizing choose-subtree
  /// at the leaf level, forced reinsertion on first overflow per level, and
  /// margin-driven split-axis selection — the paper's example of fighting
  /// node overlap with "an improved node split algorithm (reinsertion of
  /// spatial objects if a node overflows)" (section 2.2.1).
  kRStar,
};

/// Insert-built R-tree over 3D boxes.
///
/// The bulk-loaded `RTree` is what the paper's baselines use; this dynamic
/// tree exists because the paper's related work (R-tree, R*-tree) is defined
/// by insertion-time behaviour, because the seeded-tree experiments need a
/// tree that can grow, and because downstream users of the library may not
/// know their dataset a priori. Supports insertion, deletion and range
/// queries; not thread-safe.
class DynamicRTree {
 public:
  struct Options {
    /// Maximum entries per node (M). Nodes split when they would exceed it.
    uint32_t max_entries = 16;
    /// Minimum entries per node (m <= M/2). Underfull nodes are condensed.
    uint32_t min_entries = 6;
    RTreeVariant variant = RTreeVariant::kGuttman;
    /// R*: fraction of entries evicted on forced reinsertion (30% in the
    /// original paper).
    float reinsert_fraction = 0.3f;
  };

  DynamicRTree() : DynamicRTree(Options()) {}
  explicit DynamicRTree(const Options& options);

  /// Inserts a box under key `id`. Ids need not be unique or dense; they are
  /// returned verbatim by queries.
  void Insert(uint32_t id, const Box& box);

  /// Removes one entry that has this exact id and box. Returns false when no
  /// such entry exists. Underfull nodes along the path are dissolved and
  /// their entries reinserted (Guttman's CondenseTree).
  bool Remove(uint32_t id, const Box& box);

  /// Moves/resizes one entry that has this exact id and old box — the
  /// RTUpdateDimensions surface of the classic R-tree APIs. When `new_box`
  /// still fits inside the leaf's MBR the entry is rewritten in place (with
  /// an upward MBR tighten); otherwise it degrades to Remove + Insert so
  /// tree quality does not erode under large moves. Returns false (tree
  /// unchanged) when no such entry exists.
  bool Update(uint32_t id, const Box& old_box, const Box& new_box);

  /// Invokes `emit(id, box)` for every stored entry whose box intersects
  /// `query`. Object-level tests are counted in stats->comparisons,
  /// node-level tests in stats->node_comparisons (stats may be null).
  template <typename Emit>
  void Query(const Box& query, Emit&& emit, JoinStats* stats = nullptr) const {
    if (size_ == 0) return;
    QueryNode(root_, query, emit, stats);
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Number of levels (0 when empty, 1 for a root-leaf).
  int height() const { return size_ == 0 ? 0 : nodes_[root_].level + 1; }

  /// MBR of the whole tree (empty box when the tree is empty).
  Box bounds() const;

  /// Exact bytes held by the structure (nodes + entry vectors).
  size_t MemoryUsageBytes() const;

  /// Preorder walk for conversion/inspection: `enter(mbr, level, is_leaf,
  /// child_count)` on entering a node, `item(id, box)` per leaf entry,
  /// `exit()` when the node's subtree is done. No-op on an empty tree.
  template <typename EnterFn, typename ItemFn, typename ExitFn>
  void VisitNodes(EnterFn&& enter, ItemFn&& item, ExitFn&& exit) const {
    if (size_ == 0) return;
    const auto walk = [&](auto&& self, uint32_t node_id) -> void {
      const Node& node = nodes_[node_id];
      enter(node.mbr, node.level, node.IsLeaf(), node.entries.size());
      for (const Entry& e : node.entries) {
        if (node.IsLeaf()) {
          item(e.id, e.mbr);
        } else {
          self(self, e.id);
        }
      }
      exit();
    };
    walk(walk, root_);
  }

  /// Validates structural invariants (MBR containment, fill factors, uniform
  /// leaf depth); returns false and stops at the first violation. Test hook.
  bool CheckInvariants() const;

  /// Sum of volumes of sibling-MBR pairwise intersections across all inner
  /// nodes: the "overlap" the R*-tree heuristics minimize. Diagnostic used
  /// by tests and the bulkload ablation bench.
  double TotalSiblingOverlapVolume() const;

 private:
  struct Entry {
    Box mbr;
    /// Child node id for inner nodes, user id for leaves.
    uint32_t id = 0;
  };
  struct Node {
    Box mbr = Box::Empty();
    std::vector<Entry> entries;
    int32_t parent = -1;
    uint8_t level = 0;  // 0 = leaf

    bool IsLeaf() const { return level == 0; }
  };

  uint32_t AllocNode(uint8_t level);
  void RecomputeMbr(uint32_t node_id);
  /// Recomputes the MBR of `node_id` and of every ancestor, refreshing the
  /// cached entry copy each parent holds for its child on the way up.
  void SyncUpward(uint32_t node_id);
  uint32_t ChooseSubtree(const Box& box, uint8_t target_level) const;
  void InsertEntry(const Entry& entry, uint8_t target_level, int depth);
  /// Handles an overflowing node: R* forced reinsertion (once per level per
  /// top-level insertion) or a split, propagating upward.
  void HandleOverflow(uint32_t node_id, int depth);
  void SplitNode(uint32_t node_id);
  /// Quadratic pick-seeds + pick-next (Guttman).
  void QuadraticSplit(std::vector<Entry>& entries, std::vector<Entry>* left,
                      std::vector<Entry>* right) const;
  /// Margin-minimizing axis choice + overlap-minimizing distribution (R*).
  void RStarSplit(std::vector<Entry>& entries, std::vector<Entry>* left,
                  std::vector<Entry>* right) const;
  void CondenseTree(uint32_t node_id);

  template <typename Emit>
  void QueryNode(uint32_t node_id, const Box& query, Emit&& emit,
                 JoinStats* stats) const {
    const Node& node = nodes_[node_id];
    for (const Entry& entry : node.entries) {
      if (stats != nullptr) {
        if (node.IsLeaf()) {
          ++stats->comparisons;
        } else {
          ++stats->node_comparisons;
        }
      }
      if (!Intersects(entry.mbr, query)) continue;
      if (node.IsLeaf()) {
        emit(entry.id, entry.mbr);
      } else {
        QueryNode(entry.id, query, emit, stats);
      }
    }
  }

  Options options_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> free_nodes_;
  uint32_t root_ = 0;
  size_t size_ = 0;
  /// Levels that already used forced reinsertion during the current
  /// top-level Insert (R* applies it once per level per insertion).
  std::vector<bool> reinserted_levels_;
};

}  // namespace touch

#endif  // TOUCH_INDEX_DYNAMIC_RTREE_H_
