#ifndef TOUCH_INDEX_HILBERT_H_
#define TOUCH_INDEX_HILBERT_H_

#include <array>
#include <cstdint>
#include <span>

#include "geom/box.h"
#include "index/str.h"

namespace touch {

/// Number of bits per dimension used by the 3D Hilbert encoding; 3*21 = 63
/// bits fit a uint64_t key.
inline constexpr int kHilbertOrder = 21;

/// Maps a 3D lattice point to its index along the order-`order` Hilbert
/// curve. Coordinates must be < 2^order; `order` must be in [1, 21].
///
/// This is the key ingredient of Hilbert R-tree bulk loading (Kamel &
/// Faloutsos, VLDB'94), the construction the paper names as performing on par
/// with STR for real-world data (section 2.2.1). The implementation is
/// Skilling's transpose algorithm: Gray-code the axes into the curve index.
uint64_t HilbertIndex(uint32_t x, uint32_t y, uint32_t z,
                      int order = kHilbertOrder);

/// Inverse of HilbertIndex: the lattice point at distance `d` along the
/// curve. Used by tests to verify the encoding is a bijection that makes
/// unit steps (the defining property of the Hilbert curve).
std::array<uint32_t, 3> HilbertPoint(uint64_t d, int order = kHilbertOrder);

/// Hilbert key of a box: the curve index of its center, quantized onto the
/// order-21 lattice over `space`. Degenerate space extents collapse to
/// lattice coordinate 0 on that axis.
uint64_t HilbertCode(const Box& box, const Box& space);

/// Hilbert-sort bulk packing: sorts the boxes by the Hilbert key of their
/// centers (over their joint MBR) and chops the order into buckets of at
/// most `bucket_size`. Drop-in alternative to StrPartition; reuses the same
/// result type so both plug into the R-tree bulk loader and the TOUCH
/// partitioning phase.
StrPartitioning HilbertPartition(std::span<const Box> boxes,
                                 size_t bucket_size);

}  // namespace touch

#endif  // TOUCH_INDEX_HILBERT_H_
