#include "index/rplus_tree.h"

#include <algorithm>

#include "util/memory.h"

namespace touch {
namespace {

/// Construction-time node; flattened into the arena afterwards.
struct TmpNode {
  Box region;
  Box mbr = Box::Empty();
  std::vector<uint32_t> children;
  std::vector<uint32_t> items;
  uint8_t level = 0;
};

float AxisValue(const Vec3& v, int axis) {
  return axis == 0 ? v.x : axis == 1 ? v.y : v.z;
}

}  // namespace

bool RegionOwnsPoint(const Box& region, const Vec3& p, const Box& domain) {
  const auto axis_ok = [](float lo, float hi, float v, float domain_hi) {
    return v >= lo && (v < hi || (hi == domain_hi && v <= hi));
  };
  return axis_ok(region.lo.x, region.hi.x, p.x, domain.hi.x) &&
         axis_ok(region.lo.y, region.hi.y, p.y, domain.hi.y) &&
         axis_ok(region.lo.z, region.hi.z, p.z, domain.hi.z);
}

RPlusTree::RPlusTree(std::span<const Box> boxes, size_t leaf_capacity) {
  size_ = boxes.size();
  leaf_capacity = std::max<size_t>(1, leaf_capacity);
  if (boxes.empty()) return;

  domain_ = Box::Empty();
  for (const Box& box : boxes) domain_.ExpandToContain(box);

  std::vector<TmpNode> tmp;

  // Recursive top-down build. Returns the TmpNode index.
  const auto build = [&](auto&& self, const Box& region,
                         std::vector<uint32_t> ids) -> uint32_t {
    const uint32_t id = static_cast<uint32_t>(tmp.size());
    tmp.emplace_back();
    tmp[id].region = region;
    for (const uint32_t obj : ids) tmp[id].mbr.ExpandToContain(boxes[obj]);

    bool split_ok = ids.size() > leaf_capacity;
    if (split_ok) {
      // Median cut on the region's widest axis. The median is taken over
      // the *centers clamped into the region* so duplicated placements
      // (whose boxes extend past the region) cannot drag the plane outside.
      const Vec3 extent = region.Extent();
      int axis = 0;
      if (extent.y > AxisValue(extent, axis)) axis = 1;
      if (extent.z > AxisValue(extent, axis)) axis = 2;

      std::vector<float> centers;
      centers.reserve(ids.size());
      for (const uint32_t obj : ids) {
        centers.push_back(std::clamp(AxisValue(boxes[obj].Center(), axis),
                                     AxisValue(region.lo, axis),
                                     AxisValue(region.hi, axis)));
      }
      std::nth_element(centers.begin(),
                       centers.begin() + static_cast<ptrdiff_t>(
                                             centers.size() / 2),
                       centers.end());
      const float split = centers[centers.size() / 2];
      split_ok = split > AxisValue(region.lo, axis) &&
                 split < AxisValue(region.hi, axis);
      if (split_ok) {
        Box lo_region = region;
        Box hi_region = region;
        if (axis == 0) {
          lo_region.hi.x = split;
          hi_region.lo.x = split;
        } else if (axis == 1) {
          lo_region.hi.y = split;
          hi_region.lo.y = split;
        } else {
          lo_region.hi.z = split;
          hi_region.lo.z = split;
        }
        // Duplicate objects into every side they overlap (the half-open
        // ownership rule later picks one side per point, but an object can
        // legitimately live on both).
        std::vector<uint32_t> lo_ids;
        std::vector<uint32_t> hi_ids;
        for (const uint32_t obj : ids) {
          if (AxisValue(boxes[obj].lo, axis) < split) lo_ids.push_back(obj);
          if (AxisValue(boxes[obj].hi, axis) >= split) hi_ids.push_back(obj);
        }
        // No-progress guard (all objects straddle the plane): fall through
        // to a leaf instead of recursing forever.
        if (lo_ids.size() < ids.size() || hi_ids.size() < ids.size()) {
          ids.clear();
          ids.shrink_to_fit();
          const uint32_t lo_child =
              self(self, lo_region, std::move(lo_ids));
          const uint32_t hi_child =
              self(self, hi_region, std::move(hi_ids));
          tmp[id].children = {lo_child, hi_child};
          tmp[id].level = static_cast<uint8_t>(
              1 + std::max(tmp[lo_child].level, tmp[hi_child].level));
          return id;
        }
      }
    }

    tmp[id].items = std::move(ids);
    tmp[id].level = 0;
    return id;
  };

  std::vector<uint32_t> all_ids(boxes.size());
  for (uint32_t i = 0; i < boxes.size(); ++i) all_ids[i] = i;
  const uint32_t tmp_root = build(build, domain_, std::move(all_ids));

  // Flatten (preorder, contiguous child ranges).
  nodes_.reserve(tmp.size());
  const auto flatten = [&](auto&& self, uint32_t id) -> uint32_t {
    const TmpNode& node = tmp[id];
    const uint32_t out = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
    nodes_[out].region = node.region;
    nodes_[out].mbr = node.mbr;
    nodes_[out].level = node.level;
    if (node.children.empty()) {
      nodes_[out].begin = static_cast<uint32_t>(item_ids_.size());
      nodes_[out].count = static_cast<uint32_t>(node.items.size());
      item_ids_.insert(item_ids_.end(), node.items.begin(), node.items.end());
      return out;
    }
    const uint32_t child_begin = static_cast<uint32_t>(child_ids_.size());
    nodes_[out].begin = child_begin;
    nodes_[out].count = static_cast<uint32_t>(node.children.size());
    child_ids_.resize(child_ids_.size() + node.children.size());
    for (size_t i = 0; i < node.children.size(); ++i) {
      child_ids_[child_begin + i] = self(self, node.children[i]);
    }
    return out;
  };
  root_ = flatten(flatten, tmp_root);
  height_ = nodes_[root_].level + 1;
  visited_mark_.assign(boxes.size(), 0);
}

void RPlusTree::Query(std::span<const Box> boxes, const Box& query,
                      std::vector<uint32_t>* result, JoinStats* stats) const {
  result->clear();
  if (empty()) return;
  ++visit_epoch_;
  const auto walk = [&](auto&& self, uint32_t node_id) -> void {
    const Node& node = nodes_[node_id];
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
        const uint32_t obj = item_ids_[i];
        if (visited_mark_[obj] == visit_epoch_) continue;  // duplicate
        if (stats != nullptr) ++stats->comparisons;
        if (Intersects(boxes[obj], query)) {
          visited_mark_[obj] = visit_epoch_;
          result->push_back(obj);
        }
      }
      return;
    }
    for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
      const uint32_t child = child_ids_[i];
      if (stats != nullptr) ++stats->node_comparisons;
      if (Intersects(nodes_[child].mbr, query)) self(self, child);
    }
  };
  walk(walk, root_);
}

size_t RPlusTree::MemoryUsageBytes() const {
  return VectorBytes(nodes_) + VectorBytes(child_ids_) +
         VectorBytes(item_ids_) + VectorBytes(visited_mark_);
}

}  // namespace touch
