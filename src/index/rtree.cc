#include "index/rtree.h"

#include <algorithm>

#include "index/dynamic_rtree.h"
#include "index/hilbert.h"
#include "index/tgs.h"
#include "util/memory.h"

namespace touch {
namespace {

StrPartitioning Pack(std::span<const Box> boxes, size_t bucket_size,
                     BulkLoadMethod method) {
  switch (method) {
    case BulkLoadMethod::kHilbert:
      return HilbertPartition(boxes, bucket_size);
    case BulkLoadMethod::kTgs:
      return TgsPartition(boxes, bucket_size);
    case BulkLoadMethod::kStr:
      break;
  }
  return StrPartition(boxes, bucket_size);
}

}  // namespace

RTree::RTree(std::span<const Box> boxes, size_t leaf_capacity, size_t fanout,
             BulkLoadMethod method) {
  leaf_capacity = std::max<size_t>(1, leaf_capacity);
  fanout = std::max<size_t>(1, fanout);
  if (boxes.empty()) return;

  // Level 0: pack objects into leaves.
  const StrPartitioning leaves = Pack(boxes, leaf_capacity, method);
  item_ids_ = leaves.order;
  std::vector<uint32_t> current_level;  // node ids of the level being built
  current_level.reserve(leaves.NumBuckets());
  for (size_t b = 0; b < leaves.NumBuckets(); ++b) {
    Node node;
    node.mbr = BucketMbr(boxes, leaves.Bucket(b));
    node.begin = leaves.bucket_begin[b];
    node.count = leaves.bucket_begin[b + 1] - leaves.bucket_begin[b];
    node.level = 0;
    current_level.push_back(static_cast<uint32_t>(nodes_.size()));
    nodes_.push_back(node);
  }
  height_ = 1;

  // Upper levels: pack the node MBRs of the previous level into parents of
  // `fanout` children until a single root remains.
  while (current_level.size() > 1) {
    std::vector<Box> level_mbrs;
    level_mbrs.reserve(current_level.size());
    for (uint32_t id : current_level) level_mbrs.push_back(nodes_[id].mbr);

    const StrPartitioning packed = Pack(level_mbrs, fanout, method);
    std::vector<uint32_t> next_level;
    next_level.reserve(packed.NumBuckets());
    for (size_t b = 0; b < packed.NumBuckets(); ++b) {
      Node node;
      node.mbr = Box::Empty();
      node.begin = static_cast<uint32_t>(child_ids_.size());
      node.count = static_cast<uint32_t>(packed.Bucket(b).size());
      node.level = static_cast<uint8_t>(height_);
      for (uint32_t local : packed.Bucket(b)) {
        const uint32_t child = current_level[local];
        child_ids_.push_back(child);
        node.mbr.ExpandToContain(nodes_[child].mbr);
      }
      next_level.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(node);
    }
    current_level = std::move(next_level);
    ++height_;
  }
  root_ = current_level.front();
}

RTree RTree::FromDynamic(const DynamicRTree& tree) {
  RTree flat;
  if (tree.empty()) return flat;
  flat.height_ = tree.height();

  // Preorder DFS through the dynamic tree's visitor; parents pre-reserve a
  // contiguous child range and fill it slot by slot as children are entered.
  std::vector<uint32_t> node_stack;  // flat ids of the current DFS path
  std::vector<uint32_t> next_slot;   // next child slot to fill, per level
  tree.VisitNodes(
      [&](const Box& mbr, uint8_t level, bool is_leaf, size_t child_count) {
        const uint32_t id = static_cast<uint32_t>(flat.nodes_.size());
        Node node;
        node.mbr = mbr;
        node.level = level;
        if (is_leaf) {
          node.begin = static_cast<uint32_t>(flat.item_ids_.size());
          node.count = 0;  // items appended by the item callback
        } else {
          node.begin = static_cast<uint32_t>(flat.child_ids_.size());
          node.count = static_cast<uint32_t>(child_count);
          flat.child_ids_.resize(flat.child_ids_.size() + child_count);
        }
        flat.nodes_.push_back(node);
        if (!node_stack.empty()) {
          const Node& parent = flat.nodes_[node_stack.back()];
          flat.child_ids_[parent.begin + next_slot.back()] = id;
          ++next_slot.back();
        }
        node_stack.push_back(id);
        next_slot.push_back(0);
      },
      [&](uint32_t item_id, const Box&) {
        flat.item_ids_.push_back(item_id);
        ++flat.nodes_[node_stack.back()].count;
      },
      [&] {
        node_stack.pop_back();
        next_slot.pop_back();
      });
  flat.root_ = 0;  // preorder: the root is emitted first
  return flat;
}

size_t RTree::MemoryUsageBytes() const {
  return VectorBytes(nodes_) + VectorBytes(child_ids_) + VectorBytes(item_ids_);
}

}  // namespace touch
