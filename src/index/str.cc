#include "index/str.h"

#include <algorithm>
#include <cmath>

namespace touch {
namespace {

// Sorts ids[begin, end) by box center along `axis`.
void SortByCenter(std::span<const Box> boxes, std::vector<uint32_t>& ids,
                  size_t begin, size_t end, int axis) {
  std::sort(ids.begin() + static_cast<ptrdiff_t>(begin),
            ids.begin() + static_cast<ptrdiff_t>(end),
            [boxes, axis](uint32_t a, uint32_t b) {
              const float ca = boxes[a].lo[axis] + boxes[a].hi[axis];
              const float cb = boxes[b].lo[axis] + boxes[b].hi[axis];
              if (ca != cb) return ca < cb;
              return a < b;  // deterministic tie-break
            });
}

}  // namespace

StrPartitioning StrPartition(std::span<const Box> boxes, size_t bucket_size) {
  StrPartitioning out;
  const size_t n = boxes.size();
  if (bucket_size == 0) bucket_size = 1;
  out.order.resize(n);
  for (size_t i = 0; i < n; ++i) out.order[i] = static_cast<uint32_t>(i);
  if (n == 0) {
    out.bucket_begin.push_back(0);
    return out;
  }

  const size_t num_buckets = (n + bucket_size - 1) / bucket_size;
  // S slabs per dimension, S = ceil(P^(1/3)).
  const size_t s = std::max<size_t>(
      1, static_cast<size_t>(
             std::ceil(std::cbrt(static_cast<double>(num_buckets)) - 1e-9)));
  const size_t slab_x = bucket_size * s * s;  // objects per x-slab

  SortByCenter(boxes, out.order, 0, n, /*axis=*/0);
  out.bucket_begin.push_back(0);
  for (size_t x0 = 0; x0 < n; x0 += slab_x) {
    const size_t x1 = std::min(n, x0 + slab_x);
    SortByCenter(boxes, out.order, x0, x1, /*axis=*/1);
    const size_t slab_y = bucket_size * s;
    for (size_t y0 = x0; y0 < x1; y0 += slab_y) {
      const size_t y1 = std::min(x1, y0 + slab_y);
      SortByCenter(boxes, out.order, y0, y1, /*axis=*/2);
      for (size_t z0 = y0; z0 < y1; z0 += bucket_size) {
        const size_t z1 = std::min(y1, z0 + bucket_size);
        out.bucket_begin.push_back(static_cast<uint32_t>(z1));
      }
    }
  }
  return out;
}

Box BucketMbr(std::span<const Box> boxes, std::span<const uint32_t> ids) {
  Box mbr = Box::Empty();
  for (uint32_t id : ids) mbr.ExpandToContain(boxes[id]);
  return mbr;
}

}  // namespace touch
