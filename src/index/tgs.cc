#include "index/tgs.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

namespace touch {
namespace {

/// Sorts `ids` in place by box center along `axis`.
void SortByCenter(std::span<const Box> boxes, std::span<uint32_t> ids,
                  int axis) {
  const auto center = [&](uint32_t id) {
    const Vec3 c = boxes[id].Center();
    return axis == 0 ? c.x : axis == 1 ? c.y : c.z;
  };
  std::sort(ids.begin(), ids.end(), [&](uint32_t a, uint32_t b) {
    const float ca = center(a);
    const float cb = center(b);
    return ca != cb ? ca < cb : a < b;
  });
}

/// Greedy binary split of ids[begin, end): tries every axis and every
/// bucket-aligned cut, keeps the one minimizing the volume sum of the two
/// sides, and recurses. Ranges of at most bucket_size become buckets.
void SplitRecursive(std::span<const Box> boxes, std::vector<uint32_t>& ids,
                    size_t begin, size_t end, size_t bucket_size,
                    std::vector<uint32_t>* bucket_begin) {
  const size_t count = end - begin;
  if (count <= bucket_size) {
    bucket_begin->push_back(static_cast<uint32_t>(begin));
    return;
  }

  // Number of buckets on the left side of the cut: 1 .. ceil(count/bs) - 1.
  const size_t total_buckets = (count + bucket_size - 1) / bucket_size;

  int best_axis = 0;
  size_t best_cut = bucket_size;
  double best_cost = std::numeric_limits<double>::infinity();
  std::vector<uint32_t> best_order;

  std::vector<uint32_t> scratch(ids.begin() + static_cast<ptrdiff_t>(begin),
                                ids.begin() + static_cast<ptrdiff_t>(end));
  std::vector<Box> suffix_mbr(count + 1, Box::Empty());
  for (int axis = 0; axis < 3; ++axis) {
    SortByCenter(boxes, scratch, axis);
    // Suffix MBRs once, prefix MBR built incrementally while scanning cuts.
    for (size_t i = count; i-- > 0;) {
      suffix_mbr[i] = suffix_mbr[i + 1];
      suffix_mbr[i].ExpandToContain(boxes[scratch[i]]);
    }
    Box prefix = Box::Empty();
    size_t next_cut = bucket_size;
    for (size_t i = 0; i < count; ++i) {
      prefix.ExpandToContain(boxes[scratch[i]]);
      if (i + 1 == next_cut && next_cut < total_buckets * bucket_size &&
          next_cut < count) {
        const double cost = prefix.Volume() + suffix_mbr[i + 1].Volume();
        if (cost < best_cost) {
          best_cost = cost;
          best_axis = axis;
          best_cut = next_cut;
          best_order = scratch;
        }
        next_cut += bucket_size;
      }
    }
  }
  (void)best_axis;

  std::copy(best_order.begin(), best_order.end(),
            ids.begin() + static_cast<ptrdiff_t>(begin));
  SplitRecursive(boxes, ids, begin, begin + best_cut, bucket_size,
                 bucket_begin);
  SplitRecursive(boxes, ids, begin + best_cut, end, bucket_size,
                 bucket_begin);
}

}  // namespace

StrPartitioning TgsPartition(std::span<const Box> boxes, size_t bucket_size) {
  StrPartitioning result;
  if (boxes.empty()) {
    result.bucket_begin.push_back(0);
    return result;
  }
  bucket_size = std::max<size_t>(1, bucket_size);

  result.order.resize(boxes.size());
  std::iota(result.order.begin(), result.order.end(), 0u);
  SplitRecursive(boxes, result.order, 0, boxes.size(), bucket_size,
                 &result.bucket_begin);
  result.bucket_begin.push_back(static_cast<uint32_t>(boxes.size()));
  return result;
}

}  // namespace touch
