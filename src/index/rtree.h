#ifndef TOUCH_INDEX_RTREE_H_
#define TOUCH_INDEX_RTREE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/box.h"
#include "index/str.h"
#include "util/stats.h"

namespace touch {

/// How the read-only R-tree packs objects (and node MBRs on upper levels)
/// into nodes. STR is the paper's choice; Hilbert-sort packing (Kamel &
/// Faloutsos, VLDB'94) is the other bulk loader the paper names as
/// comparable on real-world data (section 2.2.1).
enum class BulkLoadMethod {
  kStr,
  kHilbert,
  kTgs,
};

/// Bulk-loaded, read-only R-tree over a dataset of boxes.
///
/// This is the index behind the paper's two "one/both datasets indexed"
/// baselines: the indexed nested loop join queries one such tree per probe
/// object, and the synchronous-traversal join (Brinkhoff et al., SIGMOD'93)
/// walks two of them in lockstep. Bulk loading uses STR at every level, which
/// the paper singles out as the best-performing R-tree construction for
/// non-extreme data.
///
/// Nodes live in one arena vector; children id lists live in a second flat
/// vector, so the tree is cache-friendly and its memory footprint is exact.
class RTree {
 public:
  struct Node {
    Box mbr;
    /// For inner nodes: range in child_ids(); for leaves: range in item_ids().
    uint32_t begin = 0;
    uint32_t count = 0;
    /// 0 for leaves, parent level = child level + 1.
    uint8_t level = 0;

    bool IsLeaf() const { return level == 0; }
  };

  /// Builds the tree. `leaf_capacity` objects per leaf, `fanout` children per
  /// inner node (both >= 1; a fanout of 2 with 2KB nodes is the paper's best
  /// configuration for the R-tree baselines).
  RTree(std::span<const Box> boxes, size_t leaf_capacity, size_t fanout,
        BulkLoadMethod method = BulkLoadMethod::kStr);

  /// Flattens an insertion-built DynamicRTree into the read-only arena
  /// layout, so the synchronous-traversal join can run over trees built the
  /// way the paper's 1984/1990-era baselines build them (section 2.2.1).
  /// The dynamic tree's entry ids must be indices into the dataset span the
  /// flat tree will be queried/joined with.
  static RTree FromDynamic(const class DynamicRTree& tree);

  /// Number of indexed objects.
  size_t size() const { return item_ids_.size(); }
  bool empty() const { return item_ids_.empty(); }

  /// Index of the root node in nodes(); only valid when !empty().
  uint32_t root() const { return root_; }
  std::span<const Node> nodes() const { return nodes_; }
  std::span<const uint32_t> child_ids() const { return child_ids_; }
  std::span<const uint32_t> item_ids() const { return item_ids_; }

  /// Height: number of levels (1 for a single-leaf tree, 0 when empty).
  int height() const { return height_; }

  /// Finds all indexed objects whose box intersects `query`, invoking
  /// `emit(object_id)` for each. Object-level intersection tests are counted
  /// in stats->comparisons, node-level tests in stats->node_comparisons.
  /// `boxes` must be the span the tree was built from.
  template <typename Emit>
  void Query(std::span<const Box> boxes, const Box& query, Emit&& emit,
             JoinStats* stats) const {
    if (empty()) return;
    QueryNode(boxes, root_, query, emit, stats);
  }

  /// Exact bytes held by the index structures.
  size_t MemoryUsageBytes() const;

 private:
  RTree() = default;  // used by FromDynamic

  template <typename Emit>
  void QueryNode(std::span<const Box> boxes, uint32_t node_id,
                 const Box& query, Emit&& emit, JoinStats* stats) const {
    const Node& node = nodes_[node_id];
    if (node.IsLeaf()) {
      for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
        const uint32_t object_id = item_ids_[i];
        ++stats->comparisons;
        if (Intersects(boxes[object_id], query)) emit(object_id);
      }
      return;
    }
    for (uint32_t i = node.begin; i < node.begin + node.count; ++i) {
      const uint32_t child = child_ids_[i];
      ++stats->node_comparisons;
      if (Intersects(nodes_[child].mbr, query)) {
        QueryNode(boxes, child, query, emit, stats);
      }
    }
  }

  std::vector<Node> nodes_;
  std::vector<uint32_t> child_ids_;
  std::vector<uint32_t> item_ids_;
  uint32_t root_ = 0;
  int height_ = 0;
};

}  // namespace touch

#endif  // TOUCH_INDEX_RTREE_H_
