#include "index/dynamic_rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/memory.h"

namespace touch {
namespace {

/// Volume increase of `mbr` if it were to also enclose `box`.
double Enlargement(const Box& mbr, const Box& box) {
  return Union(mbr, box).Volume() - mbr.Volume();
}

/// Overlap of `box` with every box in `others` except index `skip`.
double OverlapWith(const Box& box, std::span<const Box> others, size_t skip) {
  double overlap = 0;
  for (size_t i = 0; i < others.size(); ++i) {
    if (i == skip) continue;
    overlap += Intersection(box, others[i]).Volume();
  }
  return overlap;
}

}  // namespace

DynamicRTree::DynamicRTree(const Options& options) : options_(options) {
  options_.max_entries = std::max<uint32_t>(2, options_.max_entries);
  options_.min_entries =
      std::clamp<uint32_t>(options_.min_entries, 1, options_.max_entries / 2);
  root_ = AllocNode(0);
}

uint32_t DynamicRTree::AllocNode(uint8_t level) {
  if (!free_nodes_.empty()) {
    const uint32_t id = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[id] = Node{};
    nodes_[id].level = level;
    return id;
  }
  nodes_.emplace_back();
  nodes_.back().level = level;
  return static_cast<uint32_t>(nodes_.size() - 1);
}

void DynamicRTree::RecomputeMbr(uint32_t node_id) {
  Node& node = nodes_[node_id];
  node.mbr = Box::Empty();
  for (const Entry& e : node.entries) node.mbr.ExpandToContain(e.mbr);
}

void DynamicRTree::SyncUpward(uint32_t node_id) {
  int32_t current = static_cast<int32_t>(node_id);
  while (current >= 0) {
    RecomputeMbr(static_cast<uint32_t>(current));
    const int32_t parent = nodes_[current].parent;
    if (parent >= 0) {
      for (Entry& e : nodes_[parent].entries) {
        if (e.id == static_cast<uint32_t>(current)) {
          e.mbr = nodes_[current].mbr;
          break;
        }
      }
    }
    current = parent;
  }
}

Box DynamicRTree::bounds() const {
  return size_ == 0 ? Box::Empty() : nodes_[root_].mbr;
}

uint32_t DynamicRTree::ChooseSubtree(const Box& box,
                                     uint8_t target_level) const {
  uint32_t current = root_;
  while (nodes_[current].level > target_level) {
    const Node& node = nodes_[current];
    const bool children_are_leaves = node.level == 1;

    size_t best = 0;
    if (options_.variant == RTreeVariant::kRStar && children_are_leaves) {
      // R*: among the children, pick the one whose overlap with its siblings
      // grows least when enlarged to cover `box`; break ties by volume
      // enlargement, then by volume.
      std::vector<Box> child_mbrs(node.entries.size());
      for (size_t i = 0; i < node.entries.size(); ++i) {
        child_mbrs[i] = node.entries[i].mbr;
      }
      double best_overlap_delta = std::numeric_limits<double>::infinity();
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_volume = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < node.entries.size(); ++i) {
        const Box enlarged = Union(child_mbrs[i], box);
        const double overlap_delta =
            OverlapWith(enlarged, child_mbrs, i) -
            OverlapWith(child_mbrs[i], child_mbrs, i);
        const double enlargement = Enlargement(child_mbrs[i], box);
        const double volume = child_mbrs[i].Volume();
        if (overlap_delta < best_overlap_delta ||
            (overlap_delta == best_overlap_delta &&
             (enlargement < best_enlargement ||
              (enlargement == best_enlargement && volume < best_volume)))) {
          best = i;
          best_overlap_delta = overlap_delta;
          best_enlargement = enlargement;
          best_volume = volume;
        }
      }
    } else {
      // Guttman (and R* above the leaf level): least volume enlargement,
      // ties by smallest volume.
      double best_enlargement = std::numeric_limits<double>::infinity();
      double best_volume = std::numeric_limits<double>::infinity();
      for (size_t i = 0; i < node.entries.size(); ++i) {
        const double enlargement = Enlargement(node.entries[i].mbr, box);
        const double volume = node.entries[i].mbr.Volume();
        if (enlargement < best_enlargement ||
            (enlargement == best_enlargement && volume < best_volume)) {
          best = i;
          best_enlargement = enlargement;
          best_volume = volume;
        }
      }
    }
    current = node.entries[best].id;
  }
  return current;
}

void DynamicRTree::Insert(uint32_t id, const Box& box) {
  reinserted_levels_.assign(nodes_[root_].level + 1, false);
  InsertEntry(Entry{box, id}, 0, 0);
  ++size_;
}

void DynamicRTree::InsertEntry(const Entry& entry, uint8_t target_level,
                               int depth) {
  const uint32_t node_id = ChooseSubtree(entry.mbr, target_level);
  Node& node = nodes_[node_id];
  node.entries.push_back(entry);
  if (!node.IsLeaf()) nodes_[entry.id].parent = static_cast<int32_t>(node_id);
  SyncUpward(node_id);

  if (nodes_[node_id].entries.size() > options_.max_entries) {
    HandleOverflow(node_id, depth);
  }
}

void DynamicRTree::HandleOverflow(uint32_t node_id, int depth) {
  Node& node = nodes_[node_id];
  const uint8_t level = node.level;
  const bool is_root = node.parent < 0;

  if (options_.variant == RTreeVariant::kRStar && !is_root &&
      level < reinserted_levels_.size() && !reinserted_levels_[level] &&
      depth < 8) {
    // Forced reinsertion: evict the entries farthest from the node's center
    // and insert them again from the top. `depth` caps recursion so
    // pathological inputs cannot reinsert forever.
    reinserted_levels_[level] = true;
    const Vec3 center = node.mbr.Center();
    std::vector<Entry> entries = std::move(node.entries);
    node.entries.clear();
    std::sort(entries.begin(), entries.end(),
              [&](const Entry& a, const Entry& b) {
                return (a.mbr.Center() - center).LengthSquared() <
                       (b.mbr.Center() - center).LengthSquared();
              });
    const size_t keep =
        entries.size() -
        std::max<size_t>(1, static_cast<size_t>(std::floor(
                                static_cast<float>(entries.size()) *
                                options_.reinsert_fraction)));
    std::vector<Entry> evicted(entries.begin() + keep, entries.end());
    entries.resize(keep);
    node.entries = std::move(entries);
    for (const Entry& e : node.entries) {
      if (!node.IsLeaf()) nodes_[e.id].parent = static_cast<int32_t>(node_id);
    }
    SyncUpward(node_id);
    for (const Entry& e : evicted) InsertEntry(e, level, depth + 1);
    return;
  }

  SplitNode(node_id);
}

void DynamicRTree::SplitNode(uint32_t node_id) {
  std::vector<Entry> entries = std::move(nodes_[node_id].entries);
  nodes_[node_id].entries.clear();

  std::vector<Entry> left;
  std::vector<Entry> right;
  if (options_.variant == RTreeVariant::kRStar) {
    RStarSplit(entries, &left, &right);
  } else {
    QuadraticSplit(entries, &left, &right);
  }

  const uint8_t level = nodes_[node_id].level;
  const uint32_t sibling_id = AllocNode(level);

  nodes_[node_id].entries = std::move(left);
  nodes_[sibling_id].entries = std::move(right);
  RecomputeMbr(node_id);
  RecomputeMbr(sibling_id);
  if (level > 0) {
    for (const Entry& e : nodes_[node_id].entries) {
      nodes_[e.id].parent = static_cast<int32_t>(node_id);
    }
    for (const Entry& e : nodes_[sibling_id].entries) {
      nodes_[e.id].parent = static_cast<int32_t>(sibling_id);
    }
  }

  const int32_t parent = nodes_[node_id].parent;
  if (parent < 0) {
    // Root split: grow the tree by one level.
    const uint32_t new_root = AllocNode(level + 1);
    nodes_[new_root].entries.push_back(
        Entry{nodes_[node_id].mbr, node_id});
    nodes_[new_root].entries.push_back(
        Entry{nodes_[sibling_id].mbr, sibling_id});
    nodes_[node_id].parent = static_cast<int32_t>(new_root);
    nodes_[sibling_id].parent = static_cast<int32_t>(new_root);
    RecomputeMbr(new_root);
    root_ = new_root;
    reinserted_levels_.resize(nodes_[root_].level + 1, false);
    return;
  }

  // Replace the split node's entry in the parent and add the sibling.
  Node& parent_node = nodes_[parent];
  for (Entry& e : parent_node.entries) {
    if (e.id == node_id) {
      e.mbr = nodes_[node_id].mbr;
      break;
    }
  }
  parent_node.entries.push_back(Entry{nodes_[sibling_id].mbr, sibling_id});
  nodes_[sibling_id].parent = parent;
  SyncUpward(static_cast<uint32_t>(parent));
  if (nodes_[parent].entries.size() > options_.max_entries) {
    SplitNode(static_cast<uint32_t>(parent));
  }
}

void DynamicRTree::QuadraticSplit(std::vector<Entry>& entries,
                                  std::vector<Entry>* left,
                                  std::vector<Entry>* right) const {
  // PickSeeds: the pair wasting the most volume if placed together.
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = Union(entries[i].mbr, entries[j].mbr).Volume() -
                           entries[i].mbr.Volume() - entries[j].mbr.Volume();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  left->clear();
  right->clear();
  left->push_back(entries[seed_a]);
  right->push_back(entries[seed_b]);
  Box left_mbr = entries[seed_a].mbr;
  Box right_mbr = entries[seed_b].mbr;

  std::vector<bool> taken(entries.size(), false);
  taken[seed_a] = taken[seed_b] = true;
  size_t remaining = entries.size() - 2;

  while (remaining > 0) {
    // If one side must take all remaining entries to reach min fill, do so.
    if (left->size() + remaining == options_.min_entries) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!taken[i]) left->push_back(entries[i]);
      }
      return;
    }
    if (right->size() + remaining == options_.min_entries) {
      for (size_t i = 0; i < entries.size(); ++i) {
        if (!taken[i]) right->push_back(entries[i]);
      }
      return;
    }

    // PickNext: the entry with the greatest preference for one group.
    size_t pick = 0;
    double best_difference = -1;
    double pick_left_cost = 0;
    double pick_right_cost = 0;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (taken[i]) continue;
      const double left_cost = Enlargement(left_mbr, entries[i].mbr);
      const double right_cost = Enlargement(right_mbr, entries[i].mbr);
      const double difference = std::abs(left_cost - right_cost);
      if (difference > best_difference) {
        best_difference = difference;
        pick = i;
        pick_left_cost = left_cost;
        pick_right_cost = right_cost;
      }
    }
    taken[pick] = true;
    --remaining;
    const bool to_left =
        pick_left_cost < pick_right_cost ||
        (pick_left_cost == pick_right_cost && left->size() <= right->size());
    if (to_left) {
      left->push_back(entries[pick]);
      left_mbr.ExpandToContain(entries[pick].mbr);
    } else {
      right->push_back(entries[pick]);
      right_mbr.ExpandToContain(entries[pick].mbr);
    }
  }
}

void DynamicRTree::RStarSplit(std::vector<Entry>& entries,
                              std::vector<Entry>* left,
                              std::vector<Entry>* right) const {
  const size_t total = entries.size();
  const size_t min_fill = options_.min_entries;
  const size_t distributions = total - 2 * min_fill + 1;

  // ChooseSplitAxis: for each axis, sort by lo then by hi and accumulate the
  // margins of all legal distributions; the axis with the smallest sum wins.
  int best_axis = 0;
  double best_margin_sum = std::numeric_limits<double>::infinity();
  auto axis_lo = [](const Box& b, int axis) {
    return axis == 0 ? b.lo.x : axis == 1 ? b.lo.y : b.lo.z;
  };
  auto axis_hi = [](const Box& b, int axis) {
    return axis == 0 ? b.hi.x : axis == 1 ? b.hi.y : b.hi.z;
  };

  for (int axis = 0; axis < 3; ++axis) {
    for (const bool by_hi : {false, true}) {
      std::sort(entries.begin(), entries.end(),
                [&](const Entry& a, const Entry& b) {
                  return by_hi ? axis_hi(a.mbr, axis) < axis_hi(b.mbr, axis)
                               : axis_lo(a.mbr, axis) < axis_lo(b.mbr, axis);
                });
      double margin_sum = 0;
      for (size_t k = 0; k < distributions; ++k) {
        const size_t split = min_fill + k;
        Box lo_mbr = Box::Empty();
        Box hi_mbr = Box::Empty();
        for (size_t i = 0; i < split; ++i) lo_mbr.ExpandToContain(entries[i].mbr);
        for (size_t i = split; i < total; ++i) {
          hi_mbr.ExpandToContain(entries[i].mbr);
        }
        margin_sum += lo_mbr.Margin() + hi_mbr.Margin();
      }
      if (margin_sum < best_margin_sum) {
        best_margin_sum = margin_sum;
        best_axis = axis;
      }
    }
  }

  // ChooseSplitIndex on the winning axis (sorted by lo; the original also
  // considers the hi sort, we take the lo sort which performs equivalently):
  // minimize overlap volume, ties by combined volume.
  std::sort(entries.begin(), entries.end(),
            [&](const Entry& a, const Entry& b) {
              return axis_lo(a.mbr, best_axis) < axis_lo(b.mbr, best_axis);
            });
  size_t best_split = min_fill;
  double best_overlap = std::numeric_limits<double>::infinity();
  double best_volume = std::numeric_limits<double>::infinity();
  for (size_t k = 0; k < distributions; ++k) {
    const size_t split = min_fill + k;
    Box lo_mbr = Box::Empty();
    Box hi_mbr = Box::Empty();
    for (size_t i = 0; i < split; ++i) lo_mbr.ExpandToContain(entries[i].mbr);
    for (size_t i = split; i < total; ++i) hi_mbr.ExpandToContain(entries[i].mbr);
    const double overlap = Intersection(lo_mbr, hi_mbr).Volume();
    const double volume = lo_mbr.Volume() + hi_mbr.Volume();
    if (overlap < best_overlap ||
        (overlap == best_overlap && volume < best_volume)) {
      best_overlap = overlap;
      best_volume = volume;
      best_split = split;
    }
  }

  left->assign(entries.begin(), entries.begin() + best_split);
  right->assign(entries.begin() + best_split, entries.end());
}

bool DynamicRTree::Remove(uint32_t id, const Box& box) {
  // Find the leaf holding the entry.
  int32_t found_leaf = -1;
  size_t found_index = 0;
  const auto find = [&](auto&& self, uint32_t node_id) -> bool {
    const Node& node = nodes_[node_id];
    if (!Intersects(node.mbr, box)) return false;
    if (node.IsLeaf()) {
      for (size_t i = 0; i < node.entries.size(); ++i) {
        if (node.entries[i].id == id && node.entries[i].mbr == box) {
          found_leaf = static_cast<int32_t>(node_id);
          found_index = i;
          return true;
        }
      }
      return false;
    }
    for (const Entry& e : node.entries) {
      if (self(self, e.id)) return true;
    }
    return false;
  };
  if (size_ == 0 || !find(find, root_)) return false;

  Node& leaf = nodes_[found_leaf];
  leaf.entries.erase(leaf.entries.begin() +
                     static_cast<ptrdiff_t>(found_index));
  --size_;
  CondenseTree(static_cast<uint32_t>(found_leaf));
  return true;
}

bool DynamicRTree::Update(uint32_t id, const Box& old_box,
                          const Box& new_box) {
  // Find the leaf holding the entry, exactly like Remove.
  int32_t found_leaf = -1;
  size_t found_index = 0;
  const auto find = [&](auto&& self, uint32_t node_id) -> bool {
    const Node& node = nodes_[node_id];
    if (!Intersects(node.mbr, old_box)) return false;
    if (node.IsLeaf()) {
      for (size_t i = 0; i < node.entries.size(); ++i) {
        if (node.entries[i].id == id && node.entries[i].mbr == old_box) {
          found_leaf = static_cast<int32_t>(node_id);
          found_index = i;
          return true;
        }
      }
      return false;
    }
    for (const Entry& e : node.entries) {
      if (self(self, e.id)) return true;
    }
    return false;
  };
  if (size_ == 0 || !find(find, root_)) return false;

  Node& leaf = nodes_[found_leaf];
  if (Contains(leaf.mbr, new_box)) {
    // In-place rewrite: the leaf's MBR still covers the entry, so only the
    // upward tighten (the old box may have been the extreme one) is needed.
    leaf.entries[found_index].mbr = new_box;
    SyncUpward(static_cast<uint32_t>(found_leaf));
    return true;
  }
  leaf.entries.erase(leaf.entries.begin() +
                     static_cast<ptrdiff_t>(found_index));
  --size_;
  CondenseTree(static_cast<uint32_t>(found_leaf));
  Insert(id, new_box);
  return true;
}

void DynamicRTree::CondenseTree(uint32_t node_id) {
  // Walk up, dissolving underfull non-root nodes; collect orphaned entries
  // per level and reinsert them at their original level.
  std::vector<std::pair<Entry, uint8_t>> orphans;
  int32_t current = static_cast<int32_t>(node_id);
  while (current >= 0) {
    Node& node = nodes_[current];
    const int32_t parent = node.parent;
    if (parent >= 0 && node.entries.size() < options_.min_entries) {
      Node& parent_node = nodes_[parent];
      parent_node.entries.erase(
          std::remove_if(parent_node.entries.begin(),
                         parent_node.entries.end(),
                         [&](const Entry& e) {
                           return e.id == static_cast<uint32_t>(current);
                         }),
          parent_node.entries.end());
      for (const Entry& e : node.entries) orphans.emplace_back(e, node.level);
      node.entries.clear();
      free_nodes_.push_back(static_cast<uint32_t>(current));
    } else {
      RecomputeMbr(static_cast<uint32_t>(current));
      // Refresh this node's entry box in its parent.
      if (parent >= 0) {
        for (Entry& e : nodes_[parent].entries) {
          if (e.id == static_cast<uint32_t>(current)) {
            e.mbr = node.mbr;
            break;
          }
        }
      }
    }
    current = parent;
  }

  // Shrink the root while it is an inner node with a single child.
  while (!nodes_[root_].IsLeaf() && nodes_[root_].entries.size() == 1) {
    const uint32_t only_child = nodes_[root_].entries[0].id;
    free_nodes_.push_back(root_);
    nodes_[only_child].parent = -1;
    root_ = only_child;
  }
  if (nodes_[root_].entries.empty() && !nodes_[root_].IsLeaf()) {
    nodes_[root_].level = 0;
  }

  for (const auto& [entry, level] : orphans) {
    reinserted_levels_.assign(nodes_[root_].level + 1, false);
    if (level == 0) {
      InsertEntry(entry, 0, 0);
    } else if (nodes_[root_].level >= level) {
      // Orphan subtree of level-1 nodes: its entry belongs in a node at
      // `level` (InsertEntry fixes the child's parent pointer).
      InsertEntry(entry, level, 0);
    } else {
      // The tree shrank below the orphan's level: splice the orphan subtree's
      // leaf entries back individually.
      std::vector<uint32_t> stack = {entry.id};
      while (!stack.empty()) {
        const uint32_t nid = stack.back();
        stack.pop_back();
        for (const Entry& e : nodes_[nid].entries) {
          if (nodes_[nid].IsLeaf()) {
            InsertEntry(e, 0, 0);
          } else {
            stack.push_back(e.id);
          }
        }
        free_nodes_.push_back(nid);
      }
    }
  }
}

size_t DynamicRTree::MemoryUsageBytes() const {
  size_t bytes = VectorBytes(nodes_) + VectorBytes(free_nodes_);
  for (const Node& node : nodes_) bytes += VectorBytes(node.entries);
  return bytes;
}

bool DynamicRTree::CheckInvariants() const {
  if (size_ == 0) return true;
  if (nodes_[root_].parent != -1) return false;

  size_t leaf_entries = 0;
  int leaf_level_depth = -1;
  const auto check = [&](auto&& self, uint32_t node_id, int depth) -> bool {
    const Node& node = nodes_[node_id];
    if (node_id != root_) {
      if (node.entries.size() < options_.min_entries) return false;
    }
    if (node.entries.size() > options_.max_entries) return false;
    Box computed = Box::Empty();
    for (const Entry& e : node.entries) computed.ExpandToContain(e.mbr);
    if (!(computed == node.mbr)) return false;
    if (node.IsLeaf()) {
      if (leaf_level_depth < 0) leaf_level_depth = depth;
      if (leaf_level_depth != depth) return false;  // non-uniform depth
      leaf_entries += node.entries.size();
      return true;
    }
    for (const Entry& e : node.entries) {
      if (nodes_[e.id].parent != static_cast<int32_t>(node_id)) return false;
      if (nodes_[e.id].level + 1 != node.level) return false;
      if (!self(self, e.id, depth + 1)) return false;
    }
    return true;
  };
  if (!check(check, root_, 0)) return false;
  return leaf_entries == size_;
}

double DynamicRTree::TotalSiblingOverlapVolume() const {
  if (size_ == 0) return 0;
  double overlap = 0;
  for (const Node& node : nodes_) {
    if (node.IsLeaf() || node.entries.empty()) continue;
    for (size_t i = 0; i < node.entries.size(); ++i) {
      for (size_t j = i + 1; j < node.entries.size(); ++j) {
        overlap +=
            Intersection(node.entries[i].mbr, node.entries[j].mbr).Volume();
      }
    }
  }
  return overlap;
}

}  // namespace touch
