#include "index/hilbert.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace touch {
namespace {

constexpr int kDims = 3;

/// Skilling's AxesToTranspose: converts plain coordinates into the
/// "transpose" form of the Hilbert index, in place. After this runs, the
/// Hilbert index is the bit-interleave of the three transformed coordinates
/// (x contributes the most significant bit of each 3-bit group).
void AxesToTranspose(std::array<uint32_t, 3>& axes, int order) {
  // Gray decode the axes, high bit to low bit.
  for (uint32_t bit = uint32_t{1} << (order - 1); bit > 1; bit >>= 1) {
    const uint32_t mask = bit - 1;
    for (int i = 0; i < kDims; ++i) {
      if (axes[i] & bit) {
        axes[0] ^= mask;  // invert low bits of x
      } else {
        const uint32_t swap = (axes[0] ^ axes[i]) & mask;
        axes[0] ^= swap;
        axes[i] ^= swap;
      }
    }
  }
  // Gray encode.
  for (int i = 1; i < kDims; ++i) axes[i] ^= axes[i - 1];
  uint32_t accumulated = 0;
  for (uint32_t bit = uint32_t{1} << (order - 1); bit > 1; bit >>= 1) {
    if (axes[kDims - 1] & bit) accumulated ^= bit - 1;
  }
  for (int i = 0; i < kDims; ++i) axes[i] ^= accumulated;
}

/// Skilling's TransposeToAxes: exact inverse of AxesToTranspose.
void TransposeToAxes(std::array<uint32_t, 3>& axes, int order) {
  // Gray decode.
  uint32_t accumulated = axes[kDims - 1] >> 1;
  for (int i = kDims - 1; i > 0; --i) axes[i] ^= axes[i - 1];
  axes[0] ^= accumulated;
  // Undo excess work.
  for (uint32_t bit = 2; bit != (uint32_t{1} << order); bit <<= 1) {
    const uint32_t mask = bit - 1;
    for (int i = kDims - 1; i >= 0; --i) {
      if (axes[i] & bit) {
        axes[0] ^= mask;
      } else {
        const uint32_t swap = (axes[0] ^ axes[i]) & mask;
        axes[0] ^= swap;
        axes[i] ^= swap;
      }
    }
  }
}

/// Interleaves the transpose form into a single index: bit b of the result
/// group g (from the top) is bit (order-1-g) of axes[b].
uint64_t InterleaveTranspose(const std::array<uint32_t, 3>& axes, int order) {
  uint64_t result = 0;
  for (int bit = order - 1; bit >= 0; --bit) {
    for (int i = 0; i < kDims; ++i) {
      result = (result << 1) | ((axes[i] >> bit) & 1u);
    }
  }
  return result;
}

std::array<uint32_t, 3> DeinterleaveTranspose(uint64_t d, int order) {
  std::array<uint32_t, 3> axes = {0, 0, 0};
  for (int g = 0; g < order; ++g) {
    for (int i = 0; i < kDims; ++i) {
      const int src = (order - 1 - g) * kDims + (kDims - 1 - i);
      axes[i] |= static_cast<uint32_t>((d >> src) & 1u) << (order - 1 - g);
    }
  }
  return axes;
}

uint32_t Quantize(float value, float lo, float hi, uint32_t cells) {
  if (!(hi > lo)) return 0;
  const float t = (value - lo) / (hi - lo);
  const auto cell = static_cast<int64_t>(t * static_cast<float>(cells));
  return static_cast<uint32_t>(
      std::clamp<int64_t>(cell, 0, static_cast<int64_t>(cells) - 1));
}

}  // namespace

uint64_t HilbertIndex(uint32_t x, uint32_t y, uint32_t z, int order) {
  std::array<uint32_t, 3> axes = {x, y, z};
  AxesToTranspose(axes, order);
  return InterleaveTranspose(axes, order);
}

std::array<uint32_t, 3> HilbertPoint(uint64_t d, int order) {
  std::array<uint32_t, 3> axes = DeinterleaveTranspose(d, order);
  TransposeToAxes(axes, order);
  return axes;
}

uint64_t HilbertCode(const Box& box, const Box& space) {
  constexpr uint32_t kCells = uint32_t{1} << kHilbertOrder;
  const Vec3 c = box.Center();
  const uint32_t x = Quantize(c.x, space.lo.x, space.hi.x, kCells);
  const uint32_t y = Quantize(c.y, space.lo.y, space.hi.y, kCells);
  const uint32_t z = Quantize(c.z, space.lo.z, space.hi.z, kCells);
  return HilbertIndex(x, y, z, kHilbertOrder);
}

StrPartitioning HilbertPartition(std::span<const Box> boxes,
                                 size_t bucket_size) {
  StrPartitioning result;
  if (boxes.empty()) {
    result.bucket_begin.push_back(0);
    return result;
  }
  bucket_size = std::max<size_t>(1, bucket_size);

  Box space = Box::Empty();
  for (const Box& b : boxes) space.ExpandToContain(b);

  std::vector<uint64_t> keys(boxes.size());
  for (size_t i = 0; i < boxes.size(); ++i) {
    keys[i] = HilbertCode(boxes[i], space);
  }

  result.order.resize(boxes.size());
  std::iota(result.order.begin(), result.order.end(), 0u);
  std::sort(result.order.begin(), result.order.end(),
            [&](uint32_t a, uint32_t b) {
              // Tie-break on id for a deterministic permutation.
              return keys[a] != keys[b] ? keys[a] < keys[b] : a < b;
            });

  const size_t buckets = (boxes.size() + bucket_size - 1) / bucket_size;
  result.bucket_begin.reserve(buckets + 1);
  for (size_t b = 0; b < buckets; ++b) {
    result.bucket_begin.push_back(static_cast<uint32_t>(b * bucket_size));
  }
  result.bucket_begin.push_back(static_cast<uint32_t>(boxes.size()));
  return result;
}

}  // namespace touch
