#include "engine/engine.h"

#include <algorithm>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <utility>

#include "core/factory.h"
#include "core/overlap_kernel.h"
#include "core/touch.h"
#include "index/rtree.h"
#include "join/pbsm.h"
#include "join/rtree_join.h"
#include "util/memory.h"
#include "util/timer.h"

namespace touch {
namespace {

/// Flips pairs back to (a, b) order when a join ran with swapped inputs.
class SwappedCollector : public ResultCollector {
 public:
  explicit SwappedCollector(ResultCollector& out) : out_(out) {}
  void Emit(uint32_t a_id, uint32_t b_id) override { out_.Emit(b_id, a_id); }

 private:
  ResultCollector& out_;
};

/// Translates the dense slot indices the kernels emit into stable object
/// ids (DatasetSnapshot::id_of). Only interposed when a dataset has been
/// mutated out of slot/id identity, so never-mutated datasets keep the
/// zero-cost emission path.
class RemapCollector : public ResultCollector {
 public:
  RemapCollector(ResultCollector& out, const DatasetSnapshot& a,
                 const DatasetSnapshot& b)
      : out_(out), a_(a), b_(b) {}
  void Emit(uint32_t a_slot, uint32_t b_slot) override {
    out_.Emit(a_.id_of(a_slot), b_.id_of(b_slot));
  }

 private:
  ResultCollector& out_;
  const DatasetSnapshot& a_;
  const DatasetSnapshot& b_;
};

/// Measures time-to-first-Emit generically — for every algorithm, not just
/// the streaming NBPS that historically self-reported it. Wrapped around
/// the request's collector in ExecutePlanned; single-threaded like every
/// engine sink (Emit calls are never concurrent per request).
class FirstEmitCollector : public ResultCollector {
 public:
  FirstEmitCollector(ResultCollector& out, const TraceContext& trace)
      : out_(out), trace_(trace) {}

  void Emit(uint32_t a_id, uint32_t b_id) override {
    if (!seen_) {
      seen_ = true;
      elapsed_seconds_ = timer_.Seconds();
      if (trace_.active()) {
        trace_.tracer->RecordInstant(trace_.trace_id, trace_.span_id,
                                     "first-result");
      }
    }
    out_.Emit(a_id, b_id);
  }

  bool seen() const { return seen_; }
  double elapsed_seconds() const { return elapsed_seconds_; }

 private:
  ResultCollector& out_;
  TraceContext trace_;
  Timer timer_;
  bool seen_ = false;
  double elapsed_seconds_ = 0.0;
};

Dataset EnlargedCopy(std::span<const Box> boxes, float epsilon) {
  Dataset out;
  out.reserve(boxes.size());
  for (const Box& box : boxes) out.push_back(box.Enlarged(epsilon));
  return out;
}

// --- Cached artifact types (one per ArtifactKind) ---------------------------

/// A built TOUCH tree plus the exact boxes it was built over. `boxes` is the
/// enlarged copy when the key's epsilon is nonzero; it stays empty when the
/// tree was built directly over the catalog's boxes (the executor then
/// passes the catalog span to JoinWithPrebuiltTree instead).
struct CachedTouchIndex : CachedArtifact {
  Dataset boxes;
  TouchTree tree;

  CachedTouchIndex(Dataset boxes_in, TouchTree tree_in, double seconds)
      : boxes(std::move(boxes_in)), tree(std::move(tree_in)) {
    build_seconds = seconds;
  }
  size_t MemoryUsageBytes() const override {
    return tree.MemoryUsageBytes() + VectorBytes(boxes);
  }
};

/// A bulk-loaded STR R-tree for the indexed nested loop, same box-ownership
/// convention as CachedTouchIndex.
struct CachedInlIndex : CachedArtifact {
  Dataset boxes;
  RTree tree;
  /// SoA probe slabs over the tree's items and child MBRs
  /// (core/overlap_kernel.h): built once with the tree, reused by every
  /// probe of this cached artifact, and — unlike the library join's
  /// transient slabs — part of the artifact's accounted footprint, because
  /// the cache really does hold these bytes between requests.
  RTreeProbeSlabs slabs;

  /// `raw_boxes` is the un-enlarged source span, used for the slab build
  /// only when no enlarged copy is owned (boxes empty).
  CachedInlIndex(Dataset boxes_in, RTree tree_in,
                 std::span<const Box> raw_boxes, double seconds)
      : boxes(std::move(boxes_in)), tree(std::move(tree_in)) {
    slabs.Build(tree,
                boxes.empty() ? raw_boxes : std::span<const Box>(boxes));
    build_seconds = seconds;
  }
  size_t MemoryUsageBytes() const override {
    return tree.MemoryUsageBytes() + VectorBytes(boxes) +
           slabs.MemoryUsageBytes();
  }
};

/// One dataset's PBSM cell directory (key-sorted placements over a specific
/// joint grid), same box-ownership convention as CachedTouchIndex. `domain`
/// records the exact grid the placements were computed over, so a lookup
/// can verify it got the grid it asked for (the cache key only carries a
/// 64-bit signature of the domain).
struct CachedPbsmDirectory : CachedArtifact {
  Box domain = Box::Empty();
  Dataset boxes;
  std::vector<PbsmPlacement> placements;

  size_t MemoryUsageBytes() const override {
    return VectorBytes(placements) + VectorBytes(boxes);
  }
};

/// Exact (bit-level intent, float ==) domain equality for the collision
/// check above.
bool SameDomain(const Box& x, const Box& y) {
  return x.lo.x == y.lo.x && x.lo.y == y.lo.y && x.lo.z == y.lo.z &&
         x.hi.x == y.hi.x && x.hi.y == y.hi.y && x.hi.z == y.hi.z;
}

/// Cache-key signature of a PBSM joint grid domain: directories are only
/// interchangeable when they were placed over bit-identical grids, and the
/// grid depends on the *partner* dataset's extent — hashing the domain into
/// the key keeps directories built for different partners apart.
size_t DomainSignature(const Box& domain) {
  const float fields[6] = {domain.lo.x, domain.lo.y, domain.lo.z,
                           domain.hi.x, domain.hi.y, domain.hi.z};
  size_t hash = 0;
  for (const float field : fields) {
    uint32_t bits = 0;
    std::memcpy(&bits, &field, sizeof(bits));
    hash ^= bits + 0x9e3779b97f4a7c15ULL + (hash << 6) + (hash >> 2);
  }
  return hash;
}

}  // namespace

const char* RequestPhaseName(RequestPhase phase) {
  switch (phase) {
    case RequestPhase::kQueued:
      return "queued";
    case RequestPhase::kPlanning:
      return "planning";
    case RequestPhase::kBuildingIndex:
      return "building-index";
    case RequestPhase::kExecuting:
      return "executing";
    case RequestPhase::kCompleted:
      return "completed";
    case RequestPhase::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

const char* RequestStatusName(RequestStatus status) {
  switch (status) {
    case RequestStatus::kOk:
      return "ok";
    case RequestStatus::kCancelled:
      return "cancelled";
    case RequestStatus::kError:
      return "error";
  }
  return "unknown";
}

/// Everything one submitted request needs to execute and complete,
/// reference-counted across the handle, the pool task and its completion
/// notification.
struct internal::RequestState {
  JoinRequest request;
  std::unique_ptr<ResultSink> sink;  // may be null (count-only)
  CompletionCallback on_complete;    // may be null
  /// Non-null for SubmitPlanned requests: the centrally computed plan the
  /// worker executes instead of planning (the sharded scatter path).
  std::unique_ptr<JoinPlan> preplanned;
  std::promise<JoinResult> promise;
  JoinResult result;
  /// Advanced by the executing worker; the kQueued→kPlanning transition is
  /// a CAS the worker and a prompt queued-cancel race for — exactly one of
  /// them claims the request.
  std::atomic<RequestPhase> phase{RequestPhase::kQueued};
  CancellationSource cancel;
  /// Exactly-once guard on result delivery (sink OnComplete + callback +
  /// promise): the worker's completion notification and a prompt
  /// queued-cancel both funnel through it.
  std::atomic<bool> delivered{false};
  /// Observability wiring (raw pointers into the engine; valid for the
  /// request's whole life because the engine's pool drains every request
  /// before tracer_/metrics_ are destroyed, and Deliver runs at most once).
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// This request's trace identity: the root "request" span every phase
  /// span parents onto, recorded by whoever delivers the result.
  uint64_t trace_id = 0;
  uint64_t root_span_id = 0;
  /// Parent span for the root (nonzero only for shard-pair requests, whose
  /// roots hang under the sharded request's root).
  uint64_t root_parent_id = 0;
  int64_t submit_ns = 0;
  /// Standing continuous join (JoinRequest::continuous): the request never
  /// enters the worker pool; its phase stays kExecuting while subscribed
  /// and Cancel is the only terminal transition.
  bool continuous = false;
  /// Serializes this subscription's delta emission against its Cancel:
  /// every EmitDelta runs under it, and Cancel barrier-locks it after
  /// raising the stop flag, so delivery (which frees the sink) can never
  /// race an in-flight delta burst. A probe that acquires it after the
  /// stop flag rose bails before touching the sink.
  Mutex cont_sink_mutex;
};

/// One standing continuous join: the submitted request plus the shared
/// state its deltas, Cancel and future run through. Registered in the
/// engine's subscription list under delta_sink_mutex_; removed lazily (on
/// the first mutation batch that finds it delivered) or by the engine's
/// destructor.
struct internal::ContinuousSub {
  JoinRequest request;
  std::shared_ptr<internal::RequestState> state;
};

namespace {

using RequestStatePtr = std::shared_ptr<internal::RequestState>;

JoinResult CancelledResult() {
  JoinResult result;
  result.status = RequestStatus::kCancelled;
  return result;
}

JoinResult ErrorResult(std::string message) {
  JoinResult result;
  result.status = RequestStatus::kError;
  result.error = std::move(message);
  return result;
}

/// Delivers `result` exactly once: terminal phase, sink OnComplete,
/// completion callback, promise — in that order. Idempotent; safe to call
/// concurrently from the worker's completion notification and from a
/// cancelling thread, because each caller passes a result it owns (the
/// worker its task's state->result, a canceller a local CancelledResult) —
/// shared request state is never mutated outside the delivery claim.
void Deliver(const RequestStatePtr& state, JoinResult&& result) {
  if (state->delivered.exchange(true, std::memory_order_acq_rel)) return;
  state->phase.store(result.cancelled() ? RequestPhase::kCancelled
                                        : RequestPhase::kCompleted,
                     std::memory_order_release);
  result.trace_id = state->trace_id;
  if (state->metrics != nullptr) {
    state->metrics
        ->counter(std::string("touch_engine_requests_total{status=\"") +
                  RequestStatusName(result.status) + "\"}")
        .Increment();
  }
  if (state->tracer != nullptr) {
    // The root span covers submit → delivery (queue wait included); it is
    // recorded here — by the worker's completion notification or by a
    // prompt queued-cancel — because only delivery knows the outcome.
    if (result.cancelled()) {
      state->tracer->RecordInstant(state->trace_id, state->root_span_id,
                                   "cancelled");
    }
    SpanRecord root;
    root.trace_id = state->trace_id;
    root.span_id = state->root_span_id;
    root.parent_id = state->root_parent_id;
    root.start_ns = state->submit_ns;
    root.duration_ns = TraceClockNs() - state->submit_ns;
    root.thread = CurrentThreadIndex();
    root.name = "request";
    root.attrs.emplace_back("status", RequestStatusName(result.status));
    if (!result.plan.algorithm.empty()) {
      root.attrs.emplace_back("algorithm", result.plan.algorithm);
    }
    if (result.index_cache_hit) root.attrs.emplace_back("cache", "hit");
    state->tracer->Record(std::move(root));
  }
  try {
    if (state->sink) state->sink->OnComplete(result);
  } catch (...) {
  }
  try {
    if (state->on_complete) state->on_complete(result);
  } catch (...) {
  }
  state->promise.set_value(std::move(result));
  state->sink.reset();
}

/// RequestHandle::Cancel's core. Requests the cooperative stop; if the
/// request is still queued, additionally claims it (the same CAS the worker
/// would do) and delivers the Cancelled result right here — the future
/// completes promptly and the pool will skip the task. The worker's
/// completion notification may race this delivery; both sides pass their
/// own result object and Deliver's exactly-once guard picks one.
bool CancelRequest(const RequestStatePtr& state) {
  if (state->delivered.load(std::memory_order_acquire)) return false;
  const bool first = state->cancel.RequestStop();
  if (first && state->tracer != nullptr) {
    state->tracer->RecordInstant(state->trace_id, state->root_span_id,
                                 "cancel-requested");
  }
  if (state->continuous) {
    // Unsubscribe a standing query: the stop flag is up, so no *new* delta
    // burst will touch the sink; the barrier lock waits out a burst already
    // holding the emission mutex. After it, delivery is safe — the sink can
    // no longer be mid-call. (The subscription list entry is pruned lazily
    // by the next mutation batch, which sees `delivered`.)
    { MutexLock barrier(state->cont_sink_mutex); }
    RequestPhase expected = RequestPhase::kExecuting;
    state->phase.compare_exchange_strong(expected, RequestPhase::kCancelled,
                                         std::memory_order_acq_rel);
    Deliver(state, CancelledResult());
    return first;
  }
  RequestPhase expected = RequestPhase::kQueued;
  if (state->phase.compare_exchange_strong(expected, RequestPhase::kCancelled,
                                           std::memory_order_acq_rel)) {
    Deliver(state, CancelledResult());
  }
  return first;
}

}  // namespace

// --- RequestHandle / BatchHandle --------------------------------------------

RequestHandle::RequestHandle() = default;
RequestHandle::RequestHandle(RequestHandle&&) noexcept = default;
RequestHandle& RequestHandle::operator=(RequestHandle&&) noexcept = default;
RequestHandle::~RequestHandle() = default;

RequestHandle::RequestHandle(std::shared_ptr<internal::RequestState> state,
                             std::future<JoinResult> future)
    : state_(std::move(state)), future_(std::move(future)) {}

bool RequestHandle::Cancel() {
  if (state_ == nullptr) return false;
  return CancelRequest(state_);
}

bool RequestHandle::cancel_requested() const {
  return state_ != nullptr && state_->cancel.stop_requested();
}

RequestPhase RequestHandle::phase() const {
  if (state_ == nullptr) return RequestPhase::kCompleted;
  return state_->phase.load(std::memory_order_acquire);
}

CancellationToken RequestHandle::token() const {
  if (state_ == nullptr) return {};
  return state_->cancel.token();
}

size_t BatchHandle::CancelAll() {
  size_t cancelled = 0;
  for (RequestHandle& request : requests_) {
    if (request.Cancel()) ++cancelled;
  }
  return cancelled;
}

std::vector<JoinResult> BatchHandle::GetAll() {
  std::vector<JoinResult> results;
  results.reserve(requests_.size());
  for (RequestHandle& request : requests_) results.push_back(request.Get());
  return results;
}

// --- QueryEngine ------------------------------------------------------------

QueryEngine::QueryEngine(const EngineOptions& options)
    : options_(options),
      tracer_(options.tracer),
      metrics_(options.metrics ? options.metrics
                               : std::make_shared<MetricsRegistry>()),
      planner_(options.planner),
      cache_(IndexCacheOptions{options.max_cache_bytes,
                               options.cache_admission,
                               options.cache_ghost_entries,
                               options.cache_preadmit_build_seconds}),
      feedback_(options.calibration.max_outcomes),
      pool_(options.threads) {
  // Resolve kernel dispatch now, not on the first worker probe: a bad
  // TOUCH_SIMD_LEVEL terminates at engine construction with its diagnostic
  // instead of mid-join on a pool thread.
  ActiveKernels();
  cache_.RegisterMetricProviders(*metrics_, "touch_cache_");
  metrics_->SetProvider("touch_pool_queue_depth", MetricType::kGauge, [this] {
    return static_cast<double>(pool_.queue_depth());
  });
  metrics_->SetProvider("touch_pool_busy_workers", MetricType::kGauge, [this] {
    return static_cast<double>(pool_.busy_workers());
  });
  metrics_->SetProvider("touch_pool_threads", MetricType::kGauge, [this] {
    return static_cast<double>(pool_.thread_count());
  });
  metrics_->SetProvider(
      "touch_pool_tasks_completed_total", MetricType::kCounter,
      [this] { return static_cast<double>(pool_.tasks_completed()); });
}

QueryEngine::~QueryEngine() {
  // Outstanding continuous subscriptions complete as Cancelled here, so
  // their futures and OnComplete fire exactly once even when the caller
  // never cancelled. Same barrier discipline as CancelRequest.
  {
    MutexLock lock(delta_sink_mutex_);
    for (const std::shared_ptr<internal::ContinuousSub>& sub : subs_) {
      sub->state->cancel.RequestStop();
      { MutexLock barrier(sub->state->cont_sink_mutex); }
      RequestPhase expected = RequestPhase::kExecuting;
      sub->state->phase.compare_exchange_strong(
          expected, RequestPhase::kCancelled, std::memory_order_acq_rel);
      Deliver(sub->state, CancelledResult());
    }
    subs_.clear();
  }
  // Providers sample cache_/pool_, which die with this engine; a scrape
  // after this point must not reach them. (The pool itself drains after
  // this body, before the members destruct.)
  metrics_->RemoveProvidersWithPrefix("touch_cache_");
  metrics_->RemoveProvidersWithPrefix("touch_pool_");
}

DatasetHandle QueryEngine::RegisterDataset(std::string name, Dataset boxes) {
  return catalog_.Register(std::move(name), std::move(boxes));
}

DatasetHandle QueryEngine::RegisterDataset(std::string name, Dataset boxes,
                                           DatasetStats stats) {
  return catalog_.Register(std::move(name), std::move(boxes),
                           std::move(stats));
}

uint64_t QueryEngine::ApplyMutations(DatasetHandle dataset,
                                     std::span<const Mutation> mutations) {
  if (!catalog_.Contains(dataset)) return 0;
  MutexLock mutation_lock(mutation_mutex_);
  // Mutation batches trace as their own root: they belong to no request,
  // and several requests' artifacts may be invalidated by one batch.
  TraceContext mutate_ctx;
  if (tracer_ != nullptr) {
    mutate_ctx = TraceContext{tracer_.get(), tracer_->NewTraceId(), 0};
  }
  SpanScope mutate_span(mutate_ctx, "mutate");
  std::vector<AppliedMutation> applied;
  const uint64_t version = catalog_.ApplyMutations(dataset, mutations,
                                                   &applied);
  // First post-mutation query must rebuild: drop every ready artifact built
  // against an older version of this dataset (counted as evictions).
  cache_.InvalidateDataset(dataset, version);
  metrics_->counter("touch_mutations_total").Increment(applied.size());
  mutate_span.AddAttr("dataset", catalog_.name(dataset));
  mutate_span.AddAttr("applied", std::to_string(applied.size()));
  mutate_span.AddAttr("version", std::to_string(version));

  // Fold the batch per object — first old box, last new box — so an object
  // mutated repeatedly in one batch is probed once, against its net move.
  std::vector<AppliedMutation> net;
  net.reserve(applied.size());
  {
    std::unordered_map<uint32_t, size_t> slot;
    for (const AppliedMutation& m : applied) {
      const auto [it, fresh] = slot.emplace(m.id, net.size());
      if (fresh) {
        net.push_back(m);
      } else {
        net[it->second].has_new = m.has_new;
        net[it->second].new_box = m.new_box;
      }
    }
    // An insert+delete that nets out inside the batch touches nothing.
    std::erase_if(net, [](const AppliedMutation& m) {
      return !m.had_old && !m.has_new;
    });
  }
  if (net.empty()) return version;

  MutexLock sink_lock(delta_sink_mutex_);
  for (auto it = subs_.begin(); it != subs_.end();) {
    const std::shared_ptr<internal::ContinuousSub>& sub = *it;
    if (sub->state->delivered.load(std::memory_order_acquire)) {
      it = subs_.erase(it);  // cancelled since the last batch
      continue;
    }
    if (sub->request.a == dataset || sub->request.b == dataset) {
      SpanScope probe_span(mutate_span.context(), "delta-probe");
      const size_t deltas = DeltaProbeLocked(**it, dataset, net);
      probe_span.AddAttr("deltas", std::to_string(deltas));
      metrics_->counter("touch_delta_results_total").Increment(deltas);
    }
    ++it;
  }
  return version;
}

JoinPlan QueryEngine::Plan(const JoinRequest& request) const {
  if (options_.calibration.enabled) {
    const CalibrationSnapshot snapshot =
        feedback_.Snapshot(options_.calibration.min_samples);
    return planner_.Plan(catalog_, request, &snapshot);
  }
  return planner_.Plan(catalog_, request);
}

void QueryEngine::RecordOutcome(const JoinRequest& request,
                                const JoinResult& result) {
  if (!options_.calibration.enabled) return;
  // Cache hits skipped (some of) the build the cost models are fitted
  // against; the planner compares cold costs, so only fully cold runs are
  // evidence. Partial hits (one PBSM directory warm, one built) would bias
  // the family's fit downward — and cancelled runs stopped mid-flight, so
  // their timings measure nothing the planner could compare.
  if (!result.ok() || result.index_cache_hit ||
      result.partial_index_cache_hit) {
    return;
  }
  // Pinned reads: the ref-returning stats accessor is only stable while no
  // mutation of the dataset can run concurrently, which this path can't
  // assume.
  const DatasetSnapshotPtr snap_a = catalog_.snapshot(request.a);
  const DatasetSnapshotPtr snap_b = catalog_.snapshot(request.b);
  const DatasetStats& stats_a = snap_a->stats;
  const DatasetStats& stats_b = snap_b->stats;
  PlanOutcome outcome;
  outcome.family = AlgorithmFamily(result.plan.algorithm);
  outcome.objects = stats_a.count + stats_b.count;
  outcome.results = result.stats.results;
  // The fit feature is the planner's own estimate (recomputed here so
  // fixed runs, whose plans skip estimation, get the same feature as auto
  // runs) — see PlanOutcome::estimated_results.
  outcome.estimated_results =
      CombineHistograms(stats_a, stats_b, request.epsilon,
                        options_.planner.estimator_resolution)
          .expected_results;
  outcome.build_seconds = result.stats.build_seconds;
  outcome.probe_seconds =
      result.stats.assign_seconds + result.stats.join_seconds;
  outcome.total_seconds = result.stats.total_seconds;
  feedback_.Record(outcome);
}

double QueryEngine::PredictedBuildSeconds(const char* family,
                                          const JoinRequest& request) const {
  // Only worth a snapshot when the cache can act on the prediction and the
  // feedback store has evidence to predict from.
  if (!options_.cache_admission || !options_.calibration.enabled) return 0.0;
  const CalibrationSnapshot snapshot =
      feedback_.Snapshot(options_.calibration.min_samples);
  // The fit's object feature is the request's total cardinality; the same
  // feature keeps prediction consistent with the recorded evidence even
  // though the artifact covers only the build side.
  const double objects =
      static_cast<double>(catalog_.snapshot(request.a)->stats.count) +
      static_cast<double>(catalog_.snapshot(request.b)->stats.count);
  return snapshot.PredictBuildSeconds(family, objects).value_or(0.0);
}

// --- Asynchronous submission ------------------------------------------------

void QueryEngine::EnterPhase(const ExecContext& ctx,
                             RequestPhase phase) const {
  if (ctx.state != nullptr) {
    ctx.state->phase.store(phase, std::memory_order_release);
  }
  // One emission point drives both observers: the tracer gets a phase
  // instant under the request root, and the legacy phase_observer hook —
  // now a thin adapter over the same event — gets the enum.
  if (ctx.trace.active()) {
    ctx.trace.tracer->RecordInstant(ctx.trace.trace_id, ctx.trace.span_id,
                                    std::string("phase:") +
                                        RequestPhaseName(phase));
  }
  if (options_.phase_observer) options_.phase_observer(phase);
}

RequestHandle QueryEngine::SubmitInternal(const JoinRequest& request,
                                          std::unique_ptr<ResultSink> sink,
                                          CompletionCallback on_complete,
                                          std::unique_ptr<JoinPlan> preplanned) {
  auto state = std::make_shared<internal::RequestState>();
  state->request = request;
  state->sink = std::move(sink);
  state->on_complete = std::move(on_complete);
  state->preplanned = std::move(preplanned);
  // A request deadline rides on the cancellation flag: once it passes,
  // every phase boundary and cooperative kernel poll sees a requested stop,
  // so the timeout holds even when nobody waits on the handle.
  if (request.deadline.time_since_epoch().count() != 0) {
    state->cancel.SetDeadline(request.deadline);
  }
  state->tracer = tracer_.get();
  state->metrics = metrics_.get();
  state->submit_ns = TraceClockNs();
  if (state->tracer != nullptr) {
    // Adopt the caller's trace identity when it brought one (the sharded
    // engine parenting shard-pair roots under its own), else start fresh.
    state->trace_id = request.trace_id != 0 ? request.trace_id
                                            : state->tracer->NewTraceId();
    state->root_span_id = state->tracer->NewSpanId();
    state->root_parent_id = request.trace_parent_span;
    if (request.deadline.time_since_epoch().count() != 0) {
      state->tracer->RecordInstant(state->trace_id, state->root_span_id,
                                   "deadline-armed");
    }
  }
  std::future<JoinResult> future = state->promise.get_future();
  // Pre-fill an error so that even an exception escaping ExecuteRequest's
  // own catch blocks (e.g. bad_alloc while building the error string)
  // completes the future as a *failure*, never as a silent empty success;
  // a normal return overwrites it.
  state->result = ErrorResult("execution failed: worker task aborted");
  pool_.Submit(
      [this, state] {
        const int64_t claimed_ns = TraceClockNs();
        metrics_->histogram("touch_engine_queue_wait_seconds")
            .Observe(static_cast<double>(claimed_ns - state->submit_ns) *
                     1e-9);
        ExecContext ctx{state->cancel.token(), state.get(),
                        TraceContext{state->tracer, state->trace_id,
                                     state->root_span_id}};
        if (state->tracer != nullptr) {
          // The queue wait as a span of its own: submit → worker claim.
          SpanRecord wait;
          wait.trace_id = state->trace_id;
          wait.span_id = state->tracer->NewSpanId();
          wait.parent_id = state->root_span_id;
          wait.start_ns = state->submit_ns;
          wait.duration_ns = claimed_ns - state->submit_ns;
          wait.thread = CurrentThreadIndex();
          wait.name = "queue-wait";
          state->tracer->Record(std::move(wait));
        }
        ResultSink null_sink;  // drops pairs; stats.results still counts
        ResultCollector& out =
            state->sink ? static_cast<ResultCollector&>(*state->sink)
                        : null_sink;
        state->result = ExecuteRequest(state->request, out, ctx,
                                       state->preplanned.get());
      },
      // Delivery runs as the pool's completion notification so the future
      // completes even if the task itself escaped. A kCancelled phase here
      // means the should_run claim below lost to a queued-cancel and the
      // task never ran: state->result still holds the pre-filled error
      // sentinel and may be racing the canceller's own delivery, so this
      // side delivers a fresh Cancelled result instead of touching it
      // (Deliver's exactly-once guard picks whichever side gets there
      // first — both carry the same Cancelled content).
      [state] {
        if (state->phase.load(std::memory_order_acquire) ==
            RequestPhase::kCancelled) {
          Deliver(state, CancelledResult());
        } else {
          Deliver(state, std::move(state->result));
        }
      },
      // Claiming the request is the worker's kQueued→kPlanning transition;
      // losing the CAS means a queued-cancel already delivered the result,
      // and the task is skipped without burning the worker.
      [state] {
        RequestPhase expected = RequestPhase::kQueued;
        return state->phase.compare_exchange_strong(
            expected, RequestPhase::kPlanning, std::memory_order_acq_rel);
      });
  return RequestHandle(std::move(state), std::move(future));
}

RequestHandle QueryEngine::Submit(const JoinRequest& request,
                                  std::unique_ptr<ResultSink> sink) {
  if (request.continuous) {
    return SubmitContinuous(request, std::move(sink), nullptr);
  }
  return SubmitInternal(request, std::move(sink), nullptr);
}

RequestHandle QueryEngine::Submit(const JoinRequest& request,
                                  std::unique_ptr<ResultSink> sink,
                                  CompletionCallback on_complete) {
  if (request.continuous) {
    return SubmitContinuous(request, std::move(sink),
                            std::move(on_complete));
  }
  return SubmitInternal(request, std::move(sink), std::move(on_complete));
}

RequestHandle QueryEngine::SubmitPlanned(JoinPlan plan,
                                         const JoinRequest& request,
                                         std::unique_ptr<ResultSink> sink) {
  if (request.continuous) {
    // A standing query has no one-shot plan to execute; the scatter path
    // never sets the flag, so reject rather than silently drop the plan.
    return SubmitContinuous(request, nullptr, nullptr);
  }
  return SubmitInternal(request, std::move(sink), nullptr,
                        std::make_unique<JoinPlan>(std::move(plan)));
}

BatchHandle QueryEngine::SubmitBatch(std::span<const JoinRequest> requests,
                                     const SinkFactory& make_sink) {
  BatchHandle batch;
  batch.requests_.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    std::unique_ptr<ResultSink> sink =
        make_sink ? make_sink(i) : nullptr;
    batch.requests_.push_back(
        requests[i].continuous
            ? SubmitContinuous(requests[i], std::move(sink), nullptr)
            : SubmitInternal(requests[i], std::move(sink), nullptr));
  }
  return batch;
}

// --- Continuous joins -------------------------------------------------------

RequestHandle QueryEngine::SubmitContinuous(const JoinRequest& request,
                                            std::unique_ptr<ResultSink> sink,
                                            CompletionCallback on_complete) {
  auto state = std::make_shared<internal::RequestState>();
  state->request = request;
  state->continuous = true;
  state->sink = std::move(sink);
  state->on_complete = std::move(on_complete);
  state->tracer = tracer_.get();
  state->metrics = metrics_.get();
  state->submit_ns = TraceClockNs();
  if (request.deadline.time_since_epoch().count() != 0) {
    state->cancel.SetDeadline(request.deadline);
  }
  if (state->tracer != nullptr) {
    state->trace_id = request.trace_id != 0 ? request.trace_id
                                            : state->tracer->NewTraceId();
    state->root_span_id = state->tracer->NewSpanId();
    state->root_parent_id = request.trace_parent_span;
  }
  RequestHandle handle(state, state->promise.get_future());
  // Validation failures deliver an error result through the normal path, so
  // the future, sink OnComplete and completion callback all still fire.
  if (state->sink == nullptr) {
    Deliver(state, ErrorResult("continuous join requires a result sink "
                               "(deltas have nowhere to go)"));
    return handle;
  }
  if (!catalog_.Contains(request.a) || !catalog_.Contains(request.b)) {
    Deliver(state, ErrorResult("invalid dataset handle (catalog has " +
                               std::to_string(catalog_.size()) +
                               " datasets)"));
    return handle;
  }
  if (request.a == request.b) {
    Deliver(state, ErrorResult(
                       "continuous join requires two distinct datasets"));
    return handle;
  }
  state->phase.store(RequestPhase::kExecuting, std::memory_order_release);

  // The baseline runs under the mutation serialization: no batch can land
  // between "current pair set emitted" and "subscribed for deltas", so the
  // caller's folded view is the full join at every instant.
  MutexLock mutation_lock(mutation_mutex_);
  TraceContext root{state->tracer, state->trace_id, state->root_span_id};
  SpanScope baseline_span(root, "baseline-join");
  const DatasetSnapshotPtr snap_a = catalog_.snapshot(request.a);
  size_t deltas = 0;
  {
    MutexLock emit_lock(state->cont_sink_mutex);
    for (size_t slot = 0; slot < snap_a->boxes.size(); ++slot) {
      if (state->cancel.stop_requested()) break;
      const uint32_t a_id = snap_a->id_of(slot);
      catalog_.QueryObjects(
          request.b, snap_a->boxes[slot].Enlarged(request.epsilon),
          [&](uint32_t b_id, const Box&) {
            state->sink->EmitDelta(DeltaKind::kAdded, a_id, b_id);
            ++deltas;
          });
    }
  }
  baseline_span.AddAttr("deltas", std::to_string(deltas));
  baseline_span.End();
  metrics_->counter("touch_delta_results_total").Increment(deltas);
  if (state->cancel.stop_requested()) {
    // Deadline (or a racing Cancel) fired during the baseline: complete now
    // instead of subscribing a dead query.
    RequestPhase expected = RequestPhase::kExecuting;
    state->phase.compare_exchange_strong(expected, RequestPhase::kCancelled,
                                         std::memory_order_acq_rel);
    Deliver(state, CancelledResult());
    return handle;
  }
  MutexLock sink_lock(delta_sink_mutex_);
  subs_.push_back(std::make_shared<internal::ContinuousSub>(
      internal::ContinuousSub{request, state}));
  return handle;
}

size_t QueryEngine::DeltaProbeLocked(internal::ContinuousSub& sub,
                                     DatasetHandle mutated,
                                     std::span<const AppliedMutation> net) {
  internal::RequestState& state = *sub.state;
  const bool mutated_is_a = sub.request.a == mutated;
  const DatasetHandle partner =
      mutated_is_a ? sub.request.b : sub.request.a;
  const float epsilon = sub.request.epsilon;
  size_t deltas = 0;
  MutexLock emit_lock(state.cont_sink_mutex);
  // A Cancel that raised the stop flag before we took the emission lock may
  // already be past its barrier and freeing the sink — the flag check must
  // come before any sink access, and a mid-burst stop only breaks the loop
  // (the canceller is then still parked on the barrier, so the sink stays
  // alive until we release).
  if (state.cancel.stop_requested() ||
      state.delivered.load(std::memory_order_acquire)) {
    return 0;
  }
  ResultSink& sink = *state.sink;
  std::vector<uint32_t> old_ids;
  std::vector<uint32_t> new_ids;
  const auto emit = [&](DeltaKind kind, uint32_t partner_id,
                        uint32_t moved_id) {
    if (mutated_is_a) {
      sink.EmitDelta(kind, moved_id, partner_id);
    } else {
      sink.EmitDelta(kind, partner_id, moved_id);
    }
    ++deltas;
  };
  for (const AppliedMutation& m : net) {
    // Cooperative cancellation between objects: a standing query being
    // torn down must not hold the mutation path for the whole burst.
    if (state.cancel.stop_requested()) break;
    old_ids.clear();
    new_ids.clear();
    // The epsilon window moves with the object: pairs live in the old
    // window, the new window, or both. Enlarging the moved side is
    // equivalent to enlarging the partner (closed-box intersection is
    // symmetric under enlargement), so one probe orientation serves both.
    if (m.had_old) {
      catalog_.QueryObjects(
          partner, m.old_box.Enlarged(epsilon),
          [&](uint32_t id, const Box&) { old_ids.push_back(id); });
    }
    if (m.has_new) {
      catalog_.QueryObjects(
          partner, m.new_box.Enlarged(epsilon),
          [&](uint32_t id, const Box&) { new_ids.push_back(id); });
    }
    std::sort(old_ids.begin(), old_ids.end());
    std::sort(new_ids.begin(), new_ids.end());
    // Merge-diff: in-old-only pairs left the result set, in-new-only pairs
    // entered it, in-both pairs persist and emit nothing.
    size_t oi = 0;
    size_t ni = 0;
    while (oi < old_ids.size() || ni < new_ids.size()) {
      if (ni == new_ids.size() ||
          (oi < old_ids.size() && old_ids[oi] < new_ids[ni])) {
        emit(DeltaKind::kRemoved, old_ids[oi], m.id);
        ++oi;
      } else if (oi == old_ids.size() || new_ids[ni] < old_ids[oi]) {
        emit(DeltaKind::kAdded, new_ids[ni], m.id);
        ++ni;
      } else {
        ++oi;
        ++ni;
      }
    }
  }
  return deltas;
}

// --- Synchronous wrappers ---------------------------------------------------

JoinResult QueryEngine::Execute(const JoinRequest& request,
                                ResultCollector& out) {
  return Submit(request, std::make_unique<ForwardingSink>(out)).Get();
}

std::vector<JoinResult> QueryEngine::ExecuteBatch(
    std::span<const JoinRequest> requests) {
  return SubmitBatch(requests).GetAll();
}

JoinResult QueryEngine::ExecuteFixed(const std::string& algorithm,
                                     const JoinRequest& request,
                                     ResultCollector& out) {
  if (algorithm == "auto") return Execute(request, out);
  if (!catalog_.Contains(request.a) || !catalog_.Contains(request.b)) {
    return ErrorResult("invalid dataset handle (catalog has " +
                       std::to_string(catalog_.size()) + " datasets)");
  }
  if (MakeAlgorithm(algorithm) == nullptr) {
    return ErrorResult(UnknownAlgorithmMessage(algorithm));
  }
  // Fixed runs get the same request root span and status counters as
  // submitted ones (attr fixed=true tells them apart), on the caller's
  // thread with a default (never-cancelled) context — pinned to the current
  // dataset snapshots like every submitted request.
  ExecContext ctx;
  ctx.snap_a = catalog_.snapshot(request.a);
  ctx.snap_b = catalog_.snapshot(request.b);
  JoinPlan plan;
  plan.algorithm = algorithm;
  plan.build_on_a = ctx.snap_a->stats.count <= ctx.snap_b->stats.count;
  plan.touch.join_order = plan.build_on_a ? TouchOptions::JoinOrder::kBuildOnA
                                          : TouchOptions::JoinOrder::kBuildOnB;
  plan.touch.threads = 1;
  plan.rationale = "algorithm fixed by caller";
  const int64_t start_ns = TraceClockNs();
  if (tracer_ != nullptr) {
    const uint64_t trace_id =
        request.trace_id != 0 ? request.trace_id : tracer_->NewTraceId();
    ctx.trace = TraceContext{tracer_.get(), trace_id, tracer_->NewSpanId()};
  }
  const auto finish = [&](JoinResult result) {
    result.trace_id = ctx.trace.trace_id;
    metrics_
        ->counter(std::string("touch_engine_requests_total{status=\"") +
                  RequestStatusName(result.status) + "\"}")
        .Increment();
    if (ctx.trace.active()) {
      SpanRecord root;
      root.trace_id = ctx.trace.trace_id;
      root.span_id = ctx.trace.span_id;
      root.parent_id = request.trace_parent_span;
      root.start_ns = start_ns;
      root.duration_ns = TraceClockNs() - start_ns;
      root.thread = CurrentThreadIndex();
      root.name = "request";
      root.attrs.emplace_back("status", RequestStatusName(result.status));
      root.attrs.emplace_back("algorithm", result.plan.algorithm);
      root.attrs.emplace_back("fixed", "true");
      tracer_->Record(std::move(root));
    }
    return result;
  };
  try {
    // Fixed runs are evidence too — they are how callers (and the planner
    // benchmark) teach the calibrator about families the static rules would
    // never pick on a workload.
    metrics_
        ->counter(std::string("touch_engine_plans_total{family=\"") +
                  AlgorithmFamily(plan.algorithm) + "\"}")
        .Increment();
    JoinResult result = ExecutePlanned(std::move(plan), request, out, ctx);
    RecordOutcome(request, result);
    return finish(std::move(result));
  } catch (const std::exception& e) {
    return finish(ErrorResult(std::string("execution failed: ") + e.what()));
  }
}

// --- Execution core ---------------------------------------------------------

JoinResult QueryEngine::ExecuteRequest(const JoinRequest& request,
                                       ResultCollector& out,
                                       const ExecContext& ctx,
                                       const JoinPlan* preplanned) {
  // Boundary check: cancelled while queued but claimed by the worker before
  // the canceller could deliver promptly.
  if (ctx.cancel.stop_requested()) return CancelledResult();
  if (!catalog_.Contains(request.a) || !catalog_.Contains(request.b)) {
    return ErrorResult("invalid dataset handle (catalog has " +
                       std::to_string(catalog_.size()) + " datasets)");
  }
  // Pin both datasets for the request's whole execution: geometry, stats
  // and cache-key versions all come from these snapshots, so a mutation
  // batch landing mid-request affects the *next* request, never this one.
  ExecContext pinned = ctx;
  pinned.snap_a = catalog_.snapshot(request.a);
  pinned.snap_b = catalog_.snapshot(request.b);
  // Failures (e.g. an index build running out of memory) become per-request
  // errors instead of escaping — a batch must not die for one bad join, and
  // a submitted future must always complete with a result.
  try {
    EnterPhase(pinned, RequestPhase::kPlanning);
    JoinPlan plan;
    if (preplanned != nullptr) {
      // Scattered shard pairs execute the plan they arrived with; their
      // "plan" span lives at the scatter site that computed it.
      plan = *preplanned;
    } else {
      SpanScope plan_span(pinned.trace, "plan");
      Timer plan_timer;
      // Plan from the *pinned* stats (not a fresh catalog read), so the
      // plan and the execution below describe the same dataset version.
      if (options_.calibration.enabled) {
        const CalibrationSnapshot snapshot =
            feedback_.Snapshot(options_.calibration.min_samples);
        plan = planner_.Plan(pinned.snap_a->stats, pinned.snap_b->stats,
                             request.epsilon, &snapshot);
      } else {
        plan = planner_.Plan(pinned.snap_a->stats, pinned.snap_b->stats,
                             request.epsilon);
      }
      metrics_->histogram("touch_engine_plan_seconds")
          .Observe(plan_timer.Seconds());
      plan_span.AddAttr("algorithm", plan.algorithm);
      plan_span.AddAttr("family", AlgorithmFamily(plan.algorithm));
      if (plan.calibrated) {
        plan_span.AddAttr("calibrated", "true");
        plan_span.AddAttr("predicted_seconds",
                          std::to_string(plan.predicted_seconds));
        if (plan.static_algorithm != plan.algorithm) {
          plan_span.AddAttr("static_algorithm", plan.static_algorithm);
        }
      }
    }
    metrics_
        ->counter(std::string("touch_engine_plans_total{family=\"") +
                  AlgorithmFamily(plan.algorithm) + "\"}")
        .Increment();
    // Boundary: planned → index build.
    if (ctx.cancel.stop_requested()) return CancelledResult();
    JoinResult result = ExecutePlanned(std::move(plan), request, out, pinned);
    // One flag for every executor: a request whose cancel fired mid-run
    // (the kernels bail cooperatively) or right at the end reports
    // Cancelled — its sink may have seen partial pairs either way.
    if (result.ok() && ctx.cancel.stop_requested()) {
      result.status = RequestStatus::kCancelled;
    }
    RecordOutcome(request, result);
    return result;
  } catch (const std::exception& e) {
    return ErrorResult(std::string("execution failed: ") + e.what());
  } catch (...) {
    return ErrorResult("execution failed: unknown error");
  }
}

JoinResult QueryEngine::ExecutePlanned(JoinPlan plan,
                                       const JoinRequest& request,
                                       ResultCollector& out,
                                       const ExecContext& ctx) {
  FirstEmitCollector first_emit(out, ctx.trace);
  // The kernels emit dense slot indices. While a dataset keeps slot/id
  // identity (never mutated, or mutated append-only) that already *is* the
  // object id; once a delete has swapped slots around, remap on the way out
  // so callers always see stable ids.
  RemapCollector remapped(first_emit, *ctx.snap_a, *ctx.snap_b);
  const bool remap =
      !ctx.snap_a->identity_ids() || !ctx.snap_b->identity_ids();
  JoinResult result = ExecutePlannedImpl(
      std::move(plan), request,
      remap ? static_cast<ResultCollector&>(remapped) : first_emit, ctx);
  // NBPS measures its own (stream-internal) first-result latency; keep the
  // tighter self-report when present, fill in generically otherwise.
  if (result.stats.first_result_seconds == 0.0 && first_emit.seen()) {
    result.stats.first_result_seconds = first_emit.elapsed_seconds();
  }
  if (result.ok() && result.stats.first_result_seconds > 0.0) {
    metrics_->histogram("touch_engine_first_result_seconds")
        .Observe(result.stats.first_result_seconds);
  }
  return result;
}

JoinResult QueryEngine::ExecutePlannedImpl(JoinPlan plan,
                                           const JoinRequest& request,
                                           ResultCollector& out,
                                           const ExecContext& ctx) {
  if (options_.cache_indexes) {
    if (plan.algorithm == "touch") {
      return ExecuteTouch(std::move(plan), request, out, ctx);
    }
    if (plan.algorithm == "inl") {
      return ExecuteInl(std::move(plan), request, out, ctx);
    }
    int resolution = 0;
    if (ParsePbsmResolution(plan.algorithm, &resolution)) {
      return ExecutePbsm(std::move(plan), request, resolution, out, ctx);
    }
  }

  JoinResult result;
  AlgorithmConfig config;
  config.touch = plan.touch;
  std::unique_ptr<SpatialJoinAlgorithm> algorithm =
      MakeAlgorithm(plan.algorithm, config);
  if (algorithm == nullptr) {
    return ErrorResult(UnknownAlgorithmMessage(plan.algorithm));
  }
  // The uncached fallback path (nl, ps, the R-tree zoo) has no cooperative
  // hooks: a cancel takes effect at the next phase boundary, i.e. after the
  // join. The planner only sends small inputs here, so the latency gap is
  // bounded by design.
  EnterPhase(ctx, RequestPhase::kExecuting);
  SpanScope exec_span(ctx.trace, "execute");
  exec_span.AddAttr("algorithm", plan.algorithm);
  Timer exec_timer;
  const Dataset& a = ctx.snap_a->boxes;
  const Dataset& b = ctx.snap_b->boxes;
  // Orientation-sensitive algorithms (inl: index over the first input) get
  // swapped inputs when the plan builds on B; "touch" orients itself through
  // join_order instead, and the symmetric algorithms are always planned with
  // build_on_a. A distance join may enlarge either side, so swapping keeps
  // the same result set.
  if (plan.build_on_a || plan.algorithm == "touch") {
    result.stats = DistanceJoin(*algorithm, a, b, request.epsilon, out);
  } else {
    SwappedCollector swapped(out);
    result.stats = DistanceJoin(*algorithm, b, a, request.epsilon, swapped);
  }
  exec_span.End();
  metrics_->histogram("touch_engine_execute_seconds")
      .Observe(exec_timer.Seconds());
  result.plan = std::move(plan);
  return result;
}

JoinResult QueryEngine::ExecuteTouch(JoinPlan plan, const JoinRequest& request,
                                     ResultCollector& out,
                                     const ExecContext& ctx) {
  JoinResult result;
  Timer total;
  const Dataset& a = ctx.snap_a->boxes;
  const Dataset& b = ctx.snap_b->boxes;
  const DatasetHandle build_handle = plan.build_on_a ? request.a : request.b;
  const DatasetSnapshot& build_snap =
      plan.build_on_a ? *ctx.snap_a : *ctx.snap_b;
  const Dataset& build_src = build_snap.boxes;
  // The distance join enlarges side A; when the tree is built over A the
  // enlargement is baked into the cached index (and into its cache key).
  const float build_epsilon = plan.build_on_a ? request.epsilon : 0.0f;

  const TouchOptions& touch_options = plan.touch;
  size_t leaf_capacity = touch_options.leaf_capacity;
  if (leaf_capacity == 0) {
    const size_t partitions = std::max<size_t>(1, touch_options.partitions);
    leaf_capacity = (build_src.size() + partitions - 1) / partitions;
  }
  leaf_capacity = std::max<size_t>(1, leaf_capacity);

  const IndexCacheKey key{build_handle, build_snap.version, build_epsilon,
                          leaf_capacity, touch_options.fanout,
                          ArtifactKind::kTouchTree};
  EnterPhase(ctx, RequestPhase::kBuildingIndex);
  SpanScope build_span(ctx.trace, "build-index");
  build_span.AddAttr("kind", "touch-tree");
  Timer build_phase;
  bool missed = false;
  const IndexCache::ArtifactPtr artifact = cache_.GetOrBuild(
      key,
      [&]() -> IndexCache::ArtifactPtr {
        missed = true;
        Timer build_timer;
        Dataset boxes = build_epsilon > 0
                            ? EnlargedCopy(build_src, build_epsilon)
                            : Dataset{};
        const std::span<const Box> tree_input =
            boxes.empty() ? std::span<const Box>(build_src)
                          : std::span<const Box>(boxes);
        TouchTree tree(tree_input, leaf_capacity, touch_options.fanout);
        return std::make_shared<CachedTouchIndex>(
            std::move(boxes), std::move(tree), build_timer.Seconds());
      },
      [&] { return PredictedBuildSeconds("touch", request); });
  result.index_cache_hit = !missed;
  build_span.AddAttr("cache", missed ? "miss" : "hit");
  build_span.End();
  metrics_->histogram("touch_engine_build_seconds")
      .Observe(build_phase.Seconds());
  // Boundary: index build → execute. Builds are shared artifacts and always
  // run to completion (the tree stays cached for other requests); a cancel
  // that arrived mid-build takes effect here.
  if (ctx.cancel.stop_requested()) {
    result.status = RequestStatus::kCancelled;
    result.plan = std::move(plan);
    return result;
  }
  EnterPhase(ctx, RequestPhase::kExecuting);
  SpanScope exec_span(ctx.trace, "execute");
  exec_span.AddAttr("algorithm", "touch");
  Timer exec_timer;
  const auto* entry = static_cast<const CachedTouchIndex*>(artifact.get());

  const std::span<const Box> tree_boxes =
      entry->boxes.empty() ? std::span<const Box>(build_src)
                           : std::span<const Box>(entry->boxes);
  TouchJoin join(touch_options);
  if (plan.build_on_a) {
    result.stats = join.JoinWithPrebuiltTree(entry->tree, tree_boxes, b, out,
                                             0.0f, ctx.cancel);
  } else {
    // The tree was built raw over B, so side A carries the distance-join
    // enlargement — applied on the fly per probe box (as the cached INL
    // path does), never as an O(|A|) copy: cache hits are allocation-free.
    SwappedCollector swapped(out);
    result.stats = join.JoinWithPrebuiltTree(entry->tree, tree_boxes, a,
                                             swapped, request.epsilon,
                                             ctx.cancel);
  }
  exec_span.End();
  metrics_->histogram("touch_engine_execute_seconds")
      .Observe(exec_timer.Seconds());
  // A miss pays the build it triggered; a hit reuses the cached tree for
  // free — the productized section-4.3 shortcut.
  result.stats.build_seconds = missed ? entry->build_seconds : 0.0;
  result.stats.total_seconds = total.Seconds();
  result.plan = std::move(plan);
  return result;
}

JoinResult QueryEngine::ExecuteInl(JoinPlan plan, const JoinRequest& request,
                                   ResultCollector& out,
                                   const ExecContext& ctx) {
  JoinResult result;
  Timer total;
  const Dataset& a = ctx.snap_a->boxes;
  const Dataset& b = ctx.snap_b->boxes;
  const DatasetHandle build_handle = plan.build_on_a ? request.a : request.b;
  const DatasetSnapshot& build_snap =
      plan.build_on_a ? *ctx.snap_a : *ctx.snap_b;
  const Dataset& build_src = build_snap.boxes;
  // Side A carries the distance-join enlargement (same convention as the
  // TOUCH path and the oracle): a tree over A bakes it into the cached
  // index; a tree over B stays raw — and therefore epsilon-independent,
  // reusable across thresholds — with the enlargement moved into each probe
  // box (the intersection test is symmetric, so the result set is
  // identical).
  const float build_epsilon = plan.build_on_a ? request.epsilon : 0.0f;
  const RTreeJoinOptions tree_options;  // defaults: the paper's best config

  const IndexCacheKey key{build_handle, build_snap.version, build_epsilon,
                          tree_options.leaf_capacity, tree_options.fanout,
                          ArtifactKind::kInlRTree};
  EnterPhase(ctx, RequestPhase::kBuildingIndex);
  SpanScope build_span(ctx.trace, "build-index");
  build_span.AddAttr("kind", "inl-rtree");
  Timer build_phase;
  bool missed = false;
  const IndexCache::ArtifactPtr artifact = cache_.GetOrBuild(
      key,
      [&]() -> IndexCache::ArtifactPtr {
        missed = true;
        Timer build_timer;
        Dataset boxes = build_epsilon > 0
                            ? EnlargedCopy(build_src, build_epsilon)
                            : Dataset{};
        const std::span<const Box> tree_input =
            boxes.empty() ? std::span<const Box>(build_src)
                          : std::span<const Box>(boxes);
        RTree tree(tree_input, tree_options.leaf_capacity, tree_options.fanout,
                   tree_options.bulkload);
        return std::make_shared<CachedInlIndex>(
            std::move(boxes), std::move(tree),
            std::span<const Box>(build_src), build_timer.Seconds());
      },
      [&] { return PredictedBuildSeconds("inl", request); });
  result.index_cache_hit = !missed;
  build_span.AddAttr("cache", missed ? "miss" : "hit");
  build_span.End();
  metrics_->histogram("touch_engine_build_seconds")
      .Observe(build_phase.Seconds());
  // Boundary: index build → execute (builds always run to completion and
  // stay cached; see ExecuteTouch).
  if (ctx.cancel.stop_requested()) {
    result.status = RequestStatus::kCancelled;
    result.plan = std::move(plan);
    return result;
  }
  EnterPhase(ctx, RequestPhase::kExecuting);
  SpanScope exec_span(ctx.trace, "execute");
  exec_span.AddAttr("algorithm", "inl");
  Timer exec_timer;
  const auto* entry = static_cast<const CachedInlIndex*>(artifact.get());
  JoinStats& stats = result.stats;
  Timer join_timer;
  // The probe loop is the INL kernel; it lives inline here, so its span
  // does too (the library's IndexedNestedLoopJoin opens its own). The
  // batched probe polls cancellation at the same power-of-two query stride
  // the scalar loops used, and emits in RTree::Query's DFS order.
  SpanScope probe_span("inl-probe");
  if (plan.build_on_a) {
    BatchedTreeProbe(entry->tree, entry->slabs, b, /*probe_epsilon=*/0.0f,
                     /*swap_emit=*/false, &stats, out, ctx.cancel);
  } else {
    BatchedTreeProbe(entry->tree, entry->slabs, a, request.epsilon,
                     /*swap_emit=*/true, &stats, out, ctx.cancel);
  }
  probe_span.End();
  stats.join_seconds = join_timer.Seconds();
  exec_span.End();
  metrics_->histogram("touch_engine_execute_seconds")
      .Observe(exec_timer.Seconds());
  // Tree, any owned enlarged copy, and the probe slabs — the same
  // accounting the cache uses.
  stats.memory_bytes = entry->MemoryUsageBytes();
  stats.build_seconds = missed ? entry->build_seconds : 0.0;
  stats.total_seconds = total.Seconds();
  result.plan = std::move(plan);
  return result;
}

JoinResult QueryEngine::ExecutePbsm(JoinPlan plan, const JoinRequest& request,
                                    int resolution, ResultCollector& out,
                                    const ExecContext& ctx) {
  JoinResult result;
  Timer total;
  const Dataset& a = ctx.snap_a->boxes;
  const Dataset& b = ctx.snap_b->boxes;
  if (a.empty() || b.empty()) {
    result.stats.total_seconds = total.Seconds();
    result.plan = std::move(plan);
    return result;
  }
  // The joint grid domain, derived from the pinned stats instead of a
  // rescan. This is bit-identical to PbsmJoin's internal joint MBR: the
  // stats extents are exact, and enlarging the extent equals the extent of
  // the enlarged boxes (subtracting/adding epsilon is monotone under
  // rounding).
  Box domain = ctx.snap_a->stats.extent.Enlarged(request.epsilon);
  domain.ExpandToContain(ctx.snap_b->stats.extent);
  const GridMapper grid(domain, resolution);
  const size_t signature = DomainSignature(domain);

  bool missed_a = false;
  bool missed_b = false;
  const auto build_directory = [&](float epsilon, const Dataset& src) {
    Timer build_timer;
    auto built = std::make_shared<CachedPbsmDirectory>();
    built->domain = domain;
    built->boxes = epsilon > 0 ? EnlargedCopy(src, epsilon) : Dataset{};
    const std::span<const Box> input =
        built->boxes.empty() ? std::span<const Box>(src)
                             : std::span<const Box>(built->boxes);
    built->placements = BuildPbsmPlacements(input, grid);
    built->build_seconds = build_timer.Seconds();
    return built;
  };
  const auto expected_build = [&] {
    return PredictedBuildSeconds("pbsm", request);
  };
  const auto directory =
      [&](DatasetHandle handle, uint64_t version, float epsilon,
          const Dataset& src,
          bool* missed) -> std::shared_ptr<const CachedPbsmDirectory> {
    const IndexCacheKey key{handle, version, epsilon,
                            static_cast<size_t>(resolution), signature,
                            ArtifactKind::kPbsmDirectory};
    const auto cached = std::static_pointer_cast<const CachedPbsmDirectory>(
        cache_.GetOrBuild(
            key,
            [&]() -> IndexCache::ArtifactPtr {
              *missed = true;
              return build_directory(epsilon, src);
            },
            expected_build));
    if (SameDomain(cached->domain, domain)) return cached;
    // 64-bit signature collision: the cached placements were computed over
    // a *different* joint grid that hashed alike. Merging them with this
    // grid would silently drop or duplicate pairs, so serve this request
    // from a private, uncached build instead.
    *missed = true;
    return build_directory(epsilon, src);
  };
  // A's directory carries the enlargement; B's is epsilon-independent. A
  // self-join with epsilon 0 collapses both onto one cache entry.
  EnterPhase(ctx, RequestPhase::kBuildingIndex);
  SpanScope build_span(ctx.trace, "build-index");
  build_span.AddAttr("kind", "pbsm-directory");
  Timer build_phase;
  const auto dir_a = directory(request.a, ctx.snap_a->version,
                               request.epsilon, a, &missed_a);
  const auto dir_b = directory(request.b, ctx.snap_b->version, 0.0f, b,
                               &missed_b);
  result.index_cache_hit = !missed_a && !missed_b;
  result.partial_index_cache_hit = missed_a != missed_b;
  build_span.AddAttr("cache", result.index_cache_hit
                                  ? "hit"
                                  : (result.partial_index_cache_hit
                                         ? "partial"
                                         : "miss"));
  build_span.End();
  metrics_->histogram("touch_engine_build_seconds")
      .Observe(build_phase.Seconds());
  // Boundary: index build → execute (directories always run to completion
  // and stay cached; see ExecuteTouch).
  if (ctx.cancel.stop_requested()) {
    result.status = RequestStatus::kCancelled;
    result.plan = std::move(plan);
    return result;
  }
  EnterPhase(ctx, RequestPhase::kExecuting);
  SpanScope exec_span(ctx.trace, "execute");
  exec_span.AddAttr("algorithm", plan.algorithm);
  Timer exec_timer;

  const std::span<const Box> span_a =
      dir_a->boxes.empty() ? std::span<const Box>(a)
                           : std::span<const Box>(dir_a->boxes);
  JoinStats& stats = result.stats;
  Timer join_timer;
  PbsmMergeJoin(span_a, dir_a->placements, b, dir_b->placements, grid,
                LocalJoinStrategy::kPlaneSweep, &stats, out, ctx.cancel);
  stats.join_seconds = join_timer.Seconds();
  exec_span.End();
  metrics_->histogram("touch_engine_execute_seconds")
      .Observe(exec_timer.Seconds());
  // Both resident directories (placements + owned enlarged copies), the
  // cache's own accounting; unlike PbsmJoin::Join, no transient radix-sort
  // scratch is in play on the cached path.
  stats.memory_bytes = dir_a->MemoryUsageBytes() + dir_b->MemoryUsageBytes();
  stats.build_seconds = (missed_a ? dir_a->build_seconds : 0.0) +
                        (missed_b ? dir_b->build_seconds : 0.0);
  stats.total_seconds = total.Seconds();
  result.plan = std::move(plan);
  return result;
}

}  // namespace touch
