#include "engine/engine.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/factory.h"
#include "core/touch.h"
#include "util/timer.h"

namespace touch {
namespace {

/// Flips pairs back to (a, b) order when a join ran with swapped inputs.
class SwappedCollector : public ResultCollector {
 public:
  explicit SwappedCollector(ResultCollector& out) : out_(out) {}
  void Emit(uint32_t a_id, uint32_t b_id) override { out_.Emit(b_id, a_id); }

 private:
  ResultCollector& out_;
};

Dataset EnlargedCopy(std::span<const Box> boxes, float epsilon) {
  Dataset out;
  out.reserve(boxes.size());
  for (const Box& box : boxes) out.push_back(box.Enlarged(epsilon));
  return out;
}

}  // namespace

QueryEngine::QueryEngine(const EngineOptions& options)
    : options_(options), planner_(options.planner), pool_(options.threads) {}

DatasetHandle QueryEngine::RegisterDataset(std::string name, Dataset boxes) {
  return catalog_.Register(std::move(name), std::move(boxes));
}

JoinPlan QueryEngine::Plan(const JoinRequest& request) const {
  return planner_.Plan(catalog_, request);
}

JoinResult QueryEngine::Execute(const JoinRequest& request,
                                ResultCollector& out) {
  if (!catalog_.Contains(request.a) || !catalog_.Contains(request.b)) {
    JoinResult result;
    result.error = "invalid dataset handle (catalog has " +
                   std::to_string(catalog_.size()) + " datasets)";
    return result;
  }
  // Failures (e.g. an index build running out of memory) become per-request
  // errors instead of escaping — a batch must not die for one bad join.
  try {
    return ExecutePlanned(Plan(request), request, out);
  } catch (const std::exception& e) {
    JoinResult result;
    result.error = std::string("execution failed: ") + e.what();
    return result;
  }
}

JoinResult QueryEngine::ExecuteFixed(const std::string& algorithm,
                                     const JoinRequest& request,
                                     ResultCollector& out) {
  if (algorithm == "auto") return Execute(request, out);
  if (!catalog_.Contains(request.a) || !catalog_.Contains(request.b)) {
    JoinResult result;
    result.error = "invalid dataset handle (catalog has " +
                   std::to_string(catalog_.size()) + " datasets)";
    return result;
  }
  if (MakeAlgorithm(algorithm) == nullptr) {
    JoinResult result;
    result.error = UnknownAlgorithmMessage(algorithm);
    return result;
  }
  JoinPlan plan;
  plan.algorithm = algorithm;
  plan.build_on_a =
      catalog_.stats(request.a).count <= catalog_.stats(request.b).count;
  plan.touch.join_order = plan.build_on_a ? TouchOptions::JoinOrder::kBuildOnA
                                          : TouchOptions::JoinOrder::kBuildOnB;
  plan.touch.threads = 1;
  plan.rationale = "algorithm fixed by caller";
  try {
    return ExecutePlanned(std::move(plan), request, out);
  } catch (const std::exception& e) {
    JoinResult result;
    result.error = std::string("execution failed: ") + e.what();
    return result;
  }
}

JoinResult QueryEngine::ExecutePlanned(JoinPlan plan,
                                       const JoinRequest& request,
                                       ResultCollector& out) {
  if (plan.algorithm == "touch" && options_.cache_indexes) {
    return ExecuteTouch(std::move(plan), request, out);
  }

  JoinResult result;
  AlgorithmConfig config;
  config.touch = plan.touch;
  std::unique_ptr<SpatialJoinAlgorithm> algorithm =
      MakeAlgorithm(plan.algorithm, config);
  if (algorithm == nullptr) {
    result.error = UnknownAlgorithmMessage(plan.algorithm);
    return result;
  }
  const Dataset& a = catalog_.boxes(request.a);
  const Dataset& b = catalog_.boxes(request.b);
  // Orientation-sensitive algorithms (inl: index over the first input) get
  // swapped inputs when the plan builds on B; "touch" orients itself through
  // join_order instead, and the symmetric algorithms are always planned with
  // build_on_a. A distance join may enlarge either side, so swapping keeps
  // the same result set.
  if (plan.build_on_a || plan.algorithm == "touch") {
    result.stats = DistanceJoin(*algorithm, a, b, request.epsilon, out);
  } else {
    SwappedCollector swapped(out);
    result.stats = DistanceJoin(*algorithm, b, a, request.epsilon, swapped);
  }
  result.plan = std::move(plan);
  return result;
}

JoinResult QueryEngine::ExecuteTouch(JoinPlan plan, const JoinRequest& request,
                                     ResultCollector& out) {
  JoinResult result;
  Timer total;
  const Dataset& a = catalog_.boxes(request.a);
  const Dataset& b = catalog_.boxes(request.b);
  const DatasetHandle build_handle = plan.build_on_a ? request.a : request.b;
  const Dataset& build_src = catalog_.boxes(build_handle);
  // The distance join enlarges side A; when the tree is built over A the
  // enlargement is baked into the cached index (and into its cache key).
  const float build_epsilon = plan.build_on_a ? request.epsilon : 0.0f;

  const TouchOptions& touch_options = plan.touch;
  size_t leaf_capacity = touch_options.leaf_capacity;
  if (leaf_capacity == 0) {
    const size_t partitions = std::max<size_t>(1, touch_options.partitions);
    leaf_capacity = (build_src.size() + partitions - 1) / partitions;
  }
  leaf_capacity = std::max<size_t>(1, leaf_capacity);

  const IndexCacheKey key{build_handle, build_epsilon, leaf_capacity,
                          touch_options.fanout};
  bool missed = false;
  const IndexCache::EntryPtr entry = cache_.GetOrBuild(key, [&] {
    missed = true;
    Timer build_timer;
    Dataset boxes =
        build_epsilon > 0 ? EnlargedCopy(build_src, build_epsilon) : Dataset{};
    const std::span<const Box> tree_input =
        boxes.empty() ? std::span<const Box>(build_src)
                      : std::span<const Box>(boxes);
    TouchTree tree(tree_input, leaf_capacity, touch_options.fanout);
    return std::make_shared<CachedIndex>(CachedIndex{
        std::move(boxes), std::move(tree), build_timer.Seconds()});
  });
  result.index_cache_hit = !missed;

  const std::span<const Box> tree_boxes =
      entry->boxes.empty() ? std::span<const Box>(build_src)
                           : std::span<const Box>(entry->boxes);
  TouchJoin join(touch_options);
  if (plan.build_on_a) {
    result.stats = join.JoinWithPrebuiltTree(entry->tree, tree_boxes, b, out);
  } else {
    const Dataset probe =
        request.epsilon > 0 ? EnlargedCopy(a, request.epsilon) : Dataset{};
    const std::span<const Box> probe_span =
        probe.empty() ? std::span<const Box>(a) : std::span<const Box>(probe);
    SwappedCollector swapped(out);
    result.stats =
        join.JoinWithPrebuiltTree(entry->tree, tree_boxes, probe_span, swapped);
  }
  // A miss pays the build it triggered; a hit reuses the cached tree for
  // free — the productized section-4.3 shortcut.
  result.stats.build_seconds = missed ? entry->build_seconds : 0.0;
  result.stats.total_seconds = total.Seconds();
  result.plan = std::move(plan);
  return result;
}

std::vector<JoinResult> QueryEngine::ExecuteBatch(
    std::span<const JoinRequest> requests) {
  std::vector<JoinResult> results(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    pool_.Submit([this, &results, i, request = requests[i]] {
      CountingCollector counter;
      results[i] = Execute(request, counter);
    });
  }
  pool_.WaitIdle();
  return results;
}

}  // namespace touch
