#ifndef TOUCH_ENGINE_SHARDED_ENGINE_H_
#define TOUCH_ENGINE_SHARDED_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "engine/engine.h"
#include "engine/shard.h"
#include "util/thread_annotations.h"

namespace touch {

namespace internal {
struct GatherState;
}  // namespace internal

/// One executed shard pair of a sharded join: which shards met, the plan
/// they were scattered with (stats-only Planner::Plan over the shards'
/// *deserialized* stats), and what the execution measured. Pruned pairs
/// never appear here — see ShardedJoinResult::pruned.
struct ShardPairReport {
  int shard_a = 0;
  int shard_b = 0;
  JoinPlan plan;
  JoinStats stats;
  RequestStatus status = RequestStatus::kOk;
  bool index_cache_hit = false;
};

/// Outcome of one sharded scatter-gather join.
///
/// `merged` is the single-JoinResult view downstream code consumes:
/// counters aggregate every executed pair (results counted *post-dedup*),
/// build/assign/join seconds are summed work seconds across pairs (they
/// overlap on the pool, so they exceed wall clock under parallelism),
/// total_seconds is the scatter-gather wall clock, and the plan's
/// algorithm is "sharded" with a rationale summarizing the fan-out.
/// `merged.status` is kError if any pair failed, else kCancelled if any
/// pair was cancelled, else kOk.
struct ShardedJoinResult {
  JoinResult merged;
  /// Executed pairs, in scatter order.
  std::vector<ShardPairReport> pairs;
  /// (shard_a, shard_b) pairs pruned by the epsilon-inflated MBR test.
  std::vector<std::pair<int, int>> pruned;
  /// All considered pairs: pairs.size() + pruned.size().
  size_t shard_pairs_total = 0;
  /// Result pairs dropped by the merge's owner filter. Structurally 0 with
  /// the center-disjoint partitioner; becomes load-bearing the moment a
  /// partitioner replicates boundary objects.
  uint64_t deduplicated = 0;
  /// Inner index-cache snapshot taken at gather time.
  IndexCache::Stats cache;
};

/// Handle of one sharded join: the fan-out of per-shard-pair
/// RequestHandles behind a single gather point.
///
/// Cancellation fans out: Cancel() forwards to every shard pair's
/// RequestHandle — queued pairs complete immediately without burning a
/// worker, executing pairs stop cooperatively — so one call abandons the
/// whole scatter. Get() performs the gather (blocks until every pair
/// completed, merges, runs the user sink's OnComplete) and may be called
/// once; it is not safe to call concurrently with itself, though Cancel()
/// from another thread is fine.
class ShardedRequestHandle {
 public:
  ShardedRequestHandle() = default;
  ShardedRequestHandle(ShardedRequestHandle&&) noexcept = default;
  ShardedRequestHandle& operator=(ShardedRequestHandle&&) noexcept = default;
  ShardedRequestHandle(const ShardedRequestHandle&) = delete;
  ShardedRequestHandle& operator=(const ShardedRequestHandle&) = delete;

  bool valid() const { return state_ != nullptr; }

  /// Shard pairs actually scattered (survived pruning).
  size_t pair_count() const;

  /// Requests cancellation of every outstanding shard pair; returns true
  /// when at least one pair was newly cancelled.
  bool Cancel();

  /// Gathers: blocks for every pair, merges streams and telemetry, runs
  /// the user sink's OnComplete with the merged result. One-shot.
  ShardedJoinResult Get();

 private:
  friend class ShardedQueryEngine;
  std::shared_ptr<internal::GatherState> state_;
};

/// The sharded scatter-gather engine: a QueryEngine whose datasets are
/// spatially partitioned into EngineOptions::shards pieces at registration
/// (STR slabs over the registration histogram — see shard.h) and whose
/// joins fan out over shard pairs.
///
/// One join request becomes up to K_a * K_b shard-pair requests. Each pair
/// is planned *centrally* with the stats-only Planner::Plan over the
/// shards' serialized stats (the same bytes a remote shard would send),
/// pairs whose epsilon-inflated MBRs cannot meet are pruned before any
/// work is spent, and the survivors scatter onto the inner engine's
/// existing WorkerPool via SubmitPlanned — inheriting its index cache,
/// lifecycle management and cooperative cancellation per pair. The gather
/// remaps shard-local ids to global ids, deduplicates through the owner
/// filter, and merges everything into one JoinResult.
///
/// This subsystem is single-process: shards are in-memory datasets of one
/// inner engine. It is deliberately shaped so that multi-process
/// distribution is a transport problem — stats already travel as bytes,
/// planning never touches shard geometry, and the gather only consumes id
/// streams. See docs/DEPLOYMENT.md.
///
/// Threading contract: RegisterDataset must not race with queries (same as
/// QueryEngine); Submit and Execute may run concurrently.
class ShardedQueryEngine {
 public:
  /// `options.shards` (clamped to >= 1) shards per dataset; everything
  /// else configures the inner QueryEngine.
  explicit ShardedQueryEngine(const EngineOptions& options = {});

  /// Partitions `boxes` into shards, registers each shard with the inner
  /// engine, serializes per-shard stats into the sharded catalog, and
  /// returns the logical dataset's handle (valid for Submit/Execute on
  /// *this* engine, not the inner one).
  DatasetHandle RegisterDataset(std::string name, Dataset boxes);

  /// Applies one mutation batch to a sharded dataset in *global* id space.
  /// Each mutation is routed to its owning shard by the partition's
  /// center-cell rule (an update whose center crosses a slab boundary
  /// becomes a delete + an explicit-id insert on the new owner, preserving
  /// the global id), the per-shard sub-batches run through the inner
  /// engine's ApplyMutations (stats, versioning, cache invalidation and
  /// continuous joins all behave as documented there), per-shard
  /// stats_bytes are re-serialized so pair pruning stays sound, and a
  /// shard whose MBR margin drifted past
  /// EngineOptions::shard_repartition_drift times its partition-time
  /// margin triggers a full re-partition from live geometry
  /// (`touch_shard_repartitions_total`). Batches serialize against each
  /// other and against Submit; gathers already in flight keep the id maps
  /// they pinned at scatter time. Returns the dataset's new version.
  uint64_t ApplyMutations(DatasetHandle dataset,
                          std::span<const Mutation> mutations);

  /// Scatters the request across shard pairs (see class comment). `sink`
  /// (optional) receives merged, deduplicated (a, b) pairs in *global* id
  /// space; Emit calls are serialized across pairs. Its OnComplete runs
  /// inside the handle's Get().
  ShardedRequestHandle Submit(const JoinRequest& request,
                              std::unique_ptr<ResultSink> sink = nullptr);

  /// Synchronous wrapper: Submit + Get, emitting merged pairs into `out`.
  ShardedJoinResult Execute(const JoinRequest& request, ResultCollector& out);

  const ShardedCatalog& catalog() const { return catalog_; }

  /// The inner engine (cache stats, calibration feedback, worker pool).
  QueryEngine& engine() { return inner_; }
  const QueryEngine& engine() const { return inner_; }

  int shards() const { return shards_; }

 private:
  /// Rebuilds `entry`'s partition from the live geometry of its shards:
  /// new slabs over fresh global stats, new inner shard datasets, new id
  /// maps (global ids preserved). The old inner shard datasets stay
  /// registered but unreferenced — the inner catalog has no unregister —
  /// so their cache artifacts age out through normal eviction.
  void RepartitionLocked(ShardedCatalog::Entry& entry)
      REQUIRES(catalog_mutex_);

  int shards_;
  Planner planner_;
  QueryEngine inner_;
  /// Serializes mutation batches against each other and against Submit's
  /// scatter (which pins the id maps and reads shard stats under it).
  /// Pair execution and gathers never take it.
  mutable Mutex catalog_mutex_;
  ShardedCatalog catalog_;
};

}  // namespace touch

#endif  // TOUCH_ENGINE_SHARDED_ENGINE_H_
