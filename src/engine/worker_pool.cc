#include "engine/worker_pool.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace touch {

WorkerPool::WorkerPool(int threads) {
  if (threads <= 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  Submit(std::move(task), nullptr);
}

void WorkerPool::Submit(std::function<void()> task,
                        std::function<void()> on_done,
                        std::function<bool()> should_run) {
  bool rejected = false;
  {
    MutexLock lock(mutex_);
    // Submitting into a stopping pool is a lifetime bug on the caller's
    // side, but resolve the race deterministically rather than leaving a
    // task in a queue no worker will drain: skip the body, deliver the
    // completion inline below, and trip a debug assert.
    assert(!stopping_ && "WorkerPool::Submit after destruction began");
    if (stopping_) {
      rejected = true;
    } else {
      queue_.push_back(
          Task{std::move(task), std::move(on_done), std::move(should_run)});
      ++in_flight_;
    }
  }
  if (rejected) {
    if (on_done) {
      try {
        on_done();
      } catch (...) {
      }
    }
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  work_available_.NotifyOne();
}

size_t WorkerPool::queue_depth() const {
  MutexLock lock(mutex_);
  return queue_.size();
}

void WorkerPool::WaitIdle() {
  MutexLock lock(mutex_);
  while (in_flight_ != 0) idle_.Wait(lock);
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mutex_);
      // Explicit predicate loop (not cv.wait(lock, pred)): the thread-safety
      // analysis checks lambda bodies without the enclosing capability set,
      // so a predicate lambda could not read the guarded fields.
      while (!stopping_ && queue_.empty()) work_available_.Wait(lock);
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Tasks own their error reporting (the engine converts failures into
    // JoinResult::error); an escaping exception must not take down the pool
    // thread or leave in_flight_ stuck for WaitIdle. on_done runs either
    // way — completion must reach waiters even when the task failed or was
    // skipped by its should_run condition.
    busy_workers_.fetch_add(1, std::memory_order_relaxed);
    try {
      if (!task.should_run || task.should_run()) task.run();
    } catch (...) {
    }
    if (task.on_done) {
      try {
        task.on_done();
      } catch (...) {
      }
    }
    busy_workers_.fetch_sub(1, std::memory_order_relaxed);
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(mutex_);
      if (--in_flight_ == 0) idle_.NotifyAll();
    }
  }
}

}  // namespace touch
