#include "engine/worker_pool.h"

#include <algorithm>
#include <utility>

namespace touch {

WorkerPool::WorkerPool(int threads) {
  if (threads <= 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void WorkerPool::Submit(std::function<void()> task) {
  Submit(std::move(task), nullptr);
}

void WorkerPool::Submit(std::function<void()> task,
                        std::function<void()> on_done,
                        std::function<bool()> should_run) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(
        Task{std::move(task), std::move(on_done), std::move(should_run)});
    ++in_flight_;
  }
  work_available_.notify_one();
}

size_t WorkerPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void WorkerPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void WorkerPool::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(
          lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Tasks own their error reporting (the engine converts failures into
    // JoinResult::error); an escaping exception must not take down the pool
    // thread or leave in_flight_ stuck for WaitIdle. on_done runs either
    // way — completion must reach waiters even when the task failed or was
    // skipped by its should_run condition.
    busy_workers_.fetch_add(1, std::memory_order_relaxed);
    try {
      if (!task.should_run || task.should_run()) task.run();
    } catch (...) {
    }
    if (task.on_done) {
      try {
        task.on_done();
      } catch (...) {
      }
    }
    busy_workers_.fetch_sub(1, std::memory_order_relaxed);
    tasks_completed_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace touch
