#include "engine/planner.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>

#include "estimate/selectivity.h"

namespace touch {
namespace {

/// Grid resolution whose cells stay ~4x larger than the average object (the
/// paper's section-5.2.2 rule, also applied by the local join): finer grids
/// pair objects the histogramming never sees together. `avg_edge` already
/// includes any epsilon enlargement.
int CellSizeCappedResolution(const Box& domain, float avg_edge, int max_res) {
  if (avg_edge <= 0) return max_res;
  const Vec3 extent = domain.Extent();
  const float min_extent = std::min({extent.x, extent.y, extent.z});
  const int cap = std::max(1, static_cast<int>(min_extent / (4.0f * avg_edge)));
  return std::clamp(cap, 1, max_res);
}

float MaxComponent(const Vec3& v) { return std::max({v.x, v.y, v.z}); }

std::string Format(const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return buffer;
}

}  // namespace

std::string JoinPlan::ToString() const {
  std::string line;
  if (algorithm == "touch") {
    line = Format(
        "algorithm=touch build=%s partitions=%zu grid=%d "
        "expected_results=%.3g selectivity=%.3g",
        build_on_a ? "A" : "B", touch.partitions, touch.grid_resolution,
        expected_results, expected_selectivity);
  } else {
    line = Format("algorithm=%s build=%s expected_results=%.3g "
                  "selectivity=%.3g",
                  algorithm.c_str(), build_on_a ? "A" : "B", expected_results,
                  expected_selectivity);
  }
  return line + "\n  reason: " + rationale;
}

JoinPlan Planner::Plan(const DatasetCatalog& catalog,
                       const JoinRequest& request) const {
  const DatasetStats& stats_a = catalog.stats(request.a);
  const DatasetStats& stats_b = catalog.stats(request.b);
  const size_t size_a = stats_a.count;
  const size_t size_b = stats_b.count;
  const size_t smaller = std::min(size_a, size_b);
  const size_t larger = std::max(size_a, size_b);

  JoinPlan plan;
  plan.touch.threads = 1;  // batch-level parallelism belongs to the engine

  if (smaller == 0) {
    plan.algorithm = "nl";
    plan.rationale = "an input is empty: nested loop (no result, no setup)";
    return plan;
  }
  if (larger <= options_.nested_loop_max) {
    plan.algorithm = "nl";
    plan.rationale = Format(
        "tiny inputs (max(|A|,|B|)=%zu <= %zu): nested loop beats any setup "
        "cost",
        larger, options_.nested_loop_max);
    return plan;
  }
  if (larger <= options_.plane_sweep_max) {
    plan.algorithm = "ps";
    plan.rationale = Format(
        "small inputs (max(|A|,|B|)=%zu <= %zu): plane sweep (sort only, no "
        "index build)",
        larger, options_.plane_sweep_max);
    return plan;
  }

  // Beyond the tiny-input regime, plans are cost-based: estimate the output
  // and inspect the per-dataset histograms registration already paid for.
  const SelectivityEstimator estimator(catalog.boxes(request.a),
                                       catalog.boxes(request.b),
                                       options_.estimator_resolution);
  const SelectivityEstimate estimate = estimator.Estimate(request.epsilon);
  plan.expected_results = estimate.expected_results;
  plan.expected_selectivity = estimate.selectivity;

  const double skew =
      std::max(stats_a.HistogramSkew(), stats_b.HistogramSkew());
  Box joint = stats_a.extent;
  joint.ExpandToContain(stats_b.extent);
  // PBSM replicates the *enlarged* boxes into cells, so its cell-size rule
  // must account for the epsilon bloat.
  const float enlarged_edge =
      std::max(MaxComponent(stats_a.avg_object_extent) + 2.0f * request.epsilon,
               MaxComponent(stats_b.avg_object_extent));

  // Coarse per-object footprint of the partitioning algorithms, calibrated
  // against measured memMB counters (TOUCH ~50 B/object incl. tree + grids;
  // PBSM ~2x for replication).
  const size_t touch_bytes = 48 * (size_a + size_b);
  const size_t pbsm_bytes = 96 * (size_a + size_b);
  const size_t budget = options_.memory_budget_bytes;

  // Per-dataset skew is measured over each dataset's *own* extent, so two
  // individually-uniform datasets with very different extents still form a
  // joint hotspot (all of the small one in a few cells of the joint grid).
  // PBSM is only trusted when both extents fill a fair share of the joint
  // domain; degenerate (zero-volume) joints skip the check.
  const double joint_volume = joint.Volume();
  const bool extents_comparable =
      joint_volume <= 0 ||
      std::min(stats_a.extent.Volume(), stats_b.extent.Volume()) >=
          0.1 * joint_volume;

  if (skew <= options_.pbsm_skew_max && extents_comparable &&
      size_a + size_b <= options_.pbsm_max_objects &&
      (budget == 0 || pbsm_bytes <= budget)) {
    const int resolution = CellSizeCappedResolution(joint, enlarged_edge, 500);
    plan.algorithm = Format("pbsm-%d", resolution);
    plan.rationale = Format(
        "near-uniform data (histogram skew %.2f <= %.2f) and %zu total "
        "objects: PBSM, grid %d^3 (cells ~4x the %.2f-unit average enlarged "
        "object)",
        skew, options_.pbsm_skew_max, size_a + size_b, resolution,
        enlarged_edge);
    return plan;
  }

  if (budget > 0 && touch_bytes > budget) {
    if (static_cast<double>(larger) >=
        static_cast<double>(smaller) * options_.inl_asymmetry) {
      plan.algorithm = "inl";
      plan.build_on_a = size_a <= size_b;
      plan.rationale = Format(
          "memory budget %.1f MB below the ~%.1f MB partitioning estimate "
          "and %zu:%zu cardinality asymmetry (>= %.0fx): indexed nested "
          "loop, R-tree over only the smaller side (%s)",
          budget / 1048576.0, touch_bytes / 1048576.0, larger, smaller,
          options_.inl_asymmetry, plan.build_on_a ? "A" : "B");
      return plan;
    }
    plan.algorithm = "ps";
    plan.rationale = Format(
        "memory budget %.1f MB below the ~%.1f MB partitioning estimate: "
        "plane sweep (sort-only footprint)",
        budget / 1048576.0, touch_bytes / 1048576.0);
    return plan;
  }

  plan.algorithm = "touch";
  plan.build_on_a = size_a <= size_b;  // == SelectivityEstimator::ShouldBuildOnA
  const size_t build_count = plan.build_on_a ? size_a : size_b;
  const size_t partitions = std::clamp<size_t>(
      build_count / std::max<size_t>(1, options_.touch_leaf_target), 16, 8192);
  plan.touch.partitions = partitions;
  plan.touch.join_order = plan.build_on_a ? TouchOptions::JoinOrder::kBuildOnA
                                          : TouchOptions::JoinOrder::kBuildOnB;
  // TOUCH's local-join cells are keyed off the *raw* objects: the distance
  // join bloats one side by epsilon, and sizing cells by the bloated average
  // would make them an order of magnitude too coarse (see TouchOptions::
  // cell_size_multiplier).
  const float raw_edge = std::min(MaxComponent(stats_a.avg_object_extent),
                                  MaxComponent(stats_b.avg_object_extent));
  plan.touch.grid_resolution = CellSizeCappedResolution(joint, raw_edge, 500);
  plan.rationale = Format(
      "skewed or large workload (histogram skew %.2f, %zu+%zu objects): "
      "TOUCH; tree on the sparser side (%s, %zu objects) per the paper's "
      "join-order rule; %zu partitions (~%zu objects/leaf); local-join grid "
      "capped at %d cells/axis",
      skew, size_a, size_b, plan.build_on_a ? "A" : "B", build_count,
      partitions, options_.touch_leaf_target, plan.touch.grid_resolution);
  return plan;
}

}  // namespace touch
