#include "engine/planner.h"

#include <algorithm>
#include <optional>
#include <vector>

#include "engine/calibration.h"
#include "estimate/selectivity.h"
#include "util/format.h"

namespace touch {
namespace {

/// CellSizeCappedResolution over a domain's tightest axis: cells ~4x larger
/// than the average object (finer grids pair objects the histogramming
/// never sees together). `avg_edge` already includes any epsilon
/// enlargement.
int DomainResolution(const Box& domain, float avg_edge, int max_res) {
  const Vec3 extent = domain.Extent();
  return CellSizeCappedResolution(std::min({extent.x, extent.y, extent.z}),
                                  avg_edge, max_res);
}

float MaxComponent(const Vec3& v) { return std::max({v.x, v.y, v.z}); }

constexpr auto Format = StrFormat;  // local shorthand for the rationales

}  // namespace

std::string JoinPlan::ToString() const {
  std::string line;
  if (algorithm == "touch") {
    line = Format(
        "algorithm=touch build=%s partitions=%zu grid=%d "
        "expected_results=%.3g selectivity=%.3g",
        build_on_a ? "A" : "B", touch.partitions, touch.grid_resolution,
        expected_results, expected_selectivity);
  } else {
    line = Format("algorithm=%s build=%s expected_results=%.3g "
                  "selectivity=%.3g",
                  algorithm.c_str(), build_on_a ? "A" : "B", expected_results,
                  expected_selectivity);
  }
  if (calibrated) {
    line += Format(" predicted=%.3gs", predicted_seconds);
    if (!static_algorithm.empty() && static_algorithm != algorithm) {
      line += Format(" (static rule: %s)", static_algorithm.c_str());
    }
  }
  return line + "\n  reason: " + rationale;
}

bool Planner::PairMayProduceResults(const DatasetStats& stats_a,
                                    const DatasetStats& stats_b,
                                    float epsilon) {
  if (stats_a.count == 0 || stats_b.count == 0) return false;
  // The distance join enlarges side A; the extents are exact (registration
  // computed them over the real boxes), so a miss here is a proof.
  return Intersects(stats_a.extent.Enlarged(epsilon), stats_b.extent);
}

JoinPlan Planner::Plan(const DatasetCatalog& catalog,
                       const JoinRequest& request,
                       const CalibrationSnapshot* calibration) const {
  // Pin snapshots rather than holding stats references: a mutation batch
  // racing this plan would otherwise free the stats mid-read.
  const DatasetSnapshotPtr a = catalog.snapshot(request.a);
  const DatasetSnapshotPtr b = catalog.snapshot(request.b);
  return Plan(a->stats, b->stats, request.epsilon, calibration);
}

JoinPlan Planner::Plan(const DatasetStats& stats_a, const DatasetStats& stats_b,
                       float epsilon,
                       const CalibrationSnapshot* calibration) const {
  const size_t size_a = stats_a.count;
  const size_t size_b = stats_b.count;
  const size_t smaller = std::min(size_a, size_b);
  const size_t larger = std::max(size_a, size_b);

  JoinPlan plan;
  plan.touch.threads = 1;  // batch-level parallelism belongs to the engine

  if (smaller == 0) {
    plan.algorithm = "nl";
    plan.rationale = "an input is empty: nested loop (no result, no setup)";
    return plan;
  }
  if (larger <= options_.nested_loop_max) {
    plan.algorithm = "nl";
    plan.rationale = Format(
        "tiny inputs (max(|A|,|B|)=%zu <= %zu): nested loop beats any setup "
        "cost",
        larger, options_.nested_loop_max);
    return plan;
  }
  if (larger <= options_.plane_sweep_max) {
    plan.algorithm = "ps";
    plan.rationale = Format(
        "small inputs (max(|A|,|B|)=%zu <= %zu): plane sweep (sort only, no "
        "index build)",
        larger, options_.plane_sweep_max);
    return plan;
  }

  // Beyond the tiny-input regime, plans are cost-based: pair-combine the
  // per-dataset histograms registration already paid for. No raw geometry
  // is touched — this overload cannot even reach it.
  const PairEstimate estimate = CombineHistograms(
      stats_a, stats_b, epsilon, options_.estimator_resolution);
  plan.expected_results = estimate.expected_results;
  plan.expected_selectivity = estimate.selectivity;

  const double skew =
      std::max(stats_a.HistogramSkew(), stats_b.HistogramSkew());
  Box joint = stats_a.extent;
  joint.ExpandToContain(stats_b.extent);
  // PBSM replicates the *enlarged* boxes into cells, so its cell-size rule
  // must account for the epsilon bloat.
  const float enlarged_edge =
      std::max(MaxComponent(stats_a.avg_object_extent) + 2.0f * epsilon,
               MaxComponent(stats_b.avg_object_extent));

  // Coarse per-object footprint of the partitioning algorithms, calibrated
  // against measured memMB counters (TOUCH ~50 B/object incl. tree + grids;
  // PBSM ~2x for replication).
  const size_t touch_bytes = 48 * (size_a + size_b);
  const size_t pbsm_bytes = 96 * (size_a + size_b);
  const size_t budget = options_.memory_budget_bytes;

  // Per-dataset skew is measured over each dataset's *own* extent, so two
  // individually-uniform datasets with very different extents still form a
  // joint hotspot (all of the small one in a few cells of the joint grid).
  // PBSM is only trusted when both extents fill a fair share of the joint
  // domain; degenerate (zero-volume) joints skip the check.
  const double joint_volume = joint.Volume();
  const bool extents_comparable =
      joint_volume <= 0 ||
      std::min(stats_a.extent.Volume(), stats_b.extent.Volume()) >=
          0.1 * joint_volume;

  // Hard eligibility: constraints no amount of measured evidence overrides
  // (memory budget, PBSM's replication ceiling and joint-grid sanity). The
  // soft rules below — skew crossover, partitioning-vs-sweep — are what
  // calibration may replace.
  const bool pbsm_fits = extents_comparable &&
                         size_a + size_b <= options_.pbsm_max_objects &&
                         (budget == 0 || pbsm_bytes <= budget);
  const bool touch_fits = budget == 0 || touch_bytes <= budget;
  const int pbsm_resolution = DomainResolution(joint, enlarged_edge, 500);

  // Candidate builders: the fully resolved, ready-to-execute configuration
  // of each family, shared by the static rules and the calibrated
  // comparison.
  const JoinPlan base = plan;
  const auto make_touch = [&]() {
    JoinPlan candidate = base;
    candidate.algorithm = "touch";
    candidate.build_on_a = size_a <= size_b;  // SelectivityEstimator::ShouldBuildOnA
    const size_t build_count = candidate.build_on_a ? size_a : size_b;
    candidate.touch.partitions = std::clamp<size_t>(
        build_count / std::max<size_t>(1, options_.touch_leaf_target), 16,
        8192);
    candidate.touch.join_order = candidate.build_on_a
                                     ? TouchOptions::JoinOrder::kBuildOnA
                                     : TouchOptions::JoinOrder::kBuildOnB;
    // TOUCH's local-join cells are keyed off the *raw* objects: the distance
    // join bloats one side by epsilon, and sizing cells by the bloated
    // average would make them an order of magnitude too coarse (see
    // TouchOptions::cell_size_multiplier).
    const float raw_edge = std::min(MaxComponent(stats_a.avg_object_extent),
                                    MaxComponent(stats_b.avg_object_extent));
    candidate.touch.grid_resolution =
        DomainResolution(joint, raw_edge, 500);
    return candidate;
  };
  const auto make_pbsm = [&]() {
    JoinPlan candidate = base;
    candidate.algorithm = Format("pbsm-%d", pbsm_resolution);
    return candidate;
  };
  const auto make_inl = [&]() {
    JoinPlan candidate = base;
    candidate.algorithm = "inl";
    candidate.build_on_a = size_a <= size_b;
    return candidate;
  };
  const auto make_ps = [&]() {
    JoinPlan candidate = base;
    candidate.algorithm = "ps";
    return candidate;
  };

  // --- Static decision rules (the paper-calibrated defaults). -------------
  if (skew <= options_.pbsm_skew_max && pbsm_fits) {
    plan = make_pbsm();
    plan.rationale = Format(
        "near-uniform data (histogram skew %.2f <= %.2f) and %zu total "
        "objects: PBSM, grid %d^3 (cells ~4x the %.2f-unit average enlarged "
        "object)",
        skew, options_.pbsm_skew_max, size_a + size_b, pbsm_resolution,
        enlarged_edge);
  } else if (!touch_fits) {
    if (static_cast<double>(larger) >=
        static_cast<double>(smaller) * options_.inl_asymmetry) {
      plan = make_inl();
      plan.rationale = Format(
          "memory budget %.1f MB below the ~%.1f MB partitioning estimate "
          "and %zu:%zu cardinality asymmetry (>= %.0fx): indexed nested "
          "loop, R-tree over only the smaller side (%s)",
          budget / 1048576.0, touch_bytes / 1048576.0, larger, smaller,
          options_.inl_asymmetry, plan.build_on_a ? "A" : "B");
    } else {
      plan = make_ps();
      plan.rationale = Format(
          "memory budget %.1f MB below the ~%.1f MB partitioning estimate: "
          "plane sweep (sort-only footprint)",
          budget / 1048576.0, touch_bytes / 1048576.0);
    }
  } else {
    plan = make_touch();
    plan.rationale = Format(
        "skewed or large workload (histogram skew %.2f, %zu+%zu objects): "
        "TOUCH; tree on the sparser side (%s, %zu objects) per the paper's "
        "join-order rule; %zu partitions (~%zu objects/leaf); local-join "
        "grid capped at %d cells/axis",
        skew, size_a, size_b, plan.build_on_a ? "A" : "B",
        plan.build_on_a ? size_a : size_b, plan.touch.partitions,
        options_.touch_leaf_target, plan.touch.grid_resolution);
  }

  // --- Calibrated override (measured-run feedback). -----------------------
  // Predict each eligible candidate's cold cost from the fitted per-family
  // models. The override only fires when the static choice itself is
  // measured (otherwise "slower than what?") and at least one measured
  // alternative exists; families without evidence stay listed as unmeasured.
  if (calibration != nullptr) {
    struct Candidate {
      JoinPlan plan;
      std::optional<double> predicted;
    };
    std::vector<Candidate> candidates;
    if (touch_fits) candidates.push_back({make_touch(), std::nullopt});
    if (pbsm_fits) candidates.push_back({make_pbsm(), std::nullopt});
    candidates.push_back({make_inl(), std::nullopt});
    candidates.push_back({make_ps(), std::nullopt});

    const double objects = static_cast<double>(size_a + size_b);
    size_t measured = 0;
    const Candidate* best = nullptr;
    const Candidate* static_choice = nullptr;
    std::string breakdown;
    for (Candidate& candidate : candidates) {
      const std::string family = AlgorithmFamily(candidate.plan.algorithm);
      candidate.predicted =
          calibration->Predict(family, objects, estimate.expected_results);
      if (!breakdown.empty()) breakdown += ", ";
      breakdown += candidate.predicted.has_value()
                       ? Format("%s %.3gs", family.c_str(),
                                *candidate.predicted)
                       : family + " unmeasured";
      if (candidate.predicted.has_value()) {
        ++measured;
        if (best == nullptr || *candidate.predicted < *best->predicted) {
          best = &candidate;
        }
      }
      if (candidate.plan.algorithm == plan.algorithm) {
        static_choice = &candidate;
      }
    }
    if (best != nullptr && static_choice != nullptr && measured >= 2 &&
        static_choice->predicted.has_value()) {
      const std::string static_algorithm = plan.algorithm;
      if (best->plan.algorithm != static_algorithm) {
        const std::string static_rationale = plan.rationale;
        plan = best->plan;
        plan.calibrated = true;
        plan.static_algorithm = static_algorithm;
        plan.predicted_seconds = *best->predicted;
        plan.rationale =
            Format("calibrated override (%zu measured cold runs): %s; ",
                   calibration->total_samples(), breakdown.c_str());
        plan.rationale +=
            "static rule chose " + static_algorithm + " — " + static_rationale;
      } else {
        plan.calibrated = true;
        plan.static_algorithm = static_algorithm;
        plan.predicted_seconds = *static_choice->predicted;
        plan.rationale += Format("; calibration agrees (%s)",
                                 breakdown.c_str());
      }
    }
  }
  return plan;
}

}  // namespace touch
