#ifndef TOUCH_ENGINE_WORKER_POOL_H_
#define TOUCH_ENGINE_WORKER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace touch {

/// Reusable fixed-size worker pool. Unlike the per-call thread spawning of
/// PartitionedJoin, the engine keeps one pool alive across queries, so a
/// steady stream of batches pays thread start-up once.
class WorkerPool {
 public:
  /// `threads` <= 0 uses the hardware concurrency (at least 1).
  explicit WorkerPool(int threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // --- Load signals (the metrics registry's pool gauges) -------------------

  /// Tasks waiting in the queue right now (excludes running ones).
  size_t queue_depth() const;

  /// Workers currently inside a task or its on_done notification.
  int busy_workers() const {
    return busy_workers_.load(std::memory_order_relaxed);
  }

  /// Tasks finished since construction — including tasks whose should_run
  /// declined (their completion was still delivered), so this counter plus
  /// queue_depth plus busy_workers accounts for every Submit.
  uint64_t tasks_completed() const {
    return tasks_completed_.load(std::memory_order_relaxed);
  }

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Enqueues a task with a per-task completion notification: `on_done`
  /// runs on the worker thread immediately after `task` returns — or after
  /// it throws, so completion is delivered even for failing tasks. This is
  /// what lets the engine complete per-request futures without waiting for
  /// a whole batch to drain.
  ///
  /// `should_run` (optional) makes the task conditional: the worker calls
  /// it once, right before running the task, outside the queue lock. When
  /// it returns false the task body is skipped entirely and the worker goes
  /// straight to `on_done` — a task obsoleted while queued (a cancelled
  /// request) costs the pool a function call, not an execution.
  void Submit(std::function<void()> task, std::function<void()> on_done,
              std::function<bool()> should_run = nullptr);

  /// Blocks until every task submitted so far has finished (tasks enqueued
  /// by other threads while waiting extend the wait).
  void WaitIdle();

 private:
  struct Task {
    std::function<void()> run;
    std::function<void()> on_done;     // may be null
    std::function<bool()> should_run;  // may be null (always run)
  };

  void WorkerLoop();

  std::atomic<int> busy_workers_{0};
  std::atomic<uint64_t> tasks_completed_{0};
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<Task> queue_;
  size_t in_flight_ = 0;  // queued + currently running
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace touch

#endif  // TOUCH_ENGINE_WORKER_POOL_H_
