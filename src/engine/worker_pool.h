#ifndef TOUCH_ENGINE_WORKER_POOL_H_
#define TOUCH_ENGINE_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace touch {

/// Reusable fixed-size worker pool. Unlike the per-call thread spawning of
/// PartitionedJoin, the engine keeps one pool alive across queries, so a
/// steady stream of batches pays thread start-up once.
class WorkerPool {
 public:
  /// `threads` <= 0 uses the hardware concurrency (at least 1).
  explicit WorkerPool(int threads = 0);

  /// Drains outstanding tasks, then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task);

  /// Enqueues a task with a per-task completion notification: `on_done`
  /// runs on the worker thread immediately after `task` returns — or after
  /// it throws, so completion is delivered even for failing tasks. This is
  /// what lets the engine complete per-request futures without waiting for
  /// a whole batch to drain.
  ///
  /// `should_run` (optional) makes the task conditional: the worker calls
  /// it once, right before running the task, outside the queue lock. When
  /// it returns false the task body is skipped entirely and the worker goes
  /// straight to `on_done` — a task obsoleted while queued (a cancelled
  /// request) costs the pool a function call, not an execution.
  void Submit(std::function<void()> task, std::function<void()> on_done,
              std::function<bool()> should_run = nullptr);

  /// Blocks until every task submitted so far has finished (tasks enqueued
  /// by other threads while waiting extend the wait).
  void WaitIdle();

 private:
  struct Task {
    std::function<void()> run;
    std::function<void()> on_done;     // may be null
    std::function<bool()> should_run;  // may be null (always run)
  };

  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable idle_;
  std::deque<Task> queue_;
  size_t in_flight_ = 0;  // queued + currently running
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace touch

#endif  // TOUCH_ENGINE_WORKER_POOL_H_
