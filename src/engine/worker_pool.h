#ifndef TOUCH_ENGINE_WORKER_POOL_H_
#define TOUCH_ENGINE_WORKER_POOL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace touch {

/// Reusable fixed-size worker pool. Unlike the per-call thread spawning of
/// PartitionedJoin, the engine keeps one pool alive across queries, so a
/// steady stream of batches pays thread start-up once.
///
/// ## Shutdown ordering
///
/// The destructor (1) sets `stopping_` under `mutex_`, (2) wakes every
/// worker, then (3) joins them. Workers drain the queue first: a worker only
/// exits when `stopping_` is set AND the queue is empty, so every task that
/// was enqueued before the destructor ran still executes (and delivers its
/// `on_done`) before the join completes. Consequences callers rely on:
///
///   - Tasks and `on_done` callbacks may keep running between steps (1) and
///     (3); anything they reference must outlive the pool.
///   - `Submit` racing with destruction is a caller bug (the pool's memory
///     is about to vanish). It is still handled deterministically: once
///     `stopping_` is observed the task body is skipped, `on_done` runs
///     inline on the submitting thread, and a debug assert fires — the
///     completion contract ("every Submit is eventually delivered") holds
///     even in that window, and nothing is left in the queue for a worker
///     that may already have exited.
///   - `should_run` gates are consulted by the worker *after* dequeue, so a
///     task skipped by its gate still counts toward `tasks_completed()`.
class WorkerPool {
 public:
  /// `threads` <= 0 uses the hardware concurrency (at least 1).
  explicit WorkerPool(int threads = 0);

  /// Drains outstanding tasks, then joins the workers (see "Shutdown
  /// ordering" above).
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  int thread_count() const { return static_cast<int>(workers_.size()); }

  // --- Load signals (the metrics registry's pool gauges) -------------------

  /// Tasks waiting in the queue right now (excludes running ones).
  size_t queue_depth() const EXCLUDES(mutex_);

  /// Workers currently inside a task or its on_done notification.
  int busy_workers() const {
    return busy_workers_.load(std::memory_order_relaxed);
  }

  /// Tasks finished since construction — including tasks whose should_run
  /// declined (their completion was still delivered), so this counter plus
  /// queue_depth plus busy_workers accounts for every Submit.
  uint64_t tasks_completed() const {
    return tasks_completed_.load(std::memory_order_relaxed);
  }

  /// Enqueues a task; returns immediately.
  void Submit(std::function<void()> task) EXCLUDES(mutex_);

  /// Enqueues a task with a per-task completion notification: `on_done`
  /// runs on the worker thread immediately after `task` returns — or after
  /// it throws, so completion is delivered even for failing tasks. This is
  /// what lets the engine complete per-request futures without waiting for
  /// a whole batch to drain.
  ///
  /// `should_run` (optional) makes the task conditional: the worker calls
  /// it once, right before running the task, outside the queue lock. When
  /// it returns false the task body is skipped entirely and the worker goes
  /// straight to `on_done` — a task obsoleted while queued (a cancelled
  /// request) costs the pool a function call, not an execution.
  void Submit(std::function<void()> task, std::function<void()> on_done,
              std::function<bool()> should_run = nullptr) EXCLUDES(mutex_);

  /// Blocks until every task submitted so far has finished (tasks enqueued
  /// by other threads while waiting extend the wait).
  void WaitIdle() EXCLUDES(mutex_);

 private:
  struct Task {
    std::function<void()> run;
    std::function<void()> on_done;     // may be null
    std::function<bool()> should_run;  // may be null (always run)
  };

  void WorkerLoop() EXCLUDES(mutex_);

  std::atomic<int> busy_workers_{0};
  std::atomic<uint64_t> tasks_completed_{0};
  mutable Mutex mutex_;
  CondVar work_available_;
  CondVar idle_;
  std::deque<Task> queue_ GUARDED_BY(mutex_);
  size_t in_flight_ GUARDED_BY(mutex_) = 0;  // queued + currently running
  bool stopping_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace touch

#endif  // TOUCH_ENGINE_WORKER_POOL_H_
