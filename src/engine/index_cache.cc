#include "engine/index_cache.h"

#include "util/memory.h"

namespace touch {

IndexCache::EntryPtr IndexCache::GetOrBuild(const IndexCacheKey& key,
                                            const Builder& build) {
  std::promise<EntryPtr> promise;
  std::shared_future<EntryPtr> future;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      future = it->second;
      lock.unlock();
      return future.get();  // blocks while another thread still builds
    }
    ++misses_;
    future = promise.get_future().share();
    entries_.emplace(key, future);
  }

  EntryPtr entry;
  try {
    entry = build();
  } catch (...) {
    // Un-poison the key so later requests can retry the build; waiters
    // blocked on the future rethrow this exception.
    {
      std::lock_guard<std::mutex> lock(mutex_);
      entries_.erase(key);
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  promise.set_value(entry);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bytes_ += entry->tree.MemoryUsageBytes() + VectorBytes(entry->boxes);
  }
  return entry;
}

IndexCache::Stats IndexCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.entries = entries_.size();
  stats.bytes = bytes_;
  return stats;
}

void IndexCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  bytes_ = 0;
}

}  // namespace touch
