#include "engine/index_cache.h"

namespace touch {

const char* ArtifactKindName(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kTouchTree:
      return "touch";
    case ArtifactKind::kInlRTree:
      return "inl";
    case ArtifactKind::kPbsmDirectory:
      return "pbsm";
  }
  return "unknown";
}

IndexCache::ArtifactPtr IndexCache::GetOrBuild(const IndexCacheKey& key,
                                               const Builder& build) {
  std::promise<ArtifactPtr> promise;
  std::shared_future<ArtifactPtr> future;
  uint64_t ticket = 0;
  {
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      future = it->second.future;
      lock.unlock();
      return future.get();  // blocks while another thread still builds
    }
    ++misses_;
    ticket = next_ticket_++;
    future = promise.get_future().share();
    lru_.push_front(key);
    Entry entry;
    entry.future = future;
    entry.ticket = ticket;
    entry.lru_pos = lru_.begin();
    entries_.emplace(key, std::move(entry));
  }

  ArtifactPtr artifact;
  try {
    artifact = build();
  } catch (...) {
    // Un-poison the key so later requests can retry the build; waiters
    // blocked on the future rethrow this exception. The ticket check keeps
    // us from erasing a fresh entry installed after a concurrent Clear().
    {
      std::lock_guard<std::mutex> lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second.ticket == ticket) {
        lru_.erase(it->second.lru_pos);
        entries_.erase(it);
      }
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  promise.set_value(artifact);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.ticket == ticket) {
      it->second.bytes = artifact->MemoryUsageBytes();
      it->second.ready = true;
      bytes_ += it->second.bytes;
      EvictOverCapLocked();
    }
  }
  return artifact;
}

void IndexCache::EvictOverCapLocked() {
  if (max_bytes_ == 0) return;
  auto it = lru_.end();
  while (bytes_ > max_bytes_ && it != lru_.begin()) {
    --it;
    auto entry = entries_.find(*it);
    if (!entry->second.ready) continue;  // still building; never evicted
    bytes_ -= entry->second.bytes;
    ++evictions_;
    entries_.erase(entry);
    it = lru_.erase(it);
  }
}

IndexCache::Stats IndexCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.entries = entries_.size();
  stats.bytes = bytes_;
  stats.capacity_bytes = max_bytes_;
  return stats;
}

void IndexCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

}  // namespace touch
