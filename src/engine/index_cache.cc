#include "engine/index_cache.h"

#include <algorithm>
#include <vector>

#include "obs/metrics.h"

namespace touch {

const char* ArtifactKindName(ArtifactKind kind) {
  switch (kind) {
    case ArtifactKind::kTouchTree:
      return "touch";
    case ArtifactKind::kInlRTree:
      return "inl";
    case ArtifactKind::kPbsmDirectory:
      return "pbsm";
  }
  return "unknown";
}

bool IndexCache::AdmitMissLocked(const IndexCacheKey& key,
                                 const BuildCostFn& expected_build_seconds) {
  if (!options_.admission) return true;
  if (options_.preadmit_build_seconds > 0 && expected_build_seconds &&
      expected_build_seconds() >= options_.preadmit_build_seconds) {
    // Predicted too expensive to rebuild on probation: admit on first
    // sight, and drop any ghost memory of the key (it is resident now).
    ++admission_preadmits_;
    const auto ghost = ghost_index_.find(key);
    if (ghost != ghost_index_.end()) {
      ghost_.erase(ghost->second);
      ghost_index_.erase(ghost);
    }
    return true;
  }
  const auto ghost = ghost_index_.find(key);
  if (ghost != ghost_index_.end()) {
    // Second build request for this key: admit, and forget the ghost (a
    // later re-miss after eviction starts the admission cycle over).
    ghost_.erase(ghost->second);
    ghost_index_.erase(ghost);
    return true;
  }
  // First sighting: reject, but remember the key so the next request for it
  // proves the artifact is not a one-off.
  ghost_.push_front(key);
  ghost_index_.emplace(key, ghost_.begin());
  while (ghost_.size() > std::max<size_t>(1, options_.ghost_capacity)) {
    ghost_index_.erase(ghost_.back());
    ghost_.pop_back();
  }
  return false;
}

IndexCache::ArtifactPtr IndexCache::GetOrBuild(
    const IndexCacheKey& key, const Builder& build,
    const BuildCostFn& expected_build_seconds) {
  std::promise<ArtifactPtr> promise;
  std::shared_future<ArtifactPtr> future;
  uint64_t ticket = 0;
  bool hit = false;
  bool was_ready = false;
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++hits_;
      hit = true;
      // Only a hit on a *completed* entry saved its build time; a
      // single-flight waiter on an in-flight build spends the build's
      // wall-clock blocked on the future and saves nothing.
      was_ready = it->second.ready;
      lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
      future = it->second.future;
    } else {
      ++misses_;
      const bool admitted = AdmitMissLocked(key, expected_build_seconds);
      ticket = next_ticket_++;
      future = promise.get_future().share();
      lru_.push_front(key);
      Entry entry;
      entry.future = future;
      entry.ticket = ticket;
      entry.admitted = admitted;
      entry.lru_pos = lru_.begin();
      entries_.emplace(key, std::move(entry));
    }
  }
  if (hit) {
    ArtifactPtr artifact = future.get();  // blocks while another builds
    if (was_ready) {
      MutexLock lock(mutex_);
      cost_saved_seconds_ += artifact->build_seconds;
    }
    return artifact;
  }

  ArtifactPtr artifact;
  try {
    artifact = build();
  } catch (...) {
    // Un-poison the key so later requests can retry the build; waiters
    // blocked on the future rethrow this exception. The ticket check keeps
    // us from erasing a fresh entry installed after a concurrent Clear().
    {
      MutexLock lock(mutex_);
      auto it = entries_.find(key);
      if (it != entries_.end() && it->second.ticket == ticket) {
        lru_.erase(it->second.lru_pos);
        entries_.erase(it);
      }
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  promise.set_value(artifact);
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end() && it->second.ticket == ticket) {
      if (!it->second.admitted) {
        // Admission rejected this build at miss time: the entry existed
        // only to single-flight concurrent requests. Waiters already hold
        // the shared future (the value is set), so dropping the entry now
        // serves everyone and retains nothing.
        ++admission_rejects_;
        lru_.erase(it->second.lru_pos);
        entries_.erase(it);
      } else {
        it->second.bytes = artifact->MemoryUsageBytes();
        it->second.cost_density =
            artifact->build_seconds /
            static_cast<double>(std::max<size_t>(1, it->second.bytes));
        it->second.ready = true;
        bytes_ += it->second.bytes;
        EvictOverCapLocked();
      }
    }
  }
  return artifact;
}

void IndexCache::EvictOverCapLocked() {
  if (options_.max_bytes == 0 || bytes_ <= options_.max_bytes) return;
  // Victims: completed entries, cheapest-to-rebuild-per-byte first, ties
  // least-recently-used first. One scan + one sort under the lock, however
  // many entries the overshoot costs (an eviction burst must not rescan
  // the table per victim while every lookup waits on the mutex).
  struct Candidate {
    double cost_density;
    std::map<IndexCacheKey, Entry>::iterator entry;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(entries_.size());
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {  // LRU-tail first
    const auto entry = entries_.find(*it);
    if (entry->second.ready) {
      candidates.push_back({entry->second.cost_density, entry});
    }
  }
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& x, const Candidate& y) {
                     return x.cost_density < y.cost_density;
                   });
  for (const Candidate& victim : candidates) {
    if (bytes_ <= options_.max_bytes) return;
    bytes_ -= victim.entry->second.bytes;
    ++evictions_;
    lru_.erase(victim.entry->second.lru_pos);
    entries_.erase(victim.entry);
  }
}

IndexCache::Stats IndexCache::stats() const {
  MutexLock lock(mutex_);
  Stats stats;
  stats.hits = hits_;
  stats.misses = misses_;
  stats.evictions = evictions_;
  stats.admission_rejects = admission_rejects_;
  stats.admission_preadmits = admission_preadmits_;
  stats.entries = entries_.size();
  stats.bytes = bytes_;
  stats.capacity_bytes = options_.max_bytes;
  stats.cost_saved_seconds = cost_saved_seconds_;
  return stats;
}

void IndexCache::RegisterMetricProviders(MetricsRegistry& registry,
                                         const std::string& prefix) const {
  // Each provider samples a fresh Stats snapshot at export time. One
  // snapshot per metric costs a few mutex hops per scrape — nothing against
  // a scrape interval — and keeps this method a pure registration.
  const auto sample = [this](auto field) {
    return [this, field]() { return static_cast<double>(field(stats())); };
  };
  registry.SetProvider(prefix + "hits_total", MetricType::kCounter,
                       sample([](const Stats& s) { return s.hits; }));
  registry.SetProvider(prefix + "misses_total", MetricType::kCounter,
                       sample([](const Stats& s) { return s.misses; }));
  registry.SetProvider(prefix + "evictions_total", MetricType::kCounter,
                       sample([](const Stats& s) { return s.evictions; }));
  registry.SetProvider(
      prefix + "admission_rejects_total", MetricType::kCounter,
      sample([](const Stats& s) { return s.admission_rejects; }));
  registry.SetProvider(
      prefix + "admission_preadmits_total", MetricType::kCounter,
      sample([](const Stats& s) { return s.admission_preadmits; }));
  registry.SetProvider(prefix + "entries", MetricType::kGauge,
                       sample([](const Stats& s) { return s.entries; }));
  registry.SetProvider(prefix + "bytes", MetricType::kGauge,
                       sample([](const Stats& s) { return s.bytes; }));
  registry.SetProvider(
      prefix + "cost_saved_seconds_total", MetricType::kCounter,
      sample([](const Stats& s) { return s.cost_saved_seconds; }));
}

void IndexCache::InvalidateDataset(DatasetHandle dataset,
                                   uint64_t current_version) {
  MutexLock lock(mutex_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    const IndexCacheKey& key = it->first;
    if (key.dataset == dataset && key.version < current_version &&
        it->second.ready) {
      bytes_ -= it->second.bytes;
      ++evictions_;
      lru_.erase(it->second.lru_pos);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  for (auto it = ghost_index_.begin(); it != ghost_index_.end();) {
    if (it->first.dataset == dataset && it->first.version < current_version) {
      ghost_.erase(it->second);
      it = ghost_index_.erase(it);
    } else {
      ++it;
    }
  }
}

void IndexCache::Clear() {
  MutexLock lock(mutex_);
  entries_.clear();
  lru_.clear();
  ghost_.clear();
  ghost_index_.clear();
  bytes_ = 0;
}

}  // namespace touch
