#include "engine/catalog.h"

#include <algorithm>
#include <cstring>

#include "estimate/selectivity.h"
#include "geom/grid.h"

namespace touch {

double DatasetStats::HistogramSkew() const {
  // Measure at (at most) 16 cells/axis regardless of storage resolution:
  // finer grids see emptier, peakier cells, which would silently rescale
  // every skew threshold. Finer histograms are block-aggregated down — an
  // exact nested-grid aggregation when the resolution is a multiple of 16,
  // and blocks differing by at most one fine cell otherwise (e.g. stats
  // deserialized from a peer that histogrammed at an odd resolution).
  constexpr int kSkewResolution = 16;
  const int res = histogram_resolution;
  uint64_t max_count = 0;
  uint64_t total = 0;
  size_t occupied = 0;
  const auto tally = [&](uint64_t cell) {
    if (cell == 0) return;
    max_count = std::max(max_count, cell);
    total += cell;
    ++occupied;
  };
  if (res <= kSkewResolution) {
    for (const uint32_t cell : histogram) tally(cell);
  } else {
    constexpr int kCoarse = kSkewResolution;
    const auto coarse_of = [res](int fine) {
      return fine * kCoarse / res;  // 16 groups, sizes differing by <= 1
    };
    std::vector<uint64_t> coarse(
        static_cast<size_t>(kCoarse) * kCoarse * kCoarse, 0);
    for (int x = 0; x < res; ++x) {
      for (int y = 0; y < res; ++y) {
        for (int z = 0; z < res; ++z) {
          coarse[(static_cast<size_t>(coarse_of(x)) * kCoarse +
                  coarse_of(y)) *
                     kCoarse +
                 coarse_of(z)] +=
              histogram[(static_cast<size_t>(x) * res + y) * res + z];
        }
      }
    }
    for (const uint64_t cell : coarse) tally(cell);
  }
  if (occupied == 0) return 0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(occupied);
  return static_cast<double>(max_count) / mean;
}

namespace {

/// Shared by the from-scratch and incremental stats paths so both produce
/// the same bits: avg/density are computed from an order-independent extent
/// (multiset min/max), ExactSum extent sums, and the object count.
void FinalizeDerivedStats(const ExactSum& sx, const ExactSum& sy,
                          const ExactSum& sz, DatasetStats* stats) {
  const double inv = 1.0 / static_cast<double>(stats->count);
  stats->avg_object_extent =
      Vec3(static_cast<float>(sx.ToDouble() * inv),
           static_cast<float>(sy.ToDouble() * inv),
           static_cast<float>(sz.ToDouble() * inv));
  const double volume = stats->extent.Volume();
  stats->density =
      volume > 0 ? static_cast<double>(stats->count) / volume : 0;
}

size_t HistogramCell(const GridMapper& grid, int res, const Box& box) {
  const CellCoord c = grid.CellOf(box.Center());
  return (static_cast<size_t>(c.x) * res + c.y) * res + c.z;
}

}  // namespace

DatasetStats ComputeDatasetStats(std::span<const Box> boxes,
                                 int histogram_resolution) {
  DatasetStats stats;
  stats.count = boxes.size();
  if (boxes.empty()) return stats;

  // ExactSum (not a running double) so the incremental mutation path —
  // which adds and subtracts extents in arbitrary order — lands on the
  // same accumulator state, and therefore the same avg bits, as this scan.
  ExactSum sx;
  ExactSum sy;
  ExactSum sz;
  for (const Box& box : boxes) {
    stats.extent.ExpandToContain(box);
    const Vec3 e = box.Extent();
    sx.Add(e.x);
    sy.Add(e.y);
    sz.Add(e.z);
  }
  FinalizeDerivedStats(sx, sy, sz, &stats);

  const int res = std::max(1, histogram_resolution);
  stats.histogram_resolution = res;
  stats.histogram.assign(static_cast<size_t>(res) * res * res, 0);
  const GridMapper grid(stats.extent, res);
  for (const Box& box : boxes) {
    ++stats.histogram[HistogramCell(grid, res, box)];
  }
  return stats;
}

namespace {

/// Per-axis fan-out of one source histogram cell onto the joint grid: the
/// first overlapped target cell and the share of the source cell's extent
/// falling into it and its successors. Shares sum to 1 per source cell, so
/// resampling conserves total mass exactly.
struct AxisSplit {
  int first_target = 0;
  std::vector<double> fractions;
};

std::vector<AxisSplit> SplitAxis(float src_lo, float src_hi, int src_res,
                                 float dst_lo, float dst_hi, int dst_res) {
  std::vector<AxisSplit> splits(static_cast<size_t>(src_res));
  const double src_w =
      (static_cast<double>(src_hi) - src_lo) / static_cast<double>(src_res);
  const double dst_w =
      (static_cast<double>(dst_hi) - dst_lo) / static_cast<double>(dst_res);
  const auto dst_cell_of = [&](double x) {
    if (dst_w <= 0) return 0;
    return std::clamp(static_cast<int>((x - dst_lo) / dst_w), 0, dst_res - 1);
  };
  for (int i = 0; i < src_res; ++i) {
    AxisSplit& split = splits[static_cast<size_t>(i)];
    const double s0 = src_lo + i * src_w;
    const double s1 = s0 + src_w;
    if (src_w <= 0 || dst_w <= 0) {
      // Degenerate source or target axis: all mass sits at one coordinate.
      split.first_target = dst_cell_of(s0);
      split.fractions.assign(1, 1.0);
      continue;
    }
    const int j0 = dst_cell_of(s0);
    const int j1 = std::max(j0, dst_cell_of(s1));
    split.first_target = j0;
    split.fractions.assign(static_cast<size_t>(j1 - j0 + 1), 0.0);
    double total = 0;
    for (int j = j0; j <= j1; ++j) {
      const double t0 = dst_lo + j * dst_w;
      const double overlap = std::min(s1, t0 + dst_w) - std::max(s0, t0);
      if (overlap > 0) split.fractions[static_cast<size_t>(j - j0)] = overlap;
      total += std::max(0.0, overlap);
    }
    if (total > 0) {
      for (double& fraction : split.fractions) fraction /= total;
    } else {
      split.fractions.assign(1, 1.0);
    }
  }
  return splits;
}

/// Spreads a dataset's center histogram (computed over its own extent at
/// registration) onto `resolution`^3 cells of the joint `domain`, treating
/// each source cell's count as uniformly distributed over the cell.
std::vector<double> ResampleHistogram(const DatasetStats& stats,
                                      const Box& domain, int resolution) {
  std::vector<double> out(
      static_cast<size_t>(resolution) * resolution * resolution, 0.0);
  if (stats.count == 0 || stats.histogram.empty()) return out;
  const int src_res = stats.histogram_resolution;
  const std::vector<AxisSplit> sx =
      SplitAxis(stats.extent.lo.x, stats.extent.hi.x, src_res, domain.lo.x,
                domain.hi.x, resolution);
  const std::vector<AxisSplit> sy =
      SplitAxis(stats.extent.lo.y, stats.extent.hi.y, src_res, domain.lo.y,
                domain.hi.y, resolution);
  const std::vector<AxisSplit> sz =
      SplitAxis(stats.extent.lo.z, stats.extent.hi.z, src_res, domain.lo.z,
                domain.hi.z, resolution);
  for (int x = 0; x < src_res; ++x) {
    for (int y = 0; y < src_res; ++y) {
      for (int z = 0; z < src_res; ++z) {
        const uint32_t count =
            stats.histogram[(static_cast<size_t>(x) * src_res + y) * src_res +
                            z];
        if (count == 0) continue;
        for (size_t ix = 0; ix < sx[x].fractions.size(); ++ix) {
          const double wx = count * sx[x].fractions[ix];
          if (wx <= 0) continue;
          const size_t jx = static_cast<size_t>(sx[x].first_target) + ix;
          for (size_t iy = 0; iy < sy[y].fractions.size(); ++iy) {
            const double wxy = wx * sy[y].fractions[iy];
            if (wxy <= 0) continue;
            const size_t jy = static_cast<size_t>(sy[y].first_target) + iy;
            for (size_t iz = 0; iz < sz[z].fractions.size(); ++iz) {
              const double wxyz = wxy * sz[z].fractions[iz];
              if (wxyz <= 0) continue;
              const size_t jz = static_cast<size_t>(sz[z].first_target) + iz;
              out[(jx * resolution + jy) * resolution + jz] += wxyz;
            }
          }
        }
      }
    }
  }
  return out;
}

}  // namespace

PairEstimate CombineHistograms(const DatasetStats& a, const DatasetStats& b,
                               float epsilon, int resolution) {
  PairEstimate estimate;
  if (a.count == 0 || b.count == 0) return estimate;
  Box domain = a.extent;
  domain.ExpandToContain(b.extent);
  if (domain.IsEmpty()) return estimate;

  // Same cell-size clamp as SelectivityEstimator: the within-cell uniformity
  // assumption needs cells comfortably larger than the average object.
  const Vec3 extent = domain.Extent();
  const float max_avg =
      std::max({a.avg_object_extent.x, a.avg_object_extent.y,
                a.avg_object_extent.z, b.avg_object_extent.x,
                b.avg_object_extent.y, b.avg_object_extent.z});
  const int res =
      CellSizeCappedResolution(std::min({extent.x, extent.y, extent.z}),
                               max_avg, std::max(1, resolution));

  const std::vector<double> ha = ResampleHistogram(a, domain, res);
  const std::vector<double> hb = ResampleHistogram(b, domain, res);

  const double cell_edge[3] = {extent.x / static_cast<double>(res),
                               extent.y / static_cast<double>(res),
                               extent.z / static_cast<double>(res)};
  // The distance join enlarges A's boxes by epsilon on every side.
  const double ea[3] = {a.avg_object_extent.x + 2.0 * epsilon,
                        a.avg_object_extent.y + 2.0 * epsilon,
                        a.avg_object_extent.z + 2.0 * epsilon};
  const double eb[3] = {b.avg_object_extent.x, b.avg_object_extent.y,
                        b.avg_object_extent.z};
  AxisProbabilities p[3];
  for (int axis = 0; axis < 3; ++axis) {
    p[axis] = AxisOverlapProbabilities(ea[axis], eb[axis], cell_edge[axis]);
  }

  // Sum hA(c) * hB(c + d) over all cells and the 27 offsets d in {-1,0,1}^3,
  // weighting each offset by the product of per-axis probabilities — the
  // SelectivityEstimator model applied to the resampled (fractional) counts.
  const auto b_count_at = [&](int x, int y, int z) -> double {
    if (x < 0 || y < 0 || z < 0 || x >= res || y >= res || z >= res) return 0;
    return hb[(static_cast<size_t>(x) * res + y) * res + z];
  };
  double expected = 0;
  double peak = 0;
  size_t occupied = 0;
  for (int x = 0; x < res; ++x) {
    for (int y = 0; y < res; ++y) {
      for (int z = 0; z < res; ++z) {
        const double a_count =
            ha[(static_cast<size_t>(x) * res + y) * res + z];
        if (a_count <= 0) continue;
        double b_weighted = 0;
        for (int dx = -1; dx <= 1; ++dx) {
          const double px = dx == 0 ? p[0].same : p[0].adjacent;
          for (int dy = -1; dy <= 1; ++dy) {
            const double py = dy == 0 ? p[1].same : p[1].adjacent;
            for (int dz = -1; dz <= 1; ++dz) {
              const double pz = dz == 0 ? p[2].same : p[2].adjacent;
              b_weighted += px * py * pz * b_count_at(x + dx, y + dy, z + dz);
            }
          }
        }
        const double contribution = a_count * b_weighted;
        if (contribution <= 0) continue;
        expected += contribution;
        peak = std::max(peak, contribution);
        ++occupied;
      }
    }
  }

  estimate.expected_results = expected;
  estimate.selectivity =
      expected / (static_cast<double>(a.count) * static_cast<double>(b.count));
  if (occupied > 0 && expected > 0) {
    estimate.pair_skew = peak / (expected / static_cast<double>(occupied));
  }
  return estimate;
}

namespace {

constexpr uint32_t kStatsFormatVersion = 1;

template <typename T>
void AppendPod(std::vector<uint8_t>* out, const T& value) {
  const auto* bytes = reinterpret_cast<const uint8_t*>(&value);
  out->insert(out->end(), bytes, bytes + sizeof(T));
}

template <typename T>
bool ConsumePod(std::span<const uint8_t>* bytes, T* value) {
  if (bytes->size() < sizeof(T)) return false;
  std::memcpy(value, bytes->data(), sizeof(T));
  *bytes = bytes->subspan(sizeof(T));
  return true;
}

}  // namespace

std::vector<uint8_t> SerializeDatasetStats(const DatasetStats& stats) {
  std::vector<uint8_t> out;
  out.reserve(64 + stats.histogram.size() * sizeof(uint32_t));
  AppendPod(&out, kStatsFormatVersion);
  AppendPod(&out, static_cast<uint64_t>(stats.count));
  // Corner-by-corner floats, not the whole Box, so struct padding never
  // leaks into (or varies) the wire format.
  for (const float field :
       {stats.extent.lo.x, stats.extent.lo.y, stats.extent.lo.z,
        stats.extent.hi.x, stats.extent.hi.y, stats.extent.hi.z,
        stats.avg_object_extent.x, stats.avg_object_extent.y,
        stats.avg_object_extent.z}) {
    AppendPod(&out, field);
  }
  AppendPod(&out, stats.density);
  AppendPod(&out, static_cast<int32_t>(stats.histogram_resolution));
  AppendPod(&out, static_cast<uint64_t>(stats.histogram.size()));
  const size_t offset = out.size();
  out.resize(offset + stats.histogram.size() * sizeof(uint32_t));
  if (!stats.histogram.empty()) {
    std::memcpy(out.data() + offset, stats.histogram.data(),
                stats.histogram.size() * sizeof(uint32_t));
  }
  return out;
}

bool DeserializeDatasetStats(std::span<const uint8_t> bytes,
                             DatasetStats* stats) {
  uint32_t version = 0;
  if (!ConsumePod(&bytes, &version) || version != kStatsFormatVersion) {
    return false;
  }
  DatasetStats parsed;
  uint64_t count = 0;
  if (!ConsumePod(&bytes, &count)) return false;
  parsed.count = static_cast<size_t>(count);
  float fields[9] = {};
  for (float& field : fields) {
    if (!ConsumePod(&bytes, &field)) return false;
  }
  parsed.extent = Box(Vec3(fields[0], fields[1], fields[2]),
                      Vec3(fields[3], fields[4], fields[5]));
  parsed.avg_object_extent = Vec3(fields[6], fields[7], fields[8]);
  int32_t resolution = 0;
  uint64_t histogram_size = 0;
  if (!ConsumePod(&bytes, &parsed.density) ||
      !ConsumePod(&bytes, &resolution) ||
      !ConsumePod(&bytes, &histogram_size)) {
    return false;
  }
  // Stats may arrive from untrusted peers (a remote catalog shard), so the
  // declared shape is validated against the actual payload *before* any
  // arithmetic that could overflow or any allocation it would size: the
  // resolution bound keeps res^3 far from uint64 wraparound, and the
  // histogram size is compared against the real remaining byte count.
  if (resolution < 0 || resolution > 4096) return false;
  parsed.histogram_resolution = resolution;
  const uint64_t expected_cells =
      resolution == 0 ? 0
                      : static_cast<uint64_t>(resolution) * resolution *
                            resolution;
  if (bytes.size() % sizeof(uint32_t) != 0 ||
      bytes.size() / sizeof(uint32_t) != histogram_size ||
      histogram_size != expected_cells) {
    return false;
  }
  parsed.histogram.resize(static_cast<size_t>(histogram_size));
  if (histogram_size > 0) {
    std::memcpy(parsed.histogram.data(), bytes.data(),
                parsed.histogram.size() * sizeof(uint32_t));
  }
  *stats = std::move(parsed);
  return true;
}

DatasetHandle DatasetCatalog::Register(std::string name, Dataset boxes) {
  DatasetStats stats = ComputeDatasetStats(boxes);
  return Register(std::move(name), std::move(boxes), std::move(stats));
}

DatasetHandle DatasetCatalog::Register(std::string name, Dataset boxes,
                                       DatasetStats stats) {
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  auto snapshot = std::make_shared<DatasetSnapshot>();
  snapshot->stats = std::move(stats);
  snapshot->boxes = std::move(boxes);
  snapshot->version = 0;
  entry->snapshot = std::move(snapshot);
  entry->next_id = static_cast<uint32_t>(entry->snapshot->boxes.size());
  MutexLock lock(mutex_);
  entries_.push_back(std::move(entry));
  return static_cast<DatasetHandle>(entries_.size() - 1);
}

DatasetCatalog::Entry* DatasetCatalog::entry(DatasetHandle handle) const {
  MutexLock lock(mutex_);
  return entries_[handle].get();
}

const std::string& DatasetCatalog::name(DatasetHandle handle) const {
  return entry(handle)->name;
}

const Dataset& DatasetCatalog::boxes(DatasetHandle handle) const {
  Entry* e = entry(handle);
  MutexLock lock(e->m);
  // The entry keeps the snapshot pinned, so this reference stays valid
  // until the dataset's next mutation (the documented contract).
  return e->snapshot->boxes;
}

const DatasetStats& DatasetCatalog::stats(DatasetHandle handle) const {
  Entry* e = entry(handle);
  MutexLock lock(e->m);
  return e->snapshot->stats;
}

DatasetSnapshotPtr DatasetCatalog::snapshot(DatasetHandle handle) const {
  Entry* e = entry(handle);
  MutexLock lock(e->m);
  return e->snapshot;
}

uint64_t DatasetCatalog::version(DatasetHandle handle) const {
  Entry* e = entry(handle);
  MutexLock lock(e->m);
  return e->version;
}

void DatasetCatalog::EnsureDynamicLocked(Entry& e) {
  if (e.dynamic_ready) return;
  const Dataset& boxes = e.snapshot->boxes;
  e.cur_boxes.assign(boxes.begin(), boxes.end());
  e.cur_ids.resize(boxes.size());
  e.slot_of.reserve(boxes.size());
  for (uint32_t i = 0; i < boxes.size(); ++i) {
    e.cur_ids[i] = i;
    e.slot_of.emplace(i, i);
    e.tree.Insert(i, boxes[i]);
    const Vec3 ext = boxes[i].Extent();
    e.sum_x.Add(ext.x);
    e.sum_y.Add(ext.y);
    e.sum_z.Add(ext.z);
  }
  e.dynamic_ready = true;
}

void DatasetCatalog::RebuildStatsLocked(Entry& e, DatasetStats* stats) {
  // Extent from the tree: a multiset min/max over the same boxes, so it is
  // bitwise identical to ComputeDatasetStats' ExpandToContain fold.
  stats->count = e.cur_boxes.size();
  stats->extent = e.tree.bounds();
  if (stats->count == 0) {
    *stats = DatasetStats{};
    return;
  }
  FinalizeDerivedStats(e.sum_x, e.sum_y, e.sum_z, stats);
}

uint64_t DatasetCatalog::ApplyMutations(
    DatasetHandle handle, std::span<const Mutation> mutations,
    std::vector<AppliedMutation>* applied) {
  Entry* ep = entry(handle);
  Entry& e = *ep;
  MutexLock lock(e.m);
  EnsureDynamicLocked(e);

  const Box old_extent = e.snapshot->stats.extent;
  const int res = e.snapshot->stats.histogram_resolution;
  // Center-cell deltas against the *old* extent, applied only if the hull
  // did not move; a hull change forces a full (still order-independent)
  // rebin over the current boxes.
  std::vector<std::pair<size_t, int>> cell_deltas;
  const GridMapper old_grid(old_extent.IsEmpty() ? Box() : old_extent,
                            std::max(1, res));

  for (const Mutation& m : mutations) {
    AppliedMutation record;
    switch (m.kind) {
      case MutationKind::kInsert: {
        uint32_t id = m.id;
        if (id == kInvalidObjectId) {
          id = e.next_id++;
        } else if (e.slot_of.contains(id)) {
          continue;  // live id: inapplicable
        } else if (id >= e.next_id) {
          e.next_id = id + 1;
        }
        const uint32_t slot = static_cast<uint32_t>(e.cur_boxes.size());
        e.cur_boxes.push_back(m.box);
        e.cur_ids.push_back(id);
        e.slot_of.emplace(id, slot);
        e.tree.Insert(id, m.box);
        const Vec3 ext = m.box.Extent();
        e.sum_x.Add(ext.x);
        e.sum_y.Add(ext.y);
        e.sum_z.Add(ext.z);
        if (id != slot) e.identity = false;
        if (res > 0) {
          cell_deltas.emplace_back(HistogramCell(old_grid, res, m.box), 1);
        }
        record = AppliedMutation{id, false, true, Box(), m.box};
        break;
      }
      case MutationKind::kDelete: {
        const auto it = e.slot_of.find(m.id);
        if (it == e.slot_of.end()) continue;
        const uint32_t slot = it->second;
        const Box old_box = e.cur_boxes[slot];
        e.tree.Remove(m.id, old_box);
        const Vec3 ext = old_box.Extent();
        e.sum_x.Subtract(ext.x);
        e.sum_y.Subtract(ext.y);
        e.sum_z.Subtract(ext.z);
        const uint32_t last = static_cast<uint32_t>(e.cur_boxes.size() - 1);
        if (slot != last) {
          e.cur_boxes[slot] = e.cur_boxes[last];
          e.cur_ids[slot] = e.cur_ids[last];
          e.slot_of[e.cur_ids[slot]] = slot;
          e.identity = false;
        } else if (m.id != last) {
          e.identity = false;
        }
        e.cur_boxes.pop_back();
        e.cur_ids.pop_back();
        e.slot_of.erase(it);
        if (res > 0) {
          cell_deltas.emplace_back(HistogramCell(old_grid, res, old_box),
                                   -1);
        }
        record = AppliedMutation{m.id, true, false, old_box, Box()};
        break;
      }
      case MutationKind::kUpdate: {
        const auto it = e.slot_of.find(m.id);
        if (it == e.slot_of.end()) continue;
        const uint32_t slot = it->second;
        const Box old_box = e.cur_boxes[slot];
        e.tree.Update(m.id, old_box, m.box);
        e.cur_boxes[slot] = m.box;
        const Vec3 old_ext = old_box.Extent();
        const Vec3 new_ext = m.box.Extent();
        e.sum_x.Subtract(old_ext.x);
        e.sum_y.Subtract(old_ext.y);
        e.sum_z.Subtract(old_ext.z);
        e.sum_x.Add(new_ext.x);
        e.sum_y.Add(new_ext.y);
        e.sum_z.Add(new_ext.z);
        if (res > 0) {
          cell_deltas.emplace_back(HistogramCell(old_grid, res, old_box),
                                   -1);
          cell_deltas.emplace_back(HistogramCell(old_grid, res, m.box), 1);
        }
        record = AppliedMutation{m.id, true, true, old_box, m.box};
        break;
      }
    }
    if (applied != nullptr) applied->push_back(record);
  }

  auto next = std::make_shared<DatasetSnapshot>();
  next->boxes.assign(e.cur_boxes.begin(), e.cur_boxes.end());
  if (!e.identity) next->ids = e.cur_ids;
  RebuildStatsLocked(e, &next->stats);
  if (next->stats.count > 0) {
    const int new_res =
        res > 0 ? res : std::max(1, e.snapshot->stats.histogram_resolution);
    next->stats.histogram_resolution = std::max(1, new_res);
    const int r = next->stats.histogram_resolution;
    if (!(next->stats.extent == old_extent) || res <= 0) {
      // Hull moved (or the dataset was empty before): rebin every center.
      // Per-box binning is independent, so this matches the scratch scan.
      next->stats.histogram.assign(static_cast<size_t>(r) * r * r, 0);
      const GridMapper grid(next->stats.extent, r);
      for (const Box& box : next->boxes) {
        ++next->stats.histogram[HistogramCell(grid, r, box)];
      }
    } else {
      next->stats.histogram = e.snapshot->stats.histogram;
      for (const auto& [cell, delta] : cell_deltas) {
        next->stats.histogram[cell] =
            static_cast<uint32_t>(static_cast<int64_t>(
                next->stats.histogram[cell]) + delta);
      }
    }
  }
  next->version = ++e.version;
  e.snapshot = std::move(next);
  return e.version;
}

uint32_t DatasetCatalog::Insert(DatasetHandle handle, const Box& box,
                                uint32_t id) {
  const Mutation m{MutationKind::kInsert, id, box};
  std::vector<AppliedMutation> applied;
  ApplyMutations(handle, std::span(&m, 1), &applied);
  return applied.empty() ? kInvalidObjectId : applied.front().id;
}

bool DatasetCatalog::Delete(DatasetHandle handle, uint32_t id) {
  const Mutation m{MutationKind::kDelete, id, Box()};
  std::vector<AppliedMutation> applied;
  ApplyMutations(handle, std::span(&m, 1), &applied);
  return !applied.empty();
}

bool DatasetCatalog::Update(DatasetHandle handle, uint32_t id,
                            const Box& box) {
  const Mutation m{MutationKind::kUpdate, id, box};
  std::vector<AppliedMutation> applied;
  ApplyMutations(handle, std::span(&m, 1), &applied);
  return !applied.empty();
}

std::optional<Box> DatasetCatalog::FindObject(DatasetHandle handle,
                                              uint32_t id) const {
  Entry* ep = entry(handle);
  Entry& e = *ep;
  MutexLock lock(e.m);
  if (!e.dynamic_ready) {
    const Dataset& boxes = e.snapshot->boxes;
    if (id < boxes.size()) return boxes[id];
    return std::nullopt;
  }
  const auto it = e.slot_of.find(id);
  if (it == e.slot_of.end()) return std::nullopt;
  return e.cur_boxes[it->second];
}

void DatasetCatalog::QueryObjects(
    DatasetHandle handle, const Box& query,
    const std::function<void(uint32_t, const Box&)>& emit) const {
  Entry* ep = entry(handle);
  Entry& e = *ep;
  MutexLock lock(e.m);
  EnsureDynamicLocked(e);
  e.tree.Query(query, [&](uint32_t id, const Box& box) { emit(id, box); });
}

std::optional<DatasetHandle> DatasetCatalog::Find(
    const std::string& name) const {
  MutexLock lock(mutex_);
  for (size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i]->name == name) return static_cast<DatasetHandle>(i);
  }
  return std::nullopt;
}

}  // namespace touch
