#include "engine/catalog.h"

#include <algorithm>

#include "geom/grid.h"

namespace touch {

double DatasetStats::HistogramSkew() const {
  uint32_t max_count = 0;
  uint64_t total = 0;
  size_t occupied = 0;
  for (const uint32_t cell : histogram) {
    if (cell == 0) continue;
    max_count = std::max(max_count, cell);
    total += cell;
    ++occupied;
  }
  if (occupied == 0) return 0;
  const double mean = static_cast<double>(total) / static_cast<double>(occupied);
  return static_cast<double>(max_count) / mean;
}

DatasetStats ComputeDatasetStats(std::span<const Box> boxes,
                                 int histogram_resolution) {
  DatasetStats stats;
  stats.count = boxes.size();
  if (boxes.empty()) return stats;

  double sx = 0;
  double sy = 0;
  double sz = 0;
  for (const Box& box : boxes) {
    stats.extent.ExpandToContain(box);
    const Vec3 e = box.Extent();
    sx += e.x;
    sy += e.y;
    sz += e.z;
  }
  const double inv = 1.0 / static_cast<double>(boxes.size());
  stats.avg_object_extent = Vec3(static_cast<float>(sx * inv),
                                 static_cast<float>(sy * inv),
                                 static_cast<float>(sz * inv));
  const double volume = stats.extent.Volume();
  stats.density = volume > 0 ? static_cast<double>(boxes.size()) / volume : 0;

  const int res = std::max(1, histogram_resolution);
  stats.histogram_resolution = res;
  stats.histogram.assign(static_cast<size_t>(res) * res * res, 0);
  const GridMapper grid(stats.extent, res);
  for (const Box& box : boxes) {
    const CellCoord c = grid.CellOf(box.Center());
    ++stats.histogram[(static_cast<size_t>(c.x) * res + c.y) * res + c.z];
  }
  return stats;
}

DatasetHandle DatasetCatalog::Register(std::string name, Dataset boxes) {
  auto entry = std::make_unique<Entry>();
  entry->name = std::move(name);
  entry->stats = ComputeDatasetStats(boxes);
  entry->boxes = std::move(boxes);
  entries_.push_back(std::move(entry));
  return static_cast<DatasetHandle>(entries_.size() - 1);
}

std::optional<DatasetHandle> DatasetCatalog::Find(
    const std::string& name) const {
  for (size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i]->name == name) return static_cast<DatasetHandle>(i);
  }
  return std::nullopt;
}

}  // namespace touch
