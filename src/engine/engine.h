#ifndef TOUCH_ENGINE_ENGINE_H_
#define TOUCH_ENGINE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/calibration.h"
#include "engine/catalog.h"
#include "engine/index_cache.h"
#include "engine/planner.h"
#include "engine/worker_pool.h"
#include "join/algorithm.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/cancellation.h"

namespace touch {

/// Lifecycle phase of one submitted request, advanced by the worker thread
/// executing it (terminal phases by whoever delivers the result). The
/// cancellation flag is checked at every phase boundary and cooperatively
/// inside the execution kernels, so `phase()` on a RequestHandle tells you
/// where a cancel would currently take effect.
enum class RequestPhase : uint8_t {
  kQueued = 0,
  kPlanning = 1,
  kBuildingIndex = 2,
  kExecuting = 3,
  kCompleted = 4,
  kCancelled = 5,
};

/// Short stable name ("queued", ..., "cancelled") for logs and telemetry.
const char* RequestPhaseName(RequestPhase phase);

/// Terminal status of one engine query.
enum class RequestStatus : uint8_t {
  kOk = 0,
  /// The request was cancelled (handle, batch or CLI timeout) before it
  /// finished. Stats are partial, pairs may have been partially emitted.
  kCancelled = 1,
  /// The request could not run; JoinResult::error says why.
  kError = 2,
};

const char* RequestStatusName(RequestStatus status);

/// Direction of one continuous-join result delta (ResultSink::EmitDelta).
enum class DeltaKind : uint8_t { kAdded = 0, kRemoved = 1 };

struct EngineOptions {
  /// Worker threads for submitted requests; <= 0 uses hardware concurrency.
  int threads = 0;
  PlannerOptions planner;
  /// Reuse built index artifacts (TOUCH trees, INL R-trees, PBSM cell
  /// directories) across queries (the paper's prebuilt-index ablation,
  /// productized). Off forces every query to build cold.
  bool cache_indexes = true;
  /// Byte cap on the index cache (0 = unbounded). Once resident artifacts
  /// exceed it, the lowest build-cost-density ones are evicted (ties fall
  /// back to LRU); see IndexCache.
  size_t max_cache_bytes = 0;
  /// Ghost-list cache admission: an artifact is only retained after the
  /// *second* build request for its key, so one-off queries cannot churn
  /// the cache. Off (the default) admits every build. See IndexCacheOptions.
  bool cache_admission = false;
  /// Keys the admission ghost list remembers (only meaningful with
  /// cache_admission on).
  size_t cache_ghost_entries = 1024;
  /// Pre-admission threshold (only meaningful with cache_admission on):
  /// a first-sighting artifact whose *fitted* build cost — predicted from
  /// the calibration store's per-family build rates — reaches this many
  /// seconds skips the one-miss ghost probation and is retained
  /// immediately. 0 disables pre-admission. See
  /// IndexCacheOptions::preadmit_build_seconds.
  double cache_preadmit_build_seconds = 0.25;
  /// Shards per dataset of a ShardedQueryEngine built on these options
  /// (sharded_engine.h): each registered dataset is spatially partitioned
  /// into this many pieces and joins scatter-gather across shard pairs.
  /// A plain QueryEngine ignores it. <= 1 means unsharded.
  int shards = 1;
  /// Sharded mutation drift threshold: a shard whose current MBR margin
  /// exceeds this multiple of the margin it was partitioned with is
  /// re-partitioned (the whole dataset, from its live geometry). <= 0
  /// disables re-partitioning. A plain QueryEngine ignores it. See
  /// docs/DYNAMIC.md and docs/TUNING.md.
  double shard_repartition_drift = 2.0;
  /// Measured-run feedback: cold executions (including ExecuteFixed ones)
  /// are recorded into the engine's PlanFeedback store, and planning
  /// overrides the static rules with fitted per-family cost models once
  /// enough evidence accumulates. Disabling restores the purely static
  /// planner and records nothing. See CalibrationOptions.
  CalibrationOptions calibration;
  /// Tracing/test hook: called on the executing thread as a request enters
  /// each non-terminal phase (kPlanning, kBuildingIndex, kExecuting). Must
  /// be fast and must not call back into the engine. Deterministic
  /// cancellation tests park the worker here. Since the obs layer landed
  /// this is a thin adapter over the tracer's phase instants: both are
  /// driven from the same emission point (EnterPhase), the observer getting
  /// the enum, the tracer a `phase:<name>` event — so existing tests keep
  /// working unchanged with or without a tracer attached.
  std::function<void(RequestPhase)> phase_observer;
  /// Per-request span recording (null = tracing off, zero overhead beyond a
  /// pointer test). The caller owns the tracer's lifetime and export; the
  /// engine only appends spans. See docs/OBSERVABILITY.md for the span
  /// taxonomy and CLI --trace-out for the Chrome/Perfetto export.
  std::shared_ptr<Tracer> tracer;
  /// Metrics destination. Null makes the engine construct a private
  /// registry (always queryable via metrics()); pass MetricsRegistry::
  /// Global() — or any shared registry — to aggregate across engines. The
  /// engine registers sampled providers for its cache (`touch_cache_*`) and
  /// pool (`touch_pool_*`) and removes them in its destructor; two engines
  /// sharing one registry overwrite each other's providers, so give
  /// concurrent engines separate registries.
  std::shared_ptr<MetricsRegistry> metrics;
};

/// Outcome of one engine query.
struct JoinResult {
  /// kOk, kCancelled (stats partial) or kError (see `error`).
  RequestStatus status = RequestStatus::kOk;
  JoinPlan plan;
  JoinStats stats;
  /// True when the join ran entirely against cached index artifacts.
  bool index_cache_hit = false;
  /// True when some but not all of the plan's artifacts were cached (PBSM
  /// keeps one directory per side; one can hit while the other builds).
  /// Such runs are neither free nor representative of a cold build —
  /// build_seconds covers only the missing side — so they are excluded
  /// from calibration evidence.
  bool partial_index_cache_hit = false;
  /// Non-empty when the request could not run (unknown algorithm name, bad
  /// dataset handle); plan and stats are meaningless then.
  std::string error;
  /// Correlates this result with its span tree in the engine's tracer
  /// (SpanRecord::trace_id); 0 when the engine ran without one.
  uint64_t trace_id = 0;

  bool ok() const { return status == RequestStatus::kOk; }
  bool cancelled() const { return status == RequestStatus::kCancelled; }
};

/// Per-request result sink, owned by the engine for the lifetime of one
/// submitted request.
///
/// Threading contract: the engine calls Emit from exactly one worker thread
/// (the one executing the request; calls are never concurrent), then calls
/// OnComplete exactly once — after the final Emit — and finally drops its
/// reference. OnComplete normally runs on that same worker thread; the one
/// exception is a request cancelled while still queued, whose Cancelled
/// completion is delivered directly by the cancelling thread (the worker
/// never touches the request). A sink is never shared between requests, so
/// implementations need no synchronization of their own; anything a sink
/// writes is visible to whoever observes the request's future or completion
/// callback (completion happens-after OnComplete).
class ResultSink : public ResultCollector {
 public:
  /// Default Emit drops pairs; result counts still arrive through
  /// JoinResult::stats.results. Override to materialize or stream pairs.
  void Emit(uint32_t, uint32_t) override {}

  /// Continuous-join delta: pair (a_id, b_id) entered (kAdded) or left
  /// (kRemoved) the result set. Called only for JoinRequest::continuous
  /// requests — the initial pair set arrives as kAdded deltas at submit
  /// time, then one delta burst follows each mutation batch of either
  /// dataset. Ids are stable object ids (DatasetSnapshot::id_of), not slot
  /// indices. Same single-emitter threading contract as Emit: deltas of
  /// one request are never emitted concurrently, and the final OnComplete
  /// (delivered by Cancel) happens-after the last delta.
  virtual void EmitDelta(DeltaKind kind, uint32_t a_id, uint32_t b_id) {
    (void)kind;
    (void)a_id;
    (void)b_id;
  }

  /// Called exactly once per request, also on failure (inspect
  /// result.error). Must not block indefinitely and must not call back into
  /// the engine's synchronous wrappers (they would wait on the very worker
  /// executing this callback).
  virtual void OnComplete(const JoinResult& result) { (void)result; }
};

/// Bridges a caller-owned ResultCollector onto the engine-owned sink model
/// (the synchronous wrappers' adapter, shared with the sharded engine).
/// The collector must outlive the request.
class ForwardingSink : public ResultSink {
 public:
  explicit ForwardingSink(ResultCollector& out) : out_(out) {}
  void Emit(uint32_t a_id, uint32_t b_id) override { out_.Emit(a_id, b_id); }

 private:
  ResultCollector& out_;
};

/// Completion callback of the callback-flavored Submit; same threading
/// contract as ResultSink::OnComplete (runs right after it).
using CompletionCallback = std::function<void(const JoinResult&)>;

/// Supplies the sink for requests[i] in SubmitBatch; may return null for
/// count-only requests.
using SinkFactory = std::function<std::unique_ptr<ResultSink>(size_t)>;

namespace internal {
struct RequestState;
struct ContinuousSub;
}  // namespace internal

/// Handle of one submitted request: the result future plus the request's
/// cancellation side. Move-only (it owns the future); safe to poll from any
/// thread.
///
/// Cancellation semantics:
///  - A request still *queued* completes immediately: Cancel() itself
///    delivers the Cancelled result (sink OnComplete and completion
///    callback run on the cancelling thread) and the worker pool skips the
///    task entirely — a cancelled request never burns a worker.
///  - A request already *executing* is stopped cooperatively: the flag is
///    checked at every phase boundary and inside the partition/probe loops
///    of the long local joins, so the future completes with kCancelled
///    promptly (milliseconds) instead of after the full join.
///  - Cancelling a *finished* request is a no-op returning false.
/// Cancel racing completion is benign: the future completes exactly once,
/// with either the full result or kCancelled.
class RequestHandle {
 public:
  RequestHandle();
  RequestHandle(RequestHandle&&) noexcept;
  RequestHandle& operator=(RequestHandle&&) noexcept;
  RequestHandle(const RequestHandle&) = delete;
  RequestHandle& operator=(const RequestHandle&) = delete;
  ~RequestHandle();

  bool valid() const { return state_ != nullptr; }

  /// The result future (always completes; never throws engine errors —
  /// failures arrive as JoinResult::status/error).
  std::future<JoinResult>& future() { return future_; }

  /// Blocks for and consumes the result: future().get().
  JoinResult Get() { return future_.get(); }

  /// Requests cancellation. Returns true when this call newly requested it
  /// on a not-yet-finished request; false on repeats, finished requests and
  /// invalid handles.
  bool Cancel();

  bool cancel_requested() const;

  /// Where the request currently is (kCompleted for invalid handles).
  RequestPhase phase() const;

  /// The request's cancellation token — the same one the worker polls;
  /// callers can hand it to their own cooperating code.
  CancellationToken token() const;

 private:
  friend class QueryEngine;
  RequestHandle(std::shared_ptr<internal::RequestState> state,
                std::future<JoinResult> future);

  std::shared_ptr<internal::RequestState> state_;
  std::future<JoinResult> future_;
};

/// Handles of one submitted batch, index-aligned with the requests passed
/// to SubmitBatch. Adds whole-batch cancellation on top of the per-request
/// handles.
class BatchHandle {
 public:
  size_t size() const { return requests_.size(); }
  bool empty() const { return requests_.empty(); }
  RequestHandle& operator[](size_t i) { return requests_[i]; }
  std::vector<RequestHandle>& requests() { return requests_; }

  /// Cancels every request of the batch (each with RequestHandle::Cancel
  /// semantics); returns how many were newly cancelled.
  size_t CancelAll();

  /// Blocks for every result, index-aligned; consumes the futures.
  std::vector<JoinResult> GetAll();

 private:
  friend class QueryEngine;
  std::vector<RequestHandle> requests_;
};

/// The adaptive spatial-join query engine: the layer that turns the
/// algorithm library into a service. Datasets are registered once (stats
/// precomputed), every join request is planned cost-based, built index
/// artifacts (TOUCH trees, INL R-trees, PBSM cell directories) are cached
/// with LRU eviction and reused across queries, and requests execute
/// asynchronously on a persistent worker pool.
///
/// The primary surface is asynchronous submission: Submit returns a
/// RequestHandle — a per-request std::future that completes independently
/// of every other request (a slow join never delays a fast one's result)
/// plus the request's cancellation side — with an optional engine-owned
/// ResultSink for pair delivery and a completion-callback overload.
/// Execute/ExecuteBatch are thin synchronous wrappers over
/// Submit/SubmitBatch.
///
/// Request lifecycle: queued → planning → building-index → executing →
/// completed, with cancelled reachable from every non-terminal phase. The
/// cancellation flag is checked at each boundary and cooperatively inside
/// the partition/probe loops of the local joins; index builds are shared
/// artifacts and always run to completion (a cancel arriving mid-build
/// takes effect at the next boundary, and the artifact stays cached for
/// other requests).
///
/// Threading contract: every public method is safe to call concurrently.
/// RegisterDataset and ApplyMutations may race with queries (the catalog is
/// internally synchronized; queries read pinned copy-on-write snapshots, so
/// a mutation never invalidates geometry a running join is scanning),
/// though a query can of course only name handles whose registration has
/// returned. Plan, Submit, SubmitBatch and the synchronous wrappers may all
/// run concurrently with each other and with mutation batches. The
/// synchronous wrappers block on worker capacity, so they must not be
/// called from sink callbacks.
///
/// Lock discipline: the query path holds no engine mutex — the request
/// state machine is a lock-free atomic phase lifecycle
/// (internal::RequestState) and all shared mutable state lives behind the
/// internally-synchronized components (catalog, cache, feedback, pool,
/// metrics), each annotated with the capability attributes in
/// util/thread_annotations.h. The mutation path serializes on
/// mutation_mutex_ → delta_sink_mutex_ (in that order); continuous-join
/// deltas are the one user callback emitted under an engine lock, which is
/// why delta sinks must not call back into the engine.
class QueryEngine {
 public:
  explicit QueryEngine(const EngineOptions& options = {});

  /// Unregisters this engine's metric providers from the registry (they
  /// sample the cache and pool about to be destroyed), then drains the pool.
  ~QueryEngine();

  /// Registers a dataset (stats are computed here, once). The returned
  /// handle is what join requests refer to.
  DatasetHandle RegisterDataset(std::string name, Dataset boxes);

  /// Registers with stats the caller already computed (the sharded engine
  /// partitions and serializes per-shard stats before registering the
  /// shard boxes; recomputing here would double the registration scan).
  DatasetHandle RegisterDataset(std::string name, Dataset boxes,
                                DatasetStats stats);

  const DatasetCatalog& catalog() const { return catalog_; }

  // --- Mutations ----------------------------------------------------------

  /// Applies one mutation batch to a registered dataset: the catalog
  /// updates geometry + incremental stats and bumps the dataset version,
  /// stale index-cache artifacts are invalidated (counted as evictions),
  /// and every continuous join standing on the dataset receives its
  /// kAdded/kRemoved delta burst — computed by epsilon-window re-probe of
  /// only the mutated objects against the partner's dynamic R-tree, never
  /// a re-join. Batches serialize against each other and against
  /// continuous submits; queries (Submit/Execute) keep running
  /// concurrently against pinned snapshots. Records a `mutate` span (plus
  /// one `delta-probe` span per notified subscription) and the
  /// `touch_mutations_total` / `touch_delta_results_total` counters.
  /// Returns the dataset's new version.
  uint64_t ApplyMutations(DatasetHandle dataset,
                          std::span<const Mutation> mutations);

  /// Plans without executing (the CLI's explain path).
  JoinPlan Plan(const JoinRequest& request) const;

  // --- Asynchronous submission -------------------------------------------

  /// Enqueues the request and returns a handle whose future completes when
  /// the join finishes — independently of any other request — and whose
  /// Cancel() abandons it (see RequestHandle for the lifecycle semantics).
  /// `sink` (optional) receives every result pair and then OnComplete; the
  /// engine owns it until completion. Failures complete the future with
  /// JoinResult::status = kError; the future never throws and always
  /// completes (the engine's destructor drains outstanding requests).
  RequestHandle Submit(const JoinRequest& request,
                       std::unique_ptr<ResultSink> sink = nullptr);

  /// Completion-callback overload: `on_complete` runs on the delivering
  /// thread right after the sink's OnComplete, in addition to the handle's
  /// future.
  RequestHandle Submit(const JoinRequest& request,
                       std::unique_ptr<ResultSink> sink,
                       CompletionCallback on_complete);

  /// Submits a request that was planned elsewhere: execution skips the
  /// planning phase and runs `plan` as-is (lifecycle, cancellation,
  /// deadline and caching behave exactly like Submit). This is the sharded
  /// scatter path — shard pairs are planned centrally from serialized
  /// shard stats and must execute the plan they were scattered with, not a
  /// replan. The plan's algorithm must be a MakeAlgorithm name; unknown
  /// names complete the future with kError.
  RequestHandle SubmitPlanned(JoinPlan plan, const JoinRequest& request,
                              std::unique_ptr<ResultSink> sink = nullptr);

  /// Submits every request at once; the returned handles (index-aligned
  /// with `requests`) complete independently as each request finishes, so
  /// callers stream results instead of waiting for the whole batch — and
  /// can cancel individual requests or the whole batch (CancelAll).
  /// `make_sink(i)`, when given, supplies the engine-owned sink of
  /// requests[i].
  BatchHandle SubmitBatch(std::span<const JoinRequest> requests,
                          const SinkFactory& make_sink = {});

  // --- Synchronous wrappers (implemented on Submit) ----------------------

  /// Plans and executes one join, emitting (a, b) pairs into `out`; blocks
  /// until done. Thin wrapper: Submit + future wait. `out` is only touched
  /// by the single worker executing this request, never concurrently.
  JoinResult Execute(const JoinRequest& request, ResultCollector& out);

  /// Executes with a fixed algorithm ("auto" falls back to the planner).
  /// Unknown names fill JoinResult::error — with the accepted list — and
  /// execute nothing.
  JoinResult ExecuteFixed(const std::string& algorithm,
                          const JoinRequest& request, ResultCollector& out);

  /// Plans and executes all requests concurrently on the worker pool,
  /// blocking until every one finished. Results are counted, not
  /// materialized (see stats.results); the output order matches `requests`.
  /// Thin wrapper: SubmitBatch + wait on every future.
  std::vector<JoinResult> ExecuteBatch(std::span<const JoinRequest> requests);

  // --- Introspection -----------------------------------------------------

  IndexCache::Stats cache_stats() const { return cache_.stats(); }
  void ClearIndexCache() { cache_.Clear(); }

  /// The measured-run feedback store (see calibration.h). Exposed mutable so
  /// tools and tests can inject or clear evidence; the engine itself records
  /// every cold execution here when calibration is enabled.
  PlanFeedback& feedback() { return feedback_; }
  const PlanFeedback& feedback() const { return feedback_; }

  /// Current fitted cost models at this engine's min_samples threshold (what
  /// the next Plan call will consult when calibration is enabled).
  CalibrationSnapshot calibration_snapshot() const {
    return feedback_.Snapshot(options_.calibration.min_samples);
  }

  const EngineOptions& options() const { return options_; }

  /// The engine's metrics registry: the one passed in EngineOptions, or the
  /// private registry the engine constructed when none was. Always valid.
  MetricsRegistry& metrics() { return *metrics_; }
  const MetricsRegistry& metrics() const { return *metrics_; }

  /// The attached tracer (null = tracing off).
  Tracer* tracer() const { return tracer_.get(); }

  /// Actual worker-pool size (resolves the options' 0 = hardware default).
  int threads() const { return pool_.thread_count(); }

  /// The worker pool's live load signals (queue depth, busy workers, tasks
  /// completed) — also exported as `touch_pool_*` through metrics().
  const WorkerPool& pool() const { return pool_; }

 private:
  /// Cancellation token plus (for submitted requests) the shared state the
  /// phase transitions are published through; synchronous fixed runs use a
  /// default-constructed context (never cancelled, no phase publishing).
  struct ExecContext {
    CancellationToken cancel;
    internal::RequestState* state = nullptr;
    /// The request's root span as a parent for phase spans (inactive when
    /// the engine has no tracer; every SpanScope built from it no-ops).
    TraceContext trace;
    /// The datasets as pinned at execution start: every executor reads
    /// geometry, stats and cache-key versions from these, so a mutation
    /// batch landing mid-join can neither free boxes under a kernel nor
    /// tear one request across two versions.
    DatasetSnapshotPtr snap_a;
    DatasetSnapshotPtr snap_b;
  };

  RequestHandle SubmitInternal(const JoinRequest& request,
                               std::unique_ptr<ResultSink> sink,
                               CompletionCallback on_complete,
                               std::unique_ptr<JoinPlan> preplanned = nullptr);
  /// Publishes a phase transition (request state + phase_observer).
  void EnterPhase(const ExecContext& ctx, RequestPhase phase) const;
  /// The per-request core every path funnels into: validates, plans (or
  /// adopts `preplanned`), executes, converts failures into
  /// JoinResult::error and cooperative cancellation into status =
  /// kCancelled.
  JoinResult ExecuteRequest(const JoinRequest& request, ResultCollector& out,
                            const ExecContext& ctx,
                            const JoinPlan* preplanned = nullptr);
  /// Wraps `out` in the first-result-latency measurement (the generic
  /// replacement for NBPS's private first_result_seconds), then dispatches
  /// to ExecutePlannedImpl.
  JoinResult ExecutePlanned(JoinPlan plan, const JoinRequest& request,
                            ResultCollector& out, const ExecContext& ctx);
  JoinResult ExecutePlannedImpl(JoinPlan plan, const JoinRequest& request,
                                ResultCollector& out, const ExecContext& ctx);
  JoinResult ExecuteTouch(JoinPlan plan, const JoinRequest& request,
                          ResultCollector& out, const ExecContext& ctx);
  JoinResult ExecuteInl(JoinPlan plan, const JoinRequest& request,
                        ResultCollector& out, const ExecContext& ctx);
  JoinResult ExecutePbsm(JoinPlan plan, const JoinRequest& request,
                         int resolution, ResultCollector& out,
                         const ExecContext& ctx);
  /// Feeds one finished request's measurements into the feedback store
  /// (fully cold, successful runs only; cancelled runs have partial stats
  /// and are never evidence).
  void RecordOutcome(const JoinRequest& request, const JoinResult& result);
  /// Fitted build-cost prediction for the cache's pre-admission policy
  /// (0 when admission or calibration is off, or the family is unmeasured).
  double PredictedBuildSeconds(const char* family,
                               const JoinRequest& request) const;
  /// Continuous-submit path: registers the standing query and emits the
  /// initial pair set as kAdded deltas (under the mutation serialization,
  /// so no batch can interleave with the baseline).
  RequestHandle SubmitContinuous(const JoinRequest& request,
                                 std::unique_ptr<ResultSink> sink,
                                 CompletionCallback on_complete);
  /// Emits one subscription's delta burst for a folded mutation batch.
  /// Returns the number of deltas emitted. delta_sink_mutex_ held.
  size_t DeltaProbeLocked(internal::ContinuousSub& sub,
                          DatasetHandle mutated,
                          std::span<const AppliedMutation> net)
      REQUIRES(delta_sink_mutex_);

  EngineOptions options_;
  // tracer_/metrics_ are declared before pool_ so requests still draining in
  // the pool's destructor can record spans and counters safely.
  std::shared_ptr<Tracer> tracer_;
  std::shared_ptr<MetricsRegistry> metrics_;
  DatasetCatalog catalog_;
  Planner planner_;
  IndexCache cache_;
  PlanFeedback feedback_;
  /// Serializes mutation batches (and the continuous-submit baseline join)
  /// against each other. Queries never take it — they read pinned
  /// snapshots — so mutations cannot stall the worker pool.
  Mutex mutation_mutex_;
  /// Guards the standing-query list; also the lock delta emission runs
  /// under. Acquired after mutation_mutex_, never before it.
  Mutex delta_sink_mutex_;
  std::vector<std::shared_ptr<internal::ContinuousSub>> subs_
      GUARDED_BY(delta_sink_mutex_);
  WorkerPool pool_;
};

}  // namespace touch

#endif  // TOUCH_ENGINE_ENGINE_H_
