#ifndef TOUCH_ENGINE_ENGINE_H_
#define TOUCH_ENGINE_ENGINE_H_

#include <span>
#include <string>
#include <vector>

#include "engine/catalog.h"
#include "engine/index_cache.h"
#include "engine/planner.h"
#include "engine/worker_pool.h"
#include "join/algorithm.h"

namespace touch {

struct EngineOptions {
  /// Worker threads for batched execution; <= 0 uses hardware concurrency.
  int threads = 0;
  PlannerOptions planner;
  /// Reuse built TOUCH trees across queries (the paper's prebuilt-index
  /// ablation, productized). Off forces every query to build cold.
  bool cache_indexes = true;
};

/// Outcome of one engine query.
struct JoinResult {
  JoinPlan plan;
  JoinStats stats;
  /// True when the join ran against a tree served from the index cache.
  bool index_cache_hit = false;
  /// Non-empty when the request could not run (unknown algorithm name, bad
  /// dataset handle); plan and stats are meaningless then.
  std::string error;
};

/// The adaptive spatial-join query engine: the layer that turns the
/// algorithm library into a service. Datasets are registered once (stats
/// precomputed), every join request is planned cost-based, built TOUCH trees
/// are cached and reused across queries, and batches execute concurrently on
/// a persistent worker pool.
///
/// Threading contract: RegisterDataset must not race with queries; Plan,
/// Execute and ExecuteBatch may run concurrently with each other.
class QueryEngine {
 public:
  explicit QueryEngine(const EngineOptions& options = {});

  /// Registers a dataset (stats are computed here, once). The returned
  /// handle is what join requests refer to.
  DatasetHandle RegisterDataset(std::string name, Dataset boxes);

  const DatasetCatalog& catalog() const { return catalog_; }

  /// Plans without executing (the CLI's explain path).
  JoinPlan Plan(const JoinRequest& request) const;

  /// Plans and executes one join, emitting (a, b) pairs into `out`.
  JoinResult Execute(const JoinRequest& request, ResultCollector& out);

  /// Executes with a fixed algorithm ("auto" falls back to the planner).
  /// Unknown names fill JoinResult::error — with the accepted list — and
  /// execute nothing.
  JoinResult ExecuteFixed(const std::string& algorithm,
                          const JoinRequest& request, ResultCollector& out);

  /// Plans and executes all requests concurrently on the worker pool.
  /// Results are counted, not materialized (see stats.results); the output
  /// order matches `requests`.
  std::vector<JoinResult> ExecuteBatch(std::span<const JoinRequest> requests);

  IndexCache::Stats cache_stats() const { return cache_.stats(); }
  void ClearIndexCache() { cache_.Clear(); }

  const EngineOptions& options() const { return options_; }

  /// Actual worker-pool size (resolves the options' 0 = hardware default).
  int threads() const { return pool_.thread_count(); }

 private:
  JoinResult ExecutePlanned(JoinPlan plan, const JoinRequest& request,
                            ResultCollector& out);
  JoinResult ExecuteTouch(JoinPlan plan, const JoinRequest& request,
                          ResultCollector& out);

  EngineOptions options_;
  DatasetCatalog catalog_;
  Planner planner_;
  IndexCache cache_;
  WorkerPool pool_;
};

}  // namespace touch

#endif  // TOUCH_ENGINE_ENGINE_H_
