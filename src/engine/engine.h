#ifndef TOUCH_ENGINE_ENGINE_H_
#define TOUCH_ENGINE_ENGINE_H_

#include <functional>
#include <future>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "engine/calibration.h"
#include "engine/catalog.h"
#include "engine/index_cache.h"
#include "engine/planner.h"
#include "engine/worker_pool.h"
#include "join/algorithm.h"

namespace touch {

struct EngineOptions {
  /// Worker threads for submitted requests; <= 0 uses hardware concurrency.
  int threads = 0;
  PlannerOptions planner;
  /// Reuse built index artifacts (TOUCH trees, INL R-trees, PBSM cell
  /// directories) across queries (the paper's prebuilt-index ablation,
  /// productized). Off forces every query to build cold.
  bool cache_indexes = true;
  /// Byte cap on the index cache (0 = unbounded). Once resident artifacts
  /// exceed it, least-recently-used ones are evicted; see IndexCache.
  size_t max_cache_bytes = 0;
  /// Measured-run feedback: cold executions (including ExecuteFixed ones)
  /// are recorded into the engine's PlanFeedback store, and planning
  /// overrides the static rules with fitted per-family cost models once
  /// enough evidence accumulates. Disabling restores the purely static
  /// planner and records nothing. See CalibrationOptions.
  CalibrationOptions calibration;
};

/// Outcome of one engine query.
struct JoinResult {
  JoinPlan plan;
  JoinStats stats;
  /// True when the join ran entirely against cached index artifacts.
  bool index_cache_hit = false;
  /// True when some but not all of the plan's artifacts were cached (PBSM
  /// keeps one directory per side; one can hit while the other builds).
  /// Such runs are neither free nor representative of a cold build —
  /// build_seconds covers only the missing side — so they are excluded
  /// from calibration evidence.
  bool partial_index_cache_hit = false;
  /// Non-empty when the request could not run (unknown algorithm name, bad
  /// dataset handle); plan and stats are meaningless then.
  std::string error;
};

/// Per-request result sink, owned by the engine for the lifetime of one
/// submitted request.
///
/// Threading contract: the engine calls Emit from exactly one worker thread
/// (the one executing the request; calls are never concurrent), then calls
/// OnComplete exactly once — after the final Emit, from that same thread —
/// and finally drops its reference. A sink is never shared between
/// requests, so implementations need no synchronization of their own;
/// anything a sink writes is visible to whoever observes the request's
/// future or completion callback (completion happens-after OnComplete).
class ResultSink : public ResultCollector {
 public:
  /// Default Emit drops pairs; result counts still arrive through
  /// JoinResult::stats.results. Override to materialize or stream pairs.
  void Emit(uint32_t, uint32_t) override {}

  /// Called exactly once per request, also on failure (inspect
  /// result.error). Must not block indefinitely and must not call back into
  /// the engine's synchronous wrappers (they would wait on the very worker
  /// executing this callback).
  virtual void OnComplete(const JoinResult& result) { (void)result; }
};

/// Completion callback of the callback-flavored Submit; same threading
/// contract as ResultSink::OnComplete (runs right after it).
using CompletionCallback = std::function<void(const JoinResult&)>;

/// Supplies the sink for requests[i] in SubmitBatch; may return null for
/// count-only requests.
using SinkFactory = std::function<std::unique_ptr<ResultSink>(size_t)>;

/// The adaptive spatial-join query engine: the layer that turns the
/// algorithm library into a service. Datasets are registered once (stats
/// precomputed), every join request is planned cost-based, built index
/// artifacts (TOUCH trees, INL R-trees, PBSM cell directories) are cached
/// with LRU eviction and reused across queries, and requests execute
/// asynchronously on a persistent worker pool.
///
/// The primary surface is asynchronous submission: Submit returns a
/// per-request std::future that completes independently of every other
/// request (a slow join never delays a fast one's result), with an optional
/// engine-owned ResultSink for pair delivery and a completion-callback
/// overload. Execute/ExecuteBatch are thin synchronous wrappers over
/// Submit/SubmitBatch.
///
/// Threading contract: RegisterDataset must not race with queries; Plan,
/// Submit, SubmitBatch and the synchronous wrappers may all run
/// concurrently with each other. The synchronous wrappers block on worker
/// capacity, so they must not be called from sink callbacks.
class QueryEngine {
 public:
  explicit QueryEngine(const EngineOptions& options = {});

  /// Registers a dataset (stats are computed here, once). The returned
  /// handle is what join requests refer to.
  DatasetHandle RegisterDataset(std::string name, Dataset boxes);

  const DatasetCatalog& catalog() const { return catalog_; }

  /// Plans without executing (the CLI's explain path).
  JoinPlan Plan(const JoinRequest& request) const;

  // --- Asynchronous submission -------------------------------------------

  /// Enqueues the request and returns a future that completes when the join
  /// finishes — independently of any other request. `sink` (optional)
  /// receives every result pair and then OnComplete; the engine owns it
  /// until completion. Failures complete the future with
  /// JoinResult::error set; the future never throws and always completes
  /// (the engine's destructor drains outstanding requests).
  std::future<JoinResult> Submit(const JoinRequest& request,
                                 std::unique_ptr<ResultSink> sink = nullptr);

  /// Completion-callback overload: `on_complete` runs on the worker thread
  /// right after the sink's OnComplete, instead of a future.
  void Submit(const JoinRequest& request, std::unique_ptr<ResultSink> sink,
              CompletionCallback on_complete);

  /// Submits every request at once; the returned futures (index-aligned
  /// with `requests`) complete independently as each request finishes, so
  /// callers stream results instead of waiting for the whole batch.
  /// `make_sink(i)`, when given, supplies the engine-owned sink of
  /// requests[i].
  std::vector<std::future<JoinResult>> SubmitBatch(
      std::span<const JoinRequest> requests, const SinkFactory& make_sink = {});

  // --- Synchronous wrappers (implemented on Submit) ----------------------

  /// Plans and executes one join, emitting (a, b) pairs into `out`; blocks
  /// until done. Thin wrapper: Submit + future wait. `out` is only touched
  /// by the single worker executing this request, never concurrently.
  JoinResult Execute(const JoinRequest& request, ResultCollector& out);

  /// Executes with a fixed algorithm ("auto" falls back to the planner).
  /// Unknown names fill JoinResult::error — with the accepted list — and
  /// execute nothing.
  JoinResult ExecuteFixed(const std::string& algorithm,
                          const JoinRequest& request, ResultCollector& out);

  /// Plans and executes all requests concurrently on the worker pool,
  /// blocking until every one finished. Results are counted, not
  /// materialized (see stats.results); the output order matches `requests`.
  /// Thin wrapper: SubmitBatch + wait on every future.
  std::vector<JoinResult> ExecuteBatch(std::span<const JoinRequest> requests);

  // --- Introspection -----------------------------------------------------

  IndexCache::Stats cache_stats() const { return cache_.stats(); }
  void ClearIndexCache() { cache_.Clear(); }

  /// The measured-run feedback store (see calibration.h). Exposed mutable so
  /// tools and tests can inject or clear evidence; the engine itself records
  /// every cold execution here when calibration is enabled.
  PlanFeedback& feedback() { return feedback_; }
  const PlanFeedback& feedback() const { return feedback_; }

  /// Current fitted cost models at this engine's min_samples threshold (what
  /// the next Plan call will consult when calibration is enabled).
  CalibrationSnapshot calibration_snapshot() const {
    return feedback_.Snapshot(options_.calibration.min_samples);
  }

  const EngineOptions& options() const { return options_; }

  /// Actual worker-pool size (resolves the options' 0 = hardware default).
  int threads() const { return pool_.thread_count(); }

 private:
  struct RequestState;

  std::future<JoinResult> SubmitInternal(const JoinRequest& request,
                                         std::unique_ptr<ResultSink> sink,
                                         CompletionCallback on_complete);
  /// The per-request core every path funnels into: validates, plans,
  /// executes, converts failures into JoinResult::error.
  JoinResult ExecuteRequest(const JoinRequest& request, ResultCollector& out);
  JoinResult ExecutePlanned(JoinPlan plan, const JoinRequest& request,
                            ResultCollector& out);
  JoinResult ExecuteTouch(JoinPlan plan, const JoinRequest& request,
                          ResultCollector& out);
  JoinResult ExecuteInl(JoinPlan plan, const JoinRequest& request,
                        ResultCollector& out);
  JoinResult ExecutePbsm(JoinPlan plan, const JoinRequest& request,
                         int resolution, ResultCollector& out);
  /// Feeds one finished request's measurements into the feedback store
  /// (cold runs only; no-op when calibration is disabled or the run failed).
  void RecordOutcome(const JoinRequest& request, const JoinResult& result);

  EngineOptions options_;
  DatasetCatalog catalog_;
  Planner planner_;
  IndexCache cache_;
  PlanFeedback feedback_;
  WorkerPool pool_;
};

}  // namespace touch

#endif  // TOUCH_ENGINE_ENGINE_H_
