#include "engine/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "geom/grid.h"
#include "util/format.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace touch {
namespace {

constexpr auto Format = StrFormat;  // local shorthand for the reports

}  // namespace

/// Everything one sharded join shares between its pair sinks and its
/// handle: the user sink (serialized behind a mutex), the owner maps the
/// dedup filter consults, and the per-pair handles the gather drains.
struct internal::GatherState {
  const QueryEngine* inner = nullptr;
  std::unique_ptr<ResultSink> user_sink;
  /// Owner maps and shard counts pinned at scatter time. Mutation batches
  /// publish fresh copy-on-write maps, so whatever lands mid-flight cannot
  /// disturb this gather's view.
  IdMapPtr shard_of_a;
  IdMapPtr shard_of_b;
  size_t shards_a = 0;
  size_t shards_b = 0;
  /// Merged result pairs (post-dedup), counted by the pair sinks.
  std::atomic<uint64_t> merged_results{0};
  /// Pairs dropped by the owner filter (boundary duplicates).
  std::atomic<uint64_t> deduplicated{0};
  /// Serializes user_sink->Emit across concurrently executing pairs. The
  /// sink pointer itself is not GUARDED_BY it: Get() legitimately reads
  /// user_sink un-mutexed once every pair handle has drained.
  Mutex sink_mutex;
  std::vector<RequestHandle> handles;
  /// (shard_a, shard_b) of handles[k].
  std::vector<std::pair<int, int>> pair_ids;
  std::vector<std::pair<int, int>> pruned;
  size_t pairs_total = 0;
  /// Submit-time failure (bad handle, corrupt shard stats); when set, no
  /// pairs were scattered.
  std::string error;
  /// Wall clock of the whole scatter-gather, started at Submit.
  Timer wall;
  bool gathered = false;
  /// Observability wiring (the inner engine's; valid for the state's life).
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// The sharded request's trace identity: every shard pair's root span
  /// parents onto root_span_id, recorded by Get() once the outcome is known.
  uint64_t trace_id = 0;
  uint64_t root_span_id = 0;
  int64_t submit_ns = 0;
};

namespace {

using GatherStatePtr = std::shared_ptr<internal::GatherState>;

/// The per-pair sink the inner engine owns: remaps shard-local ids to
/// global ids, applies the owner dedup filter, and forwards survivors into
/// the shared user sink. Each instance is driven by exactly one worker
/// (the inner engine's per-request contract); only the user-sink hop is
/// cross-pair and takes the mutex.
class PairSink : public ResultSink {
 public:
  PairSink(GatherStatePtr state, IdMapPtr to_global_a, IdMapPtr to_global_b,
           uint32_t index_a, uint32_t index_b)
      : state_(std::move(state)),
        to_global_a_(std::move(to_global_a)),
        to_global_b_(std::move(to_global_b)),
        index_a_(index_a),
        index_b_(index_b) {}

  void Emit(uint32_t local_a, uint32_t local_b) override {
    // A pair that executes against an inner snapshot newer than this
    // scatter can emit ids the pinned maps have never heard of; drop them
    // (the gather reports the dataset as of scatter time).
    if (local_a >= to_global_a_->size() || local_b >= to_global_b_->size()) {
      state_->deduplicated.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const uint32_t global_a = (*to_global_a_)[local_a];
    const uint32_t global_b = (*to_global_b_)[local_b];
    // Owner filter: a pair belongs to the shard pair that owns both
    // objects. The center-disjoint partitioner makes this vacuously true;
    // a replicating partitioner would emit boundary pairs from several
    // shard pairs, and exactly one — the owner — survives. It also drops
    // objects whose owner map entry went kNoShard (deleted mid-flight).
    if ((*state_->shard_of_a)[global_a] != index_a_ ||
        (*state_->shard_of_b)[global_b] != index_b_) {
      state_->deduplicated.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    state_->merged_results.fetch_add(1, std::memory_order_relaxed);
    if (state_->user_sink != nullptr) {
      const MutexLock lock(state_->sink_mutex);
      state_->user_sink->Emit(global_a, global_b);
    }
  }

 private:
  GatherStatePtr state_;
  IdMapPtr to_global_a_;
  IdMapPtr to_global_b_;
  uint32_t index_a_;
  uint32_t index_b_;
};

}  // namespace

// --- ShardedRequestHandle ---------------------------------------------------

size_t ShardedRequestHandle::pair_count() const {
  return state_ == nullptr ? 0 : state_->handles.size();
}

bool ShardedRequestHandle::Cancel() {
  if (state_ == nullptr) return false;
  // One call fans out to every shard pair's cancellation source.
  bool any = false;
  for (RequestHandle& handle : state_->handles) {
    if (handle.Cancel()) any = true;
  }
  return any;
}

ShardedJoinResult ShardedRequestHandle::Get() {
  ShardedJoinResult out;
  if (state_ == nullptr) {
    out.merged.status = RequestStatus::kError;
    out.merged.error = "invalid sharded request handle";
    return out;
  }
  internal::GatherState& state = *state_;
  if (state.gathered) {
    out.merged.status = RequestStatus::kError;
    out.merged.error = "sharded result already gathered";
    return out;
  }
  state.gathered = true;
  out.shard_pairs_total = state.pairs_total;
  out.pruned = state.pruned;
  // The gather span covers draining every pair future plus the merge.
  SpanScope gather_span(
      TraceContext{state.tracer, state.trace_id, state.root_span_id},
      "gather");

  JoinResult& merged = out.merged;
  if (!state.error.empty()) {
    merged.status = RequestStatus::kError;
    merged.error = state.error;
  }
  bool all_hit = !state.handles.empty();
  bool any_warm = false;
  bool any_cancelled = false;
  for (size_t k = 0; k < state.handles.size(); ++k) {
    JoinResult pair = state.handles[k].Get();
    if (pair.status == RequestStatus::kCancelled) any_cancelled = true;
    if (pair.status == RequestStatus::kError && merged.error.empty()) {
      merged.status = RequestStatus::kError;
      merged.error = Format("shard pair (%d, %d): ", state.pair_ids[k].first,
                            state.pair_ids[k].second) +
                     pair.error;
    }
    all_hit = all_hit && pair.index_cache_hit;
    any_warm = any_warm || pair.index_cache_hit || pair.partial_index_cache_hit;
    // Counters merge; phase seconds accumulate as summed work seconds.
    merged.stats.MergeCounters(pair.stats);
    merged.stats.build_seconds += pair.stats.build_seconds;
    merged.stats.assign_seconds += pair.stats.assign_seconds;
    merged.stats.join_seconds += pair.stats.join_seconds;
    merged.plan.expected_results += pair.plan.expected_results;

    ShardPairReport report;
    report.shard_a = state.pair_ids[k].first;
    report.shard_b = state.pair_ids[k].second;
    report.stats = pair.stats;
    report.status = pair.status;
    report.index_cache_hit = pair.index_cache_hit;
    report.plan = std::move(pair.plan);
    out.pairs.push_back(std::move(report));
  }
  // The owner filter's counts are authoritative: MergeCounters summed the
  // pairs' pre-dedup result counters.
  merged.stats.results = state.merged_results.load(std::memory_order_relaxed);
  out.deduplicated = state.deduplicated.load(std::memory_order_relaxed);
  if (merged.status != RequestStatus::kError && any_cancelled) {
    merged.status = RequestStatus::kCancelled;
  }
  merged.index_cache_hit = all_hit;
  merged.partial_index_cache_hit = !all_hit && any_warm;
  merged.stats.total_seconds = state.wall.Seconds();
  merged.plan.algorithm = "sharded";
  merged.plan.rationale = Format(
      "scatter-gather over %zu x %zu shards: %zu pairs executed, %zu pruned "
      "by the epsilon-inflated MBR test, %llu boundary duplicates dropped",
      state.shards_a, state.shards_b,
      out.pairs.size(), out.pruned.size(),
      static_cast<unsigned long long>(out.deduplicated));
  if (state.inner != nullptr) out.cache = state.inner->cache_stats();
  merged.trace_id = state.trace_id;
  gather_span.AddAttr("merged_results",
                      std::to_string(merged.stats.results));
  gather_span.End();
  if (state.metrics != nullptr) {
    // Increment(0) still creates the series, so scrapes always see it.
    state.metrics->counter("touch_sharded_dedup_total")
        .Increment(out.deduplicated);
  }
  if (state.tracer != nullptr) {
    // The sharded request's root span, recorded now that the outcome is
    // known; scatter, per-pair roots and gather all hang under it.
    SpanRecord root;
    root.trace_id = state.trace_id;
    root.span_id = state.root_span_id;
    root.start_ns = state.submit_ns;
    root.duration_ns = TraceClockNs() - state.submit_ns;
    root.thread = CurrentThreadIndex();
    root.name = "sharded-request";
    root.attrs.emplace_back("status", RequestStatusName(merged.status));
    root.attrs.emplace_back("pairs", std::to_string(out.pairs.size()));
    root.attrs.emplace_back("pruned", std::to_string(out.pruned.size()));
    state.tracer->Record(std::move(root));
  }

  if (state.user_sink != nullptr) {
    state.user_sink->OnComplete(merged);
    state.user_sink.reset();
  }
  return out;
}

// --- ShardedQueryEngine -----------------------------------------------------

ShardedQueryEngine::ShardedQueryEngine(const EngineOptions& options)
    : shards_(std::max(1, options.shards)),
      planner_(options.planner),
      inner_(options) {}

DatasetHandle ShardedQueryEngine::RegisterDataset(std::string name,
                                                  Dataset boxes) {
  ShardedCatalog::Entry entry;
  entry.name = name;
  entry.global_stats = ComputeDatasetStats(boxes);
  entry.next_global = static_cast<uint32_t>(boxes.size());
  // The routing grid is frozen per partition epoch: mutations must route
  // with the exact (domain, resolution) the assignment pass mapped centers
  // with, not whatever the stats drift to later.
  entry.route_domain = entry.global_stats.extent;
  entry.route_resolution = std::max(1, entry.global_stats.histogram_resolution);
  ShardPartition partition =
      PartitionIntoShards(boxes, entry.global_stats, shards_);
  entry.shard_of = std::make_shared<const std::vector<uint32_t>>(
      std::move(partition.shard_of));
  entry.shards.reserve(partition.shards.size());
  for (size_t k = 0; k < partition.shards.size(); ++k) {
    DatasetShard& piece = partition.shards[k];
    // Per-shard stats are computed once and serialized — the bytes are what
    // central planning consumes, and what a remote shard would ship.
    DatasetStats stats = ComputeDatasetStats(piece.boxes);
    ShardedCatalog::Shard shard;
    shard.count = piece.boxes.size();
    shard.stats_bytes = SerializeDatasetStats(stats);
    shard.next_local = static_cast<uint32_t>(piece.boxes.size());
    shard.to_global = std::make_shared<const std::vector<uint32_t>>(
        std::move(piece.to_global));
    for (int axis = 0; axis < 3; ++axis) {
      shard.cell_lo[axis] = piece.cell_lo[axis];
      shard.cell_hi[axis] = piece.cell_hi[axis];
    }
    shard.base_mbr = piece.mbr;
    shard.engine_handle =
        inner_.RegisterDataset(name + "#" + std::to_string(k),
                               std::move(piece.boxes), std::move(stats));
    entry.shards.push_back(std::move(shard));
  }
  return catalog_.Add(std::move(entry));
}

ShardedRequestHandle ShardedQueryEngine::Submit(
    const JoinRequest& request, std::unique_ptr<ResultSink> sink) {
  auto state = std::make_shared<internal::GatherState>();
  state->inner = &inner_;
  state->user_sink = std::move(sink);
  state->tracer = inner_.tracer();
  state->metrics = &inner_.metrics();
  state->submit_ns = TraceClockNs();
  if (state->tracer != nullptr) {
    state->trace_id = state->tracer->NewTraceId();
    state->root_span_id = state->tracer->NewSpanId();
  }
  state->metrics->counter("touch_sharded_requests_total").Increment();
  ShardedRequestHandle handle;
  handle.state_ = state;
  if (!catalog_.Contains(request.a) || !catalog_.Contains(request.b)) {
    state->error =
        Format("invalid dataset handle (sharded catalog has %zu datasets)",
               catalog_.size());
    return handle;
  }
  // The scatter serializes against mutation batches: shard stats, id maps
  // and engine handles are read under the catalog mutex, and the COW maps
  // pinned here keep this gather consistent even if a batch (or a whole
  // repartition) lands before the pairs finish executing.
  const MutexLock catalog_lock(catalog_mutex_);
  const ShardedCatalog::Entry& entry_a = catalog_.entry(request.a);
  const ShardedCatalog::Entry& entry_b = catalog_.entry(request.b);
  state->shard_of_a = entry_a.shard_of;
  state->shard_of_b = entry_b.shard_of;
  state->shards_a = entry_a.shards.size();
  state->shards_b = entry_b.shards.size();
  state->pairs_total = entry_a.shards.size() * entry_b.shards.size();

  // Central planning consumes the serialized stats — deserialize each
  // shard's bytes once per request, exactly as a coordinator would with
  // stats that arrived over the wire.
  const auto deserialize_all =
      [&](const ShardedCatalog::Entry& entry,
          std::vector<DatasetStats>* stats) -> bool {
    stats->resize(entry.shards.size());
    for (size_t k = 0; k < entry.shards.size(); ++k) {
      if (!DeserializeDatasetStats(entry.shards[k].stats_bytes,
                                   &(*stats)[k])) {
        state->error = Format("corrupt serialized stats for shard %zu of %s",
                              k, entry.name.c_str());
        return false;
      }
    }
    return true;
  };
  std::vector<DatasetStats> stats_a;
  std::vector<DatasetStats> stats_b;
  if (!deserialize_all(entry_a, &stats_a) ||
      !deserialize_all(entry_b, &stats_b)) {
    return handle;
  }

  std::optional<CalibrationSnapshot> snapshot;
  if (inner_.options().calibration.enabled) {
    snapshot = inner_.calibration_snapshot();
  }

  // The scatter span covers pruning, central planning and submission of
  // every pair; each pair's own "request" root parents onto the sharded
  // root, so the exported tree reads sharded-request → scatter/plan,
  // request (per pair) → build/execute, gather.
  SpanScope scatter_span(
      TraceContext{state->tracer, state->trace_id, state->root_span_id},
      "scatter");
  for (size_t i = 0; i < entry_a.shards.size(); ++i) {
    for (size_t j = 0; j < entry_b.shards.size(); ++j) {
      if (!Planner::PairMayProduceResults(stats_a[i], stats_b[j],
                                          request.epsilon)) {
        state->pruned.emplace_back(static_cast<int>(i), static_cast<int>(j));
        continue;
      }
      SpanScope plan_span(scatter_span.context(), "plan");
      plan_span.AddAttr("shard_a", std::to_string(i));
      plan_span.AddAttr("shard_b", std::to_string(j));
      JoinPlan plan =
          planner_.Plan(stats_a[i], stats_b[j], request.epsilon,
                        snapshot.has_value() ? &*snapshot : nullptr);
      plan_span.AddAttr("algorithm", plan.algorithm);
      plan_span.End();
      JoinRequest pair_request;
      pair_request.a = entry_a.shards[i].engine_handle;
      pair_request.b = entry_b.shards[j].engine_handle;
      pair_request.epsilon = request.epsilon;
      pair_request.deadline = request.deadline;  // deadlines fan out too
      // The pair joins this request's trace instead of starting its own.
      pair_request.trace_id = state->trace_id;
      pair_request.trace_parent_span = state->root_span_id;
      state->pair_ids.emplace_back(static_cast<int>(i), static_cast<int>(j));
      state->handles.push_back(inner_.SubmitPlanned(
          std::move(plan), pair_request,
          std::make_unique<PairSink>(state, entry_a.shards[i].to_global,
                                     entry_b.shards[j].to_global,
                                     static_cast<uint32_t>(i),
                                     static_cast<uint32_t>(j))));
    }
  }
  scatter_span.AddAttr("executed", std::to_string(state->handles.size()));
  scatter_span.AddAttr("pruned", std::to_string(state->pruned.size()));
  scatter_span.End();
  state->metrics->counter("touch_sharded_pairs_executed_total")
      .Increment(state->handles.size());
  state->metrics->counter("touch_sharded_pairs_pruned_total")
      .Increment(state->pruned.size());
  return handle;
}

namespace {

/// The partition's center-cell rule, replayed one box at a time: map the
/// box center onto the entry's frozen routing grid, then find the shard
/// whose slab [cell_lo, cell_hi) contains the cell. Slabs tile the grid
/// (SlabOf assigns every cell to exactly one slab per axis; empty slabs
/// are empty half-open ranges that contain nothing), and GridMapper clamps
/// out-of-domain centers, so exactly one shard matches — including for
/// inserts that land beyond the registration extent.
uint32_t RouteToShard(const ShardedCatalog::Entry& entry, const Box& box) {
  const GridMapper grid(entry.route_domain, entry.route_resolution);
  const CellCoord cell = grid.CellOf(box.Center());
  for (size_t k = 0; k < entry.shards.size(); ++k) {
    const ShardedCatalog::Shard& shard = entry.shards[k];
    if (cell.x >= shard.cell_lo[0] && cell.x < shard.cell_hi[0] &&
        cell.y >= shard.cell_lo[1] && cell.y < shard.cell_hi[1] &&
        cell.z >= shard.cell_lo[2] && cell.z < shard.cell_hi[2]) {
      return static_cast<uint32_t>(k);
    }
  }
  return 0;  // unreachable: the slabs tile the (clamped) grid
}

}  // namespace

uint64_t ShardedQueryEngine::ApplyMutations(DatasetHandle dataset,
                                            std::span<const Mutation> mutations) {
  if (!catalog_.Contains(dataset)) return 0;
  const MutexLock lock(catalog_mutex_);
  ShardedCatalog::Entry& entry = catalog_.mutable_entry(dataset);
  const size_t num_shards = entry.shards.size();
  // First batch for this entry: materialize the inverse id maps the
  // delete/update paths need (registration only builds the forward maps).
  if (!entry.mutable_ready) {
    for (ShardedCatalog::Shard& shard : entry.shards) {
      shard.local_of.reserve(shard.to_global->size());
      for (uint32_t local = 0;
           local < static_cast<uint32_t>(shard.to_global->size()); ++local) {
        shard.local_of.emplace((*shard.to_global)[local], local);
      }
    }
    entry.mutable_ready = true;
  }

  // Working copies of the COW maps; published wholesale at the end so
  // in-flight gathers keep the versions they pinned.
  std::vector<uint32_t> shard_of = *entry.shard_of;
  std::vector<std::vector<uint32_t>> to_global(num_shards);
  std::vector<bool> touched(num_shards, false);
  const auto working_map = [&](uint32_t s) -> std::vector<uint32_t>& {
    if (!touched[s]) {
      to_global[s] = *entry.shards[s].to_global;
      touched[s] = true;
    }
    return to_global[s];
  };
  const auto live = [&](uint32_t gid) {
    return gid < shard_of.size() && shard_of[gid] != kNoShard;
  };

  // Route each mutation to its owning shard, translating global ids to
  // shard-local ones. Inserts assign global ids in stream order from
  // next_global (which starts at the registration count), so a sharded
  // engine fed the same mutation stream as an unsharded one assigns
  // identical ids — the property the shards=1 vs shards=4 identity checks
  // lean on.
  std::vector<std::vector<Mutation>> batches(num_shards);
  const auto route_insert = [&](uint32_t gid, const Box& box) {
    const uint32_t s = RouteToShard(entry, box);
    ShardedCatalog::Shard& shard = entry.shards[s];
    const uint32_t local = shard.next_local++;
    batches[s].push_back(Mutation{MutationKind::kInsert, local, box});
    std::vector<uint32_t>& map = working_map(s);
    if (map.size() <= local) map.resize(local + 1, kInvalidObjectId);
    map[local] = gid;
    shard.local_of.emplace(gid, local);
    if (shard_of.size() <= gid) shard_of.resize(gid + 1, kNoShard);
    shard_of[gid] = s;
  };
  for (const Mutation& m : mutations) {
    switch (m.kind) {
      case MutationKind::kInsert: {
        uint32_t gid = m.id;
        if (gid == kInvalidObjectId) {
          gid = entry.next_global++;
        } else {
          if (live(gid)) break;  // mirror DatasetCatalog: live-id insert no-ops
          if (gid >= entry.next_global) entry.next_global = gid + 1;
        }
        route_insert(gid, m.box);
        break;
      }
      case MutationKind::kDelete: {
        if (!live(m.id)) break;
        const uint32_t s = shard_of[m.id];
        ShardedCatalog::Shard& shard = entry.shards[s];
        const uint32_t local = shard.local_of.at(m.id);
        batches[s].push_back(Mutation{MutationKind::kDelete, local, Box{}});
        shard.local_of.erase(m.id);
        // The forward map keeps the stale slot — it is only read for ids
        // the inner engine actually emits, and deleted ids never are.
        shard_of[m.id] = kNoShard;
        break;
      }
      case MutationKind::kUpdate: {
        if (!live(m.id)) break;
        const uint32_t s_old = shard_of[m.id];
        const uint32_t s_new = RouteToShard(entry, m.box);
        ShardedCatalog::Shard& old_shard = entry.shards[s_old];
        const uint32_t local = old_shard.local_of.at(m.id);
        if (s_new == s_old) {
          batches[s_old].push_back(Mutation{MutationKind::kUpdate, local, m.box});
        } else {
          // The center crossed a slab boundary: delete from the old owner,
          // insert into the new one, same global id.
          batches[s_old].push_back(Mutation{MutationKind::kDelete, local, Box{}});
          old_shard.local_of.erase(m.id);
          shard_of[m.id] = kNoShard;
          route_insert(m.id, m.box);
        }
        break;
      }
    }
  }

  // Run the per-shard sub-batches through the inner engine (stats deltas,
  // versioned cache invalidation and continuous-join delta probes all
  // happen there), then re-serialize shard stats so pair pruning keeps
  // seeing the post-mutation MBRs.
  for (size_t s = 0; s < num_shards; ++s) {
    if (batches[s].empty()) continue;
    inner_.ApplyMutations(entry.shards[s].engine_handle, batches[s]);
    const DatasetSnapshotPtr snap =
        inner_.catalog().snapshot(entry.shards[s].engine_handle);
    entry.shards[s].stats_bytes = SerializeDatasetStats(snap->stats);
    entry.shards[s].count = snap->stats.count;
  }

  // Publish the new id maps (copy-on-write swap) and bump the version.
  entry.shard_of =
      std::make_shared<const std::vector<uint32_t>>(std::move(shard_of));
  for (size_t s = 0; s < num_shards; ++s) {
    if (touched[s]) {
      entry.shards[s].to_global = std::make_shared<const std::vector<uint32_t>>(
          std::move(to_global[s]));
    }
  }
  ++entry.version;

  // Drift check: once any mutated shard's MBR margin outgrows its
  // partition-time margin by the configured factor, the slabs no longer
  // describe the data and the whole dataset is re-partitioned.
  const double drift = inner_.options().shard_repartition_drift;
  if (drift > 0) {
    for (size_t s = 0; s < num_shards; ++s) {
      if (batches[s].empty()) continue;
      const Box& base = entry.shards[s].base_mbr;
      if (!(base.lo.x <= base.hi.x)) continue;  // empty at partition time
      const double base_margin = base.Margin();
      if (base_margin <= 0) continue;
      const DatasetSnapshotPtr snap =
          inner_.catalog().snapshot(entry.shards[s].engine_handle);
      if (snap->stats.count > 0 &&
          snap->stats.extent.Margin() > drift * base_margin) {
        RepartitionLocked(entry);
        inner_.metrics().counter("touch_shard_repartitions_total").Increment();
        break;
      }
    }
  }
  return entry.version;
}

void ShardedQueryEngine::RepartitionLocked(ShardedCatalog::Entry& entry) {
  // Gather the live geometry — with its preserved global ids — out of the
  // inner shard snapshots.
  Dataset all_boxes;
  std::vector<uint32_t> all_gids;
  for (const ShardedCatalog::Shard& shard : entry.shards) {
    const DatasetSnapshotPtr snap =
        inner_.catalog().snapshot(shard.engine_handle);
    const std::vector<uint32_t>& map = *shard.to_global;
    for (size_t slot = 0; slot < snap->boxes.size(); ++slot) {
      all_boxes.push_back(snap->boxes[slot]);
      all_gids.push_back(map[snap->id_of(static_cast<uint32_t>(slot))]);
    }
  }
  DatasetStats global_stats = ComputeDatasetStats(all_boxes);
  ShardPartition partition =
      PartitionIntoShards(all_boxes, global_stats, shards_);

  std::vector<uint32_t> shard_of(entry.next_global, kNoShard);
  std::vector<ShardedCatalog::Shard> shards;
  shards.reserve(partition.shards.size());
  for (size_t k = 0; k < partition.shards.size(); ++k) {
    DatasetShard& piece = partition.shards[k];
    ShardedCatalog::Shard shard;
    // piece.to_global indexes into all_boxes; translate to preserved gids.
    std::vector<uint32_t> to_global(piece.to_global.size());
    for (size_t i = 0; i < piece.to_global.size(); ++i) {
      const uint32_t gid = all_gids[piece.to_global[i]];
      to_global[i] = gid;
      shard.local_of.emplace(gid, static_cast<uint32_t>(i));
      shard_of[gid] = static_cast<uint32_t>(k);
    }
    DatasetStats stats = ComputeDatasetStats(piece.boxes);
    shard.count = piece.boxes.size();
    shard.stats_bytes = SerializeDatasetStats(stats);
    shard.next_local = static_cast<uint32_t>(piece.boxes.size());
    shard.to_global =
        std::make_shared<const std::vector<uint32_t>>(std::move(to_global));
    for (int axis = 0; axis < 3; ++axis) {
      shard.cell_lo[axis] = piece.cell_lo[axis];
      shard.cell_hi[axis] = piece.cell_hi[axis];
    }
    shard.base_mbr = piece.mbr;
    // The old inner shard datasets stay registered (the inner catalog has
    // no unregister); versioned epochs in the name keep handles unique.
    shard.engine_handle = inner_.RegisterDataset(
        entry.name + "#" + std::to_string(k) + "@v" +
            std::to_string(entry.version),
        std::move(piece.boxes), std::move(stats));
    shards.push_back(std::move(shard));
  }
  entry.route_domain = global_stats.extent;
  entry.route_resolution = std::max(1, global_stats.histogram_resolution);
  entry.global_stats = std::move(global_stats);
  entry.shards = std::move(shards);
  entry.shard_of =
      std::make_shared<const std::vector<uint32_t>>(std::move(shard_of));
  entry.mutable_ready = true;
}

ShardedJoinResult ShardedQueryEngine::Execute(const JoinRequest& request,
                                              ResultCollector& out) {
  return Submit(request, std::make_unique<ForwardingSink>(out)).Get();
}

}  // namespace touch
