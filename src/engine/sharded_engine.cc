#include "engine/sharded_engine.h"

#include <algorithm>
#include <atomic>
#include <optional>

#include "util/format.h"
#include "util/thread_annotations.h"
#include "util/timer.h"

namespace touch {
namespace {

constexpr auto Format = StrFormat;  // local shorthand for the reports

}  // namespace

/// Everything one sharded join shares between its pair sinks and its
/// handle: the user sink (serialized behind a mutex), the owner maps the
/// dedup filter consults, and the per-pair handles the gather drains.
struct internal::GatherState {
  const QueryEngine* inner = nullptr;
  std::unique_ptr<ResultSink> user_sink;
  const ShardedCatalog::Entry* entry_a = nullptr;
  const ShardedCatalog::Entry* entry_b = nullptr;
  /// Merged result pairs (post-dedup), counted by the pair sinks.
  std::atomic<uint64_t> merged_results{0};
  /// Pairs dropped by the owner filter (boundary duplicates).
  std::atomic<uint64_t> deduplicated{0};
  /// Serializes user_sink->Emit across concurrently executing pairs. The
  /// sink pointer itself is not GUARDED_BY it: Get() legitimately reads
  /// user_sink un-mutexed once every pair handle has drained.
  Mutex sink_mutex;
  std::vector<RequestHandle> handles;
  /// (shard_a, shard_b) of handles[k].
  std::vector<std::pair<int, int>> pair_ids;
  std::vector<std::pair<int, int>> pruned;
  size_t pairs_total = 0;
  /// Submit-time failure (bad handle, corrupt shard stats); when set, no
  /// pairs were scattered.
  std::string error;
  /// Wall clock of the whole scatter-gather, started at Submit.
  Timer wall;
  bool gathered = false;
  /// Observability wiring (the inner engine's; valid for the state's life).
  Tracer* tracer = nullptr;
  MetricsRegistry* metrics = nullptr;
  /// The sharded request's trace identity: every shard pair's root span
  /// parents onto root_span_id, recorded by Get() once the outcome is known.
  uint64_t trace_id = 0;
  uint64_t root_span_id = 0;
  int64_t submit_ns = 0;
};

namespace {

using GatherStatePtr = std::shared_ptr<internal::GatherState>;

/// The per-pair sink the inner engine owns: remaps shard-local ids to
/// global ids, applies the owner dedup filter, and forwards survivors into
/// the shared user sink. Each instance is driven by exactly one worker
/// (the inner engine's per-request contract); only the user-sink hop is
/// cross-pair and takes the mutex.
class PairSink : public ResultSink {
 public:
  PairSink(GatherStatePtr state, const ShardedCatalog::Shard* shard_a,
           const ShardedCatalog::Shard* shard_b, uint32_t index_a,
           uint32_t index_b)
      : state_(std::move(state)),
        shard_a_(shard_a),
        shard_b_(shard_b),
        index_a_(index_a),
        index_b_(index_b) {}

  void Emit(uint32_t local_a, uint32_t local_b) override {
    const uint32_t global_a = shard_a_->to_global[local_a];
    const uint32_t global_b = shard_b_->to_global[local_b];
    // Owner filter: a pair belongs to the shard pair that owns both
    // objects. The center-disjoint partitioner makes this vacuously true;
    // a replicating partitioner would emit boundary pairs from several
    // shard pairs, and exactly one — the owner — survives.
    if (state_->entry_a->shard_of[global_a] != index_a_ ||
        state_->entry_b->shard_of[global_b] != index_b_) {
      state_->deduplicated.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    state_->merged_results.fetch_add(1, std::memory_order_relaxed);
    if (state_->user_sink != nullptr) {
      const MutexLock lock(state_->sink_mutex);
      state_->user_sink->Emit(global_a, global_b);
    }
  }

 private:
  GatherStatePtr state_;
  const ShardedCatalog::Shard* shard_a_;
  const ShardedCatalog::Shard* shard_b_;
  uint32_t index_a_;
  uint32_t index_b_;
};

}  // namespace

// --- ShardedRequestHandle ---------------------------------------------------

size_t ShardedRequestHandle::pair_count() const {
  return state_ == nullptr ? 0 : state_->handles.size();
}

bool ShardedRequestHandle::Cancel() {
  if (state_ == nullptr) return false;
  // One call fans out to every shard pair's cancellation source.
  bool any = false;
  for (RequestHandle& handle : state_->handles) {
    if (handle.Cancel()) any = true;
  }
  return any;
}

ShardedJoinResult ShardedRequestHandle::Get() {
  ShardedJoinResult out;
  if (state_ == nullptr) {
    out.merged.status = RequestStatus::kError;
    out.merged.error = "invalid sharded request handle";
    return out;
  }
  internal::GatherState& state = *state_;
  if (state.gathered) {
    out.merged.status = RequestStatus::kError;
    out.merged.error = "sharded result already gathered";
    return out;
  }
  state.gathered = true;
  out.shard_pairs_total = state.pairs_total;
  out.pruned = state.pruned;
  // The gather span covers draining every pair future plus the merge.
  SpanScope gather_span(
      TraceContext{state.tracer, state.trace_id, state.root_span_id},
      "gather");

  JoinResult& merged = out.merged;
  if (!state.error.empty()) {
    merged.status = RequestStatus::kError;
    merged.error = state.error;
  }
  bool all_hit = !state.handles.empty();
  bool any_warm = false;
  bool any_cancelled = false;
  for (size_t k = 0; k < state.handles.size(); ++k) {
    JoinResult pair = state.handles[k].Get();
    if (pair.status == RequestStatus::kCancelled) any_cancelled = true;
    if (pair.status == RequestStatus::kError && merged.error.empty()) {
      merged.status = RequestStatus::kError;
      merged.error = Format("shard pair (%d, %d): ", state.pair_ids[k].first,
                            state.pair_ids[k].second) +
                     pair.error;
    }
    all_hit = all_hit && pair.index_cache_hit;
    any_warm = any_warm || pair.index_cache_hit || pair.partial_index_cache_hit;
    // Counters merge; phase seconds accumulate as summed work seconds.
    merged.stats.MergeCounters(pair.stats);
    merged.stats.build_seconds += pair.stats.build_seconds;
    merged.stats.assign_seconds += pair.stats.assign_seconds;
    merged.stats.join_seconds += pair.stats.join_seconds;
    merged.plan.expected_results += pair.plan.expected_results;

    ShardPairReport report;
    report.shard_a = state.pair_ids[k].first;
    report.shard_b = state.pair_ids[k].second;
    report.stats = pair.stats;
    report.status = pair.status;
    report.index_cache_hit = pair.index_cache_hit;
    report.plan = std::move(pair.plan);
    out.pairs.push_back(std::move(report));
  }
  // The owner filter's counts are authoritative: MergeCounters summed the
  // pairs' pre-dedup result counters.
  merged.stats.results = state.merged_results.load(std::memory_order_relaxed);
  out.deduplicated = state.deduplicated.load(std::memory_order_relaxed);
  if (merged.status != RequestStatus::kError && any_cancelled) {
    merged.status = RequestStatus::kCancelled;
  }
  merged.index_cache_hit = all_hit;
  merged.partial_index_cache_hit = !all_hit && any_warm;
  merged.stats.total_seconds = state.wall.Seconds();
  merged.plan.algorithm = "sharded";
  merged.plan.rationale = Format(
      "scatter-gather over %zu x %zu shards: %zu pairs executed, %zu pruned "
      "by the epsilon-inflated MBR test, %llu boundary duplicates dropped",
      state.entry_a != nullptr ? state.entry_a->shards.size() : 0,
      state.entry_b != nullptr ? state.entry_b->shards.size() : 0,
      out.pairs.size(), out.pruned.size(),
      static_cast<unsigned long long>(out.deduplicated));
  if (state.inner != nullptr) out.cache = state.inner->cache_stats();
  merged.trace_id = state.trace_id;
  gather_span.AddAttr("merged_results",
                      std::to_string(merged.stats.results));
  gather_span.End();
  if (state.metrics != nullptr) {
    // Increment(0) still creates the series, so scrapes always see it.
    state.metrics->counter("touch_sharded_dedup_total")
        .Increment(out.deduplicated);
  }
  if (state.tracer != nullptr) {
    // The sharded request's root span, recorded now that the outcome is
    // known; scatter, per-pair roots and gather all hang under it.
    SpanRecord root;
    root.trace_id = state.trace_id;
    root.span_id = state.root_span_id;
    root.start_ns = state.submit_ns;
    root.duration_ns = TraceClockNs() - state.submit_ns;
    root.thread = CurrentThreadIndex();
    root.name = "sharded-request";
    root.attrs.emplace_back("status", RequestStatusName(merged.status));
    root.attrs.emplace_back("pairs", std::to_string(out.pairs.size()));
    root.attrs.emplace_back("pruned", std::to_string(out.pruned.size()));
    state.tracer->Record(std::move(root));
  }

  if (state.user_sink != nullptr) {
    state.user_sink->OnComplete(merged);
    state.user_sink.reset();
  }
  return out;
}

// --- ShardedQueryEngine -----------------------------------------------------

ShardedQueryEngine::ShardedQueryEngine(const EngineOptions& options)
    : shards_(std::max(1, options.shards)),
      planner_(options.planner),
      inner_(options) {}

DatasetHandle ShardedQueryEngine::RegisterDataset(std::string name,
                                                  Dataset boxes) {
  ShardedCatalog::Entry entry;
  entry.name = name;
  entry.global_stats = ComputeDatasetStats(boxes);
  ShardPartition partition =
      PartitionIntoShards(boxes, entry.global_stats, shards_);
  entry.shard_of = std::move(partition.shard_of);
  entry.shards.reserve(partition.shards.size());
  for (size_t k = 0; k < partition.shards.size(); ++k) {
    DatasetShard& piece = partition.shards[k];
    // Per-shard stats are computed once and serialized — the bytes are what
    // central planning consumes, and what a remote shard would ship.
    DatasetStats stats = ComputeDatasetStats(piece.boxes);
    ShardedCatalog::Shard shard;
    shard.count = piece.boxes.size();
    shard.stats_bytes = SerializeDatasetStats(stats);
    shard.to_global = std::move(piece.to_global);
    shard.engine_handle =
        inner_.RegisterDataset(name + "#" + std::to_string(k),
                               std::move(piece.boxes), std::move(stats));
    entry.shards.push_back(std::move(shard));
  }
  return catalog_.Add(std::move(entry));
}

ShardedRequestHandle ShardedQueryEngine::Submit(
    const JoinRequest& request, std::unique_ptr<ResultSink> sink) {
  auto state = std::make_shared<internal::GatherState>();
  state->inner = &inner_;
  state->user_sink = std::move(sink);
  state->tracer = inner_.tracer();
  state->metrics = &inner_.metrics();
  state->submit_ns = TraceClockNs();
  if (state->tracer != nullptr) {
    state->trace_id = state->tracer->NewTraceId();
    state->root_span_id = state->tracer->NewSpanId();
  }
  state->metrics->counter("touch_sharded_requests_total").Increment();
  ShardedRequestHandle handle;
  handle.state_ = state;
  if (!catalog_.Contains(request.a) || !catalog_.Contains(request.b)) {
    state->error =
        Format("invalid dataset handle (sharded catalog has %zu datasets)",
               catalog_.size());
    return handle;
  }
  const ShardedCatalog::Entry& entry_a = catalog_.entry(request.a);
  const ShardedCatalog::Entry& entry_b = catalog_.entry(request.b);
  state->entry_a = &entry_a;
  state->entry_b = &entry_b;
  state->pairs_total = entry_a.shards.size() * entry_b.shards.size();

  // Central planning consumes the serialized stats — deserialize each
  // shard's bytes once per request, exactly as a coordinator would with
  // stats that arrived over the wire.
  const auto deserialize_all =
      [&](const ShardedCatalog::Entry& entry,
          std::vector<DatasetStats>* stats) -> bool {
    stats->resize(entry.shards.size());
    for (size_t k = 0; k < entry.shards.size(); ++k) {
      if (!DeserializeDatasetStats(entry.shards[k].stats_bytes,
                                   &(*stats)[k])) {
        state->error = Format("corrupt serialized stats for shard %zu of %s",
                              k, entry.name.c_str());
        return false;
      }
    }
    return true;
  };
  std::vector<DatasetStats> stats_a;
  std::vector<DatasetStats> stats_b;
  if (!deserialize_all(entry_a, &stats_a) ||
      !deserialize_all(entry_b, &stats_b)) {
    return handle;
  }

  std::optional<CalibrationSnapshot> snapshot;
  if (inner_.options().calibration.enabled) {
    snapshot = inner_.calibration_snapshot();
  }

  // The scatter span covers pruning, central planning and submission of
  // every pair; each pair's own "request" root parents onto the sharded
  // root, so the exported tree reads sharded-request → scatter/plan,
  // request (per pair) → build/execute, gather.
  SpanScope scatter_span(
      TraceContext{state->tracer, state->trace_id, state->root_span_id},
      "scatter");
  for (size_t i = 0; i < entry_a.shards.size(); ++i) {
    for (size_t j = 0; j < entry_b.shards.size(); ++j) {
      if (!Planner::PairMayProduceResults(stats_a[i], stats_b[j],
                                          request.epsilon)) {
        state->pruned.emplace_back(static_cast<int>(i), static_cast<int>(j));
        continue;
      }
      SpanScope plan_span(scatter_span.context(), "plan");
      plan_span.AddAttr("shard_a", std::to_string(i));
      plan_span.AddAttr("shard_b", std::to_string(j));
      JoinPlan plan =
          planner_.Plan(stats_a[i], stats_b[j], request.epsilon,
                        snapshot.has_value() ? &*snapshot : nullptr);
      plan_span.AddAttr("algorithm", plan.algorithm);
      plan_span.End();
      JoinRequest pair_request;
      pair_request.a = entry_a.shards[i].engine_handle;
      pair_request.b = entry_b.shards[j].engine_handle;
      pair_request.epsilon = request.epsilon;
      pair_request.deadline = request.deadline;  // deadlines fan out too
      // The pair joins this request's trace instead of starting its own.
      pair_request.trace_id = state->trace_id;
      pair_request.trace_parent_span = state->root_span_id;
      state->pair_ids.emplace_back(static_cast<int>(i), static_cast<int>(j));
      state->handles.push_back(inner_.SubmitPlanned(
          std::move(plan), pair_request,
          std::make_unique<PairSink>(state, &entry_a.shards[i],
                                     &entry_b.shards[j],
                                     static_cast<uint32_t>(i),
                                     static_cast<uint32_t>(j))));
    }
  }
  scatter_span.AddAttr("executed", std::to_string(state->handles.size()));
  scatter_span.AddAttr("pruned", std::to_string(state->pruned.size()));
  scatter_span.End();
  state->metrics->counter("touch_sharded_pairs_executed_total")
      .Increment(state->handles.size());
  state->metrics->counter("touch_sharded_pairs_pruned_total")
      .Increment(state->pruned.size());
  return handle;
}

ShardedJoinResult ShardedQueryEngine::Execute(const JoinRequest& request,
                                              ResultCollector& out) {
  return Submit(request, std::make_unique<ForwardingSink>(out)).Get();
}

}  // namespace touch
