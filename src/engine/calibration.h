#ifndef TOUCH_ENGINE_CALIBRATION_H_
#define TOUCH_ENGINE_CALIBRATION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "util/thread_annotations.h"

namespace touch {

/// Controls the engine's measured-run feedback loop (the self-calibrating
/// planner). With `enabled`, every cold execution is recorded into the
/// engine's PlanFeedback store and planning consults the fitted cost models;
/// disabled restores the purely static planner and records nothing.
struct CalibrationOptions {
  bool enabled = true;
  /// An algorithm family only participates in calibrated planning once it
  /// has this many recorded cold runs (prevents one noisy measurement from
  /// flipping plans).
  size_t min_samples = 3;
  /// Cap on the retained outcome log (introspection only; the incremental
  /// fit is unaffected by log eviction).
  size_t max_outcomes = 1024;
};

/// One measured cold execution, as the engine records it after a request
/// that actually paid its build (cache hits are not recorded: the planner
/// compares cold costs).
struct PlanOutcome {
  /// Algorithm family ("touch", "pbsm", "inl", "ps", "nl"), see
  /// AlgorithmFamily.
  std::string family;
  /// |A| + |B| of the request.
  size_t objects = 0;
  /// Result pairs the run actually produced (introspection; not a fit
  /// feature).
  uint64_t results = 0;
  /// The planner's own estimate for this request (CombineHistograms). This
  /// — not `results` — is the regression feature: plan-time predictions can
  /// only ever feed the estimate in, so fitting against the same estimator
  /// keeps the features consistent and lets its bias cancel between fit
  /// and prediction.
  double estimated_results = 0;
  double build_seconds = 0;
  /// Assignment plus join phases (everything after the build).
  double probe_seconds = 0;
  double total_seconds = 0;
};

/// Family of a MakeAlgorithm-style name: the prefix before any '-' parameter
/// ("pbsm-250" -> "pbsm", "touch" -> "touch").
std::string AlgorithmFamily(const std::string& algorithm);

/// Fitted cost model of one algorithm family:
///   seconds ~= seconds_per_object * (|A|+|B|) + seconds_per_result * |R|.
/// Linear in the two quantities planning can estimate without running
/// anything (cardinalities from the catalog, |R| from CombineHistograms).
struct CostModel {
  double seconds_per_object = 0;
  double seconds_per_result = 0;
  /// Fitted *build-phase* rate (seconds ~= build_seconds_per_object *
  /// objects, least squares through the origin): what one index build over
  /// this family costs per object. Consumed by the cache's pre-admission
  /// policy, which wants the rebuild cost of an artifact, not the whole
  /// query.
  double build_seconds_per_object = 0;
  size_t samples = 0;

  double Predict(double objects, double results) const {
    return seconds_per_object * objects + seconds_per_result * results;
  }

  double PredictBuild(double objects) const {
    return build_seconds_per_object * objects;
  }
};

/// Immutable view of the fitted cost models, consulted by Planner::Plan.
/// Families under `min_samples` recorded runs answer nullopt, so the planner
/// falls back to its static rules until enough evidence accumulates.
class CalibrationSnapshot {
 public:
  CalibrationSnapshot() = default;
  CalibrationSnapshot(std::map<std::string, CostModel> models,
                      size_t min_samples)
      : models_(std::move(models)), min_samples_(min_samples) {}

  /// Predicted cold seconds for `family`, or nullopt while the family has
  /// fewer than min_samples measured runs.
  std::optional<double> Predict(const std::string& family, double objects,
                                double results) const;

  /// Predicted index-build seconds for `family` at `objects` total request
  /// objects, under the same min_samples gate. The cache's pre-admission
  /// consults this: an artifact whose predicted rebuild is expensive skips
  /// the ghost probation.
  std::optional<double> PredictBuildSeconds(const std::string& family,
                                            double objects) const;

  /// The fitted model regardless of sample count (telemetry/debugging).
  const CostModel* Find(const std::string& family) const;

  const std::map<std::string, CostModel>& models() const { return models_; }
  size_t min_samples() const { return min_samples_; }

  /// Families with enough samples to participate in calibrated planning.
  size_t calibrated_families() const;
  /// Measured runs across all families.
  size_t total_samples() const;

 private:
  std::map<std::string, CostModel> models_;
  size_t min_samples_ = 0;
};

/// Thread-safe store of measured plan outcomes plus the incremental
/// least-squares accumulators the Calibrator fits from. Recording is O(1);
/// the engine calls it from its worker threads after every cold run.
class PlanFeedback {
 public:
  explicit PlanFeedback(size_t max_outcomes = 1024)
      : max_outcomes_(max_outcomes) {}

  void Record(const PlanOutcome& outcome) EXCLUDES(mutex_);

  /// Fits one CostModel per family from the accumulated runs (see
  /// Calibrator) and snapshots them for the planner.
  CalibrationSnapshot Snapshot(size_t min_samples = 3) const EXCLUDES(mutex_);

  /// Copy of the retained outcome log, newest last (capped at
  /// max_outcomes; older entries are dropped from the log only, never from
  /// the fit).
  std::vector<PlanOutcome> RecentOutcomes() const EXCLUDES(mutex_);

  /// Total outcomes ever recorded (not capped).
  uint64_t total_recorded() const EXCLUDES(mutex_);

  void Clear() EXCLUDES(mutex_);

 private:
  struct FamilySums {
    size_t n = 0;
    double objects_sq = 0;       // sum o_i^2
    double objects_results = 0;  // sum o_i * r_i
    double results_sq = 0;       // sum r_i^2
    double objects_time = 0;     // sum o_i * t_i
    double results_time = 0;     // sum r_i * t_i
    double objects_build = 0;    // sum o_i * build_i (build-rate fit)
  };

  mutable Mutex mutex_;
  const size_t max_outcomes_;
  std::map<std::string, FamilySums> sums_ GUARDED_BY(mutex_);
  std::deque<PlanOutcome> log_ GUARDED_BY(mutex_);
  uint64_t recorded_ GUARDED_BY(mutex_) = 0;
};

/// The fit itself (exposed for tests): ridge-regularized least squares of
/// t ~= a*objects + b*results through the origin, with non-negativity
/// enforced by refitting the single-coefficient model when a corner of the
/// unconstrained solution goes negative.
CostModel FitCostModel(size_t samples, double objects_sq,
                       double objects_results, double results_sq,
                       double objects_time, double results_time);

}  // namespace touch

#endif  // TOUCH_ENGINE_CALIBRATION_H_
