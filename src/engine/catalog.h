#ifndef TOUCH_ENGINE_CATALOG_H_
#define TOUCH_ENGINE_CATALOG_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "datagen/dataset.h"
#include "geom/box.h"
#include "geom/vec3.h"

namespace touch {

/// Identifier of a dataset registered with a DatasetCatalog: a dense index,
/// stable for the catalog's lifetime.
using DatasetHandle = uint32_t;

/// Statistics computed once at registration and consumed by the planner on
/// every query, so planning never rescans the data it already knows about.
struct DatasetStats {
  size_t count = 0;
  /// Tight bounding box of all objects.
  Box extent = Box::Empty();
  /// Average per-axis object extent.
  Vec3 avg_object_extent{0, 0, 0};
  /// Objects per unit volume of `extent` (0 when the extent is degenerate).
  double density = 0;
  /// Coarse center-count histogram over `extent` (resolution^3 cells,
  /// x-major like SelectivityEstimator) — the planner's skew signal.
  int histogram_resolution = 0;
  std::vector<uint32_t> histogram;

  /// Peak cell count divided by the mean count of *occupied* cells: near 1
  /// for uniform data, large for clustered data. 0 for empty datasets.
  double HistogramSkew() const;
};

/// Computes the stats of one dataset (exposed for tests and tools).
DatasetStats ComputeDatasetStats(std::span<const Box> boxes,
                                 int histogram_resolution = 16);

/// Registry of named datasets with precomputed stats — the engine's notion
/// of "a dataset the system serves queries against", as opposed to the
/// anonymous spans the algorithm layer joins.
///
/// Registration moves the boxes in; the catalog owns them for its lifetime
/// and hands out stable references (entries are heap-allocated), so callers
/// may hold spans across later registrations. Lookup by name returns the
/// most recently registered dataset of that name.
class DatasetCatalog {
 public:
  DatasetHandle Register(std::string name, Dataset boxes);

  size_t size() const { return entries_.size(); }
  bool Contains(DatasetHandle handle) const { return handle < entries_.size(); }

  const std::string& name(DatasetHandle handle) const {
    return entries_[handle]->name;
  }
  const Dataset& boxes(DatasetHandle handle) const {
    return entries_[handle]->boxes;
  }
  const DatasetStats& stats(DatasetHandle handle) const {
    return entries_[handle]->stats;
  }

  /// Handle of the most recently registered dataset named `name`.
  std::optional<DatasetHandle> Find(const std::string& name) const;

 private:
  struct Entry {
    std::string name;
    Dataset boxes;
    DatasetStats stats;
  };

  // unique_ptr keeps boxes/stats references stable across Register calls.
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace touch

#endif  // TOUCH_ENGINE_CATALOG_H_
