#ifndef TOUCH_ENGINE_CATALOG_H_
#define TOUCH_ENGINE_CATALOG_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "datagen/dataset.h"
#include "geom/box.h"
#include "geom/vec3.h"
#include "util/thread_annotations.h"

namespace touch {

/// Identifier of a dataset registered with a DatasetCatalog: a dense index,
/// stable for the catalog's lifetime.
using DatasetHandle = uint32_t;

/// Statistics computed once at registration and consumed by the planner on
/// every query, so planning never rescans the data it already knows about.
struct DatasetStats {
  size_t count = 0;
  /// Tight bounding box of all objects.
  Box extent = Box::Empty();
  /// Average per-axis object extent.
  Vec3 avg_object_extent{0, 0, 0};
  /// Objects per unit volume of `extent` (0 when the extent is degenerate).
  double density = 0;
  /// Center-count histogram over `extent` (resolution^3 cells, x-major like
  /// SelectivityEstimator) — the planner's skew signal and, pair-combined
  /// with another dataset's histogram (CombineHistograms), its plan-time
  /// selectivity estimate. The default resolution matches the planner's
  /// combine grid so pair-combination loses no detail it could use.
  int histogram_resolution = 0;
  std::vector<uint32_t> histogram;

  /// Peak cell count divided by the mean count of *occupied* cells: near 1
  /// for uniform data, large for clustered data. 0 for empty datasets.
  /// Always measured at (at most) 16 cells/axis — finer histograms, any
  /// resolution, are block-aggregated down first — so the skew scale (and
  /// the planner's pbsm_skew_max threshold) does not drift with histogram
  /// resolution.
  double HistogramSkew() const;
};

/// Computes the stats of one dataset (exposed for tests and tools).
DatasetStats ComputeDatasetStats(std::span<const Box> boxes,
                                 int histogram_resolution = 32);

/// Join-level estimate derived purely from two datasets' precomputed
/// histograms — the planner's plan-time replacement for rescanning raw
/// geometry (see CombineHistograms).
struct PairEstimate {
  /// Expected number of result pairs of the epsilon-distance join.
  double expected_results = 0;
  /// expected_results / (|A| * |B|); 0 for empty inputs.
  double selectivity = 0;
  /// Peak-over-mean of the per-cell expected result contribution on the
  /// joint grid: near 1 when the output is spread evenly, large when it is
  /// concentrated in a few hotspots. 0 when nothing is expected to overlap.
  double pair_skew = 0;
};

/// Pair-combines two datasets' registration-time histograms into a join
/// estimate, without touching raw geometry: each per-dataset center
/// histogram is resampled onto a shared grid over the joint extent (counts
/// spread volume-proportionally across overlapping cells), then the same
/// center-offset probability model as SelectivityEstimator
/// (AxisOverlapProbabilities) turns co-located mass into expected results.
/// A distance join enlarges side `a` by `epsilon`. `resolution` is the
/// target joint-grid cells per axis, clamped so cells stay larger than the
/// average object. O(resolution^3), independent of dataset sizes.
PairEstimate CombineHistograms(const DatasetStats& a, const DatasetStats& b,
                               float epsilon, int resolution = 32);

/// Byte-serialization of DatasetStats, so stats can travel without their
/// geometry (e.g. a future sharded catalog exchanging planning metadata
/// between nodes). Fixed-width fields in native byte order — intended for
/// same-architecture exchange and exact round-trips, not archival.
std::vector<uint8_t> SerializeDatasetStats(const DatasetStats& stats);

/// Inverse of SerializeDatasetStats. Returns false (leaving `stats`
/// untouched) on truncated, overlong, or structurally inconsistent input —
/// including histogram resolutions above 4096 cells/axis, which are
/// rejected as implausible rather than allocated.
bool DeserializeDatasetStats(std::span<const uint8_t> bytes,
                             DatasetStats* stats);

/// Registry of named datasets with precomputed stats — the engine's notion
/// of "a dataset the system serves queries against", as opposed to the
/// anonymous spans the algorithm layer joins.
///
/// Registration moves the boxes in; the catalog owns them for its lifetime
/// and hands out stable references (entries are heap-allocated), so callers
/// may hold spans across later registrations. Lookup by name returns the
/// most recently registered dataset of that name.
///
/// Thread safety: the catalog is internally synchronized — Register may race
/// with lookups and with other Register calls. Entries are append-only and
/// immutable once registered, so the references the accessors return stay
/// valid (and safely readable) after the internal lock is released; a handle
/// is usable from the moment its Register call returned.
class DatasetCatalog {
 public:
  DatasetHandle Register(std::string name, Dataset boxes) EXCLUDES(mutex_);

  /// Registers with stats the caller already computed — the partition API's
  /// entry point: the sharded catalog computes each shard's stats once (to
  /// serialize them for central planning) and must not pay a second
  /// registration scan here. `stats` must describe `boxes` exactly; nothing
  /// is verified.
  DatasetHandle Register(std::string name, Dataset boxes, DatasetStats stats)
      EXCLUDES(mutex_);

  size_t size() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return entries_.size();
  }
  bool Contains(DatasetHandle handle) const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return handle < entries_.size();
  }

  const std::string& name(DatasetHandle handle) const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return entries_[handle]->name;
  }
  const Dataset& boxes(DatasetHandle handle) const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return entries_[handle]->boxes;
  }
  const DatasetStats& stats(DatasetHandle handle) const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return entries_[handle]->stats;
  }

  /// Handle of the most recently registered dataset named `name`.
  std::optional<DatasetHandle> Find(const std::string& name) const
      EXCLUDES(mutex_);

 private:
  struct Entry {
    std::string name;
    Dataset boxes;
    DatasetStats stats;
  };

  mutable Mutex mutex_;
  // unique_ptr keeps boxes/stats references stable across Register calls.
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mutex_);
};

}  // namespace touch

#endif  // TOUCH_ENGINE_CATALOG_H_
