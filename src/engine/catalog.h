#ifndef TOUCH_ENGINE_CATALOG_H_
#define TOUCH_ENGINE_CATALOG_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "datagen/dataset.h"
#include "geom/box.h"
#include "geom/vec3.h"
#include "index/dynamic_rtree.h"
#include "util/exact_sum.h"
#include "util/thread_annotations.h"

namespace touch {

/// Identifier of a dataset registered with a DatasetCatalog: a dense index,
/// stable for the catalog's lifetime.
using DatasetHandle = uint32_t;

/// Sentinel object id: "assign the next free id" in Mutation::id.
inline constexpr uint32_t kInvalidObjectId = 0xffffffffu;

/// Statistics computed at registration, then *incrementally maintained*
/// across mutations, and consumed by the planner on every query — planning
/// never rescans the data it already knows about. The incremental path is
/// held bit-for-bit identical to ComputeDatasetStats over the current boxes
/// by the dynamic-catalog differential oracle (see docs/DYNAMIC.md): extent
/// is a multiset min/max (order-independent), extent sums use ExactSum
/// (order-independent by construction), histogram counts are integers, and
/// density/avg are pure functions of the above.
struct DatasetStats {
  size_t count = 0;
  /// Tight bounding box of all objects.
  Box extent = Box::Empty();
  /// Average per-axis object extent.
  Vec3 avg_object_extent{0, 0, 0};
  /// Objects per unit volume of `extent` (0 when the extent is degenerate).
  double density = 0;
  /// Center-count histogram over `extent` (resolution^3 cells, x-major like
  /// SelectivityEstimator) — the planner's skew signal and, pair-combined
  /// with another dataset's histogram (CombineHistograms), its plan-time
  /// selectivity estimate. The default resolution matches the planner's
  /// combine grid so pair-combination loses no detail it could use.
  int histogram_resolution = 0;
  std::vector<uint32_t> histogram;

  /// Peak cell count divided by the mean count of *occupied* cells: near 1
  /// for uniform data, large for clustered data. 0 for empty datasets.
  /// Always measured at (at most) 16 cells/axis — finer histograms, any
  /// resolution, are block-aggregated down first — so the skew scale (and
  /// the planner's pbsm_skew_max threshold) does not drift with histogram
  /// resolution.
  double HistogramSkew() const;
};

/// Computes the stats of one dataset (exposed for tests and tools).
DatasetStats ComputeDatasetStats(std::span<const Box> boxes,
                                 int histogram_resolution = 32);

/// Join-level estimate derived purely from two datasets' precomputed
/// histograms — the planner's plan-time replacement for rescanning raw
/// geometry (see CombineHistograms).
struct PairEstimate {
  /// Expected number of result pairs of the epsilon-distance join.
  double expected_results = 0;
  /// expected_results / (|A| * |B|); 0 for empty inputs.
  double selectivity = 0;
  /// Peak-over-mean of the per-cell expected result contribution on the
  /// joint grid: near 1 when the output is spread evenly, large when it is
  /// concentrated in a few hotspots. 0 when nothing is expected to overlap.
  double pair_skew = 0;
};

/// Pair-combines two datasets' registration-time histograms into a join
/// estimate, without touching raw geometry: each per-dataset center
/// histogram is resampled onto a shared grid over the joint extent (counts
/// spread volume-proportionally across overlapping cells), then the same
/// center-offset probability model as SelectivityEstimator
/// (AxisOverlapProbabilities) turns co-located mass into expected results.
/// A distance join enlarges side `a` by `epsilon`. `resolution` is the
/// target joint-grid cells per axis, clamped so cells stay larger than the
/// average object. O(resolution^3), independent of dataset sizes.
PairEstimate CombineHistograms(const DatasetStats& a, const DatasetStats& b,
                               float epsilon, int resolution = 32);

/// Byte-serialization of DatasetStats, so stats can travel without their
/// geometry (e.g. a future sharded catalog exchanging planning metadata
/// between nodes). Fixed-width fields in native byte order — intended for
/// same-architecture exchange and exact round-trips, not archival.
std::vector<uint8_t> SerializeDatasetStats(const DatasetStats& stats);

/// Inverse of SerializeDatasetStats. Returns false (leaving `stats`
/// untouched) on truncated, overlong, or structurally inconsistent input —
/// including histogram resolutions above 4096 cells/axis, which are
/// rejected as implausible rather than allocated.
bool DeserializeDatasetStats(std::span<const uint8_t> bytes,
                             DatasetStats* stats);

/// One change to a registered dataset. `box` is the object's new geometry
/// (ignored for kDelete).
enum class MutationKind : uint8_t { kInsert, kDelete, kUpdate };

struct Mutation {
  MutationKind kind = MutationKind::kInsert;
  /// Object id. For kInsert, kInvalidObjectId asks the catalog to assign the
  /// next free id; explicit ids let a sharded owner preserve global identity
  /// when a cross-shard move turns into delete+insert.
  uint32_t id = kInvalidObjectId;
  Box box;
};

/// Effect of one applied mutation, reported so the engine's delta-probe can
/// diff an object's old and new epsilon-windows without rescanning geometry.
/// Mutations that do not apply (delete/update of an unknown id, insert of a
/// live id) are skipped and not reported.
struct AppliedMutation {
  uint32_t id = 0;
  bool had_old = false;
  bool has_new = false;
  Box old_box;
  Box new_box;
};

/// Immutable copy-on-write view of a dataset at one version. Mutation
/// batches publish a fresh snapshot; readers that pinned an older snapshot
/// keep a consistent (boxes, ids, stats, version) quadruple for as long as
/// they hold the shared_ptr.
struct DatasetSnapshot {
  /// Dense slot-ordered geometry (deletes swap the last slot down).
  Dataset boxes;
  /// slot -> stable object id. Empty means identity (slot i is object i) —
  /// the fast path for never-mutated datasets, where executors can emit
  /// slot indices unremapped.
  std::vector<uint32_t> ids;
  DatasetStats stats;
  /// Monotonically increasing per-dataset version: 0 at registration, +1
  /// per applied mutation batch. IndexCache keys embed it, so artifacts
  /// built against an older snapshot can never serve a newer one.
  uint64_t version = 0;

  uint32_t id_of(size_t slot) const {
    return ids.empty() ? static_cast<uint32_t>(slot) : ids[slot];
  }
  bool identity_ids() const { return ids.empty(); }
};

using DatasetSnapshotPtr = std::shared_ptr<const DatasetSnapshot>;

/// Registry of named datasets with precomputed stats — the engine's notion
/// of "a dataset the system serves queries against", as opposed to the
/// anonymous spans the algorithm layer joins.
///
/// Registration moves the boxes in; the catalog owns them for its lifetime.
/// Datasets are *mutable*: Insert/Delete/Update (or a batched
/// ApplyMutations) change a registered dataset in place, bump its version,
/// and incrementally maintain its stats, backed by a per-dataset
/// DynamicRTree so extent shrink on delete and epsilon-window probes never
/// rescan geometry. Lookup by name returns the most recently registered
/// dataset of that name.
///
/// Thread safety: the catalog is internally synchronized — registrations,
/// mutations and lookups may race. snapshot() is the mutation-safe read
/// path: it pins an immutable copy-on-write view that stays valid (and
/// consistent) for as long as the caller holds it. The reference-returning
/// accessors (boxes/stats) read the *current* snapshot and are only safe
/// while no mutation of the same dataset can run concurrently; mutating
/// deployments must use snapshot().
class DatasetCatalog {
 public:
  DatasetHandle Register(std::string name, Dataset boxes) EXCLUDES(mutex_);

  /// Registers with stats the caller already computed — the partition API's
  /// entry point: the sharded catalog computes each shard's stats once (to
  /// serialize them for central planning) and must not pay a second
  /// registration scan here. `stats` must describe `boxes` exactly; nothing
  /// is verified.
  DatasetHandle Register(std::string name, Dataset boxes, DatasetStats stats)
      EXCLUDES(mutex_);

  size_t size() const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return entries_.size();
  }
  bool Contains(DatasetHandle handle) const EXCLUDES(mutex_) {
    MutexLock lock(mutex_);
    return handle < entries_.size();
  }

  const std::string& name(DatasetHandle handle) const EXCLUDES(mutex_);

  /// Current geometry/stats by reference. Valid until the next mutation of
  /// this dataset; concurrent mutators must use snapshot() instead.
  const Dataset& boxes(DatasetHandle handle) const EXCLUDES(mutex_);
  const DatasetStats& stats(DatasetHandle handle) const EXCLUDES(mutex_);

  /// Pins the current immutable snapshot — the mutation-safe read path.
  DatasetSnapshotPtr snapshot(DatasetHandle handle) const EXCLUDES(mutex_);

  /// Current version of a dataset (0 until its first mutation batch).
  uint64_t version(DatasetHandle handle) const EXCLUDES(mutex_);

  /// Single-op conveniences; each is a one-mutation batch (version +1).
  /// Insert returns the object's id (kInvalidObjectId if `id` was live);
  /// Delete/Update return false when `id` is unknown.
  uint32_t Insert(DatasetHandle handle, const Box& box,
                  uint32_t id = kInvalidObjectId) EXCLUDES(mutex_);
  bool Delete(DatasetHandle handle, uint32_t id) EXCLUDES(mutex_);
  bool Update(DatasetHandle handle, uint32_t id, const Box& box)
      EXCLUDES(mutex_);

  /// Applies a batch of mutations atomically with respect to readers: one
  /// version bump, one new snapshot. Inapplicable mutations are skipped.
  /// When `applied` is non-null, the per-object old/new geometry of every
  /// applied mutation is appended (in application order) for delta probing.
  /// Returns the dataset's new version.
  uint64_t ApplyMutations(DatasetHandle handle,
                          std::span<const Mutation> mutations,
                          std::vector<AppliedMutation>* applied = nullptr)
      EXCLUDES(mutex_);

  /// Current box of a live object, or nullopt.
  std::optional<Box> FindObject(DatasetHandle handle, uint32_t id) const
      EXCLUDES(mutex_);

  /// Probes the dataset's backing DynamicRTree: `emit(id, box)` for every
  /// live object whose box intersects `query`. This is the delta-probe's
  /// epsilon-window primitive — O(log n + answers), no geometry rescans.
  void QueryObjects(DatasetHandle handle, const Box& query,
                    const std::function<void(uint32_t, const Box&)>& emit)
      const EXCLUDES(mutex_);

  /// Handle of the most recently registered dataset named `name`.
  std::optional<DatasetHandle> Find(const std::string& name) const
      EXCLUDES(mutex_);

 private:
  struct Entry {
    std::string name;  // immutable after registration
    mutable Mutex m;
    /// Published view; replaced wholesale by each mutation batch.
    DatasetSnapshotPtr snapshot GUARDED_BY(m);
    /// Mutable working state, materialized lazily on the first mutation or
    /// tree probe (EnsureDynamicLocked) so purely static datasets pay
    /// nothing beyond the registration scan.
    bool dynamic_ready GUARDED_BY(m) = false;
    DynamicRTree tree GUARDED_BY(m);
    std::vector<Box> cur_boxes GUARDED_BY(m);
    std::vector<uint32_t> cur_ids GUARDED_BY(m);
    std::unordered_map<uint32_t, uint32_t> slot_of GUARDED_BY(m);
    ExactSum sum_x GUARDED_BY(m);
    ExactSum sum_y GUARDED_BY(m);
    ExactSum sum_z GUARDED_BY(m);
    uint64_t version GUARDED_BY(m) = 0;
    uint32_t next_id GUARDED_BY(m) = 0;
    /// True while slot i holds object i for every slot (no remap needed).
    bool identity GUARDED_BY(m) = true;
  };

  Entry* entry(DatasetHandle handle) const EXCLUDES(mutex_);
  static void EnsureDynamicLocked(Entry& e) REQUIRES(e.m);
  static void RebuildStatsLocked(Entry& e, DatasetStats* stats) REQUIRES(e.m);

  mutable Mutex mutex_;
  // unique_ptr keeps entries stable across Register calls.
  std::vector<std::unique_ptr<Entry>> entries_ GUARDED_BY(mutex_);
};

}  // namespace touch

#endif  // TOUCH_ENGINE_CATALOG_H_
