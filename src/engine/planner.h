#ifndef TOUCH_ENGINE_PLANNER_H_
#define TOUCH_ENGINE_PLANNER_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>

#include "core/touch.h"
#include "engine/catalog.h"

namespace touch {

class CalibrationSnapshot;

/// One join the engine is asked to run: two registered datasets and the
/// distance threshold (0 = plain intersection join).
struct JoinRequest {
  DatasetHandle a = 0;
  DatasetHandle b = 0;
  float epsilon = 0.0f;
  /// Engine-enforced deadline (steady clock; default epoch = none). A
  /// submitted request still running past it is stopped at the next phase
  /// boundary or cooperative kernel poll and completes as kCancelled —
  /// even when the caller has abandoned the handle, so a timeout holds
  /// without anyone waiting on the future. The sharded engine forwards the
  /// deadline into every shard-pair request.
  std::chrono::steady_clock::time_point deadline{};
  /// Trace correlation (0 = allocate fresh): a caller that already owns a
  /// trace — the sharded engine scattering shard-pair requests — sets both
  /// so the pair's spans join the parent tree instead of starting their own.
  /// Ignored when the engine has no tracer.
  uint64_t trace_id = 0;
  uint64_t trace_parent_span = 0;
  /// Standing query: instead of one batch result, the request's sink
  /// receives the current pair set as kAdded deltas at submit time and a
  /// kAdded/kRemoved delta stream after every later mutation batch of
  /// either dataset, until RequestHandle::Cancel unsubscribes it. Requires
  /// a sink and two *distinct* datasets. See docs/DYNAMIC.md.
  bool continuous = false;
};

/// An executable, explainable plan for one join request. `algorithm` is a
/// MakeAlgorithm name ("touch", "ps", "pbsm-<res>", ...); `rationale` records
/// every decision the planner took, so a plan can always answer "why this?".
struct JoinPlan {
  std::string algorithm = "touch";
  /// Index-building side for touch / inl: true builds over dataset A. The
  /// executor flips emitted pairs back to (a, b) order when false.
  bool build_on_a = true;
  /// Fully resolved TOUCH configuration (meaningful when algorithm=="touch").
  TouchOptions touch;
  /// Planner's cost-model outputs (0 when planning skipped estimation).
  double expected_results = 0;
  double expected_selectivity = 0;
  /// True when measured-run calibration decided (or confirmed) the
  /// algorithm. `static_algorithm` then records what the static rules would
  /// have chosen and `predicted_seconds` the winning cost prediction, so the
  /// plan report can show the before/after.
  bool calibrated = false;
  std::string static_algorithm;
  double predicted_seconds = 0;
  std::string rationale;

  /// One line of settings plus the rationale, e.g. for the CLI's --algo=auto.
  std::string ToString() const;
};

/// Thresholds of the planner's decision rules. Defaults are calibrated
/// against the paper's measurements (sections 6.3-6.5): sort-based and
/// partition-based joins only pay off once inputs outgrow the quadratic /
/// sort regime, PBSM wins on uniform data, TOUCH on skewed or large data.
/// With engine calibration enabled, measured runs override the soft rules
/// (skew/size crossovers) once enough evidence accumulates; the hard
/// constraints (memory budget, PBSM object ceiling) always hold.
struct PlannerOptions {
  /// max(|A|, |B|) at or below this -> nested loop (no setup cost at all).
  size_t nested_loop_max = 64;
  /// max(|A|, |B|) at or below this -> plane sweep (sort only, no index).
  size_t plane_sweep_max = 2000;
  /// Ceiling on the auxiliary memory a plan may spend, in bytes (0 = no
  /// limit). When the partitioning algorithms' estimated footprint exceeds
  /// it, the planner falls back to the index-light INL (extreme cardinality
  /// asymmetry) or the sort-only plane sweep.
  size_t memory_budget_bytes = 0;
  /// Under a violated memory budget: |larger| / |smaller| at or above this
  /// -> indexed nested loop with the tree on the smaller side (its footprint
  /// is just that small tree; measured ~1000x below TOUCH/PBSM grids).
  double inl_asymmetry = 64.0;
  /// Both datasets' histogram skew at or below this counts as uniform ->
  /// PBSM eligible (space-oriented partitioning is only competitive without
  /// hotspots, paper Figures 8-11). Checked before the INL asymmetry rule.
  double pbsm_skew_max = 3.0;
  /// PBSM is skipped beyond this many total objects (replication memory).
  size_t pbsm_max_objects = 400000;
  /// Target objects per TOUCH leaf; sets the partition count.
  size_t touch_leaf_target = 96;
  /// Joint-grid cells per axis the per-dataset histograms are pair-combined
  /// on at plan time (CombineHistograms; clamped so cells stay larger than
  /// the average object). Planning never rescans raw geometry.
  int estimator_resolution = 32;
};

/// Cost-based planner: stats in, explainable plan out. Stateless apart from
/// its options; safe to share across threads.
///
/// Planning consumes only registration-time DatasetStats (pair-combined
/// histograms, extents, cardinalities) — never the datasets' geometry — so a
/// plan costs O(estimator_resolution^3) regardless of dataset sizes. When a
/// CalibrationSnapshot is supplied (the engine's measured-run feedback), the
/// planner predicts each eligible candidate's cold cost from the fitted
/// models and overrides the static choice once at least two families —
/// including the statically chosen one — have enough measurements; the
/// rationale records the before/after.
class Planner {
 public:
  explicit Planner(const PlannerOptions& options = {}) : options_(options) {}

  /// Chooses algorithm, join order, partition count and grid resolution for
  /// `request`. Both handles must be valid in `catalog`.
  JoinPlan Plan(const DatasetCatalog& catalog, const JoinRequest& request,
                const CalibrationSnapshot* calibration = nullptr) const;

  /// Stats-only core of Plan: planning needs no raw geometry, and this
  /// overload proves it by construction (it cannot reach any boxes). Also
  /// the entry point for stats that arrived without geometry, e.g. from a
  /// remote catalog shard via DeserializeDatasetStats.
  JoinPlan Plan(const DatasetStats& stats_a, const DatasetStats& stats_b,
                float epsilon,
                const CalibrationSnapshot* calibration = nullptr) const;

  /// Shard-pair pruning hook: false when two partitions' stats prove the
  /// epsilon-distance join between them is empty — either side has no
  /// objects, or A's extent inflated by epsilon misses B's extent. The
  /// sharded engine calls this for every shard pair before planning it, so
  /// non-overlapping pairs cost one box test instead of a plan + execution.
  static bool PairMayProduceResults(const DatasetStats& stats_a,
                                    const DatasetStats& stats_b,
                                    float epsilon);

  const PlannerOptions& options() const { return options_; }

 private:
  PlannerOptions options_;
};

}  // namespace touch

#endif  // TOUCH_ENGINE_PLANNER_H_
