#include "engine/shard.h"

#include <algorithm>
#include <cstdint>
#include <utility>

#include "geom/grid.h"

namespace touch {
namespace {

/// Divisor triple (k[0], k[1], k[2]) of `shards` for the x/y/z axes:
/// enumerate every ordered factorization, keep the most cubic one
/// (smallest largest-over-smallest factor ratio), and orient it so the
/// largest factor lands on the longest extent axis — slabs should cut the
/// dimension with the most room, and degenerate axes (zero extent) should
/// keep factor 1 whenever the factorization allows it.
void FactorShards(int shards, const Vec3& extent, int k[3]) {
  k[0] = k[1] = k[2] = 1;
  if (shards <= 1) return;

  int best[3] = {shards, 1, 1};
  double best_score = static_cast<double>(shards);
  for (int a = 1; a <= shards; ++a) {
    if (shards % a != 0) continue;
    const int rest = shards / a;
    for (int b = 1; b <= rest; ++b) {
      if (rest % b != 0) continue;
      const int c = rest / b;
      if (a < b || b < c) continue;  // canonical a >= b >= c
      const double score = static_cast<double>(a) / static_cast<double>(c);
      if (score < best_score) {
        best_score = score;
        best[0] = a;
        best[1] = b;
        best[2] = c;
      }
    }
  }

  // Axes sorted by extent, longest first; ties keep x/y/z order.
  const float ext[3] = {extent.x, extent.y, extent.z};
  int order[3] = {0, 1, 2};
  std::stable_sort(order, order + 3,
                   [&](int x, int y) { return ext[x] > ext[y]; });
  for (int i = 0; i < 3; ++i) k[order[i]] = best[i];
}

/// Cut positions (in cells) splitting `marginal` into `parts` slabs of
/// nearly equal mass: cuts[s] .. cuts[s+1] is slab s, cuts[0] = 0,
/// cuts[parts] = marginal.size(). A massless marginal falls back to
/// spatially even cuts so empty datasets still shard deterministically.
std::vector<int> CutsFromMarginal(const std::vector<uint64_t>& marginal,
                                  int parts) {
  const int res = static_cast<int>(marginal.size());
  std::vector<int> cuts(static_cast<size_t>(parts) + 1, 0);
  cuts[static_cast<size_t>(parts)] = res;
  uint64_t total = 0;
  for (const uint64_t count : marginal) total += count;
  if (total == 0) {
    for (int s = 1; s < parts; ++s) {
      cuts[static_cast<size_t>(s)] = res * s / parts;
    }
    return cuts;
  }
  uint64_t cum = 0;
  int cell = 0;
  for (int s = 1; s < parts; ++s) {
    // Round-to-nearest target keeps the first and last slab symmetric.
    const uint64_t target =
        (total * static_cast<uint64_t>(s) + static_cast<uint64_t>(parts) / 2) /
        static_cast<uint64_t>(parts);
    while (cell < res && cum < target) {
      cum += marginal[static_cast<size_t>(cell)];
      ++cell;
    }
    cuts[static_cast<size_t>(s)] = cell;
  }
  return cuts;
}

/// Slab index of cell coordinate `c` under `cuts` (largest s with
/// cuts[s] <= c; empty slabs [k, k) are skipped by construction).
int SlabOf(const std::vector<int>& cuts, int c) {
  const auto it = std::upper_bound(cuts.begin(), cuts.end(), c);
  const int slab = static_cast<int>(it - cuts.begin()) - 1;
  return std::clamp(slab, 0, static_cast<int>(cuts.size()) - 2);
}

}  // namespace

ShardPartition PartitionIntoShards(const Dataset& boxes,
                                   const DatasetStats& stats, int shards) {
  ShardPartition partition;
  const int total_shards = std::max(1, shards);
  const int res = std::max(1, stats.histogram_resolution);
  int factors[3] = {1, 1, 1};
  FactorShards(total_shards, stats.extent.Extent(), factors);
  const int kx = partition.kx = factors[0];
  const int ky = partition.ky = factors[1];
  const int kz = partition.kz = factors[2];
  partition.shards.resize(static_cast<size_t>(total_shards));

  const auto hist = [&](int x, int y, int z) -> uint64_t {
    if (stats.histogram.empty()) return 0;
    return stats.histogram[(static_cast<size_t>(x) * res + y) * res + z];
  };

  // STR cuts over the histogram: x globally, y per x-slab, z per (x, y)
  // block. Every marginal is a sum of histogram cells — the geometry is
  // never consulted for the partitioning decision.
  std::vector<uint64_t> marginal_x(static_cast<size_t>(res), 0);
  for (int x = 0; x < res; ++x) {
    for (int y = 0; y < res; ++y) {
      for (int z = 0; z < res; ++z) marginal_x[x] += hist(x, y, z);
    }
  }
  const std::vector<int> cuts_x = CutsFromMarginal(marginal_x, kx);

  std::vector<std::vector<int>> cuts_y(static_cast<size_t>(kx));
  std::vector<std::vector<std::vector<int>>> cuts_z(static_cast<size_t>(kx));
  for (int sx = 0; sx < kx; ++sx) {
    std::vector<uint64_t> marginal_y(static_cast<size_t>(res), 0);
    for (int x = cuts_x[sx]; x < cuts_x[sx + 1]; ++x) {
      for (int y = 0; y < res; ++y) {
        for (int z = 0; z < res; ++z) marginal_y[y] += hist(x, y, z);
      }
    }
    cuts_y[sx] = CutsFromMarginal(marginal_y, ky);
    cuts_z[sx].resize(static_cast<size_t>(ky));
    for (int sy = 0; sy < ky; ++sy) {
      std::vector<uint64_t> marginal_z(static_cast<size_t>(res), 0);
      for (int x = cuts_x[sx]; x < cuts_x[sx + 1]; ++x) {
        for (int y = cuts_y[sx][sy]; y < cuts_y[sx][sy + 1]; ++y) {
          for (int z = 0; z < res; ++z) marginal_z[z] += hist(x, y, z);
        }
      }
      cuts_z[sx][sy] = CutsFromMarginal(marginal_z, kz);
    }
  }

  // Record each shard's slab (its partitioning decision).
  for (int sx = 0; sx < kx; ++sx) {
    for (int sy = 0; sy < ky; ++sy) {
      for (int sz = 0; sz < kz; ++sz) {
        DatasetShard& shard =
            partition.shards[(static_cast<size_t>(sx) * ky + sy) * kz + sz];
        shard.cell_lo[0] = cuts_x[sx];
        shard.cell_hi[0] = cuts_x[sx + 1];
        shard.cell_lo[1] = cuts_y[sx][sy];
        shard.cell_hi[1] = cuts_y[sx][sy + 1];
        shard.cell_lo[2] = cuts_z[sx][sy][sz];
        shard.cell_hi[2] = cuts_z[sx][sy][sz + 1];
      }
    }
  }

  // The one geometry pass: assign every box by its center's histogram cell
  // — the exact mapping ComputeDatasetStats used, so the slabs' balance
  // carries over to the assignment.
  partition.shard_of.resize(boxes.size());
  if (boxes.empty()) return partition;
  const GridMapper grid(stats.extent, res);
  for (uint32_t i = 0; i < boxes.size(); ++i) {
    const CellCoord cell = grid.CellOf(boxes[i].Center());
    const int sx = SlabOf(cuts_x, cell.x);
    const int sy = SlabOf(cuts_y[sx], cell.y);
    const int sz = SlabOf(cuts_z[sx][sy], cell.z);
    const uint32_t shard_index =
        (static_cast<uint32_t>(sx) * ky + sy) * kz + sz;
    DatasetShard& shard = partition.shards[shard_index];
    shard.mbr.ExpandToContain(boxes[i]);
    shard.to_global.push_back(i);
    shard.boxes.push_back(boxes[i]);
    partition.shard_of[i] = shard_index;
  }
  return partition;
}

DatasetHandle ShardedCatalog::Add(Entry entry) {
  entries_.push_back(std::make_unique<Entry>(std::move(entry)));
  return static_cast<DatasetHandle>(entries_.size() - 1);
}

std::optional<DatasetHandle> ShardedCatalog::Find(
    const std::string& name) const {
  for (size_t i = entries_.size(); i-- > 0;) {
    if (entries_[i]->name == name) return static_cast<DatasetHandle>(i);
  }
  return std::nullopt;
}

}  // namespace touch
