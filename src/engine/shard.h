#ifndef TOUCH_ENGINE_SHARD_H_
#define TOUCH_ENGINE_SHARD_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "datagen/dataset.h"
#include "engine/catalog.h"
#include "geom/box.h"

namespace touch {

/// Shared immutable id map (global<->local remaps). The sharded mutation
/// path publishes a fresh vector per change (copy-on-write) instead of
/// editing in place, so gathers that pinned a map at scatter time keep a
/// consistent view however many batches land mid-flight.
using IdMapPtr = std::shared_ptr<const std::vector<uint32_t>>;

/// Sentinel in a shard_of map: this global id is not live (deleted, or
/// never assigned).
inline constexpr uint32_t kNoShard = 0xffffffffu;

/// One shard of a spatially partitioned dataset: a cell-aligned slab of the
/// dataset's registration histogram plus the boxes whose *centers* fall
/// into it. Assignment is center-based and therefore disjoint — every box
/// lives in exactly one shard — but a shard's tight MBR can stick out of
/// its slab (boxes straddle slab boundaries), which is why shard-pair
/// pruning tests MBRs, never slabs.
struct DatasetShard {
  /// Slab bounds in histogram-cell coordinates, [lo, hi) per axis. Records
  /// the partitioning decision for explain output and goldens.
  int cell_lo[3] = {0, 0, 0};
  int cell_hi[3] = {0, 0, 0};
  /// Tight MBR of the assigned boxes (Box::Empty() for an empty shard).
  Box mbr = Box::Empty();
  /// Global (pre-partition) index of each shard-local box: shard-local id i
  /// is global id to_global[i].
  std::vector<uint32_t> to_global;
  Dataset boxes;
};

/// Result of PartitionIntoShards: the shards plus the inverse id map.
struct ShardPartition {
  /// Slab counts per axis; kx * ky * kz == shards.size().
  int kx = 1;
  int ky = 1;
  int kz = 1;
  std::vector<DatasetShard> shards;
  /// Global box index -> shard index (the merge layer's owner map).
  std::vector<uint32_t> shard_of;
};

/// Spatially partitions `boxes` into exactly `shards` pieces with STR-style
/// slabs computed over the registration histogram in `stats` — never over
/// the geometry itself. The shard count is factored into per-axis slab
/// counts (kx, ky, kz), largest factor on the longest extent axis; cut
/// planes come from histogram marginals (x cuts globally, y cuts per
/// x-slab, z cuts per (x, y) block), each balancing the object count of its
/// slabs. The only geometry pass is the final O(N) center-to-shard
/// assignment, which reuses the exact cell mapping the histogram was built
/// with. `stats` must be the stats of `boxes` (histogram included);
/// `shards` < 1 is treated as 1. Shards may come out empty when the data
/// cannot be balanced (fewer boxes than shards, mass concentrated in one
/// histogram cell).
ShardPartition PartitionIntoShards(const Dataset& boxes,
                                   const DatasetStats& stats, int shards);

/// The sharded engine's registry: one logical dataset maps to K shard
/// datasets that live in an inner QueryEngine's catalog. This catalog
/// stores planning and merge metadata only — *serialized* per-shard stats
/// (the bytes a remote shard would send over the wire; shard MBRs for
/// pair pruning travel inside them) and the id remaps the gather needs —
/// never geometry. That split mirrors the deployment this subsystem is
/// the architecture for: shard geometry lives with its node, only compact
/// stats travel to the planner.
class ShardedCatalog {
 public:
  struct Shard {
    /// The shard dataset's handle in the inner engine's DatasetCatalog.
    DatasetHandle engine_handle = 0;
    size_t count = 0;
    /// SerializeDatasetStats of the shard's stats; central planning
    /// deserializes these — exactly as it would bytes from a remote node —
    /// and prunes shard pairs on the deserialized extents (the shard MBRs
    /// travel inside the stats, not as separate catalog state). Refreshed
    /// from the inner catalog after every mutation batch, so pruning stays
    /// sound as shards drift.
    std::vector<uint8_t> stats_bytes;
    /// Shard-local object id -> global id (copy-on-write; see IdMapPtr).
    IdMapPtr to_global;
    /// Slab [cell_lo, cell_hi) on the entry's routing grid — the partition
    /// decision, and the center-cell rule mutations are routed by.
    int cell_lo[3] = {0, 0, 0};
    int cell_hi[3] = {0, 0, 0};
    /// The shard's MBR when it was (re)partitioned: the drift baseline for
    /// EngineOptions::shard_repartition_drift.
    Box base_mbr = Box::Empty();
    /// Mutation-path state (materialized lazily on the entry's first
    /// mutation batch; see ShardedQueryEngine::ApplyMutations):
    /// mirror of the inner dataset's next free object id, and the inverse
    /// id map a delete/update needs to find its shard-local target.
    uint32_t next_local = 0;
    std::unordered_map<uint32_t, uint32_t> local_of;
  };

  struct Entry {
    std::string name;
    /// Stats of the whole (unsharded) dataset as registered, for reporting.
    DatasetStats global_stats;
    std::vector<Shard> shards;
    /// Global id -> owning shard, kNoShard for deleted ids (the merge
    /// layer's dedup filter; copy-on-write like the per-shard id maps).
    IdMapPtr shard_of;
    /// The routing grid of the current partition epoch: the exact
    /// (domain, resolution) the assignment pass mapped centers with. A
    /// repartition replaces it along with the slabs.
    Box route_domain = Box::Empty();
    int route_resolution = 1;
    /// Monotonic per-dataset version: +1 per sharded mutation batch.
    uint64_t version = 0;
    /// Next free global id for inserts.
    uint32_t next_global = 0;
    /// True once the mutation-path state (next_local/local_of) has been
    /// materialized.
    bool mutable_ready = false;
  };

  /// Adds a fully built entry (the sharded engine assembles it during
  /// registration) and returns its handle. Entry references stay stable
  /// across later Add calls.
  DatasetHandle Add(Entry entry);

  size_t size() const { return entries_.size(); }
  bool Contains(DatasetHandle handle) const { return handle < entries_.size(); }
  const Entry& entry(DatasetHandle handle) const { return *entries_[handle]; }
  /// Mutable access for the sharded engine's mutation path; callers must
  /// hold the engine's catalog serialization (never exposed to users).
  Entry& mutable_entry(DatasetHandle handle) { return *entries_[handle]; }
  const std::string& name(DatasetHandle handle) const {
    return entries_[handle]->name;
  }

  /// Handle of the most recently added dataset named `name`.
  std::optional<DatasetHandle> Find(const std::string& name) const;

 private:
  // unique_ptr keeps Entry references stable across Add calls (the gather
  // holds shard pointers while requests are in flight).
  std::vector<std::unique_ptr<Entry>> entries_;
};

}  // namespace touch

#endif  // TOUCH_ENGINE_SHARD_H_
