#ifndef TOUCH_ENGINE_INDEX_CACHE_H_
#define TOUCH_ENGINE_INDEX_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "core/touch_tree.h"
#include "datagen/dataset.h"
#include "engine/catalog.h"

namespace touch {

/// Identity of one cached index: the dataset it was built over, the epsilon
/// its boxes were enlarged by before building (0 when the probe side carries
/// the enlargement), and the tree shape. Two queries that agree on all four
/// can share the same built tree.
struct IndexCacheKey {
  DatasetHandle dataset = 0;
  float epsilon = 0.0f;
  size_t leaf_capacity = 0;
  size_t fanout = 0;

  bool operator<(const IndexCacheKey& other) const {
    return std::tie(dataset, epsilon, leaf_capacity, fanout) <
           std::tie(other.dataset, other.epsilon, other.leaf_capacity,
                    other.fanout);
  }
};

/// A built TOUCH tree plus the exact boxes it was built over. `boxes` is the
/// enlarged copy when the key's epsilon is nonzero; it stays empty when the
/// tree was built directly over the catalog's boxes (the caller then passes
/// the catalog span to JoinWithPrebuiltTree instead).
struct CachedIndex {
  Dataset boxes;
  TouchTree tree;
  /// Wall-clock seconds the build cost (reported as build_seconds by the
  /// query that missed; cache hits report 0, the productized form of the
  /// paper's section-4.3 prebuilt-index shortcut).
  double build_seconds = 0;
};

/// Thread-safe cache of built indexes, shared by all queries of an engine.
/// Concurrent requests for the same key build once: the first miss installs
/// a future the others block on. No eviction yet (ROADMAP open item) —
/// Clear() drops everything.
class IndexCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    size_t entries = 0;
    /// Tree + box storage of all entries.
    size_t bytes = 0;
  };

  using EntryPtr = std::shared_ptr<const CachedIndex>;
  using Builder = std::function<EntryPtr()>;

  /// Returns the index for `key`, invoking `build` on a miss. `build` runs
  /// outside the cache lock, so independent keys build concurrently.
  EntryPtr GetOrBuild(const IndexCacheKey& key, const Builder& build);

  Stats stats() const;
  void Clear();

 private:
  mutable std::mutex mutex_;
  std::map<IndexCacheKey, std::shared_future<EntryPtr>> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  size_t bytes_ = 0;
};

}  // namespace touch

#endif  // TOUCH_ENGINE_INDEX_CACHE_H_
