#ifndef TOUCH_ENGINE_INDEX_CACHE_H_
#define TOUCH_ENGINE_INDEX_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <tuple>

#include "engine/catalog.h"
#include "util/thread_annotations.h"

namespace touch {

class MetricsRegistry;

/// What kind of build artifact a cache entry holds. Distinct kinds never
/// share entries even when every other key field agrees: a TOUCH tree and an
/// INL R-tree over the same dataset are different structures.
enum class ArtifactKind : uint8_t {
  /// A TouchTree (the paper's data-oriented partitioning hierarchy).
  kTouchTree = 0,
  /// A bulk-loaded STR R-tree for the indexed-nested-loop join.
  kInlRTree = 1,
  /// A PBSM cell directory: one dataset's sorted cell-placement list.
  kPbsmDirectory = 2,
};

/// Short stable name ("touch", "inl", "pbsm") for logs and telemetry.
const char* ArtifactKindName(ArtifactKind kind);

/// Identity of one cached artifact: the dataset it was built over *and that
/// dataset's version at build time*, the epsilon its boxes were enlarged by
/// before building (0 when the probe side carries the enlargement), the
/// artifact kind, and two kind-specific shape parameters:
///   kTouchTree / kInlRTree: (leaf capacity, fanout)
///   kPbsmDirectory:         (grid resolution, domain signature — a hash of
///                            the joint grid domain, so directories built for
///                            different partner datasets never alias)
/// Two queries that agree on every field can share the same built artifact.
/// The version field is what makes mutation safe: a post-mutation query
/// carries the bumped version, misses every stale artifact, and the stale
/// entries are reclaimed by InvalidateDataset (counted as evictions).
struct IndexCacheKey {
  DatasetHandle dataset = 0;
  /// DatasetSnapshot::version the artifact was built against.
  uint64_t version = 0;
  float epsilon = 0.0f;
  size_t shape_a = 0;
  size_t shape_b = 0;
  ArtifactKind kind = ArtifactKind::kTouchTree;

  bool operator<(const IndexCacheKey& other) const {
    return std::tie(dataset, version, epsilon, shape_a, shape_b, kind) <
           std::tie(other.dataset, other.version, other.epsilon,
                    other.shape_a, other.shape_b, other.kind);
  }
  bool operator==(const IndexCacheKey& other) const {
    return !(*this < other) && !(other < *this);
  }
};

/// Base class of everything the cache can hold. Concrete artifacts (the
/// engine's CachedTouchIndex, CachedInlIndex, CachedPbsmDirectory) are
/// defined next to their executor; the cache only needs a size and a
/// virtual destructor. Artifacts are immutable once built and shared across
/// threads, so implementations must be safe for concurrent const access.
struct CachedArtifact {
  virtual ~CachedArtifact() = default;

  /// Exact bytes the artifact occupies (structures plus any owned box
  /// copies). Drives the byte accounting and the eviction weight's
  /// denominator; must not change after the builder returns.
  virtual size_t MemoryUsageBytes() const = 0;

  /// Wall-clock seconds the build cost (reported as build_seconds by the
  /// query that missed; cache hits report 0, the productized form of the
  /// paper's section-4.3 prebuilt-index shortcut). Also the eviction
  /// weight's numerator and the unit of Stats::cost_saved_seconds.
  double build_seconds = 0;
};

/// Retention policy of an IndexCache. The defaults reproduce the original
/// admit-everything behavior; serving deployments with artifact churn turn
/// `admission` on (EngineOptions::cache_admission).
struct IndexCacheOptions {
  /// Byte cap on resident completed artifacts (0 = unbounded).
  size_t max_bytes = 0;
  /// Ghost-list admission: a key's *first* build is served to its query but
  /// not retained — only the second build request for the same key admits
  /// the artifact. One-off queries (ad-hoc epsilon, never-repeated dataset
  /// pairs) then cannot evict artifacts a steady workload keeps re-hitting.
  bool admission = false;
  /// Keys the ghost list remembers (the "seen once" set, FIFO-evicted).
  /// A key must be re-requested while still remembered to be admitted.
  size_t ghost_capacity = 1024;
  /// Pre-admission (only meaningful with `admission` on): a first-sighting
  /// build whose *predicted* build cost — supplied by the caller via
  /// GetOrBuild's expected_build_seconds, in the engine's case the fitted
  /// calibration estimate — is at least this many seconds skips the
  /// one-miss ghost probation and is retained immediately. Artifacts that
  /// are catastrophic to rebuild must not pay a probation rebuild just to
  /// prove they repeat. 0 disables pre-admission.
  double preadmit_build_seconds = 0.25;
};

/// Thread-safe cache of built index artifacts, shared by all queries of an
/// engine. Concurrent requests for the same key build once: the first miss
/// installs a future the others block on.
///
/// Capacity: with `max_bytes > 0` the cache evicts *completed* entries once
/// the total exceeds the cap (entries still being built are never evicted).
/// The victim is the entry with the lowest build-cost density —
/// `build_seconds / MemoryUsageBytes()`, i.e. the artifact that is cheapest
/// to rebuild per byte it occupies — with ties broken least-recently-used
/// first, so equal-cost artifacts degrade to plain byte-LRU. An artifact
/// larger than the whole cap is evicted immediately after being returned:
/// it serves its one query but is not retained. Eviction only drops the
/// cache's reference — queries holding the shared_ptr keep using the
/// artifact safely.
///
/// Admission: see IndexCacheOptions. A rejected build still gets
/// single-flight treatment (concurrent requests for the key share the one
/// build) and still serves every waiter; it is simply not retained
/// afterwards, and the key is remembered in the ghost list so the next
/// request for it is admitted.
class IndexCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Entries dropped by the capacity policy (Clear() is not counted).
    uint64_t evictions = 0;
    /// Builds that completed but were not retained because their key had
    /// not been seen before (admission policy; 0 with admission off).
    uint64_t admission_rejects = 0;
    /// First-sighting builds admitted anyway because their predicted build
    /// cost cleared preadmit_build_seconds (0 with admission off or
    /// pre-admission disabled).
    uint64_t admission_preadmits = 0;
    size_t entries = 0;
    /// Bytes of all completed entries currently resident.
    size_t bytes = 0;
    /// The configured cap (0 = unbounded).
    size_t capacity_bytes = 0;
    /// Accumulated build_seconds of every hit: the wall-clock rebuild work
    /// the cache saved its queries so far.
    double cost_saved_seconds = 0;

    /// Hits over lookups, 0 when nothing was looked up yet.
    double HitRate() const {
      const uint64_t lookups = hits + misses;
      return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
    }
  };

  using ArtifactPtr = std::shared_ptr<const CachedArtifact>;
  using Builder = std::function<ArtifactPtr()>;
  /// Supplies the caller's prediction of what a build for the key will
  /// cost, in seconds (the engine's fitted calibration estimate). Invoked
  /// lazily — only on a miss, with admission and pre-admission enabled —
  /// so hits and admission-off configurations never pay for a prediction.
  /// Called with the cache lock held: implementations may take their own
  /// leaf locks (the feedback store's) but must not call back into the
  /// cache.
  using BuildCostFn = std::function<double()>;

  /// `max_bytes` caps resident artifact bytes (0 = unbounded); admission
  /// stays off — the historical constructor.
  explicit IndexCache(size_t max_bytes = 0)
      : IndexCache(IndexCacheOptions{max_bytes, false, 1024}) {}

  explicit IndexCache(const IndexCacheOptions& options) : options_(options) {}

  /// Returns the artifact for `key`, invoking `build` on a miss. `build`
  /// runs outside the cache lock, so independent keys build concurrently.
  /// The caller contract is that one key always maps to one artifact type;
  /// callers downcast with static_pointer_cast keyed on `key.kind`.
  /// `expected_build_seconds` (optional) predicts what `build` will cost;
  /// under the admission policy a prediction at or above
  /// preadmit_build_seconds admits a first-sighting key immediately
  /// (absent or 0 = unknown, normal probation applies). See BuildCostFn
  /// for when it is invoked.
  ArtifactPtr GetOrBuild(const IndexCacheKey& key, const Builder& build,
                         const BuildCostFn& expected_build_seconds = {})
      EXCLUDES(mutex_);

  Stats stats() const EXCLUDES(mutex_);

  /// Re-exposes the Stats snapshot through a metrics registry as sampled
  /// providers named `<prefix>hits_total`, `<prefix>misses_total`,
  /// `<prefix>evictions_total`, `<prefix>admission_rejects_total`,
  /// `<prefix>admission_preadmits_total`, `<prefix>entries`,
  /// `<prefix>bytes`, `<prefix>cost_saved_seconds_total`. Providers sample
  /// at export time, so the scrape always sees current values. The caller
  /// owning both objects must RemoveProvidersWithPrefix(prefix) before this
  /// cache is destroyed (the engine does this in its destructor).
  void RegisterMetricProviders(MetricsRegistry& registry,
                               const std::string& prefix) const;

  /// Drops every *completed* artifact of `dataset` whose key version is
  /// below `current_version` — the post-mutation invalidation hook. Stale
  /// in-flight builds are left to finish (their waiters still need them)
  /// and are reclaimed by a later invalidation or capacity eviction. Each
  /// dropped entry counts as an eviction in stats()/telemetry. Ghost-list
  /// memory of stale versions is dropped too, so a stale key's "second
  /// sighting" can never admit a rebuilt artifact.
  void InvalidateDataset(DatasetHandle dataset, uint64_t current_version)
      EXCLUDES(mutex_);

  /// Drops every entry and the ghost list's memory of rejected keys.
  void Clear() EXCLUDES(mutex_);

  size_t max_bytes() const { return options_.max_bytes; }
  const IndexCacheOptions& options() const { return options_; }

 private:
  struct Entry {
    std::shared_future<ArtifactPtr> future;
    /// MemoryUsageBytes() of the finished artifact; 0 while building.
    size_t bytes = 0;
    /// Eviction weight: build_seconds / bytes of the finished artifact.
    double cost_density = 0;
    /// False while the builder is still running; such entries are skipped
    /// by eviction and by the completion bookkeeping of stale builders.
    bool ready = false;
    /// False when the admission policy decided not to retain this build:
    /// the entry exists only for single-flight and is erased on completion.
    bool admitted = true;
    /// Guards against a builder finishing after Clear() re-created its key:
    /// completion bookkeeping only applies when the ticket still matches.
    uint64_t ticket = 0;
    std::list<IndexCacheKey>::iterator lru_pos;
  };

  /// Admission decision for a miss on `key`. True admits (key was in the
  /// ghost list, the predicted build cost clears the pre-admission
  /// threshold, or admission is off); false rejects and remembers the key.
  /// Lock held.
  bool AdmitMissLocked(const IndexCacheKey& key,
                       const BuildCostFn& expected_build_seconds)
      REQUIRES(mutex_);

  /// Drops lowest-cost-density completed entries until bytes_ <= max_bytes.
  /// Lock held.
  void EvictOverCapLocked() REQUIRES(mutex_);

  const IndexCacheOptions options_;
  mutable Mutex mutex_;
  std::map<IndexCacheKey, Entry> entries_ GUARDED_BY(mutex_);
  /// Front = most recently used. Every map entry owns one list node.
  std::list<IndexCacheKey> lru_ GUARDED_BY(mutex_);
  /// Ghost list: keys whose first build was rejected. Front = newest;
  /// ghost_index_ maps a key to its list node for O(log n) membership.
  std::list<IndexCacheKey> ghost_ GUARDED_BY(mutex_);
  std::map<IndexCacheKey, std::list<IndexCacheKey>::iterator> ghost_index_
      GUARDED_BY(mutex_);
  uint64_t next_ticket_ GUARDED_BY(mutex_) = 0;
  uint64_t hits_ GUARDED_BY(mutex_) = 0;
  uint64_t misses_ GUARDED_BY(mutex_) = 0;
  uint64_t evictions_ GUARDED_BY(mutex_) = 0;
  uint64_t admission_rejects_ GUARDED_BY(mutex_) = 0;
  uint64_t admission_preadmits_ GUARDED_BY(mutex_) = 0;
  double cost_saved_seconds_ GUARDED_BY(mutex_) = 0;
  size_t bytes_ GUARDED_BY(mutex_) = 0;
};

}  // namespace touch

#endif  // TOUCH_ENGINE_INDEX_CACHE_H_
