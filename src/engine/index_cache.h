#ifndef TOUCH_ENGINE_INDEX_CACHE_H_
#define TOUCH_ENGINE_INDEX_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>

#include "engine/catalog.h"

namespace touch {

/// What kind of build artifact a cache entry holds. Distinct kinds never
/// share entries even when every other key field agrees: a TOUCH tree and an
/// INL R-tree over the same dataset are different structures.
enum class ArtifactKind : uint8_t {
  /// A TouchTree (the paper's data-oriented partitioning hierarchy).
  kTouchTree = 0,
  /// A bulk-loaded STR R-tree for the indexed-nested-loop join.
  kInlRTree = 1,
  /// A PBSM cell directory: one dataset's sorted cell-placement list.
  kPbsmDirectory = 2,
};

/// Short stable name ("touch", "inl", "pbsm") for logs and telemetry.
const char* ArtifactKindName(ArtifactKind kind);

/// Identity of one cached artifact: the dataset it was built over, the
/// epsilon its boxes were enlarged by before building (0 when the probe side
/// carries the enlargement), the artifact kind, and two kind-specific shape
/// parameters:
///   kTouchTree / kInlRTree: (leaf capacity, fanout)
///   kPbsmDirectory:         (grid resolution, domain signature — a hash of
///                            the joint grid domain, so directories built for
///                            different partner datasets never alias)
/// Two queries that agree on every field can share the same built artifact.
struct IndexCacheKey {
  DatasetHandle dataset = 0;
  float epsilon = 0.0f;
  size_t shape_a = 0;
  size_t shape_b = 0;
  ArtifactKind kind = ArtifactKind::kTouchTree;

  bool operator<(const IndexCacheKey& other) const {
    return std::tie(dataset, epsilon, shape_a, shape_b, kind) <
           std::tie(other.dataset, other.epsilon, other.shape_a, other.shape_b,
                    other.kind);
  }
  bool operator==(const IndexCacheKey& other) const {
    return !(*this < other) && !(other < *this);
  }
};

/// Base class of everything the cache can hold. Concrete artifacts (the
/// engine's CachedTouchIndex, CachedInlIndex, CachedPbsmDirectory) are
/// defined next to their executor; the cache only needs a size and a
/// virtual destructor. Artifacts are immutable once built and shared across
/// threads, so implementations must be safe for concurrent const access.
struct CachedArtifact {
  virtual ~CachedArtifact() = default;

  /// Exact bytes the artifact occupies (structures plus any owned box
  /// copies). Drives the LRU byte accounting; must not change after the
  /// builder returns.
  virtual size_t MemoryUsageBytes() const = 0;

  /// Wall-clock seconds the build cost (reported as build_seconds by the
  /// query that missed; cache hits report 0, the productized form of the
  /// paper's section-4.3 prebuilt-index shortcut).
  double build_seconds = 0;
};

/// Thread-safe cache of built index artifacts, shared by all queries of an
/// engine. Concurrent requests for the same key build once: the first miss
/// installs a future the others block on.
///
/// Capacity: with `max_bytes > 0` the cache evicts least-recently-used
/// *completed* entries once the total exceeds the cap (entries still being
/// built are never evicted; an artifact larger than the whole cap is evicted
/// immediately after being returned, so it serves its one query but is not
/// retained). Eviction only drops the cache's reference — queries holding
/// the shared_ptr keep using the artifact safely.
class IndexCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    /// Entries dropped by the LRU capacity policy (Clear() is not counted).
    uint64_t evictions = 0;
    size_t entries = 0;
    /// Bytes of all completed entries currently resident.
    size_t bytes = 0;
    /// The configured cap (0 = unbounded).
    size_t capacity_bytes = 0;

    /// Hits over lookups, 0 when nothing was looked up yet.
    double HitRate() const {
      const uint64_t lookups = hits + misses;
      return lookups == 0 ? 0.0 : static_cast<double>(hits) / lookups;
    }
  };

  using ArtifactPtr = std::shared_ptr<const CachedArtifact>;
  using Builder = std::function<ArtifactPtr()>;

  /// `max_bytes` caps resident artifact bytes (0 = unbounded).
  explicit IndexCache(size_t max_bytes = 0) : max_bytes_(max_bytes) {}

  /// Returns the artifact for `key`, invoking `build` on a miss. `build`
  /// runs outside the cache lock, so independent keys build concurrently.
  /// The caller contract is that one key always maps to one artifact type;
  /// callers downcast with static_pointer_cast keyed on `key.kind`.
  ArtifactPtr GetOrBuild(const IndexCacheKey& key, const Builder& build);

  Stats stats() const;
  void Clear();

  size_t max_bytes() const { return max_bytes_; }

 private:
  struct Entry {
    std::shared_future<ArtifactPtr> future;
    /// MemoryUsageBytes() of the finished artifact; 0 while building.
    size_t bytes = 0;
    /// False while the builder is still running; such entries are skipped
    /// by eviction and by the completion bookkeeping of stale builders.
    bool ready = false;
    /// Guards against a builder finishing after Clear() re-created its key:
    /// completion bookkeeping only applies when the ticket still matches.
    uint64_t ticket = 0;
    std::list<IndexCacheKey>::iterator lru_pos;
  };

  /// Drops LRU completed entries until bytes_ <= max_bytes_. Lock held.
  void EvictOverCapLocked();

  const size_t max_bytes_;
  mutable std::mutex mutex_;
  std::map<IndexCacheKey, Entry> entries_;
  /// Front = most recently used. Every map entry owns one list node.
  std::list<IndexCacheKey> lru_;
  uint64_t next_ticket_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
  size_t bytes_ = 0;
};

}  // namespace touch

#endif  // TOUCH_ENGINE_INDEX_CACHE_H_
