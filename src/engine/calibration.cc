#include "engine/calibration.h"

#include <algorithm>
#include <cmath>

namespace touch {

std::string AlgorithmFamily(const std::string& algorithm) {
  const size_t dash = algorithm.find('-');
  return dash == std::string::npos ? algorithm : algorithm.substr(0, dash);
}

std::optional<double> CalibrationSnapshot::Predict(const std::string& family,
                                                   double objects,
                                                   double results) const {
  const CostModel* model = Find(family);
  if (model == nullptr || model->samples < min_samples_) return std::nullopt;
  return model->Predict(objects, results);
}

std::optional<double> CalibrationSnapshot::PredictBuildSeconds(
    const std::string& family, double objects) const {
  const CostModel* model = Find(family);
  if (model == nullptr || model->samples < min_samples_) return std::nullopt;
  return model->PredictBuild(objects);
}

const CostModel* CalibrationSnapshot::Find(const std::string& family) const {
  const auto it = models_.find(family);
  return it == models_.end() ? nullptr : &it->second;
}

size_t CalibrationSnapshot::calibrated_families() const {
  size_t count = 0;
  for (const auto& [family, model] : models_) {
    if (model.samples >= min_samples_) ++count;
  }
  return count;
}

size_t CalibrationSnapshot::total_samples() const {
  size_t count = 0;
  for (const auto& [family, model] : models_) count += model.samples;
  return count;
}

CostModel FitCostModel(size_t samples, double objects_sq,
                       double objects_results, double results_sq,
                       double objects_time, double results_time) {
  CostModel model;
  model.samples = samples;
  if (samples == 0) return model;

  // Single-coefficient fallback: all time attributed to per-object work.
  const auto per_object_only = [&]() {
    model.seconds_per_object =
        objects_sq > 0 ? std::max(0.0, objects_time / objects_sq) : 0.0;
    model.seconds_per_result = 0;
  };

  // Ridge term keeps the 2x2 normal equations solvable when every recorded
  // run has (near-)proportional objects and results (one workload repeated),
  // at a size that cannot perturb a well-conditioned fit.
  const double ridge = 1e-9 * (objects_sq + results_sq) + 1e-18;
  const double a11 = objects_sq + ridge;
  const double a22 = results_sq + ridge;
  const double det = a11 * a22 - objects_results * objects_results;
  if (det <= 0 || !std::isfinite(det)) {
    per_object_only();
    return model;
  }
  const double per_object =
      (objects_time * a22 - results_time * objects_results) / det;
  const double per_result =
      (results_time * a11 - objects_time * objects_results) / det;
  if (per_object < 0 || per_result < 0 || !std::isfinite(per_object) ||
      !std::isfinite(per_result)) {
    // A negative coefficient means the two regressors fight over the same
    // variance; the constrained optimum lies on a coordinate axis.
    if (per_result < 0 || results_sq <= 0) {
      per_object_only();
    } else {
      model.seconds_per_object = 0;
      model.seconds_per_result = std::max(0.0, results_time / results_sq);
    }
    return model;
  }
  model.seconds_per_object = per_object;
  model.seconds_per_result = per_result;
  return model;
}

void PlanFeedback::Record(const PlanOutcome& outcome) {
  const MutexLock lock(mutex_);
  FamilySums& sums = sums_[outcome.family];
  const double objects = static_cast<double>(outcome.objects);
  const double results = outcome.estimated_results;  // see PlanOutcome
  const double seconds = outcome.total_seconds;
  ++sums.n;
  sums.objects_sq += objects * objects;
  sums.objects_results += objects * results;
  sums.results_sq += results * results;
  sums.objects_time += objects * seconds;
  sums.results_time += results * seconds;
  sums.objects_build += objects * outcome.build_seconds;
  ++recorded_;
  log_.push_back(outcome);
  while (max_outcomes_ > 0 && log_.size() > max_outcomes_) log_.pop_front();
}

CalibrationSnapshot PlanFeedback::Snapshot(size_t min_samples) const {
  std::map<std::string, CostModel> models;
  {
    const MutexLock lock(mutex_);
    for (const auto& [family, sums] : sums_) {
      CostModel model =
          FitCostModel(sums.n, sums.objects_sq, sums.objects_results,
                       sums.results_sq, sums.objects_time, sums.results_time);
      // Build phase alone: single-coefficient least squares through the
      // origin (build work scales with the indexed objects, not results).
      model.build_seconds_per_object =
          sums.objects_sq > 0
              ? std::max(0.0, sums.objects_build / sums.objects_sq)
              : 0.0;
      models[family] = model;
    }
  }
  return CalibrationSnapshot(std::move(models), min_samples);
}

std::vector<PlanOutcome> PlanFeedback::RecentOutcomes() const {
  const MutexLock lock(mutex_);
  return std::vector<PlanOutcome>(log_.begin(), log_.end());
}

uint64_t PlanFeedback::total_recorded() const {
  const MutexLock lock(mutex_);
  return recorded_;
}

void PlanFeedback::Clear() {
  const MutexLock lock(mutex_);
  sums_.clear();
  log_.clear();
  recorded_ = 0;
}

}  // namespace touch
