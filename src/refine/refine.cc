#include "refine/refine.h"

#include "join/algorithm.h"

namespace touch {
namespace {

/// MBRs of a span of geometries with an Mbr() member.
template <typename Geometry>
std::vector<Box> Mbrs(std::span<const Geometry> geometries) {
  std::vector<Box> boxes;
  boxes.reserve(geometries.size());
  for (const Geometry& g : geometries) boxes.push_back(g.Mbr());
  return boxes;
}

}  // namespace

RefineStats CylinderDistanceJoin(SpatialJoinAlgorithm& algorithm,
                                 std::span<const Cylinder> a,
                                 std::span<const Cylinder> b, double epsilon,
                                 ResultCollector& out,
                                 JoinStats* filter_stats) {
  const std::vector<Box> boxes_a = Mbrs(a);
  const std::vector<Box> boxes_b = Mbrs(b);
  RefiningCollector refine(
      [&](uint32_t a_id, uint32_t b_id) {
        return CylindersWithinDistance(a[a_id], b[b_id], epsilon);
      },
      out);
  const JoinStats stats = DistanceJoin(algorithm, boxes_a, boxes_b,
                                       static_cast<float>(epsilon), refine);
  if (filter_stats != nullptr) *filter_stats = stats;
  return refine.stats();
}

RefineStats SphereDistanceJoin(SpatialJoinAlgorithm& algorithm,
                               std::span<const Sphere> a,
                               std::span<const Sphere> b, double epsilon,
                               ResultCollector& out, JoinStats* filter_stats) {
  const std::vector<Box> boxes_a = Mbrs(a);
  const std::vector<Box> boxes_b = Mbrs(b);
  RefiningCollector refine(
      [&](uint32_t a_id, uint32_t b_id) {
        return SpheresWithinDistance(a[a_id], b[b_id], epsilon);
      },
      out);
  const JoinStats stats = DistanceJoin(algorithm, boxes_a, boxes_b,
                                       static_cast<float>(epsilon), refine);
  if (filter_stats != nullptr) *filter_stats = stats;
  return refine.stats();
}

}  // namespace touch
