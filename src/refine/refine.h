#ifndef TOUCH_REFINE_REFINE_H_
#define TOUCH_REFINE_REFINE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/cylinder.h"
#include "geom/sphere.h"
#include "join/algorithm.h"
#include "util/timer.h"

namespace touch {

/// Metrics of the refinement phase of a filter-and-refine join.
struct RefineStats {
  /// Candidate pairs delivered by the filter (MBR) phase.
  uint64_t candidates = 0;
  /// Candidates confirmed by the exact-geometry predicate.
  uint64_t confirmed = 0;
  /// Wall-clock seconds spent inside the exact predicate.
  double refine_seconds = 0;

  /// Fraction of candidates that were real results (1.0 = the filter was
  /// exact). Low precision means the MBR approximation is loose for this
  /// geometry, not that the filter is wrong.
  double Precision() const {
    return candidates == 0
               ? 1.0
               : static_cast<double>(confirmed) /
                     static_cast<double>(candidates);
  }
};

/// ResultCollector adapter that applies an exact-geometry predicate to every
/// candidate pair the filter phase emits and forwards only confirmed pairs.
///
/// This is the paper's "combine with any off-the-shelf solution to the
/// second refinement phase" (section 4) made concrete: wrap the user's sink,
/// hand the wrapper to any `SpatialJoinAlgorithm`, and the refinement
/// streams — candidate pairs are never materialized.
///
///   RefiningCollector refine(
///       [&](uint32_t i, uint32_t j) {
///         return CylindersWithinDistance(axons[i], dendrites[j], eps);
///       },
///       user_sink);
///   DistanceJoin(touch, axon_mbrs, dendrite_mbrs, eps, refine);
template <typename Predicate>
class RefiningCollector : public ResultCollector {
 public:
  RefiningCollector(Predicate predicate, ResultCollector& inner)
      : predicate_(std::move(predicate)), inner_(inner) {}

  void Emit(uint32_t a_id, uint32_t b_id) override {
    ++stats_.candidates;
    Timer timer;
    const bool confirmed = predicate_(a_id, b_id);
    stats_.refine_seconds += timer.Seconds();
    if (confirmed) {
      ++stats_.confirmed;
      inner_.Emit(a_id, b_id);
    }
  }

  const RefineStats& stats() const { return stats_; }

 private:
  Predicate predicate_;
  ResultCollector& inner_;
  RefineStats stats_;
};

template <typename Predicate>
RefiningCollector(Predicate, ResultCollector&) -> RefiningCollector<Predicate>;

/// Complete filter-and-refine distance join over cylinder datasets — the
/// paper's neuroscience touch-detection task end to end: MBR approximation,
/// spatial join with `algorithm`, exact cylinder-distance refinement.
/// `filter_stats` (optional) receives the filter phase's JoinStats.
RefineStats CylinderDistanceJoin(SpatialJoinAlgorithm& algorithm,
                                 std::span<const Cylinder> a,
                                 std::span<const Cylinder> b, double epsilon,
                                 ResultCollector& out,
                                 JoinStats* filter_stats = nullptr);

/// Same pipeline over sphere datasets.
RefineStats SphereDistanceJoin(SpatialJoinAlgorithm& algorithm,
                               std::span<const Sphere> a,
                               std::span<const Sphere> b, double epsilon,
                               ResultCollector& out,
                               JoinStats* filter_stats = nullptr);

}  // namespace touch

#endif  // TOUCH_REFINE_REFINE_H_
