#ifndef TOUCH_DATAGEN_DISTRIBUTIONS_H_
#define TOUCH_DATAGEN_DISTRIBUTIONS_H_

#include <cstdint>
#include <string>

#include "datagen/dataset.h"

namespace touch {

/// The three synthetic object distributions of the paper's evaluation
/// (section 6.2, Figure 7).
enum class Distribution {
  kUniform,
  kGaussian,
  kClustered,
};

/// Parameters of the synthetic generators. Defaults reproduce the paper:
/// boxes with sides of uniform random length in (0, max_side) distributed in
/// a cube of `space` units; Gaussian centers ~ N(space/2, space/4); clustered
/// data drawn around up to `clusters` uniform hotspots with N(0, cluster_sigma)
/// offsets.
struct SyntheticOptions {
  float space = 1000.0f;
  float max_side = 1.0f;
  int clusters = 100;
  float cluster_sigma = 220.0f;

  /// Gaussian distribution parameters (paper: mu = 500, sigma = 250).
  float gaussian_mean = 500.0f;
  float gaussian_sigma = 250.0f;
};

/// Generates `count` boxes with the given distribution; deterministic in
/// `seed`. Centers are clamped into [0, space]^3 so every object lies inside
/// the workload cube, as in the paper's constant 1000-unit space.
Dataset GenerateSynthetic(Distribution distribution, size_t count,
                          uint64_t seed, const SyntheticOptions& options = {});

/// Parses "uniform" | "gaussian" | "clustered" (case-sensitive). Returns
/// false on unknown names.
bool ParseDistribution(const std::string& name, Distribution* out);

/// Display name of a distribution.
const char* DistributionName(Distribution distribution);

}  // namespace touch

#endif  // TOUCH_DATAGEN_DISTRIBUTIONS_H_
