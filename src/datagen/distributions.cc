#include "datagen/distributions.h"

#include <algorithm>

#include "util/rng.h"

namespace touch {
namespace {

// Box of uniform random side lengths in (0, max_side) centered at `center`.
Box MakeBoxAt(const Vec3& center, float max_side, Rng& rng) {
  const Vec3 half(0.5f * max_side * rng.NextFloat(),
                  0.5f * max_side * rng.NextFloat(),
                  0.5f * max_side * rng.NextFloat());
  return Box(center - half, center + half);
}

float ClampToSpace(double v, float space) {
  return std::clamp(static_cast<float>(v), 0.0f, space);
}

}  // namespace

Dataset GenerateSynthetic(Distribution distribution, size_t count,
                          uint64_t seed, const SyntheticOptions& options) {
  Rng rng(seed);
  Dataset boxes;
  boxes.reserve(count);

  // Clustered data shares one hotspot set per dataset, drawn before objects
  // so that the hotspot layout is independent of `count` — this lets the
  // density sweeps grow a dataset without moving its clusters. The paper
  // says "up to 100 locations"; we use exactly `clusters` so that the
  // workload's density (and hence selectivity) is reproducible rather than a
  // lottery over the hotspot count.
  std::vector<Vec3> hotspots;
  if (distribution == Distribution::kClustered) {
    const int num_hotspots = std::max(1, options.clusters);
    hotspots.reserve(num_hotspots);
    for (int i = 0; i < num_hotspots; ++i) {
      hotspots.push_back(
          Vec3(static_cast<float>(rng.Uniform(0, options.space)),
               static_cast<float>(rng.Uniform(0, options.space)),
               static_cast<float>(rng.Uniform(0, options.space))));
    }
  }

  for (size_t i = 0; i < count; ++i) {
    Vec3 center;
    switch (distribution) {
      case Distribution::kUniform:
        center = Vec3(static_cast<float>(rng.Uniform(0, options.space)),
                      static_cast<float>(rng.Uniform(0, options.space)),
                      static_cast<float>(rng.Uniform(0, options.space)));
        break;
      case Distribution::kGaussian:
        center = Vec3(
            ClampToSpace(rng.Normal(options.gaussian_mean, options.gaussian_sigma),
                         options.space),
            ClampToSpace(rng.Normal(options.gaussian_mean, options.gaussian_sigma),
                         options.space),
            ClampToSpace(rng.Normal(options.gaussian_mean, options.gaussian_sigma),
                         options.space));
        break;
      case Distribution::kClustered: {
        const Vec3& hotspot = hotspots[rng.UniformInt(hotspots.size())];
        center = Vec3(
            ClampToSpace(hotspot.x + rng.Normal(0, options.cluster_sigma),
                         options.space),
            ClampToSpace(hotspot.y + rng.Normal(0, options.cluster_sigma),
                         options.space),
            ClampToSpace(hotspot.z + rng.Normal(0, options.cluster_sigma),
                         options.space));
        break;
      }
    }
    boxes.push_back(MakeBoxAt(center, options.max_side, rng));
  }
  return boxes;
}

bool ParseDistribution(const std::string& name, Distribution* out) {
  if (name == "uniform") {
    *out = Distribution::kUniform;
  } else if (name == "gaussian") {
    *out = Distribution::kGaussian;
  } else if (name == "clustered") {
    *out = Distribution::kClustered;
  } else {
    return false;
  }
  return true;
}

const char* DistributionName(Distribution distribution) {
  switch (distribution) {
    case Distribution::kUniform:
      return "uniform";
    case Distribution::kGaussian:
      return "gaussian";
    case Distribution::kClustered:
      return "clustered";
  }
  return "unknown";
}

}  // namespace touch
