#ifndef TOUCH_DATAGEN_NEURO_H_
#define TOUCH_DATAGEN_NEURO_H_

#include <cstdint>
#include <vector>

#include "datagen/dataset.h"
#include "geom/cylinder.h"

namespace touch {

/// Parameters of the synthetic neuroscience model.
///
/// The paper evaluates on a proprietary rat-brain model (644K axon and
/// 1.285M dendrite cylinders inside a 285 um^3 tissue volume). We cannot ship
/// that data, so this generator grows morphologically plausible neurons
/// instead: somata are placed with a Gaussian density peak at the tissue
/// center (the paper notes its data is "very densely populated in the center,
/// but extremely sparse elsewhere", which is what makes TOUCH's filtering
/// effective), and every neuron extends branching random-walk processes of
/// short capped cylinders — axons for dataset A and dendrites for dataset B
/// at the paper's ~1:2 cardinality ratio.
struct NeuroOptions {
  /// Number of neurons to grow.
  int neurons = 100;
  /// Edge length of the cubic tissue volume (model units ~ micrometers).
  float volume = 300.0f;
  /// Std-dev of the Gaussian soma placement, as a fraction of `volume`.
  float soma_sigma_fraction = 0.18f;
  /// Branches per neuron (axonal / dendritic trees grown per soma).
  int axon_branches = 2;
  int dendrite_branches = 4;
  /// Cylinders per branch.
  int segments_per_branch = 60;
  /// Mean cylinder length and radius.
  float segment_length = 3.0f;
  float radius = 0.3f;
  /// Direction persistence of the branch random walk in [0, 1); higher means
  /// straighter processes.
  float tortuosity = 0.75f;
  /// Bias of *axon* growth towards the column core in [0, 1]. The paper's
  /// tissue cut is dense in the centre and sparse at the borders, which is
  /// what lets TOUCH filter 20-27% of the dendrites; pulling axons towards
  /// the core reproduces that contrast (peripheral dendrites then lie outside
  /// every axon bucket). 0 disables the bias.
  float axon_centripetal = 0.35f;
};

/// A generated tissue model: dataset A = axon cylinders, dataset B =
/// dendrite cylinders (the paper joins axons against dendrites to place
/// synapses).
struct NeuroModel {
  std::vector<Cylinder> axons;
  std::vector<Cylinder> dendrites;
};

/// Grows a tissue model; deterministic in `seed`.
NeuroModel GenerateNeuroscience(const NeuroOptions& options, uint64_t seed);

/// MBRs of a cylinder list, in order (filtering-phase input).
Dataset CylinderMbrs(const std::vector<Cylinder>& cylinders);

}  // namespace touch

#endif  // TOUCH_DATAGEN_NEURO_H_
