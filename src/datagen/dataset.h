#ifndef TOUCH_DATAGEN_DATASET_H_
#define TOUCH_DATAGEN_DATASET_H_

#include <vector>

#include "geom/box.h"

namespace touch {

/// A spatial dataset is simply a vector of object MBRs; an object's id is its
/// index. This matches the paper's setting: two unsorted, unindexed inputs.
using Dataset = std::vector<Box>;

}  // namespace touch

#endif  // TOUCH_DATAGEN_DATASET_H_
