#include "datagen/neuro.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace touch {
namespace {

// Uniform random unit vector.
Vec3 RandomDirection(Rng& rng) {
  // Marsaglia's method on the sphere via normalized Gaussians.
  Vec3 v(static_cast<float>(rng.Normal()), static_cast<float>(rng.Normal()),
         static_cast<float>(rng.Normal()));
  if (v.LengthSquared() == 0) return Vec3(1, 0, 0);
  return v.Normalized();
}

float Clamp01Space(float v, float space) { return std::clamp(v, 0.0f, space); }

// Grows one branch as a persistent random walk of `segments` cylinders
// starting at `soma`, appending to `out`. `centripetal` > 0 biases growth
// towards the volume centre (used for axons).
void GrowBranch(const Vec3& soma, const NeuroOptions& opt, float centripetal,
                Rng& rng, std::vector<Cylinder>* out) {
  Vec3 position = soma;
  Vec3 direction = RandomDirection(rng);
  const Vec3 core(opt.volume * 0.5f, opt.volume * 0.5f, opt.volume * 0.5f);
  for (int s = 0; s < opt.segments_per_branch; ++s) {
    // Blend the previous direction with a random turn; tortuosity is the
    // weight of the previous direction.
    const Vec3 turn = RandomDirection(rng);
    direction = (direction * opt.tortuosity + turn * (1.0f - opt.tortuosity))
                    .Normalized();
    if (centripetal > 0) {
      const Vec3 to_core = (core - position).Normalized();
      direction =
          (direction * (1.0f - centripetal) + to_core * centripetal)
              .Normalized();
    }
    const float len = opt.segment_length *
                      (0.5f + static_cast<float>(rng.NextDouble()));
    Vec3 next = position + direction * len;
    next.x = Clamp01Space(next.x, opt.volume);
    next.y = Clamp01Space(next.y, opt.volume);
    next.z = Clamp01Space(next.z, opt.volume);
    // Taper the process slightly towards its tip, like real neurites.
    const float taper =
        1.0f - 0.5f * static_cast<float>(s) /
                   static_cast<float>(std::max(1, opt.segments_per_branch));
    out->push_back(Cylinder(position, next, opt.radius * taper));
    position = next;
  }
}

}  // namespace

NeuroModel GenerateNeuroscience(const NeuroOptions& options, uint64_t seed) {
  Rng rng(seed);
  NeuroModel model;
  const int axon_cyls =
      options.neurons * options.axon_branches * options.segments_per_branch;
  const int dend_cyls = options.neurons * options.dendrite_branches *
                        options.segments_per_branch;
  model.axons.reserve(static_cast<size_t>(std::max(0, axon_cyls)));
  model.dendrites.reserve(static_cast<size_t>(std::max(0, dend_cyls)));

  const float center = options.volume * 0.5f;
  const float sigma = options.volume * options.soma_sigma_fraction;
  for (int n = 0; n < options.neurons; ++n) {
    const Vec3 soma(
        Clamp01Space(static_cast<float>(rng.Normal(center, sigma)),
                     options.volume),
        Clamp01Space(static_cast<float>(rng.Normal(center, sigma)),
                     options.volume),
        Clamp01Space(static_cast<float>(rng.Normal(center, sigma)),
                     options.volume));
    for (int b = 0; b < options.axon_branches; ++b) {
      GrowBranch(soma, options, options.axon_centripetal, rng, &model.axons);
    }
    for (int b = 0; b < options.dendrite_branches; ++b) {
      GrowBranch(soma, options, /*centripetal=*/0.0f, rng, &model.dendrites);
    }
  }
  return model;
}

Dataset CylinderMbrs(const std::vector<Cylinder>& cylinders) {
  Dataset boxes;
  boxes.reserve(cylinders.size());
  for (const Cylinder& c : cylinders) boxes.push_back(c.Mbr());
  return boxes;
}

}  // namespace touch
