#ifndef TOUCH_ESTIMATE_SELECTIVITY_H_
#define TOUCH_ESTIMATE_SELECTIVITY_H_

#include <cstdint>
#include <span>
#include <vector>

#include "geom/box.h"

namespace touch {

/// Output of the join-selectivity estimator.
struct SelectivityEstimate {
  /// Expected number of intersecting (a, b) pairs.
  double expected_results = 0;
  /// expected_results / (|A| * |B|) — comparable to the paper's Table 1.
  double selectivity = 0;
};

/// Per-axis overlap probabilities for object centers in the same histogram
/// cell and in adjacent cells. Two intervals of lengths ea and eb overlap
/// when their centers are within (ea+eb)/2 of each other; with
/// s = min(1, (ea+eb)/2c) and centers uniform in cells of edge c:
///   same cell      (x1, x2 ~ U(0,1)):  P(|x1-x2| <= s)   = 2s - s^2
///   adjacent cells (x2 shifted by 1):  P(|x1-x2-1| <= s) = s^2 / 2
/// Offsets of two or more cells contribute nothing once cells are at least
/// as large as the combined object extents. Shared by SelectivityEstimator
/// and the catalog's histogram pair-combination (CombineHistograms).
struct AxisProbabilities {
  double same = 1.0;
  double adjacent = 0.0;
};

AxisProbabilities AxisOverlapProbabilities(double ea, double eb,
                                           double cell_edge);

/// Grid resolution capped so cells stay ~4x larger than `max_avg_edge` on
/// the domain's tightest axis (`min_extent`) — the paper's section-5.2.2
/// rule, shared by the estimator, the catalog's histogram pair-combination,
/// and the planner's grid sizing. Returns `max_res` when the edge is
/// non-positive; the ratio is compared in float before any int conversion
/// (tiny objects in a huge domain overflow int, which is UB).
int CellSizeCappedResolution(float min_extent, float max_avg_edge,
                             int max_res);

/// Histogram-based selectivity estimator for spatial joins, in the spirit of
/// the R-tree cost model the paper's selectivity metric references (Aref &
/// Samet, GIS'94 [1]).
///
/// A coarse uniform grid over the joint extent counts, per cell, how many
/// objects of each dataset have their center there, along with the average
/// object extents. Under local uniformity, two boxes with per-axis extents
/// ea and eb whose centers fall in the same cell of edge c intersect on that
/// axis with probability p(s) = 2s - s^2 where s = min(1, (ea+eb)/2c); the
/// expected result count is the sum over cells of nA * nB * Πaxis p. Cells
/// only see their own objects, so the estimate needs cells comfortably
/// larger than the objects — the constructor clamps the resolution
/// accordingly.
///
/// Uses: picking the join order (build on the sparser dataset, paper 5.2.3),
/// sizing PBSM/local-join grids before running, and sanity-checking measured
/// results. It is an *estimator*: expect the right order of magnitude, not
/// exact counts (see the accuracy tests).
class SelectivityEstimator {
 public:
  /// Builds histograms over both datasets. `resolution` is the target cells
  /// per axis (clamped so cells stay larger than the average object).
  SelectivityEstimator(std::span<const Box> a, std::span<const Box> b,
                       int resolution = 64);

  /// Estimate for the plain spatial join (epsilon == 0) or for a distance
  /// join where A is enlarged by `epsilon` on every side.
  SelectivityEstimate Estimate(float epsilon = 0.0f) const;

  /// True when building TOUCH's tree on A is preferable (A is the sparser /
  /// smaller dataset per the paper's join-order discussion).
  static bool ShouldBuildOnA(std::span<const Box> a, std::span<const Box> b);

 private:
  struct CellCounts {
    uint32_t a = 0;
    uint32_t b = 0;
  };

  int res_ = 1;
  Box domain_;
  std::vector<CellCounts> cells_;
  size_t size_a_ = 0;
  size_t size_b_ = 0;
  Vec3 avg_extent_a_;
  Vec3 avg_extent_b_;
};

}  // namespace touch

#endif  // TOUCH_ESTIMATE_SELECTIVITY_H_
