#include "estimate/selectivity.h"

#include <algorithm>
#include <cmath>

#include "geom/grid.h"

namespace touch {
namespace {

Vec3 AverageExtent(std::span<const Box> boxes) {
  if (boxes.empty()) return Vec3(0, 0, 0);
  double sx = 0;
  double sy = 0;
  double sz = 0;
  for (const Box& box : boxes) {
    const Vec3 e = box.Extent();
    sx += e.x;
    sy += e.y;
    sz += e.z;
  }
  const double inv = 1.0 / static_cast<double>(boxes.size());
  return Vec3(static_cast<float>(sx * inv), static_cast<float>(sy * inv),
              static_cast<float>(sz * inv));
}

}  // namespace

AxisProbabilities AxisOverlapProbabilities(double ea, double eb,
                                           double cell_edge) {
  if (cell_edge <= 0) return AxisProbabilities{1.0, 0.0};
  const double s = std::min(1.0, (ea + eb) / (2.0 * cell_edge));
  return AxisProbabilities{2.0 * s - s * s, s * s / 2.0};
}

int CellSizeCappedResolution(float min_extent, float max_avg_edge,
                             int max_res) {
  if (max_avg_edge <= 0) return max_res;
  const float ratio = min_extent / (4.0f * max_avg_edge);
  if (ratio >= static_cast<float>(max_res)) return max_res;
  return std::clamp(static_cast<int>(ratio), 1, max_res);
}

SelectivityEstimator::SelectivityEstimator(std::span<const Box> a,
                                           std::span<const Box> b,
                                           int resolution) {
  size_a_ = a.size();
  size_b_ = b.size();
  avg_extent_a_ = AverageExtent(a);
  avg_extent_b_ = AverageExtent(b);

  domain_ = Box::Empty();
  for (const Box& box : a) domain_.ExpandToContain(box);
  for (const Box& box : b) domain_.ExpandToContain(box);
  if (domain_.IsEmpty()) {
    res_ = 1;
    cells_.assign(1, CellCounts{});
    return;
  }

  // Cells must stay larger than a few average objects or the within-cell
  // uniformity assumption collapses (objects straddle cells the histogram
  // never pairs them in).
  const Vec3 extent = domain_.Extent();
  const float max_avg =
      std::max({avg_extent_a_.x, avg_extent_a_.y, avg_extent_a_.z,
                avg_extent_b_.x, avg_extent_b_.y, avg_extent_b_.z});
  res_ = CellSizeCappedResolution(std::min({extent.x, extent.y, extent.z}),
                                  max_avg, std::max(1, resolution));

  cells_.assign(static_cast<size_t>(res_) * res_ * res_, CellCounts{});
  const GridMapper grid(domain_, res_);
  const auto cell_index = [&](const Box& box) {
    const CellCoord c = grid.CellOf(box.Center());
    return (static_cast<size_t>(c.x) * res_ + c.y) * res_ + c.z;
  };
  for (const Box& box : a) ++cells_[cell_index(box)].a;
  for (const Box& box : b) ++cells_[cell_index(box)].b;
}

SelectivityEstimate SelectivityEstimator::Estimate(float epsilon) const {
  SelectivityEstimate estimate;
  if (size_a_ == 0 || size_b_ == 0 || domain_.IsEmpty()) return estimate;

  const Vec3 extent = domain_.Extent();
  const double cell_edge[3] = {extent.x / static_cast<double>(res_),
                               extent.y / static_cast<double>(res_),
                               extent.z / static_cast<double>(res_)};
  // The distance join enlarges A's boxes by epsilon on every side.
  const double ea[3] = {avg_extent_a_.x + 2.0 * epsilon,
                        avg_extent_a_.y + 2.0 * epsilon,
                        avg_extent_a_.z + 2.0 * epsilon};
  const double eb[3] = {avg_extent_b_.x, avg_extent_b_.y, avg_extent_b_.z};

  AxisProbabilities p[3];
  for (int axis = 0; axis < 3; ++axis) {
    p[axis] = AxisOverlapProbabilities(ea[axis], eb[axis], cell_edge[axis]);
  }

  // Sum nA(c) * nB(c + d) over all cells and the 27 offsets d in {-1,0,1}^3,
  // weighting each offset by the product of per-axis probabilities.
  const auto count_at = [&](int x, int y, int z) -> double {
    if (x < 0 || y < 0 || z < 0 || x >= res_ || y >= res_ || z >= res_) {
      return 0;
    }
    return cells_[(static_cast<size_t>(x) * res_ + y) * res_ + z].b;
  };
  double expected = 0;
  for (int x = 0; x < res_; ++x) {
    for (int y = 0; y < res_; ++y) {
      for (int z = 0; z < res_; ++z) {
        const CellCounts& cell =
            cells_[(static_cast<size_t>(x) * res_ + y) * res_ + z];
        if (cell.a == 0) continue;
        double b_weighted = 0;
        for (int dx = -1; dx <= 1; ++dx) {
          const double px = dx == 0 ? p[0].same : p[0].adjacent;
          for (int dy = -1; dy <= 1; ++dy) {
            const double py = dy == 0 ? p[1].same : p[1].adjacent;
            for (int dz = -1; dz <= 1; ++dz) {
              const double pz = dz == 0 ? p[2].same : p[2].adjacent;
              b_weighted += px * py * pz * count_at(x + dx, y + dy, z + dz);
            }
          }
        }
        expected += static_cast<double>(cell.a) * b_weighted;
      }
    }
  }

  estimate.expected_results = expected;
  estimate.selectivity =
      expected / (static_cast<double>(size_a_) * static_cast<double>(size_b_));
  return estimate;
}

bool SelectivityEstimator::ShouldBuildOnA(std::span<const Box> a,
                                          std::span<const Box> b) {
  // The paper's heuristic: the smaller dataset is the sparser one (same or
  // bigger extent spread over fewer objects) and should build the tree.
  return a.size() <= b.size();
}

}  // namespace touch
