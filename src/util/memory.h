#ifndef TOUCH_UTIL_MEMORY_H_
#define TOUCH_UTIL_MEMORY_H_

#include <cstddef>
#include <vector>

namespace touch {

/// Analytic memory-footprint helpers.
///
/// The paper compares algorithms by the memory their auxiliary structures
/// occupy. We account for this explicitly (capacity-based, deterministic)
/// instead of interposing on malloc, so numbers are comparable across
/// algorithms and runs.

/// Bytes held by a vector's heap allocation (capacity, not size).
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

/// Bytes held by a vector of vectors, including inner allocations.
template <typename T>
size_t NestedVectorBytes(const std::vector<std::vector<T>>& v) {
  size_t total = v.capacity() * sizeof(std::vector<T>);
  for (const auto& inner : v) total += inner.capacity() * sizeof(T);
  return total;
}

}  // namespace touch

#endif  // TOUCH_UTIL_MEMORY_H_
