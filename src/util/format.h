#ifndef TOUCH_UTIL_FORMAT_H_
#define TOUCH_UTIL_FORMAT_H_

#include <cstdarg>
#include <cstdio>
#include <string>

namespace touch {

/// printf-style std::string formatter shared by the report/rationale
/// builders (planner, sharded engine, CLI). Output is truncated at 512
/// bytes — callers format short single-line reports, never unbounded data.
inline std::string StrFormat(const char* fmt, ...) {
  char buffer[512];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  return buffer;
}

}  // namespace touch

#endif  // TOUCH_UTIL_FORMAT_H_
