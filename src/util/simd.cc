#include "util/simd.h"

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <cpuid.h>
#endif

namespace touch {
namespace simd {
namespace {

#if defined(__x86_64__) || defined(__i386__)

/// xgetbv(0) without requiring -mxsave at compile time (the detection TU is
/// built with baseline flags; only the per-ISA kernel TUs get ISA flags).
/// Callers must have verified CPUID.OSXSAVE first.
uint64_t ReadXcr0() {
  uint32_t lo = 0;
  uint32_t hi = 0;
  __asm__ __volatile__("xgetbv" : "=a"(lo), "=d"(hi) : "c"(0));
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

CpuFeatures DetectOnce() {
  CpuFeatures features;
  unsigned eax = 0;
  unsigned ebx = 0;
  unsigned ecx = 0;
  unsigned edx = 0;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return features;
  features.sse2 = (edx & bit_SSE2) != 0;
  // AVX/AVX2 are only *usable* when the OS saves the ymm state: CPUID
  // alone says the silicon exists, xcr0 bits 1|2 say context switches
  // preserve it. A kernel dispatched on the CPUID bit alone would fault
  // on the first vmovaps under a no-ymm OS.
  const bool osxsave = (ecx & bit_OSXSAVE) != 0;
  const bool ymm_os = osxsave && (ReadXcr0() & 0x6) == 0x6;
  features.avx = ymm_os && (ecx & bit_AVX) != 0;
  if (features.avx &&
      __get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx) != 0) {
    features.avx2 = (ebx & bit_AVX2) != 0;
  }
  return features;
}

#elif defined(__aarch64__)

// NEON (Advanced SIMD) is architecturally mandatory on AArch64.
CpuFeatures DetectOnce() {
  CpuFeatures features;
  features.neon = true;
  return features;
}

#elif defined(__ARM_NEON) || defined(__ARM_NEON__)

// 32-bit ARM built with NEON enabled: the compiler already assumes it.
CpuFeatures DetectOnce() {
  CpuFeatures features;
  features.neon = true;
  return features;
}

#else

CpuFeatures DetectOnce() { return CpuFeatures{}; }

#endif

}  // namespace

std::string CpuFeatures::ToString() const {
  std::string out;
  const auto append = [&out](const char* name) {
    if (!out.empty()) out += ' ';
    out += name;
  };
  if (sse2) append("sse2");
  if (avx) append("avx");
  if (avx2) append("avx2");
  if (neon) append("neon");
  if (out.empty()) out = "none";
  return out;
}

CpuFeatures DetectCpuFeatures() {
  // cpuid is not free (it serializes); cache the probe for the dispatcher,
  // the CLI report, and the per-level bench registration.
  static const CpuFeatures features = DetectOnce();
  return features;
}

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kNeon: return "neon";
    case Level::kSse2: return "sse2";
    case Level::kAvx2: return "avx2";
  }
  return "scalar";
}

int LevelWidth(Level level) {
  switch (level) {
    case Level::kScalar: return 1;
    case Level::kNeon: return 4;
    case Level::kSse2: return 4;
    case Level::kAvx2: return 8;
  }
  return 1;
}

std::optional<Level> ParseLevelName(std::string_view name) {
  if (name == "scalar") return Level::kScalar;
  if (name == "neon") return Level::kNeon;
  if (name == "sse2") return Level::kSse2;
  if (name == "avx2") return Level::kAvx2;
  return std::nullopt;
}

bool LevelCompiledIn(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kNeon:
#if defined(__aarch64__) || defined(__ARM_NEON) || defined(__ARM_NEON__)
      return true;
#else
      return false;
#endif
    case Level::kSse2:
    case Level::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

bool LevelSupported(Level level) {
  if (!LevelCompiledIn(level)) return false;
  const CpuFeatures features = DetectCpuFeatures();
  switch (level) {
    case Level::kScalar: return true;
    case Level::kNeon: return features.neon;
    case Level::kSse2: return features.sse2;
    case Level::kAvx2: return features.avx2;
  }
  return false;
}

Level DetectBestLevel() {
  for (const Level level : {Level::kAvx2, Level::kSse2, Level::kNeon}) {
    if (LevelSupported(level)) return level;
  }
  return Level::kScalar;
}

std::vector<Level> RuntimeAvailableLevels() {
  std::vector<Level> levels;
  for (const Level level :
       {Level::kScalar, Level::kNeon, Level::kSse2, Level::kAvx2}) {
    if (LevelSupported(level)) levels.push_back(level);
  }
  return levels;
}

}  // namespace simd
}  // namespace touch
