// Clang thread-safety (capability) annotation macros and the mutex shims the
// whole project locks through.
//
// Under clang the macros expand to the capability attributes consumed by
// -Wthread-safety, turning the locking conventions documented in
// docs/STATIC_ANALYSIS.md into compile-time proofs; under any other compiler
// they expand to nothing, so the annotated tree builds identically with gcc.
//
// Conventions (see docs/STATIC_ANALYSIS.md for the full catalog):
//   - Data shared across threads is declared `T field GUARDED_BY(mutex_);`.
//   - Private helpers that assume the lock is already held are suffixed
//     `Locked` and annotated `REQUIRES(mutex_)`.
//   - Public entry points that take the lock themselves are annotated
//     `EXCLUDES(mutex_)` so re-entrant acquisition is a compile error.
//   - Raw `std::mutex` / `.lock()` / `.unlock()` outside this header is
//     banned by tools/lint_invariants.py; lock through Mutex/MutexLock.
#ifndef TOUCH_UTIL_THREAD_ANNOTATIONS_H_
#define TOUCH_UTIL_THREAD_ANNOTATIONS_H_

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

#define CAPABILITY(x) TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

#define SCOPED_CAPABILITY TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

#define GUARDED_BY(x) TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

#define PT_GUARDED_BY(x) TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) \
  TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(acquired_before(__VA_ARGS__))

#define ACQUIRED_AFTER(...) \
  TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(acquired_after(__VA_ARGS__))

#define REQUIRES(...) \
  TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

#define REQUIRES_SHARED(...) \
  TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) \
  TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

#define ACQUIRE_SHARED(...) \
  TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(acquire_shared_capability(__VA_ARGS__))

#define RELEASE(...) \
  TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

#define RELEASE_SHARED(...) \
  TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(release_shared_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) \
  TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

#define EXCLUDES(...) \
  TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) \
  TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

#define RETURN_CAPABILITY(x) \
  TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS \
  TOUCH_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace touch {

// Annotated wrapper over std::mutex. libstdc++'s mutex carries no capability
// attributes, so this wrapper is the only way lock state becomes visible to
// the analysis. Lock()/Unlock() exist for the rare manual pairing inside the
// shims themselves; everything else uses MutexLock.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// Scoped lock over Mutex (the project's lock_guard). Declared
// SCOPED_CAPABILITY so the analysis tracks the critical section between
// construction and destruction. The underlying std::unique_lock is exposed
// only to CondVar::Wait, which re-acquires before returning, so the
// capability is held across the whole lexical scope as far as the analysis
// (and every invariant in this codebase) is concerned.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : lock_(mu.mu_) {}
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() RELEASE() {}

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// Condition variable paired with MutexLock. Wait() atomically releases and
// re-acquires the lock; callers must re-check their predicate in an explicit
// `while` loop (a lambda predicate would be analyzed without the caller's
// capability set and reject GUARDED_BY reads).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(MutexLock& lock) { cv_.wait(lock.lock_); }
  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace touch

#endif  // TOUCH_UTIL_THREAD_ANNOTATIONS_H_
