#ifndef TOUCH_UTIL_CANCELLATION_H_
#define TOUCH_UTIL_CANCELLATION_H_

#include <atomic>
#include <memory>

namespace touch {

namespace internal {
struct CancelFlag {
  std::atomic<bool> requested{false};
};
}  // namespace internal

/// std::stop_token-style cooperative cancellation flag, shared between the
/// issuer (CancellationSource) and any number of observers. Tokens are
/// cheap value types (one shared_ptr); a default-constructed token can
/// never be cancelled — stop_requested() is a null check — so hot loops can
/// take a token unconditionally and pay nothing when cancellation is not in
/// play. Long-running kernels poll it at loop strides (every few thousand
/// iterations) and bail out early; whatever they produced so far stays
/// valid but incomplete.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True once the owning source requested cancellation. Monotonic: never
  /// resets to false.
  bool stop_requested() const {
    return flag_ != nullptr &&
           flag_->requested.load(std::memory_order_acquire);
  }

  /// False for default-constructed tokens, which can never be cancelled.
  bool stop_possible() const { return flag_ != nullptr; }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const internal::CancelFlag> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const internal::CancelFlag> flag_;
};

/// The issuing side: owns the flag, hands out tokens, flips the flag once.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<internal::CancelFlag>()) {}

  CancellationToken token() const { return CancellationToken(flag_); }

  /// Requests cancellation; returns true when this call was the first to do
  /// so (idempotent afterwards).
  bool RequestStop() {
    return !flag_->requested.exchange(true, std::memory_order_acq_rel);
  }

  bool stop_requested() const {
    return flag_->requested.load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<internal::CancelFlag> flag_;
};

}  // namespace touch

#endif  // TOUCH_UTIL_CANCELLATION_H_
