#ifndef TOUCH_UTIL_CANCELLATION_H_
#define TOUCH_UTIL_CANCELLATION_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <utility>

namespace touch {

// Thread-safety note: cancellation is lock-free by design — a relaxed
// atomic flag plus an atomic deadline — so it carries no capability
// annotations (there is no mutex to guard anything with). Kernels poll
// stop_requested() at an amortized stride; tools/lint_invariants.py
// enforces that every kernel candidate loop keeps doing so.

namespace internal {
struct CancelFlag {
  std::atomic<bool> requested{false};
  /// Engine-enforced deadline as steady-clock nanoseconds-since-epoch;
  /// 0 = none. Observers treat a passed deadline exactly like a requested
  /// stop, so every existing cooperative poll enforces deadlines for free.
  std::atomic<int64_t> deadline_ns{0};
};

inline int64_t SteadyNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline bool DeadlinePassed(const CancelFlag& flag) {
  const int64_t deadline = flag.deadline_ns.load(std::memory_order_relaxed);
  return deadline != 0 && SteadyNowNs() >= deadline;
}
}  // namespace internal

/// std::stop_token-style cooperative cancellation flag, shared between the
/// issuer (CancellationSource) and any number of observers. Tokens are
/// cheap value types (one shared_ptr); a default-constructed token can
/// never be cancelled — stop_requested() is a null check — so hot loops can
/// take a token unconditionally and pay nothing when cancellation is not in
/// play. Long-running kernels poll it at loop strides (every few thousand
/// iterations) and bail out early; whatever they produced so far stays
/// valid but incomplete.
class CancellationToken {
 public:
  CancellationToken() = default;

  /// True once the owning source requested cancellation — or once its
  /// deadline (if one was set) has passed. Monotonic: never resets to
  /// false. The deadline branch costs one relaxed load when no deadline is
  /// set, so hot loops still poll for (almost) free.
  bool stop_requested() const {
    return flag_ != nullptr &&
           (flag_->requested.load(std::memory_order_acquire) ||
            internal::DeadlinePassed(*flag_));
  }

  /// False for default-constructed tokens, which can never be cancelled.
  bool stop_possible() const { return flag_ != nullptr; }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const internal::CancelFlag> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const internal::CancelFlag> flag_;
};

/// The issuing side: owns the flag, hands out tokens, flips the flag once.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<internal::CancelFlag>()) {}

  CancellationToken token() const { return CancellationToken(flag_); }

  /// Requests cancellation; returns true when this call was the first to do
  /// so (idempotent afterwards).
  bool RequestStop() {
    return !flag_->requested.exchange(true, std::memory_order_acq_rel);
  }

  bool stop_requested() const {
    return flag_->requested.load(std::memory_order_acquire) ||
           internal::DeadlinePassed(*flag_);
  }

  /// Arms a deadline: once `deadline` passes, every token of this source
  /// reports stop_requested() without anyone calling RequestStop — the
  /// engine's per-request deadline enforcement (JoinRequest::deadline).
  /// The epoch itself (a default-constructed time point) clears the
  /// deadline; anything before it (time_point::min(), a negative
  /// arithmetic result) counts as already expired, not as "none".
  void SetDeadline(std::chrono::steady_clock::time_point deadline) {
    const int64_t ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                           deadline.time_since_epoch())
                           .count();
    flag_->deadline_ns.store(ns > 0 ? ns : (ns < 0 ? 1 : 0),
                             std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<internal::CancelFlag> flag_;
};

}  // namespace touch

#endif  // TOUCH_UTIL_CANCELLATION_H_
